package rsonpath

// Tests for the RunReader family: differential equality between the
// in-memory and buffered streaming paths, bounded-memory behavior on
// documents much larger than the window, and the documented failure modes.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"
)

// chunkedReader yields at most n bytes per Read, forcing refills at
// arbitrary alignments.
type chunkedReader struct {
	data []byte
	n    int
}

func (r *chunkedReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := r.n
	if n > len(r.data) {
		n = len(r.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// streamingEngines are the engines that support RunReader.
var streamingEngines = []EngineKind{EngineRsonpath, EngineSurfer, EngineSki, EngineStackless}

// TestStreamingCompliance runs the whole compliance corpus through every
// streaming engine twice — once in memory, once through a buffered input
// with a pathologically small window fed in 3-byte reads — and requires
// identical match offsets.
func TestStreamingCompliance(t *testing.T) {
	cases := append(append([]complianceCase{}, complianceCases...), sliceComplianceCases...)
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, kind := range streamingEngines {
				for _, window := range []int{64, 4096} {
					q, err := Compile(c.query, WithEngine(kind), WithStreamWindow(window))
					if errors.Is(err, ErrUnsupportedQuery) {
						continue // restricted fragments (ski, stackless)
					}
					if err != nil {
						t.Fatalf("[%v] compile: %v", kind, err)
					}
					want, err := q.MatchOffsets([]byte(c.doc))
					if err != nil {
						t.Fatalf("[%v] in-memory run: %v", kind, err)
					}
					var got []int
					err = q.RunReader(&chunkedReader{data: []byte(c.doc), n: 3},
						func(pos int) { got = append(got, pos) })
					if err != nil {
						t.Fatalf("[%v window=%d] RunReader: %v", kind, window, err)
					}
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("[%v window=%d] %s on %s:\n  streamed  %v\n  in-memory %v",
							kind, window, c.query, c.doc, got, want)
					}
				}
			}
		})
	}
}

// TestQuerySetRunReader holds the set's streamed pass to the in-memory one.
func TestQuerySetRunReader(t *testing.T) {
	doc := `{"a": {"b": [1, {"a": 2}], "c": 3}, "d": [{"a": 4}, 5], "b": 6}`
	set := MustCompileSet([]string{"$..a", "$.a.b[*]", "$..b"}, WithStreamWindow(64))
	type hit struct{ q, pos int }
	var want, got []hit
	if err := set.Run([]byte(doc), func(q, pos int) { want = append(want, hit{q, pos}) }); err != nil {
		t.Fatal(err)
	}
	err := set.RunReader(&chunkedReader{data: []byte(doc), n: 5},
		func(q, pos int) { got = append(got, hit{q, pos}) })
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("streamed %v, in-memory %v", got, want)
	}
}

// TestRunReaderValues checks streamed value extraction against MatchValues.
func TestRunReaderValues(t *testing.T) {
	doc := `{"a": {"x": [1, 2]}, "b": {"a": "str\"ing"}, "c": [{"a": null}], "a2": 7}`
	q := MustCompile("$..a", WithStreamWindow(64))
	wantVals, err := q.MatchValues([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	err = q.RunReaderValues(&chunkedReader{data: []byte(doc), n: 3},
		func(_ int, v []byte) { got = append(got, string(v)) })
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(wantVals))
	for i, v := range wantVals {
		want[i] = string(v)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("streamed %q, in-memory %q", got, want)
	}
}

// TestRunReaderDOMUnsupported pins the documented failure mode: EngineDOM
// cannot stream, but CountReader still works by buffering.
func TestRunReaderDOMUnsupported(t *testing.T) {
	doc := `{"a": 1, "b": {"a": 2}}`
	q := MustCompile("$..a", WithEngine(EngineDOM))
	if err := q.RunReader(strings.NewReader(doc), func(int) {}); !errors.Is(err, ErrStreamingUnsupported) {
		t.Fatalf("RunReader on DOM: %v, want ErrStreamingUnsupported", err)
	}
	if err := q.RunReaderValues(strings.NewReader(doc), func(int, []byte) {}); !errors.Is(err, ErrStreamingUnsupported) {
		t.Fatalf("RunReaderValues on DOM: %v, want ErrStreamingUnsupported", err)
	}
	n, err := q.CountReader(strings.NewReader(doc))
	if err != nil || n != 2 {
		t.Fatalf("CountReader on DOM: (%d, %v), want (2, nil)", n, err)
	}
}

// TestRunReaderWindowDefeat pins the other documented failure mode: a
// single document feature larger than the window aborts with *input.Error
// (surfaced via errors.As on the wrapped type) rather than mis-scanning.
func TestRunReaderWindowDefeat(t *testing.T) {
	// A key far larger than the 64-byte window's retention capacity.
	doc := `{"` + strings.Repeat("k", 4096) + `": 1, "a": 2}`
	q := MustCompile("$.a", WithEngine(EngineSurfer), WithStreamWindow(64))
	err := q.RunReader(strings.NewReader(doc), func(int) {})
	if err == nil {
		t.Fatal("oversized key within a tiny window did not error")
	}
}

// TestRunReaderBoundedMemory streams a document ~64x larger than the window
// and asserts the run allocates a small fraction of the document size.
func TestRunReaderBoundedMemory(t *testing.T) {
	const entries = 200000
	var b bytes.Buffer
	b.WriteByte('[')
	for i := 0; i < entries; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"a": %d}`, i)
	}
	b.WriteByte(']')
	doc := b.Bytes()

	const window = 64 << 10
	if len(doc) < 32*window {
		t.Fatalf("document too small for the claim: %d bytes", len(doc))
	}
	q := MustCompile("$..a", WithStreamWindow(window))

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	n := 0
	err := q.RunReader(bytes.NewReader(doc), func(int) { n++ })
	runtime.ReadMemStats(&m1)
	if err != nil {
		t.Fatal(err)
	}
	if n != entries {
		t.Fatalf("matched %d values, want %d", n, entries)
	}
	alloc := m1.TotalAlloc - m0.TotalAlloc
	// The buffered input retains window + look-behind (2x window here);
	// everything else on the streaming path is allocation-free. Allow 8x
	// window for noise — still an order of magnitude under the document.
	if limit := uint64(8 * window); alloc > limit {
		t.Fatalf("RunReader allocated %d bytes for a %d-byte document (limit %d)",
			alloc, len(doc), limit)
	}
}

// TestRunLinesOffsetsReuse exercises the documented visit-scoped lifetime
// of LineMatch.Offsets: copies taken during the visit stay correct across
// records with different match counts (which forces slice reuse).
func TestRunLinesOffsetsReuse(t *testing.T) {
	in := `{"a": 1, "b": {"a": 2}}` + "\n" + `{"a": 3}` + "\n" + `{"x": {"a": 4}, "a": 5}` + "\n"
	q := MustCompile("$..a")
	var lines []int
	var copies [][]int
	err := q.RunLines(strings.NewReader(in), func(m LineMatch) error {
		lines = append(lines, m.Line)
		copies = append(copies, append([]int(nil), m.Offsets...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "[[6 20] [6] [12 21]]"
	if fmt.Sprint(lines) != "[1 2 3]" || fmt.Sprint(copies) != want {
		t.Fatalf("lines %v offsets %v, want [1 2 3] %s", lines, copies, want)
	}
}
