package rsonpath

import (
	"context"
	"errors"
	"io"

	"rsonpath/internal/input"
	"rsonpath/internal/planner"
)

// ErrStreamingUnsupported is returned by the RunReader family for engines
// that need the whole document in memory. Only EngineDOM is affected: it
// builds a tree of the complete document, so bounded-memory streaming is
// impossible by construction.
var ErrStreamingUnsupported = errors.New("rsonpath: engine requires an in-memory document (EngineDOM cannot stream)")

// DefaultStreamWindow is the buffered window used by RunReader when
// WithStreamWindow is not given.
const DefaultStreamWindow = input.DefaultWindow

// WithStreamWindow sets the buffered window size, in bytes, used by the
// RunReader family: the engine's memory stays bounded by (a small multiple
// of) the window however large the document. The window must cover every
// single document feature the query needs to transport — an object key, a
// whitespace run, a matched value being extracted; a feature larger than
// the window aborts the run with *input.Error rather than mis-scanning.
// Values ≤ 0 select DefaultStreamWindow.
func WithStreamWindow(n int) Option {
	return func(c *config) { c.window = n }
}

// inputRunner is the streaming surface of the engines: every engine except
// the DOM oracle evaluates directly over an input.Input.
type inputRunner interface {
	RunInput(in input.Input, emit func(pos int)) error
}

// RunReader streams a single document of arbitrary size from r, calling
// emit with the byte offset of the first character of every matched value,
// in document order. Memory is bounded by the configured stream window
// (WithStreamWindow) regardless of document size. Supported by every
// engine except EngineDOM, which returns ErrStreamingUnsupported.
//
// Malformed input surfaces as *MalformedError, a configured limit being hit
// as *LimitError, and an internal fault as *InternalError (never a panic).
func (q *Query) RunReader(r io.Reader, emit func(pos int)) error {
	sr, label, ok := q.planInputRunner(planner.DocStats{})
	if !ok {
		return ErrStreamingUnsupported
	}
	if q.sup.timeout > 0 {
		// The watchdog deadline needs the cancellation plumbing.
		return q.RunReaderContext(context.Background(), r, emit)
	}
	in := input.NewBuffered(r, q.window)
	defer in.Release()
	if q.limits.maxDocBytes > 0 {
		in.LimitDocBytes(q.limits.maxDocBytes)
	}
	return guardRun(label, func() error {
		return sr.RunInput(in, q.limits.limitEmit(emit))
	})
}

// RunReaderValues streams a single document from r, calling visit with the
// byte offset and the raw bytes of every matched value. The value slice
// aliases the stream's window and is valid only during the visit call; a
// matched value larger than the window's capacity aborts the run with
// *input.Error. Engines that cannot stream return ErrStreamingUnsupported.
func (q *Query) RunReaderValues(r io.Reader, visit func(pos int, value []byte)) error {
	sr, label, ok := q.planInputRunner(planner.DocStats{})
	if !ok {
		return ErrStreamingUnsupported
	}
	in := input.NewBuffered(r, q.window)
	defer in.Release()
	if q.limits.maxDocBytes > 0 {
		in.LimitDocBytes(q.limits.maxDocBytes)
	}
	var extractErr error
	runErr := guardRun(label, func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(stopRun); !ok {
					panic(r)
				}
			}
		}()
		return sr.RunInput(in, q.limits.limitEmit(func(pos int) {
			v, err := valueBytesAt(in, pos)
			if err != nil {
				extractErr = err
				panic(stopRun{})
			}
			visit(pos, v)
		}))
	})
	if extractErr != nil {
		return extractErr
	}
	return runErr
}

// valueBytesAt delimits the complete JSON value starting at pos and returns
// it as one window-backed slice. The scan is a scalar chunked walk over
// Bytes — deliberately not a classifier pass: a second classification
// stream would contend with the engine's own stream for the input's block
// scratch, while Bytes reads leave the engine's current block untouched.
func valueBytesAt(in input.Input, pos int) ([]byte, error) {
	c, ok := in.ByteAt(pos)
	if !ok {
		return nil, errTruncated
	}
	switch c {
	case '{', '[':
		closer := byte('}')
		if c == '[' {
			closer = ']'
		}
		depth := 0
		inStr, esc := false, false
		i := pos
		for {
			chunk := in.Bytes(i, i+input.BlockSize)
			if len(chunk) == 0 {
				return nil, errTruncated
			}
			for j, b := range chunk {
				switch {
				case inStr:
					switch {
					case esc:
						esc = false
					case b == '\\':
						esc = true
					case b == '"':
						inStr = false
					}
				case b == '"':
					inStr = true
				case b == c:
					depth++
				case b == closer:
					depth--
					if depth == 0 {
						return in.Bytes(pos, i+j+1), nil
					}
				}
			}
			i += len(chunk)
		}
	case '"':
		esc := false
		i := pos + 1
		for {
			chunk := in.Bytes(i, i+input.BlockSize)
			if len(chunk) == 0 {
				return nil, errTruncated
			}
			for j, b := range chunk {
				switch {
				case esc:
					esc = false
				case b == '\\':
					esc = true
				case b == '"':
					return in.Bytes(pos, i+j+1), nil
				}
			}
			i += len(chunk)
		}
	default:
		i := pos
		for {
			chunk := in.Bytes(i, i+input.BlockSize)
			if len(chunk) == 0 {
				return in.Bytes(pos, i), nil
			}
			for j, b := range chunk {
				switch b {
				case ',', '}', ']', ' ', '\t', '\n', '\r':
					return in.Bytes(pos, i+j), nil
				}
			}
			i += len(chunk)
		}
	}
}

// RunReader streams a single document from r through the set's shared
// classification pass, calling emit with the query index and the byte
// offset of every matched value. Memory is bounded by the configured
// stream window regardless of document size.
func (s *QuerySet) RunReader(r io.Reader, emit func(query, pos int)) error {
	if s.sup.timeout > 0 {
		return s.RunReaderContext(context.Background(), r, emit)
	}
	in := input.NewBuffered(r, s.window)
	defer in.Release()
	if s.limits.maxDocBytes > 0 {
		in.LimitDocBytes(s.limits.maxDocBytes)
	}
	return guardRun("queryset", func() error {
		return s.set.RunInput(in, s.limits.limitEmit2(emit))
	})
}
