package rsonpath

// Compliance tests for the supported JSONPath fragment, modeled on the
// consensus cases of the json-path-comparison project the paper uses in
// Appendix D, restricted to child/descendant/wildcard/index/union
// selectors and node semantics. Every case runs on all engines that
// support its query.

import (
	"fmt"
	"testing"
)

type complianceCase struct {
	name  string
	query string
	doc   string
	want  []string // expected raw values, in document order
}

var complianceCases = []complianceCase{
	{"root document", "$", `{"a": 1}`, []string{`{"a": 1}`}},
	{"root scalar", "$", `42`, []string{`42`}},
	{"dot child", "$.key", `{"key": "value"}`, []string{`"value"`}},
	{"dot child missing", "$.missing", `{"key": 1}`, nil},
	{"dot child on array", "$.key", `[{"key": 1}]`, nil},
	{"bracket child", "$['key']", `{"key": "value"}`, []string{`"value"`}},
	{"bracket child double quotes", `$["key"]`, `{"key": 7}`, []string{`7`}},
	{"child with space", "$['with space']", `{"with space": 1}`, []string{`1`}},
	{"child with dot in name", "$['a.b']", `{"a.b": 1, "a": {"b": 2}}`, []string{`1`}},
	{"nested children", "$.a.b.c", `{"a": {"b": {"c": 3}}}`, []string{`3`}},
	{"child then index", "$.a[1]", `{"a": [10, 20]}`, []string{`20`}},
	{"index zero", "$[0]", `["first", "second"]`, []string{`"first"`}},
	{"index last", "$[2]", `[1, 2, 3]`, []string{`3`}},
	{"index out of bounds", "$[7]", `[1, 2]`, nil},
	{"index on object", "$[0]", `{"0": "value"}`, nil},
	{"wildcard object", "$.*", `{"a": 1, "b": 2}`, []string{`1`, `2`}},
	{"wildcard array", "$.*", `[1, [2], {"c": 3}]`, []string{`1`, `[2]`, `{"c": 3}`}},
	{"wildcard empty object", "$.*", `{}`, nil},
	{"wildcard empty array", "$.*", `[]`, nil},
	{"bracket wildcard", "$[*]", `[3, 4]`, []string{`3`, `4`}},
	{"double wildcard", "$.*.*", `{"a": [1], "b": {"c": 2}}`, []string{`1`, `2`}},
	{"descendant label", "$..key",
		`{"key": 1, "nest": {"key": 2, "arr": [{"key": 3}]}}`,
		[]string{`1`, `2`, `3`}},
	{"descendant from nested start", "$.nest..key",
		`{"key": 0, "nest": {"key": 1}}`, []string{`1`}},
	{"descendant wildcard", "$..*", `{"a": {"b": 1}}`, []string{`{"b": 1}`, `1`}},
	{"descendant on scalar root", "$..a", `42`, nil},
	{"descendant matches nested same label", "$..a",
		`{"a": {"a": 1}}`, []string{`{"a": 1}`, `1`}},
	{"descendant index", "$..[0]",
		`[[1, 2], {"a": [3]}]`, []string{`[1, 2]`, `1`, `3`}},
	{"union labels", "$['a','b']", `{"a": 1, "b": 2, "c": 3}`, []string{`1`, `2`}},
	{"union preserves document order", "$['b','a']", `{"a": 1, "b": 2}`, []string{`1`, `2`}},
	{"union indices", "$[0,2]", `[10, 20, 30]`, []string{`10`, `30`}},
	{"union mixed", "$['a',1]", `{"a": 1}`, []string{`1`}},
	{"deep structures", "$.a..b.*",
		`{"a": [{"b": {"c": 1}}, {"b": [2]}]}`, []string{`1`, `2`}},
	{"keys are case sensitive", "$.KEY", `{"key": 1, "KEY": 2}`, []string{`2`}},
	{"numeric-looking key", "$['0']", `{"0": "ok"}`, []string{`"ok"`}},
	{"empty-string key", "$['']", `{"": 1}`, []string{`1`}},
	{"null value matched", "$.a", `{"a": null}`, []string{`null`}},
	{"false value matched", "$.a", `{"a": false}`, []string{`false`}},
	{"empty object value", "$.a", `{"a": {}}`, []string{`{}`}},
	{"empty array value", "$.a", `{"a": []}`, []string{`[]`}},
	{"whitespace tolerant", "$.a.b", "{ \"a\" :\n\t{ \"b\" : 1 } }", []string{`1`}},
	{"escaped quote in key", `$['k\"']`, `{"k\"": 1}`, []string{`1`}},
	{"unicode key", "$.ключ", `{"ключ": "значение"}`, []string{`"значение"`}},
	{"string values with structure", "$.b", `{"a": "{\"b\": 0}", "b": 1}`, []string{`1`}},
	{"deep index chain", "$[0][0][0]", `[[[7]]]`, []string{`7`}},
	{"wildcard then label", "$.*.name",
		`[{"name": "x"}, {"name": "y"}, {"other": 1}]`, []string{`"x"`, `"y"`}},
	{"descendant then child", "$..a.b",
		`{"a": {"b": 1}, "c": {"a": {"b": 2}}}`, []string{`1`, `2`}},
	{"child then descendant", "$.a..b",
		`{"a": {"x": {"b": 1}}, "b": 0}`, []string{`1`}},
}

func TestCompliance(t *testing.T) {
	for _, c := range complianceCases {
		t.Run(c.name, func(t *testing.T) {
			for _, kind := range []EngineKind{EngineRsonpath, EngineSurfer, EngineDOM, EngineSki} {
				q, err := Compile(c.query, WithEngine(kind))
				if err == ErrUnsupportedQuery {
					continue // ski's restricted fragment
				}
				if err != nil {
					t.Fatalf("[%v] compile: %v", kind, err)
				}
				if kind == EngineSki && queryNeedsFullWildcard(c) {
					continue // ski's wildcard skips object fields by design
				}
				vals, err := q.MatchValues([]byte(c.doc))
				if err != nil {
					t.Fatalf("[%v] run: %v", kind, err)
				}
				got := make([]string, len(vals))
				for i, v := range vals {
					got[i] = string(v)
				}
				if fmt.Sprint(got) != fmt.Sprint(c.want) {
					t.Fatalf("[%v] %s on %s:\n  got  %q\n  want %q",
						kind, c.query, c.doc, got, c.want)
				}
			}
		})
	}
}

// queryNeedsFullWildcard reports whether the case's expectations depend on
// idiomatic (object-traversing) wildcards, which EngineSki deliberately
// lacks.
func queryNeedsFullWildcard(c complianceCase) bool {
	switch c.name {
	case "wildcard object", "double wildcard", "wildcard empty object":
		return true
	}
	// Any case whose document routes a wildcard through an object.
	return false
}

var sliceComplianceCases = []complianceCase{
	{"slice basic", "$[1:3]", `[0, 1, 2, 3]`, []string{`1`, `2`}},
	{"slice open end", "$[2:]", `[0, 1, 2, 3]`, []string{`2`, `3`}},
	{"slice open start", "$[:2]", `[0, 1, 2, 3]`, []string{`0`, `1`}},
	{"slice full", "$[:]", `[0, 1]`, []string{`0`, `1`}},
	{"slice beyond length", "$[1:100]", `[0, 1]`, []string{`1`}},
	{"slice empty range", "$[2:2]", `[0, 1, 2]`, nil},
	{"slice on object", "$[0:2]", `{"0": 1}`, nil},
	{"slice union with index", "$[0,2:4]", `[0, 1, 2, 3, 4]`, []string{`0`, `2`, `3`}},
	{"descendant slice", "$..[1:2]", `[[0, 1], {"a": [2, 3]}]`, []string{`1`, `{"a": [2, 3]}`, `3`}},
	{"slice then child", "$[1:3].a", `[{"a": 0}, {"a": 1}, {"a": 2}, {"a": 3}]`, []string{`1`, `2`}},
}

func TestSliceCompliance(t *testing.T) {
	for _, c := range sliceComplianceCases {
		t.Run(c.name, func(t *testing.T) {
			for _, kind := range []EngineKind{EngineRsonpath, EngineSurfer, EngineDOM} {
				q, err := Compile(c.query, WithEngine(kind))
				if err != nil {
					t.Fatalf("[%v] compile: %v", kind, err)
				}
				vals, err := q.MatchValues([]byte(c.doc))
				if err != nil {
					t.Fatalf("[%v] run: %v", kind, err)
				}
				got := make([]string, len(vals))
				for i, v := range vals {
					got[i] = string(v)
				}
				if fmt.Sprint(got) != fmt.Sprint(c.want) {
					t.Fatalf("[%v] %s on %s:\n  got  %q\n  want %q",
						kind, c.query, c.doc, got, c.want)
				}
			}
		})
	}
}
