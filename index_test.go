package rsonpath

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestIndexedCompliance runs the whole compliance corpus through the indexed
// path: RunIndexed must produce exactly Run's matches on every well-formed
// document, for single queries and for sets.
func TestIndexedCompliance(t *testing.T) {
	cases := append(append([]complianceCase(nil), complianceCases...), sliceComplianceCases...)
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			doc, err := Index([]byte(c.doc))
			if err != nil {
				t.Fatalf("Index: %v", err)
			}
			q := MustCompile(c.query)
			want, err := q.MatchOffsets([]byte(c.doc))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			got, err := q.MatchOffsetsIndexed(doc)
			if err != nil {
				t.Fatalf("RunIndexed: %v", err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("%s on %s:\n  indexed %v\n  direct  %v", c.query, c.doc, got, want)
			}

			s := MustCompileSet([]string{c.query, "$.*"})
			wantSet, err := s.MatchOffsets([]byte(c.doc))
			if err != nil {
				t.Fatalf("set Run: %v", err)
			}
			gotSet := make([][]int, s.Len())
			if err := s.RunIndexed(doc, func(qi, pos int) { gotSet[qi] = append(gotSet[qi], pos) }); err != nil {
				t.Fatalf("set RunIndexed: %v", err)
			}
			if fmt.Sprint(gotSet) != fmt.Sprint(wantSet) {
				t.Fatalf("set on %s:\n  indexed %v\n  direct  %v", c.doc, gotSet, wantSet)
			}
		})
	}
}

func TestIndexRejectsMalformed(t *testing.T) {
	for _, doc := range []string{
		`"unterminated`, // ends inside a string
		`{"a": "open`,   // ditto, nested
		`{"a": [1, 2]`,  // more opens than closes
		`[[[`,           // ditto
		`{"a": 1}}`,     // more closes than opens
	} {
		_, err := Index([]byte(doc))
		if _, ok := err.(*MalformedError); !ok {
			t.Fatalf("Index(%q): err %v, want *MalformedError", doc, err)
		}
	}
	// The screens are necessary, not sufficient: count-balanced but
	// mismatched brackets pass Index and fail at query time instead.
	if _, err := Index([]byte(`{"a": [1, 2}]`)); err != nil {
		t.Fatalf("screen rejected a count-balanced document: %v", err)
	}
}

// TestIndexedFallbacks pins the documented fallbacks: baseline engines and
// queries compiled WithTimeout answer RunIndexed through a plain Run.
func TestIndexedFallbacks(t *testing.T) {
	data := []byte(`{"a": [{"b": 1}, {"b": 2}]}`)
	doc, err := Index(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]Option{
		{WithEngine(EngineSurfer)},
		{WithEngine(EngineDOM)},
		{WithTimeout(time.Minute)},
	} {
		q, err := Compile("$.a[*].b", opts...)
		if err != nil {
			t.Fatal(err)
		}
		want, err := q.MatchOffsets(data)
		if err != nil {
			t.Fatal(err)
		}
		got, err := q.MatchOffsetsIndexed(doc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("fallback path diverged: %v vs %v", got, want)
		}
	}
	s, err := CompileSet([]string{"$.a[*].b"}, WithTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	counts, err := s.CountsIndexed(doc)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 2 {
		t.Fatalf("set timeout fallback counts %v", counts)
	}
}

// TestIndexedConcurrent shares one IndexedDocument across goroutines and
// queries; run under -race this proves the immutability claim.
func TestIndexedConcurrent(t *testing.T) {
	data := []byte(`{"a": [{"b": 1}, {"b": 2}], "c": {"b": 3}}`)
	doc, err := Index(data)
	if err != nil {
		t.Fatal(err)
	}
	queries := []*Query{MustCompile("$..b"), MustCompile("$.a[*].b"), MustCompile("$.c.b")}
	wants := make([][]int, len(queries))
	for i, q := range queries {
		if wants[i], err = q.MatchOffsets(data); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				i := (g + iter) % len(queries)
				got, err := queries[i].MatchOffsetsIndexed(doc)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if fmt.Sprint(got) != fmt.Sprint(wants[i]) {
					t.Errorf("goroutine %d: %v vs %v", g, got, wants[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// FuzzIndexedEquivalence feeds arbitrary documents to both paths. On valid
// JSON the indexed run must be match-for-match identical to the direct run
// (and Index must accept the document — the screens are necessary
// conditions). On invalid JSON the indexed path may legitimately differ in
// which error it reports, so only valid documents are compared.
func FuzzIndexedEquivalence(f *testing.F) {
	f.Add([]byte(`{"a": [{"b": 1}, {"b": 2}], "c": {"b": 3}}`))
	f.Add([]byte(`[{"deep": {"b": [1, 2, 3]}}, 4]`))
	f.Add([]byte(`{"b": {"b": {"b": 0}}}`))
	f.Add([]byte(`{"x": "][}{\"", "b": 5}`))
	queries := []string{"$..b", "$.a[*].b", "$.*", "$[0]"}
	compiled := make([]*Query, len(queries))
	for i, src := range queries {
		compiled[i] = MustCompile(src)
	}
	set := MustCompileSet(queries)
	f.Fuzz(func(t *testing.T, data []byte) {
		if !json.Valid(data) {
			return
		}
		doc, err := Index(data)
		if err != nil {
			t.Fatalf("Index rejected valid JSON %q: %v", data, err)
		}
		for i, q := range compiled {
			want, werr := q.MatchOffsets(data)
			got, gerr := q.MatchOffsetsIndexed(doc)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("query %s on %q: direct err %v, indexed err %v", queries[i], data, werr, gerr)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("query %s on %q: indexed %v, direct %v", queries[i], data, got, want)
			}
		}
		want, werr := set.MatchOffsets(data)
		gotSet := make([][]int, set.Len())
		gerr := set.RunIndexed(doc, func(qi, pos int) { gotSet[qi] = append(gotSet[qi], pos) })
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("set on %q: direct err %v, indexed err %v", data, werr, gerr)
		}
		if werr == nil && fmt.Sprint(gotSet) != fmt.Sprint(want) {
			t.Fatalf("set on %q: indexed %v, direct %v", data, gotSet, want)
		}
	})
}
