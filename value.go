package rsonpath

import (
	"fmt"

	"rsonpath/internal/classifier"
)

// ValueAt extracts the complete JSON value starting at offset pos in data,
// as reported by Query.Run. The returned slice aliases data. Composite
// values are delimited with the same word-parallel depth scan the engine
// uses for skipping.
func ValueAt(data []byte, pos int) ([]byte, error) {
	if pos < 0 || pos >= len(data) {
		return nil, fmt.Errorf("rsonpath: offset %d out of range", pos)
	}
	switch c := data[pos]; c {
	case '{', '[':
		end, ok := classifier.ScanToClose(data, pos+1, c)
		if !ok {
			return nil, errTruncated
		}
		return data[pos : end+1], nil
	case '"':
		i := pos + 1
		for i < len(data) {
			switch data[i] {
			case '"':
				return data[pos : i+1], nil
			case '\\':
				i += 2
			default:
				i++
			}
		}
		return nil, errTruncated
	default:
		i := pos
		for i < len(data) {
			switch data[i] {
			case ',', '}', ']', ' ', '\t', '\n', '\r':
				return data[pos:i], nil
			}
			i++
		}
		return data[pos:i], nil
	}
}
