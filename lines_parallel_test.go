package rsonpath

// Fault suite for the JSON Lines worker pool: the parallel scan must be
// byte-identical (line numbers, offsets, error classes, degradations) to
// the sequential one at every worker count, deliver in input order, bound
// its concurrency, isolate per-record faults, and leave no goroutine
// behind after a mid-stream stop.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rsonpath/internal/input"
)

// corpusNDJSON compacts every compliance document onto one line and
// interleaves malformed and empty records, so one stream exercises matches,
// misses, and per-record failures together.
func corpusNDJSON(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	var buf bytes.Buffer
	for i, c := range allFaultCases() {
		buf.Reset()
		if err := json.Compact(&buf, []byte(c.doc)); err != nil {
			t.Fatalf("compact %s: %v", c.name, err)
		}
		sb.Write(buf.Bytes())
		sb.WriteByte('\n')
		if i%5 == 0 {
			sb.WriteString("{\"a\": \n") // malformed record
		}
		if i%7 == 0 {
			sb.WriteString("\n") // empty record: counted, skipped
		}
	}
	return sb.String()
}

// lineRecord is one visit call flattened for comparison.
type lineRecord struct {
	line     int
	offsets  string
	errClass string
	degraded bool
}

func errClass(err error) string {
	if err == nil {
		return ""
	}
	var me *MalformedError
	var le *LimitError
	var ie *InternalError
	switch {
	case errors.As(err, &me):
		return "malformed"
	case errors.As(err, &le):
		return "limit"
	case errors.As(err, &ie):
		return "internal"
	default:
		return "other"
	}
}

func collectLines(t *testing.T, run func(visit func(m LineMatch) error) error) []lineRecord {
	t.Helper()
	var out []lineRecord
	if err := run(func(m LineMatch) error {
		out = append(out, lineRecord{
			line:     m.Line,
			offsets:  fmt.Sprint(m.Offsets),
			errClass: errClass(m.Err),
			degraded: m.Outcome != nil && m.Outcome.Degraded(),
		})
		return nil
	}); err != nil {
		t.Fatalf("lines run: %v", err)
	}
	return out
}

func sameLineRecords(a, b []lineRecord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRunLinesParallelMatchesSequential sweeps the compliance corpus as one
// NDJSON stream through the worker pool at several widths and requires the
// delivered stream to be identical to the sequential scan's.
func TestRunLinesParallelMatchesSequential(t *testing.T) {
	ndjson := corpusNDJSON(t)
	for _, query := range []string{"$..a", "$.a", "$..b", "$[*]"} {
		q := MustCompile(query)
		want := collectLines(t, func(v func(m LineMatch) error) error {
			return q.RunLines(strings.NewReader(ndjson), v)
		})
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			workers := workers
			got := collectLines(t, func(v func(m LineMatch) error) error {
				return q.RunLinesParallel(strings.NewReader(ndjson), workers, v)
			})
			if !sameLineRecords(got, want) {
				t.Fatalf("[%s workers=%d] parallel stream differs from sequential:\n got %v\nwant %v",
					query, workers, got, want)
			}
		}
	}
}

// TestRunLinesParallelInOrder forces out-of-order completion — early
// records far heavier than late ones — and requires delivery in input
// order regardless.
func TestRunLinesParallelInOrder(t *testing.T) {
	var sb strings.Builder
	const records = 200
	for i := 0; i < records; i++ {
		if i < 20 {
			fmt.Fprintf(&sb, `{"pad": %q, "a": %d}`+"\n", strings.Repeat("x", 1<<14), i)
		} else {
			fmt.Fprintf(&sb, `{"a": %d}`+"\n", i)
		}
	}
	q := MustCompile("$.a")
	var lines []int
	err := q.RunLinesParallel(strings.NewReader(sb.String()), 8, func(m LineMatch) error {
		lines = append(lines, m.Line)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != records {
		t.Fatalf("%d records delivered, want %d", len(lines), records)
	}
	for i, line := range lines {
		if line != i+1 {
			t.Fatalf("delivery out of order: position %d got line %d", i, line)
		}
	}
}

// countingRunner tracks how many Run calls are in flight at once.
type countingRunner struct {
	inner    runner
	cur, max atomic.Int32
}

func (c *countingRunner) Run(data []byte, emit func(pos int)) error {
	n := c.cur.Add(1)
	for {
		m := c.max.Load()
		if n <= m || c.max.CompareAndSwap(m, n) {
			break
		}
	}
	defer c.cur.Add(-1)
	return c.inner.Run(data, emit)
}

func (c *countingRunner) RunInput(in input.Input, emit func(pos int)) error {
	return c.Run(nil, emit) // not exercised: records stay under one window
}

// TestRunLinesParallelBoundsConcurrency: the pool never evaluates more
// records at once than it has workers.
func TestRunLinesParallelBoundsConcurrency(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&sb, `{"a": [%d, %d]}`+"\n", i, i)
	}
	const workers = 2
	q := MustCompile("$.a[*]")
	cr := &countingRunner{inner: q.run}
	q.run = cr
	err := q.RunLinesParallel(strings.NewReader(sb.String()), workers, func(LineMatch) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if got := cr.max.Load(); got > workers {
		t.Fatalf("observed %d concurrent evaluations, pool width %d", got, workers)
	}
}

// TestRunLinesParallelFaultIsolation injects an engine fault that fires on
// every record: each record must degrade to the DOM oracle independently
// and the delivered stream must equal the oracle's per-record answers.
func TestRunLinesParallelFaultIsolation(t *testing.T) {
	var sb strings.Builder
	const records = 60
	for i := 0; i < records; i++ {
		fmt.Fprintf(&sb, `{"a": %d, "b": {"a": %d}}`+"\n", i, i+1000)
	}
	oracle := MustCompile("$..a", WithEngine(EngineDOM))
	want := collectLines(t, func(v func(m LineMatch) error) error {
		return oracle.RunLines(strings.NewReader(sb.String()), v)
	})
	q := MustCompile("$..a")
	q.run = &faultyRunner{inner: q.run, failAt: -1}
	got := collectLines(t, func(v func(m LineMatch) error) error {
		return q.RunLinesParallel(strings.NewReader(sb.String()), 4, v)
	})
	if len(got) != records {
		t.Fatalf("%d records delivered, want %d", len(got), records)
	}
	for i := range got {
		if !got[i].degraded {
			t.Fatalf("record %d not marked degraded: %+v", i, got[i])
		}
		if got[i].line != want[i].line || got[i].offsets != want[i].offsets || got[i].errClass != want[i].errClass {
			t.Fatalf("record %d = %+v, oracle %+v", i, got[i], want[i])
		}
	}
}

// TestRunLinesParallelVisitErrorStopsCleanly: a visit error stops the scan,
// is returned verbatim, and leaves no goroutine behind.
func TestRunLinesParallelVisitErrorStopsCleanly(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&sb, `{"a": %d}`+"\n", i)
	}
	before := runtime.NumGoroutine()
	stop := errors.New("stop")
	calls := 0
	err := MustCompile("$.a").RunLinesParallel(strings.NewReader(sb.String()), 4, func(LineMatch) error {
		calls++
		return stop
	})
	if !errors.Is(err, stop) || calls != 1 {
		t.Fatalf("calls=%d err=%v, want 1 call and the stop error", calls, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines %d after mid-stream stop, %d before", n, before)
	}
}

// TestRunLinesParallelReadError: a failure of the stream itself (not of a
// record) aborts the scan after the preceding records were delivered.
func TestRunLinesParallelReadError(t *testing.T) {
	boom := errors.New("stream torn")
	r := struct{ io.Reader }{io.MultiReader(
		strings.NewReader(`{"a": 1}`+"\n"+`{"a": 2}`+"\n"),
		errReader{err: boom},
	)}
	var lines []int
	err := MustCompile("$.a").RunLinesParallel(r, 3, func(m LineMatch) error {
		lines = append(lines, m.Line)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err %v, want the stream error", err)
	}
	if len(lines) != 2 {
		t.Fatalf("lines %v, want both records before the tear", lines)
	}
}

// TestQuerySetRunLinesParallelMatchesSequential mirrors the single-query
// sweep for the shared-pass set scan.
func TestQuerySetRunLinesParallelMatchesSequential(t *testing.T) {
	ndjson := corpusNDJSON(t)
	set := MustCompileSet([]string{"$..a", "$..b", "$.a"})
	type setRecord struct {
		line     int
		offsets  string
		errClass string
		degraded bool
	}
	collect := func(run func(visit func(m SetLineMatch) error) error) []setRecord {
		var out []setRecord
		if err := run(func(m SetLineMatch) error {
			out = append(out, setRecord{
				line:     m.Line,
				offsets:  fmt.Sprint(m.Offsets),
				errClass: errClass(m.Err),
				degraded: m.Outcome != nil && m.Outcome.Degraded(),
			})
			return nil
		}); err != nil {
			t.Fatalf("set lines run: %v", err)
		}
		return out
	}
	want := collect(func(v func(m SetLineMatch) error) error {
		return set.RunLines(strings.NewReader(ndjson), v)
	})
	if len(want) == 0 {
		t.Fatal("bad fixture: sequential set scan delivered nothing")
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		got := collect(func(v func(m SetLineMatch) error) error {
			return set.RunLinesParallel(strings.NewReader(ndjson), workers, v)
		})
		if len(got) != len(want) {
			t.Fatalf("[workers=%d] %d records, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("[workers=%d] record %d = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// errReader fails every Read with its error.
type errReader struct{ err error }

func (r errReader) Read([]byte) (int, error) { return 0, r.err }
