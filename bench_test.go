package rsonpath_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (§5), per DESIGN.md's experiment index. The authoritative, full-scale
// regeneration of every table/figure is cmd/rsonbench; these benches run
// the same specs at a reduced dataset scale so `go test -bench .` stays
// tractable. Dataset bytes are counted via b.SetBytes, so the ns/op and
// MB/s columns correspond to the paper's GB/s figures.

import (
	"bytes"
	"fmt"
	"testing"

	"rsonpath"
	"rsonpath/internal/bench"
	"rsonpath/internal/classifier"
	"rsonpath/internal/jsongen"
	"rsonpath/internal/simd"
)

// benchScale shrinks datasets relative to DESIGN.md defaults to keep
// `go test -bench .` runtimes reasonable.
const benchScale = 0.25

var benchHarness = func() *bench.Harness {
	h := bench.NewHarness()
	h.SizeFactor = benchScale
	return h
}()

// benchSpec runs one query spec on one engine under testing.B.
func benchSpec(b *testing.B, id string, kind rsonpath.EngineKind) {
	b.Helper()
	spec, ok := bench.SpecByID(id)
	if !ok {
		b.Fatalf("unknown spec %s", id)
	}
	data, err := benchHarness.Dataset(spec.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	q, err := rsonpath.Compile(spec.Query, rsonpath.WithEngine(kind))
	if err == rsonpath.ErrUnsupportedQuery {
		b.Skipf("%s unsupported by %v", id, kind)
	}
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Count(data); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGroup runs a set of spec IDs across all three engines.
func benchGroup(b *testing.B, ids []string) {
	for _, id := range ids {
		for _, kind := range []rsonpath.EngineKind{rsonpath.EngineRsonpath, rsonpath.EngineSki, rsonpath.EngineSurfer} {
			b.Run(fmt.Sprintf("%s/%s", id, kind), func(b *testing.B) {
				benchSpec(b, id, kind)
			})
		}
	}
}

// BenchmarkFig4 reproduces Experiment A (Table 4 / Figure 4):
// descendant-free queries on all engines.
func BenchmarkFig4(b *testing.B) {
	benchGroup(b, []string{"B1", "B2", "B3", "G1", "G2", "N1", "N2", "T1", "T2", "W1", "W2", "Wi"})
}

// BenchmarkFig5 reproduces Experiment B (Table 5 / Figure 5): the
// descendant rewritings next to their originals.
func BenchmarkFig5(b *testing.B) {
	benchGroup(b, []string{"B1", "B1r", "B2", "B2r", "B3", "B3r", "G2", "G2r", "W1", "W1r", "W2", "W2r", "Wi", "Wir"})
}

// BenchmarkFig6 reproduces Experiment C (Table 6 / Figure 6): queries that
// probe the engine's limitations and opportunities.
func BenchmarkFig6(b *testing.B) {
	benchGroup(b, []string{"A1", "A2", "C1", "C2", "C2r", "C3", "C3r", "Ts", "Tsr", "Tsp"})
}

// BenchmarkTable7 reproduces Experiment D: scalability of
// $..affiliation..name over Crossref fragments of increasing size.
func BenchmarkTable7(b *testing.B) {
	for _, factor := range []float64{0.25, 0.5, 1, 2} {
		b.Run(fmt.Sprintf("scale-%g", factor), func(b *testing.B) {
			data, err := benchHarness.DatasetScaled("crossref", factor)
			if err != nil {
				b.Fatal(err)
			}
			q := rsonpath.MustCompile("$..affiliation..name")
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.Count(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2 reproduces the naive-vs-lookup classification comparison:
// per-block classification cost as the number of accepted byte values
// grows.
func BenchmarkTable2(b *testing.B) {
	blocks := make([]simd.Block, 1024)
	for i := range blocks {
		for j := range blocks[i] {
			blocks[i][j] = byte((i*31 + j*7) % 256)
		}
	}
	for _, k := range []int{1, 2, 4, 8, 16} {
		accepted := map[byte]bool{}
		for i := 0; i < k; i++ {
			accepted[byte(0x20+i*0x11)] = true
		}
		f := func(c byte) bool { return accepted[c] }
		for _, variant := range []struct {
			name string
			c    *classifier.RawClassifier
		}{
			{"naive", classifier.BuildNaive(f)},
			{"lookup", classifier.BuildRaw(f)},
		} {
			b.Run(fmt.Sprintf("values-%d/%s", k, variant.name), func(b *testing.B) {
				b.SetBytes(int64(len(blocks) * simd.BlockSize))
				for i := 0; i < b.N; i++ {
					for j := range blocks {
						bench.Sink ^= variant.c.Classify(&blocks[j])
					}
				}
			})
		}
	}
}

// BenchmarkTable3 measures dataset generation + characteristics (the
// workload-preparation cost behind Table 3).
func BenchmarkTable3(b *testing.B) {
	for _, p := range jsongen.Profiles() {
		b.Run(p.Name, func(b *testing.B) {
			target := int(float64(p.DefaultSize) * benchScale)
			b.SetBytes(int64(target))
			for i := 0; i < b.N; i++ {
				data, err := jsongen.Generate(p.Name, target, 42)
				if err != nil {
					b.Fatal(err)
				}
				_ = data
			}
		})
	}
}

// BenchmarkTable9 measures the node- vs path-semantics evaluation of the
// Appendix D comparison on its example document.
func BenchmarkTable9(b *testing.B) {
	q := rsonpath.MustCompile("$..person..name")
	data := []byte(bench.SemanticsDoc)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := q.Count(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation measures the engine with each skipping technique
// disabled (DESIGN.md's ablation row).
func BenchmarkAblation(b *testing.B) {
	spec, _ := bench.SpecByID("B1r")
	data, err := benchHarness.Dataset(spec.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range bench.AblationVariants {
		b.Run(v.Label, func(b *testing.B) {
			q, err := rsonpath.Compile(spec.Query, rsonpath.WithOptimizations(v.Opt))
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.Count(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStackless compares the three simulation strategies of §3.2 on a
// descendant-only chain: the full engine (head-skip + depth-stack), the
// pure depth-stack simulation (head-skip off), and the depth-register
// stackless automaton.
func BenchmarkStackless(b *testing.B) {
	data, err := benchHarness.Dataset("crossref")
	if err != nil {
		b.Fatal(err)
	}
	const query = "$..affiliation..name"
	variants := []struct {
		name string
		q    *rsonpath.Query
	}{
		{"engine", rsonpath.MustCompile(query)},
		{"depth-stack-only", rsonpath.MustCompile(query,
			rsonpath.WithOptimizations(rsonpath.Optimizations{NoHeadSkip: true}))},
		{"depth-registers", rsonpath.MustCompile(query,
			rsonpath.WithEngine(rsonpath.EngineStackless))},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := v.q.Count(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMultiQuery compares one-pass QuerySet evaluation against N
// independent Query runs on every multi-query workload.
func BenchmarkMultiQuery(b *testing.B) {
	for _, spec := range bench.MultiSpecs {
		data, err := benchHarness.Dataset(spec.Dataset)
		if err != nil {
			b.Fatal(err)
		}
		set, err := rsonpath.CompileSet(spec.Queries)
		if err != nil {
			b.Fatal(err)
		}
		indep := make([]*rsonpath.Query, len(spec.Queries))
		for i, src := range spec.Queries {
			if indep[i], err = rsonpath.Compile(src); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("%s/set", spec.ID), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := set.Counts(data); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/independent", spec.ID), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				for _, q := range indep {
					if _, err := q.Count(data); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkIndexedRepeatQuery compares a cold Run per query against warm
// RunIndexed passes over one prebuilt IndexedDocument at N = 1, 8 and 32
// repeated queries, plus the one-off index build. The full-scale version is
// `rsonbench -exp swar` (BENCH_swar.json).
func BenchmarkIndexedRepeatQuery(b *testing.B) {
	data, err := benchHarness.Dataset("crossref")
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]*rsonpath.Query, len(bench.IndexedRepeatQueries))
	for i, src := range bench.IndexedRepeatQueries {
		queries[i] = rsonpath.MustCompile(src)
	}
	doc, err := rsonpath.Index(data)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("index-build", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := rsonpath.Index(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, n := range []int{1, 8, 32} {
		batch := queries[:n]
		b.Run(fmt.Sprintf("N%d/cold-run", n), func(b *testing.B) {
			b.SetBytes(int64(n * len(data)))
			for i := 0; i < b.N; i++ {
				for _, q := range batch {
					if _, err := q.Count(data); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("N%d/warm-indexed", n), func(b *testing.B) {
			b.SetBytes(int64(n * len(data)))
			for i := 0; i < b.N; i++ {
				for _, q := range batch {
					if _, err := q.CountIndexed(doc); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkStreaming measures what the buffered input costs relative to
// the borrowed (in-memory) input on the same documents and queries: the
// borrowed runs go through Count (zero-copy BytesInput), the buffered runs
// re-read the same bytes through an io.Reader with the default window.
func BenchmarkStreaming(b *testing.B) {
	for _, id := range []string{"B1", "W2", "C1"} {
		spec, ok := bench.SpecByID(id)
		if !ok {
			b.Fatalf("unknown spec %s", id)
		}
		data, err := benchHarness.Dataset(spec.Dataset)
		if err != nil {
			b.Fatal(err)
		}
		q := rsonpath.MustCompile(spec.Query)
		b.Run(id+"/borrowed", func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := q.Count(data); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(id+"/buffered", func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := q.CountReader(bytes.NewReader(data)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
