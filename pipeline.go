package rsonpath

import "sort"

// Pipeline evaluates queries in succession, feeding the output of each
// stage to the next — the compositionality the paper lists as an open
// challenge in §6. This reference implementation re-runs later stages on
// each matched subdocument; results keep node semantics (a set of nodes of
// the original document, in document order) by deduplicating offsets across
// stage outputs.
type Pipeline struct {
	stages []*Query
}

// NewPipeline composes stages left to right. At least one stage is
// required; single-stage pipelines behave exactly like the query itself.
func NewPipeline(stages ...*Query) *Pipeline {
	return &Pipeline{stages: append([]*Query(nil), stages...)}
}

// MatchOffsets returns the byte offsets (into the original document) of the
// values matched by the final stage, deduplicated and in document order.
func (p *Pipeline) MatchOffsets(data []byte) ([]int, error) {
	if len(p.stages) == 0 {
		return nil, nil
	}
	pos := firstNonWS(data)
	if pos == len(data) {
		return nil, nil // empty or whitespace-only document: nothing to match
	}
	current := []int{pos}
	for _, q := range p.stages {
		var next []int
		for _, base := range current {
			v, err := ValueAt(data, base)
			if err != nil {
				return nil, err
			}
			if err := q.Run(v, func(pos int) {
				next = append(next, base+pos)
			}); err != nil {
				return nil, err
			}
		}
		sort.Ints(next)
		next = dedupeSorted(next)
		current = next
	}
	return current, nil
}

// Count returns the number of final-stage matches.
func (p *Pipeline) Count(data []byte) (int, error) {
	offs, err := p.MatchOffsets(data)
	return len(offs), err
}

// MatchValues returns the raw bytes of the final-stage matches.
func (p *Pipeline) MatchValues(data []byte) ([][]byte, error) {
	offs, err := p.MatchOffsets(data)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(offs))
	for i, o := range offs {
		v, err := ValueAt(data, o)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func dedupeSorted(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func firstNonWS(data []byte) int {
	i := 0
	for i < len(data) {
		switch data[i] {
		case ' ', '\t', '\n', '\r':
			i++
		default:
			return i
		}
	}
	return i
}
