package rsonpath

import "sort"

// Pipeline evaluates queries in succession, feeding the output of each
// stage to the next — the compositionality the paper lists as an open
// challenge in §6. This reference implementation re-runs later stages on
// each matched subdocument; results keep node semantics (a set of nodes of
// the original document, in document order) by deduplicating offsets across
// stage outputs. Each stage run dispatches through its query's planner
// (DESIGN.md §13), so a stage compiled under PlannerAuto picks its strategy
// per subdocument.
type Pipeline struct {
	stages []*Query
}

// NewPipeline composes stages left to right. At least one stage is
// required; single-stage pipelines behave exactly like the query itself.
func NewPipeline(stages ...*Query) *Pipeline {
	return &Pipeline{stages: append([]*Query(nil), stages...)}
}

// run is the shared stage driver. When vals is non-nil, the final stage
// extracts each matched value in place — from the enclosing subdocument the
// stage is already scanning — so MatchValues never re-parses offsets the
// stage run just validated. Extracted slices alias data.
func (p *Pipeline) run(data []byte, vals map[int][]byte) ([]int, error) {
	if len(p.stages) == 0 {
		return nil, nil
	}
	pos := firstNonWS(data)
	if pos == len(data) {
		return nil, nil // empty or whitespace-only document: nothing to match
	}
	current := []int{pos}
	for si, q := range p.stages {
		capture := vals != nil && si == len(p.stages)-1
		var next []int
		for _, base := range current {
			v, err := ValueAt(data, base)
			if err != nil {
				return nil, err
			}
			var extractErr error
			if err := q.Run(v, func(pos int) {
				off := base + pos
				next = append(next, off)
				if !capture || extractErr != nil {
					return
				}
				if _, seen := vals[off]; seen {
					return
				}
				val, verr := ValueAt(v, pos)
				if verr != nil {
					extractErr = verr
					return
				}
				vals[off] = val
			}); err != nil {
				return nil, err
			}
			if extractErr != nil {
				return nil, extractErr
			}
		}
		sort.Ints(next)
		next = dedupeSorted(next)
		current = next
	}
	return current, nil
}

// MatchOffsets returns the byte offsets (into the original document) of the
// values matched by the final stage, deduplicated and in document order.
func (p *Pipeline) MatchOffsets(data []byte) ([]int, error) {
	return p.run(data, nil)
}

// Count returns the number of final-stage matches.
func (p *Pipeline) Count(data []byte) (int, error) {
	offs, err := p.MatchOffsets(data)
	return len(offs), err
}

// MatchValues returns the raw bytes of the final-stage matches. The
// returned slices alias data. Values are extracted once, during the final
// stage's own scan; offsets are never re-parsed from the document root.
func (p *Pipeline) MatchValues(data []byte) ([][]byte, error) {
	vals := make(map[int][]byte)
	offs, err := p.run(data, vals)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(offs))
	for i, o := range offs {
		out[i] = vals[o]
	}
	return out, nil
}

func dedupeSorted(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func firstNonWS(data []byte) int {
	i := 0
	for i < len(data) {
		switch data[i] {
		case ' ', '\t', '\n', '\r':
			i++
		default:
			return i
		}
	}
	return i
}
