// Package rsonpath is a streaming JSONPath engine with full support for
// descendant and wildcard selectors, reproducing the system of
// "Supporting Descendants in SIMD-Accelerated JSONPath" (ASPLOS 2023) in
// pure Go.
//
// The engine evaluates the JSONPath fragment
//
//	e ::= $ | e.l | e.* | e..l | e..* | e[n] | e[a:b] | e['l'] | e[*]
//	      | e['a','b',n,a:b]
//
// under node semantics — a query returns the set of matched nodes in
// document order — in a single pass over the raw document bytes, without
// building a DOM. Queries are compiled to minimal deterministic automata
// simulated with a sparse depth-stack, and the byte stream is classified in
// 64-byte blocks by a word-parallel (SWAR) pipeline that fast-forwards
// through irrelevant input: leaves, rejected subtrees, exhausted siblings,
// and — for queries beginning with a descendant selector — everything up to
// the next occurrence of the leading label.
//
// # Quick start
//
//	q, err := rsonpath.Compile("$..user.name")
//	if err != nil { ... }
//	values, err := q.MatchValues(data)
//
// Compiled queries are immutable and safe for concurrent use.
//
// # Engines
//
// Besides the default accelerated engine, four alternative engines are
// available via WithEngine: EngineSurfer, a byte-at-a-time streaming
// baseline with no skipping (JsonSurfer's role in the paper's evaluation);
// EngineSki, a reimplementation of JSONSki's restricted fragment (child and
// array-wildcard selectors only); EngineDOM, the tree-building reference
// implementation, which also supports the legacy path semantics via
// WithSemantics; and EngineStackless, the depth-register automaton of the
// paper's §3.2 for descendant-only label chains.
//
// Query composition (Pipeline), newline-delimited streaming (RunLines),
// value extraction (ValueAt), and string decoding (DecodeString) round out
// the library surface.
package rsonpath
