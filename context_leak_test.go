package rsonpath

// Goroutine-leak regression tests for the ctxReader pump: the helper
// goroutine that shields a run from a blocking reader must wind down as
// soon as its in-flight Read completes, and a canceled streaming run must
// leave no goroutine behind once the reader unblocks. pumpDone is the
// observability hook: the pump closes it on exit.

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"rsonpath/internal/faultreader"
)

// TestCtxReaderPumpWindsDown drives the pump through the blocking-reader
// life cycle directly: a Read stuck in the underlying reader survives the
// consumer's cancellation (the consumer returns immediately), and the pump
// exits — within one read — once the reader unblocks after stop().
func TestCtxReaderPumpWindsDown(t *testing.T) {
	unblock := make(chan struct{})
	r := faultreader.Blocking(nil, 0, unblock) // blocks on the first Read
	ctx, cancel := context.WithCancel(context.Background())
	cr := newCtxReader(ctx, r)

	readErr := make(chan error, 1)
	go func() {
		_, err := cr.Read(make([]byte, 16))
		readErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-readErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Read err %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Read did not observe cancellation while the reader blocked")
	}

	// The pump is still parked in the reader's Read; it must not have died
	// behind the consumer's back.
	select {
	case <-cr.pumpDone:
		t.Fatal("pump exited while its Read was still blocked")
	default:
	}

	cr.stop()
	close(unblock)
	select {
	case <-cr.pumpDone:
	case <-time.After(5 * time.Second):
		t.Fatal("pump leaked: still alive after stop() and an unblocked reader")
	}
}

// TestCtxReaderPumpExitsOnCleanStop: without any blocking, stop() alone
// releases the pump.
func TestCtxReaderPumpExitsOnCleanStop(t *testing.T) {
	cr := newCtxReader(context.Background(), strings.NewReader("{}"))
	if _, err := cr.Read(make([]byte, 2)); err != nil {
		t.Fatalf("read: %v", err)
	}
	cr.stop()
	select {
	case <-cr.pumpDone:
	case <-time.After(5 * time.Second):
		t.Fatal("pump did not exit after stop()")
	}
}

// TestRunReaderContextCancellationNoLeak repeats canceled streaming runs
// against blocking readers and requires the goroutine count to settle back
// to its baseline once the readers unblock — the end-to-end version of the
// pump regression.
func TestRunReaderContextCancellationNoLeak(t *testing.T) {
	const window = 512
	doc := []byte(`{"pad": "` + strings.Repeat("x", 4*window) + `", "a": 1}`)
	q := MustCompile("$.a", WithStreamWindow(window))

	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		unblock := make(chan struct{})
		r := faultreader.Blocking(doc, window, unblock)
		ctx, cancel := context.WithCancel(context.Background())
		time.AfterFunc(10*time.Millisecond, cancel)
		if err := q.RunReaderContext(ctx, r, func(int) {}); !errors.Is(err, ErrCanceled) {
			close(unblock)
			cancel()
			t.Fatalf("run %d: err %v, want ErrCanceled", i, err)
		}
		close(unblock) // release the parked pump
		cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines %d after canceled runs, %d before", n, before)
	}
}
