package rsonpath

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"rsonpath/internal/dom"
	"rsonpath/internal/input"
	"rsonpath/internal/planner"
	"rsonpath/internal/supervisor"
)

// This file is the public face of the execution supervisor (DESIGN.md §10):
// watchdog deadlines, the degradation ladder from the accelerated engines
// down to the DOM oracle, and bounded retries for transient reader errors.
// The generic machinery lives in internal/supervisor; here it is adapted to
// Query and QuerySet runs.

// Outcome records how a supervised run settled: how many engine runs it
// took, which engine produced the delivered result, and — when the
// degradation ladder ran — the primary engine's terminal error. A serving
// stack watches FallbackReason: a non-nil value with a nil run error means
// the query was answered, but by the slow trusted path, and the primary's
// fault deserves a report.
type Outcome struct {
	// Attempts is the total number of engine runs: 1 for a clean first
	// attempt, +1 per retry, +1 if the fallback ran.
	Attempts int
	// Engine names the engine that produced the final result (or final
	// error): the query's own engine, or "dom" after degradation.
	Engine string
	// FallbackReason is the primary engine's terminal error when the
	// fallback ran, nil otherwise. It is always an *InternalError (the only
	// degradable class).
	FallbackReason error
	// Duration is the wall-clock time of the whole supervised run, retries
	// and fallback included.
	Duration time.Duration
}

// Degraded reports whether the result was produced by the fallback engine.
func (o Outcome) Degraded() bool { return o.FallbackReason != nil }

// FallbackMode selects when a supervised run degrades to the DOM oracle.
type FallbackMode int

const (
	// FallbackOnInternalError (the default) re-runs the query on the DOM
	// oracle when the primary engine fails with an *InternalError — a
	// contained panic or another internal fault. Malformed input, resource
	// limits, and cancellation are never laddered: those are the input's or
	// the caller's verdict, and the oracle would only repeat it slowly.
	FallbackOnInternalError FallbackMode = iota
	// FallbackOff disables the degradation ladder; internal errors surface
	// to the caller as they do on the unsupervised entry points.
	FallbackOff
)

// WithTimeout arms a watchdog deadline on every run of the query: streaming
// runs observe it within one window refill (even against a blocked reader),
// in-memory runs on streaming engines within one stream window, and the
// lines family applies it per record. The run returns an error wrapping
// ErrCanceled and context.DeadlineExceeded. EngineDOM runs, which are
// atomic, check the deadline only at entry. 0 (the default) disables the
// watchdog.
func WithTimeout(d time.Duration) Option {
	return func(c *config) { c.timeout = d }
}

// WithFallback selects the degradation-ladder mode for the supervised entry
// points (RunSupervised, RunReaderSupervised, and the lines family). The
// default is FallbackOnInternalError.
//
// Note for EngineSki: its wildcard deliberately skips object fields, so a
// degraded run reports the oracle's (standard) answer, not ski's. Callers
// pinning ski's restricted semantics should pass FallbackOff.
func WithFallback(m FallbackMode) Option {
	return func(c *config) { c.fallback = m }
}

// WithRetry bounds re-running the streaming supervised entry points on
// transient reader errors: an attempt whose error satisfies retryable is
// re-run up to max more times, sleeping backoff in between (the sleep
// observes the context). Retries re-open the input source. The default is
// no retries; errors the predicate rejects are never retried. Retry applies
// only to RunReaderSupervised — in-memory runs have no transient failures
// worth repeating.
func WithRetry(max int, backoff time.Duration, retryable func(error) bool) Option {
	return func(c *config) {
		c.retryMax = max
		c.retryBackoff = backoff
		c.retryable = retryable
	}
}

// supervision is the resolved supervisor configuration carried by Query and
// QuerySet.
type supervision struct {
	timeout      time.Duration
	fallback     FallbackMode
	retryMax     int
	retryBackoff time.Duration
	retryable    func(error) bool
}

func (c *config) resolveSupervision() supervision {
	return supervision{
		timeout:      c.timeout,
		fallback:     c.fallback,
		retryMax:     c.retryMax,
		retryBackoff: c.retryBackoff,
		retryable:    c.retryable,
	}
}

// policy translates the supervision config for internal/supervisor. The
// retry leg is enabled only on the streaming entry points.
func (s supervision) policy(streaming bool) supervisor.Policy {
	p := supervisor.Policy{
		Timeout:     s.timeout,
		FallbackOff: s.fallback == FallbackOff,
		Degradable:  degradable,
	}
	if streaming {
		p.RetryMax = s.retryMax
		p.RetryBackoff = s.retryBackoff
		p.Retryable = s.retryable
	}
	return p
}

// degradable classifies the errors that trigger the ladder: internal faults
// only. Malformed input and limits are authoritative; cancellation is the
// caller's decision.
func degradable(err error) bool {
	var ie *InternalError
	return errors.As(err, &ie)
}

// runCtx is one in-memory run that observes ctx. Documents larger than one
// stream window on a streaming engine run through the buffered-input path
// over a ctxReader, so cancellation and deadlines are honored within one
// window refill; smaller documents — and EngineDOM, whose parse is atomic —
// are checked at entry only (the whole run already fits "within one
// window").
func (q *Query) runCtx(ctx context.Context, data []byte, emit func(pos int)) error {
	if err := q.limits.checkDocBytes(len(data)); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return convertErr(err)
	}
	run, label := q.planRunner(planner.DocStats{Bytes: len(data)})
	sr, ok := run.(inputRunner)
	window := q.window
	if window <= 0 {
		window = DefaultStreamWindow
	}
	if !ok || ctx.Done() == nil || len(data) <= window {
		return guardRun(label, func() error {
			return run.Run(data, q.limits.limitEmit(emit))
		})
	}
	cr := newCtxReader(ctx, bytes.NewReader(data))
	defer cr.stop()
	in := input.NewBuffered(cr, q.window)
	defer in.Release()
	if q.limits.maxDocBytes > 0 {
		in.LimitDocBytes(q.limits.maxDocBytes)
	}
	return guardRun(label, func() error {
		return sr.RunInput(in, q.limits.limitEmit(emit))
	})
}

// oracleAttempt builds the fallback attempt for one in-memory document, or
// nil when the query has no separate oracle (it is already EngineDOM).
func (q *Query) oracleAttempt(data []byte, buf *[]int) *supervisor.Attempt {
	if q.oracle == nil {
		return nil
	}
	return &supervisor.Attempt{Engine: "dom", Run: func(actx context.Context) error {
		*buf = (*buf)[:0]
		if err := actx.Err(); err != nil {
			return convertErr(err)
		}
		return guardRun("dom", func() error {
			return q.oracle.Run(data, q.limits.limitEmit(func(pos int) { *buf = append(*buf, pos) }))
		})
	}}
}

// runSupervisedOffsets is the shared core of the supervised in-memory entry
// points: it runs the ladder and returns the settled attempt's offsets
// (reusing scratch for the buffer).
func (q *Query) runSupervisedOffsets(ctx context.Context, data []byte, scratch []int) ([]int, Outcome, error) {
	buf := scratch[:0]
	// The attempt label mirrors runCtx's own dispatch: Decide is pure, so
	// planning the same stats twice names the engine that actually runs.
	_, label := q.planRunner(planner.DocStats{Bytes: len(data)})
	primary := supervisor.Attempt{Engine: label, Run: func(actx context.Context) error {
		buf = buf[:0]
		return q.runCtx(actx, data, func(pos int) { buf = append(buf, pos) })
	}}
	so, err := supervisor.Run(ctx, q.sup.policy(false), primary, q.oracleAttempt(data, &buf))
	return buf, Outcome(so), err
}

// deliverOffsets replays a settled run's matches into the caller's emit,
// containing a panicking callback the same way a direct run would. A run
// that settled on an internal fault delivers nothing — output from a
// faulted engine cannot be trusted — while a tripped limit or malformed
// input delivers the valid prefix, matching the direct entry points.
func deliverOffsets(engine string, offs []int, emit func(pos int)) error {
	if len(offs) == 0 {
		return nil
	}
	return guardRun(engine, func() error {
		for _, pos := range offs {
			emit(pos)
		}
		return nil
	})
}

// RunSupervised is Run under the execution supervisor: the run observes ctx
// and the configured deadline (WithTimeout), and an internal fault in the
// primary engine transparently re-runs the query on the DOM oracle
// (WithFallback to opt out). Matches are delivered to emit only once the
// run settles — exactly once, in document order, from whichever engine
// produced the final result — so a failed primary attempt never leaks
// partial output. The Outcome reports how the run settled and is valid even
// when the error is non-nil.
func (q *Query) RunSupervised(ctx context.Context, data []byte, emit func(pos int)) (Outcome, error) {
	offs, oc, err := q.runSupervisedOffsets(ctx, data, nil)
	if err != nil && degradable(err) {
		offs = nil
	}
	derr := deliverOffsets(oc.Engine, offs, emit)
	if err == nil {
		err = derr
	}
	return oc, err
}

// closeIfCloser closes r when the source handed us something closable.
func closeIfCloser(r io.Reader) {
	if c, ok := r.(io.Closer); ok {
		c.Close()
	}
}

// readAllForOracle buffers a fresh copy of the document for a DOM fallback
// run, respecting the configured document-size limit.
func (q *Query) readAllForOracle(open func() (io.Reader, error)) ([]byte, error) {
	r, err := open()
	if err != nil {
		return nil, fmt.Errorf("rsonpath: fallback could not reopen the input: %w", err)
	}
	defer closeIfCloser(r)
	if q.limits.maxDocBytes > 0 {
		data, err := io.ReadAll(io.LimitReader(r, int64(q.limits.maxDocBytes)+1))
		if err != nil {
			return nil, err
		}
		if err := q.limits.checkDocBytes(len(data)); err != nil {
			return nil, err
		}
		return data, nil
	}
	return io.ReadAll(r)
}

// RunReaderSupervised is RunReader under the execution supervisor. Because
// a stream cannot be rewound, every attempt — the first run, each retry
// (WithRetry), and the DOM fallback — opens a fresh reader via open; if the
// reader it returns is an io.Closer it is closed when the attempt ends. The
// fallback buffers the whole document (the oracle cannot stream), and
// matches are delivered only once the run settles, so memory is bounded by
// the stream window plus the match offsets — or the document size if the
// ladder runs. Engines that cannot stream return ErrStreamingUnsupported;
// use RunSupervised with the buffered document instead.
func (q *Query) RunReaderSupervised(ctx context.Context, open func() (io.Reader, error), emit func(pos int)) (Outcome, error) {
	sr, label, ok := q.planInputRunner(planner.DocStats{})
	if !ok {
		return Outcome{Engine: q.kind.String()}, ErrStreamingUnsupported
	}
	var buf []int
	primary := supervisor.Attempt{Engine: label, Run: func(actx context.Context) error {
		buf = buf[:0]
		if err := actx.Err(); err != nil {
			return convertErr(err)
		}
		r, err := open()
		if err != nil {
			return err
		}
		defer closeIfCloser(r)
		cr := newCtxReader(actx, r)
		defer cr.stop()
		in := input.NewBuffered(cr, q.window)
		defer in.Release()
		if q.limits.maxDocBytes > 0 {
			in.LimitDocBytes(q.limits.maxDocBytes)
		}
		return guardRun(label, func() error {
			return sr.RunInput(in, q.limits.limitEmit(func(pos int) { buf = append(buf, pos) }))
		})
	}}
	var fb *supervisor.Attempt
	if q.oracle != nil {
		fb = &supervisor.Attempt{Engine: "dom", Run: func(actx context.Context) error {
			buf = buf[:0]
			if err := actx.Err(); err != nil {
				return convertErr(err)
			}
			data, err := q.readAllForOracle(open)
			if err != nil {
				return err
			}
			return guardRun("dom", func() error {
				return q.oracle.Run(data, q.limits.limitEmit(func(pos int) { buf = append(buf, pos) }))
			})
		}}
	}
	so, err := supervisor.Run(ctx, q.sup.policy(true), primary, fb)
	oc := Outcome(so)
	if err != nil && degradable(err) {
		buf = nil
	}
	derr := deliverOffsets(oc.Engine, buf, emit)
	if err == nil {
		err = derr
	}
	return oc, err
}

// setMatch is one (query, offset) pair buffered by a supervised set run.
type setMatch struct {
	query, pos int
}

// runCtx mirrors Query.runCtx for the shared one-pass driver.
func (s *QuerySet) runCtx(ctx context.Context, data []byte, emit func(query, pos int)) error {
	if err := s.limits.checkDocBytes(len(data)); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return convertErr(err)
	}
	window := s.window
	if window <= 0 {
		window = DefaultStreamWindow
	}
	if ctx.Done() == nil || len(data) <= window {
		return guardRun("queryset", func() error {
			return s.set.Run(data, s.limits.limitEmit2(emit))
		})
	}
	cr := newCtxReader(ctx, bytes.NewReader(data))
	defer cr.stop()
	in := input.NewBuffered(cr, s.window)
	defer in.Release()
	if s.limits.maxDocBytes > 0 {
		in.LimitDocBytes(s.limits.maxDocBytes)
	}
	return guardRun("queryset", func() error {
		return s.set.RunInput(in, s.limits.limitEmit2(emit))
	})
}

// runOracle evaluates every member query on the DOM oracle over one parse
// of the document and replays the union in the shared pass's order: by
// offset, then by query index. The match-count limit applies to the replay,
// so a degraded run honors the same bound as the shared pass.
func (s *QuerySet) runOracle(data []byte, buf *[]setMatch) error {
	return guardRun("dom", func() error {
		root, err := dom.ParseLimit(data, s.limits.maxDepth)
		if err != nil {
			return err
		}
		var all []setMatch
		for qi, parsed := range s.parsed {
			for _, n := range dom.Eval(root, parsed, dom.NodeSemantics) {
				all = append(all, setMatch{query: qi, pos: n.Start})
			}
		}
		sort.SliceStable(all, func(i, j int) bool {
			if all[i].pos != all[j].pos {
				return all[i].pos < all[j].pos
			}
			return all[i].query < all[j].query
		})
		emit := s.limits.limitEmit2(func(query, pos int) {
			*buf = append(*buf, setMatch{query: query, pos: pos})
		})
		for _, m := range all {
			emit(m.query, m.pos)
		}
		return nil
	})
}

// runSupervisedMatches is the shared core of the supervised set entry
// points, returning the settled attempt's (query, offset) pairs.
func (s *QuerySet) runSupervisedMatches(ctx context.Context, data []byte, scratch []setMatch) ([]setMatch, Outcome, error) {
	buf := scratch[:0]
	primary := supervisor.Attempt{Engine: "queryset", Run: func(actx context.Context) error {
		buf = buf[:0]
		return s.runCtx(actx, data, func(query, pos int) { buf = append(buf, setMatch{query: query, pos: pos}) })
	}}
	fb := &supervisor.Attempt{Engine: "dom", Run: func(actx context.Context) error {
		buf = buf[:0]
		if err := actx.Err(); err != nil {
			return convertErr(err)
		}
		return s.runOracle(data, &buf)
	}}
	so, err := supervisor.Run(ctx, s.sup.policy(false), primary, fb)
	return buf, Outcome(so), err
}

// deliverMatches is deliverOffsets for the two-argument set callback.
func deliverMatches(engine string, matches []setMatch, emit func(query, pos int)) error {
	if len(matches) == 0 {
		return nil
	}
	return guardRun(engine, func() error {
		for _, m := range matches {
			emit(m.query, m.pos)
		}
		return nil
	})
}

// RunSupervised is QuerySet.Run under the execution supervisor: the shared
// one-pass driver observes ctx and the configured deadline, and an internal
// fault degrades to per-query DOM-oracle runs whose union is replayed in
// the shared pass's order (by offset, then query index). Matches are
// delivered to emit only once the run settles; the Outcome reports which
// path produced them.
func (s *QuerySet) RunSupervised(ctx context.Context, data []byte, emit func(query, pos int)) (Outcome, error) {
	matches, oc, err := s.runSupervisedMatches(ctx, data, nil)
	if err != nil && degradable(err) {
		matches = nil
	}
	derr := deliverMatches(oc.Engine, matches, emit)
	if err == nil {
		err = derr
	}
	return oc, err
}
