package rsonpath

import (
	"strings"
	"testing"
)

const sampleDoc = `{
  "store": {
    "book": [
      {"title": "Sayings", "price": 8.95, "author": {"name": "N"}},
      {"title": "Moby Dick", "price": 8.99}
    ],
    "bicycle": {"price": 19.95}
  },
  "price": 0
}`

func TestCompileAndCount(t *testing.T) {
	q, err := Compile("$..price")
	if err != nil {
		t.Fatal(err)
	}
	n, err := q.Count([]byte(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("Count = %d, want 4", n)
	}
}

func TestMatchValues(t *testing.T) {
	q := MustCompile("$.store.book.*.title")
	vals, err := q.MatchValues([]byte(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || string(vals[0]) != `"Sayings"` || string(vals[1]) != `"Moby Dick"` {
		t.Fatalf("values = %q", vals)
	}
}

func TestMatchValuesComposite(t *testing.T) {
	q := MustCompile("$.store.bicycle")
	vals, err := q.MatchValues([]byte(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || string(vals[0]) != `{"price": 19.95}` {
		t.Fatalf("values = %q", vals)
	}
}

func TestMatchValuesTruncatedShortCircuits(t *testing.T) {
	// The matched value `[1}` never closes its bracket, so extraction fails;
	// the run must be abandoned there instead of scanning on to the
	// document's own malformed end (which would mask the extraction error
	// with the engine's).
	doc := []byte(`{"a": [1}`)
	vals, err := MustCompile("$.a").MatchValues(doc)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("err = %v, want truncated-value error", err)
	}
	if len(vals) != 0 {
		t.Fatalf("values = %q", vals)
	}
}

func TestMatchValuesTruncatedKeepsEarlierValues(t *testing.T) {
	// The first match extracts fine; the second is truncated. The values
	// collected before the failure are returned with the error.
	doc := []byte(`{"a": 1, "b": {"a": [2`)
	vals, err := MustCompile("$..a").MatchValues(doc)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("err = %v, want truncated-value error", err)
	}
	if len(vals) != 1 || string(vals[0]) != "1" {
		t.Fatalf("values = %q", vals)
	}
}

func TestMatchOffsetsOrdered(t *testing.T) {
	q := MustCompile("$..price")
	offs, err := q.MatchOffsets([]byte(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] <= offs[i-1] {
			t.Fatalf("offsets not increasing: %v", offs)
		}
	}
}

func TestEnginesAgree(t *testing.T) {
	doc := []byte(sampleDoc)
	for _, query := range []string{"$.store.book.*.price", "$.store.book.*.title"} {
		baseline := MustCompile(query, WithEngine(EngineSurfer))
		want, err := baseline.MatchOffsets(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range []EngineKind{EngineRsonpath, EngineSki} {
			q, err := Compile(query, WithEngine(kind))
			if err != nil {
				t.Fatalf("%v: %v", kind, err)
			}
			got, err := q.MatchOffsets(doc)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%v on %s: %v, surfer %v", kind, query, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v on %s: %v, surfer %v", kind, query, got, want)
				}
			}
		}
	}
}

func TestSkiRejectsDescendants(t *testing.T) {
	if _, err := Compile("$..a", WithEngine(EngineSki)); err != ErrUnsupportedQuery {
		t.Fatalf("err = %v, want ErrUnsupportedQuery", err)
	}
}

func TestWithOptimizations(t *testing.T) {
	q := MustCompile("$..price", WithOptimizations(Optimizations{
		NoHeadSkip: true, NoSkipChildren: true, NoSkipSiblings: true, NoSkipLeaves: true,
	}))
	n, err := q.Count([]byte(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("Count = %d, want 4", n)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("store.book"); err == nil {
		t.Fatal("missing $ accepted")
	}
	if _, err := Compile("$..a" + strings.Repeat(".*", 16)); err == nil {
		t.Fatal("blowup query accepted")
	}
}

func TestQueryAccessors(t *testing.T) {
	q := MustCompile("$['store'].book", WithEngine(EngineSurfer))
	if q.Source() != "$['store'].book" {
		t.Error("Source mismatch")
	}
	if q.String() != "$.store.book" {
		t.Errorf("String = %q", q.String())
	}
	if q.Engine() != EngineSurfer {
		t.Error("Engine mismatch")
	}
	if EngineRsonpath.String() != "rsonpath" || EngineSki.String() != "ski" ||
		EngineSurfer.String() != "surfer" || EngineKind(9).String() != "EngineKind(9)" {
		t.Error("EngineKind.String wrong")
	}
}

func TestCountReader(t *testing.T) {
	q := MustCompile("$..title")
	n, err := q.CountReader(strings.NewReader(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("CountReader = %d, want 2", n)
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile did not panic")
		}
	}()
	MustCompile("bogus")
}

func TestValueAt(t *testing.T) {
	doc := []byte(`{"a": [1, "s\"x", {"b": 2}], "n": -1.5e3, "t": true}`)
	cases := []struct {
		pos  int
		want string
	}{
		{0, string(doc)},
		{6, `[1, "s\"x", {"b": 2}]`},
		{7, "1"},
		{10, `"s\"x"`},
		{18, `{"b": 2}`},
	}
	for _, c := range cases {
		got, err := ValueAt(doc, c.pos)
		if err != nil {
			t.Fatalf("ValueAt(%d): %v", c.pos, err)
		}
		if string(got) != c.want {
			t.Fatalf("ValueAt(%d) = %q, want %q", c.pos, got, c.want)
		}
	}
}

func TestValueAtErrors(t *testing.T) {
	if _, err := ValueAt([]byte(`{}`), 5); err == nil {
		t.Error("out of range accepted")
	}
	if _, err := ValueAt([]byte(`{"a":`), 0); err == nil {
		t.Error("truncated object accepted")
	}
	if _, err := ValueAt([]byte(`"unterminated`), 0); err == nil {
		t.Error("truncated string accepted")
	}
	if v, err := ValueAt([]byte(`12345`), 0); err != nil || string(v) != "12345" {
		t.Errorf("scalar at EOF: %q, %v", v, err)
	}
}

func TestConcurrentUse(t *testing.T) {
	// Compiled queries must be safe for concurrent use: each Run carries
	// its own state.
	q := MustCompile("$..price")
	data := []byte(sampleDoc)
	done := make(chan int, 16)
	for i := 0; i < 16; i++ {
		go func() {
			total := 0
			for j := 0; j < 50; j++ {
				n, err := q.Count(data)
				if err != nil {
					total = -1
					break
				}
				total += n
			}
			done <- total
		}()
	}
	for i := 0; i < 16; i++ {
		if got := <-done; got != 50*4 {
			t.Fatalf("concurrent run returned %d, want %d", got, 200)
		}
	}
}

func TestTailSkipOption(t *testing.T) {
	q := MustCompile("$.store..price", WithOptimizations(Optimizations{TailSkip: true}))
	n, err := q.Count([]byte(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("Count = %d, want 3", n)
	}
}

func TestUnionQueries(t *testing.T) {
	q := MustCompile("$.store.book.*['title','price']")
	n, err := q.Count([]byte(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("Count = %d, want 4", n)
	}
}

func TestUTF8LabelsAndValues(t *testing.T) {
	doc := `{"日本語": {"ключ": [1, 2]}, "emoji🎉": "värde", "x": {"日本語": 3}}`
	for _, c := range []struct {
		query string
		want  int
	}{
		{"$.日本語.ключ.*", 2},
		{"$..日本語", 2},
		{"$['emoji🎉']", 1},
		{"$..ключ", 1},
	} {
		for _, kind := range []EngineKind{EngineRsonpath, EngineSurfer} {
			q := MustCompile(c.query, WithEngine(kind))
			n, err := q.Count([]byte(doc))
			if err != nil {
				t.Fatalf("%s (%v): %v", c.query, kind, err)
			}
			if n != c.want {
				t.Fatalf("%s (%v): %d matches, want %d", c.query, kind, n, c.want)
			}
		}
	}
}

func TestEngineDOM(t *testing.T) {
	doc := []byte(`{"person": {"name": "A", "person": {"name": "B"}}}`)
	node := MustCompile("$..person..name", WithEngine(EngineDOM))
	n, err := node.Count(doc)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("node semantics count = %d, want 2", n)
	}
	path := MustCompile("$..person..name", WithEngine(EngineDOM), WithSemantics(PathSemantics))
	n, err = path.Count(doc)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 { // "B" reachable through both person matches
		t.Fatalf("path semantics count = %d, want 3", n)
	}
	if EngineDOM.String() != "dom" {
		t.Error("EngineDOM name")
	}
	// DOM engine validates strictly.
	if _, err := node.Count([]byte(`{"a":`)); err == nil {
		t.Error("malformed input accepted by DOM engine")
	}
}

func TestPathSemanticsRequiresDOM(t *testing.T) {
	if _, err := Compile("$..a", WithSemantics(PathSemantics)); err == nil {
		t.Fatal("path semantics accepted on streaming engine")
	}
	if _, err := Compile("$..a", WithSemantics(NodeSemantics)); err != nil {
		t.Fatal(err)
	}
}

func TestAllEnginesAgreeOnNodeSemantics(t *testing.T) {
	doc := []byte(sampleDoc)
	want, err := MustCompile("$.store.book.*.price", WithEngine(EngineDOM)).MatchOffsets(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []EngineKind{EngineRsonpath, EngineSurfer, EngineSki} {
		got, err := MustCompile("$.store.book.*.price", WithEngine(kind)).MatchOffsets(doc)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v disagrees with DOM: %v vs %v", kind, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v disagrees with DOM: %v vs %v", kind, got, want)
			}
		}
	}
}

func TestEngineStackless(t *testing.T) {
	doc := []byte(`{"a": {"x": {"b": 1}}, "b": 2}`)
	q := MustCompile("$..a..b", WithEngine(EngineStackless))
	n, err := q.Count(doc)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("count %d, want 1", n)
	}
	if EngineStackless.String() != "stackless" {
		t.Error("EngineStackless name")
	}
	if _, err := Compile("$.a..b", WithEngine(EngineStackless)); err != ErrUnsupportedQuery {
		t.Fatalf("mixed query err = %v, want ErrUnsupportedQuery", err)
	}
}
