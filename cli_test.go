package rsonpath_test

// End-to-end smoke tests for the command-line tools: build each binary and
// drive it the way a user would.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one of the cmd/ binaries into a test temp dir.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func TestCLIRsonpath(t *testing.T) {
	bin := buildTool(t, "rsonpath")
	doc := filepath.Join(t.TempDir(), "doc.json")
	if err := os.WriteFile(doc, []byte(`{"a": {"url": "x"}, "b": [{"url": "y"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := exec.Command(bin, "$..url", doc).Output()
	if err != nil {
		t.Fatalf("rsonpath: %v", err)
	}
	if got := strings.TrimSpace(string(out)); got != "\"x\"\n\"y\"" {
		t.Fatalf("values output %q", got)
	}

	out, err = exec.Command(bin, "-count", "$..url", doc).Output()
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(out)) != "2" {
		t.Fatalf("count output %q", out)
	}

	out, err = exec.Command(bin, "-offsets", "$.a.url", doc).Output()
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(out)) != "14" {
		t.Fatalf("offsets output %q", out)
	}

	// stdin mode with an explicit engine.
	cmd := exec.Command(bin, "-engine", "surfer", "-count", "$.b.*.url")
	cmd.Stdin = strings.NewReader(`{"a": 0, "b": [{"url": 1}]}`)
	out, err = cmd.Output()
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(out)) != "1" {
		t.Fatalf("stdin output %q", out)
	}

	// Errors exit non-zero.
	if err := exec.Command(bin, "not-a-query", doc).Run(); err == nil {
		t.Fatal("bad query accepted")
	}
	if err := exec.Command(bin, "-engine", "nope", "$.a", doc).Run(); err == nil {
		t.Fatal("bad engine accepted")
	}
	if err := exec.Command(bin).Run(); err == nil {
		t.Fatal("missing args accepted")
	}
}

func TestCLIJsongen(t *testing.T) {
	bin := buildTool(t, "jsongen")

	out, err := exec.Command(bin, "-list").Output()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ast", "bestbuy", "walmart", "twitter_small"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("-list output missing %s:\n%s", want, out)
		}
	}

	dest := filepath.Join(t.TempDir(), "tiny.json")
	if out, err := exec.Command(bin, "-dataset", "walmart", "-size", "20000", "-out", dest).CombinedOutput(); err != nil {
		t.Fatalf("generate: %v\n%s", err, out)
	}
	data, err := os.ReadFile(dest)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 20000 {
		t.Fatalf("generated %d bytes", len(data))
	}

	out, err = exec.Command(bin, "-dataset", "nspl", "-size", "20000", "-stats").Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "verbosity=") {
		t.Fatalf("-stats output %q", out)
	}

	if err := exec.Command(bin, "-dataset", "bogus").Run(); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestCLIRsonbench(t *testing.T) {
	bin := buildTool(t, "rsonbench")

	out, err := exec.Command(bin, "-exp", "semantics").Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `["A", "B", "C", "D"]`) {
		t.Fatalf("semantics output:\n%s", out)
	}

	out, err = exec.Command(bin, "-exp", "table2").Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "naive") {
		t.Fatalf("table2 output:\n%s", out)
	}

	// A minimal timed experiment at a tiny scale.
	out, err = exec.Command(bin, "-exp", "d", "-scale", "0.01", "-samples", "1").Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "GB/s") {
		t.Fatalf("experiment d output:\n%s", out)
	}

	if err := exec.Command(bin, "-exp", "bogus").Run(); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestCLIRsonpathLines(t *testing.T) {
	bin := buildTool(t, "rsonpath")
	input := `{"a": 1}` + "\n" + `{"b": 0}` + "\n" + `{"a": [2, 3]}` + "\n"

	cmd := exec.Command(bin, "-lines", "-count", "$.a")
	cmd.Stdin = strings.NewReader(input)
	out, err := cmd.Output()
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(out)) != "2" {
		t.Fatalf("lines count %q", out)
	}

	cmd = exec.Command(bin, "-lines", "$.a")
	cmd.Stdin = strings.NewReader(input)
	out, err = cmd.Output()
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(out)) != "1\n[2, 3]" {
		t.Fatalf("lines values %q", out)
	}

	cmd = exec.Command(bin, "-lines", "-offsets", "$.a")
	cmd.Stdin = strings.NewReader(input)
	out, err = cmd.Output()
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(out)) != "1:6\n3:6" {
		t.Fatalf("lines offsets %q", out)
	}

	// DOM engine via CLI.
	cmd = exec.Command(bin, "-engine", "dom", "-count", "$..a")
	cmd.Stdin = strings.NewReader(`{"a": {"a": 1}}`)
	out, err = cmd.Output()
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(out)) != "2" {
		t.Fatalf("dom count %q", out)
	}
}
