package rsonpath_test

// End-to-end smoke tests for the command-line tools: build each binary and
// drive it the way a user would.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one of the cmd/ binaries into a test temp dir.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func TestCLIRsonpath(t *testing.T) {
	bin := buildTool(t, "rsonpath")
	doc := filepath.Join(t.TempDir(), "doc.json")
	if err := os.WriteFile(doc, []byte(`{"a": {"url": "x"}, "b": [{"url": "y"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := exec.Command(bin, "$..url", doc).Output()
	if err != nil {
		t.Fatalf("rsonpath: %v", err)
	}
	if got := strings.TrimSpace(string(out)); got != "\"x\"\n\"y\"" {
		t.Fatalf("values output %q", got)
	}

	out, err = exec.Command(bin, "-count", "$..url", doc).Output()
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(out)) != "2" {
		t.Fatalf("count output %q", out)
	}

	out, err = exec.Command(bin, "-offsets", "$.a.url", doc).Output()
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(out)) != "14" {
		t.Fatalf("offsets output %q", out)
	}

	// stdin mode with an explicit engine.
	cmd := exec.Command(bin, "-engine", "surfer", "-count", "$.b.*.url")
	cmd.Stdin = strings.NewReader(`{"a": 0, "b": [{"url": 1}]}`)
	out, err = cmd.Output()
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(out)) != "1" {
		t.Fatalf("stdin output %q", out)
	}

	// "-" names stdin explicitly (streamed, never buffered whole).
	cmd = exec.Command(bin, "$..url", "-")
	cmd.Stdin = strings.NewReader(`{"a": {"url": "x"}, "b": [{"url": "y"}]}`)
	out, err = cmd.Output()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(out)); got != "\"x\"\n\"y\"" {
		t.Fatalf("dash stdin output %q", got)
	}

	// DOM cannot stream; the CLI must fall back to buffering, not fail.
	cmd = exec.Command(bin, "-engine", "dom", "-count", "$..url", "-")
	cmd.Stdin = strings.NewReader(`{"url": 1}`)
	out, err = cmd.Output()
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(out)) != "1" {
		t.Fatalf("dom dash stdin output %q", out)
	}

	// Errors exit non-zero.
	if err := exec.Command(bin, "not-a-query", doc).Run(); err == nil {
		t.Fatal("bad query accepted")
	}
	if err := exec.Command(bin, "-engine", "nope", "$.a", doc).Run(); err == nil {
		t.Fatal("bad engine accepted")
	}
	if err := exec.Command(bin).Run(); err == nil {
		t.Fatal("missing args accepted")
	}
}

func TestCLIJsongen(t *testing.T) {
	bin := buildTool(t, "jsongen")

	out, err := exec.Command(bin, "-list").Output()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ast", "bestbuy", "walmart", "twitter_small"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("-list output missing %s:\n%s", want, out)
		}
	}

	dest := filepath.Join(t.TempDir(), "tiny.json")
	if out, err := exec.Command(bin, "-dataset", "walmart", "-size", "20000", "-out", dest).CombinedOutput(); err != nil {
		t.Fatalf("generate: %v\n%s", err, out)
	}
	data, err := os.ReadFile(dest)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 20000 {
		t.Fatalf("generated %d bytes", len(data))
	}

	out, err = exec.Command(bin, "-dataset", "nspl", "-size", "20000", "-stats").Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "verbosity=") {
		t.Fatalf("-stats output %q", out)
	}

	if err := exec.Command(bin, "-dataset", "bogus").Run(); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestCLIRsonbench(t *testing.T) {
	bin := buildTool(t, "rsonbench")

	out, err := exec.Command(bin, "-exp", "semantics").Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `["A", "B", "C", "D"]`) {
		t.Fatalf("semantics output:\n%s", out)
	}

	out, err = exec.Command(bin, "-exp", "table2").Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "naive") {
		t.Fatalf("table2 output:\n%s", out)
	}

	// A minimal timed experiment at a tiny scale.
	out, err = exec.Command(bin, "-exp", "d", "-scale", "0.01", "-samples", "1").Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "GB/s") {
		t.Fatalf("experiment d output:\n%s", out)
	}

	if err := exec.Command(bin, "-exp", "bogus").Run(); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestCLIRsonpathLines(t *testing.T) {
	bin := buildTool(t, "rsonpath")
	input := `{"a": 1}` + "\n" + `{"b": 0}` + "\n" + `{"a": [2, 3]}` + "\n"

	cmd := exec.Command(bin, "-lines", "-count", "$.a")
	cmd.Stdin = strings.NewReader(input)
	out, err := cmd.Output()
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(out)) != "2" {
		t.Fatalf("lines count %q", out)
	}

	cmd = exec.Command(bin, "-lines", "$.a")
	cmd.Stdin = strings.NewReader(input)
	out, err = cmd.Output()
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(out)) != "1\n[2, 3]" {
		t.Fatalf("lines values %q", out)
	}

	cmd = exec.Command(bin, "-lines", "-offsets", "$.a")
	cmd.Stdin = strings.NewReader(input)
	out, err = cmd.Output()
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(out)) != "1:6\n3:6" {
		t.Fatalf("lines offsets %q", out)
	}

	// DOM engine via CLI.
	cmd = exec.Command(bin, "-engine", "dom", "-count", "$..a")
	cmd.Stdin = strings.NewReader(`{"a": {"a": 1}}`)
	out, err = cmd.Output()
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(out)) != "2" {
		t.Fatalf("dom count %q", out)
	}
}

func TestCLIRsonpathLinesParallel(t *testing.T) {
	bin := buildTool(t, "rsonpath")
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, `{"a": %d}`+"\n", i)
		if i%50 == 0 {
			sb.WriteString(`{"a": ` + "\n") // malformed record
		}
	}
	input := sb.String()

	seq := exec.Command(bin, "-lines", "$.a")
	seq.Stdin = strings.NewReader(input)
	seqOut, err := seq.Output()
	var seqExit *exec.ExitError
	if err != nil && !errors.As(err, &seqExit) {
		t.Fatal(err)
	}

	par := exec.Command(bin, "-lines", "-parallel", "4", "$.a")
	par.Stdin = strings.NewReader(input)
	parOut, err := par.Output()
	var parExit *exec.ExitError
	if err != nil && !errors.As(err, &parExit) {
		t.Fatal(err)
	}

	if !bytes.Equal(seqOut, parOut) {
		t.Fatalf("parallel output differs from sequential:\n%q\nvs\n%q", parOut, seqOut)
	}
	seqCode, parCode := 0, 0
	if seqExit != nil {
		seqCode = seqExit.ExitCode()
	}
	if parExit != nil {
		parCode = parExit.ExitCode()
	}
	if seqCode != parCode || seqCode != 3 {
		t.Fatalf("exit codes: sequential %d, parallel %d, want both 3 (malformed records)", seqCode, parCode)
	}
}

func TestCLIRsonpathMultiQuery(t *testing.T) {
	bin := buildTool(t, "rsonpath")
	doc := filepath.Join(t.TempDir(), "doc.json")
	if err := os.WriteFile(doc, []byte(`{"a": 1, "b": {"a": 2}}`), 0o644); err != nil {
		t.Fatal(err)
	}

	// Repeated -e flags: tagged values in document order.
	out, err := exec.Command(bin, "-e", "$..a", "-e", "$.b", doc).Output()
	if err != nil {
		t.Fatalf("rsonpath -e: %v", err)
	}
	if got := strings.TrimSpace(string(out)); got != "0:1\n1:{\"a\": 2}\n0:2" {
		t.Fatalf("multi values output %q", got)
	}

	// Tagged counts.
	out, err = exec.Command(bin, "-count", "-e", "$..a", "-e", "$.b", doc).Output()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(out)); got != "0:2\n1:1" {
		t.Fatalf("multi count output %q", got)
	}

	// Tagged offsets.
	out, err = exec.Command(bin, "-offsets", "-e", "$..a", "-e", "$.b", doc).Output()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(out)); got != "0:6\n1:14\n0:20" {
		t.Fatalf("multi offsets output %q", got)
	}

	// -queries FILE with comments and blank lines, combined after -e.
	qfile := filepath.Join(t.TempDir(), "queries.txt")
	if err := os.WriteFile(qfile, []byte("# comment\n$.b\n\n$..a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(bin, "-count", "-queries", qfile, doc).Output()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(out)); got != "0:1\n1:2" {
		t.Fatalf("-queries count output %q", got)
	}
	out, err = exec.Command(bin, "-count", "-e", "$.a", "-queries", qfile, doc).Output()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(out)); got != "0:1\n1:1\n2:2" {
		t.Fatalf("-e + -queries count output %q", got)
	}

	// stdin mode.
	cmd := exec.Command(bin, "-count", "-e", "$.a")
	cmd.Stdin = strings.NewReader(`{"a": 1}`)
	out, err = cmd.Output()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(out)); got != "0:1" {
		t.Fatalf("stdin multi count %q", got)
	}

	// Unsupported combinations exit non-zero.
	if err := exec.Command(bin, "-lines", "-e", "$.a", doc).Run(); err == nil {
		t.Fatal("-lines with -e accepted")
	}
	if err := exec.Command(bin, "-engine", "dom", "-e", "$.a", doc).Run(); err == nil {
		t.Fatal("-engine dom with -e accepted")
	}
	if err := exec.Command(bin, "-e", "$.a", doc, "extra").Run(); err == nil {
		t.Fatal("extra positional arg with -e accepted")
	}
	if err := exec.Command(bin, "-queries", filepath.Join(t.TempDir(), "missing.txt"), doc).Run(); err == nil {
		t.Fatal("missing query file accepted")
	}
}

func TestCLIRsonpathIndexed(t *testing.T) {
	bin := buildTool(t, "rsonpath")
	doc := filepath.Join(t.TempDir(), "doc.json")
	if err := os.WriteFile(doc, []byte(`{"a": 1, "b": {"a": 2}}`), 0o644); err != nil {
		t.Fatal(err)
	}

	// -index output must match the QuerySet path, mode by mode, except that
	// matches arrive grouped by query (one RunIndexed per query) rather than
	// interleaved in document order.
	out, err := exec.Command(bin, "-index", "-e", "$..a", "-e", "$.b", doc).Output()
	if err != nil {
		t.Fatalf("rsonpath -index: %v", err)
	}
	if got := strings.TrimSpace(string(out)); got != "0:1\n0:2\n1:{\"a\": 2}" {
		t.Fatalf("indexed values output %q", got)
	}
	out, err = exec.Command(bin, "-index", "-count", "-e", "$..a", "-e", "$.b", doc).Output()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(out)); got != "0:2\n1:1" {
		t.Fatalf("indexed count output %q", got)
	}
	out, err = exec.Command(bin, "-index", "-offsets", "-e", "$..a", "-e", "$.b", doc).Output()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(out)); got != "0:6\n0:20\n1:14" {
		t.Fatalf("indexed offsets output %q", got)
	}

	// Malformed input is rejected by the index screens with the malformed
	// exit code.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"a": [1, 2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var ee *exec.ExitError
	if err := exec.Command(bin, "-index", "-count", "-e", "$.a", bad).Run(); !errors.As(err, &ee) || ee.ExitCode() != 3 {
		t.Fatalf("malformed doc under -index: err %v", err)
	}

	// -index requires the multi-query form and rejects -lines.
	if err := exec.Command(bin, "-index", "$.a", doc).Run(); err == nil {
		t.Fatal("-index without -e accepted")
	}
	if err := exec.Command(bin, "-index", "-lines", "-e", "$.a", doc).Run(); err == nil {
		t.Fatal("-index with -lines accepted")
	}
}

func TestCLIRsonbenchMultiQueryJSON(t *testing.T) {
	bin := buildTool(t, "rsonbench")
	dir := t.TempDir()

	out, err := exec.Command(bin, "-exp", "multiquery", "-scale", "0.02", "-samples", "1", "-json", dir).Output()
	if err != nil {
		t.Fatalf("rsonbench multiquery: %v", err)
	}
	for _, want := range []string{"MQ2", "MQ8", "MQ32", "speedup"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("multiquery output missing %s:\n%s", want, out)
		}
	}

	data, err := os.ReadFile(filepath.Join(dir, "BENCH_multiquery.json"))
	if err != nil {
		t.Fatalf("BENCH_multiquery.json not written: %v", err)
	}
	var results []map[string]any
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatalf("BENCH_multiquery.json is not valid JSON: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("expected 4 workload records, got %d", len(results))
	}
	for _, r := range results {
		for _, field := range []string{"id", "dataset", "n", "bytes", "matches",
			"set_seconds", "set_gbps", "indep_seconds", "indep_gbps", "speedup"} {
			if _, ok := r[field]; !ok {
				t.Fatalf("record %v missing field %q", r["id"], field)
			}
		}
	}
}

func TestCLIRsonbenchParallelLinesJSON(t *testing.T) {
	bin := buildTool(t, "rsonbench")
	dir := t.TempDir()

	out, err := exec.Command(bin, "-exp", "parallel_lines", "-scale", "0.02", "-samples", "1", "-json", dir).Output()
	if err != nil {
		t.Fatalf("rsonbench parallel_lines: %v", err)
	}
	for _, want := range []string{"PL", "workers", "speedup"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("parallel_lines output missing %s:\n%s", want, out)
		}
	}

	data, err := os.ReadFile(filepath.Join(dir, "BENCH_parallel_lines.json"))
	if err != nil {
		t.Fatalf("BENCH_parallel_lines.json not written: %v", err)
	}
	var results []map[string]any
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatalf("BENCH_parallel_lines.json is not valid JSON: %v", err)
	}
	if len(results) < 2 {
		t.Fatalf("expected a sequential baseline plus at least one pool width, got %d records", len(results))
	}
	var matches []any
	for _, r := range results {
		for _, field := range []string{"id", "dataset", "query", "workers", "records",
			"bytes", "matches", "seconds", "gbps", "speedup"} {
			if _, ok := r[field]; !ok {
				t.Fatalf("record %v missing field %q", r, field)
			}
		}
		matches = append(matches, r["matches"])
	}
	for _, m := range matches[1:] {
		if m != matches[0] {
			t.Fatalf("match counts disagree across widths: %v", matches)
		}
	}
}
