package rsonpath

import (
	"bytes"
	"strings"
	"testing"
)

// The allocation ceilings below are regression guards for the scratch pools
// (input.BufferedInput window buffers, the lines families' offset and match
// buffers): measured steady-state counts padded ~50% for toolchain noise. A
// failure here means a hot path regained a per-run or per-record allocation
// the pools were added to remove — most likely a NewBuffered call site that
// lost its Release, or a lines eval that stopped threading its scratch.

func allocFixtures() (*Query, *QuerySet, []byte, []byte) {
	q := MustCompile("$.a[*].b")
	s := MustCompileSet([]string{"$.a[*].b", "$.x"})
	doc := []byte(`{"a":[{"b":1},{"b":2},{"b":3}],"x":"` + strings.Repeat("y", 200) + `"}`)
	var lines bytes.Buffer
	for i := 0; i < 64; i++ {
		lines.Write(doc)
		lines.WriteByte('\n')
	}
	return q, s, doc, lines.Bytes()
}

func TestRunReaderAllocs(t *testing.T) {
	q, _, doc, _ := allocFixtures()
	got := testing.AllocsPerRun(50, func() {
		if err := q.RunReader(bytes.NewReader(doc), func(int) {}); err != nil {
			t.Fatal(err)
		}
	})
	// Steady state measures 6; in particular the ~288 KiB window buffer must
	// come from the pool, not a fresh make, on every run after the first.
	if got > 12 {
		t.Fatalf("RunReader: %.1f allocs/run, want <= 12", got)
	}
}

func TestSetRunLinesAllocs(t *testing.T) {
	_, s, _, lines := allocFixtures()
	const records = 64
	got := testing.AllocsPerRun(20, func() {
		if err := s.RunLines(bytes.NewReader(lines), func(SetLineMatch) error { return nil }); err != nil {
			t.Fatal(err)
		}
	})
	if per := got / records; per > 24 {
		t.Fatalf("QuerySet.RunLines: %.2f allocs/record, want <= 24", per)
	}
}

func TestRunLinesParallelAllocs(t *testing.T) {
	q, _, _, lines := allocFixtures()
	const records = 64
	// One worker keeps the schedule deterministic; the pools are what is
	// under test, not the pool of workers.
	got := testing.AllocsPerRun(20, func() {
		if err := q.RunLinesParallel(bytes.NewReader(lines), 1, func(LineMatch) error { return nil }); err != nil {
			t.Fatal(err)
		}
	})
	if per := got / records; per > 20 {
		t.Fatalf("Query.RunLinesParallel: %.2f allocs/record, want <= 20", per)
	}
}
