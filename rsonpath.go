package rsonpath

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"rsonpath/internal/automaton"
	"rsonpath/internal/dom"
	"rsonpath/internal/engine"
	"rsonpath/internal/jsonpath"
	"rsonpath/internal/planner"
	"rsonpath/internal/ski"
	"rsonpath/internal/surfer"
)

// errPathSemantics rejects PathSemantics on streaming engines: reproducing
// access-path multiplicities would require unbounded working memory (§2).
var errPathSemantics = errors.New("rsonpath: path semantics requires EngineDOM")

// EngineKind selects the execution engine backing a Query.
type EngineKind int

const (
	// EngineRsonpath is the paper's engine: SWAR classification, skipping,
	// depth-stack simulation. The default.
	EngineRsonpath EngineKind = iota
	// EngineSurfer is the non-accelerated streaming baseline (full
	// fragment, no skipping).
	EngineSurfer
	// EngineSki is the JSONSki-analogue baseline (child and array-wildcard
	// selectors only; returns ErrUnsupportedQuery otherwise).
	EngineSki
	// EngineDOM parses the document into a tree and evaluates the query
	// recursively — the reference implementation. The only engine that
	// supports PathSemantics.
	EngineDOM
	// EngineStackless simulates the depth-register automata of §3.2 (no
	// stack at all); it supports only descendant-only label chains like
	// $..a..b and returns ErrUnsupportedQuery otherwise.
	EngineStackless
)

// String returns the engine name used in benchmark output.
func (k EngineKind) String() string {
	switch k {
	case EngineRsonpath:
		return "rsonpath"
	case EngineSurfer:
		return "surfer"
	case EngineSki:
		return "ski"
	case EngineDOM:
		return "dom"
	case EngineStackless:
		return "stackless"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// ErrUnsupportedQuery is returned when a query uses selectors the chosen
// engine cannot execute (EngineSki's fragment and EngineStackless's
// descendant-only chains).
var ErrUnsupportedQuery = ski.ErrUnsupported

// Optimizations toggles the accelerated engine's skipping techniques
// (§3.3 of the paper); all are enabled by default. Used by the ablation
// benchmarks; leave untouched otherwise.
type Optimizations struct {
	NoHeadSkip     bool // disable skipping to the first descendant label
	NoSkipChildren bool // disable fast-forwarding over rejected subtrees
	NoSkipSiblings bool // disable fast-forwarding after unitary matches
	NoSkipLeaves   bool // keep commas/colons always enabled
	// TailSkip enables the paper's §4.5 future-work classifier: in
	// non-initial descendant segments the engine fast-forwards to the next
	// occurrence of the sought label within the current element. Off by
	// default (the paper's configuration).
	TailSkip bool
}

// Option configures Compile.
type Option func(*config)

type config struct {
	kind      EngineKind
	kindSet   bool        // WithEngine was given: the engine is a forced planner constraint
	planner   PlannerMode // WithPlanner; PlannerAuto by default
	opt       Optimizations
	semantics Semantics
	window    int // RunReader window size; 0 = DefaultStreamWindow

	// Resource limits (errors.go): 0 = default, negative = unlimited.
	maxDepth    int
	maxMatches  int
	maxDocBytes int

	// Supervision (supervisor.go): watchdog deadline, degradation ladder,
	// retry policy.
	timeout      time.Duration
	fallback     FallbackMode
	retryMax     int
	retryBackoff time.Duration
	retryable    func(error) bool
}

// WithEngine pins the execution engine. Under the planner this is a
// constraint — the plan is forced to the chosen engine — not a separate
// dispatch path; an accelerated engine in hand of an IndexedDocument still
// serves from the index (the plane-backed run is the same engine fed from
// precomputed masks).
func WithEngine(kind EngineKind) Option {
	return func(c *config) { c.kind = kind; c.kindSet = true }
}

// WithOptimizations overrides the accelerated engine's skipping toggles.
func WithOptimizations(o Optimizations) Option {
	return func(c *config) { c.opt = o }
}

// runner is the common surface of the three engines.
type runner interface {
	Run(data []byte, emit func(pos int)) error
}

// Query is a compiled JSONPath query, immutable and safe for concurrent
// use.
type Query struct {
	source string
	parsed *jsonpath.Query
	kind   EngineKind
	run    runner
	window int // RunReader window size; 0 = DefaultStreamWindow
	limits limits
	sup    supervision
	// oracle is the DOM reference evaluator the supervisor degrades to on
	// internal faults; nil when the query is already EngineDOM.
	oracle *domRunner

	// Plan layer (planner_api.go): the planner mode, whether the engine
	// was forced with WithEngine, the query-shape facts the decision rules
	// consume, and the compiled alternate runners the planner may dispatch
	// to. stackless is non-nil only for descendant-only label chains
	// compiled under PlannerAuto without a forced engine.
	mode       PlannerMode
	forced     bool
	noHeadSkip bool
	shape      planner.Shape
	stackless  runner
}

// Compile parses and compiles a JSONPath expression.
func Compile(query string, opts ...Option) (*Query, error) {
	var c config
	for _, o := range opts {
		o(&c)
	}
	parsed, err := jsonpath.Parse(query)
	if err != nil {
		return nil, err
	}
	if c.semantics == PathSemantics && c.kind != EngineDOM {
		return nil, errPathSemantics
	}
	lim := c.resolveLimits()
	q := &Query{source: query, parsed: parsed, kind: c.kind, window: c.window,
		limits: lim, sup: c.resolveSupervision(),
		mode: c.planner, forced: c.kindSet, noHeadSkip: c.opt.NoHeadSkip,
		shape: shapeOf(parsed)}
	if c.kind != EngineDOM {
		q.oracle = &domRunner{query: parsed, semantics: dom.NodeSemantics, maxDepth: lim.maxDepth}
	}
	switch c.kind {
	case EngineDOM:
		sem := dom.NodeSemantics
		if c.semantics == PathSemantics {
			sem = dom.PathSemantics
		}
		q.run = &domRunner{query: parsed, semantics: sem, maxDepth: lim.maxDepth}
	case EngineSki:
		// EngineSki is exempt from the depth limit: its recursion is bounded
		// by the query length and its fast-forwards use O(1) memory.
		q.run, err = ski.New(parsed)
	case EngineStackless:
		var sl *engine.Stackless
		sl, err = engine.NewStackless(parsed)
		if errors.Is(err, engine.ErrNotStackless) {
			err = ErrUnsupportedQuery
		}
		if err == nil {
			sl.LimitDepth(lim.maxDepth)
			q.run = sl
		}
	case EngineSurfer:
		var dfa *automaton.DFA
		dfa, err = automaton.Compile(parsed, automaton.Options{})
		if err == nil {
			sf := surfer.New(dfa)
			sf.LimitDepth(lim.maxDepth)
			q.run = sf
		}
	default:
		var dfa *automaton.DFA
		dfa, err = automaton.Compile(parsed, automaton.Options{})
		if err == nil {
			q.run = engine.New(dfa, engine.Options{
				DisableHeadSkip:     c.opt.NoHeadSkip,
				DisableSkipChildren: c.opt.NoSkipChildren,
				DisableSkipSiblings: c.opt.NoSkipSiblings,
				DisableSkipLeaves:   c.opt.NoSkipLeaves,
				EnableTailSkip:      c.opt.TailSkip,
				MaxDepth:            lim.maxDepth,
				MaxDocBytes:         lim.maxDocBytes,
			})
		}
	}
	if err != nil {
		return nil, err
	}
	// Compile the planner's alternate runner: for descendant-only label
	// chains under PlannerAuto the depth-register automaton is dispatched
	// when head-skip is out of play (DESIGN.md §13). Compilation is a few
	// label slices — cheap enough to do eagerly.
	if c.planner == PlannerAuto && !c.kindSet && c.kind == EngineRsonpath &&
		q.shape.DescendantChainOnly {
		if sl, slErr := engine.NewStackless(parsed); slErr == nil {
			sl.LimitDepth(lim.maxDepth)
			q.stackless = sl
		}
	}
	return q, nil
}

// MustCompile is Compile that panics on error, for fixed queries.
func MustCompile(query string, opts ...Option) *Query {
	q, err := Compile(query, opts...)
	if err != nil {
		panic(err)
	}
	return q
}

// String returns the canonical form of the query.
func (q *Query) String() string { return q.parsed.String() }

// Source returns the query text as passed to Compile.
func (q *Query) Source() string { return q.source }

// Engine returns the engine kind backing this query.
func (q *Query) Engine() EngineKind { return q.kind }

// Run streams the document once, calling emit with the byte offset of the
// first character of every matched value, in document order. The execution
// strategy is chosen by the planner (DESIGN.md §13); Explain exposes the
// decision, WithEngine pins it, WithPlanner(PlannerOff) disables it.
//
// Malformed input surfaces as *MalformedError, a configured limit being hit
// as *LimitError, and an internal fault as *InternalError (never a panic);
// see DESIGN.md §9 for the failure model.
func (q *Query) Run(data []byte, emit func(pos int)) error {
	if q.sup.timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), q.sup.timeout)
		defer cancel()
		return q.runCtx(ctx, data, emit)
	}
	if err := q.limits.checkDocBytes(len(data)); err != nil {
		return err
	}
	run, label := q.planRunner(planner.DocStats{Bytes: len(data)})
	return guardRun(label, func() error {
		return run.Run(data, q.limits.limitEmit(emit))
	})
}

// Count returns the number of matches in data.
func (q *Query) Count(data []byte) (int, error) {
	n := 0
	err := q.Run(data, func(int) { n++ })
	return n, err
}

// MatchOffsets returns the byte offsets of all matched values.
func (q *Query) MatchOffsets(data []byte) ([]int, error) {
	var out []int
	err := q.Run(data, func(pos int) { out = append(out, pos) })
	return out, err
}

// stopRun aborts a Query.Run from inside its emit callback; the panic is
// recovered by the caller that armed it. The engines keep no state across
// Run calls, so abandoning a run mid-flight is safe.
type stopRun struct{}

// MatchValues returns the raw bytes of every matched value. The returned
// slices alias data. On the first extraction failure the scan is abandoned:
// the values extracted so far are returned together with the extraction
// error (a truncated match means the document cannot be trusted beyond it,
// and scanning the remainder would be pure waste).
func (q *Query) MatchValues(data []byte) (out [][]byte, err error) {
	if err := q.limits.checkDocBytes(len(data)); err != nil {
		return nil, err
	}
	run, label := q.planRunner(planner.DocStats{Bytes: len(data)})
	var extractErr error
	runErr := guardRun(label, func() error {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(stopRun); !ok {
					panic(r)
				}
			}
		}()
		return run.Run(data, q.limits.limitEmit(func(pos int) {
			v, err := ValueAt(data, pos)
			if err != nil {
				extractErr = err
				panic(stopRun{})
			}
			out = append(out, v)
		}))
	})
	if extractErr != nil {
		return out, extractErr
	}
	if runErr != nil {
		return nil, runErr
	}
	return out, nil
}

// CountReader streams the document from r and counts matches, with memory
// bounded by the configured stream window (see RunReader). EngineDOM, which
// cannot stream, falls back to buffering the whole document.
func (q *Query) CountReader(r io.Reader) (int, error) {
	n := 0
	if _, ok := q.run.(inputRunner); !ok {
		data, err := io.ReadAll(r)
		if err != nil {
			return 0, err
		}
		return q.Count(data)
	}
	err := q.RunReader(r, func(int) { n++ })
	return n, err
}

// errTruncated is returned by ValueAt on values that do not end within the
// buffer.
var errTruncated = errors.New("rsonpath: truncated value")
