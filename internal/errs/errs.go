// Package errs defines the typed failure vocabulary shared by every engine
// in this repository: structured malformed-input reports carrying a byte
// offset and a short machine-readable kind, and structured resource-limit
// reports. The public rsonpath package converts these to its exported
// *MalformedError and *LimitError at the API boundary; inside internal/
// the engines keep their historical package sentinels (engine.ErrMalformed,
// surfer.ErrMalformed, ...) reachable through errors.Is via Unwrap.
package errs

import (
	"errors"
	"fmt"
)

// Malformed reports input that cannot be a well-formed JSON document.
type Malformed struct {
	// Sentinel is the owning engine's ErrMalformed value, preserved so that
	// errors.Is(err, engine.ErrMalformed) keeps working across the typing.
	Sentinel error
	// Offset is the byte offset the malformation was detected at. For the
	// skipping engines this is best-effort (the first position at which the
	// document is known to be broken, which may trail the true defect); the
	// DOM engine reports exact positions.
	Offset int
	// Kind is a short stable description: "unterminated document",
	// "unbalanced closer", "trailing content", ...
	Kind string
}

func (e *Malformed) Error() string {
	return fmt.Sprintf("%v: %s at offset %d", e.Sentinel, e.Kind, e.Offset)
}

// Unwrap exposes the engine sentinel for errors.Is.
func (e *Malformed) Unwrap() error { return e.Sentinel }

// ErrLimit is the sentinel wrapped by every *Limit error.
var ErrLimit = errors.New("resource limit exceeded")

// Limit reports a configured resource limit being exceeded: the run was
// aborted to protect the caller, not because the input is necessarily
// malformed.
type Limit struct {
	What   string // "depth", "matches", or "document bytes"
	Max    int    // the configured limit
	Offset int    // byte offset at which the limit tripped; -1 if unknown
}

func (e *Limit) Error() string {
	return fmt.Sprintf("%v: %s limit %d exceeded at offset %d", ErrLimit, e.What, e.Max, e.Offset)
}

// Unwrap exposes ErrLimit for errors.Is.
func (e *Limit) Unwrap() error { return ErrLimit }

// DepthLimit builds the depth-limit error engines raise when document
// nesting outgrows the configured maximum.
func DepthLimit(max, offset int) *Limit {
	return &Limit{What: "depth", Max: max, Offset: offset}
}

// DocBytesLimit builds the document-size error raised when the input
// outgrows the configured maximum.
func DocBytesLimit(max, offset int) *Limit {
	return &Limit{What: "document bytes", Max: max, Offset: offset}
}

// MatchesLimit builds the match-count error raised when a run emits more
// matches than the configured maximum.
func MatchesLimit(max, offset int) *Limit {
	return &Limit{What: "matches", Max: max, Offset: offset}
}
