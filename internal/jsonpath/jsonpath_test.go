package jsonpath

import (
	"testing"
)

// Target mimics the original single-alternative constructor interface so
// the table-driven tests read naturally.
type Target int

const (
	TargetLabel Target = iota
	TargetWildcard
	TargetIndex
)

func sel(desc bool, target Target, label string, index int) Selector {
	s := Selector{Descendant: desc}
	switch target {
	case TargetWildcard:
		s.Wildcard = true
	case TargetIndex:
		s.Indices = []int{index}
	default:
		s.Labels = [][]byte{[]byte(label)}
	}
	return s
}

func eqSel(a, b Selector) bool {
	if a.Descendant != b.Descendant || a.Wildcard != b.Wildcard {
		return false
	}
	if len(a.Labels) != len(b.Labels) || len(a.Indices) != len(b.Indices) {
		return false
	}
	for i := range a.Labels {
		if string(a.Labels[i]) != string(b.Labels[i]) {
			return false
		}
	}
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] {
			return false
		}
	}
	return true
}

func assertParse(t *testing.T, input string, want ...Selector) *Query {
	t.Helper()
	q, err := Parse(input)
	if err != nil {
		t.Fatalf("Parse(%q): %v", input, err)
	}
	if len(q.Selectors) != len(want) {
		t.Fatalf("Parse(%q): %d selectors %v, want %d", input, len(q.Selectors), q.Selectors, len(want))
	}
	for i := range want {
		if !eqSel(q.Selectors[i], want[i]) {
			t.Fatalf("Parse(%q) selector %d = %+v, want %+v", input, i, q.Selectors[i], want[i])
		}
	}
	return q
}

func assertParseError(t *testing.T, input string) {
	t.Helper()
	if q, err := Parse(input); err == nil {
		t.Fatalf("Parse(%q) succeeded with %v, want error", input, q.Selectors)
	}
}

func TestParseRoot(t *testing.T) {
	assertParse(t, "$")
}

func TestParsePaperGrammar(t *testing.T) {
	assertParse(t, "$.a",
		sel(false, TargetLabel, "a", 0))
	assertParse(t, "$.a.b",
		sel(false, TargetLabel, "a", 0), sel(false, TargetLabel, "b", 0))
	assertParse(t, "$.*",
		sel(false, TargetWildcard, "", 0))
	assertParse(t, "$..a",
		sel(true, TargetLabel, "a", 0))
	// The paper's Figure 2 query.
	assertParse(t, "$.a..b.*..c.*",
		sel(false, TargetLabel, "a", 0),
		sel(true, TargetLabel, "b", 0),
		sel(false, TargetWildcard, "", 0),
		sel(true, TargetLabel, "c", 0),
		sel(false, TargetWildcard, "", 0))
}

func TestParseBenchmarkQueries(t *testing.T) {
	// Every query from Tables 4-6 must parse.
	queries := []string{
		"$.products.*.categoryPath.*.id",
		"$.products.*.videoChapters.*.chapter",
		"$.products.*.videoChapters",
		"$.*.routes.*.legs.*.steps.*.distance.text",
		"$.*.available_travel_modes",
		"$.meta.view.columns.*.name",
		"$.data.*.*.*",
		"$.*.entities.urls.*.url",
		"$.*.text",
		"$.items.*.bestMarketplacePrice.price",
		"$.items.*.name",
		"$.*.claims.P150.*.mainsnak.property",
		"$..categoryPath..id",
		"$..videoChapters..chapter",
		"$..available_travel_modes",
		"$..bestMarketplacePrice.price",
		"$..name",
		"$..P150..mainsnak.property",
		"$..decl.name",
		"$..inner..inner..type.qualType",
		"$..DOI",
		"$.items.*.author.*.affiliation.*.name",
		"$..author..affiliation..name",
		"$.search_metadata.count",
		"$..count",
		"$..search_metadata.count",
		"$..affiliation..name",
	}
	for _, s := range queries {
		if _, err := Parse(s); err != nil {
			t.Errorf("Parse(%q): %v", s, err)
		}
	}
}

func TestParseDescendantWildcard(t *testing.T) {
	assertParse(t, "$..*", sel(true, TargetWildcard, "", 0))
	assertParse(t, "$.a..*.b",
		sel(false, TargetLabel, "a", 0),
		sel(true, TargetWildcard, "", 0),
		sel(false, TargetLabel, "b", 0))
}

func TestParseBracketForms(t *testing.T) {
	assertParse(t, "$['a']", sel(false, TargetLabel, "a", 0))
	assertParse(t, `$["a"]`, sel(false, TargetLabel, "a", 0))
	assertParse(t, "$[*]", sel(false, TargetWildcard, "", 0))
	assertParse(t, "$[0]", sel(false, TargetIndex, "", 0))
	assertParse(t, "$[42]", sel(false, TargetIndex, "", 42))
	assertParse(t, "$..[3]", sel(true, TargetIndex, "", 3))
	assertParse(t, "$[ 'spaced' ]", sel(false, TargetLabel, "spaced", 0))
	assertParse(t, "$.products[*].categoryPath[*].id",
		sel(false, TargetLabel, "products", 0),
		sel(false, TargetWildcard, "", 0),
		sel(false, TargetLabel, "categoryPath", 0),
		sel(false, TargetWildcard, "", 0),
		sel(false, TargetLabel, "id", 0))
}

func TestParseQuotedEscapes(t *testing.T) {
	assertParse(t, `$['a\'b']`, sel(false, TargetLabel, "a'b", 0))
	assertParse(t, `$["a\"b"]`, sel(false, TargetLabel, `a"b`, 0))
	assertParse(t, `$['a\\b']`, sel(false, TargetLabel, `a\b`, 0))
	// Unknown escapes preserved verbatim: matches document bytes "a\nb".
	assertParse(t, `$['a\nb']`, sel(false, TargetLabel, `a\nb`, 0))
	assertParse(t, `$['we"ird']`, sel(false, TargetLabel, `we"ird`, 0))
}

func TestParseLabelsWithSpecialBareChars(t *testing.T) {
	assertParse(t, "$.snake_case", sel(false, TargetLabel, "snake_case", 0))
	assertParse(t, "$.kebab-case", sel(false, TargetLabel, "kebab-case", 0))
	assertParse(t, "$.P150", sel(false, TargetLabel, "P150", 0))
	assertParse(t, "$.łabel", sel(false, TargetLabel, "łabel", 0))
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"a",
		".a",
		"$a",
		"$.",
		"$..",
		"$...a",
		"$.a.",
		"$.[a]",
		"$['a'",
		"$['a]",
		"$[a]",
		"$[]",
		"$[-1]",
		"$[1.5]",
		"$.a b",
		"$ .a",
		"$.a..",
		`$['a\`,
	}
	for _, s := range bad {
		assertParseError(t, s)
	}
}

func TestParseErrorReportsOffset(t *testing.T) {
	_, err := Parse("$.a.[b]")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Offset != 4 {
		t.Fatalf("offset = %d, want 4 (%v)", pe.Offset, err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	canonical := []string{
		"$",
		"$.a",
		"$..a",
		"$.*",
		"$..*",
		"$.a..b.*..c.*",
		"$[0]",
		"$..[3]",
		"$['a b']",
	}
	for _, s := range canonical {
		q := MustParse(s)
		if q.String() != s {
			t.Errorf("String() of %q = %q", s, q.String())
		}
		// Round-trip: re-parsing the rendering yields the same selectors.
		q2 := MustParse(q.String())
		if len(q2.Selectors) != len(q.Selectors) {
			t.Errorf("round trip of %q changed arity", s)
		}
	}
	// Bracket forms normalise to dot forms where possible.
	if got := MustParse("$['a']").String(); got != "$.a" {
		t.Errorf("canonical form of $['a'] = %q", got)
	}
	if got := MustParse(`$['a\'b']`).String(); got != `$['a\'b']` {
		t.Errorf("canonical form with quote = %q", got)
	}
}

func TestQueryHelpers(t *testing.T) {
	q := MustParse("$.a..b.*")
	if !q.HasDescendant() {
		t.Error("HasDescendant false")
	}
	if MustParse("$.a.b").HasDescendant() {
		t.Error("HasDescendant true for child-only query")
	}
	if !MustParse("$.a[0]").HasIndex() {
		t.Error("HasIndex false")
	}
	if MustParse("$.a.b").HasIndex() {
		t.Error("HasIndex true")
	}
	labels := MustParse("$.a..b.a.c").Labels()
	if len(labels) != 3 || string(labels[0]) != "a" || string(labels[1]) != "b" || string(labels[2]) != "c" {
		t.Errorf("Labels() = %q", labels)
	}
	if MustParse("$.raw").Raw() != "$.raw" {
		t.Error("Raw() mismatch")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on bad input")
		}
	}()
	MustParse("not a query")
}

func selUnion(desc bool, labels []string, indices []int) Selector {
	s := Selector{Descendant: desc, Indices: indices}
	for _, l := range labels {
		s.Labels = append(s.Labels, []byte(l))
	}
	return s
}

func TestParseUnions(t *testing.T) {
	assertParse(t, "$['a','b']", selUnion(false, []string{"a", "b"}, nil))
	assertParse(t, `$["a",'b',"c"]`, selUnion(false, []string{"a", "b", "c"}, nil))
	assertParse(t, "$[0,2]", selUnion(false, nil, []int{0, 2}))
	assertParse(t, "$['a',0]", selUnion(false, []string{"a"}, []int{0}))
	assertParse(t, "$..['a','b']", selUnion(true, []string{"a", "b"}, nil))
	assertParse(t, "$[ 'a' , 1 ]", selUnion(false, []string{"a"}, []int{1}))
}

func TestParseUnionErrors(t *testing.T) {
	for _, s := range []string{"$['a',]", "$['a',*]", "$[*,'a']", "$['a' 'b']", "$['a',"} {
		assertParseError(t, s)
	}
}

func TestUnionHelpers(t *testing.T) {
	q := MustParse("$['a','b',3]")
	if !q.HasUnion() || !q.HasIndex() {
		t.Error("union helpers wrong")
	}
	if MustParse("$.a.b").HasUnion() {
		t.Error("HasUnion true for plain query")
	}
	sel := &q.Selectors[0]
	if !sel.MatchesLabel([]byte("a")) || !sel.MatchesLabel([]byte("b")) || sel.MatchesLabel([]byte("c")) {
		t.Error("MatchesLabel wrong")
	}
	if !sel.MatchesIndex(3) || sel.MatchesIndex(0) {
		t.Error("MatchesIndex wrong")
	}
	if !sel.IsUnion() {
		t.Error("IsUnion false")
	}
}

func TestUnionStringRoundTrip(t *testing.T) {
	for _, s := range []string{"$['a','b']", "$[0,2]", "$['a',0]", "$..['a','b']"} {
		q := MustParse(s)
		q2 := MustParse(q.String())
		if q.String() != q2.String() {
			t.Errorf("round trip of %q: %q vs %q", s, q.String(), q2.String())
		}
	}
}

func TestParseSlices(t *testing.T) {
	q := MustParse("$[1:3]")
	sel := q.Selectors[0]
	if len(sel.Slices) != 1 || sel.Slices[0] != (Slice{Start: 1, End: 3}) {
		t.Fatalf("selector %+v", sel)
	}
	q = MustParse("$[2:]")
	if q.Selectors[0].Slices[0] != (Slice{Start: 2, End: -1}) {
		t.Fatalf("selector %+v", q.Selectors[0])
	}
	q = MustParse("$[:2]")
	if q.Selectors[0].Slices[0] != (Slice{Start: 0, End: 2}) {
		t.Fatalf("selector %+v", q.Selectors[0])
	}
	q = MustParse("$[:]")
	if q.Selectors[0].Slices[0] != (Slice{Start: 0, End: -1}) {
		t.Fatalf("selector %+v", q.Selectors[0])
	}
	q = MustParse("$..[1:3]")
	if !q.Selectors[0].Descendant || len(q.Selectors[0].Slices) != 1 {
		t.Fatalf("selector %+v", q.Selectors[0])
	}
	// Unions of slices, indices and labels.
	q = MustParse("$['a',0,2:4]")
	sel = q.Selectors[0]
	if len(sel.Labels) != 1 || len(sel.Indices) != 1 || len(sel.Slices) != 1 {
		t.Fatalf("selector %+v", sel)
	}
	if !sel.IsUnion() || !sel.SelectsIndices() {
		t.Fatal("union/index helpers wrong")
	}
}

func TestSliceContains(t *testing.T) {
	s := Slice{Start: 1, End: 3}
	for i, want := range map[int]bool{0: false, 1: true, 2: true, 3: false} {
		if s.Contains(i) != want {
			t.Errorf("Contains(%d) = %v", i, !want)
		}
	}
	open := Slice{Start: 2, End: -1}
	if open.Contains(1) || !open.Contains(2) || !open.Contains(1000) {
		t.Error("open slice wrong")
	}
}

func TestParseSliceErrors(t *testing.T) {
	for _, s := range []string{"$[1:2:3]", "$[1:2:]", "$[-1:]", "$[1:-2]", "$[a:]"} {
		assertParseError(t, s)
	}
}

func TestSliceStringRoundTrip(t *testing.T) {
	for _, s := range []string{"$[1:3]", "$[2:]", "$[0:]", "$..[1:2]", "$['a',0,2:4]"} {
		q := MustParse(s)
		q2 := MustParse(q.String())
		if q.String() != q2.String() {
			t.Errorf("round trip of %q: %q vs %q", s, q.String(), q2.String())
		}
	}
}
