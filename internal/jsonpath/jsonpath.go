// Package jsonpath parses the JSONPath fragment studied in the paper (§2):
//
//	e ::= $ | e.l | e.* | e..l
//
// plus compatible extensions: descendant wildcard e..*, bracketed selectors
// e['l'] / e["l"] / e[*], array-index selectors e[n] / e..[n] (the paper's
// §6 "array indexing is compatible with our approach" future work), array
// slices e[a:b] / e[a:] / e[:b] (non-negative bounds, unit step), and union
// selectors e['a','b',0,1:3] combining labels, indices and slices in one
// step.
//
// Queries are evaluated under node semantics: the result of a query is the
// set of matched nodes in document order, never a multiset (§2).
package jsonpath

import (
	"fmt"
	"strconv"
	"strings"
)

// Slice matches array entries with Start <= index < End, the JSONPath
// slice selector [start:end] restricted to non-negative bounds and unit
// step. End < 0 means unbounded ([start:]).
type Slice struct {
	Start int
	End   int
}

// Contains reports whether the slice matches index i.
func (s Slice) Contains(i int) bool {
	return i >= s.Start && (s.End < 0 || i < s.End)
}

// Selector is one step of a query. A selector matches an object property
// when its name is listed in Labels, an array entry when its position is
// listed in Indices or covered by Slices, and everything when Wildcard is
// set (the other fields are then empty).
type Selector struct {
	// Descendant marks ..-selectors, which match at any depth below the
	// current node (including its own properties).
	Descendant bool
	// Wildcard matches any direct subdocument (object property or array
	// entry).
	Wildcard bool
	// Labels holds the property names matched, as raw bytes compared
	// verbatim against the document's key bytes. More than one entry
	// represents a union selector.
	Labels [][]byte
	// Indices holds the array positions matched.
	Indices []int
	// Slices holds the array index ranges matched.
	Slices []Slice
}

// MatchesLabel reports whether the selector matches a property named key.
func (s *Selector) MatchesLabel(key []byte) bool {
	if s.Wildcard {
		return true
	}
	for _, l := range s.Labels {
		if bytesEqual(l, key) {
			return true
		}
	}
	return false
}

// MatchesIndex reports whether the selector matches the array entry at i.
func (s *Selector) MatchesIndex(i int) bool {
	if s.Wildcard {
		return true
	}
	for _, v := range s.Indices {
		if v == i {
			return true
		}
	}
	for _, sl := range s.Slices {
		if sl.Contains(i) {
			return true
		}
	}
	return false
}

// SelectsIndices reports whether the selector can match array entries by
// position (indices or slices).
func (s *Selector) SelectsIndices() bool {
	return len(s.Indices)+len(s.Slices) > 0
}

// IsUnion reports whether the selector lists more than one alternative.
func (s *Selector) IsUnion() bool {
	return len(s.Labels)+len(s.Indices)+len(s.Slices) > 1
}

// String renders the selector in canonical form.
func (s Selector) String() string {
	dot, bracket := ".", ""
	if s.Descendant {
		dot, bracket = "..", ".."
	}
	switch {
	case s.Wildcard:
		return dot + "*"
	case !s.IsUnion() && len(s.Labels) == 1 && isBareName(s.Labels[0]):
		return dot + string(s.Labels[0])
	default:
		var parts []string
		for _, l := range s.Labels {
			parts = append(parts, "'"+escapeLabel(l)+"'")
		}
		for _, i := range s.Indices {
			parts = append(parts, strconv.Itoa(i))
		}
		for _, sl := range s.Slices {
			end := ""
			if sl.End >= 0 {
				end = strconv.Itoa(sl.End)
			}
			parts = append(parts, strconv.Itoa(sl.Start)+":"+end)
		}
		return bracket + "[" + strings.Join(parts, ",") + "]"
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Query is a parsed JSONPath expression.
type Query struct {
	Selectors []Selector
	raw       string
}

// Raw returns the original query text.
func (q *Query) Raw() string { return q.raw }

// String renders the query in canonical form.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("$")
	for _, s := range q.Selectors {
		b.WriteString(s.String())
	}
	return b.String()
}

// HasDescendant reports whether any selector is a descendant selector.
func (q *Query) HasDescendant() bool {
	for i := range q.Selectors {
		if q.Selectors[i].Descendant {
			return true
		}
	}
	return false
}

// HasIndex reports whether any selector matches by array position
// (index or slice).
func (q *Query) HasIndex() bool {
	for i := range q.Selectors {
		if q.Selectors[i].SelectsIndices() {
			return true
		}
	}
	return false
}

// HasUnion reports whether any selector is a union.
func (q *Query) HasUnion() bool {
	for i := range q.Selectors {
		if q.Selectors[i].IsUnion() {
			return true
		}
	}
	return false
}

// Labels returns the distinct concrete labels used by the query, in first-
// occurrence order.
func (q *Query) Labels() [][]byte {
	var out [][]byte
	seen := make(map[string]bool)
	for i := range q.Selectors {
		for _, l := range q.Selectors[i].Labels {
			if !seen[string(l)] {
				seen[string(l)] = true
				out = append(out, l)
			}
		}
	}
	return out
}

// ParseError reports a syntax error with its byte offset in the query.
type ParseError struct {
	Query  string
	Offset int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("jsonpath: %s at offset %d in %q", e.Msg, e.Offset, e.Query)
}

type parser struct {
	input string
	pos   int
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &ParseError{Query: p.input, Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

// Parse parses a JSONPath expression.
func Parse(input string) (*Query, error) {
	p := &parser{input: input}
	if !p.eat('$') {
		return nil, p.errf("query must start with '$'")
	}
	q := &Query{raw: input}
	for p.pos < len(p.input) {
		sel, err := p.selector()
		if err != nil {
			return nil, err
		}
		q.Selectors = append(q.Selectors, sel)
	}
	return q, nil
}

// MustParse is Parse that panics on error, for tests and fixed queries.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

func (p *parser) eat(c byte) bool {
	if p.pos < len(p.input) && p.input[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *parser) peek() byte {
	if p.pos < len(p.input) {
		return p.input[p.pos]
	}
	return 0
}

// selector parses one .l / ..l / .* / ..* / [x,...] / ..[x,...] step.
func (p *parser) selector() (Selector, error) {
	var sel Selector
	switch {
	case p.eat('.'):
		if p.eat('.') {
			sel.Descendant = true
			if p.peek() == '[' {
				return p.bracket(sel)
			}
		}
		if p.eat('*') {
			sel.Wildcard = true
			return sel, nil
		}
		name, err := p.bareName()
		if err != nil {
			return sel, err
		}
		sel.Labels = [][]byte{name}
		return sel, nil
	case p.peek() == '[':
		return p.bracket(sel)
	default:
		return sel, p.errf("expected '.' or '[', found %q", p.peek())
	}
}

// bracket parses ['l'] / ["l"] / [*] / [n] and comma-separated unions of
// labels and indices after the opening position.
func (p *parser) bracket(sel Selector) (Selector, error) {
	if !p.eat('[') {
		return sel, p.errf("expected '['")
	}
	for {
		p.skipSpaces()
		switch c := p.peek(); {
		case c == '*':
			if len(sel.Labels)+len(sel.Indices) > 0 {
				return sel, p.errf("'*' cannot be part of a union")
			}
			p.pos++
			sel.Wildcard = true
			p.skipSpaces()
			if !p.eat(']') {
				return sel, p.errf("expected ']' after '*'")
			}
			return sel, nil
		case c == '\'' || c == '"':
			label, err := p.quotedLabel(c)
			if err != nil {
				return sel, err
			}
			sel.Labels = append(sel.Labels, label)
		case c >= '0' && c <= '9' || c == ':':
			if err := p.indexOrSlice(&sel); err != nil {
				return sel, err
			}
		case c == '-':
			return sel, p.errf("negative array indices are not supported")
		default:
			return sel, p.errf("expected label, index or '*' in brackets, found %q", c)
		}
		p.skipSpaces()
		if p.eat(',') {
			continue
		}
		if !p.eat(']') {
			return sel, p.errf("expected ',' or ']'")
		}
		return sel, nil
	}
}

// indexOrSlice parses n, n:m, n:, :m, or : after skipSpaces.
func (p *parser) indexOrSlice(sel *Selector) error {
	number := func() (int, bool, error) {
		start := p.pos
		for p.pos < len(p.input) && p.input[p.pos] >= '0' && p.input[p.pos] <= '9' {
			p.pos++
		}
		if p.pos == start {
			return 0, false, nil
		}
		n, err := strconv.Atoi(p.input[start:p.pos])
		if err != nil {
			return 0, false, p.errf("bad array index: %v", err)
		}
		return n, true, nil
	}
	lo, hasLo, err := number()
	if err != nil {
		return err
	}
	p.skipSpaces()
	if !p.eat(':') {
		if !hasLo {
			return p.errf("expected index or slice")
		}
		sel.Indices = append(sel.Indices, lo)
		return nil
	}
	p.skipSpaces()
	hi, hasHi, err := number()
	if err != nil {
		return err
	}
	if p.peek() == ':' {
		return p.errf("slice steps are not supported")
	}
	end := -1
	if hasHi {
		end = hi
	}
	sel.Slices = append(sel.Slices, Slice{Start: lo, End: end})
	return nil
}

// quotedLabel parses a single- or double-quoted label with \', \", and \\
// escapes. Other backslash sequences are preserved verbatim, so labels that
// must be escaped in JSON documents (e.g. "a\nb") can be written exactly as
// they appear in the document bytes.
func (p *parser) quotedLabel(quote byte) ([]byte, error) {
	p.pos++ // consume the quote
	var out []byte
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		switch c {
		case quote:
			p.pos++
			return out, nil
		case '\\':
			if p.pos+1 >= len(p.input) {
				return nil, p.errf("unterminated escape in label")
			}
			next := p.input[p.pos+1]
			if next == quote || next == '\\' {
				out = append(out, next)
			} else {
				out = append(out, '\\', next)
			}
			p.pos += 2
		default:
			out = append(out, c)
			p.pos++
		}
	}
	return nil, p.errf("unterminated label")
}

// bareName parses a member name after '.': a nonempty run of name bytes.
func (p *parser) bareName() ([]byte, error) {
	start := p.pos
	for p.pos < len(p.input) && isNameByte(p.input[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return nil, p.errf("expected member name, found %q", p.peek())
	}
	return []byte(p.input[start:p.pos]), nil
}

func (p *parser) skipSpaces() {
	for p.pos < len(p.input) && p.input[p.pos] == ' ' {
		p.pos++
	}
}

// isNameByte reports whether b may appear in a bare (unbracketed) member
// name: ASCII letters, digits, '_', '-', '$', and all non-ASCII bytes
// (UTF-8 continuation and lead bytes).
func isNameByte(b byte) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9':
		return true
	case b == '_' || b == '-' || b == '$':
		return true
	case b >= 0x80:
		return true
	}
	return false
}

func isBareName(label []byte) bool {
	if len(label) == 0 {
		return false
	}
	for _, b := range label {
		if !isNameByte(b) {
			return false
		}
	}
	return true
}

func escapeLabel(label []byte) string {
	var b strings.Builder
	for _, c := range label {
		if c == '\'' || c == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(c)
	}
	return b.String()
}
