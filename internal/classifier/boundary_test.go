package classifier

import (
	"io"
	"strings"
	"testing"

	"rsonpath/internal/input"
)

// chunkReader yields at most n bytes per Read so that every buffered-input
// refill boundary is exercised, not just the ones aligned with len(p).
type chunkReader struct {
	data []byte
	n    int
}

func (r *chunkReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := r.n
	if n > len(r.data) {
		n = len(r.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// bufferedSeek runs SeekLabel over a window-bounded input fed in small
// reads, under Guard so window violations surface as errors.
func bufferedSeek(data []byte, label string, window, chunk int) (k, v int, ok bool, err error) {
	err = input.Guard(func() error {
		in := input.NewBuffered(&chunkReader{data: data, n: chunk}, window)
		s := NewStreamInput(in)
		k, v, ok = SeekLabel(s, 0, []byte(label))
		return nil
	})
	return
}

// TestSeekLabelAcrossBoundaries sweeps a sought key across every alignment
// of the 64-byte block grid and the buffered window's refill boundary,
// for documents whose hazardous features — the pattern itself, an escaped
// quote inside the key, a backslash run ending the key, an in-string decoy
// occurrence — can straddle either boundary. The in-memory stream (already
// held to a scalar oracle by the label tests) is the reference.
func TestSeekLabelAcrossBoundaries(t *testing.T) {
	type maker struct {
		name string
		mk   func(pad string) (doc, label string)
	}
	makers := []maker{
		{"plain", func(pad string) (string, string) {
			return `{` + pad + `"needle": 1}`, "needle"
		}},
		{"escaped quote in key", func(pad string) (string, string) {
			return `{` + pad + `"a\"b": 1}`, `a\"b`
		}},
		{"backslash run ends key", func(pad string) (string, string) {
			return `{` + pad + `"k\\\\": 1}`, `k\\\\`
		}},
		{"in-string decoy first", func(pad string) (string, string) {
			return `{"d": "x \"needle\": 9",` + pad + ` "needle": 1}`, "needle"
		}},
	}
	pads := make([]int, 0, 260)
	for p := 0; p <= 160; p++ {
		pads = append(pads, p) // first and second block boundaries
	}
	for p := 520; p <= 620; p++ {
		pads = append(pads, p) // refill/slide region of the smallest window
	}
	for _, m := range makers {
		t.Run(m.name, func(t *testing.T) {
			for _, pad := range pads {
				doc, label := m.mk(strings.Repeat(" ", pad))
				data := []byte(doc)
				wantK, wantV, wantOK := SeekLabel(NewStream(data), 0, []byte(label))
				for _, window := range []int{64, 128, 1024} {
					for _, chunk := range []int{7, 64} {
						k, v, ok, err := bufferedSeek(data, label, window, chunk)
						if err != nil {
							t.Fatalf("pad=%d window=%d chunk=%d: %v", pad, window, chunk, err)
						}
						if ok != wantOK || (ok && (k != wantK || v != wantV)) {
							t.Fatalf("pad=%d window=%d chunk=%d: got (%d,%d,%v), want (%d,%d,%v)",
								pad, window, chunk, k, v, ok, wantK, wantV, wantOK)
						}
					}
				}
			}
		})
	}
}

// TestSkipToCloseAcrossRefills holds the depth scan to the in-memory result
// while braces hidden inside strings (with escaped quotes) straddle block
// and refill boundaries.
func TestSkipToCloseAcrossRefills(t *testing.T) {
	for reps := 0; reps <= 230; reps += 1 {
		doc := `{"s": "` + strings.Repeat(`\"}`, reps) + `", "o": {"p": [{}]}}`
		data := []byte(doc)
		want := len(data) - 1
		if p, ok := SkipToClose(NewStream(data), 1, '{'); !ok || p != want {
			t.Fatalf("in-memory oracle broken: reps=%d got (%d,%v)", reps, p, ok)
		}
		for _, window := range []int{64, 256} {
			var got int
			var ok bool
			err := input.Guard(func() error {
				in := input.NewBuffered(&chunkReader{data: data, n: 7}, window)
				s := NewStreamAt(in, 0)
				got, ok = SkipToClose(s, 1, '{')
				return nil
			})
			if err != nil {
				t.Fatalf("reps=%d window=%d: %v", reps, window, err)
			}
			if !ok || got != want {
				t.Fatalf("reps=%d window=%d: got (%d,%v), want (%d,true)", reps, window, got, ok, want)
			}
		}
	}
}
