package classifier

import (
	"math/rand"
	"strings"
	"testing"
)

// refSkipToClose is the scalar oracle: position of the closer that brings
// relative depth to zero, ignoring characters inside strings.
func refSkipToClose(data []byte, from int, open byte) (int, bool) {
	cl := matchingClose(open)
	_, inString := refQuoteScan(data)
	depth := 1
	for i := from; i < len(data); i++ {
		if inString[i] {
			continue
		}
		switch data[i] {
		case open:
			depth++
		case cl:
			depth--
			if depth == 0 {
				return i, true
			}
		}
	}
	return 0, false
}

func assertSkip(t *testing.T, data string, from int, open byte) {
	t.Helper()
	s := NewStream([]byte(data))
	for s.BlockStart()+64 <= from {
		s.Advance()
	}
	gotPos, gotOK := SkipToClose(s, from, open)
	wantPos, wantOK := refSkipToClose([]byte(data), from, open)
	if gotOK != wantOK || (gotOK && gotPos != wantPos) {
		t.Fatalf("SkipToClose(%q, %d, %q) = (%d,%v), want (%d,%v)",
			data, from, open, gotPos, gotOK, wantPos, wantOK)
	}
	if gotOK {
		// The stream must be left on the block containing the closer.
		if s.BlockStart() > gotPos || gotPos >= s.BlockStart()+64 {
			t.Fatalf("stream block %d does not contain closer %d", s.BlockStart(), gotPos)
		}
	}
}

func TestSkipToCloseSimple(t *testing.T) {
	assertSkip(t, `{"a":1}`, 1, '{')
	assertSkip(t, `{"a":{"b":{}}} tail`, 1, '{')
	assertSkip(t, `[1,[2,[3]],4]`, 1, '[')
	assertSkip(t, `[]`, 1, '[')
}

func TestSkipToCloseIgnoresStrings(t *testing.T) {
	assertSkip(t, `{"a":"}}}"}`, 1, '{')
	assertSkip(t, `{"a":"\"}"}`, 1, '{')
	assertSkip(t, `["]]", []]`, 1, '[')
}

func TestSkipToCloseIgnoresOtherBracketKind(t *testing.T) {
	// Skipping an object tracks only braces; brackets inside are invisible,
	// exactly as in §3.3 "we need to track only two characters".
	assertSkip(t, `{"a":[1,2,{"b":3}]}`, 1, '{')
	assertSkip(t, `[{"a":1},{"b":[2]}]`, 1, '[')
}

func TestSkipToCloseUnterminated(t *testing.T) {
	assertSkip(t, `{"a":{"b":1}`, 1, '{')
	assertSkip(t, `[1,2,3`, 1, '[')
}

func TestSkipToCloseDeepNesting(t *testing.T) {
	// Forces the heuristic path: hundreds of openers, closers far away.
	depth := 500
	doc := strings.Repeat("[", depth) + "1" + strings.Repeat("]", depth)
	assertSkip(t, doc, 1, '[')
	// And from an inner position.
	assertSkip(t, doc, 250, '[')
}

func TestSkipToCloseHeuristicBlocks(t *testing.T) {
	// Blocks made entirely of openers (heuristic must add them all), then
	// blocks of closers.
	doc := "{" + strings.Repeat(`{"a":1},`, 40) + `"z":0}`
	assertSkip(t, doc, 1, '{')
}

func TestSkipToCloseRandom(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	alphabet := []byte(`{}[]"\,: ab`)
	for trial := 0; trial < 600; trial++ {
		n := 1 + r.Intn(250)
		data := make([]byte, n)
		for i := range data {
			data[i] = alphabet[r.Intn(len(alphabet))]
		}
		open := byte('{')
		if r.Intn(2) == 0 {
			open = '['
		}
		from := r.Intn(n)
		// Keep the starting block aligned with how the engine calls it.
		assertSkip(t, string(data), from, open)
	}
}

func TestMatchingClose(t *testing.T) {
	if matchingClose('{') != '}' || matchingClose('[') != ']' {
		t.Fatal("matchingClose wrong")
	}
}

func BenchmarkSkipToClose(b *testing.B) {
	inner := strings.Repeat(`{"k":"vvvvvvvvvvvvvvvv"},`, 3000)
	doc := `{"arr":[` + inner[:len(inner)-1] + `]}`
	data := []byte(doc)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		s := NewStream(data)
		if _, ok := SkipToClose(s, 1, '{'); !ok {
			b.Fatal("skip failed")
		}
	}
}
