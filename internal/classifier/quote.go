// Package classifier implements the paper's vectorised classification
// pipeline (§4) on top of the SWAR primitives in internal/simd: the quote
// classifier (§4.2), the structural classifier with comma/colon toggling
// (§4.1, §4.3), the depth classifier used for skipping (§4.4), the
// skip-to-label seeker (§3.3 "skipping to a label"), the general raw
// classification method (§4.1), and the multi-classifier pipeline that ties
// them together (§4.5).
//
// All classifiers operate on a shared Stream, which plays the role of the
// paper's always-on core quote classifier: it advances through the input
// block by block, maintaining escape and in-string state, and every
// higher-level classifier reads the current block and its quote masks from
// it. Switching between the structural and depth classifiers therefore
// needs no copying — they borrow the Stream exactly as the paper's stop and
// resume methods hand over the quote classifier's internal structures.
package classifier

import "rsonpath/internal/simd"

const (
	evenBits = 0x5555555555555555 // bits 0, 2, 4, ...
	oddBits  = ^uint64(evenBits)
)

// quoteState carries the quote classifier's cross-block state (§4.2): "two
// bits of information: whether the previous block's last character was an
// unescaped backslash and whether the last block ended while still within
// quotes".
type quoteState struct {
	prevEscaped  uint64 // 0 or 1: first char of next block is escaped
	prevInString uint64 // 0 or ^0: next block starts inside a string
}

// findEscaped marks characters that are escaped by a backslash, using
// add-carry propagation across backslash runs: a character is escaped iff
// it is preceded by an odd-length run of backslashes. This is the
// bit-parallel algorithm of Langdale & Lemire adopted by the paper.
func (q *quoteState) findEscaped(backslash uint64) uint64 {
	if backslash == 0 {
		escaped := q.prevEscaped
		q.prevEscaped = 0
		return escaped
	}
	// A backslash that is itself escaped does not escape anything.
	backslash &^= q.prevEscaped
	followsEscape := backslash<<1 | q.prevEscaped
	oddSequenceStarts := backslash & oddBits &^ followsEscape
	sequencesStartingOnEvenBits := oddSequenceStarts + backslash
	// Addition overflow means the block ends in a run whose parity escapes
	// the first character of the next block.
	if sequencesStartingOnEvenBits < oddSequenceStarts {
		q.prevEscaped = 1
	} else {
		q.prevEscaped = 0
	}
	invertMask := sequencesStartingOnEvenBits << 1
	return (evenBits ^ invertMask) & followsEscape
}

// classifyBlock computes the quote masks for one block and advances the
// state to the block's end. It returns:
//
//	quotes:   unescaped double-quote characters;
//	inString: positions inside a JSON string, including the opening quote
//	          and excluding the closing quote. An unescaped quote is thus an
//	          opening quote iff its inString bit is set.
func (q *quoteState) classifyMasks(backslash, rawQuotes uint64) (quotes, inString uint64) {
	quotes = rawQuotes &^ q.findEscaped(backslash)
	inString = simd.PrefixXor(quotes) ^ q.prevInString
	// The state after the last byte is the last bit of inString: replicate
	// it into a full-width carry with an arithmetic shift.
	q.prevInString = uint64(int64(inString) >> 63)
	return quotes, inString
}
