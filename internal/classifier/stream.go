package classifier

import (
	"sync/atomic"

	"rsonpath/internal/input"
	"rsonpath/internal/simd"
)

// passes counts Stream constructions since process start. One Stream is one
// classification pass over (a suffix of) a document, so the counter lets
// tests assert pass-sharing properties — in particular that the multi-query
// driver classifies a document exactly once however many queries it runs.
var passes atomic.Int64

// Passes returns the total number of classification passes started since
// process start. Tests take deltas around the code under scrutiny.
func Passes() int64 { return passes.Load() }

// Stream drives block-by-block classification of one input document. It is
// the concrete embodiment of the paper's multi-classifier pipeline core
// (§4.5): the quote classifier always runs, one block ahead of whichever
// top-level classifier (structural or depth) is currently active, and its
// state travels with the Stream when classifiers are switched.
//
// A Stream only moves forward, pulling padded blocks from an input.Input —
// zero-copy over in-memory documents, window-bounded over readers. The
// current block's bytes and quote masks are exposed to the structural
// classifier, the depth classifier and the label seeker; each of them
// tracks its own within-block cursor.
type Stream struct {
	in         input.Input
	blockStart int         // absolute offset of the current block
	blockLen   int         // number of real (non-padding) bytes in the block
	block      *simd.Block // the current padded block (owned by the input)
	exhausted  bool

	// planes, when non-nil, puts the stream in plane-backed mode: per-block
	// quote masks are served from the precomputed index instead of being
	// classified on the fly, JumpTo needs no quote-state reconstruction, and
	// the structural and depth classifiers read their masks from the planes
	// too. The quoteState fields below are unused in this mode.
	planes *Planes

	quotes     quoteState // state at the start of the current block
	postQuotes quoteState // state at the end of the current block

	quoteMask uint64 // unescaped quotes in the current block
	inString  uint64 // in-string positions in the current block

	// seekTailInString records, after a label seek that reached the end of
	// input, whether the document ended inside a string — the seeker's
	// incremental quote parity carried to EOF. It exists for the engine's
	// best-effort truncation check on the head-skip path, where no
	// classified blocks cover the sought region.
	seekTailInString bool
}

// NewStream creates a stream over an in-memory document and classifies the
// first block.
func NewStream(data []byte) *Stream {
	return NewStreamInput(input.NewBytes(data))
}

// NewStreamInput creates a stream over in and classifies the first block.
func NewStreamInput(in input.Input) *Stream {
	passes.Add(1)
	s := &Stream{in: in}
	s.loadBlock()
	return s
}

// NewStreamPlanes creates a plane-backed stream over in: per-block masks
// come from p (built by BuildPlanes over the same bytes in presents) and no
// SWAR classification runs during the stream's lifetime. A plane-backed
// stream still counts as a classification pass for Passes(): it replays the
// one pass BuildPlanes performed.
func NewStreamPlanes(in input.Input, p *Planes) *Stream {
	passes.Add(1)
	s := &Stream{in: in, planes: p}
	s.loadBlock()
	return s
}

// NewStreamAt creates a stream positioned on the block containing pos, with
// the quote state reconstructed from pos as an anchor. pos must lie outside
// any string and not be escaped (true for every value boundary), and the
// bytes shortly before pos must still be retained by the input.
func NewStreamAt(in input.Input, pos int) *Stream {
	passes.Add(1)
	s := &Stream{in: in}
	s.blockStart = pos - pos%simd.BlockSize
	s.quotes = reconstructQuoteState(in, s.blockStart, pos)
	s.loadBlock()
	if s.blockLen == 0 {
		s.markExhausted()
	}
	return s
}

// Input returns the underlying input. Classifiers use it for the rare
// scalar verifications (label backtracking, candidate checks) that the
// paper performs outside the SIMD pipeline.
func (s *Stream) Input() input.Input { return s.in }

// loadBlock fetches and classifies the block at blockStart.
func (s *Stream) loadBlock() {
	idx := s.blockStart / simd.BlockSize
	s.block, s.blockLen = s.in.Block(idx)
	if s.planes != nil {
		s.loadPlaneMasks(idx)
		return
	}
	qs := s.quotes
	backslash, rawQuotes := simd.CmpEq8Pair(s.block, '\\', '"')
	s.quoteMask, s.inString = qs.classifyMasks(backslash, rawQuotes)
	s.postQuotes = qs
}

// loadPlaneMasks serves the current block's quote masks from the planes.
func (s *Stream) loadPlaneMasks(idx int) {
	if p := s.planes; idx < len(p.Quote) {
		s.quoteMask = p.Quote[idx]
		s.inString = p.InString[idx]
		return
	}
	s.quoteMask, s.inString = 0, 0
}

// markExhausted records the end of input. The document length is always
// known by the time the end is observed.
func (s *Stream) markExhausted() {
	s.exhausted = true
	if n := s.in.Len(); n >= 0 {
		s.blockStart = n
	}
	s.blockLen = 0
}

// Advance moves to the next block. It reports false when the input is
// exhausted; the current block's bytes stay valid (inputs double-buffer, so
// probing the next block never invalidates the current one).
func (s *Stream) Advance() bool {
	if s.exhausted || s.blockLen < simd.BlockSize {
		// A partial block is always the final one.
		s.markExhausted()
		return false
	}
	idx := s.blockStart/simd.BlockSize + 1
	b, n := s.in.Block(idx)
	if n == 0 {
		s.markExhausted()
		return false
	}
	s.blockStart += simd.BlockSize
	s.blockLen = n
	s.block = b
	if s.planes != nil {
		s.loadPlaneMasks(idx)
		return true
	}
	s.quotes = s.postQuotes
	qs := s.quotes
	backslash, rawQuotes := simd.CmpEq8Pair(b, '\\', '"')
	s.quoteMask, s.inString = qs.classifyMasks(backslash, rawQuotes)
	s.postQuotes = qs
	return true
}

// BlockStart returns the absolute offset of the current block.
func (s *Stream) BlockStart() int { return s.blockStart }

// Exhausted reports whether the current block is past the end of input.
func (s *Stream) Exhausted() bool { return s.exhausted || s.blockLen == 0 }

// InString returns the in-string mask of the current block.
func (s *Stream) InString() uint64 { return s.inString }

// QuoteMask returns the unescaped-quote mask of the current block.
func (s *Stream) QuoteMask() uint64 { return s.quoteMask }

// Block returns the current block's bytes (padded with spaces past the
// input's end).
func (s *Stream) Block() *simd.Block { return s.block }

// SeekEndedInString reports whether the most recent label seek that ran out
// of input did so with the quote parity open — i.e. the document ends in
// the middle of a string. Only meaningful directly after SeekLabel/
// SeekLabelPattern returned ok=false.
func (s *Stream) SeekEndedInString() bool { return s.seekTailInString }
