package classifier

import (
	"sync/atomic"

	"rsonpath/internal/simd"
)

// passes counts Stream constructions since process start. One Stream is one
// classification pass over (a suffix of) a document, so the counter lets
// tests assert pass-sharing properties — in particular that the multi-query
// driver classifies a document exactly once however many queries it runs.
var passes atomic.Int64

// Passes returns the total number of classification passes started since
// process start. Tests take deltas around the code under scrutiny.
func Passes() int64 { return passes.Load() }

// Stream drives block-by-block classification of one input document. It is
// the concrete embodiment of the paper's multi-classifier pipeline core
// (§4.5): the quote classifier always runs, one block ahead of whichever
// top-level classifier (structural or depth) is currently active, and its
// state travels with the Stream when classifiers are switched.
//
// A Stream only moves forward. The current block's bytes and quote masks
// are exposed to the structural classifier, the depth classifier and the
// label seeker; each of them tracks its own within-block cursor.
type Stream struct {
	data       []byte
	blockStart int         // absolute offset of the current block
	blockLen   int         // number of real (non-padding) bytes in the block
	block      *simd.Block // points into data for full blocks (zero copy)
	tail       simd.Block  // padded storage for the final partial block

	quotes     quoteState // state at the start of the current block
	postQuotes quoteState // state at the end of the current block

	quoteMask uint64 // unescaped quotes in the current block
	inString  uint64 // in-string positions in the current block
}

// NewStream creates a stream over data and classifies the first block.
func NewStream(data []byte) *Stream {
	passes.Add(1)
	s := &Stream{data: data}
	s.loadBlock()
	return s
}

func (s *Stream) loadBlock() {
	if s.blockStart >= len(s.data) {
		s.blockLen = 0
		s.block = &s.tail
		simd.LoadBlock(&s.tail, nil, ' ')
		s.quoteMask, s.inString = 0, 0
		s.postQuotes = s.quotes
		return
	}
	if rest := s.data[s.blockStart:]; len(rest) >= simd.BlockSize {
		// Full block: classify in place, no copy.
		s.block = (*simd.Block)(rest)
		s.blockLen = simd.BlockSize
	} else {
		s.blockLen = simd.LoadBlock(&s.tail, rest, ' ')
		s.block = &s.tail
	}
	qs := s.quotes
	backslash, rawQuotes := simd.CmpEq8Pair(s.block, '\\', '"')
	s.quoteMask, s.inString = qs.classifyMasks(backslash, rawQuotes)
	s.postQuotes = qs
}

// Advance moves to the next block. It reports false when the input is
// exhausted.
func (s *Stream) Advance() bool {
	if s.blockStart+simd.BlockSize >= len(s.data) {
		s.blockStart = len(s.data)
		s.blockLen = 0
		return false
	}
	s.blockStart += simd.BlockSize
	s.quotes = s.postQuotes
	s.loadBlock()
	return true
}

// BlockStart returns the absolute offset of the current block.
func (s *Stream) BlockStart() int { return s.blockStart }

// Len returns the total input length.
func (s *Stream) Len() int { return len(s.data) }

// Data returns the underlying input. Classifiers use it for the rare
// scalar verifications (label backtracking, candidate checks) that the
// paper performs outside the SIMD pipeline.
func (s *Stream) Data() []byte { return s.data }

// Exhausted reports whether the current block is past the end of input.
func (s *Stream) Exhausted() bool { return s.blockStart >= len(s.data) }

// InString returns the in-string mask of the current block.
func (s *Stream) InString() uint64 { return s.inString }

// QuoteMask returns the unescaped-quote mask of the current block.
func (s *Stream) QuoteMask() uint64 { return s.quoteMask }

// Block returns the current block's bytes (padded with spaces past the
// input's end).
func (s *Stream) Block() *simd.Block { return s.block }
