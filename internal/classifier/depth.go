package classifier

import "rsonpath/internal/simd"

// SkipToClose is the depth classifier (§4.4). Starting at absolute offset
// from with relative depth 1 (one unmatched open character of the given
// kind), it fast-forwards the stream to the closing character that brings
// the relative depth to 0 and returns its absolute position.
//
// Only two characters are tracked — the matching open/close pair — marked
// with two CmpEq8 passes per block rather than the full structural lookup.
// The paper's block-skip heuristic is applied: when a block holds fewer
// closing characters than the current relative depth, the depth cannot
// reach zero inside it, so the whole block is accounted for with two
// popcounts and skipped.
//
// ok is false when the input ends before the subtree closes (malformed
// document). The stream is left on the block containing the returned
// position; the caller resumes structural classification with
// Structural.Reset.
func SkipToClose(s *Stream, from int, open byte) (closePos int, ok bool) {
	if s.planes != nil {
		return skipToClosePlanes(s, from)
	}
	cl := matchingClose(open)
	depth := 1
	first := true
	for {
		om, cm := simd.CmpEq8Pair(s.Block(), open, cl)
		notString := ^s.InString()
		om &= notString
		cm &= notString
		if first {
			// from may precede the current block when the caller's
			// iterator peeked ahead; everything at stake (in particular
			// the sought closer, which is always a recognised structural
			// character) lies at or after the current block.
			if rel := from - s.BlockStart(); rel > 0 {
				low := simd.BitsBelow(rel)
				om &^= low
				cm &^= low
			}
			first = false
		}
		// Heuristic: depth cannot drop to zero if there are fewer closers
		// in the block than the current depth.
		if simd.Popcount(cm) < depth {
			depth += simd.Popcount(om) - simd.Popcount(cm)
			if !s.Advance() {
				return 0, false
			}
			continue
		}
		// Walk the closers in order, adding the openers that precede each.
		accounted := uint64(0)
		for cm != 0 {
			bit := simd.TrailingZeros(cm)
			below := simd.BitsBelow(bit)
			depth += simd.Popcount(om & below &^ accounted)
			accounted = below | 1<<uint(bit)
			depth--
			if depth == 0 {
				return s.BlockStart() + bit, true
			}
			cm = simd.ClearLowest(cm)
		}
		depth += simd.Popcount(om &^ accounted)
		if !s.Advance() {
			return 0, false
		}
	}
}

// skipToClosePlanes is SkipToClose over a plane-backed stream. The relative
// depth is tracked on the precomputed bracket planes — both bracket kinds at
// once, which reaches the same closer on well-formed input since subtrees of
// either kind nest properly (on input that interleaves mismatched brackets
// the landing point may differ from the single-kind scan, within the
// engine's best-effort malformed-input contract, DESIGN.md §9). Skipped
// blocks are never loaded at all: the scan walks the planes and only the
// landing block is materialized, via the O(1) plane-backed JumpTo.
func skipToClosePlanes(s *Stream, from int) (int, bool) {
	p := s.planes
	idx := s.blockStart / simd.BlockSize
	// from may lie in the block after the current one when the caller's
	// iterator peeked ahead (see SkipToClose); never look before it.
	if fi := from / simd.BlockSize; fi > idx {
		idx = fi
	}
	depth := 1
	first := true
	for ; idx < len(p.Opens); idx++ {
		om, cm := p.Opens[idx], p.Closes[idx]
		if first {
			if rel := from - idx*simd.BlockSize; rel > 0 {
				low := simd.BitsBelow(rel)
				om &^= low
				cm &^= low
			}
			first = false
		}
		if simd.Popcount(cm) < depth {
			depth += simd.Popcount(om) - simd.Popcount(cm)
			continue
		}
		accounted := uint64(0)
		for cm != 0 {
			bit := simd.TrailingZeros(cm)
			below := simd.BitsBelow(bit)
			depth += simd.Popcount(om & below &^ accounted)
			accounted = below | 1<<uint(bit)
			depth--
			if depth == 0 {
				pos := idx*simd.BlockSize + bit
				s.JumpTo(pos)
				return pos, true
			}
			cm = simd.ClearLowest(cm)
		}
		depth += simd.Popcount(om &^ accounted)
	}
	return 0, false
}

// ScanToClose is a standalone form of SkipToClose for engines that keep a
// plain byte cursor instead of a Stream (the JSONSki-analogue baseline): it
// finds the closer matching an open character of the given kind, starting
// at absolute offset from with relative depth 1. from must lie outside any
// string (true for every position where a value can start), so a fresh
// quote state is valid.
func ScanToClose(data []byte, from int, open byte) (closePos int, ok bool) {
	s := NewStream(data[from:])
	p, ok := SkipToClose(s, 0, open)
	return from + p, ok
}

// matchingClose maps an opening structural character to its closer.
func matchingClose(open byte) byte {
	if open == '{' {
		return '}'
	}
	return ']'
}
