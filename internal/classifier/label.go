package classifier

import (
	"bytes"

	"rsonpath/internal/input"
	"rsonpath/internal/simd"
)

// SeekLabel implements skipping to a label (§3.3, §3.4): it finds the next
// occurrence of the object key label at or after absolute offset from and
// returns the offset of the key's opening quote together with the offset of
// the first byte of its value. On success the stream is repositioned (with
// a correctly reconstructed quote state) on the block containing valueAt,
// ready for the engine to resume.
//
// from must lie outside any string and not be escaped — true for every
// value boundary, which is where the engine's head-skip loop resumes from.
//
// Like the paper's memmem-based skipping, the search is delegated to an
// optimized substring scan (bytes.Index, the stdlib's accelerated memmem).
// Unlike the paper's original, candidates are screened against the quote
// structure, which the seeker tracks incrementally: the parity of unescaped
// quotes between candidates decides whether a candidate's first quote opens
// a string (a potential key) or closes one (an in-string false positive).
// Parity over a backslash-free gap is one vectorised bytes.Count; gaps with
// backslashes fall back to a scalar scan.
//
// Over a window-bounded input the search proceeds in window-sized chunks,
// carrying the quote parity (and a trailing-escape flag) across chunk
// boundaries; chunks overlap by len(pattern)-1 bytes so a pattern
// straddling a boundary is still found.
//
// ok is false when no further occurrence exists.
func SeekLabel(s *Stream, from int, label []byte) (keyAt, valueAt int, ok bool) {
	pattern := make([]byte, 0, len(label)+2)
	pattern = append(pattern, '"')
	pattern = append(pattern, label...)
	pattern = append(pattern, '"')
	return SeekLabelPattern(s, from, label, pattern)
}

// SeekLabelPattern is SeekLabel with the quoted pattern precomputed by the
// caller (the engine reuses it across the whole head-skip loop).
func SeekLabelPattern(s *Stream, from int, label, pattern []byte) (keyAt, valueAt int, ok bool) {
	in := s.Input()
	chunkSize := in.Window()
	if chunkSize != 0 {
		// Request half the window per chunk, not all of it: the slack left
		// in the input's buffer lets consecutive chunks (and the engine's
		// resumed scans after a match) advance without forcing a slide per
		// request, keeping the memmove cost amortized.
		chunkSize /= 2
		if chunkSize < 2*len(pattern)+simd.BlockSize {
			// The overlap must leave room to make progress; oversized
			// requests beyond the input's capacity fail as window
			// violations, which is the documented outcome for labels that
			// defeat the window.
			chunkSize = 2*len(pattern) + simd.BlockSize
		}
	}
	pos := from       // absolute start of the unsearched region
	inString := false // quote state at pos
	escaped := false  // whether the byte at pos is escaped
	for {
		var hi int
		if chunkSize == 0 {
			hi = in.Len() // in-memory input: one chunk covers the rest
		} else {
			hi = pos + chunkSize
		}
		buf := in.Bytes(pos, hi)
		final := chunkSize == 0 || len(buf) < hi-pos
		cur := 0 // relative offset the quote state is valid at
		for {
			i := bytes.Index(buf[cur:], pattern)
			if i < 0 {
				break
			}
			ci := cur + i
			cand := pos + ci
			gap := buf[cur:ci]
			candEscaped := false
			if !escaped && bytes.IndexByte(gap, '\\') < 0 {
				if bytes.Count(gap, pattern[:1])&1 == 1 {
					inString = !inString
				}
			} else {
				inString, candEscaped = advanceQuoteState(gap, inString, escaped)
			}
			escaped = false
			switch {
			case candEscaped:
				// The candidate's quote is escaped: it is string content.
				// The escape consumed the quote; the string continues.
				cur = ci + 1
			case inString:
				// The candidate's first quote closes a string.
				inString = false
				cur = ci + 1
			default:
				// The candidate's first quote opens a string whose content
				// begins with the label: verify closing quote and colon.
				if vs, match := verifyKey(in, cand, label); match {
					s.JumpTo(vs)
					return cand, vs, true
				}
				// Not a key (value string, longer key, or escaped closing
				// quote). Step inside the string and resume; the parity
				// logic disposes of the rest of it. Verification touched
				// the input, which may have invalidated buf: refetch.
				inString = true
				pos += ci + 1
				cur = -1
			}
			if cur < 0 {
				break
			}
		}
		if cur < 0 {
			continue // refetch after verification
		}
		if final {
			// No further occurrence. Carry the quote parity over the
			// unsearched tail so the stream records whether the document
			// ends inside a string — the engine's head-skip loop uses this
			// to reject truncated documents it never classified.
			if gap := buf[cur:]; !escaped && bytes.IndexByte(gap, '\\') < 0 {
				if bytes.Count(gap, pattern[:1])&1 == 1 {
					inString = !inString
				}
			} else {
				inString, _ = advanceQuoteState(gap, inString, escaped)
			}
			s.seekTailInString = inString
			return 0, 0, false
		}
		// Consume the chunk up to the overlap and carry the state forward.
		next := len(buf) - (len(pattern) - 1)
		if next < cur {
			next = cur
		}
		if gap := buf[cur:next]; !escaped && bytes.IndexByte(gap, '\\') < 0 {
			if bytes.Count(gap, pattern[:1])&1 == 1 {
				inString = !inString
			}
		} else {
			inString, escaped = advanceQuoteState(gap, inString, escaped)
		}
		pos += next
	}
}

// advanceQuoteState runs the scalar quote automaton over gap, starting in
// the given (inString, escaped) state, and reports the state after the gap:
// the in-string parity plus whether the byte immediately following the gap
// is escaped.
func advanceQuoteState(gap []byte, inString, escaped bool) (after, nextEscaped bool) {
	for _, b := range gap {
		switch {
		case escaped:
			escaped = false
		case b == '\\':
			escaped = true
		case b == '"':
			inString = !inString
		}
	}
	return inString, escaped
}

// verifyKey checks that the opening quote at q starts the string label,
// immediately followed by an unescaped closing quote and then (after
// whitespace) a colon. It returns the offset of the value's first byte.
func verifyKey(in input.Input, q int, label []byte) (valueAt int, ok bool) {
	end := q + 1 + len(label) // the closing quote, if this is the key
	got := in.Bytes(q+1, end+1)
	if len(got) < len(label)+1 || got[len(label)] != '"' {
		return 0, false
	}
	if !bytes.Equal(got[:len(label)], label) {
		return 0, false
	}
	// The closing quote must not be escaped: count the backslashes directly
	// before it. (Possible only when the label itself ends in backslashes.)
	bs := 0
	for i := len(label) - 1; i >= 0 && got[i] == '\\'; i-- {
		bs++
	}
	if bs%2 == 1 {
		return 0, false
	}
	i := skipWhitespace(in, end+1)
	if b, okb := in.ByteAt(i); !okb || b != ':' {
		return 0, false
	}
	i = skipWhitespace(in, i+1)
	if _, okb := in.ByteAt(i); !okb {
		return 0, false
	}
	return i, true
}

// skipWhitespace returns the first offset at or after i holding a
// non-whitespace byte (or the document length), scanning in block-sized
// chunks.
func skipWhitespace(in input.Input, i int) int {
	for {
		chunk := in.Bytes(i, i+simd.BlockSize)
		if len(chunk) == 0 {
			return i
		}
		for j, b := range chunk {
			if !isWhitespace(b) {
				return i + j
			}
		}
		i += len(chunk)
	}
}

func isWhitespace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r'
}

// JumpTo repositions the stream onto the block containing pos, skipping the
// classification of every block in between. pos must be outside any string
// and not escaped; the quote state at the block's start is reconstructed
// from that anchor by scanning the at most BlockSize-1 bytes before pos. A
// plane-backed stream skips the reconstruction entirely — every block's
// masks are already known — which makes jumps O(1).
func (s *Stream) JumpTo(pos int) {
	blockStart := pos - pos%simd.BlockSize
	if blockStart == s.blockStart && !s.exhausted {
		return
	}
	if s.planes == nil {
		s.quotes = reconstructQuoteState(s.in, blockStart, pos)
	}
	s.blockStart = blockStart
	s.exhausted = false
	s.loadBlock()
	if s.blockLen == 0 {
		s.markExhausted()
	}
}

// reconstructQuoteState derives the quote state at blockStart from an
// anchor position pos (outside any string, not escaped) in the same block.
// The first byte of the block is escaped iff an odd backslash run ends just
// before it; the state at pos is "outside", and each unescaped quote
// between the block start and pos flips it, so the block-start state is the
// flip parity.
func reconstructQuoteState(in input.Input, blockStart, pos int) quoteState {
	var qs quoteState
	if oddBackslashRunEndingAt(in, blockStart) {
		qs.prevEscaped = 1
	}
	parity := false
	escaped := qs.prevEscaped == 1
	for _, b := range in.Bytes(blockStart, pos) {
		switch {
		case escaped:
			escaped = false
		case b == '\\':
			escaped = true
		case b == '"':
			parity = !parity
		}
	}
	if parity {
		qs.prevInString = ^uint64(0)
	}
	return qs
}

// oddBackslashRunEndingAt reports whether the backslash run ending directly
// before pos has odd length, scanning backward in block-sized chunks. A run
// extending past the input's retained look-behind is a window violation.
func oddBackslashRunEndingAt(in input.Input, pos int) bool {
	n := 0
	i := pos
	for i > 0 {
		lo := i - simd.BlockSize
		if r := in.Retained(); lo < r {
			lo = r
		}
		if lo >= i {
			input.Exceeded("backslash-run", i)
		}
		chunk := in.Bytes(lo, i)
		j := len(chunk) - 1
		for j >= 0 && chunk[j] == '\\' {
			j--
			n++
		}
		if j >= 0 {
			break
		}
		i = lo
	}
	return n%2 == 1
}
