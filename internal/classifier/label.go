package classifier

import (
	"bytes"

	"rsonpath/internal/simd"
)

// SeekLabel implements skipping to a label (§3.3, §3.4): it finds the next
// occurrence of the object key label at or after absolute offset from and
// returns the offset of the key's opening quote together with the offset of
// the first byte of its value. On success the stream is repositioned (with
// a correctly reconstructed quote state) on the block containing valueAt,
// ready for the engine to resume.
//
// from must lie outside any string and not be escaped — true for every
// value boundary, which is where the engine's head-skip loop resumes from.
//
// Like the paper's memmem-based skipping, the search is delegated to an
// optimized substring scan (bytes.Index, the stdlib's accelerated memmem).
// Unlike the paper's original, candidates are screened against the quote
// structure, which the seeker tracks incrementally: the parity of unescaped
// quotes between candidates decides whether a candidate's first quote opens
// a string (a potential key) or closes one (an in-string false positive).
// Parity over a backslash-free gap is one vectorised bytes.Count; gaps with
// backslashes fall back to a scalar scan.
//
// ok is false when no further occurrence exists.
func SeekLabel(s *Stream, from int, label []byte) (keyAt, valueAt int, ok bool) {
	pattern := make([]byte, 0, len(label)+2)
	pattern = append(pattern, '"')
	pattern = append(pattern, label...)
	pattern = append(pattern, '"')
	return SeekLabelPattern(s, from, label, pattern)
}

// SeekLabelPattern is SeekLabel with the quoted pattern precomputed by the
// caller (the engine reuses it across the whole head-skip loop).
func SeekLabelPattern(s *Stream, from int, label, pattern []byte) (keyAt, valueAt int, ok bool) {
	data := s.Data()
	pos := from
	inString := false
	for pos <= len(data) {
		i := bytes.Index(data[pos:], pattern)
		if i < 0 {
			return 0, 0, false
		}
		cand := pos + i
		candEscaped := false
		if gap := data[pos:cand]; bytes.IndexByte(gap, '\\') < 0 {
			if bytes.Count(gap, pattern[:1])&1 == 1 {
				inString = !inString
			}
		} else {
			inString, candEscaped = advanceQuoteState(gap, inString)
		}
		switch {
		case candEscaped:
			// The candidate's quote is escaped: it is string content.
			// The escape consumed the quote; the string continues.
			pos = cand + 1
		case inString:
			// The candidate's first quote closes a string.
			inString = false
			pos = cand + 1
		default:
			// The candidate's first quote opens a string whose content
			// begins with the label: verify closing quote and colon.
			if vs, match := verifyKey(data, cand, label); match {
				s.JumpTo(vs)
				return cand, vs, true
			}
			// Not a key (value string, longer key, or escaped closing
			// quote). Step inside the string and resume; the parity logic
			// disposes of the rest of it.
			pos = cand + 1
			inString = true
		}
	}
	return 0, 0, false
}

// advanceQuoteState runs the scalar quote automaton over gap, starting in
// the given state, and reports the state after the gap plus whether the
// byte immediately following the gap is escaped.
func advanceQuoteState(gap []byte, inString bool) (after, nextEscaped bool) {
	escaped := false
	for _, b := range gap {
		switch {
		case escaped:
			escaped = false
		case b == '\\':
			escaped = true
		case b == '"':
			inString = !inString
		}
	}
	return inString, escaped
}

// verifyKey checks that the opening quote at q starts the string label,
// immediately followed by an unescaped closing quote and then (after
// whitespace) a colon. It returns the offset of the value's first byte.
func verifyKey(data []byte, q int, label []byte) (valueAt int, ok bool) {
	end := q + 1 + len(label)
	if end >= len(data) || data[end] != '"' {
		return 0, false
	}
	for i, c := range label {
		if data[q+1+i] != c {
			return 0, false
		}
	}
	// The closing quote must not be escaped: count the backslashes directly
	// before it. (Possible only when the label itself ends in backslashes.)
	bs := 0
	for i := end - 1; i > q && data[i] == '\\'; i-- {
		bs++
	}
	if bs%2 == 1 {
		return 0, false
	}
	i := skipWhitespace(data, end+1)
	if i >= len(data) || data[i] != ':' {
		return 0, false
	}
	i = skipWhitespace(data, i+1)
	if i >= len(data) {
		return 0, false
	}
	return i, true
}

// skipWhitespace returns the first index at or after i holding a
// non-whitespace byte (or len(data)).
func skipWhitespace(data []byte, i int) int {
	for i < len(data) && isWhitespace(data[i]) {
		i++
	}
	return i
}

func isWhitespace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r'
}

// JumpTo repositions the stream onto the block containing pos, skipping the
// classification of every block in between. pos must be outside any string
// and not escaped; the quote state at the block's start is reconstructed
// from that anchor by scanning the at most BlockSize-1 bytes before pos.
func (s *Stream) JumpTo(pos int) {
	blockStart := pos - pos%simd.BlockSize
	if blockStart == s.blockStart {
		return
	}
	// The first byte of the block is escaped iff an odd backslash run ends
	// just before it.
	var qs quoteState
	if oddBackslashRunEndingAt(s.data, blockStart) {
		qs.prevEscaped = 1
	}
	// The state at pos is "outside"; each unescaped quote between the block
	// start and pos flips it, so the block-start state is the flip parity.
	parity := false
	escaped := qs.prevEscaped == 1
	for i := blockStart; i < pos; i++ {
		switch {
		case escaped:
			escaped = false
		case s.data[i] == '\\':
			escaped = true
		case s.data[i] == '"':
			parity = !parity
		}
	}
	if parity {
		qs.prevInString = ^uint64(0)
	}
	s.blockStart = blockStart
	s.quotes = qs
	s.loadBlock()
}

// oddBackslashRunEndingAt reports whether the backslash run ending directly
// before pos has odd length.
func oddBackslashRunEndingAt(data []byte, pos int) bool {
	n := 0
	for i := pos - 1; i >= 0 && data[i] == '\\'; i-- {
		n++
	}
	return n%2 == 1
}
