package classifier

import (
	"fmt"
	"math/rand"
	"rsonpath/internal/input"
	"strings"
	"testing"
)

// refSeekWithin is the scalar oracle for SeekLabelWithin.
func refSeekWithin(data []byte, from int, label []byte, rel int) TailEvent {
	quotes, inString := refQuoteScan(data)
	delta := 0
	for i := from; i < len(data); i++ {
		if inString[i] {
			if quotes[i] && i >= from {
				// opening quote: candidate
				if vs, ok := verifyKey(input.NewBytes(data), i, label); ok {
					return TailEvent{Kind: TailKey, KeyAt: i, ValueAt: vs, DepthDelta: delta}
				}
			}
			continue
		}
		switch data[i] {
		case '{', '[':
			rel++
			delta++
		case '}', ']':
			rel--
			delta--
			if rel == 0 {
				return TailEvent{Kind: TailClose, Pos: i}
			}
		}
	}
	return TailEvent{Kind: TailEnd}
}

func assertSeekWithin(t *testing.T, data string, from int, label string, rel int) {
	t.Helper()
	s := NewStream([]byte(data))
	got := SeekLabelWithin(s, from, []byte(label), rel)
	want := refSeekWithin([]byte(data), from, []byte(label), rel)
	if got != want {
		t.Fatalf("SeekLabelWithin(%q, %d, %q, %d) = %+v, want %+v",
			data, from, label, rel, got, want)
	}
}

func TestSeekWithinFindsKey(t *testing.T) {
	assertSeekWithin(t, `{"x": 1, "b": 2}`, 1, "b", 1)
	assertSeekWithin(t, `{"x": {"b": 2}}`, 1, "b", 1)
	assertSeekWithin(t, `{"x": [{"b": 2}]}`, 1, "b", 1)
}

func TestSeekWithinStopsAtBoundary(t *testing.T) {
	// "b" exists only after the element closes: the closer must win.
	assertSeekWithin(t, `{"x": 1}, {"b": 2}`, 1, "b", 1)
	assertSeekWithin(t, `{"x": {"y": 0}} {"b": 1}`, 1, "b", 1)
	// Starting deeper: rel=2 requires two unmatched closers.
	assertSeekWithin(t, `{"x": 1} } {"b": 2}`, 1, "b", 2)
}

func TestSeekWithinIgnoresStringsAndValues(t *testing.T) {
	assertSeekWithin(t, `{"s": "\"b\": 1", "v": "b", "b": 3}`, 1, "b", 1)
	assertSeekWithin(t, `{"s": "}}}}", "b": 3}`, 1, "b", 1)
	assertSeekWithin(t, `{"bb": 1, "b": 2}`, 1, "b", 1)
}

func TestSeekWithinDepthDelta(t *testing.T) {
	s := NewStream([]byte(`{"x": {"y": {"b": 1}}}`))
	ev := SeekLabelWithin(s, 1, []byte("b"), 1)
	if ev.Kind != TailKey || ev.DepthDelta != 2 {
		t.Fatalf("event %+v, want TailKey with delta 2", ev)
	}
	s = NewStream([]byte(`{"x": {"y": 0}, "b": 1}`))
	ev = SeekLabelWithin(s, 1, []byte("b"), 1)
	if ev.Kind != TailKey || ev.DepthDelta != 0 {
		t.Fatalf("event %+v, want TailKey with delta 0", ev)
	}
}

func TestSeekWithinFastPathBlocks(t *testing.T) {
	// Large candidate-free, closer-poor middle section exercises the
	// whole-block fast path.
	mid := strings.Repeat(`{"k":[0],`, 40)
	doc := `{` + mid + `"b": 1` + strings.Repeat(`}`, 41)
	assertSeekWithin(t, doc, 1, "b", 1)
	assertSeekWithin(t, doc, 1, "zz", 1)
}

func TestSeekWithinEndOfInput(t *testing.T) {
	assertSeekWithin(t, `{"x": 1`, 1, "b", 1)
	assertSeekWithin(t, ``, 0, "b", 1)
}

func TestSeekWithinRandom(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	for trial := 0; trial < 500; trial++ {
		doc := randomTailDoc(r, 4)
		// Start just inside the document root when it is composite.
		if len(doc) == 0 || (doc[0] != '{' && doc[0] != '[') {
			continue
		}
		label := []string{"a", "b", "zz"}[r.Intn(3)]
		assertSeekWithin(t, doc, 1, label, 1)
	}
}

func randomTailDoc(r *rand.Rand, depth int) string {
	var b strings.Builder
	var gen func(d int)
	gen = func(d int) {
		kind := r.Intn(8)
		if d <= 0 && kind < 4 {
			kind += 4
		}
		switch {
		case kind < 2:
			b.WriteByte('{')
			keys := []string{"a", "b", "c"}
			perm := r.Perm(len(keys))
			n := r.Intn(3)
			for i := 0; i < n; i++ {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%q:", keys[perm[i]])
				gen(d - 1)
			}
			b.WriteByte('}')
		case kind < 4:
			b.WriteByte('[')
			n := r.Intn(3)
			for i := 0; i < n; i++ {
				if i > 0 {
					b.WriteByte(',')
				}
				gen(d - 1)
			}
			b.WriteByte(']')
		case kind < 6:
			fmt.Fprintf(&b, "%d", r.Intn(100))
		case kind < 7:
			b.WriteString(`"s{\"b\":1}"`)
		default:
			b.WriteString("null")
		}
	}
	gen(depth)
	return b.String()
}
