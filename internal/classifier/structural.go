package classifier

import "rsonpath/internal/simd"

// The paper's structural lookup tables (§4.1). JSON structural characters
// and their nibble decomposition:
//
//	{ 0x7B   } 0x7D   [ 0x5B   ] 0x5D   : 0x3A   , 0x2C
//
// Acceptance groups: ⟨{5,7},{B,D}⟩ → 1, ⟨{2},{C}⟩ → 2, ⟨{3},{A}⟩ → 3.
// The groups are non-overlapping, so classification is
// utab[upper] == ltab[lower], with sentinels 0xFE/0xFF that never match.
var (
	structuralUtab = simd.NibbleTable{
		0xFE, 0xFE, 0x02, 0x03, 0xFE, 0x01, 0xFE, 0x01,
		0xFE, 0xFE, 0xFE, 0xFE, 0xFE, 0xFE, 0xFE, 0xFE,
	}
	structuralLtab = simd.NibbleTable{
		0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
		0xFF, 0xFF, 0x03, 0x01, 0x02, 0x01, 0xFF, 0xFF,
	}
)

// Toggle masks (§4.1): commas and colons do not share their upper nibble
// with any other accepted symbol, so XOR-ing their utab entry turns them
// off and on independently.
const (
	toggleCommaUpper = 0x2
	toggleColonUpper = 0x3
	commaGroup       = 0x02
	colonGroup       = 0x03
)

// Structural is the structural classifier plus the within-block cursor that
// backs the engine's iterator (§4.3). By default it recognises only the
// opening and closing characters, which amounts to skipping leaves (§3.3);
// commas and colons are toggled on demand.
//
// Toggling implementation: the paper XORs the upper lookup table and
// reclassifies the block. In scalar Go reclassification costs a pass over
// the block, and the engine toggles at every element boundary, so instead
// the classifier keeps the always-on brace mask per block (one composed
// table pass) and computes the comma and colon masks lazily (one SWAR
// comparison pass each, at most once per block); a toggle then merely
// changes which masks are OR-ed together. The visible semantics — newly
// enabled characters appear only from the consumption point onward — are
// identical (see DESIGN.md).
//
// Consumption model: bits strictly below consumed (relative to the current
// block) are gone for good; Next advances consumed past the bit it returns;
// Peek does not.
type Structural struct {
	s        *Stream
	bracesM  uint64
	commaM   uint64
	colonM   uint64
	commaOK  bool // commaM computed for the current block
	colonOK  bool // colonM computed for the current block
	consumed int  // relative index below which the current block is consumed
	commas   bool
	colons   bool
}

// bracesTable is the composed lookup for the always-on symbols: the paper's
// utab with both the comma and the colon group toggled off.
var bracesTable = func() simd.ByteTable {
	utab := structuralUtab
	utab[toggleCommaUpper] ^= commaGroup
	utab[toggleColonUpper] ^= colonGroup
	return simd.CompileNibbleEq(&utab, &structuralLtab)
}()

// NewStructural creates a structural classifier over s, starting at
// absolute offset from. The stream's current block must contain from (or
// precede it by at most the consumed prefix).
func NewStructural(s *Stream, from int) *Structural {
	c := &Structural{s: s}
	c.Reset(from)
	return c
}

// onBlock recomputes the per-block masks after the stream advanced. On a
// plane-backed stream every mask is a lookup (the planes are pre-masked by
// the in-string positions), so the lazy comma/colon computation is moot.
func (c *Structural) onBlock() {
	if p := c.s.planes; p != nil {
		if idx := c.s.blockStart / simd.BlockSize; idx < len(p.Opens) {
			c.bracesM = p.Opens[idx] | p.Closes[idx]
			c.commaM = p.Commas[idx]
			c.colonM = p.Colons[idx]
		} else {
			c.bracesM, c.commaM, c.colonM = 0, 0, 0
		}
		c.commaOK, c.colonOK = true, true
		return
	}
	c.bracesM = simd.ClassifyBytes(c.s.Block(), &bracesTable) &^ c.s.InString()
	c.commaOK, c.colonOK = false, false
}

// active returns the enabled-symbol mask of the current block, computing
// the lazy comma/colon masks if needed.
func (c *Structural) active() uint64 {
	m := c.bracesM
	if c.commas {
		if !c.commaOK {
			c.commaM = simd.CmpEq8(c.s.Block(), ',') &^ c.s.InString()
			c.commaOK = true
		}
		m |= c.commaM
	}
	if c.colons {
		if !c.colonOK {
			c.colonM = simd.CmpEq8(c.s.Block(), ':') &^ c.s.InString()
			c.colonOK = true
		}
		m |= c.colonM
	}
	return m
}

// Reset repositions the classifier so the next structural character
// returned is at absolute offset from or later. This is the resume step of
// the pipeline (§4.5), used after the depth classifier or the label seeker
// has moved the stream.
func (c *Structural) Reset(from int) {
	// Advance (sequentially, keeping the quote state exact) until the
	// current block contains from; a stale within-block cursor would
	// otherwise replay events between the block start and from.
	for c.s.BlockStart()+simd.BlockSize <= from {
		if !c.s.Advance() {
			break
		}
	}
	rel := from - c.s.BlockStart()
	if rel < 0 {
		rel = 0
	}
	if rel > simd.BlockSize {
		rel = simd.BlockSize
	}
	c.consumed = rel
	c.onBlock()
}

// Position returns the absolute offset from which the next scan proceeds:
// everything before it has been consumed or skipped.
func (c *Structural) Position() int {
	return c.s.BlockStart() + c.consumed
}

// Commas reports whether comma events are currently enabled.
func (c *Structural) Commas() bool { return c.commas }

// Colons reports whether colon events are currently enabled.
func (c *Structural) Colons() bool { return c.colons }

// SetCommas toggles comma recognition (§4.3).
func (c *Structural) SetCommas(on bool) { c.commas = on }

// SetColons toggles colon recognition (§4.3).
func (c *Structural) SetColons(on bool) { c.colons = on }

// Next returns the next enabled structural character and consumes it.
// ok is false at end of input.
func (c *Structural) Next() (pos int, ch byte, ok bool) {
	rel, ch, ok := c.scan()
	if !ok {
		return 0, 0, false
	}
	c.consumed = rel + 1
	return c.s.BlockStart() + rel, ch, true
}

// Peek returns the next enabled structural character without consuming it.
// Peeking may advance the stream to later blocks when the current block is
// exhausted; this is safe because exhausted blocks hold nothing enabled.
func (c *Structural) Peek() (pos int, ch byte, ok bool) {
	rel, ch, ok := c.scan()
	if !ok {
		return 0, 0, false
	}
	return c.s.BlockStart() + rel, ch, true
}

// scan locates the next enabled bit at or after the consumption point,
// crossing blocks as needed.
func (c *Structural) scan() (rel int, ch byte, ok bool) {
	for {
		m := c.active() &^ simd.BitsBelow(c.consumed)
		if m != 0 {
			bit := simd.TrailingZeros(m)
			return bit, c.s.Block()[bit], true
		}
		if !c.s.Advance() {
			return 0, 0, false
		}
		c.consumed = 0
		c.onBlock()
	}
}
