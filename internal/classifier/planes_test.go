package classifier

import (
	"testing"
	"unsafe"

	"rsonpath/internal/input"
	"rsonpath/internal/simd"
)

// checkPlanesEquivalence asserts that BuildPlanes produces, for every block
// of data, exactly the masks a per-block Stream classifies on the fly — the
// batched sweep and the incremental pipeline must be bit-identical whatever
// the bytes, or an IndexedDocument run could diverge from a plain run. The
// stream side runs over in, which presents the same bytes (possibly through
// a buffered window, exercising refill boundaries).
func checkPlanesEquivalence(t *testing.T, data []byte, in input.Input, label string) {
	t.Helper()
	p := BuildPlanes(data)
	if want := (len(data) + simd.BlockSize - 1) / simd.BlockSize; p.Blocks() != want {
		t.Fatalf("%s: %d plane blocks, want %d", label, p.Blocks(), want)
	}
	s := NewStreamInput(in)
	idx := 0
	for !s.Exhausted() {
		if idx >= p.Blocks() {
			t.Fatalf("%s: stream visited block %d past the planes' %d", label, idx, p.Blocks())
		}
		if s.quoteMask != p.Quote[idx] || s.inString != p.InString[idx] {
			t.Fatalf("%s block %d: stream quote=%#x inString=%#x, planes quote=%#x inString=%#x",
				label, idx, s.quoteMask, s.inString, p.Quote[idx], p.InString[idx])
		}
		opens, closes := simd.BracketMasks(s.block)
		commas := simd.CmpEq8(s.block, ',')
		colons := simd.CmpEq8(s.block, ':')
		notStr := ^s.inString
		if p.Opens[idx] != opens&notStr || p.Closes[idx] != closes&notStr ||
			p.Commas[idx] != commas&notStr || p.Colons[idx] != colons&notStr {
			t.Fatalf("%s block %d: symbol planes diverge from per-block masks", label, idx)
		}
		idx++
		if !s.Advance() {
			break
		}
	}
	if idx != p.Blocks() {
		t.Fatalf("%s: stream visited %d blocks, planes hold %d", label, idx, p.Blocks())
	}
	if want := s.postQuotes.prevInString != 0; p.EndInString != want && len(data) > 0 {
		t.Fatalf("%s: EndInString=%v, stream carry says %v", label, p.EndInString, want)
	}
	if want := s.postQuotes.prevEscaped != 0; p.EndEscaped != want && len(data) > 0 {
		t.Fatalf("%s: EndEscaped=%v, stream carry says %v", label, p.EndEscaped, want)
	}
}

func planesCorpus() [][]byte {
	docs := [][]byte{
		nil,
		[]byte(`{}`),
		[]byte(`{"a": [1, 2, {"b": "x,y:z"}], "c": null}`),
		[]byte(`{"esc\\": "\"quoted\""}`),
		[]byte(`"unterminated`),
		[]byte(`{"open": [1, 2`),
		[]byte("\\\\\\\\\\\\"),
		[]byte(`{"` + string(make([]byte, 200)) + `": 1}`),
	}
	// A backslash run straddling the 64-byte block boundary — the carried
	// escape parity is the hardest state to batch.
	b := make([]byte, 130)
	for i := range b {
		b[i] = ' '
	}
	for i := 60; i < 70; i++ {
		b[i] = '\\'
	}
	b[70], b[75] = '"', '"'
	docs = append(docs, b)
	// A string spanning several blocks, with quotes exactly on boundaries.
	long := []byte(`{"k": "`)
	for len(long) < 63 {
		long = append(long, 'x')
	}
	long = append(long, '"', ':', '[', ']', '}')
	docs = append(docs, long)
	return docs
}

// forEachBackend runs f once per kernel backend available on this host,
// forcing it for the duration: the planes must be bit-identical whichever
// hardware path built them.
func forEachBackend(t *testing.T, f func(t *testing.T)) {
	t.Helper()
	prev := simd.Backend()
	defer func() {
		if err := simd.SetBackend(prev); err != nil {
			t.Fatalf("restoring backend %s: %v", prev, err)
		}
	}()
	for _, name := range simd.Backends() {
		if err := simd.SetBackend(name); err != nil {
			t.Fatalf("SetBackend(%q): %v", name, err)
		}
		t.Run("simd="+name, f)
	}
}

func TestPlanesEquivalence(t *testing.T) {
	forEachBackend(t, func(t *testing.T) {
		for i, data := range planesCorpus() {
			checkPlanesEquivalence(t, data, input.NewBytes(data), "bytes")
			for _, window := range []int{64, 128, 256} {
				checkPlanesEquivalence(t, data,
					input.NewBuffered(&chunkReader{data: data, n: 7}, window), "buffered")
			}
			_ = i
		}
	})
}

// TestPlanesAlignment pins the plane-allocation invariants the vector
// kernels rely on: every plane 32-byte aligned, capacity rounded to whole
// vector lanes so lane-rounded passes never need a scalar tail, padding
// words zero, and the whole build a constant number of allocations.
func TestPlanesAlignment(t *testing.T) {
	for _, bytes := range []int{1, 63, 64, 65, 64 * simd.VecWords, 64*simd.VecWords + 1, 4096, 10000} {
		data := make([]byte, bytes)
		for i := range data {
			data[i] = "{}[]:,\"x "[i%9]
		}
		p := BuildPlanes(data)
		n := (bytes + simd.BlockSize - 1) / simd.BlockSize
		rn := simd.RoundWords(n)
		for name, plane := range map[string][]uint64{
			"Quote": p.Quote, "InString": p.InString, "Opens": p.Opens,
			"Closes": p.Closes, "Commas": p.Commas, "Colons": p.Colons,
		} {
			if len(plane) != n {
				t.Fatalf("%d bytes: len(%s) = %d, want %d", bytes, name, len(plane), n)
			}
			if cap(plane) != rn {
				t.Fatalf("%d bytes: cap(%s) = %d, want lane-rounded %d", bytes, name, cap(plane), rn)
			}
			if addr := uintptr(unsafe.Pointer(&plane[:1][0])); addr%simd.VecAlign != 0 {
				t.Fatalf("%d bytes: %s base %#x not %d-byte aligned", bytes, name, addr, simd.VecAlign)
			}
			for i, w := range plane[n:rn] {
				if w != 0 {
					t.Fatalf("%d bytes: %s padding word %d = %#x, want 0", bytes, name, n+i, w)
				}
			}
		}
	}
	// The whole build is a constant three allocations: the backing array,
	// the struct, and the padded tail block (which escapes through the
	// backend dispatch's function pointer) — never per-block garbage.
	data := []byte(`{"a": [1, 2, {"b": "x,y:z"}], "c": null}`)
	if allocs := testing.AllocsPerRun(50, func() { _ = BuildPlanes(data) }); allocs > 3 {
		t.Fatalf("BuildPlanes allocates %v times per run, want <= 3", allocs)
	}
}

// FuzzPlanesEquivalence asserts the batched sweep is bit-identical to the
// per-block pipeline for arbitrary bytes — not just valid JSON: the planes
// feed the same classifiers, so they must agree even on garbage.
func FuzzPlanesEquivalence(f *testing.F) {
	for _, data := range planesCorpus() {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		prev := simd.Backend()
		defer func() { _ = simd.SetBackend(prev) }()
		for _, name := range simd.Backends() {
			if err := simd.SetBackend(name); err != nil {
				t.Fatalf("SetBackend(%q): %v", name, err)
			}
			checkPlanesEquivalence(t, data, input.NewBytes(data), "bytes/"+name)
			checkPlanesEquivalence(t, data,
				input.NewBuffered(&chunkReader{data: data, n: 7}, 64), "buffered/"+name)
		}
	})
}
