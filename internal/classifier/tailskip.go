package classifier

import "rsonpath/internal/simd"

// This file implements the classifier the paper sketches as future work in
// §4.5: "a classifier that allows to fast-forward to the next occurrence of
// a label within an object. Such a classifier could be leveraged to speed
// up the execution of nested descendant selectors."
//
// SeekLabelWithin scans forward from a position inside an element whose
// boundary sits rel levels up, and stops at whichever comes first:
//
//   - a verified occurrence of the sought object key (TailKey), reporting
//     the depth change accumulated on the way there, or
//   - the closing character that brings the relative depth to zero
//     (TailClose) — the element boundary the engine must process.
//
// Unlike the head-skip seeker (SeekLabelPattern), which is free to ignore
// structure because the initial state's scope is the whole document, this
// classifier tracks both bracket kinds to monitor the depth — exactly the
// "hard in general" part §3.3 points out for non-initial waiting states.
// Everything is computed per block: bracket masks via paired comparisons,
// key candidates from the quote classifier's masks (in-string positions are
// masked out, so brackets and quotes inside strings are invisible), and a
// whole-block fast path when a block holds no candidates and cannot drop
// the depth to zero.

// TailKind discriminates SeekLabelWithin results.
type TailKind int

const (
	// TailKey: a key occurrence of the label was found first.
	TailKey TailKind = iota
	// TailClose: the element boundary was reached first.
	TailClose
	// TailEnd: the input ended before either (malformed document).
	TailEnd
)

// TailEvent is the outcome of SeekLabelWithin.
type TailEvent struct {
	Kind TailKind
	// KeyAt/ValueAt are set for TailKey: the key's opening quote and the
	// first byte of its value.
	KeyAt   int
	ValueAt int
	// DepthDelta is set for TailKey: the change in document depth between
	// the scan start and the key's enclosing object interior.
	DepthDelta int
	// Pos is set for TailClose: the boundary closing character.
	Pos int
}

// SeekLabelWithin scans from absolute offset from, with the element
// boundary rel levels of nesting up (rel >= 1), until the next verified
// key occurrence of label or the boundary closer, whichever comes first.
// The stream is left on the block containing the event.
func SeekLabelWithin(s *Stream, from int, label []byte, rel int) TailEvent {
	in := s.Input()
	// Bring the stream to the block containing from (sequentially, so the
	// quote state stays exact).
	for s.BlockStart()+simd.BlockSize <= from {
		if !s.Advance() {
			return TailEvent{Kind: TailEnd}
		}
	}
	delta := 0
	first := true
	for {
		inString := s.InString()
		opens, closes := simd.BracketMasks(s.Block())
		opens &^= inString
		closes &^= inString
		cands := s.QuoteMask() & inString // opening quotes
		if first {
			if low := from - s.BlockStart(); low > 0 {
				mask := simd.BitsBelow(low)
				opens &^= mask
				closes &^= mask
				cands &^= mask
			}
			first = false
		}
		// Fast path: nothing to verify and the depth cannot reach zero.
		if cands == 0 && simd.Popcount(closes) < rel {
			d := simd.Popcount(opens) - simd.Popcount(closes)
			rel += d
			delta += d
			if !s.Advance() {
				return TailEvent{Kind: TailEnd}
			}
			continue
		}
		// Walk the block's events in order.
		for m := opens | closes | cands; m != 0; m = simd.ClearLowest(m) {
			bit := simd.TrailingZeros(m)
			p := s.BlockStart() + bit
			one := uint64(1) << uint(bit)
			switch {
			case opens&one != 0:
				rel++
				delta++
			case closes&one != 0:
				rel--
				delta--
				if rel == 0 {
					return TailEvent{Kind: TailClose, Pos: p}
				}
			default:
				if vs, ok := verifyKey(in, p, label); ok {
					return TailEvent{Kind: TailKey, KeyAt: p, ValueAt: vs, DepthDelta: delta}
				}
				// Not the sought key: the string's contents (including any
				// brackets and quotes) are already invisible through the
				// in-string mask, so just keep walking.
			}
		}
		if !s.Advance() {
			return TailEvent{Kind: TailEnd}
		}
	}
}
