package classifier

import (
	"math/rand"
	"testing"

	"rsonpath/internal/simd"
)

// assertRawCorrect verifies a classifier against its function on all 256
// byte values and on random blocks.
func assertRawCorrect(t *testing.T, c *RawClassifier, f ByteClass) {
	t.Helper()
	if !verify(c, f) {
		t.Fatalf("strategy %v misclassifies some byte", c.Strategy())
	}
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		var b simd.Block
		for i := range b {
			b[i] = byte(r.Intn(256))
		}
		mask := c.Classify(&b)
		for i := range b {
			if (mask>>uint(i)&1 == 1) != f(b[i]) {
				t.Fatalf("strategy %v: byte %#x at %d misclassified", c.Strategy(), b[i], i)
			}
		}
	}
}

func in(set string) ByteClass {
	return func(b byte) bool {
		for i := 0; i < len(set); i++ {
			if set[i] == b {
				return true
			}
		}
		return false
	}
}

func TestRawStructuralSetIsNonOverlapping(t *testing.T) {
	// The paper's flagship example (§4.1): the six JSON structural
	// characters factor into non-overlapping groups.
	f := in("{}[]:,")
	c := BuildRaw(f)
	if c.Strategy() != StrategyNonOverlapping {
		t.Fatalf("structural set chose %v, want non-overlapping", c.Strategy())
	}
	assertRawCorrect(t, c, f)
}

func TestRawStructuralMatchesPaperTables(t *testing.T) {
	// The hand-written tables in structural.go and the generic builder must
	// classify identically (the concrete group ids may differ).
	f := in("{}[]:,")
	c := BuildRaw(f)
	r := rand.New(rand.NewSource(19))
	for trial := 0; trial < 200; trial++ {
		var b simd.Block
		for i := range b {
			b[i] = byte(r.Intn(256))
		}
		if c.Classify(&b) != simd.NibbleEq(&b, &structuralUtab, &structuralLtab) {
			t.Fatal("generic builder disagrees with the paper's tables")
		}
	}
}

func TestRawOverlappingGroupsExample(t *testing.T) {
	// The paper's overlapping example: {0xa1,0xa2,0xb1,0xb2,0xc2}. Groups
	// ⟨{a,b},{1,2}⟩ and ⟨{c},{2}⟩ overlap, so non-overlapping is out; two
	// groups fit the few-groups method.
	f := func(b byte) bool {
		switch b {
		case 0xa1, 0xa2, 0xb1, 0xb2, 0xc2:
			return true
		}
		return false
	}
	c := BuildRaw(f)
	if c.Strategy() != StrategyFewGroups {
		t.Fatalf("overlapping example chose %v, want few-groups", c.Strategy())
	}
	assertRawCorrect(t, c, f)
}

func TestRawGeneralCase(t *testing.T) {
	// Force more than 8 distinct acceptance sets: upper nibble u accepts
	// lower nibbles {0..u} for u in 0..11, giving 12 groups.
	f := func(b byte) bool {
		u, l := b>>4, b&0x0F
		return u < 12 && l <= u
	}
	c := BuildRaw(f)
	if c.Strategy() == StrategyNaive || c.Strategy() == StrategyNonOverlapping {
		t.Fatalf("12-group function chose %v", c.Strategy())
	}
	assertRawCorrect(t, c, f)
}

func TestRawEmptyAndFull(t *testing.T) {
	none := BuildRaw(func(byte) bool { return false })
	assertRawCorrect(t, none, func(byte) bool { return false })
	all := BuildRaw(func(byte) bool { return true })
	assertRawCorrect(t, all, func(byte) bool { return true })
}

func TestRawSingleValue(t *testing.T) {
	f := in(":")
	c := BuildRaw(f)
	assertRawCorrect(t, c, f)
}

func TestRawRandomFunctions(t *testing.T) {
	// Random classification functions of varying densities: whatever
	// strategy is selected must be exactly correct.
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		accept := make(map[byte]bool)
		n := 1 + r.Intn(40)
		for i := 0; i < n; i++ {
			accept[byte(r.Intn(256))] = true
		}
		f := func(b byte) bool { return accept[b] }
		assertRawCorrect(t, BuildRaw(f), f)
	}
}

func TestRawNaiveAlwaysAvailable(t *testing.T) {
	f := in("abcdef")
	c := BuildNaive(f)
	if c.Strategy() != StrategyNaive {
		t.Fatalf("BuildNaive returned %v", c.Strategy())
	}
	if len(c.Values()) != 6 {
		t.Fatalf("values %v", c.Values())
	}
	assertRawCorrect(t, c, f)
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{
		StrategyNaive:          "naive",
		StrategyNonOverlapping: "non-overlapping",
		StrategyFewGroups:      "few-groups",
		StrategyGeneral:        "general",
		Strategy(42):           "Strategy(42)",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("Strategy(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}
