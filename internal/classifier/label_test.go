package classifier

import (
	"math/rand"
	"rsonpath/internal/input"
	"strings"
	"testing"
)

// refSeekLabel is the scalar oracle for SeekLabel.
func refSeekLabel(data []byte, from int, label []byte) (keyAt, valueAt int, ok bool) {
	quotes, inString := refQuoteScan(data)
	for q := from; q < len(data); q++ {
		if !quotes[q] || !inString[q] { // must be an opening quote
			continue
		}
		if v, match := verifyKey(input.NewBytes(data), q, label); match {
			return q, v, true
		}
	}
	return 0, 0, false
}

func assertSeek(t *testing.T, data string, from int, label string) {
	t.Helper()
	// SeekLabel requires from to be outside strings and unescaped.
	_, inString := refQuoteScan([]byte(data))
	for from < len(data) && (inString[from] || (from > 0 && data[from-1] == '\\')) {
		from++
	}
	s := NewStream([]byte(data))
	gotK, gotV, gotOK := SeekLabel(s, from, []byte(label))
	wantK, wantV, wantOK := refSeekLabel([]byte(data), from, []byte(label))
	if gotOK != wantOK || (gotOK && (gotK != wantK || gotV != wantV)) {
		t.Fatalf("SeekLabel(%q, %d, %q) = (%d,%d,%v), want (%d,%d,%v)",
			data, from, label, gotK, gotV, gotOK, wantK, wantV, wantOK)
	}
	if gotOK && (s.BlockStart() > gotV || gotV >= s.BlockStart()+64) {
		t.Fatalf("stream block %d does not contain value %d", s.BlockStart(), gotV)
	}
}

func TestSeekLabelBasic(t *testing.T) {
	assertSeek(t, `{"a": 1, "b": 2}`, 0, "b")
	assertSeek(t, `{"a": 1, "b": 2}`, 0, "a")
	assertSeek(t, `{"a": 1, "b": 2}`, 2, "a") // past the first occurrence
	assertSeek(t, `{"a": 1}`, 0, "missing")
}

func TestSeekLabelRejectsStringValues(t *testing.T) {
	// "b" occurs as a string value and inside a string before the real key.
	assertSeek(t, `{"x": "b", "note": "say \"b\": here", "b": 42}`, 0, "b")
	// Only in-string occurrences: must not match.
	assertSeek(t, `{"x": "b", "y": ["b", "b"]}`, 0, "b")
}

func TestSeekLabelRejectsPrefixKeys(t *testing.T) {
	assertSeek(t, `{"bb": 1, "b": 2}`, 0, "b")
	assertSeek(t, `{"b2": 1}`, 0, "b")
}

func TestSeekLabelWhitespaceBeforeColon(t *testing.T) {
	assertSeek(t, "{\"key\"  \n\t : 7}", 0, "key")
}

func TestSeekLabelAcrossBlocks(t *testing.T) {
	pad := strings.Repeat(" ", 60)
	assertSeek(t, `{`+pad+`"boundary": 1}`, 0, "boundary")
	// Key straddling the 64-byte edge.
	assertSeek(t, `{"filler": "`+strings.Repeat("x", 45)+`", "edgekey": 3}`, 0, "edgekey")
	// Colon and value in a later block.
	assertSeek(t, `{"k"`+strings.Repeat(" ", 100)+`:`+strings.Repeat(" ", 100)+`5}`, 0, "k")
}

func TestSeekLabelEscapedQuoteInKey(t *testing.T) {
	// Document key is x\" (escaped quote); searching for `x\` must not
	// match, since the "closing" quote is escaped.
	assertSeek(t, `{"x\"": 1}`, 0, `x\`)
	// Searching for the verbatim escaped spelling matches.
	assertSeek(t, `{"x\"y": 1}`, 0, `x\"y`)
}

func TestSeekLabelAtEndOfInput(t *testing.T) {
	assertSeek(t, `{"k"`, 0, "k")  // no colon, no value
	assertSeek(t, `{"k":`, 0, "k") // colon but no value
	assertSeek(t, `"k"`, 0, "k")   // bare string, no colon
}

func TestSeekLabelRandom(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	alphabet := []byte(`{}[]"\,: ab1`)
	labels := []string{"a", "ab", "b1", `a\`}
	for trial := 0; trial < 600; trial++ {
		n := 1 + r.Intn(220)
		data := make([]byte, n)
		for i := range data {
			data[i] = alphabet[r.Intn(len(alphabet))]
		}
		assertSeek(t, string(data), r.Intn(n), labels[r.Intn(len(labels))])
	}
}

func TestSeekLabelRepeatedFinds(t *testing.T) {
	// Walk all occurrences the way the engine's head-skip loop does.
	doc := `{"a":1,"x":{"a":2},"a":3}`
	data := []byte(doc)
	s := NewStream(data)
	var keys []int
	from := 0
	for {
		k, v, ok := SeekLabel(s, from, []byte("a"))
		if !ok {
			break
		}
		keys = append(keys, k)
		from = v + 1
	}
	want := []int{1, 12, 19}
	if len(keys) != len(want) {
		t.Fatalf("found keys at %v, want %v", keys, want)
	}
	for i := range keys {
		if keys[i] != want[i] {
			t.Fatalf("found keys at %v, want %v", keys, want)
		}
	}
}
