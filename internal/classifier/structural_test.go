package classifier

import (
	"math/rand"
	"strings"
	"testing"
)

// collect drains the classifier, returning positions and characters.
func collect(c *Structural) (pos []int, chars []byte) {
	for {
		p, ch, ok := c.Next()
		if !ok {
			return pos, chars
		}
		pos = append(pos, p)
		chars = append(chars, ch)
	}
}

// refStructural returns positions of enabled structural characters outside
// strings, per the scalar oracle.
func refStructural(data []byte, commas, colons bool) (pos []int, chars []byte) {
	_, inString := refQuoteScan(data)
	for i, b := range data {
		if inString[i] {
			continue
		}
		switch b {
		case '{', '}', '[', ']':
		case ',':
			if !commas {
				continue
			}
		case ':':
			if !colons {
				continue
			}
		default:
			continue
		}
		pos = append(pos, i)
		chars = append(chars, b)
	}
	return pos, chars
}

func assertStructural(t *testing.T, data string, commas, colons bool) {
	t.Helper()
	c := NewStructural(NewStream([]byte(data)), 0)
	c.SetCommas(commas)
	c.SetColons(colons)
	gotPos, gotCh := collect(c)
	wantPos, wantCh := refStructural([]byte(data), commas, colons)
	if len(gotPos) != len(wantPos) {
		t.Fatalf("%q commas=%v colons=%v: got %d events %v, want %d %v",
			data, commas, colons, len(gotPos), gotPos, len(wantPos), wantPos)
	}
	for i := range gotPos {
		if gotPos[i] != wantPos[i] || gotCh[i] != wantCh[i] {
			t.Fatalf("%q event %d: got (%d,%q) want (%d,%q)",
				data, i, gotPos[i], gotCh[i], wantPos[i], wantCh[i])
		}
	}
}

func TestStructuralDefaultSkipsCommasColons(t *testing.T) {
	assertStructural(t, `{"a": 1, "b": [2, 3]}`, false, false)
}

func TestStructuralAllEnabled(t *testing.T) {
	assertStructural(t, `{"a": 1, "b": [2, 3]}`, true, true)
	assertStructural(t, `{"a": 1, "b": [2, 3]}`, true, false)
	assertStructural(t, `{"a": 1, "b": [2, 3]}`, false, true)
}

func TestStructuralIgnoresStrings(t *testing.T) {
	assertStructural(t, `{"tricky": "br{ck[t]s, and: commas"}`, true, true)
	assertStructural(t, `{"esc\"aped": "{\"a\":[1,2]}"}`, true, true)
}

func TestStructuralRandomDocs(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	alphabet := []byte(`{}[]:," \ab123`)
	for trial := 0; trial < 400; trial++ {
		n := r.Intn(200)
		data := make([]byte, n)
		for i := range data {
			data[i] = alphabet[r.Intn(len(alphabet))]
		}
		assertStructural(t, string(data), r.Intn(2) == 0, r.Intn(2) == 0)
	}
}

func TestStructuralMidStreamToggle(t *testing.T) {
	// Enable commas only after consuming the first few events: commas
	// before the toggle point must not appear; commas after must.
	data := `[1,2,[3,4],5,6]`
	c := NewStructural(NewStream([]byte(data)), 0)
	p, ch, ok := c.Next() // '[' at 0
	if !ok || ch != '[' || p != 0 {
		t.Fatalf("first event (%d,%q,%v)", p, ch, ok)
	}
	c.SetCommas(true)
	var got []int
	for {
		p, ch, ok := c.Next()
		if !ok {
			break
		}
		if ch == ',' {
			got = append(got, p)
		}
	}
	want := []int{2, 4, 7, 10, 12} // all commas outside [0]
	if len(got) != len(want) {
		t.Fatalf("comma positions %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("comma positions %v, want %v", got, want)
		}
	}
}

func TestStructuralToggleHidesConsumedRegion(t *testing.T) {
	// After consuming past position 6, enabling commas must not resurrect
	// the comma at position 2.
	data := `[1,{"x":[0]},3]`
	c := NewStructural(NewStream([]byte(data)), 0)
	for i := 0; i < 3; i++ { // '[' '{' '['
		if _, _, ok := c.Next(); !ok {
			t.Fatal("unexpected end")
		}
	}
	c.SetCommas(true)
	gotPos, _ := collect(c)
	for _, p := range gotPos {
		if p <= 8 {
			t.Fatalf("event at consumed position %d returned after toggle", p)
		}
	}
}

func TestStructuralPeekDoesNotConsume(t *testing.T) {
	data := `{"a":[1]}`
	c := NewStructural(NewStream([]byte(data)), 0)
	p1, ch1, _ := c.Peek()
	p2, ch2, _ := c.Peek()
	if p1 != p2 || ch1 != ch2 {
		t.Fatal("repeated Peek disagrees")
	}
	p3, ch3, _ := c.Next()
	if p3 != p1 || ch3 != ch1 {
		t.Fatal("Next disagrees with Peek")
	}
}

func TestStructuralPeekAcrossBlocks(t *testing.T) {
	data := `[` + strings.Repeat(" ", 200) + `]`
	c := NewStructural(NewStream([]byte(data)), 0)
	c.Next() // '['
	p, ch, ok := c.Peek()
	if !ok || ch != ']' || p != 201 {
		t.Fatalf("peek across blocks: (%d,%q,%v)", p, ch, ok)
	}
	p, ch, ok = c.Next()
	if !ok || ch != ']' || p != 201 {
		t.Fatalf("next after far peek: (%d,%q,%v)", p, ch, ok)
	}
}

func TestStructuralResetFrom(t *testing.T) {
	data := `{"a":{"b":1}}`
	s := NewStream([]byte(data))
	c := NewStructural(s, 5) // start at the inner '{'
	p, ch, ok := c.Next()
	if !ok || ch != '{' || p != 5 {
		t.Fatalf("reset start: (%d,%q,%v)", p, ch, ok)
	}
}

func TestStructuralAtBlockEdges(t *testing.T) {
	// Structural characters exactly at positions 63, 64, 127, 128.
	var b strings.Builder
	b.WriteString(strings.Repeat(" ", 63))
	b.WriteString("{")                     // 63
	b.WriteString("[")                     // 64
	b.WriteString(strings.Repeat(" ", 62)) // 65..126
	b.WriteString("]")                     // 127
	b.WriteString("}")                     // 128
	assertStructural(t, b.String(), true, true)
}
