package classifier

import (
	"fmt"
	"sort"

	"rsonpath/internal/simd"
)

// This file implements the paper's general method for raw classification
// (§4.1, Problem 1 with k = 2): given an arbitrary binary classification
// function over bytes, build lookup tables that classify a 64-byte block in
// a handful of word-parallel operations. Three strategies of increasing
// generality are constructed, mirroring the paper's case analysis:
//
//	non-overlapping groups  ->  two lookups + compare      (NibbleEq)
//	at most 8 groups        ->  two lookups + OR + compare (NibbleOr)
//	at most 16 groups       ->  the 8-group method twice   (NibbleOr2)
//
// plus the naive method (one CmpEq8 per accepted value, OR-ed together),
// which is both the fallback and the baseline for the Table 2 comparison.
//
// BuildRaw verifies each candidate strategy against the classification
// function on all 256 bytes before accepting it, and falls through to the
// next strategy otherwise. This guards the few-groups encodings against the
// corner case where an upper nibble outside every group combines with a
// lower nibble present in all groups.

// Strategy identifies which §4.1 construction a RawClassifier uses.
type Strategy int

const (
	// StrategyNaive ORs one comparison per accepted byte value.
	StrategyNaive Strategy = iota
	// StrategyNonOverlapping uses utab[u] == ltab[l] with unique group ids.
	StrategyNonOverlapping
	// StrategyFewGroups uses utab[u] | ltab[l] == 0xFF with one bit per group.
	StrategyFewGroups
	// StrategyGeneral applies StrategyFewGroups to two halves of the groups.
	StrategyGeneral
)

// String returns the strategy name as used in benchmark output.
func (s Strategy) String() string {
	switch s {
	case StrategyNaive:
		return "naive"
	case StrategyNonOverlapping:
		return "non-overlapping"
	case StrategyFewGroups:
		return "few-groups"
	case StrategyGeneral:
		return "general"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ByteClass is a binary classification function over bytes.
type ByteClass func(b byte) bool

// group is an acceptance group ⟨U, L⟩ (§4.1, Definition 2): the set of
// upper nibbles U sharing the acceptance set L of lower nibbles.
type group struct {
	uppers []int
	lowers []int
}

// RawClassifier classifies blocks according to a fixed ByteClass using the
// cheapest applicable §4.1 strategy.
type RawClassifier struct {
	strategy Strategy
	utab     simd.NibbleTable
	ltab     simd.NibbleTable
	utab2    simd.NibbleTable
	ltab2    simd.NibbleTable
	values   []byte // accepted bytes, for the naive strategy
}

// Strategy reports which construction was selected.
func (c *RawClassifier) Strategy() Strategy { return c.strategy }

// Values returns the accepted byte values.
func (c *RawClassifier) Values() []byte { return append([]byte(nil), c.values...) }

// Classify returns the bitmask of positions in b whose bytes are accepted.
func (c *RawClassifier) Classify(b *simd.Block) uint64 {
	switch c.strategy {
	case StrategyNonOverlapping:
		return simd.NibbleEq(b, &c.utab, &c.ltab)
	case StrategyFewGroups:
		return simd.NibbleOr(b, &c.utab, &c.ltab)
	case StrategyGeneral:
		return simd.NibbleOr2(b, &c.utab, &c.ltab, &c.utab2, &c.ltab2)
	default:
		var mask uint64
		for _, v := range c.values {
			mask |= simd.CmpEq8(b, v)
		}
		return mask
	}
}

// BuildRaw constructs a classifier for f, choosing the cheapest verified
// strategy. It never fails: the naive strategy is always correct.
func BuildRaw(f ByteClass) *RawClassifier {
	values := acceptedValues(f)
	groups := acceptanceGroups(f)

	if len(groups) > 0 && !overlapping(groups) {
		c := &RawClassifier{strategy: StrategyNonOverlapping, values: values}
		c.utab, c.ltab = nonOverlappingTables(groups)
		if verify(c, f) {
			return c
		}
	}
	if n := len(groups); n > 0 && n <= 8 {
		c := &RawClassifier{strategy: StrategyFewGroups, values: values}
		c.utab, c.ltab = fewGroupsTables(groups, false)
		if verify(c, f) {
			return c
		}
	}
	if n := len(groups); n > 0 && n <= 7 {
		// Reserve bit 7 so upper nibbles outside every group can never
		// complete the OR to 0xFF, whatever the lower nibble contributes.
		c := &RawClassifier{strategy: StrategyFewGroups, values: values}
		c.utab, c.ltab = fewGroupsTables(groups, true)
		if verify(c, f) {
			return c
		}
	}
	if n := len(groups); n > 7 && n <= 16 {
		for _, reserve := range []bool{false, true} {
			half := 8
			if reserve {
				half = 7
			}
			if n > 2*half {
				continue
			}
			split := n / 2
			if split > half {
				split = half
			}
			c := &RawClassifier{strategy: StrategyGeneral, values: values}
			c.utab, c.ltab = fewGroupsTables(groups[:split], reserve)
			c.utab2, c.ltab2 = fewGroupsTables(groups[split:], reserve)
			if verify(c, f) {
				return c
			}
		}
	}
	return &RawClassifier{strategy: StrategyNaive, values: values}
}

// BuildNaive constructs the naive classifier regardless of structure, for
// the Table 2 comparison.
func BuildNaive(f ByteClass) *RawClassifier {
	return &RawClassifier{strategy: StrategyNaive, values: acceptedValues(f)}
}

func acceptedValues(f ByteClass) []byte {
	var values []byte
	for v := 0; v < 256; v++ {
		if f(byte(v)) {
			values = append(values, byte(v))
		}
	}
	return values
}

// acceptanceGroups computes G (§4.1, Definition 2), omitting groups with
// empty acceptance sets (their bytes are all rejected).
func acceptanceGroups(f ByteClass) []group {
	byKey := make(map[uint16][]int)
	lows := make(map[int]uint16)
	for u := 0; u < 16; u++ {
		var key uint16
		for l := 0; l < 16; l++ {
			if f(byte(u<<4 | l)) {
				key |= 1 << uint(l)
			}
		}
		lows[u] = key
		if key != 0 {
			byKey[key] = append(byKey[key], u)
		}
	}
	keys := make([]uint16, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	groups := make([]group, 0, len(keys))
	for _, k := range keys {
		g := group{uppers: byKey[k]}
		for l := 0; l < 16; l++ {
			if k&(1<<uint(l)) != 0 {
				g.lowers = append(g.lowers, l)
			}
		}
		groups = append(groups, g)
	}
	return groups
}

// overlapping reports whether any two groups share a lower nibble
// (§4.1, Definition 3).
func overlapping(groups []group) bool {
	var seen uint16
	for _, g := range groups {
		var key uint16
		for _, l := range g.lowers {
			key |= 1 << uint(l)
		}
		if seen&key != 0 {
			return true
		}
		seen |= key
	}
	return false
}

// nonOverlappingTables builds the utab/ltab pair for the non-overlapping
// case: group i+1 as the shared id, 0xFE/0xFF as never-equal sentinels.
func nonOverlappingTables(groups []group) (utab, ltab simd.NibbleTable) {
	for i := range utab {
		utab[i], ltab[i] = 0xFE, 0xFF
	}
	for i, g := range groups {
		id := byte(i + 1)
		for _, u := range g.uppers {
			utab[u] = id
		}
		for _, l := range g.lowers {
			ltab[l] = id
		}
	}
	return utab, ltab
}

// fewGroupsTables builds the utab/ltab pair for the ≤8-groups case: utab
// clears the group's bit from all-ones, ltab accumulates the bits of every
// group whose acceptance set holds the nibble. With reserve set, bit 7 is
// kept out of every group and cleared in the entries of upper nibbles that
// belong to no group, so those bytes can never reach 0xFF (this caps the
// group count at 7 but closes the unmapped-upper corner case).
func fewGroupsTables(groups []group, reserve bool) (utab, ltab simd.NibbleTable) {
	if reserve {
		for i := range utab {
			utab[i] = 0x7F
		}
	}
	for i, g := range groups {
		bit := byte(1) << uint(i)
		for _, u := range g.uppers {
			utab[u] = 0xFF &^ bit
		}
		for _, l := range g.lowers {
			ltab[l] |= bit
		}
	}
	return utab, ltab
}

// verify checks the classifier against f on every byte value.
func verify(c *RawClassifier, f ByteClass) bool {
	var b simd.Block
	for base := 0; base < 256; base += simd.BlockSize {
		for i := 0; i < simd.BlockSize; i++ {
			b[i] = byte(base + i)
		}
		mask := c.Classify(&b)
		for i := 0; i < simd.BlockSize; i++ {
			if mask>>uint(i)&1 == 1 != f(byte(base+i)) {
				return false
			}
		}
	}
	return true
}
