package classifier

import (
	"math/rand"
	"strings"
	"testing"

	"rsonpath/internal/simd"
)

// refQuoteScan is the scalar oracle: a sequential scan computing, for every
// position, whether the byte is an unescaped quote and whether the position
// is inside a string (opening quote inclusive, closing exclusive).
func refQuoteScan(data []byte) (quotes, inString []bool) {
	quotes = make([]bool, len(data))
	inString = make([]bool, len(data))
	in := false
	escaped := false
	for i, b := range data {
		switch {
		case escaped:
			escaped = false
			inString[i] = in
		case b == '\\':
			escaped = true
			inString[i] = in
		case b == '"':
			quotes[i] = true
			if !in {
				in = true
				inString[i] = true // opening quote is inside
			} else {
				in = false
				inString[i] = false // closing quote is outside
			}
		default:
			inString[i] = in
		}
	}
	return quotes, inString
}

// streamMasks collects the per-position quote/in-string classification of a
// Stream over data.
func streamMasks(data []byte) (quotes, inString []bool) {
	quotes = make([]bool, len(data))
	inString = make([]bool, len(data))
	s := NewStream(data)
	for {
		base := s.BlockStart()
		for i := 0; i < s.blockLen; i++ {
			quotes[base+i] = s.QuoteMask()>>uint(i)&1 == 1
			inString[base+i] = s.InString()>>uint(i)&1 == 1
		}
		if !s.Advance() {
			break
		}
	}
	return quotes, inString
}

func assertQuoteOracle(t *testing.T, data []byte) {
	t.Helper()
	wantQ, wantS := refQuoteScan(data)
	gotQ, gotS := streamMasks(data)
	for i := range data {
		if gotQ[i] != wantQ[i] {
			t.Fatalf("quote mask mismatch at %d in %q: got %v want %v", i, data, gotQ[i], wantQ[i])
		}
		if gotS[i] != wantS[i] {
			t.Fatalf("in-string mask mismatch at %d in %q: got %v want %v", i, data, gotS[i], wantS[i])
		}
	}
}

func TestQuoteClassifierSimple(t *testing.T) {
	cases := []string{
		`{"a": "b"}`,
		`""`,
		`"\""`,
		`"\\"`,
		`"\\\""`,
		`{"a":"{\"b\":2022}"}`, // the paper's §2 escaping example
		`"x\"" `,
		`"x\\" `,
		`[1, 2, "three", {"four": "5"}]`,
		`"unterminated`,
		`no quotes at all`,
		``,
	}
	for _, c := range cases {
		assertQuoteOracle(t, []byte(c))
	}
}

func TestQuoteClassifierBlockBoundaries(t *testing.T) {
	// Strings and escape runs straddling 64-byte boundaries.
	pad := strings.Repeat(" ", 60)
	cases := []string{
		pad + `"long string crossing the boundary"`,
		pad + `"esc\` + `"still inside"`,
		strings.Repeat("\\", 63) + `"`,       // 63 backslashes inside nothing
		`"` + strings.Repeat("\\", 64) + `"`, // even run inside a string
		`"` + strings.Repeat("\\", 127) + `\""`,
		strings.Repeat(" ", 63) + `"` + `boundary-opening quote"`,
	}
	for _, c := range cases {
		assertQuoteOracle(t, []byte(c))
	}
}

func TestQuoteClassifierRandom(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	alphabet := []byte(`"\\ab{}[]:,`)
	for trial := 0; trial < 500; trial++ {
		n := r.Intn(300)
		data := make([]byte, n)
		for i := range data {
			data[i] = alphabet[r.Intn(len(alphabet))]
		}
		assertQuoteOracle(t, data)
	}
}

func TestQuoteClassifierPathologicalEscapes(t *testing.T) {
	// Every backslash-run length from 0 to 130, before a quote, inside a
	// string starting at varying offsets to shift block alignment.
	for offset := 0; offset < 3; offset++ {
		for run := 0; run <= 130; run++ {
			data := strings.Repeat(" ", offset) + `"` + strings.Repeat("\\", run) + `" tail "x"`
			assertQuoteOracle(t, []byte(data))
		}
	}
}

func TestStreamAdvanceBounds(t *testing.T) {
	s := NewStream([]byte(`{}`))
	if s.BlockStart() != 0 || s.blockLen != 2 {
		t.Fatalf("initial block: start=%d len=%d", s.BlockStart(), s.blockLen)
	}
	if s.Advance() {
		t.Fatal("Advance past single block should report false")
	}
	if !s.Exhausted() {
		t.Fatal("stream should be exhausted")
	}
}

func TestStreamEmptyInput(t *testing.T) {
	s := NewStream(nil)
	if !s.Exhausted() {
		t.Fatal("empty stream should be exhausted")
	}
	if s.Advance() {
		t.Fatal("Advance on empty stream should report false")
	}
}

func TestStreamPaddingInvisible(t *testing.T) {
	// A block whose content ends mid-block: padding must classify as
	// outside strings and non-quote.
	s := NewStream([]byte(`"ab"`))
	if got := s.QuoteMask(); got != 0b1001 {
		t.Fatalf("quote mask = %#b, want 1001", got)
	}
	if got := s.InString(); got != 0b0111 {
		t.Fatalf("in-string mask = %#b, want 0111", got)
	}
}

func BenchmarkQuoteClassifier(b *testing.B) {
	data := []byte(strings.Repeat(`{"key": "value with \"escapes\" inside", "n": 12345} `, 2000))
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		s := NewStream(data)
		for s.Advance() {
		}
	}
}

var _ = simd.BlockSize
