package classifier

import (
	"rsonpath/internal/input"
	"rsonpath/internal/simd"
)

// Planes is a whole-document mask index: one 64-bit word per 64-byte block
// and per classifier output, built in a single batched sweep over the bytes
// (BuildPlanes) and then reusable by any number of runs. It is the
// precomputed form of everything a Stream derives block by block — the
// quote classifier's masks plus the structural classifier's per-symbol
// masks — so a plane-backed Stream serves classification by lookup instead
// of recomputation.
//
// Bit i of word j covers byte j*64+i, exactly like the live masks. The
// symbol planes (Opens, Closes, Commas, Colons) already have in-string
// positions masked out; the structural classifier's always-on brace mask is
// Opens|Closes, and the bracket planes double as the depth classifier's
// inputs.
//
// A Planes is immutable after BuildPlanes and safe for concurrent use.
type Planes struct {
	Quote    []uint64 // unescaped double quotes
	InString []uint64 // inside a string (incl. opening, excl. closing quote)
	Opens    []uint64 // '{' and '[' outside strings
	Closes   []uint64 // '}' and ']' outside strings
	Commas   []uint64 // ',' outside strings
	Colons   []uint64 // ':' outside strings

	// Len is the document length in bytes.
	Len int
	// EndInString records whether the quote parity is still open at the end
	// of input — the document ends in the middle of a string.
	EndInString bool
	// EndEscaped records whether the document ends on an unfinished escape
	// (an odd backslash run against the end of input).
	EndEscaped bool
}

// Blocks returns the number of mask words per plane.
func (p *Planes) Blocks() int { return len(p.Quote) }

// BuildPlanes classifies data once with the batched kernels and returns the
// mask planes. The sweep is three passes over cache-resident state: the
// fused raw sweep (simd.BatchRawMasks, hardware-accelerated where the CPU
// allows) touches the document bytes exactly once; a sequential carry
// pass — quote parity and escapes cannot be parallelized across blocks —
// resolves the escape-dependent masks in place; and a vectorized
// simd.AndNot pass then clears in-string positions from the four symbol
// planes.
//
// Plane geometry is kernel-friendly by construction: one backing array,
// 32-byte aligned (simd.AlignedWords), with every plane's capacity rounded
// up to whole vector lanes (simd.RoundWords) so the vector passes can run
// lane-rounded lengths with no scalar tail — the padding words belong to
// the plane's own reserved region and stay zero. The alignment/rounding
// invariants are pinned by TestPlanesAlignment.
func BuildPlanes(data []byte) *Planes {
	n := (len(data) + simd.BlockSize - 1) / simd.BlockSize
	rn := simd.RoundWords(n)
	backing := simd.AlignedWords(6 * rn)
	p := &Planes{Len: len(data)}
	if n == 0 {
		return p
	}
	p.Quote = backing[0*rn : 0*rn+n : 1*rn]
	p.InString = backing[1*rn : 1*rn+n : 2*rn]
	p.Opens = backing[2*rn : 2*rn+n : 3*rn]
	p.Closes = backing[3*rn : 3*rn+n : 4*rn]
	p.Commas = backing[4*rn : 4*rn+n : 5*rn]
	p.Colons = backing[5*rn : 5*rn+n : 6*rn]
	// Raw sweep. The two escape-dependent planes temporarily hold their raw
	// precursors — backslashes in InString, raw quotes in Quote — which the
	// carry pass below consumes and overwrites in place.
	full := simd.BatchRawMasks(data, p.InString, p.Quote, p.Opens, p.Closes, p.Commas, p.Colons)
	if full < n {
		var tail simd.Block
		simd.LoadBlock(&tail, data[full*simd.BlockSize:], input.Pad)
		p.InString[full], p.Quote[full], p.Opens[full], p.Closes[full],
			p.Commas[full], p.Colons[full] = simd.RawMasks(&tail)
	}
	var qs quoteState
	for i := 0; i < n; i++ {
		p.Quote[i], p.InString[i] = qs.classifyMasks(p.InString[i], p.Quote[i])
	}
	p.EndInString = qs.prevInString != 0
	p.EndEscaped = qs.prevEscaped != 0
	// Symbol pre-masking, vectorized: extending every slice to the
	// lane-rounded capacity keeps the kernels free of scalar tails; the
	// padding words are zero on both sides, so they stay zero.
	inStr := p.InString[:rn]
	simd.AndNot(p.Opens[:rn], inStr)
	simd.AndNot(p.Closes[:rn], inStr)
	simd.AndNot(p.Commas[:rn], inStr)
	simd.AndNot(p.Colons[:rn], inStr)
	return p
}

// BracketBalance returns the total number of opening and closing brackets
// (both kinds, outside strings) in the document — the cheap whole-document
// screen Index uses to reject unbalanced input before any run.
func (p *Planes) BracketBalance() (opens, closes int) {
	return simd.PopcountWords(p.Opens), simd.PopcountWords(p.Closes)
}
