package classifier

import (
	"rsonpath/internal/input"
	"rsonpath/internal/simd"
)

// Planes is a whole-document mask index: one 64-bit word per 64-byte block
// and per classifier output, built in a single batched sweep over the bytes
// (BuildPlanes) and then reusable by any number of runs. It is the
// precomputed form of everything a Stream derives block by block — the
// quote classifier's masks plus the structural classifier's per-symbol
// masks — so a plane-backed Stream serves classification by lookup instead
// of recomputation.
//
// Bit i of word j covers byte j*64+i, exactly like the live masks. The
// symbol planes (Opens, Closes, Commas, Colons) already have in-string
// positions masked out; the structural classifier's always-on brace mask is
// Opens|Closes, and the bracket planes double as the depth classifier's
// inputs.
//
// A Planes is immutable after BuildPlanes and safe for concurrent use.
type Planes struct {
	Quote    []uint64 // unescaped double quotes
	InString []uint64 // inside a string (incl. opening, excl. closing quote)
	Opens    []uint64 // '{' and '[' outside strings
	Closes   []uint64 // '}' and ']' outside strings
	Commas   []uint64 // ',' outside strings
	Colons   []uint64 // ':' outside strings

	// Len is the document length in bytes.
	Len int
	// EndInString records whether the quote parity is still open at the end
	// of input — the document ends in the middle of a string.
	EndInString bool
	// EndEscaped records whether the document ends on an unfinished escape
	// (an odd backslash run against the end of input).
	EndEscaped bool
}

// Blocks returns the number of mask words per plane.
func (p *Planes) Blocks() int { return len(p.Quote) }

// BuildPlanes classifies data once with the batched kernels and returns the
// mask planes. The sweep is two passes over cache-resident state: the fused
// raw sweep (simd.BatchRawMasks) touches the document bytes exactly once,
// and a sequential carry pass — quote parity and escapes cannot be
// parallelized across blocks — then resolves the escape-dependent masks in
// place, a handful of word operations per block.
func BuildPlanes(data []byte) *Planes {
	n := (len(data) + simd.BlockSize - 1) / simd.BlockSize
	backing := make([]uint64, 6*n)
	p := &Planes{
		Quote:    backing[0*n : 1*n : 1*n],
		InString: backing[1*n : 2*n : 2*n],
		Opens:    backing[2*n : 3*n : 3*n],
		Closes:   backing[3*n : 4*n : 4*n],
		Commas:   backing[4*n : 5*n : 5*n],
		Colons:   backing[5*n : 6*n : 6*n],
		Len:      len(data),
	}
	if n == 0 {
		return p
	}
	// Raw sweep. The two escape-dependent planes temporarily hold their raw
	// precursors — backslashes in InString, raw quotes in Quote — which the
	// carry pass below consumes and overwrites in place.
	full := simd.BatchRawMasks(data, p.InString, p.Quote, p.Opens, p.Closes, p.Commas, p.Colons)
	if full < n {
		var tail simd.Block
		simd.LoadBlock(&tail, data[full*simd.BlockSize:], input.Pad)
		p.InString[full], p.Quote[full], p.Opens[full], p.Closes[full],
			p.Commas[full], p.Colons[full] = simd.RawMasks(&tail)
	}
	var qs quoteState
	for i := 0; i < n; i++ {
		quotes, inString := qs.classifyMasks(p.InString[i], p.Quote[i])
		p.Quote[i] = quotes
		p.InString[i] = inString
		notStr := ^inString
		p.Opens[i] &= notStr
		p.Closes[i] &= notStr
		p.Commas[i] &= notStr
		p.Colons[i] &= notStr
	}
	p.EndInString = qs.prevInString != 0
	p.EndEscaped = qs.prevEscaped != 0
	return p
}

// BracketBalance returns the total number of opening and closing brackets
// (both kinds, outside strings) in the document — the cheap whole-document
// screen Index uses to reject unbalanced input before any run.
func (p *Planes) BracketBalance() (opens, closes int) {
	for i := range p.Opens {
		opens += simd.Popcount(p.Opens[i])
		closes += simd.Popcount(p.Closes[i])
	}
	return opens, closes
}
