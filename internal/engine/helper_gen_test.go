package engine

import "rsonpath/internal/jsongen"

// jsongenGenerate produces a small benchmark-shaped document for
// integration tests.
func jsongenGenerate(name string) ([]byte, error) {
	return jsongen.Generate(name, 192*1024, 5)
}
