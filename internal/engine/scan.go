package engine

import (
	"rsonpath/internal/input"
)

// Scalar document-scanning helpers shared by the single-query run loop, the
// stackless engine, and the multi-query driver (internal/multiquery). These
// are the rare per-event scalar verifications the paper performs outside the
// SIMD pipeline (§3.4): label backtracking, value-start plausibility, and
// leaf delimitation.
//
// Each helper takes an input.Input. Over an in-memory document it runs the
// original slice scan (input.Contiguous); over a window-bounded input it
// scans in block-sized chunks, forward without limit and backward within
// the input's retained look-behind (a label further back than the window
// retains surfaces as a window-violation panic, converted to an error at
// the Run boundary).

// PlausibleValueStart reports whether the byte at offset i can begin a JSON
// value; it guards emissions against truncated input and trailing commas.
func PlausibleValueStart(in input.Input, i int) bool {
	b, ok := in.ByteAt(i)
	if !ok {
		return false
	}
	switch b {
	case ',', ':', ']', '}':
		return false
	}
	return true
}

// FirstNonWS returns the first offset at or after i with a non-whitespace
// byte, or the document length.
func FirstNonWS(in input.Input, i int) int {
	if data := input.Contiguous(in); data != nil {
		for i < len(data) {
			switch data[i] {
			case ' ', '\t', '\n', '\r':
				i++
			default:
				return i
			}
		}
		return i
	}
	for {
		chunk := in.Bytes(i, i+input.BlockSize)
		if len(chunk) == 0 {
			return i
		}
		for j, b := range chunk {
			if !isWS(b) {
				return i + j
			}
		}
		i += len(chunk)
	}
}

// LabelBefore backtracks from the position of an opening character (or of
// the byte just past a label's colon) to the label it belongs to (§3.4's
// get_label()). It returns hasLabel=false for array entries (artificial
// label) and ok=false when the document is malformed. The returned slice
// aliases the input's storage and holds the raw key bytes, escapes
// included; it is valid only until the next access to the input.
func LabelBefore(in input.Input, pos int) (label []byte, hasLabel, ok bool) {
	if data := input.Contiguous(in); data != nil {
		return labelBeforeSlice(data, pos)
	}
	b := backScan{in: in, base: pos, hi: pos}
	i := pos - 1
	for i >= 0 && isWS(b.at(i)) {
		i--
	}
	if i < 0 {
		return nil, false, true // document root
	}
	switch b.at(i) {
	case ',', '[':
		return nil, false, true // array entry
	case ':':
		i--
	default:
		return nil, false, false
	}
	for i >= 0 && isWS(b.at(i)) {
		i--
	}
	if i < 0 || b.at(i) != '"' {
		return nil, false, false
	}
	closing := i
	// Find the key's opening quote, skipping quotes that are escaped.
	for {
		i--
		for i >= 0 && b.at(i) != '"' {
			i--
		}
		if i < 0 {
			return nil, false, false
		}
		// Count the backslashes immediately before the candidate quote.
		bs := 0
		for j := i - 1; j >= 0 && b.at(j) == '\\'; j-- {
			bs++
		}
		if bs%2 == 0 {
			return b.slice(i+1, closing), true, true
		}
	}
}

// labelBeforeSlice is LabelBefore's original in-memory scan.
func labelBeforeSlice(data []byte, pos int) (label []byte, hasLabel, ok bool) {
	i := pos - 1
	for i >= 0 && isWS(data[i]) {
		i--
	}
	if i < 0 {
		return nil, false, true // document root
	}
	switch data[i] {
	case ',', '[':
		return nil, false, true // array entry
	case ':':
		i--
	default:
		return nil, false, false
	}
	for i >= 0 && isWS(data[i]) {
		i--
	}
	if i < 0 || data[i] != '"' {
		return nil, false, false
	}
	closing := i
	for {
		i--
		for i >= 0 && data[i] != '"' {
			i--
		}
		if i < 0 {
			return nil, false, false
		}
		bs := 0
		for j := i - 1; j >= 0 && data[j] == '\\'; j-- {
			bs++
		}
		if bs%2 == 0 {
			return data[i+1 : closing], true, true
		}
	}
}

// backScan serves backward byte access over a window-bounded input: a
// cached slice covering [base, hi), grown downward on demand. Growing past
// the input's retained look-behind is a window violation.
type backScan struct {
	in   input.Input
	buf  []byte
	base int
	hi   int
}

// at returns the byte at absolute offset i (0 ≤ i < hi).
func (b *backScan) at(i int) byte {
	if i < b.base {
		newBase := i - input.BlockSize
		if r := b.in.Retained(); newBase < r {
			newBase = r
		}
		if newBase > i {
			input.Exceeded("label-backscan", i)
		}
		b.buf = b.in.Bytes(newBase, b.hi)
		b.base = newBase
	}
	return b.buf[i-b.base]
}

// slice returns the bytes [lo, hi) of the cached span.
func (b *backScan) slice(lo, hi int) []byte {
	return b.buf[lo-b.base : hi-b.base]
}

func isWS(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r'
}

// LastNonWS scans backward from the end of the document and returns the
// offset of the last non-whitespace byte. ok=false when none exists within
// the input's retained look-behind (an all-whitespace tail wider than the
// window cannot be verified). Only valid once the input's end has been
// observed (Len() ≥ 0).
func LastNonWS(in input.Input) (pos int, ok bool) {
	i := in.Len()
	floor := in.Retained()
	for i > floor {
		lo := i - input.BlockSize
		if lo < floor {
			lo = floor
		}
		chunk := in.Bytes(lo, i)
		for j := len(chunk) - 1; j >= 0; j-- {
			if !isWS(chunk[j]) {
				return lo + j, true
			}
		}
		i = lo
	}
	return 0, false
}

// LeafEnd returns the offset just past the atomic value starting at pos.
func LeafEnd(in input.Input, pos int) int {
	if data := input.Contiguous(in); data != nil {
		return leafEndSlice(data, pos)
	}
	first, ok := in.ByteAt(pos)
	if !ok {
		return pos
	}
	i := pos + 1
	if first == '"' {
		escaped := false
		for {
			chunk := in.Bytes(i, i+input.BlockSize)
			if len(chunk) == 0 {
				return i
			}
			for j, c := range chunk {
				switch {
				case escaped:
					escaped = false
				case c == '\\':
					escaped = true
				case c == '"':
					return i + j + 1
				}
			}
			i += len(chunk)
		}
	}
	i = pos
	for {
		chunk := in.Bytes(i, i+input.BlockSize)
		if len(chunk) == 0 {
			return i
		}
		for j, c := range chunk {
			switch c {
			case ',', '}', ']', ' ', '\t', '\n', '\r':
				return i + j
			}
		}
		i += len(chunk)
	}
}

// leafEndSlice is LeafEnd's original in-memory scan.
func leafEndSlice(data []byte, pos int) int {
	if data[pos] == '"' {
		i := pos + 1
		for i < len(data) {
			switch data[i] {
			case '"':
				return i + 1
			case '\\':
				i += 2
			default:
				i++
			}
		}
		return i
	}
	i := pos
	for i < len(data) {
		switch data[i] {
		case ',', '}', ']', ' ', '\t', '\n', '\r':
			return i
		}
		i++
	}
	return i
}
