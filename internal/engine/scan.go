package engine

// Scalar document-scanning helpers shared by the single-query run loop, the
// stackless engine, and the multi-query driver (internal/multiquery). These
// are the rare per-event scalar verifications the paper performs outside the
// SIMD pipeline (§3.4): label backtracking, value-start plausibility, and
// leaf delimitation.

// PlausibleValueStart reports whether data[i] can begin a JSON value; it
// guards emissions against truncated input and trailing commas.
func PlausibleValueStart(data []byte, i int) bool {
	if i >= len(data) {
		return false
	}
	switch data[i] {
	case ',', ':', ']', '}':
		return false
	}
	return true
}

// FirstNonWS returns the first index at or after i with a non-whitespace
// byte, or len(data).
func FirstNonWS(data []byte, i int) int {
	for i < len(data) {
		switch data[i] {
		case ' ', '\t', '\n', '\r':
			i++
		default:
			return i
		}
	}
	return i
}

// LabelBefore backtracks from the position of an opening character (or of
// the byte just past a label's colon) to the label it belongs to (§3.4's
// get_label()). It returns hasLabel=false for array entries (artificial
// label) and ok=false when the document is malformed. The returned slice
// aliases data and holds the raw key bytes, escapes included.
func LabelBefore(data []byte, pos int) (label []byte, hasLabel, ok bool) {
	i := pos - 1
	for i >= 0 && isWS(data[i]) {
		i--
	}
	if i < 0 {
		return nil, false, true // document root
	}
	switch data[i] {
	case ',', '[':
		return nil, false, true // array entry
	case ':':
		i--
	default:
		return nil, false, false
	}
	for i >= 0 && isWS(data[i]) {
		i--
	}
	if i < 0 || data[i] != '"' {
		return nil, false, false
	}
	closing := i
	// Find the key's opening quote, skipping quotes that are escaped.
	for {
		i--
		for i >= 0 && data[i] != '"' {
			i--
		}
		if i < 0 {
			return nil, false, false
		}
		// Count the backslashes immediately before the candidate quote.
		bs := 0
		for j := i - 1; j >= 0 && data[j] == '\\'; j-- {
			bs++
		}
		if bs%2 == 0 {
			return data[i+1 : closing], true, true
		}
	}
}

func isWS(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r'
}

// LeafEnd returns the offset just past the atomic value starting at pos.
func LeafEnd(data []byte, pos int) int {
	if data[pos] == '"' {
		i := pos + 1
		for i < len(data) {
			switch data[i] {
			case '"':
				return i + 1
			case '\\':
				i += 2
			default:
				i++
			}
		}
		return i
	}
	i := pos
	for i < len(data) {
		switch data[i] {
		case ',', '}', ']', ' ', '\t', '\n', '\r':
			return i
		}
		i++
	}
	return i
}
