package engine

import (
	"math/rand"
	"strings"
	"testing"

	"rsonpath/internal/dom"
	"rsonpath/internal/jsonpath"
	"rsonpath/internal/surfer"
)

// TestBoundedExhaustiveDifferential enumerates every document over a tiny
// JSON grammar up to a size bound and checks every query up to three
// selectors against the oracle, under the default and the fully-disabled
// option sets. Bounded-exhaustive testing catches corner cases random
// generation misses (empty containers in every position, single-child
// chains, leaves at every boundary).
func TestBoundedExhaustiveDifferential(t *testing.T) {
	var docs []string
	// Grammar: v ::= 1 | {} | [] | {"a": v} | {"b": v} | {"a": v, "b": v} | [v] | [v, v]
	var build func(depth int) []string
	build = func(depth int) []string {
		out := []string{`1`, `{}`, `[]`}
		if depth == 0 {
			return out
		}
		subs := build(depth - 1)
		for _, s := range subs {
			out = append(out, `{"a":`+s+`}`, `{"b":`+s+`}`, `[`+s+`]`)
		}
		// A couple of two-child combinations per level to bound the blowup.
		for i, s1 := range subs {
			if i >= 3 {
				break
			}
			for j, s2 := range subs {
				if j >= 3 {
					break
				}
				out = append(out, `{"a":`+s1+`,"b":`+s2+`}`, `[`+s1+`,`+s2+`]`)
			}
		}
		return out
	}
	docs = build(2)

	var queries []string
	atoms := []string{".a", ".b", ".*", "..a", "..b", "..*", "[0]", "[1]"}
	for _, a := range atoms {
		queries = append(queries, "$"+a)
		for _, b := range atoms {
			queries = append(queries, "$"+a+b)
		}
	}
	for _, q3 := range []string{"$..a.b..a", "$.a..b.*", "$..*.a", "$.*.*.*", "$..a[0]", "$[0]..b"} {
		queries = append(queries, q3)
	}

	optionSets := []Options{
		{},
		{EnableTailSkip: true},
		{DisableHeadSkip: true, DisableSkipChildren: true, DisableSkipSiblings: true, DisableSkipLeaves: true},
	}

	engines := map[string][]*Engine{}
	for _, query := range queries {
		for _, opts := range optionSets {
			e, err := CompileQuery(query, opts)
			if err != nil {
				t.Fatalf("compile %q: %v", query, err)
			}
			engines[query] = append(engines[query], e)
		}
	}

	checked := 0
	for _, doc := range docs {
		root := dom.MustParse([]byte(doc))
		for _, query := range queries {
			want := dom.MatchOffsets(root, jsonpath.MustParse(query))
			for i, e := range engines[query] {
				got, err := e.Matches([]byte(doc))
				if err != nil {
					t.Fatalf("%s on %s (option set %d): %v", query, doc, i, err)
				}
				if !equalInts(got, want) {
					t.Fatalf("%s on %s (option set %d):\n  engine: %v\n  oracle: %v",
						query, doc, i, got, want)
				}
				checked++
			}
		}
	}
	if checked < 10000 {
		t.Fatalf("only %d combinations checked; exhaustive grid too small", checked)
	}
}

// TestMutationNoPanic mutates valid documents byte-wise and asserts that
// every engine either errors or returns cleanly — never panics and never
// loops forever (bounded by the test timeout).
func TestMutationNoPanic(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	base := `{"a": [1, {"b": "x\"y"}, [2, 3]], "c": {"a": null}, "d": "end"}`
	queries := []string{"$..a", "$.a.*", "$.c.a", "$..b", "$.*", "$[0]", "$..a..b"}
	var compiled []*Engine
	for _, q := range queries {
		for _, opts := range []Options{{}, {EnableTailSkip: true}} {
			e, err := CompileQuery(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			compiled = append(compiled, e)
		}
	}
	sEngine, err := surfer.CompileQuery("$..a")
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2000; trial++ {
		doc := []byte(base)
		for k, muts := 0, 1+r.Intn(4); k < muts; k++ {
			switch r.Intn(3) {
			case 0: // overwrite
				doc[r.Intn(len(doc))] = byte(r.Intn(128))
			case 1: // truncate
				doc = doc[:r.Intn(len(doc))+1]
			default: // swap
				i, j := r.Intn(len(doc)), r.Intn(len(doc))
				doc[i], doc[j] = doc[j], doc[i]
			}
			if len(doc) == 0 {
				break
			}
		}
		for _, e := range compiled {
			_, _ = e.Matches(doc) // must not panic
		}
		_, _ = sEngine.Matches(doc)
	}
}

// TestDeeplyNestedTailSkip drives the tail-skip across deep, block-crossing
// structures.
func TestDeeplyNestedTailSkip(t *testing.T) {
	var b strings.Builder
	b.WriteString(`{"a": `)
	depth := 80
	for i := 0; i < depth; i++ {
		b.WriteString(`{"filler`)
		b.WriteString(strings.Repeat("x", i%7))
		b.WriteString(`": [0], "n": `)
	}
	b.WriteString(`{"b": 7}`)
	b.WriteString(strings.Repeat("}", depth))
	b.WriteString(`}`)
	assertAgainstOracle(t, "$.a..b", b.String())
	assertAgainstOracle(t, "$..a..b", b.String())
	assertAgainstOracle(t, "$..n..b", b.String())
}

// TestStacklessAgainstEngine checks the depth-register simulation against
// the depth-stack engine (and thus, transitively, the DOM oracle) on
// descendant-only chains.
func TestStacklessAgainstEngine(t *testing.T) {
	docs := []string{
		`{"a": 1}`,
		`{"a": {"a": {"b": 2}}, "b": 3}`,
		`{"x": [{"a": {"y": {"b": 1}}}, {"b": 0}], "a": {"b": [1, 2]}}`,
		`{"a": {"b": {"a": {"b": "deep"}}}}`,
		`[{"a": 1}, {"a": {"a": 2}}]`,
		`{"a": "leaf", "nest": {"a": {"c": {"a": 9}}}}`,
	}
	queries := []string{"$..a", "$..b", "$..a..b", "$..a..a", "$..a..b..a"}
	for _, query := range queries {
		q := jsonpath.MustParse(query)
		sl, err := NewStackless(q)
		if err != nil {
			t.Fatalf("%s: %v", query, err)
		}
		ref, err := CompileQuery(query, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, doc := range docs {
			want, err := ref.Matches([]byte(doc))
			if err != nil {
				t.Fatal(err)
			}
			got, err := sl.Matches([]byte(doc))
			if err != nil {
				t.Fatalf("%s on %s: %v", query, doc, err)
			}
			if !equalInts(got, want) {
				t.Fatalf("%s on %s:\n  stackless: %v\n  engine:    %v", query, doc, got, want)
			}
		}
	}
}

func TestStacklessRandomDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(505))
	keys := []string{"a", "b", "c"}
	for trial := 0; trial < 400; trial++ {
		g := &docGen{r: r, keys: keys}
		g.value(4)
		doc := g.buf.String()
		var sb strings.Builder
		sb.WriteString("$")
		for i, steps := 0, 1+r.Intn(3); i < steps; i++ {
			sb.WriteString(".." + keys[r.Intn(len(keys))])
		}
		query := sb.String()
		sl, err := NewStackless(jsonpath.MustParse(query))
		if err != nil {
			t.Fatal(err)
		}
		ref, err := CompileQuery(query, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Matches([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		got, err := sl.Matches([]byte(doc))
		if err != nil {
			t.Fatalf("trial %d: %s on %s: %v", trial, query, doc, err)
		}
		if !equalInts(got, want) {
			t.Fatalf("trial %d: %s on %s:\n  stackless: %v\n  engine:    %v",
				trial, query, doc, got, want)
		}
	}
}

func TestStacklessRejectsOutsideFragment(t *testing.T) {
	for _, query := range []string{"$", "$.a", "$..a.b", "$..*", "$..a[0]", "$.a..b", "$..['a','b']"} {
		if _, err := NewStackless(jsonpath.MustParse(query)); err != ErrNotStackless {
			t.Errorf("%s: err = %v, want ErrNotStackless", query, err)
		}
	}
}

func TestStacklessScalarAndMalformed(t *testing.T) {
	sl, err := NewStackless(jsonpath.MustParse("$..a"))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := sl.Count([]byte(`42`)); err != nil || n != 0 {
		t.Fatalf("scalar root: n=%d err=%v", n, err)
	}
	for _, doc := range []string{``, `{`, `{"a": {`} {
		if _, err := sl.Count([]byte(doc)); err == nil {
			t.Errorf("Count(%q) succeeded", doc)
		}
	}
}
