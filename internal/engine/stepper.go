package engine

import (
	"rsonpath/internal/automaton"
	"rsonpath/internal/depthstack"
)

// Stepper is one automaton simulation factored out of the run loop so it can
// be driven by an external event source: the current DFA state plus the
// sparse depth-stack of §3.2, advanced one structural event at a time.
//
// The single-query engine keeps its fused loop (run.subtree), which
// specializes every skipping decision to one automaton; Stepper is the
// building block for drivers that share one classification stream across
// several automata (internal/multiquery), where skipping decisions are taken
// collectively. The two implementations are kept in lockstep by the
// differential compliance tests at the repository root.
//
// The event protocol mirrors run.subtree:
//
//   - an opening character: EventTarget to find the entered state (the
//     caller decides collectively whether to skip the subtree), then
//     EnterOpen to commit;
//   - a closing character: CloseRestore with the post-decrement depth;
//   - a colon or comma whose value is a leaf: EventTarget again — the state
//     itself does not change on leaves, the caller only emits on acceptance.
//
// A Stepper is single-goroutine state; drivers allocate them per run.
type Stepper struct {
	dfa        *automaton.DFA
	needsIndex bool
	state      automaton.StateID
	stack      depthstack.Stack
}

// Init prepares the stepper to scan a document from its automaton's initial
// state. It may be called again to reuse the stepper on a new document.
func (s *Stepper) Init(dfa *automaton.DFA) {
	s.dfa = dfa
	s.needsIndex = false
	for i := range dfa.States {
		if dfa.States[i].NeedsIndexInArray {
			s.needsIndex = true
		}
	}
	s.state = dfa.Initial
	s.stack.Reset()
}

// State returns the current automaton state.
func (s *Stepper) State() automaton.StateID { return s.state }

// InitialAccepting reports whether the automaton accepts the document root.
func (s *Stepper) InitialAccepting() bool {
	return s.dfa.States[s.dfa.Initial].Accepting
}

// NeedsIndex reports whether the automaton has index transitions, requiring
// array-entry counting.
func (s *Stepper) NeedsIndex() bool { return s.needsIndex }

// EventTarget returns the state reached by a child carrying the given label
// (hasLabel true for object entries) or, for array entries, the given index.
// It does not change the stepper's state: opening events commit with
// EnterOpen, and leaf events never change state (§3.4 — only openings push).
func (s *Stepper) EventTarget(label []byte, hasLabel bool, idx int) automaton.StateID {
	if hasLabel {
		return s.dfa.Transition(s.state, label)
	}
	if s.needsIndex {
		return s.dfa.TransitionIndex(s.state, idx)
	}
	return s.dfa.TransitionFallback(s.state)
}

// Rejecting reports whether t is a rejecting (trash-trapped) state.
func (s *Stepper) Rejecting(t automaton.StateID) bool {
	return s.dfa.States[t].Rejecting
}

// Accepting reports whether t is an accepting state.
func (s *Stepper) Accepting(t automaton.StateID) bool {
	return s.dfa.States[t].Accepting
}

// Unitary reports whether the current state is unitary (one concrete-label
// transition, rejecting fallback) — the precondition for sibling skipping.
func (s *Stepper) Unitary() bool { return s.dfa.States[s.state].Unitary }

// EnterOpen commits an opening event: target is the state returned by
// EventTarget and depth the depth of the parent (pre-increment). A frame is
// pushed only when the state changes (the sparse depth-stack invariant).
// It reports whether the entered value itself matches.
func (s *Stepper) EnterOpen(target automaton.StateID, depth int) (accepting bool) {
	if target != s.state {
		s.stack.Push(int(s.state), depth)
		s.state = target
	}
	return s.dfa.States[target].Accepting
}

// CloseRestore commits a closing event at the given (post-decrement) depth,
// popping the depth-stack when the closed element had changed the state. It
// reports whether a matched unitary child just closed — the condition under
// which the single-query engine skips the remaining siblings; collective
// drivers skip only when every stepper reports true.
func (s *Stepper) CloseRestore(depth int) (unitaryMatched bool) {
	f, ok := s.stack.Top()
	if !ok || f.Depth != depth {
		return false
	}
	// Whether the child we just closed matched its entering transition:
	// children entered in the trash state (because some other automaton in
	// the set kept the region alive) must not trigger sibling skipping.
	childMatched := !s.dfa.States[s.state].Rejecting
	s.stack.Pop()
	s.state = automaton.StateID(f.State)
	return childMatched && s.dfa.States[s.state].Unitary
}

// Wants reports which leaf events the current state needs: colons (some
// object child can be accepted in one step) and commas (some array entry can
// be accepted, or entries must be counted for index transitions). Collective
// drivers enable a symbol when any stepper wants it (§3.4's toggle, with the
// union over the set).
func (s *Stepper) Wants() (colons, commas bool) {
	st := &s.dfa.States[s.state]
	return st.CanAcceptInObject, st.CanAcceptInArray || st.NeedsIndexInArray
}
