package engine

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"rsonpath/internal/dom"
	"rsonpath/internal/faultreader"
	"rsonpath/internal/input"
	"rsonpath/internal/jsonpath"
)

// FuzzEngineAgainstOracle feeds arbitrary bytes to the engine. When the
// input is valid JSON, the engine must agree with the DOM oracle exactly;
// when it is not, the engine must return cleanly (error or not) without
// panicking. The seed corpus is replayed as ordinary unit tests; run
// `go test -fuzz FuzzEngineAgainstOracle ./internal/engine` to explore.
func FuzzEngineAgainstOracle(f *testing.F) {
	seeds := []string{
		`{"a": 1}`,
		`{"a": {"b": [1, {"a": 2}]}, "b": "x\"y"}`,
		`[[], {}, [{"a": []}]]`,
		`{"a": "{\"a\": 1}"}`,
		`{"k\"ey": {"a": 1}}`,
		`{`,
		`{"a":`,
		`]`,
		`tru`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	queries := []string{"$..a", "$.a.b", "$.a.*", "$..a..b", "$[0]", "$.*"}
	type variant struct {
		e     *Engine
		query string
	}
	var variants []variant
	for _, q := range queries {
		for _, opts := range []Options{{}, {EnableTailSkip: true}} {
			e, err := CompileQuery(q, opts)
			if err != nil {
				f.Fatal(err)
			}
			variants = append(variants, variant{e, q})
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		root, parseErr := dom.Parse(data)
		for _, v := range variants {
			got, err := v.e.Matches(data)
			// Differential: the same bytes through a window-bounded buffered
			// input must match the in-memory run exactly. A *input.Error is
			// the one sanctioned divergence — a document feature larger than
			// the (tiny) window defeats it by design.
			var bufGot []int
			bufErr := v.e.RunInput(
				input.NewBuffered(bytes.NewReader(data), 64),
				func(pos int) { bufGot = append(bufGot, pos) })
			if parseErr != nil {
				continue // malformed: any clean result is acceptable
			}
			if err != nil {
				t.Fatalf("%s on valid %q: %v", v.query, data, err)
			}
			var winErr *input.Error
			switch {
			case errors.As(bufErr, &winErr):
				// window defeat: acceptable on any input
			case bufErr != nil:
				t.Fatalf("%s buffered on valid %q: %v", v.query, data, bufErr)
			case !equalInts(bufGot, got):
				t.Fatalf("%s on %q:\n  buffered: %v\n  in-memory: %v", v.query, data, bufGot, got)
			}
			// Hostile readers that still deliver the exact bytes (one byte
			// per Read, reads torn at every block boundary) must change
			// nothing: same matches, same sanctioned window-defeat escape.
			for name, r := range map[string]io.Reader{
				"one-byte":   faultreader.OneByte(data),
				"block-torn": faultreader.Chunked(data, input.BlockSize),
			} {
				var faultGot []int
				faultErr := v.e.RunInput(
					input.NewBuffered(r, 64),
					func(pos int) { faultGot = append(faultGot, pos) })
				switch {
				case errors.As(faultErr, &winErr):
				case faultErr != nil:
					t.Fatalf("%s %s on valid %q: %v", v.query, name, data, faultErr)
				case !equalInts(faultGot, got):
					t.Fatalf("%s %s on %q:\n  faulted: %v\n  in-memory: %v", v.query, name, data, faultGot, got)
				}
			}
			want := dom.MatchOffsets(root, jsonpath.MustParse(v.query))
			if !equalInts(got, want) {
				t.Fatalf("%s on %q:\n  engine: %v\n  oracle: %v", v.query, data, got, want)
			}
		}
	})
}

// FuzzQueryParser feeds arbitrary strings to the query parser: it must
// never panic, and anything it accepts must render canonically and
// re-parse to the same canonical form.
func FuzzQueryParser(f *testing.F) {
	for _, s := range []string{
		"$", "$.a", "$..a.b", "$.*", "$['a b']", "$[0,2]", "$..['x','y']",
		"$.", "$[", "$['", "a", "$...a", "$['a\\'b']",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		q, err := jsonpath.Parse(s)
		if err != nil {
			return
		}
		canonical := q.String()
		q2, err := jsonpath.Parse(canonical)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canonical, s, err)
		}
		if q2.String() != canonical {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canonical, q2.String())
		}
	})
}
