package engine

import (
	"errors"

	"rsonpath/internal/classifier"
	"rsonpath/internal/depthstack"
	"rsonpath/internal/errs"
	"rsonpath/internal/input"
	"rsonpath/internal/jsonpath"
)

// This file implements the depth-register automata of §3.2 (after Barloy,
// Murlak & Paperman, "Stackless processing of streamed trees", PODS'21):
// the stackless algorithm for descendant-only queries $..l1..l2…..ln that
// uses depth registers instead of any stack. The paper generalizes this
// model into the depth-stack automaton; keeping the restricted model
// executable makes the generalization concrete and benchmarkable — for
// child-free queries the depth-stack degenerates to exactly these
// registers (§3.2: "the at most n frames on the stack correspond directly
// to the n registers from the stackless algorithm").
//
// States are 1..n+1 and register i holds the depth at which selector i
// matched. Transitions, per the paper:
//
//   - when the current depth falls to register i-1's value, move to state
//     i-1 (not applicable in state 1);
//   - when label l_i is found, set register i to the current depth and move
//     to state i+1 (reporting when i = n).
//
// One amendment, required by node semantics and confirmed against the DFA
// engine by differential tests: in state n+1, further occurrences of l_n
// are reported too (they are nested matches), and falling back from state
// n+1 reads register n — so the implementation keeps n registers rather
// than the n-1 the paper's prose mentions.

// ErrNotStackless is returned for queries outside the depth-register
// fragment (anything but a chain of descendant label selectors).
var ErrNotStackless = errors.New("engine: query is not a descendant-only label chain")

// Stackless executes descendant-only label-chain queries with depth
// registers and no stack. Safe for concurrent use.
type Stackless struct {
	labels   [][]byte
	maxDepth int
}

// LimitDepth caps the document nesting the engine will walk; deeper input
// aborts the run with a typed *errs.Limit. 0 or negative disables the
// check.
func (e *Stackless) LimitDepth(max int) { e.maxDepth = max }

// NewStackless compiles q, rejecting queries outside the fragment.
func NewStackless(q *jsonpath.Query) (*Stackless, error) {
	e := &Stackless{}
	for i := range q.Selectors {
		sel := &q.Selectors[i]
		if !sel.Descendant || sel.Wildcard || len(sel.Labels) != 1 || sel.SelectsIndices() {
			return nil, ErrNotStackless
		}
		e.labels = append(e.labels, sel.Labels[0])
	}
	if len(e.labels) == 0 {
		return nil, ErrNotStackless
	}
	return e, nil
}

// Count runs the query and returns the number of matches.
func (e *Stackless) Count(data []byte) (int, error) {
	n := 0
	err := e.Run(data, func(int) { n++ })
	return n, err
}

// Matches runs the query and returns match offsets in document order.
func (e *Stackless) Matches(data []byte) ([]int, error) {
	var out []int
	err := e.Run(data, func(pos int) { out = append(out, pos) })
	return out, err
}

// Run streams an in-memory document once, reporting each match's value
// offset.
func (e *Stackless) Run(data []byte, emit func(pos int)) error {
	return e.RunInput(input.NewBytes(data), emit)
}

// RunInput is Run over any input source; over a window-bounded input the
// engine's memory stays bounded by the window.
func (e *Stackless) RunInput(in input.Input, emit func(pos int)) error {
	return input.Guard(func() error { return e.runInput(in, emit) })
}

func (e *Stackless) runInput(in input.Input, emit func(pos int)) error {
	rootPos := FirstNonWS(in, 0)
	c, ok := in.ByteAt(rootPos)
	if !ok {
		return errMalformedAt(0, "empty input")
	}
	if c != '{' && c != '[' {
		// Atomic root: no descendants, but the lone scalar must still be a
		// complete value with nothing after it.
		end, bad := input.AtomSpan(in, rootPos)
		if bad != "" {
			return errMalformedAt(end, bad)
		}
		if p, found := input.TrailingContent(in, end); found {
			return errMalformedAt(p, "trailing content")
		}
		return nil
	}

	n := len(e.labels)
	regs := make([]int, n+1) // regs[i]: depth at which selector i matched
	state := 1
	depth := 1
	var kinds depthstack.KindMap
	kinds.Reset()
	kinds.Set(1, c == '{')

	stream := classifier.NewStreamInput(in)
	iter := classifier.NewStructural(stream, rootPos+1)
	// Leaves can only match the final selector; commas never matter
	// (array entries carry no labels).
	iter.SetColons(state >= n)

	for {
		pos, ch, ok := iter.Next()
		if !ok {
			end := in.Len()
			if end < 0 {
				end = 0
			}
			return errMalformedAt(end, "unterminated document")
		}
		switch ch {
		case '{', '[':
			label, hasLabel, lok := LabelBefore(in, pos)
			if !lok {
				return errMalformedAt(pos, "cannot locate label")
			}
			if hasLabel {
				switch {
				case state <= n && bytesEq(label, e.labels[state-1]):
					if state == n {
						emit(pos)
					}
					regs[state] = depth
					state++
					iter.SetColons(state >= n)
				case state == n+1 && bytesEq(label, e.labels[n-1]):
					emit(pos) // nested match below a full match
				}
			}
			depth++
			if e.maxDepth > 0 && depth > e.maxDepth {
				return errs.DepthLimit(e.maxDepth, pos)
			}
			kinds.Set(depth, ch == '{')
		case '}', ']':
			if kinds.Get(depth) != (ch == '}') {
				return errMalformedAt(pos, "mismatched closer")
			}
			depth--
			if depth == 0 {
				if p, found := input.TrailingContent(in, pos+1); found {
					return errMalformedAt(p, "trailing content")
				}
				return nil
			}
			if state > 1 && regs[state-1] == depth {
				state--
				iter.SetColons(state >= n)
			}
		case ':':
			if _, nch, ok := iter.Peek(); ok && (nch == '{' || nch == '[') {
				continue // composite value: handled at its opening
			}
			label, hasLabel, lok := LabelBefore(in, pos+1)
			if !lok || !hasLabel {
				return errMalformedAt(pos, "colon without label")
			}
			// Only enabled when state >= n: a leaf can complete the query
			// but cannot host deeper matches.
			if bytesEq(label, e.labels[n-1]) {
				vs := FirstNonWS(in, pos+1)
				if !PlausibleValueStart(in, vs) {
					return errMalformedAt(pos, "missing value")
				}
				emit(vs)
			}
		}
	}
}

func bytesEq(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func errMalformedAt(pos int, why string) error {
	r := &run{}
	return r.errMalformed(pos, why)
}
