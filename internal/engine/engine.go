// Package engine implements the paper's main query-execution algorithm
// (§3.2–§3.4): simulation of the compiled query automaton over the streamed
// document using a sparse depth-stack, fed by the SWAR classification
// pipeline, with all four skipping techniques:
//
//   - skipping leaves     — commas/colons toggled off in internal states;
//   - skipping children   — fast-forward over subtrees entered through
//     transitions into the rejecting state;
//   - skipping siblings   — fast-forward to the enclosing closer once a
//     unitary state's single label has been matched;
//   - skipping to a label — the head-skip outer loop for queries whose
//     initial state is waiting (queries that begin with a descendant).
//
// Documented deviations from the paper's pseudocode are listed in DESIGN.md:
// an explicit element-kind bitstack drives comma/colon toggling, sibling
// skips fire only when the unitary label actually matched, and the first
// token of a (sub)document is entered without a transition.
//
// The engine scans rather than validates: on well-formed JSON its output
// equals the DOM oracle's; on malformed input it reports ErrMalformed when
// the structure cannot be balanced but otherwise makes no promises.
package engine

import (
	"errors"

	"rsonpath/internal/automaton"
	"rsonpath/internal/classifier"
	"rsonpath/internal/depthstack"
	"rsonpath/internal/errs"
	"rsonpath/internal/input"
	"rsonpath/internal/jsonpath"
)

// ErrMalformed is returned when the input cannot be a well-formed JSON
// document (premature end of input, unbalanced brackets, missing labels).
var ErrMalformed = errors.New("engine: malformed JSON input")

// Options toggles the engine's optimizations, primarily for the ablation
// study (DESIGN.md experiment index). The zero value is the paper's
// configuration with everything enabled.
type Options struct {
	// DisableHeadSkip turns off memmem-style skipping to the first label
	// of queries beginning with a descendant selector (§3.4).
	DisableHeadSkip bool
	// DisableSkipChildren turns off fast-forwarding over rejected subtrees.
	DisableSkipChildren bool
	// DisableSkipSiblings turns off fast-forwarding after unitary matches.
	DisableSkipSiblings bool
	// DisableSkipLeaves keeps commas and colons enabled at all times
	// instead of toggling them by state.
	DisableSkipLeaves bool
	// EnableTailSkip turns on the §4.5 future-work classifier: in waiting
	// states (non-initial descendant segments ..l), the engine fast-forwards
	// to the next occurrence of l within the current element instead of
	// stepping through events. Off by default to keep the paper's exact
	// configuration; ignored for queries with index selectors.
	EnableTailSkip bool
	// MaxDepth aborts the run with a typed *errs.Limit when the nesting of
	// the walked portion of the document exceeds it. Skipped subtrees do not
	// count: their nesting costs the engine no memory, which is what the
	// limit bounds. 0 or negative disables the check.
	MaxDepth int
	// MaxDocBytes aborts the run with a typed *errs.Limit when the document
	// is known to be larger. For in-memory inputs the length is checked up
	// front; window-bounded inputs enforce it at refill granularity through
	// BufferedInput.LimitDocBytes.
	MaxDocBytes int
}

// Engine executes one compiled query over any number of documents. It is
// safe for concurrent use: each Run gets its own state.
type Engine struct {
	dfa         *automaton.DFA
	opts        Options
	needsIndex  bool
	tailSkip    bool
	headLabel   []byte // non-nil when head-skip applies
	headPattern []byte // the label in its quoted spelling, for the seeker
}

// New builds an engine for a compiled automaton.
func New(dfa *automaton.DFA, opts Options) *Engine {
	e := &Engine{dfa: dfa, opts: opts}
	for s := range dfa.States {
		if dfa.States[s].NeedsIndexInArray {
			e.needsIndex = true
		}
	}
	e.tailSkip = opts.EnableTailSkip && !e.needsIndex
	init := &dfa.States[dfa.Initial]
	if init.Waiting && !opts.DisableHeadSkip {
		// The quoted seek pattern is built once at automaton compile time
		// and shared by every engine over the same DFA.
		e.headLabel = init.Labels[0].Label
		e.headPattern = init.Labels[0].Pattern
	}
	return e
}

// CompileQuery parses and compiles a query and wraps it in an engine.
func CompileQuery(query string, opts Options) (*Engine, error) {
	q, err := jsonpath.Parse(query)
	if err != nil {
		return nil, err
	}
	dfa, err := automaton.Compile(q, automaton.Options{})
	if err != nil {
		return nil, err
	}
	return New(dfa, opts), nil
}

// Automaton returns the engine's compiled automaton.
func (e *Engine) Automaton() *automaton.DFA { return e.dfa }

// Count runs the query and returns the number of matches.
func (e *Engine) Count(data []byte) (int, error) {
	n := 0
	err := e.Run(data, func(int) { n++ })
	return n, err
}

// Matches runs the query and returns the byte offset of the first character
// of every matched value, in document order.
func (e *Engine) Matches(data []byte) ([]int, error) {
	var out []int
	err := e.Run(data, func(pos int) { out = append(out, pos) })
	return out, err
}

// Run streams an in-memory document once, invoking emit with the byte
// offset of each matched value's first character, in document order.
func (e *Engine) Run(data []byte, emit func(pos int)) error {
	return e.RunInput(input.NewBytes(data), emit)
}

// RunInput is Run over any input source. Over a window-bounded input the
// engine's memory stays bounded by the window; a document feature larger
// than the window (a key, a whitespace run) surfaces as *input.Error.
func (e *Engine) RunInput(in input.Input, emit func(pos int)) error {
	return e.runInput(in, nil, emit)
}

// RunPlanes is RunInput over a document whose mask planes were precomputed
// with classifier.BuildPlanes: the engine layer above the classifier
// boundary is unchanged, but every block's quote and structural masks become
// plane lookups instead of SWAR passes, stream repositioning needs no
// quote-state reconstruction, and depth skips walk the bracket planes
// without touching the document bytes. in must present exactly the bytes
// the planes were built from.
func (e *Engine) RunPlanes(in input.Input, planes *classifier.Planes, emit func(pos int)) error {
	return e.runInput(in, planes, emit)
}

func (e *Engine) runInput(in input.Input, planes *classifier.Planes, emit func(pos int)) error {
	return input.Guard(func() error {
		if max := e.opts.MaxDocBytes; max > 0 {
			if n := in.Len(); n >= 0 && n > max {
				return errs.DocBytesLimit(max, max)
			}
		}
		r := &run{
			e:    e,
			dfa:  e.dfa,
			in:   in,
			emit: emit,
		}
		if planes != nil {
			r.stream = classifier.NewStreamPlanes(in, planes)
		} else {
			r.stream = classifier.NewStreamInput(in)
		}
		r.iter = classifier.NewStructural(r.stream, 0)
		return r.document()
	})
}

// run is the per-document execution state.
type run struct {
	e      *Engine
	dfa    *automaton.DFA
	in     input.Input
	stream *classifier.Stream
	iter   *classifier.Structural
	emit   func(int)

	stack   depthstack.Stack    // (state, depth) frames — the depth-stack
	kinds   depthstack.KindMap  // element kind per depth: true = object
	indices depthstack.IntStack // entry index per open array (index queries)

	tailEnd int // subtree end position recorded by tailStep
}

func (r *run) errMalformed(pos int, why string) error {
	return &errs.Malformed{Sentinel: ErrMalformed, Offset: pos, Kind: why}
}

// checkDepth enforces Options.MaxDepth at the points where the walked
// nesting grows (and with it the engine's kind map and depth-stack).
func (r *run) checkDepth(depth, pos int) error {
	if max := r.e.opts.MaxDepth; max > 0 && depth > max {
		return errs.DepthLimit(max, pos)
	}
	return nil
}

// endPos is the document length for end-of-input diagnostics; by the time
// the end has been hit, every input knows its length.
func (r *run) endPos() int {
	if n := r.in.Len(); n >= 0 {
		return n
	}
	return 0
}

// document dispatches on the root value and the head-skip eligibility.
func (r *run) document() error {
	rootPos := FirstNonWS(r.in, 0)
	c, ok := r.in.ByteAt(rootPos)
	if !ok {
		return r.errMalformed(0, "empty input")
	}
	init := r.dfa.Initial
	if c != '{' && c != '[' {
		// Atomic root: validate the lone scalar lexically and reject any
		// trailing content before reporting a match. No key can exist
		// outside an object, so head-skip queries cannot match either way.
		end, bad := input.AtomSpan(r.in, rootPos)
		if bad != "" {
			return r.errMalformed(end, bad)
		}
		if p, found := input.TrailingContent(r.in, end); found {
			return r.errMalformed(p, "trailing content")
		}
		if r.dfa.States[init].Accepting {
			r.emit(rootPos)
		}
		return nil
	}
	if r.dfa.States[init].Accepting {
		r.emit(rootPos)
	}
	if r.e.headLabel != nil {
		return r.headSkipLoop(rootPos, c)
	}
	r.iter.Reset(rootPos + 1)
	end, err := r.subtree(init, rootPos, c)
	if err != nil {
		return err
	}
	if p, found := input.TrailingContent(r.in, end+1); found {
		return r.errMalformed(p, "trailing content")
	}
	return nil
}

// headSkipLoop implements skipping to a label (§3.4): find each occurrence
// of the head label with the SWAR seeker, take the transition, and run the
// ordinary algorithm inside the associated value. rootPos/rootCh locate the
// document's composite root for the best-effort end-of-input validation.
func (r *run) headSkipLoop(rootPos int, rootCh byte) error {
	label := r.e.headLabel
	target := r.dfa.Transition(r.dfa.Initial, label)
	accepting := r.dfa.States[target].Accepting
	from := 0
	for {
		_, valueAt, ok := classifier.SeekLabelPattern(r.stream, from, label, r.e.headPattern)
		if !ok {
			return r.finishHeadSkip(rootPos, rootCh)
		}
		if accepting {
			r.emit(valueAt)
		}
		c, _ := r.in.ByteAt(valueAt)
		if c != '{' && c != '[' {
			// Leaf value: resume seeking after it (the seeker requires a
			// resumption point outside any string).
			from = LeafEnd(r.in, valueAt)
			continue
		}
		if r.dfa.States[target].Rejecting {
			// Nothing can match below; skip the whole value.
			end, ok := classifier.SkipToClose(r.stream, valueAt+1, c)
			if !ok {
				return r.errMalformed(valueAt, "unterminated value")
			}
			from = end + 1
			continue
		}
		r.iter.Reset(valueAt + 1)
		end, err := r.subtree(target, valueAt, c)
		if err != nil {
			return err
		}
		from = end + 1
	}
}

// finishHeadSkip performs the best-effort end-of-input validation of a
// head-skip run. The seeker never classifies the regions it jumps over, so
// fully balance-checking them would cost exactly the pass the optimization
// saves; instead two cheap checks reject the common corruption classes:
// the seeker's own quote parity catches documents ending inside a string,
// and the last non-whitespace byte must be the root's matching closer
// (catching plain truncation and trailing garbage). Nesting imbalance
// hidden strictly inside an unsought region can still slip through —
// documented as best-effort in DESIGN.md §9.
func (r *run) finishHeadSkip(rootPos int, rootCh byte) error {
	if r.stream.SeekEndedInString() {
		return r.errMalformed(r.endPos(), "unterminated string")
	}
	closer := byte('}')
	if rootCh == '[' {
		closer = ']'
	}
	last, ok := LastNonWS(r.in)
	if !ok || last <= rootPos {
		return r.errMalformed(r.endPos(), "unterminated document")
	}
	if b, _ := r.in.ByteAt(last); b != closer {
		return r.errMalformed(last, "unterminated document")
	}
	return nil
}

// arrayEntryTarget returns the state reached by an array entry at index idx.
func (r *run) arrayEntryTarget(state automaton.StateID, idx int) automaton.StateID {
	if r.e.needsIndex {
		return r.dfa.TransitionIndex(state, idx)
	}
	return r.dfa.TransitionFallback(state)
}

// toggle adjusts the comma/colon symbols to the current state and the kind
// of the element whose interior is at the given depth (§3.4's toggle()).
func (r *run) toggle(state automaton.StateID, depth int) {
	st := &r.dfa.States[state]
	isObj := r.kinds.Get(depth)
	always := r.e.opts.DisableSkipLeaves
	r.iter.SetColons(isObj && (st.CanAcceptInObject || always))
	r.iter.SetCommas(!isObj && (st.CanAcceptInArray || st.NeedsIndexInArray || always))
}

// subtree runs the main algorithm (§3.4) over one composite value whose
// opening character at openPos has already been located; state is the
// automaton state valid inside it (the opening itself triggers no
// transition). It returns the position of the matching closing character.
func (r *run) subtree(state automaton.StateID, openPos int, openCh byte) (endPos int, err error) {
	r.stack.Reset()
	r.kinds.Reset()
	r.indices.Reset()

	depth := 1
	r.kinds.Set(depth, openCh == '{')
	if openCh == '[' && r.e.needsIndex {
		r.indices.Push(0)
	}
	r.toggle(state, depth)
	if openCh == '[' {
		r.tryMatchFirstItem(state, openPos)
	}

	for {
		if r.e.tailSkip && r.dfa.States[state].Waiting {
			var done bool
			var err error
			state, depth, done, err = r.tailStep(state, depth)
			if err != nil {
				return 0, err
			}
			if done {
				// depth hit zero: tailStep recorded the end position.
				return r.tailEnd, nil
			}
			continue
		}
		pos, ch, ok := r.iter.Next()
		if !ok {
			return 0, r.errMalformed(r.endPos(), "unterminated document")
		}
		switch ch {
		case '{', '[':
			label, hasLabel, lok := LabelBefore(r.in, pos)
			if !lok {
				return 0, r.errMalformed(pos, "cannot locate label")
			}
			var target automaton.StateID
			if hasLabel {
				target = r.dfa.Transition(state, label)
			} else {
				target = r.arrayEntryTarget(state, r.currentIndex())
			}
			if r.dfa.States[target].Rejecting && !r.e.opts.DisableSkipChildren {
				end, ok := classifier.SkipToClose(r.stream, pos+1, ch)
				if !ok {
					return 0, r.errMalformed(pos, "unterminated value")
				}
				r.iter.Reset(end + 1)
				continue
			}
			if target != state {
				r.stack.Push(int(state), depth)
				state = target
			}
			depth++
			if err := r.checkDepth(depth, pos); err != nil {
				return 0, err
			}
			r.kinds.Set(depth, ch == '{')
			if ch == '[' && r.e.needsIndex {
				r.indices.Push(0)
			}
			if r.dfa.States[state].Accepting {
				r.emit(pos)
			}
			r.toggle(state, depth)
			if ch == '[' {
				r.tryMatchFirstItem(state, pos)
			}

		case '}', ']':
			if r.kinds.Get(depth) != (ch == '}') {
				return 0, r.errMalformed(pos, "mismatched closer")
			}
			depth--
			if ch == ']' && r.e.needsIndex && r.indices.Len() > 0 {
				// The guard protects against malformed input closing an
				// array that was never opened.
				r.indices.Pop()
			}
			if depth == 0 {
				return pos, nil
			}
			if f, ok := r.stack.Top(); ok && f.Depth == depth {
				// Whether the child we just closed matched its entering
				// transition: with skipping disabled, rejected children are
				// walked in the trash state, and closing one must not
				// trigger the sibling skip below.
				childMatched := !r.dfa.States[state].Rejecting
				r.stack.Pop()
				state = automaton.StateID(f.State)
				if childMatched && r.dfa.States[state].Unitary && !r.e.opts.DisableSkipSiblings {
					// The matched unitary child just closed: no further
					// sibling can match, so fast-forward to the parent's
					// closer and let the main loop process it. When the
					// next event is already a closing character it must be
					// that closer (no deeper one can precede an opening),
					// so the fast-forward would be pure overhead.
					if _, nch, ok := r.iter.Peek(); ok && nch != '}' && nch != ']' {
						end, ok := classifier.SkipToClose(r.stream, pos+1, '{')
						if !ok {
							return 0, r.errMalformed(pos, "unterminated object")
						}
						r.iter.Reset(end)
					}
					continue
				}
			}
			r.toggle(state, depth)

		case ':':
			if _, nch, ok := r.iter.Peek(); ok && (nch == '{' || nch == '[') {
				continue // composite value: handled by its Opening event
			}
			label, hasLabel, lok := LabelBefore(r.in, pos+1)
			if !lok || !hasLabel {
				return 0, r.errMalformed(pos, "colon without label")
			}
			target := r.dfa.Transition(state, label)
			if r.dfa.States[target].Accepting {
				vs := FirstNonWS(r.in, pos+1)
				if !PlausibleValueStart(r.in, vs) {
					return 0, r.errMalformed(pos, "missing value")
				}
				r.emit(vs)
			}
			if r.dfa.States[state].Unitary && !r.dfa.States[target].Rejecting &&
				!r.e.opts.DisableSkipSiblings {
				// The unitary label matched a leaf: skip the remaining
				// siblings, leaving the parent's closer as the next event
				// (unless it already is — see the Closing case).
				if _, nch, ok := r.iter.Peek(); ok && nch != '}' && nch != ']' {
					end, ok := classifier.SkipToClose(r.stream, pos+1, '{')
					if !ok {
						return 0, r.errMalformed(pos, "unterminated object")
					}
					r.iter.Reset(end)
				}
			}

		case ',':
			if r.e.needsIndex && !r.kinds.Get(depth) && r.indices.Len() > 0 {
				r.indices.Inc()
			}
			if _, nch, ok := r.iter.Peek(); ok && (nch == '{' || nch == '[') {
				continue // composite entry: handled by its Opening event
			}
			target := r.arrayEntryTarget(state, r.currentIndex())
			if r.dfa.States[target].Accepting {
				vs := FirstNonWS(r.in, pos+1)
				if !PlausibleValueStart(r.in, vs) {
					continue // trailing comma or truncation: nothing to report
				}
				r.emit(vs)
			}
		}
	}
}

// tailStep is the §4.5 extension: from a waiting state, fast-forward to
// the next occurrence of the state's label within the current element, or
// to the element's boundary, whichever comes first. It mirrors the main
// loop's Opening and Closing handling for the event it lands on. done is
// true when the subtree's own closer was consumed (depth reached zero);
// the end position is left in r.tailEnd.
func (r *run) tailStep(state automaton.StateID, depth int) (newState automaton.StateID, newDepth int, done bool, err error) {
	st := &r.dfa.States[state]
	label := st.Labels[0].Label
	boundary := 0
	if f, ok := r.stack.Top(); ok {
		boundary = f.Depth
	}
	ev := classifier.SeekLabelWithin(r.stream, r.iter.Position(), label, depth-boundary)
	switch ev.Kind {
	case classifier.TailKey:
		target := st.Labels[0].Target
		atDepth := depth + ev.DepthDelta
		c, _ := r.in.ByteAt(ev.ValueAt)
		if c != '{' && c != '[' {
			// Leaf value: report if it matches and keep seeking after it.
			if r.dfa.States[target].Accepting {
				r.emit(ev.ValueAt)
			}
			r.iter.Reset(LeafEnd(r.in, ev.ValueAt))
			return state, atDepth, false, nil
		}
		if r.dfa.States[target].Rejecting {
			// Cannot happen for the supported grammar (the labelled
			// transition of a waiting state always progresses), but stay
			// defensive: skip the subtree.
			end, ok := classifier.SkipToClose(r.stream, ev.ValueAt+1, c)
			if !ok {
				return state, depth, false, r.errMalformed(ev.ValueAt, "unterminated value")
			}
			r.iter.Reset(end + 1)
			return state, atDepth, false, nil
		}
		// Mirror the Opening case: enter the value.
		r.stack.Push(int(state), atDepth)
		atDepth++
		if err := r.checkDepth(atDepth, ev.ValueAt); err != nil {
			return state, depth, false, err
		}
		r.kinds.Set(atDepth, c == '{')
		if r.dfa.States[target].Accepting {
			r.emit(ev.ValueAt)
		}
		r.iter.Reset(ev.ValueAt + 1)
		r.toggle(target, atDepth)
		if c == '[' {
			r.tryMatchFirstItem(target, ev.ValueAt)
		}
		return target, atDepth, false, nil

	case classifier.TailClose:
		// Mirror the Closing case for the boundary closer.
		r.iter.Reset(ev.Pos + 1)
		if boundary == 0 && r.stack.Len() == 0 {
			r.tailEnd = ev.Pos
			return state, 0, true, nil
		}
		f := r.stack.Pop()
		restored := automaton.StateID(f.State)
		// The closing element matched its entering transition (we were in
		// a live waiting state), so the sibling skip applies when the
		// restored state is unitary.
		if r.dfa.States[restored].Unitary && !r.e.opts.DisableSkipSiblings {
			if _, nch, ok := r.iter.Peek(); ok && nch != '}' && nch != ']' {
				end, ok := classifier.SkipToClose(r.stream, ev.Pos+1, '{')
				if !ok {
					return state, depth, false, r.errMalformed(ev.Pos, "unterminated object")
				}
				r.iter.Reset(end)
			}
			return restored, boundary, false, nil
		}
		r.toggle(restored, boundary)
		return restored, boundary, false, nil

	default:
		return state, depth, false, r.errMalformed(r.endPos(), "unterminated document")
	}
}

// currentIndex returns the entry index of the array being scanned (0 when
// index tracking is off).
func (r *run) currentIndex() int {
	if !r.e.needsIndex || r.indices.Len() == 0 {
		return 0
	}
	return r.indices.Top()
}

// tryMatchFirstItem handles the corner case of §3.4: the first entry of an
// array is preceded by neither comma nor colon, so a leaf first entry must
// be matched when the array's entry transition accepts.
func (r *run) tryMatchFirstItem(state automaton.StateID, openPos int) {
	target := r.arrayEntryTarget(state, 0)
	if !r.dfa.States[target].Accepting {
		return
	}
	if _, nch, ok := r.iter.Peek(); !ok || nch == '{' || nch == '[' {
		return // composite first entry (or malformed): Opening handles it
	}
	vs := FirstNonWS(r.in, openPos+1)
	if !PlausibleValueStart(r.in, vs) {
		return // empty array or malformed input
	}
	r.emit(vs)
}

// The scalar scanning helpers (LabelBefore, FirstNonWS, LeafEnd,
// PlausibleValueStart) shared with the stackless engine and the multi-query
// driver live in scan.go.
