package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"rsonpath/internal/automaton"
	"rsonpath/internal/dom"
	"rsonpath/internal/jsonpath"
)

// allOptionSets are the optimization configurations every differential test
// runs under: the default (everything on), each skipping technique disabled
// in isolation, and everything disabled (pure simulation).
var allOptionSets = map[string]Options{
	"default":      {},
	"no-headskip":  {DisableHeadSkip: true},
	"no-children":  {DisableSkipChildren: true},
	"no-siblings":  {DisableSkipSiblings: true},
	"no-leaves":    {DisableSkipLeaves: true},
	"all-disabled": {DisableHeadSkip: true, DisableSkipChildren: true, DisableSkipSiblings: true, DisableSkipLeaves: true},
	"tail-skip":    {EnableTailSkip: true},
	"tail-only":    {EnableTailSkip: true, DisableHeadSkip: true, DisableSkipChildren: true, DisableSkipSiblings: true},
}

func engineOffsets(t *testing.T, query, doc string, opts Options) []int {
	t.Helper()
	e, err := CompileQuery(query, opts)
	if err != nil {
		t.Fatalf("CompileQuery(%q): %v", query, err)
	}
	got, err := e.Matches([]byte(doc))
	if err != nil {
		t.Fatalf("Matches(%q, %q): %v", query, doc, err)
	}
	return got
}

// assertAgainstOracle checks the engine's match offsets against the DOM
// evaluator under every option set.
func assertAgainstOracle(t *testing.T, query, doc string) {
	t.Helper()
	root, err := dom.Parse([]byte(doc))
	if err != nil {
		t.Fatalf("oracle rejects %q: %v", doc, err)
	}
	want := dom.MatchOffsets(root, jsonpath.MustParse(query))
	for name, opts := range allOptionSets {
		got := engineOffsets(t, query, doc, opts)
		if !equalInts(got, want) {
			t.Fatalf("[%s] %s on %s:\n  engine: %v\n  oracle: %v",
				name, query, doc, got, want)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPaperSection2Example(t *testing.T) {
	assertAgainstOracle(t, "$.a..b.*", `{"a":[{"b":{"c":1}}, {"b":[2]}]}`)
}

func TestPaperNodeSemanticsExample(t *testing.T) {
	assertAgainstOracle(t, "$..a..b", `{"a":{"a":{"a":{"b":"Yay!"}}}}`)
}

func TestPaperGreedyMatchExample(t *testing.T) {
	// §3.1: .a..b.*..c.* over a:{b:{b:{b:{c:[42]}}}}.
	assertAgainstOracle(t, "$.a..b.*..c.*", `{"a":{"b":{"b":{"b":{"c":[42]}}}}}`)
}

func TestPaperFigure2SkippingWalkthrough(t *testing.T) {
	// §3.3's running example document.
	doc := `{"b":"Long string with no matches for sure",
	         "c":[1,2,3,4,5,6,7,8,9,10],
	         "a":{"b":{"x":{"c":[1]}}},
	         "z":0}`
	assertAgainstOracle(t, "$.a..b.*..c.*", doc)
	assertAgainstOracle(t, "$.a..b.*", doc)
}

func TestChildQueries(t *testing.T) {
	doc := `{"a": {"b": 1, "c": {"d": [5, 6]}}, "b": 2, "arr": [1, [2, 3], {"b": 7}]}`
	for _, q := range []string{
		"$", "$.a", "$.b", "$.a.b", "$.a.c.d", "$.missing", "$.a.missing",
		"$.*", "$.a.*", "$.*.*", "$.arr.*", "$.*.b", "$.a.*.d", "$.*.*.*",
	} {
		assertAgainstOracle(t, q, doc)
	}
}

func TestDescendantQueries(t *testing.T) {
	doc := `{"a": {"a": {"b": 1}, "b": {"a": {"b": 2}}}, "b": [{"a": {"b": 3}}, 4]}`
	for _, q := range []string{
		"$..a", "$..b", "$..a..b", "$..a.b", "$.a..b", "$..a..a", "$..*",
		"$..a.*", "$..*.b", "$..missing", "$..b..a",
	} {
		assertAgainstOracle(t, q, doc)
	}
}

func TestWildcardOnObjectsAndArrays(t *testing.T) {
	// Idiomatic wildcard (§1.1): both object fields and array entries.
	assertAgainstOracle(t, "$.*", `{"a": 1, "b": [2], "c": {"d": 3}}`)
	assertAgainstOracle(t, "$.*", `[1, [2], {"d": 3}]`)
	assertAgainstOracle(t, "$.*.*", `[[1, 2], {"a": 3}]`)
}

func TestLeafMatching(t *testing.T) {
	// Leaves in objects (colon events), arrays (comma events), and the
	// first-array-item corner case of §3.4.
	assertAgainstOracle(t, "$.a", `{"a": 42}`)
	assertAgainstOracle(t, "$.a", `{"x": 1, "a": "leaf"}`)
	assertAgainstOracle(t, "$.a.*", `{"a": [1, 2, 3]}`)
	assertAgainstOracle(t, "$.a.*", `{"a": [1]}`)
	assertAgainstOracle(t, "$.a.*", `{"a": []}`)
	assertAgainstOracle(t, "$.a.*", `{"a": {}}`)
	assertAgainstOracle(t, "$.a.*", `{"a": [[1], 2]}`)
	assertAgainstOracle(t, "$.a.*", `{"a": [1, [2]]}`)
	assertAgainstOracle(t, "$.a.*", `{"a": {"b": 1, "c": [2]}}`)
	assertAgainstOracle(t, "$..b", `{"a": {"b": true}}`)
	assertAgainstOracle(t, "$.*", `[null, false, true]`)
}

func TestAtomicAndTrivialRoots(t *testing.T) {
	for _, doc := range []string{`42`, `"str"`, `true`, `null`, `{}`, `[]`} {
		for _, q := range []string{"$", "$.a", "$..a", "$.*", "$..*"} {
			assertAgainstOracle(t, q, doc)
		}
	}
}

func TestStringsWithStructuralChars(t *testing.T) {
	doc := `{"a": "{\"b\": [1,2,{]]}", "b": {"a": ",,::}{"}, "c:{": 3}`
	for _, q := range []string{"$.a", "$.b.a", "$..a", "$.*", `$['c:{']`} {
		assertAgainstOracle(t, q, doc)
	}
}

func TestEscapedKeys(t *testing.T) {
	doc := `{"k\"ey": 1, "plain": {"k\"ey": [2]}, "b\\": 3}`
	assertAgainstOracle(t, `$['k\"ey']`, doc)
	assertAgainstOracle(t, `$..['k\"ey']`, doc)
	assertAgainstOracle(t, `$['b\\\\']`, doc) // label b\\ raw: two backslashes in doc
}

func TestBlockBoundaryStraddling(t *testing.T) {
	pad := strings.Repeat(" ", 57)
	cases := []string{
		`{` + pad + `"a": {"b": 1}}`,
		`{"` + strings.Repeat("k", 70) + `": 1, "a": 2}`,
		`{"a":` + pad + `{"b":` + pad + `1}}`,
		`[` + pad + `1,` + pad + `2]`,
	}
	for _, doc := range cases {
		for _, q := range []string{"$.a", "$.a.b", "$..b", "$.*", "$..a"} {
			assertAgainstOracle(t, q, doc)
		}
	}
}

func TestHeadSkipQueries(t *testing.T) {
	doc := `{"pre": {"x": [{"a": 1}, {"a": {"a": 2}}]},
	        "a": {"deep": {"a": [3, 4]}},
	        "post": [{"b": {"a": "last"}}]}`
	assertAgainstOracle(t, "$..a", doc)
	assertAgainstOracle(t, "$..a..a", doc)
	assertAgainstOracle(t, "$..a.deep", doc)
	assertAgainstOracle(t, "$..b..a", doc)
	assertAgainstOracle(t, "$..deep..a", doc)
}

func TestHeadSkipFalsePositives(t *testing.T) {
	// Occurrences of the sought label inside strings and as values must
	// not fool the seeker.
	doc := `{"s": "\"a\": 1", "t": "a", "u": ["a", "\"a\":"], "a": 7}`
	assertAgainstOracle(t, "$..a", doc)
}

func TestNestedSameLabel(t *testing.T) {
	// A1/A2-style queries: nested identical labels grow the depth-stack.
	doc := `{"inner": {"inner": {"inner": {"type": {"qualType": "int"}}, "type": {"qualType": "long"}}}}`
	assertAgainstOracle(t, "$..inner..inner..type.qualType", doc)
	assertAgainstOracle(t, "$..inner..type.qualType", doc)
	assertAgainstOracle(t, "$..inner.inner", doc)
}

func TestIndexSelectors(t *testing.T) {
	doc := `{"a": [10, [20, 21], {"b": 30}], "c": [[0, 1], [2, 3]]}`
	for _, q := range []string{
		"$.a[0]", "$.a[1]", "$.a[2]", "$.a[3]", "$.a[1][0]", "$.a[2].b",
		"$.c.*[1]", "$..[0]", "$..[1]", "$[0]", "$.a[0].b",
	} {
		assertAgainstOracle(t, q, doc)
	}
}

func TestIndexSelectorsDeep(t *testing.T) {
	assertAgainstOracle(t, "$..b[0]", `{"b": [1, {"b": [2, 3]}]}`)
	assertAgainstOracle(t, "$[0][0][0]", `[[[5]]]`)
	assertAgainstOracle(t, "$[1]", `[{"x":1},{"y":2}]`)
}

func TestDeepDocuments(t *testing.T) {
	depth := 300
	doc := strings.Repeat(`{"a":`, depth) + `1` + strings.Repeat(`}`, depth)
	assertAgainstOracle(t, "$..a.a", doc)
	assertAgainstOracle(t, "$..a", doc)
	doc2 := strings.Repeat(`[`, depth) + `1` + strings.Repeat(`]`, depth)
	assertAgainstOracle(t, "$..*", doc2[:601+0])
}

func TestDepthStackSpill(t *testing.T) {
	// More nested state changes than the inline capacity: $..a.a pushes a
	// frame per level on a 200-deep a-chain.
	depth := 200
	doc := strings.Repeat(`{"a":`, depth) + `{}` + strings.Repeat(`}`, depth)
	assertAgainstOracle(t, "$..a.a", doc)
}

func TestWhitespaceHeavyDocuments(t *testing.T) {
	doc := "\n\t {\n \"a\" :\t[ 1 ,\n 2 , { \"b\" : 3 } ] \n}\t"
	for _, q := range []string{"$.a", "$.a.*", "$..b", "$.*", "$.a.*.b"} {
		assertAgainstOracle(t, q, doc)
	}
}

func TestDuplicateKeysDocumentedBehavior(t *testing.T) {
	// The paper's sibling skip assumes labels do not repeat among siblings
	// (§3.3). With duplicate keys, a unitary match stops at the first
	// occurrence; the oracle sees both. This pins the documented behavior.
	e, err := CompileQuery("$.a.b", Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Matches([]byte(`{"a": {"b": 1}, "a": {"b": 2}}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("unitary skip with duplicate keys: got %v, want exactly the first match", got)
	}
	// Without sibling skipping the engine behaves like the oracle.
	assertAgainstOracle(t, "$..a.b", `{"a": {"b": 1}, "x": {"a": {"b": 2}}}`)
}

func TestMalformedInputs(t *testing.T) {
	e, err := CompileQuery("$.a.b", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range []string{"", "   ", `{"a":`, `{"a": {`, `[1, 2`, `{`, `[`} {
		if _, err := e.Matches([]byte(doc)); err == nil {
			t.Errorf("Matches(%q) succeeded, want error", doc)
		}
	}
	// Head-skip engines must also survive truncation.
	h, err := CompileQuery("$..a", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range []string{`{"a": {"x": `, `{"a"`, `{"a":`} {
		if _, err := h.Matches([]byte(doc)); err == nil {
			t.Logf("head-skip tolerated truncated %q (allowed: scanning engine)", doc)
		}
	}
}

func TestCountAndRunAgree(t *testing.T) {
	doc := `{"a": [1, 2, {"a": 3}]}`
	e, err := CompileQuery("$..a.*", Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := e.Count([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.Matches([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(m) {
		t.Fatalf("Count=%d, len(Matches)=%d", n, len(m))
	}
}

func TestEngineReuseAcrossDocuments(t *testing.T) {
	e, err := CompileQuery("$..a", Options{})
	if err != nil {
		t.Fatal(err)
	}
	docs := []string{`{"a":1}`, `{"b":{"a":2}}`, `[]`, `{"a":{"a":3}}`}
	wants := []int{1, 1, 0, 2}
	for i, doc := range docs {
		n, err := e.Count([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		if n != wants[i] {
			t.Errorf("doc %d: count %d, want %d", i, n, wants[i])
		}
	}
}

// ---------------------------------------------------------------------------
// Randomized differential testing
// ---------------------------------------------------------------------------

// docGen generates random valid JSON without duplicate keys per object.
type docGen struct {
	r    *rand.Rand
	keys []string
	buf  strings.Builder
}

func (g *docGen) ws() {
	for g.r.Intn(4) == 0 {
		g.buf.WriteByte(" \t\n"[g.r.Intn(3)])
	}
}

func (g *docGen) value(depth int) {
	g.ws()
	kind := g.r.Intn(10)
	if depth <= 0 && kind < 5 {
		kind += 5
	}
	switch {
	case kind < 3: // object
		g.buf.WriteByte('{')
		perm := g.r.Perm(len(g.keys))
		n := g.r.Intn(len(g.keys) + 1)
		for i := 0; i < n; i++ {
			if i > 0 {
				g.buf.WriteByte(',')
			}
			g.ws()
			fmt.Fprintf(&g.buf, "%q:", g.keys[perm[i]])
			g.value(depth - 1)
		}
		g.ws()
		g.buf.WriteByte('}')
	case kind < 5: // array
		g.buf.WriteByte('[')
		n := g.r.Intn(4)
		for i := 0; i < n; i++ {
			if i > 0 {
				g.buf.WriteByte(',')
			}
			g.value(depth - 1)
		}
		g.ws()
		g.buf.WriteByte(']')
	case kind < 7: // number
		fmt.Fprintf(&g.buf, "%d", g.r.Intn(1000)-500)
	case kind < 9: // string, sometimes with hostile (pre-escaped) content
		s := []string{`plain`, `{\"a\":1}`, `}]`, `a\"b`, `\\`, `,,::`, `\"a\":`, ``}[g.r.Intn(8)]
		g.buf.WriteString(`"` + s + `"`)
	default:
		g.buf.WriteString([]string{"true", "false", "null"}[g.r.Intn(3)])
	}
	g.ws()
}

func randomQuery(r *rand.Rand, labels []string) string {
	var sb strings.Builder
	sb.WriteString("$")
	steps := 1 + r.Intn(4)
	for i := 0; i < steps; i++ {
		if r.Intn(3) == 0 {
			sb.WriteString("..")
		} else {
			sb.WriteString(".")
		}
		switch r.Intn(5) {
		case 0:
			sb.WriteString("*")
		default:
			sb.WriteString(labels[r.Intn(len(labels))])
		}
	}
	return sb.String()
}

func TestRandomizedDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	keys := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 700; trial++ {
		g := &docGen{r: r, keys: keys}
		g.value(4)
		doc := g.buf.String()
		query := randomQuery(r, keys)
		root, err := dom.Parse([]byte(doc))
		if err != nil {
			t.Fatalf("generator produced invalid JSON %q: %v", doc, err)
		}
		q, err := jsonpath.Parse(query)
		if err != nil {
			t.Fatal(err)
		}
		want := dom.MatchOffsets(root, q)
		for name, opts := range allOptionSets {
			got := engineOffsets(t, query, doc, opts)
			if !equalInts(got, want) {
				t.Fatalf("trial %d [%s]: %s on %s\n  engine: %v\n  oracle: %v",
					trial, name, query, doc, got, want)
			}
		}
	}
}

func TestRandomizedIndexDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	keys := []string{"a", "b"}
	for trial := 0; trial < 300; trial++ {
		g := &docGen{r: r, keys: keys}
		g.value(4)
		doc := g.buf.String()
		var sb strings.Builder
		sb.WriteString("$")
		for i, steps := 0, 1+r.Intn(3); i < steps; i++ {
			switch r.Intn(4) {
			case 0:
				sb.WriteString(fmt.Sprintf("[%d]", r.Intn(3)))
			case 1:
				sb.WriteString(fmt.Sprintf("..[%d]", r.Intn(3)))
			case 2:
				sb.WriteString(".*")
			default:
				sb.WriteString("." + keys[r.Intn(len(keys))])
			}
		}
		query := sb.String()
		root := dom.MustParse([]byte(doc))
		want := dom.MatchOffsets(root, jsonpath.MustParse(query))
		for name, opts := range allOptionSets {
			got := engineOffsets(t, query, doc, opts)
			if !equalInts(got, want) {
				t.Fatalf("trial %d [%s]: %s on %s\n  engine: %v\n  oracle: %v",
					trial, name, query, doc, got, want)
			}
		}
	}
}

func TestAutomatonAccessor(t *testing.T) {
	e, err := CompileQuery("$.a", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Automaton() == nil || e.Automaton().Query().String() != "$.a" {
		t.Fatal("Automaton accessor broken")
	}
}

func TestCompileQueryErrors(t *testing.T) {
	if _, err := CompileQuery("not a query", Options{}); err == nil {
		t.Fatal("bad syntax accepted")
	}
	if _, err := CompileQuery("$..a"+strings.Repeat(".*", 16), Options{}); err != automaton.ErrTooLarge {
		t.Fatalf("blowup query error = %v", err)
	}
}

func TestUnionSelectors(t *testing.T) {
	doc := `{"a": {"x": 1}, "b": [10, 20, 30], "c": 3, "d": {"a": 4, "b": 5}}`
	for _, q := range []string{
		"$['a','b']", "$['a','c']", "$..['a','b']", "$.b[0,2]",
		"$['a','d'].a", "$..['a','x']", "$['b',0]", "$.b[0,1,2]",
	} {
		assertAgainstOracle(t, q, doc)
	}
}

func TestUnionRandomDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(211))
	keys := []string{"a", "b", "c"}
	for trial := 0; trial < 300; trial++ {
		g := &docGen{r: r, keys: keys}
		g.value(4)
		doc := g.buf.String()
		var sb strings.Builder
		sb.WriteString("$")
		for i, steps := 0, 1+r.Intn(3); i < steps; i++ {
			if r.Intn(4) == 0 {
				sb.WriteString("..")
			}
			switch r.Intn(3) {
			case 0:
				sb.WriteString(fmt.Sprintf("['%s','%s']",
					keys[r.Intn(len(keys))], keys[r.Intn(len(keys))]))
			case 1:
				sb.WriteString(fmt.Sprintf("['%s',%d]", keys[r.Intn(len(keys))], r.Intn(3)))
			default:
				sb.WriteString(fmt.Sprintf("[%d,%d]", r.Intn(3), r.Intn(3)))
			}
		}
		query := sb.String()
		root := dom.MustParse([]byte(doc))
		want := dom.MatchOffsets(root, jsonpath.MustParse(query))
		for name, opts := range allOptionSets {
			got := engineOffsets(t, query, doc, opts)
			if !equalInts(got, want) {
				t.Fatalf("trial %d [%s]: %s on %s\n  engine: %v\n  oracle: %v",
					trial, name, query, doc, got, want)
			}
		}
	}
}

func TestTailSkipSpecific(t *testing.T) {
	// Focused scenarios for the §4.5 tail-skip extension: waiting states at
	// depth, boundaries crossing blocks, labels inside hostile strings.
	docs := []string{
		`{"a": {"x": {"b": 1}, "b": 2}, "b": 3}`,
		`{"a": [{"b": 1}, {"c": {"b": 2}}], "z": {"b": "x"}}`,
		`{"a": {"s": "\"b\": fake", "deep": {"deep": {"b": [1, 2]}}}}`,
		`{"a": {"b": {"a": {"b": 42}}}}`,
		`{"a": {` + strings.Repeat(`"f": [0], `, 30) + `"b": 9}}`,
	}
	queries := []string{"$.a..b", "$..a..b", "$.a..b..a", "$..a..b.*", "$.*..b"}
	for _, doc := range docs {
		for _, q := range queries {
			assertAgainstOracle(t, q, doc)
		}
	}
}

func TestTailSkipMatchesDefaultOnGenerated(t *testing.T) {
	// Engine with tail-skip must agree with the default engine match for
	// match on sizeable generated data.
	docs := [][]byte{}
	for _, gen := range []string{"ast", "crossref", "twitter_small"} {
		data, err := jsongenGenerate(gen)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, data)
	}
	for _, q := range []string{"$..inner..inner..type.qualType", "$..author..affiliation..name", "$..retweeted_status..hashtags..text"} {
		def, err := CompileQuery(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		tail, err := CompileQuery(q, Options{EnableTailSkip: true})
		if err != nil {
			t.Fatal(err)
		}
		for i, data := range docs {
			a, err := def.Matches(data)
			if err != nil {
				t.Fatal(err)
			}
			b, err := tail.Matches(data)
			if err != nil {
				t.Fatal(err)
			}
			if !equalInts(a, b) {
				t.Fatalf("%s on generated doc %d: default %d matches, tail-skip %d", q, i, len(a), len(b))
			}
		}
	}
}

func TestSliceSelectors(t *testing.T) {
	doc := `{"a": [10, [20, 21], {"b": 30}, 40, 50], "c": [[0, 1, 2], [3, 4, 5]]}`
	for _, q := range []string{
		"$.a[1:3]", "$.a[2:]", "$.a[:2]", "$.a[:]", "$.a[3:100]",
		"$.c.*[1:]", "$..[1:3]", "$[0:]", "$.a[0,3:5]", "$.a[1:2].b",
	} {
		assertAgainstOracle(t, q, doc)
	}
}

func TestRandomizedSliceDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(607))
	keys := []string{"a", "b"}
	for trial := 0; trial < 300; trial++ {
		g := &docGen{r: r, keys: keys}
		g.value(4)
		doc := g.buf.String()
		var sb strings.Builder
		sb.WriteString("$")
		for i, steps := 0, 1+r.Intn(3); i < steps; i++ {
			desc := ""
			if r.Intn(4) == 0 {
				desc = ".."
			}
			switch r.Intn(4) {
			case 0:
				lo := r.Intn(3)
				sb.WriteString(fmt.Sprintf("%s[%d:%d]", desc, lo, lo+1+r.Intn(3)))
			case 1:
				sb.WriteString(fmt.Sprintf("%s[%d:]", desc, r.Intn(3)))
			case 2:
				sb.WriteString(fmt.Sprintf("%s[:%d]", desc, 1+r.Intn(3)))
			default:
				if desc == "" {
					desc = "."
				}
				sb.WriteString(desc + keys[r.Intn(len(keys))])
			}
		}
		query := sb.String()
		root := dom.MustParse([]byte(doc))
		want := dom.MatchOffsets(root, jsonpath.MustParse(query))
		for name, opts := range allOptionSets {
			got := engineOffsets(t, query, doc, opts)
			if !equalInts(got, want) {
				t.Fatalf("trial %d [%s]: %s on %s\n  engine: %v\n  oracle: %v",
					trial, name, query, doc, got, want)
			}
		}
	}
}
