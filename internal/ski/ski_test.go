package ski

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"rsonpath/internal/dom"
	"rsonpath/internal/jsonpath"
)

// skiOracle evaluates a query over the DOM with JSONSki's restricted
// wildcard semantics (array entries only) — the oracle for this baseline.
func skiOracle(root *dom.Node, q *jsonpath.Query) []int {
	current := []*dom.Node{root}
	for si := range q.Selectors {
		sel := &q.Selectors[si]
		var next []*dom.Node
		for _, n := range current {
			if sel.Wildcard {
				next = append(next, n.Elems...)
				continue
			}
			for i := range n.Members {
				if string(n.Members[i].Key) == string(sel.Labels[0]) {
					next = append(next, n.Members[i].Value)
					// JSONSki assumes unique sibling keys: first wins.
					break
				}
			}
		}
		current = next
	}
	out := make([]int, len(current))
	for i, n := range current {
		out[i] = n.Start
	}
	return out
}

func assertSkiOracle(t *testing.T, query, doc string) {
	t.Helper()
	root, err := dom.Parse([]byte(doc))
	if err != nil {
		t.Fatalf("oracle rejects %q: %v", doc, err)
	}
	want := skiOracle(root, jsonpath.MustParse(query))
	e, err := CompileQuery(query)
	if err != nil {
		t.Fatalf("CompileQuery(%q): %v", query, err)
	}
	got, err := e.Matches([]byte(doc))
	if err != nil {
		t.Fatalf("Matches(%q, %q): %v", query, doc, err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("%s on %s:\n  ski:    %v\n  oracle: %v", query, doc, got, want)
	}
}

func TestSkiBasics(t *testing.T) {
	doc := `{"products": [{"id": 1, "chapters": [10, 20]}, {"id": 2}], "n": 3}`
	for _, q := range []string{
		"$", "$.products", "$.products.*", "$.products.*.id",
		"$.products.*.chapters.*", "$.n", "$.missing", "$.products.*.missing",
	} {
		assertSkiOracle(t, q, doc)
	}
}

func TestSkiWildcardSkipsObjects(t *testing.T) {
	// JSONSki's wildcard does not step into object fields (§1.1).
	doc := `{"a": {"x": 1, "y": 2}, "b": [3, 4]}`
	assertSkiOracle(t, "$.a.*", doc) // nothing: object under wildcard
	assertSkiOracle(t, "$.b.*", doc) // 3, 4
	assertSkiOracle(t, "$.*", doc)   // nothing: root is an object
}

func TestSkiRejectsDescendantsAndIndexes(t *testing.T) {
	for _, q := range []string{"$..a", "$.a..b", "$[0]", "$.a[1]"} {
		if _, err := CompileQuery(q); err != ErrUnsupported {
			t.Errorf("CompileQuery(%q) err = %v, want ErrUnsupported", q, err)
		}
	}
	if _, err := CompileQuery("$$$"); err == nil {
		t.Error("syntax error accepted")
	}
}

func TestSkiLabelIntoArrayAndScalars(t *testing.T) {
	doc := `{"a": [1, 2], "b": 3, "c": "str"}`
	assertSkiOracle(t, "$.a.x", doc)
	assertSkiOracle(t, "$.b.x", doc)
	assertSkiOracle(t, "$.c.x", doc)
}

func TestSkiSkipsHostileStrings(t *testing.T) {
	doc := `{"skip": "{\"a\": [}]", "a": {"hit": "}"}, "z": ["[", "]"]}`
	assertSkiOracle(t, "$.a.hit", doc)
	assertSkiOracle(t, "$.z.*", doc)
}

func TestSkiNestedWildcards(t *testing.T) {
	doc := `[[1, [2, 3]], [{"a": 4}], []]`
	assertSkiOracle(t, "$.*", doc)
	assertSkiOracle(t, "$.*.*", doc)
	assertSkiOracle(t, "$.*.*.*", doc)
}

func TestSkiSiblingSkipAfterMatch(t *testing.T) {
	// After the first "a" matches, remaining members are fast-forwarded.
	// With duplicate keys, only the first occurrence is seen (documented
	// JSONSki assumption, shared with the main engine's unitary skip).
	e, err := CompileQuery("$.a")
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Matches([]byte(`{"a": 1, "a": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("matches %v, want one", got)
	}
}

func TestSkiMalformed(t *testing.T) {
	e, err := CompileQuery("$.a.b")
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range []string{``, `{`, `{"a": {`, `{"a"`, `{"a": "unterminated`} {
		if _, err := e.Matches([]byte(doc)); err == nil {
			t.Errorf("Matches(%q) succeeded, want error", doc)
		}
	}
}

func TestSkiRandomDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	keys := []string{"a", "b", "c"}
	for trial := 0; trial < 400; trial++ {
		doc := randomDoc(r, keys, 4)
		root, err := dom.Parse([]byte(doc))
		if err != nil {
			t.Fatalf("bad generated doc %q: %v", doc, err)
		}
		var sb strings.Builder
		sb.WriteString("$")
		for i, steps := 0, 1+r.Intn(4); i < steps; i++ {
			if r.Intn(4) == 0 {
				sb.WriteString(".*")
			} else {
				sb.WriteString("." + keys[r.Intn(len(keys))])
			}
		}
		query := sb.String()
		want := skiOracle(root, jsonpath.MustParse(query))
		e, err := CompileQuery(query)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Matches([]byte(doc))
		if err != nil {
			t.Fatalf("trial %d: %s on %s: %v", trial, query, doc, err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d: %s on %s\n  ski:    %v\n  oracle: %v", trial, query, doc, got, want)
		}
	}
}

// randomDoc generates valid JSON with unique keys per object.
func randomDoc(r *rand.Rand, keys []string, depth int) string {
	var b strings.Builder
	var gen func(d int)
	gen = func(d int) {
		kind := r.Intn(8)
		if d <= 0 && kind < 4 {
			kind += 4
		}
		switch {
		case kind < 2:
			b.WriteByte('{')
			perm := r.Perm(len(keys))
			n := r.Intn(len(keys) + 1)
			for i := 0; i < n; i++ {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%q:", keys[perm[i]])
				gen(d - 1)
			}
			b.WriteByte('}')
		case kind < 4:
			b.WriteByte('[')
			n := r.Intn(4)
			for i := 0; i < n; i++ {
				if i > 0 {
					b.WriteByte(',')
				}
				gen(d - 1)
			}
			b.WriteByte(']')
		case kind < 6:
			fmt.Fprintf(&b, "%d", r.Intn(200)-100)
		case kind < 7:
			b.WriteString(`"s{r\"i]ng,"`)
		default:
			b.WriteString("true")
		}
	}
	gen(depth)
	return b.String()
}
