// Package ski is the JSONSki-analogue baseline of §5.2: a reimplementation
// of the published JSONSki algorithm (Jiang & Zhao, ASPLOS 2022) on the
// same SWAR substrate as the main engine.
//
// Faithfully to the original, it supports only child label selectors and
// wildcard selectors, with JSONSki's restricted wildcard semantics: a
// wildcard steps into every entry of an array but not into the fields of an
// object (§1.1). Descendant and index selectors are rejected at
// compilation. Irrelevant values are fast-forwarded with the bit-parallel
// bracket counting of classifier.SkipToClose, and once a label step has
// matched, the remaining siblings are fast-forwarded to the enclosing
// closer — the skipping repertoire the paper credits JSONSki with.
//
// Byte access goes through an input.Cursor and every fast-forward scans
// strictly forward (sibling skipping resumes from the end of the matched
// member, not from the object's opening), so the same code serves both
// in-memory documents and window-bounded streaming inputs.
package ski

import (
	"errors"
	"fmt"

	"rsonpath/internal/classifier"
	"rsonpath/internal/errs"
	"rsonpath/internal/input"
	"rsonpath/internal/jsonpath"
)

// ErrUnsupported is returned for queries outside JSONSki's fragment.
var ErrUnsupported = errors.New("ski: query uses selectors JSONSki does not support (descendant, index, slice, or union)")

// ErrMalformed is returned for inputs the scanner cannot balance.
var ErrMalformed = errors.New("ski: malformed JSON input")

// step is one query step: a concrete label or an (array-only) wildcard.
type step struct {
	label    []byte
	wildcard bool
}

// Engine executes one compiled query. Safe for concurrent use.
type Engine struct {
	steps []step
}

// New compiles q, rejecting selectors outside JSONSki's fragment
// (descendants, indices, and unions).
func New(q *jsonpath.Query) (*Engine, error) {
	e := &Engine{}
	for i := range q.Selectors {
		sel := &q.Selectors[i]
		if sel.Descendant || sel.SelectsIndices() || len(sel.Labels) > 1 {
			return nil, ErrUnsupported
		}
		st := step{wildcard: sel.Wildcard}
		if !sel.Wildcard {
			st.label = sel.Labels[0]
		}
		e.steps = append(e.steps, st)
	}
	return e, nil
}

// CompileQuery parses and compiles a query string.
func CompileQuery(query string) (*Engine, error) {
	q, err := jsonpath.Parse(query)
	if err != nil {
		return nil, err
	}
	return New(q)
}

// Count runs the query and returns the number of matches.
func (e *Engine) Count(data []byte) (int, error) {
	n := 0
	err := e.Run(data, func(int) { n++ })
	return n, err
}

// Matches runs the query and returns match offsets in document order.
func (e *Engine) Matches(data []byte) ([]int, error) {
	var out []int
	err := e.Run(data, func(pos int) { out = append(out, pos) })
	return out, err
}

// Run streams an in-memory document, invoking emit for every match.
func (e *Engine) Run(data []byte, emit func(pos int)) error {
	return e.RunInput(input.NewBytes(data), emit)
}

// RunInput is Run over any input source; over a window-bounded input the
// baseline's memory stays bounded by the window.
//
// Note on depth limits: ski's recursion is bounded by the query length, not
// the document depth (irrelevant subtrees are fast-forwarded with the
// bit-parallel depth scan, which uses O(1) memory), so the engine is exempt
// from the depth limit the stack-bearing engines enforce.
func (e *Engine) RunInput(in input.Input, emit func(pos int)) error {
	return input.Guard(func() error {
		r := &run{e: e, cur: input.NewCursor(in), emit: emit}
		pos := r.skipWS(0)
		c, ok := r.cur.ByteAt(pos)
		if !ok {
			return r.errf(0, "empty input")
		}
		if c != '{' && c != '[' {
			// Atomic root: validate the lone scalar and reject trailing
			// bytes; no step can descend into it.
			end, bad := input.AtomSpan(in, pos)
			r.cur.Invalidate()
			if bad != "" {
				return r.errf(end, bad)
			}
			if p, found := input.TrailingContent(in, end); found {
				return r.errf(p, "trailing content")
			}
			if len(e.steps) == 0 {
				emit(pos)
			}
			return nil
		}
		if len(e.steps) == 0 {
			emit(pos)
			end, err := r.skipValue(pos)
			if err != nil {
				return err
			}
			return r.checkTrailing(end)
		}
		end, err := r.value(pos, 0)
		if err != nil {
			return err
		}
		return r.checkTrailing(end)
	})
}

// checkTrailing rejects non-whitespace bytes after the root value.
func (r *run) checkTrailing(end int) error {
	r.cur.Invalidate()
	if p, found := input.TrailingContent(r.cur.Input(), end); found {
		return r.errf(p, "trailing content")
	}
	return nil
}

type run struct {
	e    *Engine
	cur  input.Cursor
	emit func(int)
}

func (r *run) errf(pos int, format string, args ...interface{}) error {
	return &errs.Malformed{Sentinel: ErrMalformed, Offset: pos, Kind: fmt.Sprintf(format, args...)}
}

// value processes the value at pos against steps[k:] and returns the offset
// just past the value. k < len(steps): the caller reports final matches.
func (r *run) value(pos, k int) (end int, err error) {
	st := r.e.steps[k]
	switch c, _ := r.cur.ByteAt(pos); c {
	case '{':
		if st.wildcard {
			// JSONSki wildcard semantics: objects are not traversed.
			return r.skipValue(pos)
		}
		return r.object(pos, k)
	case '[':
		if !st.wildcard {
			// Labels cannot match array entries.
			return r.skipValue(pos)
		}
		return r.array(pos, k)
	default:
		return r.skipValue(pos)
	}
}

// dispatch routes a child value: emit it when the query is exhausted,
// recurse otherwise.
func (r *run) dispatch(pos, k int) (end int, err error) {
	if k == len(r.e.steps) {
		r.emit(pos)
		return r.skipValue(pos)
	}
	return r.value(pos, k)
}

// object scans the members of the object at pos, descending into the one
// whose key equals the step's label and fast-forwarding everything else.
func (r *run) object(pos, k int) (end int, err error) {
	label := r.e.steps[k].label
	i := r.skipWS(pos + 1)
	if b, ok := r.cur.ByteAt(i); ok && b == '}' {
		return i + 1, nil
	}
	for {
		if b, ok := r.cur.ByteAt(i); !ok || b != '"' {
			return 0, r.errf(i, "expected object key")
		}
		key, j, err := r.scanString(i)
		if err != nil {
			return 0, err
		}
		// Compare before the cursor moves again: the key slice aliases the
		// input's window.
		match := bytesEqual(key, label)
		j = r.skipWS(j)
		if b, ok := r.cur.ByteAt(j); !ok || b != ':' {
			return 0, r.errf(j, "expected ':'")
		}
		v := r.skipWS(j + 1)
		if _, ok := r.cur.ByteAt(v); !ok {
			return 0, r.errf(v, "missing value")
		}
		if match {
			after, err := r.dispatch(v, k+1)
			if err != nil {
				return 0, err
			}
			// Keys are assumed unique among siblings: fast-forward to the
			// object's closer (JSONSki's sibling skipping). The depth scan
			// starts just past the matched member — one unmatched opening
			// brace up — so it only ever moves forward.
			close, ok := r.scanToClose(after, '{')
			if !ok {
				return 0, r.errf(pos, "unterminated object")
			}
			return close + 1, nil
		}
		i, err = r.skipValue(v)
		if err != nil {
			return 0, err
		}
		i = r.skipWS(i)
		b, ok := r.cur.ByteAt(i)
		if !ok {
			return 0, r.errf(i, "unterminated object")
		}
		switch b {
		case ',':
			i = r.skipWS(i + 1)
		case '}':
			return i + 1, nil
		default:
			return 0, r.errf(i, "expected ',' or '}'")
		}
	}
}

// array scans the entries of the array at pos, descending into each
// (wildcard step).
func (r *run) array(pos, k int) (end int, err error) {
	i := r.skipWS(pos + 1)
	if b, ok := r.cur.ByteAt(i); ok && b == ']' {
		return i + 1, nil
	}
	for {
		if _, ok := r.cur.ByteAt(i); !ok {
			return 0, r.errf(i, "unterminated array")
		}
		i, err = r.dispatch(i, k+1)
		if err != nil {
			return 0, err
		}
		i = r.skipWS(i)
		b, ok := r.cur.ByteAt(i)
		if !ok {
			return 0, r.errf(i, "unterminated array")
		}
		switch b {
		case ',':
			i = r.skipWS(i + 1)
		case ']':
			return i + 1, nil
		default:
			return 0, r.errf(i, "expected ',' or ']'")
		}
	}
}

// skipValue fast-forwards over the value at pos and returns the offset just
// past it; composite values use the bit-parallel depth scan.
func (r *run) skipValue(pos int) (end int, err error) {
	switch c, _ := r.cur.ByteAt(pos); {
	case c == '{' || c == '[':
		close, ok := r.scanToClose(pos+1, c)
		if !ok {
			return 0, r.errf(pos, "unterminated value")
		}
		return close + 1, nil
	case c == '"':
		return r.skipString(pos)
	default:
		i := pos
		for {
			b, ok := r.cur.ByteAt(i)
			if !ok {
				return i, nil
			}
			switch b {
			case ',', '}', ']', ' ', '\t', '\n', '\r':
				return i, nil
			}
			i++
		}
	}
}

// scanToClose runs the depth classifier from absolute offset from (outside
// any string, relative depth 1) to the matching closer of an open character
// of the given kind. The classifier stream shares the cursor's input, so
// the cursor's cache is invalidated afterwards.
func (r *run) scanToClose(from int, open byte) (closePos int, ok bool) {
	s := classifier.NewStreamAt(r.cur.Input(), from)
	p, ok := classifier.SkipToClose(s, from, open)
	r.cur.Invalidate()
	return p, ok
}

// scanString consumes the string starting at the quote at pos, returning
// its raw contents and the offset just past the closing quote. The slice
// aliases the input's window and is valid only until the cursor moves.
func (r *run) scanString(pos int) (raw []byte, end int, err error) {
	i := pos + 1
	for {
		b, ok := r.cur.ByteAt(i)
		if !ok {
			return nil, 0, errUnterminatedString(pos)
		}
		switch b {
		case '"':
			return r.cur.Slice(pos+1, i), i + 1, nil
		case '\\':
			i += 2
		default:
			i++
		}
	}
}

// errUnterminatedString builds the typed unterminated-string error shared by
// scanString and skipString.
func errUnterminatedString(pos int) error {
	return &errs.Malformed{Sentinel: ErrMalformed, Offset: pos, Kind: "unterminated string"}
}

// skipString consumes the string starting at the quote at pos without
// materializing its contents, so value strings longer than a streaming
// window pass through unhindered.
func (r *run) skipString(pos int) (end int, err error) {
	i := pos + 1
	for {
		b, ok := r.cur.ByteAt(i)
		if !ok {
			return 0, errUnterminatedString(pos)
		}
		switch b {
		case '"':
			return i + 1, nil
		case '\\':
			i += 2
		default:
			i++
		}
	}
}

func (r *run) skipWS(i int) int {
	for {
		b, ok := r.cur.ByteAt(i)
		if !ok {
			return i
		}
		switch b {
		case ' ', '\t', '\n', '\r':
			i++
		default:
			return i
		}
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
