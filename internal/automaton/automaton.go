// Package automaton compiles JSONPath queries into the minimal
// deterministic query automata of §3.1, annotated with the state classes
// that drive skipping (§3.3): accepting, rejecting (trash), internal,
// unitary, and waiting states.
//
// A query automaton runs on the word of labels along a root-to-node path.
// Array entries carry artificial labels: the entry index when the query
// uses index selectors, and otherwise a symbol distinct from every property
// name, falling under the fallback transition.
//
// Construction pipeline: the query becomes an NFA whose states are the
// selectors (descendant selectors are recursive, i.e. self-looping); the
// NFA is determinized by subset construction with the greedy-match pruning
// the paper derives from node semantics (§3.1: "once we reach a given
// recursive state in the NFA, we can forget about all previous states");
// the DFA is then minimized with Moore's algorithm and annotated.
package automaton

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"rsonpath/internal/jsonpath"
)

// StateID identifies a DFA state. The rejecting trash state is always
// present; use DFA.Trash to find it.
type StateID int

// LabelTransition is a transition taken on a concrete object-property name.
type LabelTransition struct {
	Label  []byte
	Target StateID
	// Pattern is the label in its quoted spelling ("label"), precomputed at
	// compile time for the memmem-based label seekers: runs reuse it instead
	// of rebuilding the search pattern per run or per record.
	Pattern []byte
}

// IndexTransition is a transition taken on a range of array indices
// covering Lo <= index < Hi (Hi < 0 means unbounded). Index and slice
// selectors partition the naturals into finitely many such ranges
// (extension; see DESIGN.md).
type IndexTransition struct {
	Lo     int
	Hi     int
	Target StateID
}

// Contains reports whether the range covers idx.
func (t IndexTransition) Contains(idx int) bool {
	return idx >= t.Lo && (t.Hi < 0 || idx < t.Hi)
}

// State is one annotated DFA state. Transitions listed explicitly override
// the fallback; explicit transitions equal to the fallback are removed
// during normalization.
type State struct {
	Labels   []LabelTransition
	Indexes  []IndexTransition
	Fallback StateID

	// Accepting states report a match (§3.1).
	Accepting bool
	// Rejecting states cannot reach an accepting state: the trash state
	// and anything trapped with it. Skipping children keys on this (§3.3).
	Rejecting bool
	// Internal states have no transition into an accepting state, so
	// leaves cannot match: skipping leaves keys on this (§3.3).
	Internal bool
	// Unitary states have exactly one concrete-label transition and a
	// rejecting fallback: skipping siblings keys on this (§3.3).
	Unitary bool
	// Waiting states have exactly one concrete-label transition and a
	// self-looping fallback: skipping to a label keys on this (§3.3).
	Waiting bool

	// CanAcceptInObject: some object child (any property) can be accepted
	// in one step — used to toggle colons (§3.4).
	CanAcceptInObject bool
	// CanAcceptInArray: some array entry can be accepted in one step —
	// used to toggle commas (§3.4).
	CanAcceptInArray bool
	// NeedsIndexInArray: the state has index transitions, so array entries
	// must be counted even if nothing accepts in one step (extension).
	NeedsIndexInArray bool
}

// DFA is a compiled, minimized, annotated query automaton.
type DFA struct {
	States  []State
	Initial StateID
	Trash   StateID
	query   *jsonpath.Query
}

// Query returns the source query.
func (d *DFA) Query() *jsonpath.Query { return d.query }

// Transition returns the state reached from s on an object property name.
func (d *DFA) Transition(s StateID, label []byte) StateID {
	st := &d.States[s]
	for i := range st.Labels {
		if bytesEqual(st.Labels[i].Label, label) {
			return st.Labels[i].Target
		}
	}
	return st.Fallback
}

// TransitionIndex returns the state reached from s on an array entry index.
func (d *DFA) TransitionIndex(s StateID, idx int) StateID {
	st := &d.States[s]
	for i := range st.Indexes {
		if st.Indexes[i].Contains(idx) {
			return st.Indexes[i].Target
		}
	}
	return st.Fallback
}

// TransitionFallback returns the fallback target of s (array entries in
// index-free queries always take it).
func (d *DFA) TransitionFallback(s StateID) StateID {
	return d.States[s].Fallback
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MaxStates bounds the determinized automaton. Mixing descendants and
// wildcards can blow up exponentially (§3.1's ..a.*.*…* example); the cap
// turns that into an error instead of an OOM.
const MaxStates = 1 << 12

// ErrTooLarge is returned when determinization exceeds MaxStates.
var ErrTooLarge = errors.New("automaton: query automaton exceeds state limit")

// Options tunes compilation; the zero value is the paper's configuration.
type Options struct {
	// DisableGreedyPruning turns off the greedy-match subset pruning, for
	// the ablation study. The resulting DFA is equivalent but may be
	// larger before minimization.
	DisableGreedyPruning bool
}

// Compile builds the minimal annotated DFA for q.
func Compile(q *jsonpath.Query, opts Options) (*DFA, error) {
	n := nfaOf(q)
	raw, err := determinize(n, !opts.DisableGreedyPruning)
	if err != nil {
		return nil, err
	}
	raw = minimize(raw)
	d := buildStates(raw)
	d.annotate()
	d.query = q
	return d, nil
}

// MustCompile is Compile that panics on error.
func MustCompile(q *jsonpath.Query) *DFA {
	d, err := Compile(q, Options{})
	if err != nil {
		panic(err)
	}
	return d
}

// ---------------------------------------------------------------------------
// NFA
// ---------------------------------------------------------------------------

// symbol is an element of the finite alphabet used for determinization:
// one id per concrete label in the query, one per concrete index, and a
// final fallback symbol standing for every other label or index.
type symbol int

// interval is a maximal range of array indices on which every selector of
// the query is constant: [lo, hi), hi < 0 meaning unbounded.
type interval struct {
	lo, hi int
}

// nfa represents the query as the selector-chain NFA of §3.1. State i
// means "the first i selectors are matched"; state len(selectors) accepts.
type nfa struct {
	query     *jsonpath.Query
	labels    [][]byte   // symbol id -> label bytes
	intervals []interval // symbol id - len(labels) -> index range
}

func nfaOf(q *jsonpath.Query) *nfa {
	n := &nfa{query: q}
	seenL := map[string]bool{}
	breaks := map[int]bool{}
	hasIndexKind := false
	for i := range q.Selectors {
		sel := &q.Selectors[i]
		for _, l := range sel.Labels {
			if !seenL[string(l)] {
				seenL[string(l)] = true
				n.labels = append(n.labels, l)
			}
		}
		for _, idx := range sel.Indices {
			hasIndexKind = true
			breaks[idx] = true
			breaks[idx+1] = true
		}
		for _, sl := range sel.Slices {
			hasIndexKind = true
			breaks[sl.Start] = true
			if sl.End >= 0 {
				breaks[sl.End] = true
			}
		}
	}
	if !hasIndexKind {
		return n // arrays fall under the generic fallback symbol
	}
	// Partition the naturals at the breakpoints: every selector predicate
	// is constant on each resulting interval, so one symbol per interval
	// suffices for determinization.
	breaks[0] = true
	points := make([]int, 0, len(breaks))
	for b := range breaks {
		points = append(points, b)
	}
	sort.Ints(points)
	for i, lo := range points {
		hi := -1
		if i+1 < len(points) {
			hi = points[i+1]
		}
		n.intervals = append(n.intervals, interval{lo: lo, hi: hi})
	}
	return n
}

func (n *nfa) alphabetSize() int { return len(n.labels) + len(n.intervals) + 1 }

func (n *nfa) fallbackSymbol() symbol { return symbol(len(n.labels) + len(n.intervals)) }

// matches reports whether selector sel advances on symbol a. The fallback
// symbol (any label or index not named by the query) matches only
// wildcards.
func (n *nfa) matches(sel *jsonpath.Selector, a symbol) bool {
	if sel.Wildcard {
		return true
	}
	if int(a) < len(n.labels) {
		return sel.MatchesLabel(n.labels[a])
	}
	if i := int(a) - len(n.labels); i < len(n.intervals) {
		// The selector is constant on the interval: its low end decides.
		return sel.MatchesIndex(n.intervals[i].lo)
	}
	return false
}

// recursive reports whether NFA state i self-loops (descendant selector).
func (n *nfa) recursive(i int) bool {
	return i < len(n.query.Selectors) && n.query.Selectors[i].Descendant
}

// accepting reports whether NFA state i accepts.
func (n *nfa) accepting(i int) bool { return i == len(n.query.Selectors) }

// stateSet is a sorted set of NFA states, usable as a map key via its
// string image.
type stateSet []int

func (s stateSet) key() string {
	var b strings.Builder
	for _, v := range s {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

// move computes the successor subset on symbol a, optionally applying the
// greedy-match pruning.
func (n *nfa) move(s stateSet, a symbol, prune bool) stateSet {
	next := map[int]bool{}
	for _, i := range s {
		if n.accepting(i) {
			continue
		}
		if n.recursive(i) {
			next[i] = true
		}
		if n.matches(&n.query.Selectors[i], a) {
			next[i+1] = true
		}
	}
	out := make(stateSet, 0, len(next))
	for i := range next {
		out = append(out, i)
	}
	sort.Ints(out)
	if prune {
		out = n.pruneGreedy(out)
	}
	return out
}

// pruneGreedy drops every state below the greatest recursive state in the
// set. Soundness (under node semantics): any accepting continuation from a
// dropped state i < r passes through r, and r's self-loop can consume the
// prefix up to that point, so the continuation is also accepted from r.
func (n *nfa) pruneGreedy(s stateSet) stateSet {
	r := -1
	for _, i := range s {
		if n.recursive(i) && i > r {
			r = i
		}
	}
	if r <= 0 {
		return s
	}
	out := s[:0]
	for _, i := range s {
		if i >= r {
			out = append(out, i)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Determinization
// ---------------------------------------------------------------------------

// rawDFA is the pre-annotation automaton over the symbolic alphabet.
type rawDFA struct {
	n         *nfa
	accepting []bool
	// trans[s][a] for a in 0..alphabetSize-1 (fallback last).
	trans   [][]StateID
	initial StateID
	trash   StateID
}

func determinize(n *nfa, prune bool) (*rawDFA, error) {
	alpha := n.alphabetSize()
	d := &rawDFA{n: n}
	index := map[string]StateID{}
	var sets []stateSet

	add := func(s stateSet) StateID {
		k := s.key()
		if id, ok := index[k]; ok {
			return id
		}
		id := StateID(len(sets))
		index[k] = id
		sets = append(sets, s)
		d.trans = append(d.trans, make([]StateID, alpha))
		acc := false
		for _, i := range s {
			if n.accepting(i) {
				acc = true
			}
		}
		d.accepting = append(d.accepting, acc)
		return id
	}

	// The empty subset is the trash state; materialize it first so it
	// always exists.
	d.trash = add(stateSet{})
	start := stateSet{0}
	if prune {
		start = n.pruneGreedy(start)
	}
	d.initial = add(start)

	for work := 0; work < len(sets); work++ {
		for a := 0; a < alpha; a++ {
			t := n.move(sets[work], symbol(a), prune)
			id := add(t)
			if len(sets) > MaxStates {
				return nil, ErrTooLarge
			}
			d.trans[work][a] = id
		}
	}
	return d, nil
}

// ---------------------------------------------------------------------------
// Minimization (Moore's algorithm)
// ---------------------------------------------------------------------------

func minimize(d *rawDFA) *rawDFA {
	nStates := len(d.trans)
	alpha := d.n.alphabetSize()
	// Initial partition: accepting vs not.
	class := make([]int, nStates)
	for s := 0; s < nStates; s++ {
		if d.accepting[s] {
			class[s] = 1
		}
	}
	nClasses := 2
	if nStates > 0 {
		// Degenerate case: everything accepting or nothing accepting.
		seen0, seen1 := false, false
		for _, c := range class {
			if c == 0 {
				seen0 = true
			} else {
				seen1 = true
			}
		}
		if !seen0 || !seen1 {
			nClasses = 1
			for s := range class {
				class[s] = 0
			}
		}
	}

	for {
		sig := make(map[string]int, nStates)
		next := make([]int, nStates)
		var b strings.Builder
		for s := 0; s < nStates; s++ {
			b.Reset()
			fmt.Fprintf(&b, "%d|", class[s])
			for a := 0; a < alpha; a++ {
				fmt.Fprintf(&b, "%d,", class[d.trans[s][a]])
			}
			k := b.String()
			id, ok := sig[k]
			if !ok {
				id = len(sig)
				sig[k] = id
			}
			next[s] = id
		}
		if len(sig) == nClasses {
			class = next
			break
		}
		nClasses = len(sig)
		class = next
	}

	out := &rawDFA{n: d.n}
	out.trans = make([][]StateID, nClasses)
	out.accepting = make([]bool, nClasses)
	for s := 0; s < nStates; s++ {
		c := class[s]
		if out.trans[c] == nil {
			out.trans[c] = make([]StateID, alpha)
			for a := 0; a < alpha; a++ {
				out.trans[c][a] = StateID(class[d.trans[s][a]])
			}
			out.accepting[c] = d.accepting[s]
		}
	}
	out.initial = StateID(class[d.initial])
	out.trash = StateID(class[d.trash])
	return out
}

// ---------------------------------------------------------------------------
// Normalization and annotation
// ---------------------------------------------------------------------------

// buildStates converts the symbolic transition table into the per-state
// label/index transition lists, dropping explicit transitions equal to the
// fallback.
func buildStates(r *rawDFA) *DFA {
	n := r.n
	alpha := n.alphabetSize()
	fb := int(n.fallbackSymbol())
	d := &DFA{Initial: r.initial, Trash: r.trash}
	d.States = make([]State, len(r.trans))
	// One quoted seek pattern per distinct label, shared by every transition
	// that carries it.
	patterns := make([][]byte, len(n.labels))
	for a, label := range n.labels {
		p := make([]byte, 0, len(label)+2)
		p = append(p, '"')
		p = append(p, label...)
		patterns[a] = append(p, '"')
	}
	for s := range r.trans {
		st := &d.States[s]
		st.Accepting = r.accepting[s]
		st.Fallback = r.trans[s][fb]
		for a := 0; a < alpha; a++ {
			if a == fb || r.trans[s][a] == st.Fallback {
				continue
			}
			if a < len(n.labels) {
				st.Labels = append(st.Labels, LabelTransition{
					Label: n.labels[a], Pattern: patterns[a], Target: r.trans[s][a]})
			} else {
				iv := n.intervals[a-len(n.labels)]
				st.Indexes = append(st.Indexes, IndexTransition{Lo: iv.lo, Hi: iv.hi, Target: r.trans[s][a]})
			}
		}
	}
	return d
}

// annotate computes the derived state classes of §3.3.
func (d *DFA) annotate() {
	// Rejecting: cannot reach an accepting state. Compute reachability of
	// accepting states over the reversed graph.
	n := len(d.States)
	canAccept := make([]bool, n)
	var stack []StateID
	rev := make([][]StateID, n)
	each := func(s StateID, f func(StateID)) {
		st := &d.States[s]
		for i := range st.Labels {
			f(st.Labels[i].Target)
		}
		for i := range st.Indexes {
			f(st.Indexes[i].Target)
		}
		f(st.Fallback)
	}
	for s := 0; s < n; s++ {
		each(StateID(s), func(t StateID) {
			rev[t] = append(rev[t], StateID(s))
		})
		if d.States[s].Accepting {
			canAccept[s] = true
			stack = append(stack, StateID(s))
		}
	}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range rev[t] {
			if !canAccept[s] {
				canAccept[s] = true
				stack = append(stack, s)
			}
		}
	}

	for s := range d.States {
		st := &d.States[s]
		st.Rejecting = !canAccept[s]

		st.Internal = true
		anyLabelAccepts := false
		anyIndexAccepts := false
		each(StateID(s), func(t StateID) {
			if d.States[t].Accepting {
				st.Internal = false
			}
		})
		for i := range st.Labels {
			if d.States[st.Labels[i].Target].Accepting {
				anyLabelAccepts = true
			}
		}
		for i := range st.Indexes {
			if d.States[st.Indexes[i].Target].Accepting {
				anyIndexAccepts = true
			}
		}
		fbAccepts := d.States[st.Fallback].Accepting

		st.Unitary = len(st.Labels) == 1 && len(st.Indexes) == 0 &&
			d.States[st.Fallback].Rejecting
		st.Waiting = len(st.Labels) == 1 && len(st.Indexes) == 0 &&
			st.Fallback == StateID(s)

		st.CanAcceptInObject = anyLabelAccepts || fbAccepts
		st.CanAcceptInArray = fbAccepts || anyIndexAccepts
		st.NeedsIndexInArray = len(st.Indexes) > 0
	}
}

// String renders the automaton for debugging and documentation (the
// textual twin of the paper's Figure 2).
func (d *DFA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DFA for %s (initial %d, trash %d)\n", d.query, d.Initial, d.Trash)
	for s := range d.States {
		st := &d.States[s]
		var flags []string
		if st.Accepting {
			flags = append(flags, "accepting")
		}
		if st.Rejecting {
			flags = append(flags, "rejecting")
		}
		if st.Internal {
			flags = append(flags, "internal")
		}
		if st.Unitary {
			flags = append(flags, "unitary")
		}
		if st.Waiting {
			flags = append(flags, "waiting")
		}
		fmt.Fprintf(&b, "  state %d [%s]\n", s, strings.Join(flags, " "))
		for _, tr := range st.Labels {
			fmt.Fprintf(&b, "    %q -> %d\n", tr.Label, tr.Target)
		}
		for _, tr := range st.Indexes {
			if tr.Hi < 0 {
				fmt.Fprintf(&b, "    [%d:] -> %d\n", tr.Lo, tr.Target)
			} else {
				fmt.Fprintf(&b, "    [%d:%d] -> %d\n", tr.Lo, tr.Hi, tr.Target)
			}
		}
		fmt.Fprintf(&b, "    _ -> %d\n", st.Fallback)
	}
	return b.String()
}
