package automaton

import (
	"math/rand"
	"strings"
	"testing"

	"rsonpath/internal/jsonpath"
)

// word is a path of labels; "#k" entries denote array entries with index k,
// and any other entry is an object property name.
type word []string

// refAccepts decides acceptance of a path by direct NFA simulation — the
// oracle for the whole compilation pipeline.
func refAccepts(q *jsonpath.Query, w word) bool {
	current := map[int]bool{0: true}
	for _, a := range w {
		next := map[int]bool{}
		for i := range current {
			if i == len(q.Selectors) {
				continue
			}
			sel := &q.Selectors[i]
			if sel.Descendant {
				next[i] = true
			}
			if selectorMatches(sel, a) {
				next[i+1] = true
			}
		}
		current = next
	}
	return current[len(q.Selectors)]
}

func selectorMatches(sel *jsonpath.Selector, a string) bool {
	if sel.Wildcard {
		return true
	}
	if strings.HasPrefix(a, "#") {
		idx := 0
		for _, c := range a[1:] {
			idx = idx*10 + int(c-'0')
		}
		return sel.MatchesIndex(idx)
	}
	return sel.MatchesLabel([]byte(a))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// dfaAccepts runs the compiled DFA on a path.
func dfaAccepts(d *DFA, w word) bool {
	s := d.Initial
	for _, a := range w {
		if strings.HasPrefix(a, "#") {
			idx := 0
			for _, c := range a[1:] {
				idx = idx*10 + int(c-'0')
			}
			s = d.TransitionIndex(s, idx)
		} else {
			s = d.Transition(s, []byte(a))
		}
	}
	return d.States[s].Accepting
}

// enumerate all words of length up to maxLen over the alphabet.
func enumerateWords(alphabet []string, maxLen int, f func(word)) {
	var rec func(prefix word, depth int)
	rec = func(prefix word, depth int) {
		f(prefix)
		if depth == maxLen {
			return
		}
		for _, a := range alphabet {
			rec(append(prefix[:len(prefix):len(prefix)], a), depth+1)
		}
	}
	rec(word{}, 0)
}

// testAlphabet derives an exercise alphabet from the query: its labels,
// two fresh labels, its indices, and one fresh index.
func testAlphabet(q *jsonpath.Query) []string {
	var out []string
	for _, l := range q.Labels() {
		out = append(out, string(l))
	}
	out = append(out, "zz1", "zz2", "#0", "#7")
	return out
}

func assertLanguage(t *testing.T, queryStr string, maxLen int) *DFA {
	t.Helper()
	q := jsonpath.MustParse(queryStr)
	d := MustCompile(q)
	dUnpruned, err := Compile(q, Options{DisableGreedyPruning: true})
	if err != nil {
		t.Fatalf("unpruned compile of %q: %v", queryStr, err)
	}
	alphabet := testAlphabet(q)
	enumerateWords(alphabet, maxLen, func(w word) {
		want := refAccepts(q, w)
		if got := dfaAccepts(d, w); got != want {
			t.Fatalf("%s on %v: pruned DFA says %v, NFA says %v\n%s", queryStr, w, got, want, d)
		}
		if got := dfaAccepts(dUnpruned, w); got != want {
			t.Fatalf("%s on %v: unpruned DFA says %v, NFA says %v", queryStr, w, got, want)
		}
	})
	return d
}

func TestLanguageChildOnly(t *testing.T) {
	assertLanguage(t, "$.a", 4)
	assertLanguage(t, "$.a.b", 4)
	assertLanguage(t, "$.a.b.c", 4)
	assertLanguage(t, "$.*", 4)
	assertLanguage(t, "$.a.*.c", 4)
	assertLanguage(t, "$", 3)
}

func TestLanguageFigure1(t *testing.T) {
	// Figure 1's query: $.a.b.*.c.* — a chain DFA.
	d := assertLanguage(t, "$.a.b.*.c.*", 6)
	// 6 live states (one per matched prefix) plus trash.
	if len(d.States) != 7 {
		t.Errorf("Figure 1 DFA has %d states, want 7\n%s", len(d.States), d)
	}
}

func TestLanguageDescendants(t *testing.T) {
	assertLanguage(t, "$..a", 5)
	assertLanguage(t, "$..a..b", 5)
	assertLanguage(t, "$..a.b", 5)
	assertLanguage(t, "$.a..b", 5)
	assertLanguage(t, "$..*", 4)
	assertLanguage(t, "$..a..a", 5)
	assertLanguage(t, "$..a.a..a", 5)
}

func TestLanguageFigure2(t *testing.T) {
	// Figure 2's query: $.a..b.*..c.* with three segments.
	assertLanguage(t, "$.a..b.*..c.*", 6)
}

func TestLanguageWildcardDescendantMix(t *testing.T) {
	assertLanguage(t, "$..a.*", 5)
	assertLanguage(t, "$..*.a", 5)
	assertLanguage(t, "$.*..a", 5)
	assertLanguage(t, "$..a.*.b", 5)
	assertLanguage(t, "$..a.*.*", 5) // exponential-family member, small instance
}

func TestLanguageIndexes(t *testing.T) {
	assertLanguage(t, "$[0]", 3)
	assertLanguage(t, "$.a[0].b", 4)
	assertLanguage(t, "$..[7]", 4)
	assertLanguage(t, "$[0][7]", 4)
}

func TestLanguageRandomQueries(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	labels := []string{"a", "b", "c"}
	for trial := 0; trial < 60; trial++ {
		var sb strings.Builder
		sb.WriteString("$")
		steps := 1 + r.Intn(4)
		for i := 0; i < steps; i++ {
			if r.Intn(3) == 0 {
				sb.WriteString("..")
			} else {
				sb.WriteString(".")
			}
			if r.Intn(4) == 0 {
				sb.WriteString("*")
			} else {
				sb.WriteString(labels[r.Intn(len(labels))])
			}
		}
		assertLanguage(t, sb.String(), 5)
	}
}

func TestMinimality(t *testing.T) {
	// No two states of the compiled DFA may be equivalent: re-running
	// partition refinement on the output must not merge anything.
	queries := []string{
		"$.a.b.*.c.*", "$..a..b", "$.a..b.*..c.*", "$..a.*", "$..a.b.c", "$..*",
	}
	for _, qs := range queries {
		q := jsonpath.MustParse(qs)
		d := MustCompile(q)
		if merged := countEquivalenceClasses(d, q); merged != len(d.States) {
			t.Errorf("%s: %d states but only %d equivalence classes\n%s",
				qs, len(d.States), merged, d)
		}
	}
}

// countEquivalenceClasses runs Moore refinement over the annotated DFA
// using the query's labels plus a fresh symbol as the alphabet.
func countEquivalenceClasses(d *DFA, q *jsonpath.Query) int {
	alphabet := q.Labels()
	alphabet = append(alphabet, []byte("§fresh§"))
	n := len(d.States)
	class := make([]int, n)
	for s := range d.States {
		if d.States[s].Accepting {
			class[s] = 1
		}
	}
	for {
		sig := map[string]int{}
		next := make([]int, n)
		for s := 0; s < n; s++ {
			var b strings.Builder
			b.WriteString(itoa(class[s]))
			for _, l := range alphabet {
				b.WriteString("," + itoa(class[d.Transition(StateID(s), l)]))
			}
			id, ok := sig[b.String()]
			if !ok {
				id = len(sig)
				sig[b.String()] = id
			}
			next[s] = id
		}
		same := true
		for s := range next {
			if next[s] != class[s] {
				same = false
			}
		}
		class = next
		if same || len(sig) == n {
			return len(sig)
		}
	}
}

func TestStateClasses(t *testing.T) {
	// $.a: initial is unitary (single label, rejecting fallback).
	d := MustCompile(jsonpath.MustParse("$.a"))
	init := &d.States[d.Initial]
	if !init.Unitary || init.Waiting {
		t.Errorf("$.a initial classes wrong:\n%s", d)
	}
	if init.Internal {
		t.Errorf("$.a initial should not be internal (a leaf 'a' matches):\n%s", d)
	}

	// $..a: initial is waiting (single label, self fallback).
	d = MustCompile(jsonpath.MustParse("$..a"))
	init = &d.States[d.Initial]
	if !init.Waiting || init.Unitary {
		t.Errorf("$..a initial classes wrong:\n%s", d)
	}

	// $.a.b: initial is unitary and internal (must descend two levels).
	d = MustCompile(jsonpath.MustParse("$.a.b"))
	init = &d.States[d.Initial]
	if !init.Unitary || !init.Internal {
		t.Errorf("$.a.b initial classes wrong:\n%s", d)
	}

	// Trash state is rejecting and loops to itself.
	if !d.States[d.Trash].Rejecting {
		t.Errorf("trash not rejecting")
	}
	if d.States[d.Trash].Fallback != d.Trash {
		t.Errorf("trash does not loop")
	}

	// $.*: everything matches in one step.
	d = MustCompile(jsonpath.MustParse("$.*"))
	init = &d.States[d.Initial]
	if !init.CanAcceptInObject || !init.CanAcceptInArray {
		t.Errorf("$.* initial toggle flags wrong:\n%s", d)
	}
	if init.Internal {
		t.Errorf("$.* initial should not be internal")
	}

	// $.a: 'a' accepts in objects but nothing accepts in arrays.
	d = MustCompile(jsonpath.MustParse("$.a"))
	init = &d.States[d.Initial]
	if !init.CanAcceptInObject || init.CanAcceptInArray {
		t.Errorf("$.a toggle flags wrong:\n%s", d)
	}
}

func TestGreedyMatchNestedLabels(t *testing.T) {
	// §3.1's greedy-match discussion: for $..a the state after 'a' must
	// itself handle nested 'a's (path aa accepted, path a-other-a too).
	d := MustCompile(jsonpath.MustParse("$..a"))
	s := d.Transition(d.Initial, []byte("a"))
	if !d.States[s].Accepting {
		t.Fatalf("state after a not accepting:\n%s", d)
	}
	s2 := d.Transition(s, []byte("a"))
	if !d.States[s2].Accepting {
		t.Fatalf("nested a not accepting:\n%s", d)
	}
}

func TestPruningReducesSubsets(t *testing.T) {
	// The paper's exponential family ..a.*.*: with pruning the automaton
	// stays equivalent; both are checked by TestLanguageWildcardDescendantMix.
	// Here: ensure the pruned construction is never larger.
	queries := []string{"$..a.*.*", "$..a.*.*.*", "$..a..b.*", "$.a..b.*..c.*"}
	for _, qs := range queries {
		q := jsonpath.MustParse(qs)
		pruned := MustCompile(q)
		unpruned, err := Compile(q, Options{DisableGreedyPruning: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(pruned.States) > len(unpruned.States) {
			t.Errorf("%s: pruned %d states > unpruned %d", qs, len(pruned.States), len(unpruned.States))
		}
	}
}

func TestTooLargeQuery(t *testing.T) {
	// ..a followed by many wildcards reconstructs the classical NFA→DFA
	// exponential blowup (§3.1); compilation must fail cleanly.
	q := jsonpath.MustParse("$..a" + strings.Repeat(".*", 16))
	if _, err := Compile(q, Options{}); err != ErrTooLarge {
		t.Fatalf("expected ErrTooLarge, got %v", err)
	}
}

func TestStringRendering(t *testing.T) {
	d := MustCompile(jsonpath.MustParse("$.a..b"))
	s := d.String()
	for _, want := range []string{"initial", "state 0", `"a"`, `"b"`, "->"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestTransitionHelpers(t *testing.T) {
	d := MustCompile(jsonpath.MustParse("$.a[3]"))
	s := d.Transition(d.Initial, []byte("a"))
	if d.States[s].Rejecting {
		t.Fatalf("a-transition rejected:\n%s", d)
	}
	acc := d.TransitionIndex(s, 3)
	if !d.States[acc].Accepting {
		t.Fatalf("[3] not accepting:\n%s", d)
	}
	if rej := d.TransitionIndex(s, 2); !d.States[rej].Rejecting {
		t.Fatalf("[2] should reject:\n%s", d)
	}
	if rej := d.Transition(s, []byte("b")); !d.States[rej].Rejecting {
		t.Fatalf("label in place of index should reject:\n%s", d)
	}
	if fb := d.TransitionFallback(d.Initial); !d.States[fb].Rejecting {
		t.Fatalf("fallback of $.a[3] initial should reject")
	}
}

func TestCompileIdempotentAcrossCalls(t *testing.T) {
	q := jsonpath.MustParse("$..a.b")
	d1 := MustCompile(q)
	d2 := MustCompile(q)
	if d1.String() != d2.String() {
		t.Error("compilation is not deterministic")
	}
}

func TestLanguageUnions(t *testing.T) {
	assertLanguage(t, "$['a','b']", 4)
	assertLanguage(t, "$..['a','b']", 5)
	assertLanguage(t, "$['a','b'].c", 4)
	assertLanguage(t, "$..['a','b']..c", 5)
	assertLanguage(t, "$['a',0]", 4)
	assertLanguage(t, "$..['a',7]", 4)
	assertLanguage(t, "$[0,7]", 4)
}

func TestLanguageRandomUnionQueries(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	labels := []string{"a", "b", "c"}
	for trial := 0; trial < 40; trial++ {
		var sb strings.Builder
		sb.WriteString("$")
		steps := 1 + r.Intn(3)
		for i := 0; i < steps; i++ {
			desc := ""
			if r.Intn(3) == 0 {
				desc = ".."
			}
			switch r.Intn(3) {
			case 0:
				sb.WriteString(desc + "['" + labels[r.Intn(3)] + "','" + labels[r.Intn(3)] + "']")
			case 1:
				sb.WriteString(desc + "['" + labels[r.Intn(3)] + "'," + []string{"0", "7"}[r.Intn(2)] + "]")
			default:
				if desc == "" {
					desc = "."
				}
				sb.WriteString(desc + labels[r.Intn(3)])
			}
		}
		assertLanguage(t, sb.String(), 4)
	}
}

func TestLanguageSlices(t *testing.T) {
	// The word alphabet includes #0 and #7: boundaries around them probe
	// the interval partition.
	assertLanguage(t, "$[0:2]", 4)
	assertLanguage(t, "$[1:]", 4)
	assertLanguage(t, "$[:7]", 4)
	assertLanguage(t, "$[7:]", 4)
	assertLanguage(t, "$.a[0:8].b", 4)
	assertLanguage(t, "$..[5:]", 4)
	assertLanguage(t, "$['a',0:2]", 4)
	assertLanguage(t, "$[0:2][7:]", 4)
}

func TestIndexRangeTransitions(t *testing.T) {
	d := MustCompile(jsonpath.MustParse("$[2:5]"))
	if !d.States[d.TransitionIndex(d.Initial, 2)].Accepting ||
		!d.States[d.TransitionIndex(d.Initial, 4)].Accepting {
		t.Fatalf("in-slice index rejected:\n%s", d)
	}
	if d.States[d.TransitionIndex(d.Initial, 1)].Accepting ||
		d.States[d.TransitionIndex(d.Initial, 5)].Accepting ||
		d.States[d.TransitionIndex(d.Initial, 100)].Accepting {
		t.Fatalf("out-of-slice index accepted:\n%s", d)
	}
	// Unbounded slices accept arbitrarily high indices.
	d = MustCompile(jsonpath.MustParse("$[3:]"))
	if !d.States[d.TransitionIndex(d.Initial, 1000000)].Accepting {
		t.Fatalf("high index rejected by open slice:\n%s", d)
	}
}
