package admission

import "sync"

// Brownout levels, in the order the controller steps through them. Each
// level keeps every effect of the levels before it — the ladder is
// cumulative, mirroring the supervisor's degradation ladder (DESIGN.md §10):
// cheapest sacrifice first, correctness never.
const (
	// BrownoutOff: normal operation.
	BrownoutOff = 0
	// BrownoutNoPromote: stop promoting documents into the index cache.
	// Index builds are pure-overhead work under pressure (a full
	// classification sweep to speed up *future* requests); cache hits that
	// already exist keep serving.
	BrownoutNoPromote = 1
	// BrownoutTightDeadlines: halve the per-request watchdog deadline, so
	// stragglers release their admission slots sooner.
	BrownoutTightDeadlines = 2
	// BrownoutShedBulk: shed NDJSON bulk requests with 429 before touching
	// small point queries — the heaviest work class goes first.
	BrownoutShedBulk = 3
	// NumBrownoutLevels is the ladder length.
	NumBrownoutLevels = 4
)

// BrownoutConfig tunes the controller. The zero value is filled with the
// documented defaults by NewBrownout.
type BrownoutConfig struct {
	// Alpha is the EWMA smoothing factor applied per observation: ewma =
	// alpha*sample + (1-alpha)*ewma. Default 1/16 — roughly the last ~16
	// requests dominate.
	Alpha float64
	// StepUp is the smoothed-pressure threshold above which the controller
	// steps one level down the ladder. Default 0.5.
	StepUp float64
	// StepDown is the threshold below which it steps one level back up.
	// It must sit well under StepUp — the gap is the hysteresis band that
	// prevents flapping. Default 0.125.
	StepDown float64
	// DwellSamples is the minimum number of observations between two
	// transitions, so one burst cannot ride the ladder to the bottom (nor
	// one quiet moment straight back up). Default 32.
	DwellSamples int
	// MaxLevel caps the ladder; default NumBrownoutLevels-1.
	MaxLevel int
}

// Brownout turns a stream of pressure samples into a degradation level.
// Pressure is the caller's scalar in [0, 1] — rsonpathd reports queue
// occupancy for admitted requests and 1.0 for shed ones — smoothed by an
// EWMA so the level tracks sustained load, not instants. Transitions move
// one level at a time and only after DwellSamples observations at the new
// state, which together with the StepUp/StepDown gap gives the ladder its
// hysteresis: the test drives pressure up, watches levels 1→2→3 engage in
// order, drops pressure, and watches them disengage 3→2→1 with no flap.
type Brownout struct {
	mu    sync.Mutex
	cfg   BrownoutConfig
	ewma  float64
	level int
	dwell int // observations since the last transition
}

// NewBrownout builds a controller with defaults for unset fields.
func NewBrownout(cfg BrownoutConfig) *Brownout {
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 1.0 / 16
	}
	if cfg.StepUp <= 0 {
		cfg.StepUp = 0.5
	}
	if cfg.StepDown <= 0 {
		cfg.StepDown = cfg.StepUp / 4
	}
	if cfg.StepDown >= cfg.StepUp {
		cfg.StepDown = cfg.StepUp / 2
	}
	if cfg.DwellSamples <= 0 {
		cfg.DwellSamples = 32
	}
	if cfg.MaxLevel <= 0 || cfg.MaxLevel >= NumBrownoutLevels {
		cfg.MaxLevel = NumBrownoutLevels - 1
	}
	return &Brownout{cfg: cfg}
}

// Observe feeds one pressure sample in [0, 1] and returns the level in
// effect after the observation.
func (b *Brownout) Observe(pressure float64) int {
	if pressure < 0 {
		pressure = 0
	}
	if pressure > 1 {
		pressure = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ewma = b.cfg.Alpha*pressure + (1-b.cfg.Alpha)*b.ewma
	b.dwell++
	if b.dwell < b.cfg.DwellSamples {
		return b.level
	}
	switch {
	case b.ewma > b.cfg.StepUp && b.level < b.cfg.MaxLevel:
		b.level++
		b.dwell = 0
	case b.ewma < b.cfg.StepDown && b.level > 0:
		b.level--
		b.dwell = 0
	}
	return b.level
}

// Level reads the current ladder position without observing a sample.
func (b *Brownout) Level() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.level
}

// Pressure reads the current smoothed pressure, for health reporting.
func (b *Brownout) Pressure() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ewma
}

// Reset returns the controller to level 0 with a cleared EWMA, as if freshly
// constructed. rsonpathd calls it on SIGHUP: an operator flushing caches is
// declaring the overload episode over, and a latched-down ladder should not
// outlive that declaration.
func (b *Brownout) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ewma = 0
	b.level = 0
	b.dwell = 0
}
