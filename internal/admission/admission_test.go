package admission

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// acquireDone runs Acquire in a goroutine and reports completion on a
// channel, so tests can assert "still queued" vs "granted".
func acquireDone(g *Gate, ctx context.Context, weight, bytes int64) chan error {
	done := make(chan error, 1)
	go func() {
		release, err := g.Acquire(ctx, weight, bytes)
		if err == nil {
			release()
		}
		done <- err
	}()
	return done
}

func TestGateAdmitsUpToCapacity(t *testing.T) {
	g := NewGate(GateConfig{Capacity: 3, QueueDepth: 4})
	var rels []func()
	for i := 0; i < 3; i++ {
		rel, err := g.Acquire(context.Background(), 1, 0)
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		rels = append(rels, rel)
	}
	if snap := g.Snapshot(); snap.Used != 3 || snap.QueueDepth != 0 {
		t.Fatalf("snapshot = %+v, want used 3 queue 0", snap)
	}
	// A fourth arrival queues; releasing one slot grants it FIFO.
	done := acquireDone(g, context.Background(), 1, 0)
	select {
	case err := <-done:
		t.Fatalf("fourth acquire returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	rels[0]()
	if err := <-done; err != nil {
		t.Fatalf("queued acquire after release: %v", err)
	}
	rels[1]()
	rels[2]()
	if snap := g.Snapshot(); snap.Used != 0 || snap.Bytes != 0 {
		t.Fatalf("not drained: %+v", snap)
	}
}

func TestGateReleaseIdempotent(t *testing.T) {
	g := NewGate(GateConfig{Capacity: 2, QueueDepth: 1})
	rel, err := g.Acquire(context.Background(), 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // double release must not free a second slot
	if snap := g.Snapshot(); snap.Used != 0 || snap.Bytes != 0 {
		t.Fatalf("double release corrupted accounting: %+v", snap)
	}
}

func TestGateQueueFull(t *testing.T) {
	g := NewGate(GateConfig{Capacity: 1, QueueDepth: 1})
	rel, err := g.Acquire(context.Background(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	queued := acquireDone(g, context.Background(), 1, 0)
	time.Sleep(10 * time.Millisecond) // let it park
	if _, err := g.Acquire(context.Background(), 1, 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow arrival: err = %v, want ErrQueueFull", err)
	}
	rel()
	if err := <-queued; err != nil {
		t.Fatalf("queued arrival: %v", err)
	}
}

func TestGateDeadline(t *testing.T) {
	g := NewGate(GateConfig{Capacity: 1, QueueDepth: 2})
	rel, err := g.Acquire(context.Background(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	// Already-expired arrivals are rejected immediately, not parked.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.Acquire(expired, 1, 0); !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired ctx: err = %v, want ErrDeadline", err)
	}

	// A parked arrival whose deadline fires is unlinked and rejected.
	ctx, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	if _, err := g.Acquire(ctx, 1, 0); !errors.Is(err, ErrDeadline) {
		t.Fatalf("queued past deadline: err = %v, want ErrDeadline", err)
	}
	if snap := g.Snapshot(); snap.QueueDepth != 0 {
		t.Fatalf("abandoned waiter still queued: %+v", snap)
	}
}

func TestGateBytesBudget(t *testing.T) {
	g := NewGate(GateConfig{Capacity: 8, QueueDepth: 8, BytesBudget: 100})
	// Absolutely oversized: can never be admitted.
	if _, err := g.Acquire(context.Background(), 1, 101); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized: err = %v, want ErrTooLarge", err)
	}
	rel, err := g.Acquire(context.Background(), 1, 80)
	if err != nil {
		t.Fatal(err)
	}
	// Over the *remaining* budget: shed immediately, not queued.
	if _, err := g.Acquire(context.Background(), 1, 30); !errors.Is(err, ErrBytesBudget) {
		t.Fatalf("over remaining budget: err = %v, want ErrBytesBudget", err)
	}
	rel()
	rel2, err := g.Acquire(context.Background(), 1, 30)
	if err != nil {
		t.Fatalf("after drain: %v", err)
	}
	rel2()
}

func TestGateHeavyRequestClampedToCapacity(t *testing.T) {
	g := NewGate(GateConfig{Capacity: 4, QueueDepth: 2})
	rel, err := g.Acquire(context.Background(), 100, 0) // clamped to 4: runs alone
	if err != nil {
		t.Fatal(err)
	}
	done := acquireDone(g, context.Background(), 1, 0)
	select {
	case err := <-done:
		t.Fatalf("light arrival ran alongside a full-gate request: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	rel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestGateConcurrentStress(t *testing.T) {
	g := NewGate(GateConfig{Capacity: 4, QueueDepth: 64, BytesBudget: 1 << 20})
	var wg sync.WaitGroup
	var mu sync.Mutex
	inflight, peak := 0, 0
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := g.Acquire(context.Background(), 1, 128)
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			mu.Lock()
			inflight++
			if inflight > peak {
				peak = inflight
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			inflight--
			mu.Unlock()
			rel()
		}()
	}
	wg.Wait()
	if peak > 4 {
		t.Fatalf("peak concurrency %d exceeds capacity 4", peak)
	}
	if snap := g.Snapshot(); snap.Used != 0 || snap.Bytes != 0 || snap.QueueDepth != 0 {
		t.Fatalf("not drained: %+v", snap)
	}
}

// TestBrownoutLadder drives the controller deterministically: sustained
// pressure steps down the ladder one level at a time in order, quiet steps
// back up, and the dwell + threshold gap prevents flapping.
func TestBrownoutLadder(t *testing.T) {
	b := NewBrownout(BrownoutConfig{Alpha: 0.25, StepUp: 0.5, StepDown: 0.1, DwellSamples: 8})

	var seen []int
	level := 0
	for i := 0; i < 200 && level < BrownoutShedBulk; i++ {
		next := b.Observe(1.0)
		if next != level {
			seen = append(seen, next)
			level = next
		}
	}
	if want := []int{1, 2, 3}; len(seen) != 3 || seen[0] != want[0] || seen[1] != want[1] || seen[2] != want[2] {
		t.Fatalf("step-down order = %v, want [1 2 3]", seen)
	}

	// Mid-band pressure (between StepDown and StepUp) must hold the level:
	// that band is the hysteresis.
	for i := 0; i < 100; i++ {
		if got := b.Observe(0.3); got != BrownoutShedBulk {
			t.Fatalf("observation %d at mid pressure moved level to %d", i, got)
		}
	}

	seen = nil
	for i := 0; i < 400 && level > 0; i++ {
		next := b.Observe(0)
		if next != level {
			seen = append(seen, next)
			level = next
		}
	}
	if want := []int{2, 1, 0}; len(seen) != 3 || seen[0] != want[0] || seen[1] != want[1] || seen[2] != want[2] {
		t.Fatalf("step-up order = %v, want [2 1 0]", seen)
	}
}

// TestBrownoutDwell pins that a single burst cannot ride the ladder more
// than one level before the dwell elapses again.
func TestBrownoutDwell(t *testing.T) {
	b := NewBrownout(BrownoutConfig{Alpha: 1, StepUp: 0.5, StepDown: 0.1, DwellSamples: 10})
	for i := 0; i < 10; i++ {
		b.Observe(1.0)
	}
	if b.Level() != 1 {
		t.Fatalf("level after first dwell = %d, want 1", b.Level())
	}
	for i := 0; i < 9; i++ {
		if got := b.Observe(1.0); got != 1 {
			t.Fatalf("level stepped to %d before dwell elapsed", got)
		}
	}
	if got := b.Observe(1.0); got != 2 {
		t.Fatalf("level after second dwell = %d, want 2", got)
	}
}

// TestBreakerStates drives the full closed → open → half-open → closed
// cycle with an injected clock.
func TestBreakerStates(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{
		Window: 8, Threshold: 3, Cooldown: time.Minute, HalfOpenProbes: 2,
		Now: func() time.Time { return now },
	})

	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("breaker must start closed")
	}
	// Failures below the threshold keep it closed; successes age them out.
	b.Record(true)
	b.Record(true)
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatal("tripped below threshold")
	}
	b.Record(true) // third failure in the window → open
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed the protected path")
	}
	if b.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", b.Opens())
	}

	// Cooldown elapses → half-open, probes allowed.
	now = now.Add(time.Minute)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe denied")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// A failed probe re-opens immediately.
	b.Record(true)
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("failed probe did not re-open")
	}

	// Next cooldown: two clean probes close it.
	now = now.Add(time.Minute)
	if !b.Allow() {
		t.Fatal("second cooldown probe denied")
	}
	b.Record(false)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after one probe = %v, want half-open", b.State())
	}
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatalf("state after two probes = %v, want closed", b.State())
	}
	// The window was reset on close: old failures don't count.
	b.Record(true)
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatal("stale failures carried across a close")
	}
}

// TestBreakerWindowSlides pins the sliding window: failures spaced out by
// enough successes never accumulate to the threshold.
func TestBreakerWindowSlides(t *testing.T) {
	b := NewBreaker(BreakerConfig{Window: 4, Threshold: 3, Cooldown: time.Minute})
	for i := 0; i < 40; i++ {
		b.Record(i%4 == 0) // 1 failure per 4 events: at most 1 in any window
		if b.State() != BreakerClosed {
			t.Fatalf("event %d: breaker tripped on sparse failures", i)
		}
	}
}
