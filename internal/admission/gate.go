// Package admission is the daemon's overload-control subsystem: a weighted
// concurrency gate with a bounded, deadline-aware wait queue and a global
// in-flight bytes budget (Gate), a brownout controller that steps down a
// degradation ladder under sustained pressure (Brownout), and a circuit
// breaker for the supervisor's expensive fallback path (Breaker). See
// DESIGN.md §14 for how rsonpathd threads these together.
//
// The package is engine-agnostic on purpose: nothing here knows about JSON,
// HTTP, or queries. A request is a (weight, bytes) pair, pressure is a
// number in [0, 1], and a fallback event is a boolean. The server layer
// translates its domain into those terms, which keeps every state machine
// here unit-testable without a socket.
package admission

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// The typed rejection vocabulary. The server maps these to HTTP statuses:
// ErrTooLarge is the caller's fault (413), everything else is load (429 +
// Retry-After).
var (
	// ErrQueueFull rejects an arrival when every slot is busy and the wait
	// queue is at capacity. Queueing deeper would only grow latency for
	// work that will likely time out anyway — shed instead.
	ErrQueueFull = errors.New("admission: wait queue full")
	// ErrDeadline rejects an arrival whose deadline expired before a slot
	// freed (or that arrived already expired). Serving it would spend
	// capacity on an answer nobody is waiting for.
	ErrDeadline = errors.New("admission: deadline expired while queued")
	// ErrBytesBudget sheds an arrival that fits the absolute budget but not
	// the budget left after currently admitted work. Retry when in-flight
	// bytes drain.
	ErrBytesBudget = errors.New("admission: in-flight bytes budget exhausted")
	// ErrTooLarge rejects an arrival larger than the whole bytes budget; it
	// can never be admitted, so retrying is pointless.
	ErrTooLarge = errors.New("admission: request exceeds the bytes budget")
)

// GateConfig sizes a Gate. The zero value is not useful; use NewGate, which
// applies the documented defaults.
type GateConfig struct {
	// Capacity is the total weight of concurrently admitted work, in
	// abstract weight units (the caller defines the scale; rsonpathd uses
	// request class × size factor).
	Capacity int64
	// QueueDepth bounds the wait queue; 0 disables queueing entirely (all
	// contended arrivals are shed).
	QueueDepth int
	// BytesBudget bounds the sum of in-flight request bytes; <= 0 means
	// unlimited.
	BytesBudget int64
}

// Gate is the admission point: Acquire either admits work immediately,
// parks it in a bounded FIFO queue, or rejects it with one of the typed
// errors above — it never blocks unboundedly. Weights model heterogeneous
// request cost (a 100 MB NDJSON batch is not one unit of work), and the
// bytes budget caps aggregate payload memory independently of slot count.
type Gate struct {
	mu      sync.Mutex
	cfg     GateConfig
	used    int64 // admitted weight
	bytes   int64 // admitted payload bytes
	waiters *list.List
}

// waiter is one parked arrival. ready is closed exactly once, after granted
// is set under the gate lock; a waiter abandoned by its context is unlinked
// under the same lock, so a grant and an abandonment cannot race.
type waiter struct {
	weight  int64
	bytes   int64
	ready   chan struct{}
	granted bool
}

// NewGate builds a gate from cfg. Capacity < 1 becomes 1 (a zero-capacity
// gate would deadlock every caller).
func NewGate(cfg GateConfig) *Gate {
	if cfg.Capacity < 1 {
		cfg.Capacity = 1
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	return &Gate{cfg: cfg, waiters: list.New()}
}

// Acquire admits (weight, bytes) of work, blocking in the bounded queue
// only while ctx allows. On success it returns a release closure that must
// be called exactly when the work finishes (it is idempotent). On rejection
// the error is one of ErrQueueFull, ErrDeadline, ErrBytesBudget, or
// ErrTooLarge.
//
// The bytes budget is checked at arrival, not in the queue: an arrival that
// does not fit the remaining budget is shed immediately (429 at the server
// layer) rather than parked, because payload memory is the resource the
// budget protects and parking the request would not make its bytes smaller.
// Weight contention, by contrast, queues: slots drain quickly and FIFO
// order keeps heavy requests from being starved by light ones.
func (g *Gate) Acquire(ctx context.Context, weight, bytes int64) (release func(), err error) {
	if weight < 1 {
		weight = 1
	}
	if weight > g.cfg.Capacity {
		// A single arrival heavier than the whole gate still gets to run —
		// alone. Clamping (rather than rejecting) keeps the weight scale
		// decoupled from the capacity scale.
		weight = g.cfg.Capacity
	}
	if bytes < 0 {
		bytes = 0
	}
	if g.cfg.BytesBudget > 0 && bytes > g.cfg.BytesBudget {
		return nil, ErrTooLarge
	}
	if err := ctx.Err(); err != nil {
		return nil, ErrDeadline
	}

	g.mu.Lock()
	if g.cfg.BytesBudget > 0 && g.bytes+bytes > g.cfg.BytesBudget {
		g.mu.Unlock()
		return nil, ErrBytesBudget
	}
	if g.waiters.Len() == 0 && g.used+weight <= g.cfg.Capacity {
		g.used += weight
		g.bytes += bytes
		g.mu.Unlock()
		return g.releaser(weight, bytes), nil
	}
	if g.waiters.Len() >= g.cfg.QueueDepth {
		g.mu.Unlock()
		return nil, ErrQueueFull
	}
	w := &waiter{weight: weight, bytes: bytes, ready: make(chan struct{})}
	el := g.waiters.PushBack(w)
	g.mu.Unlock()

	select {
	case <-w.ready:
		return g.releaser(weight, bytes), nil
	case <-ctx.Done():
		g.mu.Lock()
		if w.granted {
			// The grant won the race against the deadline; the work was
			// admitted, so hand the slot to the caller anyway — it will
			// observe its context at the next cancellation point.
			g.mu.Unlock()
			return g.releaser(weight, bytes), nil
		}
		g.waiters.Remove(el)
		g.mu.Unlock()
		return nil, ErrDeadline
	}
}

// TryAcquire is Acquire that never queues: it admits immediately or reports
// the rejection. Used for true-ups after an under-estimated reservation.
func (g *Gate) TryAcquire(weight, bytes int64) (release func(), err error) {
	if weight < 0 {
		weight = 0
	}
	if bytes < 0 {
		bytes = 0
	}
	if g.cfg.BytesBudget > 0 && bytes > g.cfg.BytesBudget {
		return nil, ErrTooLarge
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cfg.BytesBudget > 0 && g.bytes+bytes > g.cfg.BytesBudget {
		return nil, ErrBytesBudget
	}
	if g.used+weight > g.cfg.Capacity && weight > 0 {
		return nil, ErrQueueFull
	}
	g.used += weight
	g.bytes += bytes
	return g.releaser(weight, bytes), nil
}

// releaser returns the idempotent release closure for an admitted grant.
func (g *Gate) releaser(weight, bytes int64) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.used -= weight
			g.bytes -= bytes
			g.grantLocked()
			g.mu.Unlock()
		})
	}
}

// grantLocked admits queued waiters in FIFO order while both resources
// fit. Head-of-line blocking is deliberate: granting around a heavy waiter
// would starve it forever under a stream of light arrivals.
func (g *Gate) grantLocked() {
	for el := g.waiters.Front(); el != nil; el = g.waiters.Front() {
		w := el.Value.(*waiter)
		if g.used+w.weight > g.cfg.Capacity {
			return
		}
		if g.cfg.BytesBudget > 0 && g.bytes+w.bytes > g.cfg.BytesBudget {
			return
		}
		g.used += w.weight
		g.bytes += w.bytes
		w.granted = true
		close(w.ready)
		g.waiters.Remove(el)
	}
}

// GateSnapshot is a point-in-time view of the gate for metrics and health
// reporting.
type GateSnapshot struct {
	Capacity    int64
	Used        int64
	BytesBudget int64
	Bytes       int64
	QueueDepth  int // waiters currently parked
	QueueCap    int
}

// Snapshot reads the gate's current occupancy.
func (g *Gate) Snapshot() GateSnapshot {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GateSnapshot{
		Capacity:    g.cfg.Capacity,
		Used:        g.used,
		BytesBudget: g.cfg.BytesBudget,
		Bytes:       g.bytes,
		QueueDepth:  g.waiters.Len(),
		QueueCap:    g.cfg.QueueDepth,
	}
}
