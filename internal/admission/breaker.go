package admission

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: the protected path (rsonpathd: the supervisor's
	// DOM-oracle fallback) is available.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: the cooldown elapsed; a bounded number of probe
	// requests may use the protected path to test whether the fault storm
	// has passed.
	BreakerHalfOpen
	// BreakerOpen: the protected path is disabled; callers fail fast.
	BreakerOpen
)

// String returns the conventional state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// BreakerConfig tunes the breaker; NewBreaker fills defaults.
type BreakerConfig struct {
	// Window is the size of the sliding event window. Default 32.
	Window int
	// Threshold is the number of failures within the window that trips the
	// breaker open. Default 8.
	Threshold int
	// Cooldown is how long the breaker stays open before probing. Default
	// 5s.
	Cooldown time.Duration
	// HalfOpenProbes is how many successive probe successes close the
	// breaker from half-open. Default 3.
	HalfOpenProbes int
	// Now is the clock, injectable so the open→half-open transition is
	// deterministic in tests. nil uses time.Now.
	Now func() time.Time
}

// Breaker is a windowed-failure circuit breaker. rsonpathd wraps it around
// the execution supervisor's DOM-oracle fallback: each degraded outcome (the
// primary engine faulted and the oracle re-ran the query — roughly double
// work) is a failure event. Under a fault flood the breaker opens and the
// daemon compiles requests with the ladder disabled, so internal faults fail
// fast with 500 instead of doubling load exactly when capacity is scarcest.
// After Cooldown it half-opens: probe requests get the ladder back, and
// HalfOpenProbes clean runs in a row close the breaker (one more degraded
// run re-opens it).
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	state    BreakerState
	events   []bool // ring buffer of recent outcomes; true = failure
	next     int    // ring write position
	filled   int    // events recorded, saturating at len(events)
	fails    int    // failures currently in the window
	openedAt time.Time
	probeOK  int // successive half-open probe successes
	opens    int64
}

// NewBreaker builds a breaker with defaults for unset fields.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 8
	}
	if cfg.Threshold > cfg.Window {
		cfg.Threshold = cfg.Window
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.HalfOpenProbes <= 0 {
		cfg.HalfOpenProbes = 3
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg, events: make([]bool, cfg.Window)}
}

// Allow reports whether the protected path may be used right now. It also
// drives the open→half-open transition: the first Allow after the cooldown
// flips to half-open and admits the probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed, BreakerHalfOpen:
		return true
	default: // open
		if b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state = BreakerHalfOpen
			b.probeOK = 0
			return true
		}
		return false
	}
}

// Record feeds one outcome of the protected path (failure = the fallback
// had to run). Outcomes observed while the breaker was open (callers that
// had the path denied) must not be recorded — only real uses count.
func (b *Breaker) Record(failure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		if failure {
			b.trip()
			return
		}
		b.probeOK++
		if b.probeOK >= b.cfg.HalfOpenProbes {
			b.state = BreakerClosed
			b.reset()
		}
	case BreakerClosed:
		if b.filled == len(b.events) {
			if b.events[b.next] {
				b.fails--
			}
		} else {
			b.filled++
		}
		b.events[b.next] = failure
		b.next = (b.next + 1) % len(b.events)
		if failure {
			b.fails++
			if b.fails >= b.cfg.Threshold {
				b.trip()
			}
		}
	}
}

// trip opens the breaker (lock held).
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.cfg.Now()
	b.opens++
	b.reset()
}

// reset clears the event window (lock held).
func (b *Breaker) reset() {
	for i := range b.events {
		b.events[i] = false
	}
	b.next, b.filled, b.fails, b.probeOK = 0, 0, 0, 0
}

// State reads the breaker position (driving the open→half-open clock
// transition the same way Allow does, so metrics don't report a stale
// "open" after the cooldown elapsed).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.state = BreakerHalfOpen
		b.probeOK = 0
	}
	return b.state
}

// Opens returns how many times the breaker has tripped open.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// Reset force-closes the breaker and clears the event window, keeping the
// lifetime Opens counter. rsonpathd calls it on SIGHUP alongside the cache
// flush: the operator is declaring the fault episode over.
func (b *Breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.reset()
}
