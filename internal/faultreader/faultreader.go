// Package faultreader provides hostile io.Reader implementations for the
// fault-injection suite: readers that error mid-stream, deliver one byte at
// a time, tear reads at arbitrary boundaries, or block forever. They let
// the differential tests drive every engine through the exact failure modes
// a network source exhibits, without a network.
package faultreader

import (
	"errors"
	"io"
)

// ErrInjected is the error delivered by ErrorAfter once its budget is
// spent; tests assert it survives to the API boundary unmangled.
var ErrInjected = errors.New("faultreader: injected read failure")

// ErrorAfter returns a reader that yields the first n bytes of data and
// then fails every subsequent Read with ErrInjected.
func ErrorAfter(data []byte, n int) io.Reader {
	if n > len(data) {
		n = len(data)
	}
	return &errorAfter{data: data[:n]}
}

type errorAfter struct {
	data []byte
	off  int
}

func (r *errorAfter) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, ErrInjected
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// OneByte returns a reader that delivers data one byte per Read — the
// pathological short-read source. The document content is unchanged, so a
// correct engine must produce identical results to an in-memory run.
func OneByte(data []byte) io.Reader { return &chunked{data: data, chunk: 1} }

// Chunked returns a reader that delivers data in reads of at most chunk
// bytes, tearing the stream at every multiple of chunk. Using the
// classifier's block size (64) as the chunk tears every read exactly at a
// block boundary.
func Chunked(data []byte, chunk int) io.Reader {
	if chunk < 1 {
		chunk = 1
	}
	return &chunked{data: data, chunk: chunk}
}

type chunked struct {
	data  []byte
	off   int
	chunk int
}

func (r *chunked) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := r.chunk
	if n > len(p) {
		n = len(p)
	}
	if n > len(r.data)-r.off {
		n = len(r.data) - r.off
	}
	copy(p, r.data[r.off:r.off+n])
	r.off += n
	return n, nil
}

// TornAt returns a reader that delivers data normally except that the read
// containing offset cut is split there: one Read ends exactly at cut and
// the next begins at it. A torn read at a block boundary exercises the
// window refill path mid-document.
func TornAt(data []byte, cut int) io.Reader {
	if cut < 0 {
		cut = 0
	}
	if cut > len(data) {
		cut = len(data)
	}
	return io.MultiReader(&chunked{data: data[:cut], chunk: 1 << 20}, &chunked{data: data[cut:], chunk: 1 << 20})
}

// Blocking returns a reader that yields the first n bytes of data and then
// blocks on every subsequent Read until unblock is closed (after which it
// returns io.EOF). It drives the cancellation tests: a run must return
// promptly on context cancellation even while its reader is stuck.
func Blocking(data []byte, n int, unblock <-chan struct{}) io.Reader {
	if n > len(data) {
		n = len(data)
	}
	return &blocking{data: data[:n], unblock: unblock}
}

type blocking struct {
	data    []byte
	off     int
	unblock <-chan struct{}
}

func (r *blocking) Read(p []byte) (int, error) {
	if r.off < len(r.data) {
		n := copy(p, r.data[r.off:])
		r.off += n
		return n, nil
	}
	<-r.unblock
	return 0, io.EOF
}
