package supervisor

import (
	"context"
	"errors"
	"testing"
	"time"
)

var (
	errTransient = errors.New("transient")
	errInternal  = errors.New("internal fault")
	errFatal     = errors.New("fatal")
)

// attemptScript returns an Attempt that yields the scripted errors in order
// (sticking on the last one) and counts its runs.
func attemptScript(name string, runs *int, script ...error) Attempt {
	return Attempt{Engine: name, Run: func(context.Context) error {
		i := *runs
		*runs++
		if i >= len(script) {
			i = len(script) - 1
		}
		return script[i]
	}}
}

func noSleep(t *testing.T, slept *int) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*slept++
		return ctx.Err()
	}
}

func TestCleanFirstAttempt(t *testing.T) {
	runs := 0
	o, err := Run(context.Background(), Policy{}, attemptScript("fast", &runs, nil), nil)
	if err != nil || runs != 1 {
		t.Fatalf("err %v runs %d", err, runs)
	}
	if o.Attempts != 1 || o.Engine != "fast" || o.Degraded() {
		t.Fatalf("outcome %+v", o)
	}
	if o.Duration < 0 {
		t.Fatalf("negative duration %v", o.Duration)
	}
}

func TestRetryThenSuccess(t *testing.T) {
	runs, slept := 0, 0
	p := Policy{
		RetryMax:  3,
		Retryable: func(err error) bool { return errors.Is(err, errTransient) },
		Sleep:     noSleep(t, &slept),
	}
	o, err := Run(context.Background(), p, attemptScript("fast", &runs, errTransient, errTransient, nil), nil)
	if err != nil {
		t.Fatalf("err %v", err)
	}
	if runs != 3 || o.Attempts != 3 || slept != 2 {
		t.Fatalf("runs %d attempts %d slept %d", runs, o.Attempts, slept)
	}
	if o.Degraded() {
		t.Fatalf("retry must not count as degradation: %+v", o)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	runs, slept := 0, 0
	p := Policy{
		RetryMax:  2,
		Retryable: func(err error) bool { return errors.Is(err, errTransient) },
		Sleep:     noSleep(t, &slept),
	}
	_, err := Run(context.Background(), p, attemptScript("fast", &runs, errTransient), nil)
	if !errors.Is(err, errTransient) {
		t.Fatalf("err %v", err)
	}
	if runs != 3 { // 1 + RetryMax
		t.Fatalf("runs %d", runs)
	}
}

func TestNonRetryableNotRetried(t *testing.T) {
	runs := 0
	p := Policy{RetryMax: 5, Retryable: func(err error) bool { return errors.Is(err, errTransient) }}
	_, err := Run(context.Background(), p, attemptScript("fast", &runs, errFatal), nil)
	if !errors.Is(err, errFatal) || runs != 1 {
		t.Fatalf("err %v runs %d", err, runs)
	}
}

func TestFallbackRescues(t *testing.T) {
	pruns, fruns := 0, 0
	p := Policy{Degradable: func(err error) bool { return errors.Is(err, errInternal) }}
	fb := attemptScript("oracle", &fruns, nil)
	o, err := Run(context.Background(), p, attemptScript("fast", &pruns, errInternal), &fb)
	if err != nil {
		t.Fatalf("err %v", err)
	}
	if pruns != 1 || fruns != 1 || o.Attempts != 2 {
		t.Fatalf("pruns %d fruns %d attempts %d", pruns, fruns, o.Attempts)
	}
	if o.Engine != "oracle" || !errors.Is(o.FallbackReason, errInternal) {
		t.Fatalf("outcome %+v", o)
	}
}

func TestFallbackErrorWins(t *testing.T) {
	pruns, fruns := 0, 0
	p := Policy{Degradable: func(err error) bool { return errors.Is(err, errInternal) }}
	fb := attemptScript("oracle", &fruns, errFatal)
	o, err := Run(context.Background(), p, attemptScript("fast", &pruns, errInternal), &fb)
	if !errors.Is(err, errFatal) {
		t.Fatalf("err %v, want the oracle's verdict", err)
	}
	if o.Engine != "oracle" || !errors.Is(o.FallbackReason, errInternal) || o.Attempts != 2 {
		t.Fatalf("outcome %+v", o)
	}
}

func TestFallbackOff(t *testing.T) {
	pruns, fruns := 0, 0
	p := Policy{FallbackOff: true, Degradable: func(error) bool { return true }}
	fb := attemptScript("oracle", &fruns, nil)
	_, err := Run(context.Background(), p, attemptScript("fast", &pruns, errInternal), &fb)
	if !errors.Is(err, errInternal) || fruns != 0 {
		t.Fatalf("err %v fruns %d", err, fruns)
	}
}

func TestNonDegradableNotLaddered(t *testing.T) {
	pruns, fruns := 0, 0
	p := Policy{Degradable: func(err error) bool { return errors.Is(err, errInternal) }}
	fb := attemptScript("oracle", &fruns, nil)
	o, err := Run(context.Background(), p, attemptScript("fast", &pruns, errFatal), &fb)
	if !errors.Is(err, errFatal) || fruns != 0 || o.Degraded() {
		t.Fatalf("err %v fruns %d outcome %+v", err, fruns, o)
	}
}

func TestRetriesThenFallback(t *testing.T) {
	pruns, fruns, slept := 0, 0, 0
	p := Policy{
		RetryMax:   1,
		Retryable:  func(err error) bool { return errors.Is(err, errTransient) },
		Degradable: func(err error) bool { return errors.Is(err, errInternal) },
		Sleep:      noSleep(t, &slept),
	}
	fb := attemptScript("oracle", &fruns, nil)
	o, err := Run(context.Background(), p, attemptScript("fast", &pruns, errTransient, errInternal), &fb)
	if err != nil {
		t.Fatalf("err %v", err)
	}
	if pruns != 2 || fruns != 1 || o.Attempts != 3 {
		t.Fatalf("pruns %d fruns %d attempts %d", pruns, fruns, o.Attempts)
	}
}

func TestCanceledContextStopsLadder(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	pruns, fruns := 0, 0
	p := Policy{
		RetryMax:   5,
		Retryable:  func(error) bool { return true },
		Degradable: func(error) bool { return true },
	}
	primary := Attempt{Engine: "fast", Run: func(ctx context.Context) error {
		pruns++
		cancel() // the attempt observes cancellation mid-run
		return errInternal
	}}
	fb := attemptScript("oracle", &fruns, nil)
	_, err := Run(ctx, p, primary, &fb)
	if !errors.Is(err, errInternal) {
		t.Fatalf("err %v", err)
	}
	if pruns != 1 || fruns != 0 {
		t.Fatalf("canceled context must stop retries and fallback: pruns %d fruns %d", pruns, fruns)
	}
}

func TestTimeoutAppliesToAttemptContext(t *testing.T) {
	p := Policy{Timeout: 10 * time.Millisecond, Degradable: func(error) bool { return true }}
	fruns := 0
	primary := Attempt{Engine: "fast", Run: func(ctx context.Context) error {
		<-ctx.Done() // a hung engine: only the deadline frees it
		return ctx.Err()
	}}
	fb := attemptScript("oracle", &fruns, nil)
	o, err := Run(context.Background(), p, primary, &fb)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v", err)
	}
	if fruns != 0 {
		t.Fatalf("deadline expiry must not trigger the fallback (fruns %d)", fruns)
	}
	if o.Attempts != 1 {
		t.Fatalf("attempts %d", o.Attempts)
	}
}

func TestBackoffObservesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	runs := 0
	p := Policy{
		RetryMax:     3,
		RetryBackoff: time.Hour,
		Retryable:    func(error) bool { return true },
	}
	primary := Attempt{Engine: "fast", Run: func(context.Context) error {
		runs++
		time.AfterFunc(10*time.Millisecond, cancel)
		return errTransient
	}}
	done := make(chan error, 1)
	go func() { _, err := Run(ctx, p, primary, nil); done <- err }()
	select {
	case err := <-done:
		if !errors.Is(err, errTransient) || runs != 1 {
			t.Fatalf("err %v runs %d", err, runs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("backoff ignored cancellation")
	}
}
