// Package supervisor is the resilience layer above the engines: it wraps a
// single query run in a watchdog deadline, a bounded retry policy for
// transient failures, and a degradation ladder that re-runs the query on a
// slower-but-trusted fallback engine when the primary fails with an
// internal fault. It is the same engine-ladder idea the paper applies when
// it validates rsonpath against serde-based oracles, promoted from the test
// harness into the serving path.
//
// The package is deliberately engine-agnostic: an attempt is just a closure
// and an engine name, and the caller supplies the error classifiers
// (Retryable, Degradable). The root rsonpath package adapts Query and
// QuerySet runs to it; nothing here knows about JSON.
package supervisor

import (
	"context"
	"time"
)

// Outcome records how a supervised run settled. It is informational — the
// run's error (or nil) is returned alongside it — and is the caller's
// evidence of degradation: a serving stack alerts on FallbackReason being
// non-nil long before the primary engine's fault becomes user-visible.
type Outcome struct {
	// Attempts is the total number of engine runs: 1 for a clean first
	// attempt, +1 per retry, +1 if the fallback ran.
	Attempts int
	// Engine names the engine that produced the final result (or the final
	// error): the primary's name, or the fallback's after degradation.
	Engine string
	// FallbackReason is the primary's terminal error when the fallback ran,
	// nil otherwise. A non-nil value with a nil run error means the ladder
	// rescued the query.
	FallbackReason error
	// Duration is the wall-clock time of the whole supervised run, retries
	// and fallback included.
	Duration time.Duration
}

// Degraded reports whether the result was produced by the fallback engine.
func (o Outcome) Degraded() bool { return o.FallbackReason != nil }

// Attempt is one way of running the query: an engine name for the Outcome
// and a closure that performs the run. The closure must be restartable — a
// retry or fallback calls it (or its sibling) again, so it must reset any
// state it accumulates (output buffers, reopened readers) at entry.
type Attempt struct {
	Engine string
	Run    func(ctx context.Context) error
}

// Policy configures a supervised run. The zero value supervises nothing
// extra: no deadline, no retries, fallback enabled if a fallback attempt
// and a Degradable classifier are supplied.
type Policy struct {
	// Timeout bounds the whole supervised run — retries and fallback share
	// the one budget. 0 means no deadline beyond the caller's context.
	Timeout time.Duration
	// FallbackOff disables the degradation ladder even when a fallback
	// attempt is available.
	FallbackOff bool
	// RetryMax is the number of retries of the primary attempt (so the
	// primary runs at most RetryMax+1 times). Only errors classified by
	// Retryable are retried.
	RetryMax int
	// RetryBackoff is slept between retries, observing the context.
	RetryBackoff time.Duration
	// Retryable classifies transient errors worth retrying. nil disables
	// retries regardless of RetryMax.
	Retryable func(error) bool
	// Degradable classifies errors that trigger the fallback ladder. nil
	// disables the ladder.
	Degradable func(error) bool
	// Sleep replaces the backoff sleep in tests. nil uses a timer that
	// respects ctx.
	Sleep func(ctx context.Context, d time.Duration) error
}

// sleep waits d or until ctx is done, whichever is first.
func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Run executes primary under the policy: retries on retryable errors, then
// — if the terminal primary error is degradable and a fallback is given —
// runs the fallback once. The returned error is the error of the attempt
// that speaks last: nil if any attempt succeeded, the fallback's error if
// the ladder ran and failed (the trusted engine's verdict outranks the
// primary's fault), the primary's terminal error otherwise.
//
// Cancellation is never laddered: once the context is done (including the
// policy deadline expiring) no further attempts start, so a deadline cannot
// be blown further by a slow fallback.
func Run(ctx context.Context, p Policy, primary Attempt, fallback *Attempt) (Outcome, error) {
	start := time.Now()
	if p.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.Timeout)
		defer cancel()
	}
	o := Outcome{Engine: primary.Engine}

	var err error
	for try := 0; ; try++ {
		o.Attempts++
		err = primary.Run(ctx)
		if err == nil || ctx.Err() != nil {
			break
		}
		if try >= p.RetryMax || p.Retryable == nil || !p.Retryable(err) {
			break
		}
		if serr := p.sleep(ctx, p.RetryBackoff); serr != nil {
			break // canceled mid-backoff; report the attempt's error
		}
	}

	if err != nil && ctx.Err() == nil &&
		!p.FallbackOff && fallback != nil &&
		p.Degradable != nil && p.Degradable(err) {
		o.Attempts++
		o.Engine = fallback.Engine
		o.FallbackReason = err
		err = fallback.Run(ctx)
	}

	o.Duration = time.Since(start)
	return o, err
}
