package server

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestPanicRecovery drives a panicking handler through the recovery
// middleware: the client gets a 500 JSON error envelope, the panic counter
// shows up in /metrics, and the server keeps serving.
func TestPanicRecovery(t *testing.T) {
	s := New(Config{})
	h := s.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom in handler")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/query", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `"internal"`) || !strings.Contains(body, "boom in handler") {
		t.Fatalf("body %q is not the JSON error envelope for the panic", body)
	}

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "rsonpathd_panics_total 1") {
		t.Fatalf("metrics do not report the panic:\n%s", rec.Body.String())
	}
}

// TestPanicAfterWriteAborts verifies the other half of the contract: once
// response bytes are out, the middleware cannot write a 500, so it aborts
// the connection instead of appending garbage to a half-sent body.
func TestPanicAfterWriteAborts(t *testing.T) {
	s := New(Config{})
	h := s.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, `{"partial":`)
		panic("boom mid-body")
	}))
	defer func() {
		if v := recover(); !errors.Is(v.(error), http.ErrAbortHandler) {
			t.Fatalf("recovered %v, want http.ErrAbortHandler", v)
		}
		if got := s.met.panics.Load(); got != 1 {
			t.Fatalf("panics counter = %d, want 1", got)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/v1/query", nil))
	t.Fatal("handler did not re-panic")
}

// TestFlushResetsCaches checks SIGHUP's backing method: a warm query cache
// stops hitting after Flush, and the flush is counted and exported.
func TestFlushResetsCaches(t *testing.T) {
	s := New(Config{})
	post := func() {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/query",
			strings.NewReader(`{"query": "$..b", "mode": "count", "document": {"a": {"b": 1}}}`))
		req.Header.Set("Content-Type", "application/json")
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("query status = %d body %s", rec.Code, rec.Body.String())
		}
	}
	post()
	post() // second request hits the compiled-query cache

	metrics := func() string {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
		return rec.Body.String()
	}
	before := metrics()
	if !strings.Contains(before, "rsonpathd_cache_flushes_total 0") {
		t.Fatalf("expected zero flushes before Flush:\n%s", before)
	}

	s.Flush()
	if got := s.Flushes(); got != 1 {
		t.Fatalf("Flushes() = %d, want 1", got)
	}
	hitsBefore := s.cache.Stats().Hits
	post() // compiles again: the flush emptied the cache
	if got := s.cache.Stats().Hits; got != hitsBefore {
		t.Fatalf("query hit the cache after Flush (hits %d -> %d)", hitsBefore, got)
	}
	if !strings.Contains(metrics(), "rsonpathd_cache_flushes_total 1") {
		t.Fatalf("metrics do not report the flush:\n%s", metrics())
	}
}

// TestUnixSocketListen serves over a unix domain socket via the
// "unix:/path" address form the cluster workers use, and checks /healthz
// reports the configured shard identity.
func TestUnixSocketListen(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "worker.sock")
	s := New(Config{Addr: "unix:" + sock, Shard: "7"})
	if err := s.Listen(); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()

	client := &http.Client{Transport: &http.Transport{
		Dial: func(string, string) (net.Conn, error) { return net.Dial("unix", sock) },
	}}
	resp, err := client.Get("http://worker/healthz")
	if err != nil {
		t.Fatalf("healthz over unix socket: %v", err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(out), `"shard": "7"`) && !strings.Contains(string(out), `"shard":"7"`) {
		t.Fatalf("healthz body %s does not carry the shard identity", out)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	s.Shutdown(ctx)
	cancel()
	<-done

	// Stale-socket removal: a dead socket file at the same path must not
	// block the next boot, or a crashed worker could never be restarted.
	if err := os.WriteFile(sock, nil, 0o600); err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Addr: "unix:" + sock})
	if err := s2.Listen(); err != nil {
		t.Fatalf("second Listen over stale socket: %v", err)
	}
	done = make(chan error, 1)
	go func() { done <- s2.Serve() }()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	s2.Shutdown(ctx2)
	<-done
}
