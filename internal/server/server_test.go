package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"rsonpath"
	"rsonpath/internal/simd"
)

// startServer boots a daemon on an ephemeral port and tears it down with
// the test. It returns the server (for seam injection) and its base URL.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s := New(cfg)
	if err := s.Listen(); err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return s, "http://" + s.Addr().String()
}

// envelope builds the request body by hand: json.Marshal would compact the
// RawMessage document, shifting every byte offset the tests assert on.
func envelope(req queryRequest) string {
	var parts []string
	if req.Query != "" {
		parts = append(parts, fmt.Sprintf(`"query": %q`, req.Query))
	}
	if req.Queries != nil {
		qs, _ := json.Marshal(req.Queries)
		parts = append(parts, `"queries": `+string(qs))
	}
	if len(req.Document) > 0 {
		parts = append(parts, `"document": `+string(req.Document))
	}
	if req.Mode != "" {
		parts = append(parts, fmt.Sprintf(`"mode": %q`, req.Mode))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// postQuery sends one single-document request and decodes the response.
func postQuery(t *testing.T, url string, req queryRequest) (int, queryResponse, errorBody, http.Header) {
	t.Helper()
	resp, err := http.Post(url+"/v1/query", "application/json", strings.NewReader(envelope(req)))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	var ok queryResponse
	var bad errorBody
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &ok); err != nil {
			t.Fatalf("decode %q: %v", raw, err)
		}
	} else if err := json.Unmarshal(raw, &bad); err != nil {
		t.Fatalf("decode error body %q: %v", raw, err)
	}
	return resp.StatusCode, ok, bad, resp.Header
}

// serveCases is the compliance subset the e2e tests replay over the wire.
var serveCases = []struct {
	name  string
	query string
	doc   string
	want  []string
}{
	{"dot child", "$.key", `{"key": "value"}`, []string{`"value"`}},
	{"nested children", "$.a.b.c", `{"a": {"b": {"c": 3}}}`, []string{`3`}},
	{"index", "$.a[1]", `{"a": [10, 20]}`, []string{`20`}},
	{"wildcard", "$.*", `{"a": 1, "b": 2}`, []string{`1`, `2`}},
	{"descendant", "$..key", `{"key": 1, "nest": {"key": 2, "arr": [{"key": 3}]}}`, []string{`1`, `2`, `3`}},
	{"descendant wildcard", "$..*", `{"a": {"b": 1}}`, []string{`{"b": 1}`, `1`}},
	{"union", "$['a','b']", `{"a": 1, "b": 2, "c": 3}`, []string{`1`, `2`}},
	{"no match", "$.missing", `{"key": 1}`, nil},
	{"deep mixed", "$.a..b.*", `{"a": [{"b": {"c": 1}}, {"b": [2]}]}`, []string{`1`, `2`}},
}

// TestServeCompliance replays the compliance subset over a real listener,
// three times per case: cold, index-build, and index-hit — the cached and
// uncached paths must agree bytewise.
func TestServeCompliance(t *testing.T) {
	_, url := startServer(t, Config{DocCacheSize: 32, DocCacheAfter: 2})
	for _, c := range serveCases {
		t.Run(c.name, func(t *testing.T) {
			wantStates := []string{"cold", "built", "hit"}
			for i, wantState := range wantStates {
				status, resp, _, _ := postQuery(t, url, queryRequest{
					Query: c.query, Document: json.RawMessage(c.doc),
				})
				if status != http.StatusOK {
					t.Fatalf("round %d: status %d", i, status)
				}
				if resp.DocumentCache != wantState {
					t.Fatalf("round %d: document_cache = %q, want %q", i, resp.DocumentCache, wantState)
				}
				if resp.Degraded {
					t.Fatalf("round %d: unexpected degradation: %s", i, resp.FallbackReason)
				}
				if resp.Count != len(c.want) {
					t.Fatalf("round %d: count = %d, want %d", i, resp.Count, len(c.want))
				}
				got := make([]string, len(resp.Values))
				for j, v := range resp.Values {
					got[j] = string(v)
				}
				for j := range c.want {
					// The response encoder compacts raw values; compare
					// whitespace-normalized.
					if got[j] != compactJSON(t, c.want[j]) {
						t.Fatalf("round %d: values = %q, want %q", i, got, c.want)
					}
				}
			}
		})
	}
}

// TestServeModes checks the offsets and count result shapes.
func TestServeModes(t *testing.T) {
	_, url := startServer(t, Config{})
	doc := json.RawMessage(`{"a": 1, "b": {"a": 22}}`)

	status, resp, _, _ := postQuery(t, url, queryRequest{Query: "$..a", Document: doc, Mode: "count"})
	if status != http.StatusOK || resp.Count != 2 || resp.Values != nil || resp.Offsets != nil {
		t.Fatalf("count mode: status %d resp %+v", status, resp)
	}
	status, resp, _, _ = postQuery(t, url, queryRequest{Query: "$..a", Document: doc, Mode: "offsets"})
	if status != http.StatusOK || len(resp.Offsets) != 2 {
		t.Fatalf("offsets mode: status %d resp %+v", status, resp)
	}
	if resp.Offsets[0] != 6 || resp.Offsets[1] != 20 {
		t.Fatalf("offsets = %v, want [6 20]", resp.Offsets)
	}
}

// TestServeMultiQuery checks the QuerySet path: per-query results in one
// shared pass.
func TestServeMultiQuery(t *testing.T) {
	_, url := startServer(t, Config{})
	status, resp, _, _ := postQuery(t, url, queryRequest{
		Queries:  []string{"$..a", "$.b"},
		Document: json.RawMessage(`{"a": 1, "b": {"a": 2}}`),
	})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("results = %+v", resp.Results)
	}
	if resp.Results[0].Count != 2 || resp.Results[1].Count != 1 {
		t.Fatalf("counts = %d, %d; want 2, 1", resp.Results[0].Count, resp.Results[1].Count)
	}
	if got := string(resp.Results[1].Values[0]); got != `{"a":2}` {
		t.Fatalf("values[1] = %q", got)
	}
	if resp.Count != 3 {
		t.Fatalf("total count = %d, want 3", resp.Count)
	}
}

// TestServeNDJSON drives the batch path: records in the body, query in the
// URL, per-record failures isolated.
func TestServeNDJSON(t *testing.T) {
	_, url := startServer(t, Config{Workers: 2})
	records := "{\"a\": 1}\n{\"a\": 2}\nnot json\n\n{\"b\": 3}\n"

	resp, err := http.Post(url+"/v1/query?query="+`%24.a`+"&mode=values",
		"application/x-ndjson", strings.NewReader(records))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var lr linesResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if lr.Count != 2 || lr.RecordsMatched != 2 {
		t.Fatalf("count = %d, matched = %d; want 2, 2", lr.Count, lr.RecordsMatched)
	}
	if lr.RecordsFailed != 1 || len(lr.Failures) != 1 || lr.Failures[0].Line != 3 {
		t.Fatalf("failures = %+v", lr.Failures)
	}
	if lr.Failures[0].Error.Kind != "malformed" {
		t.Fatalf("failure kind = %q, want malformed", lr.Failures[0].Error.Kind)
	}
	if got := string(lr.Results[0].Values[0]); got != "1" {
		t.Fatalf("first value = %q", got)
	}
	if lr.Results[1].Line != 2 || string(lr.Results[1].Values[0]) != "2" {
		t.Fatalf("second result = %+v", lr.Results[1])
	}
}

// TestServeErrorMapping checks that every failure class lands on its own
// status code with a typed JSON body.
func TestServeErrorMapping(t *testing.T) {
	_, url := startServer(t, Config{MaxMatches: 1, Timeout: time.Nanosecond})
	small := json.RawMessage(`{"a": 1}`)

	cases := []struct {
		name       string
		req        queryRequest
		wantStatus int
		wantKind   string
	}{
		{"missing query", queryRequest{Document: small}, http.StatusBadRequest, "bad_request"},
		{"missing document", queryRequest{Query: "$.a"}, http.StatusBadRequest, "bad_request"},
		{"both query forms", queryRequest{Query: "$.a", Queries: []string{"$.b"}, Document: small},
			http.StatusBadRequest, "bad_request"},
		{"bad query syntax", queryRequest{Query: "$[", Document: small},
			http.StatusBadRequest, "bad_request"},
		{"bad mode", queryRequest{Query: "$.a", Document: small, Mode: "verbose"},
			http.StatusBadRequest, "bad_request"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, _, bad, _ := postQuery(t, url, c.req)
			if status != c.wantStatus || bad.Error.Kind != c.wantKind {
				t.Fatalf("status %d kind %q, want %d %q", status, bad.Error.Kind, c.wantStatus, c.wantKind)
			}
		})
	}

	// The watchdog deadline (1ns here) must map to 408/timeout.
	t.Run("timeout", func(t *testing.T) {
		status, _, bad, _ := postQuery(t, url, queryRequest{Query: "$.a", Document: small})
		if status != http.StatusRequestTimeout || bad.Error.Kind != "timeout" {
			t.Fatalf("status %d kind %q, want 408 timeout", status, bad.Error.Kind)
		}
	})

	// Malformed and limit need a server without the instant deadline.
	_, url2 := startServer(t, Config{MaxMatches: 1})
	t.Run("malformed document", func(t *testing.T) {
		// The raw-document form skips envelope validation, so the engine's
		// own malformed-input verdict (with offset) reaches the wire.
		resp, err := http.Post(url2+"/v1/query?query=%24.a&mode=count",
			"application/json", strings.NewReader(`{"a": `))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var bad errorBody
		if err := json.NewDecoder(resp.Body).Decode(&bad); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusUnprocessableEntity || bad.Error.Kind != "malformed" {
			t.Fatalf("status %d kind %q, want 422 malformed", resp.StatusCode, bad.Error.Kind)
		}
		if bad.Error.Offset == nil {
			t.Fatalf("malformed error carries no offset: %+v", bad)
		}
	})
	t.Run("malformed envelope document", func(t *testing.T) {
		// Inside the envelope the same defect is caught at envelope parse.
		status, _, bad, _ := postQuery(t, url2, queryRequest{
			Query: "$.a", Document: json.RawMessage(`{"a": `)})
		if status != http.StatusBadRequest || bad.Error.Kind != "bad_request" {
			t.Fatalf("status %d kind %q, want 400 bad_request", status, bad.Error.Kind)
		}
	})
	t.Run("match limit", func(t *testing.T) {
		status, _, bad, _ := postQuery(t, url2, queryRequest{
			Query: "$..a", Document: json.RawMessage(`{"a": 1, "b": {"a": 2}}`)})
		if status != http.StatusRequestEntityTooLarge || bad.Error.Kind != "limit" {
			t.Fatalf("status %d kind %q, want 413 limit", status, bad.Error.Kind)
		}
	})
	t.Run("invalid envelope", func(t *testing.T) {
		resp, err := http.Post(url2+"/v1/query", "application/json", strings.NewReader("{"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
	t.Run("body too large", func(t *testing.T) {
		_, url3 := startServer(t, Config{MaxBodyBytes: 64})
		big := queryRequest{Query: "$.a", Document: json.RawMessage(`"` + strings.Repeat("x", 256) + `"`)}
		status, _, bad, _ := postQuery(t, url3, big)
		if status != http.StatusRequestEntityTooLarge || bad.Error.Kind != "limit" {
			t.Fatalf("status %d kind %q, want 413 limit", status, bad.Error.Kind)
		}
	})
}

// degradedRunner is the test seam's stand-in for a query whose primary
// engine faulted and whose answer came from the DOM oracle: it emits the
// oracle's offsets and reports a degraded Outcome, exactly what
// RunSupervised produces after the ladder runs. The server must surface
// that in the response body, the degraded header, and the metrics.
type degradedRunner struct {
	offsets []int
	reason  error
}

func (d *degradedRunner) outcome() rsonpath.Outcome {
	return rsonpath.Outcome{Attempts: 2, Engine: "dom", FallbackReason: d.reason}
}

func (d *degradedRunner) RunSupervised(_ context.Context, _ []byte, emit func(pos int)) (rsonpath.Outcome, error) {
	for _, pos := range d.offsets {
		emit(pos)
	}
	return d.outcome(), nil
}

func (d *degradedRunner) RunIndexedSupervised(_ context.Context, _ *rsonpath.IndexedDocument, emit func(pos int)) (rsonpath.Outcome, error) {
	for _, pos := range d.offsets {
		emit(pos)
	}
	return d.outcome(), nil
}

func (d *degradedRunner) RunContext(_ context.Context, _ []byte, emit func(pos int)) error {
	for _, pos := range d.offsets {
		emit(pos)
	}
	return nil
}

func (d *degradedRunner) RunLinesParallel(r io.Reader, _ int, visit func(m rsonpath.LineMatch) error) error {
	oc := d.outcome()
	return visit(rsonpath.LineMatch{Line: 1, Record: []byte(`{}`), Offsets: d.offsets, Outcome: &oc})
}

func (d *degradedRunner) Explain(rsonpath.DocStats) rsonpath.Plan {
	return rsonpath.Plan{Strategy: "standard", Engine: rsonpath.EngineRsonpath, Rule: "test-fake"}
}

// TestServeDegraded injects a degraded outcome through the compile seam and
// asserts the request is answered (200), marked, and counted — the serving
// analogue of the CLI's exit code 6.
func TestServeDegraded(t *testing.T) {
	s, url := startServer(t, Config{})
	injected := errors.New("rsonpath: internal error in engine rsonpath: injected fault")
	degrade := func(string) (queryRunner, error) {
		return &degradedRunner{offsets: []int{6}, reason: injected}, nil
	}
	s.compileQuery = degrade
	s.compileLines = degrade

	status, resp, _, hdr := postQuery(t, url, queryRequest{
		Query: "$.a", Document: json.RawMessage(`{"a": 7}`)})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if !resp.Degraded || resp.Engine != "dom" || resp.Attempts != 2 {
		t.Fatalf("outcome not surfaced: %+v", resp)
	}
	if !strings.Contains(resp.FallbackReason, "injected fault") {
		t.Fatalf("fallback_reason = %q", resp.FallbackReason)
	}
	if hdr.Get(degradedHeader) != "true" {
		t.Fatalf("degraded header missing")
	}
	if got := string(resp.Values[0]); got != "7" {
		t.Fatalf("degraded answer = %q, want 7", got)
	}
	if n := metricValue(t, url, "rsonpathd_degraded_total"); n != 1 {
		t.Fatalf("rsonpathd_degraded_total = %d, want 1", n)
	}
	// NDJSON records degrade per record.
	resp2, err := http.Post(url+"/v1/query?query=%24.a", "application/x-ndjson",
		strings.NewReader("{}\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var lr linesResponse
	if err := json.NewDecoder(resp2.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	if lr.RecordsDegraded != 1 || resp2.Header.Get(degradedHeader) != "true" {
		t.Fatalf("NDJSON degradation not surfaced: %+v header %q", lr, resp2.Header.Get(degradedHeader))
	}
	if n := metricValue(t, url, "rsonpathd_degraded_total"); n != 2 {
		t.Fatalf("rsonpathd_degraded_total = %d, want 2", n)
	}
}

// compactJSON whitespace-normalizes a JSON fragment the way the response
// encoder does.
func compactJSON(t *testing.T, s string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, []byte(s)); err != nil {
		t.Fatalf("compact %q: %v", s, err)
	}
	return buf.String()
}

// metricValue scrapes /metrics and returns the named series' value.
func metricValue(t *testing.T, url, name string) int64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		var v int64
		if n, _ := fmt.Sscanf(line, name+" %d", &v); n == 1 {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, raw)
	return 0
}

// TestServeMetricsAndCacheCounters verifies the query-cache hit/miss
// counters travel through /metrics: the same query twice is one compile.
func TestServeMetricsAndCacheCounters(t *testing.T) {
	_, url := startServer(t, Config{})
	req := queryRequest{Query: "$..metric", Document: json.RawMessage(`{"metric": 1}`), Mode: "count"}
	for i := 0; i < 3; i++ {
		if status, _, _, _ := postQuery(t, url, req); status != http.StatusOK {
			t.Fatalf("round %d: status %d", i, status)
		}
	}
	if misses := metricValue(t, url, "rsonpathd_query_cache_misses_total"); misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
	if hits := metricValue(t, url, "rsonpathd_query_cache_hits_total"); hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
	if n := metricValue(t, url, "rsonpathd_requests_total"); n != 3 {
		t.Fatalf("requests_total = %d, want 3", n)
	}
	// /healthz and /version answer too.
	for _, path := range []string{"/healthz", "/version"} {
		resp, err := http.Get(url + path)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %v (%v)", path, err, resp)
		}
		resp.Body.Close()
	}
}

// TestServeSimdBackendSurfaced forces each available classification backend
// in turn and asserts both /version and /metrics report it, so operators can
// always tell which kernels a process is running (DESIGN.md §16).
func TestServeSimdBackendSurfaced(t *testing.T) {
	prev := simd.Backend()
	defer func() {
		if err := simd.SetBackend(prev); err != nil {
			t.Fatalf("restoring backend %q: %v", prev, err)
		}
	}()
	_, url := startServer(t, Config{})
	for _, name := range simd.Backends() {
		if err := simd.SetBackend(name); err != nil {
			t.Fatalf("SetBackend(%q): %v", name, err)
		}
		get := func(path string) string {
			resp, err := http.Get(url + path)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: status %d: %s", path, resp.StatusCode, raw)
			}
			return string(raw)
		}
		var ver struct {
			Simd string `json:"simd"`
		}
		body := get("/version")
		if err := json.Unmarshal([]byte(body), &ver); err != nil {
			t.Fatalf("backend %s: /version %q: %v", name, body, err)
		}
		if ver.Simd != name {
			t.Errorf("backend %s: /version simd = %q", name, ver.Simd)
		}
		want := fmt.Sprintf("rsonpathd_simd_backend{name=%q} 1", name)
		if met := get("/metrics"); !strings.Contains(met, want) {
			t.Errorf("backend %s: /metrics missing %q", name, want)
		}
	}
}

// TestServeConcurrent hammers one daemon from many connections with a mixed
// workload under -race: every response must be well-formed and correct —
// zero dropped or garbled responses.
func TestServeConcurrent(t *testing.T) {
	_, url := startServer(t, Config{DocCacheSize: 16, Workers: 2})
	type workItem struct {
		req       queryRequest
		wantCount int
	}
	work := []workItem{
		{queryRequest{Query: "$..a", Document: json.RawMessage(`{"a": 1, "b": {"a": 2}}`), Mode: "count"}, 2},
		{queryRequest{Query: "$.b.a", Document: json.RawMessage(`{"a": 1, "b": {"a": 2}}`), Mode: "values"}, 1},
		{queryRequest{Queries: []string{"$..x", "$.y"}, Document: json.RawMessage(`{"x": [1], "y": {"x": 5}}`)}, 3},
		{queryRequest{Query: "$.nope", Document: json.RawMessage(`{"a": 1}`), Mode: "count"}, 0},
	}
	const goroutines = 8
	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				item := work[(g+i)%len(work)]
				body, _ := json.Marshal(item.req)
				resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- fmt.Errorf("goroutine %d round %d: %w", g, i, err)
					return
				}
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Errorf("goroutine %d round %d: read: %w", g, i, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d round %d: status %d: %s", g, i, resp.StatusCode, raw)
					return
				}
				var qr queryResponse
				if err := json.Unmarshal(raw, &qr); err != nil {
					errs <- fmt.Errorf("goroutine %d round %d: garbled response %q: %w", g, i, raw, err)
					return
				}
				if qr.Count != item.wantCount {
					errs <- fmt.Errorf("goroutine %d round %d: count %d, want %d", g, i, qr.Count, item.wantCount)
					return
				}
				if qr.Degraded {
					errs <- fmt.Errorf("goroutine %d round %d: degraded: %s", g, i, qr.FallbackReason)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// slowRunner holds the handler long enough for shutdown to overlap it.
type slowRunner struct{ delay time.Duration }

func (sl *slowRunner) RunSupervised(ctx context.Context, _ []byte, emit func(pos int)) (rsonpath.Outcome, error) {
	select {
	case <-time.After(sl.delay):
	case <-ctx.Done():
		return rsonpath.Outcome{Attempts: 1, Engine: "slow"}, ctx.Err()
	}
	emit(0)
	return rsonpath.Outcome{Attempts: 1, Engine: "slow"}, nil
}

func (sl *slowRunner) RunIndexedSupervised(ctx context.Context, doc *rsonpath.IndexedDocument, emit func(pos int)) (rsonpath.Outcome, error) {
	return sl.RunSupervised(ctx, doc.Bytes(), emit)
}

func (sl *slowRunner) Explain(rsonpath.DocStats) rsonpath.Plan {
	return rsonpath.Plan{Strategy: "standard", Engine: rsonpath.EngineRsonpath, Rule: "test-fake"}
}

func (sl *slowRunner) RunLinesParallel(io.Reader, int, func(m rsonpath.LineMatch) error) error {
	return nil
}

func (sl *slowRunner) RunContext(ctx context.Context, data []byte, emit func(pos int)) error {
	_, err := sl.RunSupervised(ctx, data, emit)
	return err
}

// TestShutdownDrains verifies graceful shutdown: a request in flight when
// Shutdown is called still completes with a full response, the listener
// refuses new connections, and Shutdown returns once the request is done.
func TestShutdownDrains(t *testing.T) {
	s := New(Config{Addr: "127.0.0.1:0"})
	s.compileQuery = func(string) (queryRunner, error) {
		return &slowRunner{delay: 300 * time.Millisecond}, nil
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve() }()
	url := "http://" + s.Addr().String()

	type result struct {
		status int
		count  int
		err    error
	}
	reqDone := make(chan result, 1)
	go func() {
		body := `{"query": "$.a", "document": {"a": 1}, "mode": "count"}`
		resp, err := http.Post(url+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			reqDone <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var qr queryResponse
		err = json.NewDecoder(resp.Body).Decode(&qr)
		reqDone <- result{status: resp.StatusCode, count: qr.Count, err: err}
	}()

	time.Sleep(100 * time.Millisecond) // let the request reach the slow handler
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	shutdownStart := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
	res := <-reqDone
	if res.err != nil || res.status != http.StatusOK || res.count != 1 {
		t.Fatalf("in-flight request during drain: %+v", res)
	}
	if waited := time.Since(shutdownStart); waited < 100*time.Millisecond {
		t.Fatalf("shutdown returned in %v — before the in-flight request finished", waited)
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatalf("listener still accepting after shutdown")
	}
}

// TestShutdownGoroutineAccounting starts a daemon, works it (including the
// NDJSON worker pool), shuts it down, and verifies the goroutine count
// returns to the baseline — the leak check the drain contract promises.
func TestShutdownGoroutineAccounting(t *testing.T) {
	before := runtime.NumGoroutine()

	s := New(Config{Addr: "127.0.0.1:0", Workers: 4, DocCacheSize: 8})
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve() }()
	url := "http://" + s.Addr().String()

	client := &http.Client{}
	for i := 0; i < 10; i++ {
		body := strings.NewReader(`{"query": "$..a", "document": {"a": [1, {"a": 2}]}, "mode": "count"}`)
		resp, err := client.Post(url+"/v1/query", "application/json", body)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := client.Post(url+"/v1/query?query=%24.a", "application/x-ndjson",
		strings.NewReader("{\"a\": 1}\n{\"a\": 2}\n{\"b\": 3}\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	client.CloseIdleConnections()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}

	// Connections unwind asynchronously after Shutdown returns; poll.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: %d before, %d after shutdown\n%s", before, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServePlanReporting: each response names the execution plan that
// served it, and /metrics counts served runs per strategy. The document
// cache's planner-driven promotion (DocCacheAfter = 0) flips the plan from
// the cold scan to the indexed path on the second sighting.
func TestServePlanReporting(t *testing.T) {
	_, url := startServer(t, Config{DocCacheSize: 8})
	req := queryRequest{Query: "$.a.b", Document: json.RawMessage(`{"a": {"b": 1}}`), Mode: "count"}
	wantPlans := []struct{ plan, rule string }{
		{"skip", "child-skipping"},
		{"indexed", "indexed-available"},
		{"indexed", "indexed-available"},
	}
	for i, want := range wantPlans {
		status, resp, _, _ := postQuery(t, url, req)
		if status != http.StatusOK {
			t.Fatalf("round %d: status %d", i, status)
		}
		if resp.Plan != want.plan || resp.PlanRule != want.rule {
			t.Fatalf("round %d: plan %q rule %q, want %q %q",
				i, resp.Plan, resp.PlanRule, want.plan, want.rule)
		}
	}
	status, resp, _, _ := postQuery(t, url, queryRequest{
		Query: "$..name", Document: json.RawMessage(`{"x": {"name": "y"}}`), Mode: "count"})
	if status != http.StatusOK {
		t.Fatalf("head-skip round: status %d", status)
	}
	if resp.Plan != "head-skip" || resp.PlanRule != "head-skip" {
		t.Fatalf("head-skip round: plan %q rule %q", resp.Plan, resp.PlanRule)
	}
	if n := metricValue(t, url, "rsonpathd_plan_skip_total"); n != 1 {
		t.Fatalf("plan_skip_total = %d, want 1", n)
	}
	if n := metricValue(t, url, "rsonpathd_plan_indexed_total"); n != 2 {
		t.Fatalf("plan_indexed_total = %d, want 2", n)
	}
	if n := metricValue(t, url, "rsonpathd_plan_head_skip_total"); n != 1 {
		t.Fatalf("plan_head_skip_total = %d, want 1", n)
	}
}
