package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"time"

	"rsonpath"
)

// Streamed responses (stream=1 / envelope "stream": true): instead of
// buffering every match and marshaling one envelope, the daemon writes one
// NDJSON frame per match the moment the engine finds it, through a bounded
// writer that flushes the first frame immediately (first byte before the
// evaluation finishes) and every flushEvery frames afterwards. Response
// memory is the write buffer, not the result set.
//
// The run uses Query.RunContext, not the supervisor: output that has
// already left the process cannot be transparently re-run, so a streamed
// run has no degradation ladder by construction. The status line is decided
// at the first frame; a failure before it is a normal JSON error with the
// right status, a failure after it arrives as an {"error": ...} trailer on
// the 200 stream — the "done" trailer is the client's proof of a complete
// result.
//
// Frame vocabulary (one JSON object per line):
//
//	{"value": <match>}   / {"offset": N}     one match (mode values/offsets)
//	{"record": {...}}    / {"failure": {...}}  one NDJSON record's results
//	{"done": {...}}      summary trailer: the stream completed
//	{"error": {...}}     failure trailer: the stream is truncated
type streamFrame struct {
	Value   json.RawMessage `json:"value,omitempty"`
	Offset  *int            `json:"offset,omitempty"`
	Record  *lineResult     `json:"record,omitempty"`
	Failure *lineFailure    `json:"failure,omitempty"`
	Done    *streamDone     `json:"done,omitempty"`
	Error   *errorDetail    `json:"error,omitempty"`
}

// streamDone is the summary trailer. The single-document fields and the
// NDJSON batch fields share the struct; zero fields are omitted.
type streamDone struct {
	Count           int     `json:"count"`
	Plan            string  `json:"plan,omitempty"`
	PlanRule        string  `json:"plan_rule,omitempty"`
	RecordsMatched  int     `json:"records_matched,omitempty"`
	RecordsFailed   int     `json:"records_failed,omitempty"`
	RecordsDegraded int     `json:"records_degraded,omitempty"`
	DurationMS      float64 `json:"duration_ms"`
}

// streamWriter frames and flushes an NDJSON response. The bufio layer
// bounds per-response write memory; the ResponseController pushes each
// flush through the HTTP chunked encoder so the client sees frames while
// the run is still going.
type streamWriter struct {
	hw      http.ResponseWriter
	rc      *http.ResponseController
	bw      *bufio.Writer
	started bool
	frames  int
	err     error // first write/marshal failure; the stream is dead after it
}

// streamBufBytes bounds the write buffer; flushEvery bounds how many frames
// ride in it before a flush (the first frame always flushes, for first-byte
// latency).
const (
	streamBufBytes = 32 << 10
	flushEvery     = 64
)

func newStreamWriter(w http.ResponseWriter) *streamWriter {
	return &streamWriter{hw: w, rc: http.NewResponseController(w), bw: bufio.NewWriterSize(w, streamBufBytes)}
}

// frame writes one NDJSON frame. The first frame decides the response:
// Content-Type and the 200 status line go out with it.
func (sw *streamWriter) frame(fr *streamFrame) error {
	if sw.err != nil {
		return sw.err
	}
	if !sw.started {
		sw.hw.Header().Set("Content-Type", "application/x-ndjson")
		sw.hw.WriteHeader(http.StatusOK)
		sw.started = true
	}
	data, err := json.Marshal(fr)
	if err != nil {
		sw.err = err
		return err
	}
	data = append(data, '\n')
	if _, err := sw.bw.Write(data); err != nil {
		sw.err = err
		return err
	}
	sw.frames++
	if sw.frames == 1 || sw.frames%flushEvery == 0 {
		sw.flush()
	}
	return sw.err
}

// flush pushes the buffer through the chunked encoder. Flush errors (client
// gone) poison the writer like write errors do.
func (sw *streamWriter) flush() {
	if err := sw.bw.Flush(); err != nil && sw.err == nil {
		sw.err = err
	}
	// Transports without flush support (plain recorders) are fine: the
	// bufio flush above already handed the bytes over.
	sw.rc.Flush()
}

// serveSingleStream evaluates one query and streams each match as it is
// found. The document-index cache is bypassed: RunContext's incremental
// emission rides the streaming scan path, which serves no planes.
func (s *Server) serveSingleStream(w http.ResponseWriter, r *http.Request, req *queryRequest, mode string, start time.Time) {
	if mode == "count" {
		s.writeError(w, badRequest("stream requires mode values or offsets"))
		return
	}
	q, err := s.compileQuery(req.Query)
	if err != nil {
		s.writeError(w, badQuery(err))
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	// A dead client stops the run at its next cancellation point instead of
	// evaluating into a void.
	runCtx, stop := context.WithCancel(ctx)
	defer stop()

	doc := []byte(req.Document)
	pl := q.Explain(rsonpath.DocStats{Bytes: len(doc)})
	s.met.notePlan(pl.Strategy)

	sw := newStreamWriter(w)
	count := 0
	runErr := q.RunContext(runCtx, doc, func(pos int) {
		if sw.err != nil {
			return
		}
		var fr streamFrame
		if mode == "offsets" {
			p := pos
			fr.Offset = &p
		} else {
			v, err := rsonpath.ValueAt(doc, pos)
			if err != nil {
				sw.err = err
				stop()
				return
			}
			fr.Value = json.RawMessage(v)
		}
		if sw.frame(&fr) != nil {
			stop()
			return
		}
		count++
	})
	if runErr == nil {
		runErr = sw.err
	}
	if runErr != nil {
		s.streamFail(w, sw, runErr)
		return
	}
	sw.frame(&streamFrame{Done: &streamDone{Count: count, Plan: pl.Strategy, PlanRule: pl.Rule,
		DurationMS: float64(time.Since(start)) / float64(time.Millisecond)}})
	sw.flush()
	s.met.streamed.Add(1)
}

// serveLinesStream is handleLines with per-record frames: each matched
// record (and each failed one) is written as soon as the worker pool
// delivers it, so an NDJSON bulk response begins before the batch finishes
// and never holds the whole result set. Count mode streams only the "done"
// trailer — the point of count mode is the aggregate.
func (s *Server) serveLinesStream(w http.ResponseWriter, r *http.Request, q queryRunner, allowFB bool, mode string, start time.Time) {
	sw := newStreamWriter(w)
	var count, matched, failed, degraded int
	err := q.RunLinesParallel(r.Body, s.cfg.Workers, func(m rsonpath.LineMatch) error {
		s.met.ndjsonRecs.Add(1)
		if m.Err != nil {
			failed++
			d := detailFor(m.Err)
			return sw.frame(&streamFrame{Failure: &lineFailure{Line: m.Line, Error: d}})
		}
		if m.Outcome != nil && m.Outcome.Degraded() {
			degraded++
			s.met.degraded.Add(1)
		}
		if len(m.Offsets) == 0 {
			return nil
		}
		matched++
		count += len(m.Offsets)
		res := lineResult{Line: m.Line, Count: len(m.Offsets),
			Degraded: m.Outcome != nil && m.Outcome.Degraded()}
		switch mode {
		case "offsets":
			res.Offsets = append([]int(nil), m.Offsets...)
		case "values":
			var err error
			// The record buffer is reused by the pool; values must be copied.
			res.Values, err = extractValues(m.Record, m.Offsets, true)
			if err != nil {
				return err
			}
		default:
			return nil // count mode aggregates only
		}
		return sw.frame(&streamFrame{Record: &res})
	})
	s.recordFallback(allowFB, degraded > 0)
	if err == nil {
		err = sw.err
	}
	if err != nil {
		s.streamFail(w, sw, err)
		return
	}
	sw.frame(&streamFrame{Done: &streamDone{Count: count, RecordsMatched: matched,
		RecordsFailed: failed, RecordsDegraded: degraded,
		DurationMS: float64(time.Since(start)) / float64(time.Millisecond)}})
	sw.flush()
	s.met.streamed.Add(1)
}

// streamFail reports a failed streamed run: with nothing sent yet it is an
// ordinary JSON error with the right status; after the first frame the
// status line is gone, so the failure arrives as an {"error": ...} trailer
// (and the missing "done" marks the stream truncated either way).
func (s *Server) streamFail(w http.ResponseWriter, sw *streamWriter, err error) {
	if !sw.started {
		s.writeError(w, err)
		return
	}
	d := detailFor(err)
	s.countError(d.Kind)
	sw.frame(&streamFrame{Error: &d})
	sw.flush()
}
