package server

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"rsonpath/internal/planner"
	"rsonpath/internal/simd"
)

// metrics is the daemon's counter set, exposition-format compatible with
// Prometheus text scraping (counters and gauges only, no labels — each
// series gets its own name so the renderer stays trivial and dependency
// free). All fields are atomics: handlers on any connection bump them
// without coordination.
type metrics struct {
	requests   atomic.Int64 // requests to /v1/query, any outcome
	inflight   atomic.Int64 // requests currently being served
	degraded   atomic.Int64 // requests answered by the fallback engine
	errBadReq  atomic.Int64 // 4xx protocol/envelope/query errors
	errMalform atomic.Int64 // malformed-document rejections
	errLimit   atomic.Int64 // resource-limit rejections
	errTimeout atomic.Int64 // deadline/cancellation failures
	errIntern  atomic.Int64 // internal faults that escaped the ladder
	ndjsonRecs atomic.Int64 // NDJSON records evaluated
	docHits    atomic.Int64 // document-cache index hits
	docBuilds  atomic.Int64 // document indexes built
	durationNs atomic.Int64 // summed /v1/query wall time
	streamed   atomic.Int64 // responses streamed incrementally
	flushes    atomic.Int64 // SIGHUP cache flushes performed
	panics     atomic.Int64 // handler panics converted to 500s

	// Admission-control counters (DESIGN.md §14): every arrival is either
	// admitted or shed for exactly one of the reasons below. errOverload
	// counts the 429 responses (sheds that reached the wire).
	admAdmitted     atomic.Int64
	admShedQueue    atomic.Int64 // wait queue full
	admShedDeadline atomic.Int64 // caller deadline expired while queued
	admShedBytes    atomic.Int64 // in-flight bytes budget exhausted
	admShedTooBig   atomic.Int64 // larger than the whole bytes budget (413)
	admShedBrownout atomic.Int64 // brownout ladder shed the request class
	errOverload     atomic.Int64 // 429s written

	// planRuns counts served runs per execution-plan strategy, indexed like
	// planner.Strategies; notePlan resolves the strategy name the handlers
	// see on the public Plan.
	planRuns [planner.NumStrategies]atomic.Int64
}

// notePlan counts one served run of the named strategy. Unknown names (a
// test fake's invented strategy) are dropped rather than miscounted.
func (m *metrics) notePlan(strategy string) {
	for i, s := range planner.Strategies {
		if s.String() == strategy {
			m.planRuns[i].Add(1)
			return
		}
	}
}

// observe records one finished request.
func (m *metrics) observe(d time.Duration) {
	m.requests.Add(1)
	m.durationNs.Add(int64(d))
}

// render writes the exposition text. The query-cache and doc-cache gauges
// are passed in by the server, which owns those structures, as are the
// admission-subsystem gauges (gate occupancy, brownout level, breaker
// state).
func (m *metrics) render(w io.Writer, cache cacheGauges, docs docGauges, adm admGauges) {
	p := func(name string, kind string, v int64) {
		fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", name, kind, name, v)
	}
	p("rsonpathd_requests_total", "counter", m.requests.Load())
	p("rsonpathd_requests_inflight", "gauge", m.inflight.Load())
	p("rsonpathd_degraded_total", "counter", m.degraded.Load())
	p("rsonpathd_errors_bad_request_total", "counter", m.errBadReq.Load())
	p("rsonpathd_errors_malformed_total", "counter", m.errMalform.Load())
	p("rsonpathd_errors_limit_total", "counter", m.errLimit.Load())
	p("rsonpathd_errors_timeout_total", "counter", m.errTimeout.Load())
	p("rsonpathd_errors_internal_total", "counter", m.errIntern.Load())
	p("rsonpathd_errors_overload_total", "counter", m.errOverload.Load())
	p("rsonpathd_ndjson_records_total", "counter", m.ndjsonRecs.Load())
	p("rsonpathd_streamed_responses_total", "counter", m.streamed.Load())
	p("rsonpathd_cache_flushes_total", "counter", m.flushes.Load())
	p("rsonpathd_panics_total", "counter", m.panics.Load())
	p("rsonpathd_query_cache_hits_total", "counter", cache.hits)
	p("rsonpathd_query_cache_misses_total", "counter", cache.misses)
	p("rsonpathd_query_cache_evictions_total", "counter", cache.evictions)
	p("rsonpathd_query_cache_entries", "gauge", int64(cache.len))
	p("rsonpathd_doc_cache_hits_total", "counter", m.docHits.Load())
	p("rsonpathd_doc_cache_builds_total", "counter", m.docBuilds.Load())
	p("rsonpathd_doc_cache_entries", "gauge", int64(docs.len))
	p("rsonpathd_doc_cache_evictions_total", "counter", docs.evicted)
	p("rsonpathd_doccache_bytes", "gauge", docs.bytes)
	p("rsonpathd_admission_admitted_total", "counter", m.admAdmitted.Load())
	p("rsonpathd_admission_shed_queue_full_total", "counter", m.admShedQueue.Load())
	p("rsonpathd_admission_shed_deadline_total", "counter", m.admShedDeadline.Load())
	p("rsonpathd_admission_shed_bytes_total", "counter", m.admShedBytes.Load())
	p("rsonpathd_admission_shed_too_large_total", "counter", m.admShedTooBig.Load())
	p("rsonpathd_admission_shed_brownout_total", "counter", m.admShedBrownout.Load())
	p("rsonpathd_admission_queue_depth", "gauge", int64(adm.queueDepth))
	p("rsonpathd_admission_queue_capacity", "gauge", int64(adm.queueCap))
	p("rsonpathd_admission_inflight_weight", "gauge", adm.usedWeight)
	p("rsonpathd_admission_weight_capacity", "gauge", adm.capWeight)
	p("rsonpathd_admission_inflight_bytes", "gauge", adm.usedBytes)
	p("rsonpathd_admission_bytes_budget", "gauge", adm.bytesBudget)
	p("rsonpathd_brownout_level", "gauge", int64(adm.brownoutLevel))
	p("rsonpathd_breaker_state", "gauge", int64(adm.breakerState))
	p("rsonpathd_breaker_opens_total", "counter", adm.breakerOpens)
	p("rsonpathd_goroutines", "gauge", int64(runtime.NumGoroutine()))
	for i, s := range planner.Strategies {
		name := strings.ReplaceAll(s.String(), "-", "_")
		p("rsonpathd_plan_"+name+"_total", "counter", m.planRuns[i].Load())
	}
	fmt.Fprintf(w, "# TYPE rsonpathd_request_duration_seconds_sum counter\nrsonpathd_request_duration_seconds_sum %g\n",
		time.Duration(m.durationNs.Load()).Seconds())
	fmt.Fprintf(w, "# TYPE rsonpathd_request_duration_seconds_count counter\nrsonpathd_request_duration_seconds_count %d\n",
		m.requests.Load())
	// The one labelled series: the classification kernel backend serving
	// this process, as an info-style constant gauge (DESIGN.md §16).
	fmt.Fprintf(w, "# TYPE rsonpathd_simd_backend gauge\nrsonpathd_simd_backend{name=%q} 1\n",
		simd.Backend())
}

// cacheGauges, docGauges and admGauges decouple the renderer from the
// structures that own the numbers.
type cacheGauges struct {
	hits, misses, evictions int64
	len                     int
}

type docGauges struct {
	len     int
	bytes   int64
	evicted int64
}

// admGauges is the admission subsystem's point-in-time state.
type admGauges struct {
	queueDepth, queueCap   int
	usedWeight, capWeight  int64
	usedBytes, bytesBudget int64
	brownoutLevel          int
	breakerState           int // 0 closed, 1 half-open, 2 open
	breakerOpens           int64
}
