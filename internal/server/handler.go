package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"mime"
	"net/http"
	"strconv"
	"time"

	"rsonpath"
	"rsonpath/internal/admission"
)

// queryRequest is the JSON envelope of a single-document request. Exactly
// one of Query/Queries must be set; Document carries the JSON document
// verbatim (any JSON value).
type queryRequest struct {
	Query    string          `json:"query,omitempty"`
	Queries  []string        `json:"queries,omitempty"`
	Document json.RawMessage `json:"document,omitempty"`
	// Mode selects the result shape: "values" (default), "offsets", or
	// "count".
	Mode string `json:"mode,omitempty"`
	// Stream requests an incrementally flushed NDJSON response: one frame
	// per match, written as the engine finds it, with a "done" summary
	// trailer. See DESIGN.md §14 — streamed runs trade the degradation
	// ladder for first-byte latency and bounded response memory.
	Stream bool `json:"stream,omitempty"`
}

// queryResponse is the success envelope. Count is always present; Offsets
// and Values per mode; Results replaces them for multi-query requests.
// Values are re-emitted through the JSON encoder and arrive compacted
// (whitespace-normalized) — byte positions in Offsets, by contrast, always
// refer to the document exactly as it was sent.
type queryResponse struct {
	Count   int               `json:"count"`
	Offsets []int             `json:"offsets,omitempty"`
	Values  []json.RawMessage `json:"values,omitempty"`
	Results []queryResult     `json:"results,omitempty"`

	// Engine, Attempts, Degraded and FallbackReason surface the supervised
	// run's Outcome: Degraded means the answer is correct but was produced
	// by the DOM oracle after the primary engine faulted — the serving
	// equivalent of the CLI's exit code 6.
	Engine         string  `json:"engine"`
	Attempts       int     `json:"attempts"`
	Degraded       bool    `json:"degraded"`
	FallbackReason string  `json:"fallback_reason,omitempty"`
	DurationMS     float64 `json:"duration_ms"`
	// DocumentCache reports how the document-index cache served this
	// request: "hit", "built", "cold", or "off".
	DocumentCache string `json:"document_cache,omitempty"`
	// Plan is the execution-plan strategy the planner chose for this
	// request ("indexed", "head-skip", ...), with the rule that chose it in
	// PlanRule; see rsonpath.Query.Explain.
	Plan     string `json:"plan,omitempty"`
	PlanRule string `json:"plan_rule,omitempty"`
}

// queryResult is one query's slice of a multi-query response.
type queryResult struct {
	Query   string            `json:"query"`
	Count   int               `json:"count"`
	Offsets []int             `json:"offsets,omitempty"`
	Values  []json.RawMessage `json:"values,omitempty"`
}

// errorBody is the JSON error envelope; Kind is one of "bad_request",
// "malformed", "limit", "timeout", "overload", "internal".
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
	Offset  *int   `json:"offset,omitempty"`
}

// degradedHeader marks responses answered by the fallback engine, so load
// balancers and clients can see degradation without parsing the body.
const degradedHeader = "X-Rsonpathd-Degraded"

// Admission weight scale: a point query over a small body is 1 unit; NDJSON
// bulk requests weigh bulkClass times as much (they fan out over the worker
// pool), and every weightSizeUnit bytes of declared body adds another class
// worth of weight, capped so a single huge request degrades to "runs alone"
// rather than to an unpayable price (the gate clamps at capacity anyway).
const (
	bulkClass      = 4
	weightSizeUnit = 8 << 20
	maxSizeFactor  = 8
)

// requestWeight estimates the admission weight of a request from its class
// and declared size — the "request class × estimated document cost" of the
// overload model.
func requestWeight(bulk bool, bodyBytes int64) int64 {
	class := int64(1)
	if bulk {
		class = bulkClass
	}
	factor := 1 + bodyBytes/weightSizeUnit
	if factor > maxSizeFactor {
		factor = maxSizeFactor
	}
	return class * factor
}

// handleQuery is POST /v1/query. Three request forms share the endpoint:
//
//   - JSON envelope: body {"query": ..., "document": ..., "mode": ...} (or
//     "queries" for a QuerySet). The envelope parse validates the document
//     shallowly, so defects the engine would pinpoint are reported as
//     envelope errors; exact byte offsets need the raw form.
//   - raw document: the "query" URL parameter is set and the body is the
//     document itself, verbatim — no envelope, no double validation, the
//     engine's own malformed-input verdicts (with offsets) surface.
//   - NDJSON: Content-Type application/x-ndjson, query in the "query" URL
//     parameter, body is newline-delimited records routed through the
//     parallel lines worker pool.
//
// Every form passes admission before its body is read: the declared size is
// checked against the body cap (413), the brownout ladder may shed bulk
// work (429), and the gate either admits, queues briefly, or sheds (429 +
// Retry-After). The gate holds the request's slot and byte reservation
// until the response is written.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.met.inflight.Add(1)
	start := time.Now()
	defer func() {
		s.met.inflight.Add(-1)
		s.met.observe(time.Since(start))
	}()

	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil {
		ct = mt
	}
	bulk := ct == "application/x-ndjson" || ct == "application/ndjson" || ct == "application/jsonlines"

	// Body-size enforcement before any read: a declared length over the cap
	// is rejected without consuming the upload. Chunked bodies (unknown
	// length) reserve the worst case and are cut off by MaxBytesReader.
	if r.ContentLength > s.cfg.MaxBodyBytes {
		s.writeError(w, &protocolError{status: http.StatusRequestEntityTooLarge, kind: "limit",
			message: "request body of " + strconv.FormatInt(r.ContentLength, 10) +
				" bytes exceeds the " + strconv.FormatInt(s.cfg.MaxBodyBytes, 10) + "-byte limit"})
		return
	}
	resBytes := r.ContentLength
	if resBytes < 0 {
		resBytes = s.cfg.MaxBodyBytes
	}

	// Brownout's deepest rung sheds NDJSON bulk before touching point
	// queries: the heaviest work class goes first, and the shed observes
	// queue occupancy (not 1.0) so draining pressure steps the ladder back
	// up.
	level := s.brownoutLevel()
	if bulk && level >= admission.BrownoutShedBulk {
		s.met.admShedBrownout.Add(1)
		s.observePressure(s.occupancy())
		s.writeError(w, overloadError("overloaded: bulk NDJSON requests are temporarily shed", 1+level))
		return
	}

	// The gate: admitted, briefly queued, or shed — never blocked
	// unboundedly. Acquire waits on the *connection* context, not the
	// watchdog deadline: a configured 1 ns query timeout must surface as
	// 408 from the run, not as a 429 at the door.
	release, err := s.gate.Acquire(r.Context(), requestWeight(bulk, resBytes), resBytes)
	if err != nil {
		s.shed(w, err, level)
		return
	}
	defer release()
	s.met.admAdmitted.Add(1)
	s.observePressure(s.occupancy())

	// With a slot held, a slow-loris upload would pin it; bound the body
	// read. SetReadDeadline is best-effort — transports without deadline
	// support (httptest's unwrapped recorders) just skip it.
	if s.cfg.BodyReadTimeout > 0 {
		rc := http.NewResponseController(w)
		rc.SetReadDeadline(time.Now().Add(s.cfg.BodyReadTimeout))
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)

	if bulk {
		s.handleLines(w, r, start)
		return
	}

	body, err := io.ReadAll(r.Body)
	if err != nil {
		s.writeError(w, bodyReadError(err))
		return
	}
	var req queryRequest
	if src := r.URL.Query().Get("query"); src != "" {
		// Raw-document form: the body is the document, untouched.
		req = queryRequest{Query: src, Document: body, Mode: r.URL.Query().Get("mode"),
			Stream: streamParam(r)}
	} else if err := json.Unmarshal(body, &req); err != nil {
		s.writeError(w, badRequest("invalid request envelope: "+err.Error()))
		return
	}
	mode, ok := parseMode(req.Mode, "values")
	if !ok {
		s.writeError(w, badRequest("mode must be values, offsets, or count"))
		return
	}
	if len(bytes.TrimSpace(req.Document)) == 0 {
		s.writeError(w, badRequest("missing document"))
		return
	}
	switch {
	case req.Query != "" && len(req.Queries) > 0:
		s.writeError(w, badRequest("query and queries are mutually exclusive"))
	case req.Query != "":
		if req.Stream {
			s.serveSingleStream(w, r, &req, mode, start)
			return
		}
		s.serveSingle(w, r, &req, mode, start)
	case len(req.Queries) > 0:
		if req.Stream {
			s.writeError(w, badRequest("streaming supports a single query"))
			return
		}
		s.serveSet(w, r, &req, mode, start)
	default:
		s.writeError(w, badRequest("missing query"))
	}
}

// streamParam reads the stream=1/true URL toggle (the envelope form has its
// own Stream field).
func streamParam(r *http.Request) bool {
	v := r.URL.Query().Get("stream")
	return v == "1" || v == "true"
}

// shed maps a gate rejection to its response: an absolutely oversized
// request is the client's fault (413, no point retrying); everything else
// is load (429 + Retry-After).
func (s *Server) shed(w http.ResponseWriter, err error, level int) {
	if errors.Is(err, admission.ErrTooLarge) {
		s.met.admShedTooBig.Add(1)
		s.writeError(w, &protocolError{status: http.StatusRequestEntityTooLarge, kind: "limit",
			message: err.Error()})
		return
	}
	switch {
	case errors.Is(err, admission.ErrQueueFull):
		s.met.admShedQueue.Add(1)
	case errors.Is(err, admission.ErrBytesBudget):
		s.met.admShedBytes.Add(1)
	case errors.Is(err, admission.ErrDeadline):
		s.met.admShedDeadline.Add(1)
	}
	s.observePressure(1)
	s.writeError(w, overloadError(err.Error(), 1+level))
}

// requestContext applies the configured per-request deadline on top of the
// connection's context (which already cancels on client disconnect). Under
// brownout level BrownoutTightDeadlines the deadline is halved, so
// stragglers hand their admission slots back sooner.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	t := s.cfg.Timeout
	if t > 0 && s.brownoutLevel() >= admission.BrownoutTightDeadlines {
		t /= 2
	}
	if t > 0 {
		return context.WithTimeout(r.Context(), t)
	}
	return r.Context(), func() {}
}

// allowFallback consults the circuit breaker; record is non-nil exactly
// when this request's outcome must be fed back (the path was actually
// used).
func (s *Server) allowFallback() (allowed bool) {
	if s.breaker == nil {
		return true
	}
	return s.breaker.Allow()
}

// recordFallback feeds one protected-path outcome to the breaker. allowed
// guards against recording denials: only real uses of the ladder count.
func (s *Server) recordFallback(allowed bool, degraded bool) {
	if s.breaker != nil && allowed {
		s.breaker.Record(degraded)
	}
}

// serveSingle evaluates one query over the request's document, through the
// document-index cache when it has this document hot.
func (s *Server) serveSingle(w http.ResponseWriter, r *http.Request, req *queryRequest, mode string, start time.Time) {
	allowFB := s.allowFallback()
	compile := s.compileQuery
	if !allowFB {
		compile = s.compileQueryNF
	}
	q, err := compile(req.Query)
	if err != nil {
		s.writeError(w, badQuery(err))
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()

	doc := []byte(req.Document)
	docState := "off"
	var idx *rsonpath.IndexedDocument
	if s.docs.enabled() {
		// Brownout's first rung stops *new* index builds — pure-overhead
		// work under pressure — while existing hits keep serving.
		promote := s.brownoutLevel() < admission.BrownoutNoPromote
		var built bool
		idx, built = s.docs.lookup(doc, promote)
		switch {
		case built:
			docState = "built"
			s.met.docBuilds.Add(1)
		case idx != nil:
			docState = "hit"
			s.met.docHits.Add(1)
		default:
			docState = "cold"
		}
	}

	// One planning decision drives the dispatch, the response's plan field,
	// and the per-strategy counters — the same Explain a library caller
	// would consult.
	pl := q.Explain(rsonpath.DocStats{Bytes: len(doc), Indexed: idx != nil})
	s.met.notePlan(pl.Strategy)

	var offsets []int
	emit := func(pos int) { offsets = append(offsets, pos) }
	var oc rsonpath.Outcome
	if idx != nil && pl.Strategy == "indexed" {
		oc, err = q.RunIndexedSupervised(ctx, idx, emit)
	} else {
		oc, err = q.RunSupervised(ctx, doc, emit)
	}
	s.recordFallback(allowFB, oc.Degraded())
	s.noteOutcome(w, oc)
	if err != nil {
		s.writeError(w, err)
		return
	}

	resp := queryResponse{
		Count:         len(offsets),
		Engine:        oc.Engine,
		Attempts:      oc.Attempts,
		Degraded:      oc.Degraded(),
		DurationMS:    float64(time.Since(start)) / float64(time.Millisecond),
		DocumentCache: docState,
		Plan:          pl.Strategy,
		PlanRule:      pl.Rule,
	}
	if oc.FallbackReason != nil {
		resp.FallbackReason = oc.FallbackReason.Error()
	}
	switch mode {
	case "offsets":
		resp.Offsets = offsets
	case "values":
		resp.Values, err = extractValues(doc, offsets, false)
		if err != nil {
			s.writeError(w, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, &resp)
}

// serveSet evaluates a QuerySet over the request's document in one shared
// pass. Sets run unindexed: the one-pass driver is already the amortization
// for "many queries, one document".
func (s *Server) serveSet(w http.ResponseWriter, r *http.Request, req *queryRequest, mode string, start time.Time) {
	allowFB := s.allowFallback()
	compile := s.compileSet
	if !allowFB {
		compile = s.compileSetNF
	}
	set, err := compile(req.Queries)
	if err != nil {
		s.writeError(w, badQuery(err))
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()

	doc := []byte(req.Document)
	pl := set.Explain(rsonpath.DocStats{Bytes: len(doc)})
	s.met.notePlan(pl.Strategy)
	perQuery := make([][]int, set.Len())
	oc, err := set.RunSupervised(ctx, doc, func(query, pos int) {
		perQuery[query] = append(perQuery[query], pos)
	})
	s.recordFallback(allowFB, oc.Degraded())
	s.noteOutcome(w, oc)
	if err != nil {
		s.writeError(w, err)
		return
	}

	resp := queryResponse{
		Engine:     oc.Engine,
		Attempts:   oc.Attempts,
		Degraded:   oc.Degraded(),
		DurationMS: float64(time.Since(start)) / float64(time.Millisecond),
		Results:    make([]queryResult, set.Len()),
		Plan:       pl.Strategy,
		PlanRule:   pl.Rule,
	}
	if oc.FallbackReason != nil {
		resp.FallbackReason = oc.FallbackReason.Error()
	}
	for i, offs := range perQuery {
		res := queryResult{Query: req.Queries[i], Count: len(offs)}
		resp.Count += len(offs)
		switch mode {
		case "offsets":
			res.Offsets = offs
		case "values":
			res.Values, err = extractValues(doc, offs, false)
			if err != nil {
				s.writeError(w, err)
				return
			}
		}
		resp.Results[i] = res
	}
	writeJSON(w, http.StatusOK, &resp)
}

// linesResponse summarizes an NDJSON batch. Results carries one entry per
// record with matches; Failures one entry per record that could not be
// evaluated. Records without matches that evaluated cleanly are counted in
// no list — the visit contract reports only matched, failed, and degraded
// records.
type linesResponse struct {
	Count           int           `json:"count"`
	RecordsMatched  int           `json:"records_matched"`
	RecordsFailed   int           `json:"records_failed"`
	RecordsDegraded int           `json:"records_degraded"`
	Results         []lineResult  `json:"results,omitempty"`
	Failures        []lineFailure `json:"failures,omitempty"`
	DurationMS      float64       `json:"duration_ms"`
}

type lineResult struct {
	Line     int               `json:"line"`
	Count    int               `json:"count"`
	Offsets  []int             `json:"offsets,omitempty"`
	Values   []json.RawMessage `json:"values,omitempty"`
	Degraded bool              `json:"degraded,omitempty"`
}

type lineFailure struct {
	Line  int         `json:"line"`
	Error errorDetail `json:"error"`
}

// handleLines evaluates an NDJSON body record-by-record through the
// parallel worker pool. The query text travels in the "query" URL
// parameter (the body is the data); mode defaults to "count" — batch
// callers usually aggregate. With stream=1 the per-record results are
// written incrementally instead of buffered (see stream.go).
func (s *Server) handleLines(w http.ResponseWriter, r *http.Request, start time.Time) {
	src := r.URL.Query().Get("query")
	if src == "" {
		s.writeError(w, badRequest("NDJSON requests pass the query in the \"query\" URL parameter"))
		return
	}
	mode, ok := parseMode(r.URL.Query().Get("mode"), "count")
	if !ok {
		s.writeError(w, badRequest("mode must be values, offsets, or count"))
		return
	}
	allowFB := s.allowFallback()
	compile := s.compileLines
	if !allowFB {
		compile = s.compileLinesNF
	}
	q, err := compile(src)
	if err != nil {
		s.writeError(w, badQuery(err))
		return
	}
	s.met.notePlan(q.Explain(rsonpath.DocStats{}).Strategy)

	if streamParam(r) {
		s.serveLinesStream(w, r, q, allowFB, mode, start)
		return
	}

	resp := linesResponse{}
	err = q.RunLinesParallel(r.Body, s.cfg.Workers, func(m rsonpath.LineMatch) error {
		s.met.ndjsonRecs.Add(1)
		if m.Err != nil {
			resp.RecordsFailed++
			resp.Failures = append(resp.Failures, lineFailure{Line: m.Line, Error: detailFor(m.Err)})
			return nil
		}
		if m.Outcome != nil && m.Outcome.Degraded() {
			resp.RecordsDegraded++
			s.met.degraded.Add(1)
		}
		if len(m.Offsets) == 0 {
			return nil // degraded-but-empty record: counted above, nothing to report
		}
		resp.RecordsMatched++
		resp.Count += len(m.Offsets)
		res := lineResult{Line: m.Line, Count: len(m.Offsets),
			Degraded: m.Outcome != nil && m.Outcome.Degraded()}
		switch mode {
		case "offsets":
			res.Offsets = append([]int(nil), m.Offsets...)
		case "values":
			var err error
			// The record buffer is reused by the pool; values must be copied.
			res.Values, err = extractValues(m.Record, m.Offsets, true)
			if err != nil {
				return err
			}
		default:
			return nil // count mode aggregates only
		}
		resp.Results = append(resp.Results, res)
		return nil
	})
	s.recordFallback(allowFB, resp.RecordsDegraded > 0)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if resp.RecordsDegraded > 0 {
		w.Header().Set(degradedHeader, "true")
	}
	resp.DurationMS = float64(time.Since(start)) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, &resp)
}

// noteOutcome folds a run's Outcome into the metrics and response headers.
func (s *Server) noteOutcome(w http.ResponseWriter, oc rsonpath.Outcome) {
	if oc.Degraded() {
		s.met.degraded.Add(1)
		w.Header().Set(degradedHeader, "true")
	}
}

// extractValues resolves match offsets to raw value bytes. When copy is
// set the values are cloned (the source buffer outlives the call only for
// single-document requests, whose body is request-scoped anyway).
func extractValues(data []byte, offsets []int, copyValues bool) ([]json.RawMessage, error) {
	if len(offsets) == 0 {
		return nil, nil
	}
	out := make([]json.RawMessage, 0, len(offsets))
	for _, pos := range offsets {
		v, err := rsonpath.ValueAt(data, pos)
		if err != nil {
			return nil, err
		}
		if copyValues {
			v = bytes.Clone(v)
		}
		out = append(out, json.RawMessage(v))
	}
	return out, nil
}

// parseMode validates the result-shape selector.
func parseMode(mode, def string) (string, bool) {
	if mode == "" {
		return def, true
	}
	switch mode {
	case "values", "offsets", "count":
		return mode, true
	}
	return "", false
}

// protocolError is a 4xx verdict produced by the server itself (envelope,
// query text, transport, or admission problems) rather than by a run.
type protocolError struct {
	status     int
	kind       string
	message    string
	retryAfter int // seconds; > 0 emits a Retry-After header
}

func (e *protocolError) Error() string { return e.message }

func badRequest(msg string) error {
	return &protocolError{status: http.StatusBadRequest, kind: "bad_request", message: msg}
}

// overloadError is a load-shedding verdict: try again in retryAfter
// seconds. The hint grows with the brownout level — the deeper the ladder,
// the longer the backoff worth suggesting.
func overloadError(msg string, retryAfter int) error {
	return &protocolError{status: http.StatusTooManyRequests, kind: "overload",
		message: msg, retryAfter: retryAfter}
}

// badQuery classifies a compile failure: always the client's query, so 400.
func badQuery(err error) error {
	return &protocolError{status: http.StatusBadRequest, kind: "bad_request",
		message: "invalid query: " + err.Error()}
}

// bodyReadError distinguishes an oversized body from a transport failure.
func bodyReadError(err error) error {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return &protocolError{status: http.StatusRequestEntityTooLarge, kind: "limit",
			message: err.Error()}
	}
	return badRequest("reading request body: " + err.Error())
}

// detailFor maps any error to the JSON error detail, typed errors first.
func detailFor(err error) errorDetail {
	var me *rsonpath.MalformedError
	var le *rsonpath.LimitError
	var ie *rsonpath.InternalError
	var pe *protocolError
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &pe):
		return errorDetail{Kind: pe.kind, Message: pe.message}
	case errors.As(err, &mbe):
		// An oversized body surfaced mid-read (the NDJSON path reads the
		// body inside the engine, so the size verdict arrives as a plain
		// read error): still a limit, not an internal fault.
		return errorDetail{Kind: "limit", Message: err.Error()}
	case errors.As(err, &me):
		off := me.Offset
		return errorDetail{Kind: "malformed", Message: err.Error(), Offset: &off}
	case errors.As(err, &le):
		off := le.Offset
		return errorDetail{Kind: "limit", Message: err.Error(), Offset: &off}
	case errors.Is(err, rsonpath.ErrCanceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return errorDetail{Kind: "timeout", Message: err.Error()}
	case errors.As(err, &ie):
		return errorDetail{Kind: "internal", Message: err.Error()}
	default:
		return errorDetail{Kind: "internal", Message: err.Error()}
	}
}

// countError folds one error kind into the metrics; shared by writeError
// and the mid-stream error trailer (which cannot change the status line but
// still must count).
func (s *Server) countError(kind string) int {
	switch kind {
	case "bad_request":
		s.met.errBadReq.Add(1)
		return http.StatusBadRequest
	case "malformed":
		s.met.errMalform.Add(1)
		return http.StatusUnprocessableEntity
	case "limit":
		s.met.errLimit.Add(1)
		return http.StatusRequestEntityTooLarge
	case "timeout":
		s.met.errTimeout.Add(1)
		return http.StatusRequestTimeout
	case "overload":
		s.met.errOverload.Add(1)
		return http.StatusTooManyRequests
	default:
		s.met.errIntern.Add(1)
		return http.StatusInternalServerError
	}
}

// writeError maps err to its status code and JSON body, and counts it. The
// mapping keeps the library's typed vocabulary distinct on the wire:
// protocol errors 400/413, malformed documents 422, resource limits 413,
// deadlines 408, load shedding 429 (with Retry-After), internal faults 500.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	d := detailFor(err)
	status := s.countError(d.Kind)
	if pe := (*protocolError)(nil); errors.As(err, &pe) {
		status = pe.status
		if pe.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(pe.retryAfter))
		}
	}
	writeJSON(w, status, &errorBody{Error: d})
}

// writeJSON marshals v and writes it with status. Marshaling cannot fail
// for the response shapes above (raw messages are valid JSON by
// construction); a failure is reported as a bare 500.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":{"kind":"internal","message":"response marshal failed"}}`,
			http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}
