// Package server implements rsonpathd, the JSONPath query daemon: a
// long-running HTTP/JSON service that keeps compiled queries (and,
// optionally, classified documents) hot across requests, runs every request
// under the execution supervisor with a per-request deadline, and reports
// degradation per request and in aggregate. See DESIGN.md §12 for the
// architecture.
//
// Endpoints:
//
//	POST /v1/query   evaluate a query (JSON envelope, or NDJSON body with
//	                 the query in the "query" URL parameter)
//	GET  /healthz    liveness probe
//	GET  /metrics    Prometheus-style exposition text
//	GET  /version    build identification
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"time"

	"rsonpath"
)

// Config is the daemon configuration; the zero value serves with defaults.
type Config struct {
	// Addr is the listen address, e.g. ":8077" or "127.0.0.1:0".
	Addr string
	// QueryCacheSize bounds the compiled-query LRU; <= 0 selects
	// rsonpath.DefaultQueryCacheSize.
	QueryCacheSize int
	// DocCacheSize bounds the indexed-document LRU; 0 disables document
	// caching.
	DocCacheSize int
	// DocCacheAfter is the number of sightings of the same document bytes
	// before its mask index is built. 0 (the default) lets the execution
	// planner decide: sightings are fed through planner.PredictRuns and the
	// index is built when planner.ShouldIndex predicts the build amortizes
	// (with today's constants: on the second sighting). A positive value
	// overrides the planner with a fixed threshold.
	DocCacheAfter int
	// Timeout is the per-request watchdog deadline (per record for NDJSON
	// bodies); 0 disables it.
	Timeout time.Duration
	// FallbackOff disables the degradation ladder; internal engine faults
	// then surface as HTTP 500 instead of a degraded 200.
	FallbackOff bool
	// RetryMax / RetryBackoff bound re-running a request's streaming
	// attempts on transient reader errors (rsonpath.WithRetry). In-memory
	// request bodies have no transient failures, so these matter only if a
	// future transport streams documents; they are threaded for parity with
	// the CLI.
	RetryMax     int
	RetryBackoff time.Duration
	// MaxDepth, MaxMatches and MaxDocBytes are the per-run resource limits
	// (rsonpath.WithMaxDepth and friends); 0 keeps each limit's library
	// default.
	MaxDepth    int
	MaxMatches  int
	MaxDocBytes int
	// MaxBodyBytes caps the accepted HTTP request body; <= 0 selects
	// DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// Workers is the NDJSON worker-pool width; <= 0 selects GOMAXPROCS.
	Workers int
	// Version is reported by /version.
	Version string
}

// DefaultMaxBodyBytes caps request bodies when Config.MaxBodyBytes is
// unset: large enough for real documents, small enough that one request
// cannot balloon the process.
const DefaultMaxBodyBytes = 64 << 20

// queryRunner is the slice of *rsonpath.Query the handlers need; an
// interface so the tests can interpose a faulting or degrading runner the
// same way the library's own fault suite interposes on Query.run.
type queryRunner interface {
	RunSupervised(ctx context.Context, data []byte, emit func(pos int)) (rsonpath.Outcome, error)
	RunIndexedSupervised(ctx context.Context, doc *rsonpath.IndexedDocument, emit func(pos int)) (rsonpath.Outcome, error)
	RunLinesParallel(r io.Reader, workers int, visit func(m rsonpath.LineMatch) error) error
	Explain(stats rsonpath.DocStats) rsonpath.Plan
}

// setRunner is the QuerySet counterpart.
type setRunner interface {
	RunSupervised(ctx context.Context, data []byte, emit func(query, pos int)) (rsonpath.Outcome, error)
	Explain(stats rsonpath.DocStats) rsonpath.Plan
	Len() int
}

// Server is one daemon instance. Create with New; Serve on a listener or
// use ListenAndServe; stop with Shutdown.
type Server struct {
	cfg   Config
	cache *rsonpath.QueryCache
	docs  *docCache
	met   metrics
	http  *http.Server
	lis   net.Listener

	// compileQuery/compileLines/compileSet produce the runner for a request;
	// the defaults resolve through the compiled-query cache. Tests replace
	// them to inject faults and forced degradations.
	compileQuery func(src string) (queryRunner, error)
	compileLines func(src string) (queryRunner, error)
	compileSet   func(queries []string) (setRunner, error)
}

// New builds a Server from cfg. The compiled-query cache and the document
// cache live for the Server's lifetime.
func New(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	s := &Server{
		cfg:   cfg,
		cache: rsonpath.NewQueryCache(cfg.QueryCacheSize),
		docs:  newDocCache(cfg.DocCacheSize, cfg.DocCacheAfter),
	}

	// Two option sets: requests over a buffered document take their deadline
	// from the request context (so the indexed fast path stays available),
	// while NDJSON records run inside the worker pool, which supervises each
	// record with the compiled-in watchdog.
	base := s.baseOptions()
	lines := base
	if cfg.Timeout > 0 {
		lines = append(append([]rsonpath.Option(nil), base...), rsonpath.WithTimeout(cfg.Timeout))
	}
	s.compileQuery = func(src string) (queryRunner, error) { return s.cache.Get(src, base...) }
	s.compileLines = func(src string) (queryRunner, error) { return s.cache.Get(src, lines...) }
	s.compileSet = func(queries []string) (setRunner, error) { return s.cache.GetSet(queries, base...) }

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /version", s.handleVersion)
	s.http = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// baseOptions translates Config into compile options, deadline excluded.
func (s *Server) baseOptions() []rsonpath.Option {
	var opts []rsonpath.Option
	if s.cfg.MaxDepth != 0 {
		opts = append(opts, rsonpath.WithMaxDepth(s.cfg.MaxDepth))
	}
	if s.cfg.MaxMatches != 0 {
		opts = append(opts, rsonpath.WithMaxMatches(s.cfg.MaxMatches))
	}
	if s.cfg.MaxDocBytes != 0 {
		opts = append(opts, rsonpath.WithMaxDocBytes(s.cfg.MaxDocBytes))
	}
	if s.cfg.FallbackOff {
		opts = append(opts, rsonpath.WithFallback(rsonpath.FallbackOff))
	}
	if s.cfg.RetryMax > 0 {
		opts = append(opts, rsonpath.WithRetry(s.cfg.RetryMax, s.cfg.RetryBackoff, transientReadError))
	}
	return opts
}

// transientReadError is the retry classifier threaded from Config.RetryMax:
// plain I/O errors are worth retrying, the library's typed verdicts
// (malformed input, limits, cancellation) are not.
func transientReadError(err error) bool {
	return !errors.Is(err, rsonpath.ErrMalformed) &&
		!errors.Is(err, rsonpath.ErrLimitExceeded) &&
		!errors.Is(err, rsonpath.ErrCanceled)
}

// Handler returns the daemon's HTTP handler, for embedding in a larger mux
// or in httptest.
func (s *Server) Handler() http.Handler { return s.http.Handler }

// Listen opens the configured address. Separate from Serve so a caller
// (and the tests) can learn the bound address of ":0" before serving.
func (s *Server) Listen() error {
	lis, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.lis = lis
	return nil
}

// Addr returns the bound listen address; nil before Listen.
func (s *Server) Addr() net.Addr {
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// Serve accepts connections on the listener opened by Listen until
// Shutdown. It returns nil on graceful shutdown.
func (s *Server) Serve() error {
	if s.lis == nil {
		return errors.New("server: Serve before Listen")
	}
	err := s.http.Serve(s.lis)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe() error {
	if err := s.Listen(); err != nil {
		return err
	}
	return s.Serve()
}

// Shutdown drains the daemon: the listener closes immediately, in-flight
// requests run to completion, and idle connections are closed. If ctx
// expires first the remaining connections are closed forcibly, so Shutdown
// returns within the caller's deadline either way.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.http.Shutdown(ctx)
	if err != nil {
		s.http.Close()
	}
	return err
}

// handleHealthz is the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// handleMetrics renders the exposition text.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.cache.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.render(w,
		cacheGauges{hits: st.Hits, misses: st.Misses, evictions: st.Evictions, len: st.Len},
		docGauges{len: s.docs.len()})
}

// handleVersion identifies the build.
func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	version := s.cfg.Version
	if version == "" {
		version = "dev"
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"name":"rsonpathd","version":%q,"engine":"rsonpath","go":%q}`+"\n",
		version, runtime.Version())
}
