// Package server implements rsonpathd, the JSONPath query daemon: a
// long-running HTTP/JSON service that keeps compiled queries (and,
// optionally, classified documents) hot across requests, runs every request
// under the execution supervisor with a per-request deadline, and reports
// degradation per request and in aggregate. See DESIGN.md §12 for the
// architecture and §14 for the overload model: every request passes the
// admission gate (weighted concurrency + in-flight bytes budget) before its
// body is read, a brownout controller steps down a degradation ladder under
// sustained pressure, and a circuit breaker fast-fails the supervisor's
// DOM-oracle fallback during fault storms.
//
// Endpoints:
//
//	POST /v1/query   evaluate a query (JSON envelope, or NDJSON body with
//	                 the query in the "query" URL parameter); add stream=1
//	                 for an incrementally flushed NDJSON response
//	GET  /healthz    liveness probe with overload report
//	GET  /metrics    Prometheus-style exposition text
//	GET  /version    build identification
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"rsonpath"
	"rsonpath/internal/admission"
	"rsonpath/internal/simd"
)

// Config is the daemon configuration; the zero value serves with defaults.
type Config struct {
	// Addr is the listen address, e.g. ":8077" or "127.0.0.1:0". A
	// "unix:/path" address listens on a unix domain socket instead (stale
	// socket files are removed first) — the transport cluster workers serve
	// on (DESIGN.md §15).
	Addr string
	// Shard identifies this instance inside a cluster ("0", "1", ...); it is
	// reported by /healthz so the supervisor's probes and the logs can tell
	// workers apart. Empty outside cluster mode.
	Shard string
	// QueryCacheSize bounds the compiled-query LRU; <= 0 selects
	// rsonpath.DefaultQueryCacheSize.
	QueryCacheSize int
	// DocCacheSize bounds the indexed-document LRU by entry count; 0
	// disables document caching.
	DocCacheSize int
	// DocCacheBytes bounds the document cache by total resident bytes of
	// promoted indexes (document copy + mask planes); <= 0 leaves only the
	// entry-count bound. Byte-bounding is what actually protects the
	// process: entry counts say nothing about 100 MB documents.
	DocCacheBytes int64
	// DocCacheAfter is the number of sightings of the same document bytes
	// before its mask index is built. 0 (the default) lets the execution
	// planner decide: sightings are fed through planner.PredictRuns and the
	// index is built when planner.ShouldIndex predicts the build amortizes
	// (with today's constants: on the second sighting). A positive value
	// overrides the planner with a fixed threshold.
	DocCacheAfter int
	// Timeout is the per-request watchdog deadline (per record for NDJSON
	// bodies); 0 disables it. Under brownout level BrownoutTightDeadlines
	// the single-document deadline is halved.
	Timeout time.Duration
	// FallbackOff disables the degradation ladder; internal engine faults
	// then surface as HTTP 500 instead of a degraded 200.
	FallbackOff bool
	// RetryMax / RetryBackoff bound re-running a request's streaming
	// attempts on transient reader errors (rsonpath.WithRetry). In-memory
	// request bodies have no transient failures, so these matter only if a
	// future transport streams documents; they are threaded for parity with
	// the CLI.
	RetryMax     int
	RetryBackoff time.Duration
	// MaxDepth, MaxMatches and MaxDocBytes are the per-run resource limits
	// (rsonpath.WithMaxDepth and friends); 0 keeps each limit's library
	// default.
	MaxDepth    int
	MaxMatches  int
	MaxDocBytes int
	// MaxBodyBytes caps the accepted HTTP request body; <= 0 selects
	// DefaultMaxBodyBytes. Enforced before any body read: a Content-Length
	// over the cap is 413 without consuming the upload, and chunked bodies
	// are cut off at the cap by http.MaxBytesReader.
	MaxBodyBytes int64
	// MaxConcurrency is the admission gate's weight capacity — the total
	// weighted work admitted concurrently (a point query is 1 unit, NDJSON
	// bulk and large bodies weigh more). <= 0 selects 8 × GOMAXPROCS.
	MaxConcurrency int
	// AdmissionQueue bounds the admission wait queue. 0 selects
	// 2 × MaxConcurrency; negative disables queueing (contended arrivals
	// are shed immediately).
	AdmissionQueue int
	// MaxInflightBytes bounds the summed payload bytes of admitted
	// requests. 0 selects DefaultMaxInflightBytes; negative means
	// unlimited. A request over the remaining budget is shed with 429; one
	// over the whole budget is rejected with 413.
	MaxInflightBytes int64
	// Brownout enables the brownout controller (DESIGN.md §14): under
	// sustained queue pressure the daemon first stops promoting documents
	// into the index cache, then tightens watchdog deadlines, then sheds
	// NDJSON bulk before point queries, recovering in reverse with
	// hysteresis.
	Brownout bool
	// Breaker enables the circuit breaker around the supervisor's
	// DOM-oracle fallback: a flood of internal-fault degradations opens the
	// breaker and requests compile with the ladder disabled (fail fast)
	// until a cooldown probe succeeds. Ignored when FallbackOff already
	// disables the ladder.
	Breaker bool
	// BodyReadTimeout bounds reading a request body once admitted, so a
	// slow-loris client cannot pin an admission slot; 0 disables it.
	BodyReadTimeout time.Duration
	// Workers is the NDJSON worker-pool width; <= 0 selects GOMAXPROCS.
	Workers int
	// Version is reported by /version.
	Version string
}

// DefaultMaxBodyBytes caps request bodies when Config.MaxBodyBytes is
// unset: large enough for real documents, small enough that one request
// cannot balloon the process.
const DefaultMaxBodyBytes = 64 << 20

// DefaultMaxInflightBytes caps the aggregate payload of admitted requests
// when Config.MaxInflightBytes is unset. The bytes budget, not the slot
// count, is what bounds resident memory: 64 slots of 64 MB bodies is 4 GB.
const DefaultMaxInflightBytes = 512 << 20

// queryRunner is the slice of *rsonpath.Query the handlers need; an
// interface so the tests can interpose a faulting or degrading runner the
// same way the library's own fault suite interposes on Query.run.
type queryRunner interface {
	RunSupervised(ctx context.Context, data []byte, emit func(pos int)) (rsonpath.Outcome, error)
	RunIndexedSupervised(ctx context.Context, doc *rsonpath.IndexedDocument, emit func(pos int)) (rsonpath.Outcome, error)
	RunContext(ctx context.Context, data []byte, emit func(pos int)) error
	RunLinesParallel(r io.Reader, workers int, visit func(m rsonpath.LineMatch) error) error
	Explain(stats rsonpath.DocStats) rsonpath.Plan
}

// setRunner is the QuerySet counterpart.
type setRunner interface {
	RunSupervised(ctx context.Context, data []byte, emit func(query, pos int)) (rsonpath.Outcome, error)
	Explain(stats rsonpath.DocStats) rsonpath.Plan
	Len() int
}

// Server is one daemon instance. Create with New; Serve on a listener or
// use ListenAndServe; stop with Shutdown.
type Server struct {
	cfg      Config
	cache    *rsonpath.QueryCache
	docs     *docCache
	met      metrics
	http     *http.Server
	lis      net.Listener
	gate     *admission.Gate
	brown    *admission.Brownout // nil unless Config.Brownout
	breaker  *admission.Breaker  // nil unless Config.Breaker (and fallback on)
	draining atomic.Bool         // set by Shutdown; /healthz answers 503

	// compileQuery/compileLines/compileSet produce the runner for a request;
	// the defaults resolve through the compiled-query cache. The NF variants
	// compile the same query with the degradation ladder off — the breaker's
	// fail-fast path — and are distinct cache entries (the cache keys by
	// option set). Tests replace them to inject faults and forced
	// degradations.
	compileQuery   func(src string) (queryRunner, error)
	compileLines   func(src string) (queryRunner, error)
	compileSet     func(queries []string) (setRunner, error)
	compileQueryNF func(src string) (queryRunner, error)
	compileLinesNF func(src string) (queryRunner, error)
	compileSetNF   func(queries []string) (setRunner, error)
}

// New builds a Server from cfg. The compiled-query cache, the document
// cache, and the admission subsystem live for the Server's lifetime.
func New(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxConcurrency <= 0 {
		cfg.MaxConcurrency = 8 * runtime.GOMAXPROCS(0)
	}
	if cfg.AdmissionQueue == 0 {
		cfg.AdmissionQueue = 2 * cfg.MaxConcurrency
	} else if cfg.AdmissionQueue < 0 {
		cfg.AdmissionQueue = 0
	}
	if cfg.MaxInflightBytes == 0 {
		cfg.MaxInflightBytes = DefaultMaxInflightBytes
	} else if cfg.MaxInflightBytes < 0 {
		cfg.MaxInflightBytes = 0 // unlimited
	}
	s := &Server{
		cfg:   cfg,
		cache: rsonpath.NewQueryCache(cfg.QueryCacheSize),
		docs:  newDocCache(cfg.DocCacheSize, cfg.DocCacheBytes, cfg.DocCacheAfter),
		gate: admission.NewGate(admission.GateConfig{
			Capacity:    int64(cfg.MaxConcurrency),
			QueueDepth:  cfg.AdmissionQueue,
			BytesBudget: cfg.MaxInflightBytes,
		}),
	}
	if cfg.Brownout {
		s.brown = admission.NewBrownout(admission.BrownoutConfig{})
	}
	if cfg.Breaker && !cfg.FallbackOff {
		s.breaker = admission.NewBreaker(admission.BreakerConfig{})
	}

	// Two option sets: requests over a buffered document take their deadline
	// from the request context (so the indexed fast path stays available),
	// while NDJSON records run inside the worker pool, which supervises each
	// record with the compiled-in watchdog. Each also has a fallback-off
	// twin for the breaker's fail-fast mode.
	base := s.baseOptions()
	lines := base
	if cfg.Timeout > 0 {
		lines = withOpts(base, rsonpath.WithTimeout(cfg.Timeout))
	}
	s.compileQuery = func(src string) (queryRunner, error) { return s.cache.Get(src, base...) }
	s.compileLines = func(src string) (queryRunner, error) { return s.cache.Get(src, lines...) }
	s.compileSet = func(queries []string) (setRunner, error) { return s.cache.GetSet(queries, base...) }
	if cfg.FallbackOff {
		// The ladder is already off; the NF variants are the same queries.
		s.compileQueryNF = s.compileQuery
		s.compileLinesNF = s.compileLines
		s.compileSetNF = s.compileSet
	} else {
		baseNF := withOpts(base, rsonpath.WithFallback(rsonpath.FallbackOff))
		linesNF := withOpts(lines, rsonpath.WithFallback(rsonpath.FallbackOff))
		s.compileQueryNF = func(src string) (queryRunner, error) { return s.cache.Get(src, baseNF...) }
		s.compileLinesNF = func(src string) (queryRunner, error) { return s.cache.Get(src, linesNF...) }
		s.compileSetNF = func(queries []string) (setRunner, error) { return s.cache.GetSet(queries, baseNF...) }
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /version", s.handleVersion)
	s.http = &http.Server{
		Handler:           s.recoverPanics(mux),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// recoverPanics converts a handler panic into a JSON 500 plus the
// rsonpathd_panics_total counter. net/http would recover a panic anyway, but
// silently: the connection dies, nothing is counted, and neither the chaos
// gate nor the cluster supervisor's crash-loop detector can see that
// anything happened. http.ErrAbortHandler keeps its meaning (deliberate
// abort, no body) but is still counted. If the response already started —
// a streamed run panicking mid-body — the status line is gone; the panic is
// counted and the connection is closed hard by re-panicking, so the client
// sees truncation rather than a silently short 200.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		pw := &panicWriter{ResponseWriter: w}
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			s.met.panics.Add(1)
			if pw.wrote || v == http.ErrAbortHandler {
				panic(http.ErrAbortHandler)
			}
			s.met.errIntern.Add(1)
			writeJSON(w, http.StatusInternalServerError, &errorBody{Error: errorDetail{
				Kind: "internal", Message: fmt.Sprintf("handler panic: %v", v)}})
		}()
		next.ServeHTTP(pw, r)
	})
}

// panicWriter remembers whether the response has started, which decides
// whether a recovered panic can still become a 500.
type panicWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *panicWriter) WriteHeader(status int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(status)
}

func (w *panicWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// flush/deadline support through the panic tracker.
func (w *panicWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Flush empties the compiled-query and document-index caches and returns the
// admission subsystem's adaptive state (brownout ladder, fallback breaker)
// to baseline. Wired to SIGHUP in cmd/rsonpathd: the operator's "forget what
// you have learned" knob after a deploy or a data change, logged and counted
// in rsonpathd_cache_flushes_total.
func (s *Server) Flush() {
	s.cache.Purge()
	s.docs.purge()
	if s.brown != nil {
		s.brown.Reset()
	}
	if s.breaker != nil {
		s.breaker.Reset()
	}
	s.met.flushes.Add(1)
}

// Flushes reports how many Flush calls the server has served, for logs.
func (s *Server) Flushes() int64 { return s.met.flushes.Load() }

// baseOptions translates Config into compile options, deadline excluded.
func (s *Server) baseOptions() []rsonpath.Option {
	var opts []rsonpath.Option
	if s.cfg.MaxDepth != 0 {
		opts = append(opts, rsonpath.WithMaxDepth(s.cfg.MaxDepth))
	}
	if s.cfg.MaxMatches != 0 {
		opts = append(opts, rsonpath.WithMaxMatches(s.cfg.MaxMatches))
	}
	if s.cfg.MaxDocBytes != 0 {
		opts = append(opts, rsonpath.WithMaxDocBytes(s.cfg.MaxDocBytes))
	}
	if s.cfg.FallbackOff {
		opts = append(opts, rsonpath.WithFallback(rsonpath.FallbackOff))
	}
	if s.cfg.RetryMax > 0 {
		opts = append(opts, rsonpath.WithRetry(s.cfg.RetryMax, s.cfg.RetryBackoff, transientReadError))
	}
	return opts
}

// withOpts copies opts and appends extra, so option-set variants never
// alias each other's backing arrays.
func withOpts(opts []rsonpath.Option, extra ...rsonpath.Option) []rsonpath.Option {
	out := make([]rsonpath.Option, 0, len(opts)+len(extra))
	return append(append(out, opts...), extra...)
}

// transientReadError is the retry classifier threaded from Config.RetryMax:
// plain I/O errors are worth retrying, the library's typed verdicts
// (malformed input, limits, cancellation) are not.
func transientReadError(err error) bool {
	return !errors.Is(err, rsonpath.ErrMalformed) &&
		!errors.Is(err, rsonpath.ErrLimitExceeded) &&
		!errors.Is(err, rsonpath.ErrCanceled)
}

// brownoutLevel reads the current ladder position (0 when the controller is
// disabled).
func (s *Server) brownoutLevel() int {
	if s.brown == nil {
		return 0
	}
	return s.brown.Level()
}

// observePressure feeds one pressure sample to the brownout controller.
func (s *Server) observePressure(p float64) {
	if s.brown != nil {
		s.brown.Observe(p)
	}
}

// occupancy is the pressure signal for admitted (and brownout-shed) work:
// wait-queue fill when queueing is on, slot fill otherwise. The queue only
// forms at saturation, so its occupancy separates "busy" from "overloaded"
// in a way raw slot usage cannot. Gate sheds report 1.0 directly; brownout
// sheds deliberately report occupancy instead, so a brownout that succeeds
// in draining the queue observes falling pressure and can step back up —
// feeding its own sheds back as full pressure would latch the ladder down
// forever.
func (s *Server) occupancy() float64 {
	snap := s.gate.Snapshot()
	if snap.QueueCap > 0 {
		return float64(snap.QueueDepth) / float64(snap.QueueCap)
	}
	if snap.Capacity > 0 {
		return float64(snap.Used) / float64(snap.Capacity)
	}
	return 0
}

// Handler returns the daemon's HTTP handler, for embedding in a larger mux
// or in httptest.
func (s *Server) Handler() http.Handler { return s.http.Handler }

// Listen opens the configured address. Separate from Serve so a caller
// (and the tests) can learn the bound address of ":0" before serving. A
// "unix:/path" address binds a unix domain socket, removing any stale
// socket file left by a previous (crashed) process first — the file is this
// process's to claim, because the cluster supervisor hands each worker a
// distinct path.
func (s *Server) Listen() error {
	network, addr := "tcp", s.cfg.Addr
	if path, ok := strings.CutPrefix(s.cfg.Addr, "unix:"); ok {
		network, addr = "unix", path
		os.Remove(path)
	}
	lis, err := net.Listen(network, addr)
	if err != nil {
		return err
	}
	s.lis = lis
	return nil
}

// Addr returns the bound listen address; nil before Listen.
func (s *Server) Addr() net.Addr {
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// Serve accepts connections on the listener opened by Listen until
// Shutdown. It returns nil on graceful shutdown.
func (s *Server) Serve() error {
	if s.lis == nil {
		return errors.New("server: Serve before Listen")
	}
	err := s.http.Serve(s.lis)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe() error {
	if err := s.Listen(); err != nil {
		return err
	}
	return s.Serve()
}

// Shutdown drains the daemon: the listener closes immediately, in-flight
// requests run to completion, and idle connections are closed. If ctx
// expires first the remaining connections are closed forcibly, so Shutdown
// returns within the caller's deadline either way.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.http.Shutdown(ctx)
	if err != nil {
		s.http.Close()
	}
	return err
}

// healthReport is the /healthz body: liveness plus the overload picture a
// load balancer needs to steer traffic. The endpoint always answers 200 —
// an overloaded daemon is alive and shedding by design, and failing the
// liveness probe under load would turn an overload into an outage.
type healthReport struct {
	Status        string  `json:"status"` // "ok", "overloaded", or "draining"
	Shard         string  `json:"shard,omitempty"`
	BrownoutLevel int     `json:"brownout_level"`
	Pressure      float64 `json:"pressure"`
	Breaker       string  `json:"breaker"`
	Gate          struct {
		Used        int64 `json:"used"`
		Capacity    int64 `json:"capacity"`
		Queue       int   `json:"queue"`
		QueueCap    int   `json:"queue_cap"`
		Bytes       int64 `json:"bytes"`
		BytesBudget int64 `json:"bytes_budget"`
	} `json:"gate"`
}

// handleHealthz is the liveness probe with the overload report. An
// overloaded daemon still answers 200 — it is alive and shedding by design —
// but a *draining* one answers 503: Shutdown has been called, the listener
// is closing, and a router that keeps sending here is sending to a wall.
// The 503 is what health-gates cluster membership during rolling drains.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	snap := s.gate.Snapshot()
	rep := healthReport{Status: "ok", Shard: s.cfg.Shard, BrownoutLevel: s.brownoutLevel(), Breaker: "off"}
	if s.brown != nil {
		rep.Pressure = s.brown.Pressure()
	}
	if s.breaker != nil {
		rep.Breaker = s.breaker.State().String()
	}
	rep.Gate.Used = snap.Used
	rep.Gate.Capacity = snap.Capacity
	rep.Gate.Queue = snap.QueueDepth
	rep.Gate.QueueCap = snap.QueueCap
	rep.Gate.Bytes = snap.Bytes
	rep.Gate.BytesBudget = snap.BytesBudget
	if rep.BrownoutLevel > 0 || (snap.QueueCap > 0 && snap.QueueDepth >= snap.QueueCap) {
		rep.Status = "overloaded"
	}
	if s.draining.Load() {
		rep.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, &rep)
		return
	}
	writeJSON(w, http.StatusOK, &rep)
}

// handleMetrics renders the exposition text.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.cache.Stats()
	resident, _, evicted := s.docs.stats()
	snap := s.gate.Snapshot()
	adm := admGauges{
		queueDepth:  snap.QueueDepth,
		queueCap:    snap.QueueCap,
		usedWeight:  snap.Used,
		capWeight:   snap.Capacity,
		usedBytes:   snap.Bytes,
		bytesBudget: snap.BytesBudget,
	}
	adm.brownoutLevel = s.brownoutLevel()
	if s.breaker != nil {
		adm.breakerState = int(s.breaker.State())
		adm.breakerOpens = s.breaker.Opens()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.render(w,
		cacheGauges{hits: st.Hits, misses: st.Misses, evictions: st.Evictions, len: st.Len},
		docGauges{len: s.docs.len(), bytes: resident, evicted: evicted},
		adm)
}

// handleVersion identifies the build.
func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	version := s.cfg.Version
	if version == "" {
		version = "dev"
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"name":"rsonpathd","version":%q,"engine":"rsonpath","go":%q,"simd":%q}`+"\n",
		version, runtime.Version(), simd.Backend())
}
