package server

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"sync"

	"rsonpath"
	"rsonpath/internal/planner"
)

// docCache is the daemon's classify-once-query-many layer: an LRU of
// rsonpath.IndexedDocument keyed by the SHA-256 of the document bytes. A
// document is only counted until the execution planner predicts the index
// build amortizes (building costs one classification sweep plus ~9.4% of
// the document in mask planes, which BENCH_swar.json shows repays itself
// within ~8 queries — counting first keeps one-shot documents from churning
// the cache); once a document proves hot the index is built and every later
// request with the same bytes serves its classification from the planes.
// The promotion decision is the planner's PredictRuns/ShouldIndex pair —
// the same rule library callers get from Query.Explain — unless the
// operator pins a fixed sighting threshold (`after` > 0).
//
// The cache is bounded two ways: by entry count (promoted and counting
// entries alike — the map and list nodes are the cost being bounded) and by
// total resident *bytes* of promoted indexes (document copy + mask planes,
// the IndexedDocument.Footprint). Byte-bounding is what actually protects
// the process: a 128-entry cache of 100 MB documents is 14 GB resident,
// which no entry count expresses. Eviction is LRU under both bounds.
//
// Content hashing makes the cache safe by construction: a stale entry is
// impossible because a changed document is a different key. Collisions are
// cryptographically negligible.
type docCache struct {
	mu       sync.Mutex
	capacity int
	bytesCap int64
	after    int
	entries  map[[sha256.Size]byte]*list.Element // value: *docEntry
	lru      *list.List
	resident int64 // summed footprint of promoted entries
	builds   int64 // indexes built (for metrics)
	evicted  int64 // entries evicted (for metrics)
}

// docEntry is one sighted document: a counter until promotion, an index
// afterwards. footprint is nonzero exactly when idx is.
type docEntry struct {
	key       [sha256.Size]byte
	seen      int
	idx       *rsonpath.IndexedDocument
	footprint int64
}

// newDocCache returns a cache holding at most capacity entries and
// bytesCap resident index bytes. capacity <= 0 disables the cache: lookup
// always reports a miss and stores nothing. bytesCap <= 0 means the byte
// bound is off (entry count alone bounds the cache). after <= 0 delegates
// the promotion decision to the planner; a positive value is a fixed
// sighting threshold.
func newDocCache(capacity int, bytesCap int64, after int) *docCache {
	if after < 0 {
		after = 0
	}
	return &docCache{
		capacity: capacity,
		bytesCap: bytesCap,
		after:    after,
		entries:  make(map[[sha256.Size]byte]*list.Element),
		lru:      list.New(),
	}
}

func (c *docCache) enabled() bool { return c != nil && c.capacity > 0 }

// lookup returns the indexed form of doc when the cache holds one, counting
// the sighting and building the index at the promotion threshold otherwise.
// built reports that this call performed the build (the caller's metrics
// distinguish a hit from the build that enables future hits). promote=false
// (the brownout ladder's first rung) still serves existing hits and counts
// sightings but never spends a classification sweep building a new index.
// The build copies doc, so the caller's buffer stays request-scoped; a
// document the screens reject (malformed) is remembered as never-promotable
// rather than re-screened each time.
func (c *docCache) lookup(doc []byte, promote bool) (idx *rsonpath.IndexedDocument, built bool) {
	if !c.enabled() {
		return nil, false
	}
	key := sha256.Sum256(doc)
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		e := &docEntry{key: key, seen: 1}
		c.entries[key] = c.lru.PushFront(e)
		if promote {
			c.maybePromote(e, doc)
		}
		c.evictOver()
		return e.idx, e.idx != nil
	}
	c.lru.MoveToFront(el)
	e := el.Value.(*docEntry)
	if e.idx != nil {
		return e.idx, false
	}
	e.seen++
	if promote {
		c.maybePromote(e, doc)
	}
	c.evictOver()
	return e.idx, e.idx != nil
}

// shouldPromote is the promotion decision: the operator's fixed sighting
// threshold when one was configured, the planner's amortization prediction
// otherwise (sightings so far → predicted future runs → build when the
// build is predicted to repay itself).
func (c *docCache) shouldPromote(e *docEntry) bool {
	if e.seen < 0 {
		return false // pinned unpromotable (a failed build)
	}
	if c.after > 0 {
		return e.seen >= c.after
	}
	return planner.ShouldIndex(planner.DocStats{
		ExpectedRuns: planner.PredictRuns(e.seen),
	})
}

// maybePromote builds the index once promotion is decided. A failed build
// (input the index screens reject) leaves the entry as a counter pinned
// unpromotable, so the malformed document is not re-screened on every
// request; the request itself proceeds un-indexed and gets the engine's own
// (better-positioned) malformed error.
func (c *docCache) maybePromote(e *docEntry, doc []byte) {
	if e.idx != nil || !c.shouldPromote(e) {
		return
	}
	idx, err := rsonpath.Index(bytes.Clone(doc))
	if err != nil {
		e.seen = -1 << 30
		return
	}
	e.idx = idx
	e.footprint = int64(idx.Footprint())
	c.resident += e.footprint
	c.builds++
}

// evictOver drops LRU entries until both bounds hold (lock held). An index
// whose footprint alone exceeds the byte budget ends up evicted the moment
// the next entry arrives — the budget is a hard bound on resident bytes,
// not a per-entry suggestion.
func (c *docCache) evictOver() {
	for c.lru.Len() > c.capacity || (c.bytesCap > 0 && c.resident > c.bytesCap) {
		oldest := c.lru.Back()
		if oldest == nil {
			return
		}
		e := oldest.Value.(*docEntry)
		c.lru.Remove(oldest)
		delete(c.entries, e.key)
		c.resident -= e.footprint
		c.evicted++
	}
}

// purge empties the cache (SIGHUP flush), keeping the lifetime build and
// eviction counters. Resident bytes drop to zero; promoted indexes are
// rebuilt on re-promotion like any cold document.
func (c *docCache) purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[[sha256.Size]byte]*list.Element)
	c.lru.Init()
	c.resident = 0
}

// len returns the current entry count.
func (c *docCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// stats returns the resident byte total and lifetime build/eviction
// counters for /metrics.
func (c *docCache) stats() (resident int64, builds, evicted int64) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resident, c.builds, c.evicted
}
