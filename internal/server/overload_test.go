package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"rsonpath"
	"rsonpath/internal/admission"
)

// waitMetric polls /metrics until name reaches want or the timeout expires.
// Admission slots are released on the handler's way out, which races the
// response the client already read — polling is the honest way to assert
// "drains to zero".
func waitMetric(t *testing.T, url, name string, want int64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		got := metricValue(t, url, name)
		if got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServeBurstOverload fires a burst far past a tiny admission gate and
// asserts the overload contract: every request is answered 200 or 429
// (never 500), 429s carry Retry-After and the "overload" error kind, the
// admission counters account for every arrival, and the gate drains to zero
// with no goroutine growth. Run under -race this is also the concurrency
// audit of the admission path.
func TestServeBurstOverload(t *testing.T) {
	before := runtime.NumGoroutine()
	s, url := startServer(t, Config{MaxConcurrency: 1, AdmissionQueue: 2, Timeout: 2 * time.Second})
	s.compileQuery = func(string) (queryRunner, error) {
		return &slowRunner{delay: 50 * time.Millisecond}, nil
	}

	const n = 24
	statuses := make([]int, n)
	bodies := make([]errorBody, n)
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := strings.NewReader(`{"query": "$.a", "document": {"a": 1}, "mode": "count"}`)
			resp, err := client.Post(url+"/v1/query", "application/json", body)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode == http.StatusTooManyRequests {
				if resp.Header.Get("Retry-After") == "" {
					t.Errorf("request %d: 429 without Retry-After", i)
				}
				json.Unmarshal(raw, &bodies[i])
			}
		}(i)
	}
	wg.Wait()

	var ok200, shed429 int
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			shed429++
			if bodies[i].Error.Kind != "overload" {
				t.Errorf("request %d: 429 kind = %q, want overload", i, bodies[i].Error.Kind)
			}
		case 0: // request error, already reported
		default:
			t.Errorf("request %d: status %d (the overload contract allows only 200 and 429)", i, st)
		}
	}
	if ok200 == 0 || shed429 == 0 {
		t.Fatalf("burst produced 200=%d 429=%d; want both (the gate neither admitted-all nor shed-all)", ok200, shed429)
	}

	if got := metricValue(t, url, "rsonpathd_errors_overload_total"); got != int64(shed429) {
		t.Errorf("errors_overload_total = %d, want %d", got, shed429)
	}
	admitted := metricValue(t, url, "rsonpathd_admission_admitted_total")
	shedQ := metricValue(t, url, "rsonpathd_admission_shed_queue_full_total")
	shedD := metricValue(t, url, "rsonpathd_admission_shed_deadline_total")
	if admitted != int64(ok200) {
		t.Errorf("admitted_total = %d, want %d", admitted, ok200)
	}
	if shedQ+shedD != int64(shed429) {
		t.Errorf("shed counters %d+%d do not account for %d 429s", shedQ, shedD, shed429)
	}
	waitMetric(t, url, "rsonpathd_admission_inflight_weight", 0, 2*time.Second)
	waitMetric(t, url, "rsonpathd_admission_queue_depth", 0, 2*time.Second)
	if got := metricValue(t, url, "rsonpathd_errors_internal_total"); got != 0 {
		t.Errorf("burst produced %d internal errors", got)
	}

	// Goroutine accounting: the burst must not leave workers behind.
	client.CloseIdleConnections()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if now := runtime.NumGoroutine(); now <= before+10 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before burst, %d after", before, now)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServeSlowLoris opens a connection that sends headers and then
// dribbles nothing: with BodyReadTimeout set the daemon must cut the read,
// answer (or close), reclaim the admission slot, and keep serving others.
func TestServeSlowLoris(t *testing.T) {
	s, url := startServer(t, Config{BodyReadTimeout: 150 * time.Millisecond})
	_ = s
	addr := strings.TrimPrefix(url, "http://")

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /v1/query?query=$.a HTTP/1.1\r\nHost: rsonpathd\r\n"+
		"Content-Type: application/json\r\nContent-Length: 4096\r\n\r\n{\"a\"")
	// Stall. The daemon's read deadline fires; it must not wait for us.
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err == nil && !strings.HasPrefix(string(buf[:n]), "HTTP/1.1 4") {
		t.Fatalf("slow-loris got a non-4xx response: %q", buf[:n])
	}

	// The slot is back and the daemon still answers clean traffic.
	waitMetric(t, url, "rsonpathd_admission_inflight_weight", 0, 2*time.Second)
	status, resp, _, _ := postQuery(t, url, queryRequest{
		Query: "$.a", Document: json.RawMessage(`{"a": 7}`), Mode: "count"})
	if status != http.StatusOK || resp.Count != 1 {
		t.Fatalf("clean request after slow-loris: status %d count %d", status, resp.Count)
	}
	if got := metricValue(t, url, "rsonpathd_errors_internal_total"); got != 0 {
		t.Errorf("slow-loris produced %d internal errors", got)
	}
}

// TestServeTornUploads sends bodies that die mid-transfer (declared length
// never delivered) and asserts the daemon sheds them as client errors —
// never 500s — drains every admission slot, and keeps serving.
func TestServeTornUploads(t *testing.T) {
	s, url := startServer(t, Config{})
	_ = s
	addr := strings.TrimPrefix(url, "http://")
	for i := 0; i < 5; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(conn, "POST /v1/query?query=$.a HTTP/1.1\r\nHost: rsonpathd\r\n"+
			"Content-Type: application/json\r\nContent-Length: 1000\r\n\r\n{\"a\": 1")
		conn.Close() // torn: 992 declared bytes never arrive
	}

	waitMetric(t, url, "rsonpathd_admission_inflight_weight", 0, 2*time.Second)
	if got := metricValue(t, url, "rsonpathd_errors_internal_total"); got != 0 {
		t.Errorf("torn uploads produced %d internal errors", got)
	}
	status, resp, _, _ := postQuery(t, url, queryRequest{
		Query: "$.a", Document: json.RawMessage(`{"a": 7}`), Mode: "count"})
	if status != http.StatusOK || resp.Count != 1 {
		t.Fatalf("clean request after torn uploads: status %d count %d", status, resp.Count)
	}
}

// TestServeDeclaredTooLarge asserts the body cap is enforced before any
// read: a Content-Length over the limit is 413 without the upload being
// consumed (the "body" here is never sent).
func TestServeDeclaredTooLarge(t *testing.T) {
	s, url := startServer(t, Config{MaxBodyBytes: 64})
	_ = s
	addr := strings.TrimPrefix(url, "http://")
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Declare 1 MB, send nothing: the verdict must arrive anyway.
	fmt.Fprintf(conn, "POST /v1/query?query=$.a HTTP/1.1\r\nHost: rsonpathd\r\n"+
		"Content-Type: application/json\r\nContent-Length: 1048576\r\n\r\n")
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	rd := bufio.NewReader(conn)
	line, err := rd.ReadString('\n')
	if err != nil {
		t.Fatalf("no response to oversized declaration: %v", err)
	}
	if !strings.Contains(line, "413") {
		t.Fatalf("status line %q, want 413", strings.TrimSpace(line))
	}
}

// TestServeNDJSONTooLarge pins the NDJSON path's oversize mapping: the body
// limit surfaces mid-read there (the engine owns the reader), and must
// still be a 413 "limit" — not an internal 500.
func TestServeNDJSONTooLarge(t *testing.T) {
	s, url := startServer(t, Config{MaxBodyBytes: 64})
	_ = s
	body := strings.Repeat(`{"a": 1}`+"\n", 40) // 360 bytes against a 64-byte cap
	resp, err := http.Post(url+"/v1/query?query=$.a", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge || eb.Error.Kind != "limit" {
		t.Fatalf("status %d kind %q, want 413 limit", resp.StatusCode, eb.Error.Kind)
	}
	if got := metricValue(t, url, "rsonpathd_errors_internal_total"); got != 0 {
		t.Errorf("oversized NDJSON counted as %d internal errors", got)
	}
}

// TestServeBrownoutEffects drives the brownout ladder deterministically
// (dwell far above anything the test's own requests contribute) and asserts
// each rung's serving effect: level >= 1 stops doc-index promotion, level 3
// sheds NDJSON bulk with 429 while point queries still answer, /healthz
// reports the overload, and recovery restores both.
func TestServeBrownoutEffects(t *testing.T) {
	s, url := startServer(t, Config{Brownout: true, DocCacheSize: 8})
	ladder := admission.NewBrownout(admission.BrownoutConfig{
		Alpha: 1, StepUp: 0.5, StepDown: 0.1, DwellSamples: 1000})
	s.brown = ladder
	drive := func(pressure float64, levels int) {
		for i := 0; i < levels*1000; i++ {
			ladder.Observe(pressure)
		}
	}
	doc := json.RawMessage(`{"a": 41}`)

	drive(1, 3)
	if got := ladder.Level(); got != admission.BrownoutShedBulk {
		t.Fatalf("level = %d, want %d", got, admission.BrownoutShedBulk)
	}

	// NDJSON bulk is shed with 429 + Retry-After...
	resp, err := http.Post(url+"/v1/query?query=$.a", "application/x-ndjson",
		strings.NewReader(`{"a": 1}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("bulk under brownout: status %d Retry-After %q, want 429 with a hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if got := metricValue(t, url, "rsonpathd_admission_shed_brownout_total"); got != 1 {
		t.Errorf("shed_brownout_total = %d, want 1", got)
	}

	// ...while point queries answer, with index promotion suspended: the
	// same document sighted repeatedly stays "cold".
	for i := 0; i < 3; i++ {
		status, qr, _, _ := postQuery(t, url, queryRequest{Query: "$.a", Document: doc, Mode: "count"})
		if status != http.StatusOK {
			t.Fatalf("point query under brownout: status %d", status)
		}
		if qr.DocumentCache != "cold" {
			t.Fatalf("sighting %d under brownout: document_cache %q, want cold (no promotion)", i, qr.DocumentCache)
		}
	}

	// /healthz reports the overload — with a 200, because an overloaded
	// daemon is alive by design.
	hr, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health healthReport
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK || health.Status != "overloaded" || health.BrownoutLevel != 3 {
		t.Fatalf("healthz under brownout: status %d %+v", hr.StatusCode, health)
	}
	if got := metricValue(t, url, "rsonpathd_brownout_level"); got != 3 {
		t.Errorf("brownout_level metric = %d, want 3", got)
	}

	// Recovery: pressure drains, the ladder steps back up, bulk serves
	// again and the suspended sightings promote immediately.
	drive(0, 3)
	if got := ladder.Level(); got != admission.BrownoutOff {
		t.Fatalf("level after recovery = %d, want 0", got)
	}
	resp2, err := http.Post(url+"/v1/query?query=$.a", "application/x-ndjson",
		strings.NewReader(`{"a": 1}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("bulk after recovery: status %d", resp2.StatusCode)
	}
	status, qr, _, _ := postQuery(t, url, queryRequest{Query: "$.a", Document: doc, Mode: "count"})
	if status != http.StatusOK || qr.DocumentCache != "built" {
		t.Fatalf("promotion after recovery: status %d document_cache %q, want built", status, qr.DocumentCache)
	}
}

// plainRunner is a trivial compile-seam fake: clean runs on a named engine.
type plainRunner struct {
	engine  string
	offsets []int
}

func (p *plainRunner) RunSupervised(_ context.Context, _ []byte, emit func(pos int)) (rsonpath.Outcome, error) {
	for _, pos := range p.offsets {
		emit(pos)
	}
	return rsonpath.Outcome{Attempts: 1, Engine: p.engine}, nil
}

func (p *plainRunner) RunIndexedSupervised(_ context.Context, doc *rsonpath.IndexedDocument, emit func(pos int)) (rsonpath.Outcome, error) {
	return p.RunSupervised(nil, doc.Bytes(), emit)
}

func (p *plainRunner) RunContext(_ context.Context, _ []byte, emit func(pos int)) error {
	for _, pos := range p.offsets {
		emit(pos)
	}
	return nil
}

func (p *plainRunner) RunLinesParallel(io.Reader, int, func(m rsonpath.LineMatch) error) error {
	return nil
}

func (p *plainRunner) Explain(rsonpath.DocStats) rsonpath.Plan {
	return rsonpath.Plan{Strategy: "standard", Engine: rsonpath.EngineRsonpath, Rule: "test-fake"}
}

// TestServeBreakerFailFast floods the daemon with degraded outcomes and
// asserts the circuit breaker opens: requests switch to the fallback-off
// compile variant (fail fast) instead of paying the DOM oracle on every
// request, and the breaker's state is visible in /metrics and /healthz.
func TestServeBreakerFailFast(t *testing.T) {
	s, url := startServer(t, Config{Breaker: true})
	s.breaker = admission.NewBreaker(admission.BreakerConfig{
		Window: 8, Threshold: 3, Cooldown: time.Hour})
	injected := errors.New("rsonpath: internal error in engine rsonpath: injected fault")
	s.compileQuery = func(string) (queryRunner, error) {
		return &degradedRunner{offsets: []int{6}, reason: injected}, nil
	}
	s.compileQueryNF = func(string) (queryRunner, error) {
		return &plainRunner{engine: "fastfail", offsets: []int{6}}, nil
	}

	req := queryRequest{Query: "$.a", Document: json.RawMessage(`{"a": 7}`), Mode: "count"}
	// Threshold degraded outcomes trip the breaker...
	for i := 0; i < 3; i++ {
		status, qr, _, _ := postQuery(t, url, req)
		if status != http.StatusOK || qr.Engine != "dom" || !qr.Degraded {
			t.Fatalf("request %d before trip: status %d engine %q", i, status, qr.Engine)
		}
	}
	// ...after which requests take the fallback-off variant.
	status, qr, _, _ := postQuery(t, url, req)
	if status != http.StatusOK || qr.Engine != "fastfail" || qr.Degraded {
		t.Fatalf("request after trip: status %d engine %q degraded %v, want fastfail", status, qr.Engine, qr.Degraded)
	}
	if got := metricValue(t, url, "rsonpathd_breaker_opens_total"); got != 1 {
		t.Errorf("breaker_opens_total = %d, want 1", got)
	}
	if got := metricValue(t, url, "rsonpathd_breaker_state"); got != int64(admission.BreakerOpen) {
		t.Errorf("breaker_state = %d, want %d (open)", got, admission.BreakerOpen)
	}
	hr, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health healthReport
	json.NewDecoder(hr.Body).Decode(&health)
	hr.Body.Close()
	if health.Breaker != "open" {
		t.Errorf("healthz breaker = %q, want open", health.Breaker)
	}
}

// blockingRunner emits one match, then parks until released — the streaming
// proof: the client must hold the first frame while the run is still
// provably in flight.
type blockingRunner struct {
	emitted chan struct{} // closed after the first emit
	release chan struct{} // the run blocks here before finishing
}

func (b *blockingRunner) RunContext(_ context.Context, _ []byte, emit func(pos int)) error {
	emit(1)
	close(b.emitted)
	<-b.release
	emit(5)
	return nil
}

func (b *blockingRunner) RunSupervised(context.Context, []byte, func(pos int)) (rsonpath.Outcome, error) {
	return rsonpath.Outcome{}, errors.New("buffered path must not be used")
}

func (b *blockingRunner) RunIndexedSupervised(context.Context, *rsonpath.IndexedDocument, func(pos int)) (rsonpath.Outcome, error) {
	return rsonpath.Outcome{}, errors.New("buffered path must not be used")
}

func (b *blockingRunner) RunLinesParallel(io.Reader, int, func(m rsonpath.LineMatch) error) error {
	return errors.New("buffered path must not be used")
}

func (b *blockingRunner) Explain(rsonpath.DocStats) rsonpath.Plan {
	return rsonpath.Plan{Strategy: "standard", Engine: rsonpath.EngineRsonpath, Rule: "test-fake"}
}

// TestServeStreamFirstByte proves streamed responses deliver the first
// frame before the evaluation finishes: the run parks after its first emit,
// and the client reads that frame while the run is still parked.
func TestServeStreamFirstByte(t *testing.T) {
	s, url := startServer(t, Config{})
	br := &blockingRunner{emitted: make(chan struct{}), release: make(chan struct{})}
	s.compileQuery = func(string) (queryRunner, error) { return br, nil }

	client := &http.Client{Transport: &http.Transport{ResponseHeaderTimeout: 5 * time.Second}}
	resp, err := client.Post(url+"/v1/query?query=$.*&stream=1", "application/json",
		strings.NewReader(`[10, 20]`))
	if err != nil {
		t.Fatalf("streamed post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	rd := bufio.NewReader(resp.Body)
	line, err := rd.ReadString('\n')
	if err != nil {
		t.Fatalf("first frame: %v", err)
	}
	if strings.TrimSpace(line) != `{"value":10}` {
		t.Fatalf("first frame %q", strings.TrimSpace(line))
	}
	// The frame arrived while the run is parked: first byte beat the
	// evaluation's end by construction.
	select {
	case <-br.emitted:
	default:
		t.Fatal("frame read before the run emitted it?")
	}
	select {
	case <-br.release:
		t.Fatal("release closed early")
	default:
	}

	close(br.release)
	if line, err = rd.ReadString('\n'); err != nil || strings.TrimSpace(line) != `{"value":20}` {
		t.Fatalf("second frame %q, %v", strings.TrimSpace(line), err)
	}
	line, err = rd.ReadString('\n')
	if err != nil {
		t.Fatalf("done trailer: %v", err)
	}
	var fr streamFrame
	if err := json.Unmarshal([]byte(line), &fr); err != nil || fr.Done == nil || fr.Done.Count != 2 {
		t.Fatalf("done trailer %q: %v", strings.TrimSpace(line), err)
	}
	if got := metricValue(t, url, "rsonpathd_streamed_responses_total"); got != 1 {
		t.Errorf("streamed_responses_total = %d, want 1", got)
	}
}

// TestServeStreamLargeResult streams a result set far larger than the write
// buffer and asserts (a) completeness — every match arrives, then the done
// trailer — and (b) bounded memory: the daemon's heap peak stays well under
// what buffering the response (offsets slice + one giant marshal) would
// cost. The threshold is generous; the buffered path at this scale measured
// several times higher.
func TestServeStreamLargeResult(t *testing.T) {
	const n = 1 << 21 // ~2M matches, ~4 MB document
	var sb strings.Builder
	sb.Grow(2*n + 2)
	sb.WriteByte('[')
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteByte('7')
	}
	sb.WriteByte(']')
	doc := sb.String()

	s, url := startServer(t, Config{})
	_ = s

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	stop := make(chan struct{})
	samplerDone := make(chan struct{})
	var peak uint64
	go func() {
		defer close(samplerDone)
		var m runtime.MemStats
		for {
			select {
			case <-stop:
				return
			default:
				runtime.ReadMemStats(&m)
				if m.HeapAlloc > peak {
					peak = m.HeapAlloc
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()

	resp, err := http.Post(url+"/v1/query?query=$.*&stream=1&mode=offsets", "application/json",
		strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	frames := 0
	var done *streamDone
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"done"`)) || bytes.Contains(line, []byte(`"error"`)) {
			var fr streamFrame
			if err := json.Unmarshal(line, &fr); err != nil {
				t.Fatal(err)
			}
			if fr.Error != nil {
				t.Fatalf("error trailer: %+v", fr.Error)
			}
			done = fr.Done
			continue
		}
		frames++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-samplerDone

	if done == nil || done.Count != n || frames != n {
		t.Fatalf("stream incomplete: frames=%d done=%+v, want %d", frames, done, n)
	}
	// Buffering this response means an n-entry offsets slice plus its JSON
	// marshal (>40 MB live at once); the streamed path holds the document
	// and a 32 KiB write buffer.
	const budget = 40 << 20
	if delta := int64(peak) - int64(m0.HeapAlloc); delta > budget {
		t.Errorf("heap peak grew %d bytes during streaming (budget %d): response is being buffered", delta, int64(budget))
	}
}
