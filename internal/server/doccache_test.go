package server

import (
	"fmt"
	"testing"
)

// TestDocCachePromotion verifies the sighting threshold: no index on the
// first lookups, a build at the threshold, hits after.
func TestDocCachePromotion(t *testing.T) {
	c := newDocCache(4, 0, 3)
	doc := []byte(`{"a": 1}`)
	for i := 1; i <= 2; i++ {
		if idx, built := c.lookup(doc, true); idx != nil || built {
			t.Fatalf("sighting %d: premature index (built=%v)", i, built)
		}
	}
	idx, built := c.lookup(doc, true)
	if idx == nil || !built {
		t.Fatalf("third sighting: idx=%v built=%v, want build", idx, built)
	}
	idx2, built := c.lookup(doc, true)
	if idx2 != idx || built {
		t.Fatalf("fourth sighting: want hit of the same index (built=%v)", built)
	}
}

// TestDocCacheContentKeyed verifies different bytes never share an entry.
func TestDocCacheContentKeyed(t *testing.T) {
	c := newDocCache(4, 0, 1)
	a, _ := c.lookup([]byte(`{"a": 1}`), true)
	b, _ := c.lookup([]byte(`{"a": 2}`), true)
	if a == nil || b == nil || a == b {
		t.Fatalf("content collision: %v %v", a, b)
	}
}

// TestDocCacheEviction fills past capacity and verifies LRU discard.
func TestDocCacheEviction(t *testing.T) {
	c := newDocCache(2, 0, 1)
	docs := [][]byte{[]byte(`{"a": 1}`), []byte(`{"a": 2}`), []byte(`{"a": 3}`)}
	for _, d := range docs {
		if idx, _ := c.lookup(d, true); idx == nil {
			t.Fatalf("threshold-1 lookup did not build for %s", d)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	// The first document was evicted: looking it up again rebuilds.
	if _, built := c.lookup(docs[0], true); !built {
		t.Fatalf("evicted document served without a rebuild")
	}
}

// TestDocCacheByteBound verifies the resident-bytes bound: a cache whose
// entry count would allow many indexes still evicts LRU once the summed
// footprints exceed the byte budget, and the resident gauge tracks what is
// actually held.
func TestDocCacheByteBound(t *testing.T) {
	// Each doc is ~64 bytes, so each index footprint is ~64 + planes.
	// Budget two footprints' worth and insert three documents.
	doc := func(i int) []byte {
		return []byte(fmt.Sprintf(`{"key%d": %q}`, i, make([]byte, 40)))
	}
	probe := newDocCache(8, 0, 1)
	idx, _ := probe.lookup(doc(0), true)
	if idx == nil {
		t.Fatal("probe build failed")
	}
	foot := int64(idx.Footprint())

	c := newDocCache(8, 2*foot, 1)
	for i := 0; i < 3; i++ {
		if got, _ := c.lookup(doc(i), true); got == nil {
			t.Fatalf("doc %d did not build", i)
		}
	}
	resident, builds, evicted := c.stats()
	if resident > 2*foot {
		t.Fatalf("resident %d exceeds budget %d", resident, 2*foot)
	}
	if builds != 3 || evicted < 1 {
		t.Fatalf("builds=%d evicted=%d, want 3 builds and >=1 eviction", builds, evicted)
	}
	// The evicted (oldest) document rebuilds; the newest is still a hit.
	if _, built := c.lookup(doc(0), true); !built {
		t.Fatal("byte-evicted document served without a rebuild")
	}
	if _, built := c.lookup(doc(2), true); built {
		t.Fatal("newest document was evicted by the byte bound prematurely")
	}
}

// TestDocCacheNoPromote verifies the brownout hook: promote=false serves
// existing indexes but never spends a build, and sightings still count so
// promotion resumes once the pressure clears.
func TestDocCacheNoPromote(t *testing.T) {
	c := newDocCache(4, 0, 2)
	doc := []byte(`{"a": 1}`)
	for i := 0; i < 4; i++ {
		if idx, built := c.lookup(doc, false); idx != nil || built {
			t.Fatalf("lookup %d under no-promote built an index", i)
		}
	}
	// Pressure cleared: the accumulated sightings promote immediately.
	if idx, built := c.lookup(doc, true); idx == nil || !built {
		t.Fatal("promotion did not resume after no-promote lifted")
	}
	// And an existing index keeps serving even under no-promote.
	if idx, built := c.lookup(doc, false); idx == nil || built {
		t.Fatal("no-promote refused an existing index")
	}
}

// TestDocCacheMalformedNotRetried verifies a document the index screens
// reject is remembered and not re-screened, and lookups keep reporting a
// miss so requests run unindexed.
func TestDocCacheMalformedNotRetried(t *testing.T) {
	c := newDocCache(4, 0, 1)
	bad := []byte(`{"a": [1, 2}`) // unbalanced: ] missing
	for i := 0; i < 3; i++ {
		if idx, built := c.lookup(bad, true); idx != nil || built {
			t.Fatalf("lookup %d: malformed document produced an index", i)
		}
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1 pinned counter entry", c.len())
	}
}

// TestDocCacheDisabled verifies capacity 0 stores nothing.
func TestDocCacheDisabled(t *testing.T) {
	c := newDocCache(0, 0, 1)
	for i := 0; i < 3; i++ {
		if idx, built := c.lookup([]byte(`{"a": 1}`), true); idx != nil || built {
			t.Fatalf("disabled cache built an index")
		}
	}
	if c.len() != 0 {
		t.Fatalf("disabled cache retained entries")
	}
}

// TestDocCacheConcurrent exercises the lock under -race.
func TestDocCacheConcurrent(t *testing.T) {
	c := newDocCache(8, 1<<20, 2)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				doc := []byte(fmt.Sprintf(`{"k": %d}`, i%4))
				c.lookup(doc, true)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
