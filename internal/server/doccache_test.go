package server

import (
	"fmt"
	"testing"
)

// TestDocCachePromotion verifies the sighting threshold: no index on the
// first lookups, a build at the threshold, hits after.
func TestDocCachePromotion(t *testing.T) {
	c := newDocCache(4, 3)
	doc := []byte(`{"a": 1}`)
	for i := 1; i <= 2; i++ {
		if idx, built := c.lookup(doc); idx != nil || built {
			t.Fatalf("sighting %d: premature index (built=%v)", i, built)
		}
	}
	idx, built := c.lookup(doc)
	if idx == nil || !built {
		t.Fatalf("third sighting: idx=%v built=%v, want build", idx, built)
	}
	idx2, built := c.lookup(doc)
	if idx2 != idx || built {
		t.Fatalf("fourth sighting: want hit of the same index (built=%v)", built)
	}
}

// TestDocCacheContentKeyed verifies different bytes never share an entry.
func TestDocCacheContentKeyed(t *testing.T) {
	c := newDocCache(4, 1)
	a, _ := c.lookup([]byte(`{"a": 1}`))
	b, _ := c.lookup([]byte(`{"a": 2}`))
	if a == nil || b == nil || a == b {
		t.Fatalf("content collision: %v %v", a, b)
	}
}

// TestDocCacheEviction fills past capacity and verifies LRU discard.
func TestDocCacheEviction(t *testing.T) {
	c := newDocCache(2, 1)
	docs := [][]byte{[]byte(`{"a": 1}`), []byte(`{"a": 2}`), []byte(`{"a": 3}`)}
	for _, d := range docs {
		if idx, _ := c.lookup(d); idx == nil {
			t.Fatalf("threshold-1 lookup did not build for %s", d)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	// The first document was evicted: looking it up again rebuilds.
	if _, built := c.lookup(docs[0]); !built {
		t.Fatalf("evicted document served without a rebuild")
	}
}

// TestDocCacheMalformedNotRetried verifies a document the index screens
// reject is remembered and not re-screened, and lookups keep reporting a
// miss so requests run unindexed.
func TestDocCacheMalformedNotRetried(t *testing.T) {
	c := newDocCache(4, 1)
	bad := []byte(`{"a": [1, 2}`) // unbalanced: ] missing
	for i := 0; i < 3; i++ {
		if idx, built := c.lookup(bad); idx != nil || built {
			t.Fatalf("lookup %d: malformed document produced an index", i)
		}
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1 pinned counter entry", c.len())
	}
}

// TestDocCacheDisabled verifies capacity 0 stores nothing.
func TestDocCacheDisabled(t *testing.T) {
	c := newDocCache(0, 1)
	for i := 0; i < 3; i++ {
		if idx, built := c.lookup([]byte(`{"a": 1}`)); idx != nil || built {
			t.Fatalf("disabled cache built an index")
		}
	}
	if c.len() != 0 {
		t.Fatalf("disabled cache retained entries")
	}
}

// TestDocCacheConcurrent exercises the lock under -race.
func TestDocCacheConcurrent(t *testing.T) {
	c := newDocCache(8, 2)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				doc := []byte(fmt.Sprintf(`{"k": %d}`, i%4))
				c.lookup(doc)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
