package cluster

import (
	"net/http"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Shard lifecycle states. A shard is routable only in stateRunning *and*
// after a health probe has confirmed it (sh.routable); the states exist so
// /healthz and the logs can say *why* a shard is out of rotation.
const (
	stateStarting    = "starting"
	stateRunning     = "running"
	stateDown        = "down" // crashed, restart pending
	stateQuarantined = "quarantined"
	stateStopped     = "stopped" // planned shutdown
)

// shard is one supervised worker slot: a stable identity (id, socket path,
// ring position) across however many worker processes live and die in it.
type shard struct {
	id     int
	socket string
	cl     *Cluster

	mu       sync.Mutex
	cmd      *exec.Cmd
	pid      int
	state    string
	gen      chan struct{} // closed when the current process exits
	reviveCh chan struct{} // buffered(1): lifts quarantine
	httpc    *http.Client  // lazily built pooled unix-socket client

	routable atomic.Bool  // health-gated router membership
	inflight atomic.Int64 // router requests currently proxied here
	restarts atomic.Int64 // processes started beyond the first
}

func newShard(cl *Cluster, id int, socket string) *shard {
	return &shard{id: id, socket: socket, cl: cl, state: stateStarting,
		reviveCh: make(chan struct{}, 1)}
}

// supervise is the per-shard restart loop: start the worker, wait for it to
// exit, classify the exit (planned, fresh crash, crash-loop crash), and
// restart under exponential backoff — or quarantine after
// CrashLoopThreshold consecutive fast crashes. Runs until cluster shutdown.
func (c *Cluster) supervise(sh *shard) {
	defer c.wg.Done()
	backoff := c.cfg.RestartBackoff
	loopCrashes := 0
	first := true
	for {
		select {
		case <-c.stopCh:
			return
		default:
		}

		cmd := c.cfg.WorkerCommand(sh.id, sh.socket)
		decorate(cmd)
		start := time.Now()
		if err := cmd.Start(); err != nil {
			// Start failure (binary gone, fd exhaustion) is a fast crash:
			// same backoff, same quarantine ladder.
			c.logf("shard %d: start failed: %v", sh.id, err)
			c.met.startFailures.Add(1)
			loopCrashes++
			if sh.maybeQuarantine(loopCrashes) {
				if !sh.awaitRevive(c.stopCh) {
					return
				}
				loopCrashes, backoff = 0, c.cfg.RestartBackoff
				continue
			}
			backoff = nextBackoff(backoff, c.cfg.MaxRestartBackoff)
			if !sleepOrStop(backoff, c.stopCh) {
				return
			}
			continue
		}
		sh.setRunning(cmd)
		if first {
			first = false
		} else {
			sh.restarts.Add(1)
			c.met.restarts.Add(1)
		}
		c.logf("shard %d: worker pid %d started", sh.id, cmd.Process.Pid)

		err := cmd.Wait()
		uptime := time.Since(start)
		sh.setExited()

		select {
		case <-c.stopCh:
			sh.setState(stateStopped)
			return
		default:
		}
		c.met.crashes.Add(1)
		c.logf("shard %d: worker pid %d exited after %s: %v", sh.id, cmd.Process.Pid, uptime.Round(time.Millisecond), err)

		if uptime >= c.cfg.CrashLoopWindow {
			// The worker did real service before dying (an OOM kill, a chaos
			// SIGKILL): restart promptly and forget prior sins.
			loopCrashes = 0
			backoff = c.cfg.RestartBackoff
		} else {
			loopCrashes++
			if sh.maybeQuarantine(loopCrashes) {
				if !sh.awaitRevive(c.stopCh) {
					return
				}
				loopCrashes, backoff = 0, c.cfg.RestartBackoff
				continue
			}
			backoff = nextBackoff(backoff, c.cfg.MaxRestartBackoff)
		}
		if !sleepOrStop(backoff, c.stopCh) {
			return
		}
	}
}

// maybeQuarantine flips the shard into quarantine at the crash-loop
// threshold and reports whether it did.
func (sh *shard) maybeQuarantine(loopCrashes int) bool {
	if loopCrashes < sh.cl.cfg.CrashLoopThreshold {
		return false
	}
	// Drain any stale revive token (a SIGHUP that raced a previous
	// quarantine lift) so entering quarantine requires a fresh signal to
	// leave it.
	select {
	case <-sh.reviveCh:
	default:
	}
	sh.setState(stateQuarantined)
	sh.cl.met.quarantines.Add(1)
	sh.cl.logf("shard %d: quarantined after %d consecutive crash-loop exits; service degrades to surviving shards (SIGHUP revives)",
		sh.id, loopCrashes)
	return true
}

// awaitRevive parks a quarantined shard until SIGHUP (or shutdown; the
// return value is false exactly then).
func (sh *shard) awaitRevive(stop <-chan struct{}) bool {
	select {
	case <-sh.reviveCh:
		sh.cl.logf("shard %d: quarantine lifted", sh.id)
		sh.setState(stateStarting)
		return true
	case <-stop:
		return false
	}
}

// revive lifts quarantine, if the shard is in it; no-op otherwise (the
// buffered channel absorbs the signal, and a stale token is drained before
// the next quarantine could consume it — see maybeQuarantine's caller,
// which only selects on reviveCh while quarantined).
func (sh *shard) revive() {
	sh.mu.Lock()
	quarantined := sh.state == stateQuarantined
	sh.mu.Unlock()
	if !quarantined {
		return
	}
	select {
	case sh.reviveCh <- struct{}{}:
	default:
	}
}

func (sh *shard) setRunning(cmd *exec.Cmd) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.cmd = cmd
	sh.pid = cmd.Process.Pid
	sh.state = stateRunning
	sh.gen = make(chan struct{})
	// Not routable yet: the health probe flips that once /healthz answers.
}

// setExited marks the current process gone: out of rotation immediately
// (before the next probe tick could even notice) and the generation channel
// closed so drain waiters wake.
func (sh *shard) setExited() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.routable.Store(false)
	sh.pid = 0
	sh.cmd = nil
	sh.state = stateDown
	if sh.gen != nil {
		close(sh.gen)
		sh.gen = nil
	}
}

func (sh *shard) setState(s string) {
	sh.mu.Lock()
	sh.state = s
	if s != stateRunning {
		sh.routable.Store(false)
	}
	sh.mu.Unlock()
}

// running returns the live process handle, or nil.
func (sh *shard) running() (*exec.Cmd, chan struct{}) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.state != stateRunning {
		return nil, nil
	}
	return sh.cmd, sh.gen
}

// signal delivers sig to the running worker; dropped when not running.
func (sh *shard) signal(sig os.Signal) {
	cmd, _ := sh.running()
	if cmd != nil && cmd.Process != nil {
		cmd.Process.Signal(sig)
	}
}

// drain gracefully stops this shard's worker during cluster shutdown: out
// of rotation, SIGTERM, wait up to timeout for the supervisor's Wait to
// observe the exit, SIGKILL if the drain deadline passes. Called
// sequentially per shard — the rolling part of the rolling drain.
func (sh *shard) drain(timeout time.Duration) {
	sh.routable.Store(false)
	cmd, gen := sh.running()
	if cmd == nil {
		return
	}
	cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-gen:
		return
	case <-time.After(timeout):
	}
	sh.cl.logf("shard %d: drain deadline exceeded; killing", sh.id)
	cmd.Process.Kill()
	<-gen
}

func (sh *shard) snapshot() ShardState {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return ShardState{
		ID:       sh.id,
		PID:      sh.pid,
		State:    sh.state,
		Routable: sh.routable.Load(),
		Inflight: sh.inflight.Load(),
		Restarts: sh.restarts.Load(),
	}
}

// nextBackoff doubles toward max.
func nextBackoff(cur, max time.Duration) time.Duration {
	cur *= 2
	if cur > max {
		cur = max
	}
	return cur
}

// sleepOrStop sleeps d unless stop closes first; reports whether to keep
// going.
func sleepOrStop(d time.Duration, stop <-chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}
