package cluster

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestStreamKillYieldsErrorTrailer is the mid-stream crash contract, end to
// end with real processes: a client consuming a streamed NDJSON response
// whose worker is SIGKILLed mid-flight must receive an {"error": ...}
// trailer on a clean frame boundary — never a hang, never a silent
// truncation — while the supervisor restarts the worker and a follow-up
// request succeeds.
//
// The timing is made deterministic by read-backpressure rather than sleeps:
// the response is far larger than every buffer between worker and client,
// so after the client reads the first frame and stops, the worker is
// necessarily still mid-stream (blocked writing) when the kill lands.
func TestStreamKillYieldsErrorTrailer(t *testing.T) {
	cl, base := startTestCluster(t, Config{
		Shards:        2,
		WorkerCommand: testWorkerCommand("worker"),
	})
	waitRoutableShards(t, cl, 2, 10*time.Second)

	// ~150k records; the values-mode response frames total several MB.
	var body bytes.Buffer
	for i := 0; i < 150_000; i++ {
		fmt.Fprintf(&body, `{"a": %d, "pad": "%032d"}`+"\n", i, i)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		base+"/v1/query?query=%24.a&mode=values&stream=1", bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	client := &http.Client{}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("stream request: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		out, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream status = %d body %.200s", resp.StatusCode, out)
	}

	// Read one frame, then stop consuming: backpressure pins the worker
	// mid-stream.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	if !sc.Scan() {
		t.Fatalf("no first frame: %v", sc.Err())
	}
	first := sc.Text()
	if !strings.Contains(first, `"record"`) {
		t.Fatalf("first frame %q is not a record frame", first)
	}

	// The shard with the in-flight request is the one serving our stream.
	victim := -1
	for _, st := range cl.ShardStates() {
		if st.Inflight > 0 {
			victim = st.ID
			if err := syscall.Kill(st.PID, syscall.SIGKILL); err != nil {
				t.Fatalf("kill pid %d: %v", st.PID, err)
			}
		}
	}
	if victim < 0 {
		t.Fatalf("no shard shows an in-flight request: %+v", cl.ShardStates())
	}

	// Drain the rest. The stream must terminate (ctx bounds a hang) with an
	// error trailer and without a done trailer.
	var last string
	sawDone, sawError := false, false
	for sc.Scan() {
		last = sc.Text()
		if strings.Contains(last, `"done"`) {
			sawDone = true
		}
		if strings.Contains(last, `"error"`) {
			sawError = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read failed instead of delivering a trailer: %v", err)
	}
	if sawDone {
		t.Fatal("stream carries a done trailer despite the worker being killed mid-flight")
	}
	if !sawError {
		t.Fatalf("stream ended without an error trailer; last frame: %.200s", last)
	}
	if !strings.Contains(last, "worker_lost") {
		t.Errorf("trailer %.200s does not name worker_lost", last)
	}

	// The supervisor restarts the victim and a follow-up query succeeds.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := cl.ShardStates()[victim]
		if st.Routable && st.Restarts >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard %d never came back: %+v", victim, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	resp2, err := postQuery(base)
	if err != nil {
		t.Fatalf("follow-up query: %v", err)
	}
	out, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("follow-up status = %d body %s", resp2.StatusCode, out)
	}
	if got := cl.met.streamTruncated.Load(); got < 1 {
		t.Errorf("streamTruncated counter = %d, want >= 1", got)
	}
}
