package cluster

import (
	"context"
	"io"
	"net"
	"net/http"
	"time"
)

// unixClient builds an HTTP client whose every connection dials the given
// unix socket; the URL host is decorative. One transport per shard lives
// for the cluster's lifetime — worker restarts invalidate pooled
// connections, which surface as transport errors the router already fails
// over on, then the pool re-dials the fresh listener.
func unixClient(socket string, timeout time.Duration) *http.Client {
	tr := &http.Transport{
		DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "unix", socket)
		},
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     30 * time.Second,
	}
	return &http.Client{Transport: tr, Timeout: timeout}
}

// probe is the per-shard health loop: every HealthInterval, GET the
// worker's /healthz with a HealthTimeout budget and gate routability on a
// 200. A worker that answers 503 (draining) or nothing (starting, dead,
// wedged) is out of rotation; one clean answer puts it back — recovery
// latency is one probe tick, which is why the interval defaults to 100ms.
// Process death is additionally detected synchronously by the supervisor
// (setExited), so the probe is the gate for "alive but not well", not the
// only line of defense.
func (c *Cluster) probe(sh *shard) {
	defer c.wg.Done()
	client := unixClient(sh.socket, c.cfg.HealthTimeout)
	defer client.CloseIdleConnections()
	ticker := time.NewTicker(c.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-ticker.C:
		}
		cmd, _ := sh.running()
		if cmd == nil {
			continue // not running; routable already false
		}
		now := probeOnce(client) && sh.isRunning()
		was := sh.routable.Swap(now)
		if was != now {
			if now {
				c.met.healthUp.Add(1)
				c.logf("shard %d: healthy, in rotation", sh.id)
			} else {
				c.met.healthDown.Add(1)
				c.logf("shard %d: health probe failed, out of rotation", sh.id)
			}
		}
	}
}

// isRunning re-checks process state after a probe, so a worker that died
// mid-probe cannot be marked routable by the stale 200.
func (sh *shard) isRunning() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.state == stateRunning
}

// probeOnce is one GET /healthz; any 200 within the client timeout is
// healthy.
func probeOnce(client *http.Client) bool {
	resp, err := client.Get("http://worker/healthz")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	return resp.StatusCode == http.StatusOK
}
