package cluster

import (
	"context"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rsonpath/internal/server"
)

// RunWorker runs one shard's daemon on a unix socket until ctx is cancelled
// (the supervisor's SIGTERM, typically bound via signal.NotifyContext by the
// caller), then drains in-flight requests for up to drainTimeout. SIGHUP is
// handled here — flush caches, reset admission state — so every worker main
// (the production re-exec, the bench harness's hidden worker mode, the test
// binaries) gets identical semantics from one implementation.
//
// The socket path is stamped into cfg.Addr; cfg.Shard should already name
// the shard so /healthz and logs identify which worker answered.
func RunWorker(ctx context.Context, cfg server.Config, socket string, drainTimeout time.Duration) error {
	cfg.Addr = "unix:" + socket
	srv := server.New(cfg)
	if err := srv.Listen(); err != nil {
		return err
	}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)

	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			select {
			case <-hup:
				srv.Flush()
			case <-ctx.Done():
				return
			case <-done:
				return
			}
		}
	}()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve() }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return err
	}
	return <-errCh
}
