package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sync/atomic"
)

// clusterMetrics are the parent process's own counters, disjoint from the
// per-worker rsonpathd_* metrics (each worker serves its own /metrics on its
// socket). Everything is a monotone counter except the two process gauges
// sampled at render time.
type clusterMetrics struct {
	// Supervision.
	startFailures atomic.Int64 // exec/start errors (binary missing, fd exhaustion)
	restarts      atomic.Int64 // worker processes started beyond each shard's first
	crashes       atomic.Int64 // unplanned worker exits observed
	quarantines   atomic.Int64 // crash-loop circuit breaker trips
	healthUp      atomic.Int64 // probe transitions into rotation
	healthDown    atomic.Int64 // probe transitions out of rotation

	// Routing.
	proxied         atomic.Int64 // requests accepted by the front router
	proxyNs         atomic.Int64 // total router-side latency, nanoseconds
	affinityHits    atomic.Int64 // picks won by the consistent-hash choice
	failovers       atomic.Int64 // attempts re-dispatched after a transport failure
	noWorker        atomic.Int64 // 503s: no routable shard within RouteWait
	badGateway      atomic.Int64 // 502s: every re-dispatch attempt failed
	streamTruncated atomic.Int64 // NDJSON streams ended with a worker_lost trailer
}

// render writes the Prometheus exposition format, mirroring the workers'
// /metrics conventions.
func (m *clusterMetrics) render(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("rsonpathd_cluster_start_failures_total", "Worker process start failures.", m.startFailures.Load())
	counter("rsonpathd_cluster_restarts_total", "Worker processes restarted after a crash.", m.restarts.Load())
	counter("rsonpathd_cluster_crashes_total", "Unplanned worker exits observed by the supervisor.", m.crashes.Load())
	counter("rsonpathd_cluster_quarantines_total", "Crash-loop circuit breaker trips.", m.quarantines.Load())
	counter("rsonpathd_cluster_health_up_total", "Shard transitions into router rotation.", m.healthUp.Load())
	counter("rsonpathd_cluster_health_down_total", "Shard transitions out of router rotation.", m.healthDown.Load())
	counter("rsonpathd_cluster_proxied_total", "Requests accepted by the front router.", m.proxied.Load())
	counter("rsonpathd_cluster_affinity_hits_total", "Routing picks won by document affinity.", m.affinityHits.Load())
	counter("rsonpathd_cluster_failovers_total", "Request attempts re-dispatched after worker transport failure.", m.failovers.Load())
	counter("rsonpathd_cluster_no_worker_total", "Requests rejected 503 with no routable shard.", m.noWorker.Load())
	counter("rsonpathd_cluster_bad_gateway_total", "Requests failed 502 after exhausting re-dispatch attempts.", m.badGateway.Load())
	counter("rsonpathd_cluster_stream_truncated_total", "NDJSON streams ended with a worker_lost error trailer.", m.streamTruncated.Load())
	counter("rsonpathd_cluster_proxy_ns_total", "Cumulative router-side request latency in nanoseconds.", m.proxyNs.Load())
	gauge("rsonpathd_cluster_goroutines", "Parent process goroutine count.", int64(runtime.NumGoroutine()))
	gauge("rsonpathd_cluster_open_fds", "Parent process open file descriptors (-1 when unavailable).", int64(CountFDs()))
}

// CountFDs returns the calling process's open file descriptor count via
// /proc/self/fd, or -1 where procfs is unavailable (non-Linux); callers — the
// chaos leak gate — skip the check then rather than fail it.
func CountFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	// The ReadDir itself holds one fd; exclude it.
	return len(ents) - 1
}

// clusterHealth is the router /healthz body.
type clusterHealth struct {
	Status   string       `json:"status"` // "ok" | "degraded" | "down"
	Shards   int          `json:"shards"`
	Routable int          `json:"routable"`
	Workers  []ShardState `json:"workers"`
}

// handleHealthz reports aggregate cluster health: 200 while at least one
// shard is routable (the whole point of crash isolation is that the service
// answers while any shard survives), 503 only when none is.
func (c *Cluster) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rep := clusterHealth{Shards: len(c.shards), Routable: c.RoutableShards(), Workers: c.ShardStates()}
	status := http.StatusOK
	switch {
	case rep.Routable == len(c.shards):
		rep.Status = "ok"
	case rep.Routable > 0:
		rep.Status = "degraded"
	default:
		rep.Status = "down"
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(&rep)
}

func (c *Cluster) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c.met.render(w)
}

func (c *Cluster) handleVersion(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"version": c.cfg.Version,
		"mode":    "cluster",
		"shards":  len(c.shards),
	})
}
