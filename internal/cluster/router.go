package cluster

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// The front router. Design constraints, in order:
//
//  1. A worker death must never surface to the client as a 5xx or a hang.
//     Non-streamed responses are therefore *buffered*: the router holds the
//     request body (for re-dispatch) and reads the worker's entire response
//     before forwarding a byte, so any worker failure before that point —
//     dial refused, connection reset mid-headers, response truncated
//     mid-body — rolls back to trying another worker. Queries are pure
//     reads, so re-dispatch is idempotent by construction; the worst case
//     is a query evaluated twice.
//  2. Streamed (NDJSON) responses cannot be buffered — bounded response
//     memory is their whole point — so they forward frame-by-frame. Once
//     the first frame has left for the client the stream is committed: a
//     worker dying mid-stream gets a clean {"error": ...} trailer appended
//     on a fresh line (the NDJSON framing survives because the router
//     forwards only complete lines), never a silent truncation or a hang.
//  3. Load balancing is least-inflight with consistent-hash affinity on the
//     document digest: the affinity shard wins unless it is unhealthy or
//     carrying AffinitySlack more in-flight requests than the least-loaded
//     shard. Affinity keys the per-worker content-addressed index caches:
//     the same document keeps landing on the same shard, so its mask index
//     stays hot there instead of being rebuilt N times.
//
// Worker 4xx/5xx responses are forwarded as-is, never retried: a 429 is the
// shard's admission gate doing its job, and re-dispatching shed load would
// turn one overloaded shard into N.

// routerMaxAttempts bounds failover re-dispatch; one full pass over the
// shards plus one retry of a freshly restarted worker.
func (c *Cluster) maxAttempts() int { return len(c.shards) + 1 }

// handleProxy is POST /v1/query on the public listener.
func (c *Cluster) handleProxy(w http.ResponseWriter, r *http.Request) {
	c.met.proxied.Add(1)
	start := time.Now()
	defer func() { c.met.proxyNs.Add(int64(time.Since(start))) }()

	if r.ContentLength > c.cfg.MaxBodyBytes {
		routerError(w, http.StatusRequestEntityTooLarge, "limit",
			fmt.Sprintf("request body of %d bytes exceeds the %d-byte limit", r.ContentLength, c.cfg.MaxBodyBytes))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		status, kind := http.StatusBadRequest, "bad_request"
		if _, ok := err.(*http.MaxBytesError); ok {
			status, kind = http.StatusRequestEntityTooLarge, "limit"
		}
		routerError(w, status, kind, "reading request body: "+err.Error())
		return
	}

	key := c.affinityKey(r, body)
	tried := make(map[int]bool, len(c.shards))
	deadline := time.Now().Add(c.cfg.RouteWait)
	for attempt := 0; attempt < c.maxAttempts(); attempt++ {
		sh := c.pick(key, tried)
		if sh == nil {
			// Nothing routable that we have not already tried. A restart is
			// usually one backoff away; wait briefly with the tried-set
			// cleared (a restarted worker is a fresh worker) rather than
			// failing the request into a healthy-in-100ms cluster.
			sh = c.waitRoutable(r, deadline)
			if sh == nil {
				c.met.noWorker.Add(1)
				routerError(w, http.StatusServiceUnavailable, "overload",
					"no healthy worker shard; retry shortly")
				return
			}
			clear(tried)
		}
		tried[sh.id] = true
		if c.forward(w, r, sh, body) {
			return
		}
		c.met.failovers.Add(1)
	}
	c.met.badGateway.Add(1)
	routerError(w, http.StatusBadGateway, "internal",
		"request failed on every worker shard")
}

// affinityKey hashes the request's *document* so the same bytes keep
// hitting the same shard's index cache. Raw-document and NDJSON forms (the
// query rides in the URL) use the body verbatim; the JSON envelope form
// extracts the "document" member so that different queries over one
// document still share a shard. An unparseable envelope hashes the whole
// body — the worker will reject it anyway, the route just has to be
// deterministic.
func (c *Cluster) affinityKey(r *http.Request, body []byte) uint64 {
	doc := body
	if r.URL.Query().Get("query") == "" && len(body) > 0 {
		var env struct {
			Document json.RawMessage `json:"document"`
		}
		if err := json.Unmarshal(body, &env); err == nil && len(env.Document) > 0 {
			doc = env.Document
		}
	}
	sum := sha256.Sum256(doc)
	return binary.BigEndian.Uint64(sum[:8])
}

// pick selects the shard for this attempt: the ring's affinity choice when
// it is routable, untried, and within AffinitySlack of the least-loaded
// shard; the least-inflight routable untried shard otherwise.
func (c *Cluster) pick(key uint64, tried map[int]bool) *shard {
	var least *shard
	var leastLoad int64
	for _, sh := range c.shards {
		if tried[sh.id] || !sh.routable.Load() {
			continue
		}
		load := sh.inflight.Load()
		if least == nil || load < leastLoad {
			least, leastLoad = sh, load
		}
	}
	if least == nil {
		return nil
	}
	aff := c.ring.lookup(key, func(id int) bool {
		return !tried[id] && c.shards[id].routable.Load()
	})
	if aff >= 0 && c.shards[aff].inflight.Load() <= leastLoad+c.cfg.AffinitySlack {
		c.met.affinityHits.Add(1)
		return c.shards[aff]
	}
	return least
}

// waitRoutable polls for any routable shard until the route deadline or the
// client gives up.
func (c *Cluster) waitRoutable(r *http.Request, deadline time.Time) *shard {
	for {
		for _, sh := range c.shards {
			if sh.routable.Load() {
				return sh
			}
		}
		if time.Now().After(deadline) {
			return nil
		}
		select {
		case <-r.Context().Done():
			return nil
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// forward sends the request to sh and relays the response. It reports true
// when the client got an answer (success, a worker-authored error, or a
// committed stream — even a truncated-with-trailer one) and false when the
// attempt is retryable on another shard (transport failure with nothing
// sent to the client).
func (c *Cluster) forward(w http.ResponseWriter, r *http.Request, sh *shard, body []byte) bool {
	sh.inflight.Add(1)
	defer sh.inflight.Add(-1)

	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		"http://worker"+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return false
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	req.Header.Set("X-Rsonpathd-Shard", strconv.Itoa(sh.id))

	resp, err := sh.client().Do(req)
	if err != nil {
		// Transport failure before any response: dial refused (worker dead,
		// socket gone), reset mid-headers (killed while parsing), or a stale
		// pooled connection. Nothing reached the client; retryable — unless
		// the *client* is what went away.
		if r.Context().Err() != nil {
			return true
		}
		return false
	}
	defer resp.Body.Close()

	if isNDJSON(resp.Header.Get("Content-Type")) {
		c.relayStream(w, resp)
		return true
	}

	// Buffered relay: the whole worker response must arrive intact before
	// the client sees any of it, so a worker death mid-body stays retryable.
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return r.Context().Err() != nil
	}
	copyHeaders(w.Header(), resp.Header)
	w.Header().Set("Content-Length", strconv.Itoa(len(respBody)))
	w.WriteHeader(resp.StatusCode)
	w.Write(respBody)
	return true
}

// relayStream forwards an NDJSON response line by line, flushing as it
// goes. Only complete lines are forwarded; if the worker connection fails
// mid-stream the client receives an {"error": ...} trailer on its own line
// and the response ends — truncation is always explicit (the "done" trailer
// is absent), never a hang.
func (c *Cluster) relayStream(w http.ResponseWriter, resp *http.Response) {
	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	rc := http.NewResponseController(w)

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if _, err := w.Write(append(line, '\n')); err != nil {
			return // client went away; nothing to salvage
		}
		rc.Flush()
	}
	if err := sc.Err(); err != nil {
		// The worker died (or the read timed out) mid-stream. The status
		// line is long gone; the contract is the explicit error trailer.
		c.met.streamTruncated.Add(1)
		fmt.Fprintf(w, "{\"error\":{\"kind\":\"worker_lost\",\"message\":%s}}\n",
			mustJSON("worker connection lost mid-stream: "+err.Error()))
		rc.Flush()
	}
}

// client returns the shard's pooled unix-socket HTTP client, created
// lazily once.
func (sh *shard) client() *http.Client {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.httpc == nil {
		// No overall client timeout: request lifetime is governed by the
		// client's own context and the workers' watchdog deadlines.
		sh.httpc = unixClient(sh.socket, 0)
	}
	return sh.httpc
}

// CloseIdleConnections drops every shard client's idle pooled connections.
// The chaos harness uses it to quiesce the parent before counting
// goroutines and fds, so pool population does not read as a leak.
func (c *Cluster) CloseIdleConnections() {
	for _, sh := range c.shards {
		sh.mu.Lock()
		client := sh.httpc
		sh.mu.Unlock()
		if client != nil {
			client.CloseIdleConnections()
		}
	}
}

// isNDJSON matches the streamed response Content-Type.
func isNDJSON(ct string) bool {
	return ct == "application/x-ndjson" || ct == "application/ndjson"
}

// copyHeaders copies end-to-end headers, dropping the hop-by-hop set.
func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		switch k {
		case "Connection", "Transfer-Encoding", "Content-Length", "Keep-Alive":
			continue
		}
		dst[k] = vs
	}
}

// routerError writes the daemon's JSON error envelope shape from the
// router itself.
func routerError(w http.ResponseWriter, status int, kind, msg string) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"error\":{\"kind\":%s,\"message\":%s}}\n", mustJSON(kind), mustJSON(msg))
}

// mustJSON marshals a string; cannot fail.
func mustJSON(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
