package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringVnodes is how many virtual nodes each shard contributes to the
// consistent-hash ring. 64 points per shard keeps the load split within a
// few percent of even for the single-digit shard counts a daemon runs.
const ringVnodes = 64

// hashRing maps a document digest to a preferred shard with the classic
// consistent-hashing construction: every shard owns vnodes points on a
// uint64 circle, and a key belongs to the first point at or after its hash.
// Shard *slots* (not processes) own the points, so a restarted worker
// inherits its predecessor's documents and the content-addressed index
// cache keeps hitting across restarts — the whole reason affinity exists.
type hashRing struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

func newHashRing(shards, vnodes int) *hashRing {
	r := &hashRing{points: make([]ringPoint, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("shard-%d-vnode-%d", s, v)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// ringHash is 64-bit FNV-1a through a murmur-style finalizer. FNV alone is
// stable and cheap but avalanches poorly on the near-identical vnode label
// strings — unmixed, one shard ends up owning over half the ring. The
// finalizer fixes the distribution while keeping the hash seedless and
// stable across processes and runs, which the affinity contract requires.
func ringHash(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// lookup walks the ring from key's position and returns the first shard
// accepted by ok (healthy, not already tried), visiting each shard at most
// once; -1 when no shard qualifies.
func (r *hashRing) lookup(key uint64, ok func(shard int) bool) int {
	n := len(r.points)
	if n == 0 {
		return -1
	}
	start := sort.Search(n, func(i int) bool { return r.points[i].hash >= key })
	seen := make(map[int]bool, 8)
	for i := 0; i < n; i++ {
		p := r.points[(start+i)%n]
		if seen[p.shard] {
			continue
		}
		seen[p.shard] = true
		if ok(p.shard) {
			return p.shard
		}
	}
	return -1
}
