package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	"rsonpath/internal/server"
)

// The cluster needs real killable worker processes, so the test binary
// re-execs itself: TestMain checks CLUSTER_TEST_MODE and becomes a worker
// (or a deliberately crashing one) instead of running the tests.
func TestMain(m *testing.M) {
	switch os.Getenv("CLUSTER_TEST_MODE") {
	case "":
		os.Exit(m.Run())
	case "worker":
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
		defer stop()
		err := RunWorker(ctx, server.Config{
			Timeout: 10 * time.Second,
			Shard:   os.Getenv("CLUSTER_TEST_SHARD"),
			Version: "cluster-test",
		}, os.Getenv("CLUSTER_TEST_SOCKET"), 5*time.Second)
		if err != nil {
			fmt.Fprintln(os.Stderr, "test worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	case "crash":
		// A worker that dies on boot: the crash-loop pathology.
		os.Exit(3)
	default:
		fmt.Fprintln(os.Stderr, "unknown CLUSTER_TEST_MODE")
		os.Exit(2)
	}
}

// testWorkerCommand re-execs this test binary in the given mode.
func testWorkerCommand(mode string) func(int, string) *exec.Cmd {
	exe, err := os.Executable()
	if err != nil {
		panic(err)
	}
	return func(shard int, socket string) *exec.Cmd {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			"CLUSTER_TEST_MODE="+mode,
			"CLUSTER_TEST_SOCKET="+socket,
			fmt.Sprintf("CLUSTER_TEST_SHARD=%d", shard))
		return cmd
	}
}

// startTestCluster boots a cluster of real worker processes and registers
// cleanup. Returns the cluster and its base URL.
func startTestCluster(t *testing.T, cfg Config) (*Cluster, string) {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	cl, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := cl.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cl.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		cl.Shutdown(ctx)
		<-done
	})
	return cl, "http://" + cl.Addr().String()
}

// waitRoutableShards blocks until n shards are routable or the deadline
// passes.
func waitRoutableShards(t *testing.T, cl *Cluster, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for cl.RoutableShards() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d shards routable after %s: %+v", cl.RoutableShards(), n, timeout, cl.ShardStates())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func postQuery(base string) (*http.Response, error) {
	body := `{"query": "$..b", "mode": "count", "document": {"a": {"b": 1}, "b": 2}}`
	return http.Post(base+"/v1/query", "application/json", strings.NewReader(body))
}

// TestClusterServesAndFailsOver boots two worker processes, serves a query
// through the router, SIGKILLs a worker, and expects requests to keep
// succeeding throughout while the supervisor restarts the victim.
func TestClusterServesAndFailsOver(t *testing.T) {
	cl, base := startTestCluster(t, Config{
		Shards:        2,
		WorkerCommand: testWorkerCommand("worker"),
	})
	waitRoutableShards(t, cl, 2, 10*time.Second)

	check := func(stage string) {
		resp, err := postQuery(base)
		if err != nil {
			t.Fatalf("%s: query: %v", stage, err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(out), `"count":2`) {
			t.Fatalf("%s: status %d body %s", stage, resp.StatusCode, out)
		}
	}
	check("before kill")

	victim := cl.ShardStates()[0]
	if victim.PID <= 0 {
		t.Fatalf("shard 0 has no pid: %+v", victim)
	}
	if err := syscall.Kill(victim.PID, syscall.SIGKILL); err != nil {
		t.Fatalf("kill: %v", err)
	}
	// Immediately after the kill the router must still answer — the health
	// probe may not have noticed yet, so this exercises dead-worker failover,
	// not just healthy routing.
	for i := 0; i < 5; i++ {
		check("right after kill")
	}

	// The supervisor restarts the shard and the probe puts it back.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := cl.ShardStates()[0]
		if st.Routable && st.Restarts >= 1 && st.PID != victim.PID {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard 0 never restarted: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	check("after restart")
	if got := cl.met.crashes.Load(); got < 1 {
		t.Errorf("crashes counter = %d, want >= 1", got)
	}
}

// TestClusterCrashLoopQuarantine runs a worker that dies on boot and expects
// the supervisor to stop restarting it after the threshold; SIGHUP lifts the
// quarantine for another round.
func TestClusterCrashLoopQuarantine(t *testing.T) {
	cl, base := startTestCluster(t, Config{
		Shards:             1,
		WorkerCommand:      testWorkerCommand("crash"),
		RestartBackoff:     2 * time.Millisecond,
		MaxRestartBackoff:  10 * time.Millisecond,
		CrashLoopThreshold: 3,
		RouteWait:          50 * time.Millisecond,
	})

	waitState := func(stage string) {
		deadline := time.Now().Add(10 * time.Second)
		for cl.ShardStates()[0].State != stateQuarantined {
			if time.Now().After(deadline) {
				t.Fatalf("%s: shard never quarantined: %+v", stage, cl.ShardStates())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitState("first round")
	if got := cl.met.quarantines.Load(); got != 1 {
		t.Fatalf("quarantines = %d, want 1", got)
	}
	crashesAtQuarantine := cl.met.crashes.Load()

	// Quarantined and nothing else: requests get a clean 503, not a hang.
	resp, err := postQuery(base)
	if err != nil {
		t.Fatalf("query against quarantined cluster: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 with every shard quarantined", resp.StatusCode)
	}

	// No restarts accrue while quarantined.
	time.Sleep(100 * time.Millisecond)
	if got := cl.met.crashes.Load(); got != crashesAtQuarantine {
		t.Fatalf("crashes kept accruing in quarantine: %d -> %d", crashesAtQuarantine, got)
	}

	// SIGHUP revives; the worker still crash-loops, so it lands back in
	// quarantine after another threshold's worth of attempts.
	cl.SignalWorkers(syscall.SIGHUP)
	deadline := time.Now().Add(10 * time.Second)
	for cl.met.quarantines.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("revived shard never re-quarantined: %+v", cl.ShardStates())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterUptimeResetsBackoff kills a healthy long-lived worker several
// times in a row and expects every restart to be prompt: an uptime past
// CrashLoopWindow must reset both the backoff and the loop counter, or a
// chaos-style kill sequence would walk the shard into quarantine.
func TestClusterUptimeResetsBackoff(t *testing.T) {
	cl, _ := startTestCluster(t, Config{
		Shards:             1,
		WorkerCommand:      testWorkerCommand("worker"),
		RestartBackoff:     20 * time.Millisecond,
		CrashLoopWindow:    50 * time.Millisecond,
		CrashLoopThreshold: 2,
	})
	waitRoutableShards(t, cl, 1, 10*time.Second)

	for round := 0; round < 4; round++ {
		st := cl.ShardStates()[0]
		// Past the crash-loop window, so this kill reads as a fresh crash.
		time.Sleep(60 * time.Millisecond)
		syscall.Kill(st.PID, syscall.SIGKILL)
		deadline := time.Now().Add(5 * time.Second)
		for {
			now := cl.ShardStates()[0]
			if now.Routable && now.PID != st.PID {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("round %d: shard never came back: %+v", round, now)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if got := cl.met.quarantines.Load(); got != 0 {
		t.Fatalf("quarantines = %d after spaced kills, want 0", got)
	}
}

// TestClusterShutdownLeavesNoWorkers drains the cluster and verifies every
// worker process is gone afterwards.
func TestClusterShutdownLeavesNoWorkers(t *testing.T) {
	cl, err := New(Config{
		Shards:        2,
		Addr:          "127.0.0.1:0",
		WorkerCommand: testWorkerCommand("worker"),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := cl.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cl.Serve() }()

	waitRoutableShards(t, cl, 2, 10*time.Second)
	var pids []int
	for _, st := range cl.ShardStates() {
		pids = append(pids, st.PID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := cl.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	for _, pid := range pids {
		// Signal 0 probes existence. The worker was our child and Shutdown
		// reaped it via Wait, so ESRCH is the expected outcome.
		if err := syscall.Kill(pid, 0); err == nil {
			t.Errorf("worker pid %d still alive after Shutdown", pid)
		}
	}
	if dir := cl.cfg.SocketDir; dir != "" {
		if _, err := os.Stat(dir); !os.IsNotExist(err) {
			t.Errorf("owned socket dir %s survived Shutdown (err=%v)", dir, err)
		}
	}
}

// TestRingAffinityStableAndBalanced covers the consistent-hash ring: stable
// assignment, every shard reachable, and a working fallback walk when the
// preferred shard is excluded.
func TestRingAffinityStableAndBalanced(t *testing.T) {
	r := newHashRing(4, ringVnodes)
	counts := make(map[int]int)
	all := func(int) bool { return true }
	for i := 0; i < 4096; i++ {
		key := ringHash(fmt.Sprintf("doc-%d", i))
		a := r.lookup(key, all)
		if a != r.lookup(key, all) {
			t.Fatalf("lookup not deterministic for key %d", key)
		}
		counts[a]++
	}
	for s := 0; s < 4; s++ {
		if counts[s] == 0 {
			t.Fatalf("shard %d never chosen: %v", s, counts)
		}
		if counts[s] > 4096/2 {
			t.Fatalf("shard %d owns %d/4096 keys; ring badly unbalanced: %v", s, counts[s], counts)
		}
	}

	key := ringHash("some-document")
	pref := r.lookup(key, all)
	next := r.lookup(key, func(s int) bool { return s != pref })
	if next == pref || next < 0 {
		t.Fatalf("fallback lookup returned %d (preferred %d)", next, pref)
	}
	if got := r.lookup(key, func(int) bool { return false }); got != -1 {
		t.Fatalf("lookup with no acceptable shard = %d, want -1", got)
	}
}

// TestRouterPick covers the balancing policy without any processes: affinity
// wins within the slack, least-inflight wins past it, tried and unroutable
// shards are skipped.
func TestRouterPick(t *testing.T) {
	c := &Cluster{cfg: Config{AffinitySlack: 2}.withDefaults()}
	for i := 0; i < 3; i++ {
		c.shards = append(c.shards, newShard(c, i, ""))
		c.shards[i].routable.Store(true)
	}
	c.cfg.AffinitySlack = 2
	c.ring = newHashRing(3, ringVnodes)

	key := ringHash("the-document")
	aff := c.ring.lookup(key, func(int) bool { return true })

	if got := c.pick(key, map[int]bool{}); got == nil || got.id != aff {
		t.Fatalf("pick with idle shards = %v, want affinity shard %d", got, aff)
	}

	// Affinity shard loaded past the slack: least-inflight wins.
	c.shards[aff].inflight.Store(10)
	got := c.pick(key, map[int]bool{})
	if got == nil || got.id == aff {
		t.Fatalf("pick chose overloaded affinity shard %d", aff)
	}
	c.shards[aff].inflight.Store(0)

	// Affinity shard already tried: a different shard is picked.
	if got := c.pick(key, map[int]bool{aff: true}); got == nil || got.id == aff {
		t.Fatalf("pick returned tried shard %d", aff)
	}

	// Nothing routable: nil.
	for _, sh := range c.shards {
		sh.routable.Store(false)
	}
	if got := c.pick(key, map[int]bool{}); got != nil {
		t.Fatalf("pick with no routable shards = %v, want nil", got)
	}
}

// TestClusterHealthzAndMetrics checks the router's own endpoints.
func TestClusterHealthzAndMetrics(t *testing.T) {
	cl, base := startTestCluster(t, Config{
		Shards:        2,
		WorkerCommand: testWorkerCommand("worker"),
		Version:       "cluster-test",
	})
	waitRoutableShards(t, cl, 2, 10*time.Second)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(out), `"status":"ok"`) {
		t.Fatalf("healthz status %d body %s", resp.StatusCode, out)
	}

	if _, err := postQuery(base); err != nil {
		t.Fatalf("query: %v", err)
	}
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	out, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"rsonpathd_cluster_proxied_total",
		"rsonpathd_cluster_restarts_total",
		"rsonpathd_cluster_goroutines",
		"rsonpathd_cluster_open_fds",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("metrics output missing %s", want)
		}
	}

	resp, err = http.Get(base + "/version")
	if err != nil {
		t.Fatalf("version: %v", err)
	}
	out, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(out), `"cluster-test"`) || !strings.Contains(string(out), `"cluster"`) {
		t.Fatalf("version body %s", out)
	}
}
