// Package cluster is rsonpathd's crash-isolated multi-process serving layer
// (DESIGN.md §15). A parent process supervises N shared-nothing worker
// processes — each a full daemon with its own query cache, document cache
// and admission gate, listening on a per-worker unix domain socket — and
// fronts them with a thin router that health-gates membership, balances by
// least-inflight with consistent-hash affinity on the document digest, and
// fails requests over when a worker dies mid-flight.
//
// The design goal is blast-radius control: a worker panic, OOM kill, or
// runaway request costs that shard's in-flight requests (which the router
// re-dispatches or cleanly truncates), never the service. The supervisor
// restarts crashed workers under exponential backoff, quarantines
// persistent crash-loopers so one poisoned shard cannot consume the parent,
// and drains workers one at a time on shutdown — never two down at once.
//
// Workers are real OS processes started by re-exec'ing the serving binary
// (Config.WorkerCommand); unix sockets were chosen over SO_REUSEPORT
// because kernel-side balancing cannot health-gate a dying worker out of
// rotation and defeats document affinity entirely.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"
)

// Config describes one cluster. WorkerCommand and Shards are required; the
// zero value of everything else selects the documented default.
type Config struct {
	// Shards is the number of worker processes.
	Shards int
	// Addr is the router's public listen address, e.g. ":8077".
	Addr string
	// SocketDir holds the per-worker unix sockets. Empty creates (and owns,
	// and removes on Close) a fresh temp directory.
	SocketDir string
	// WorkerCommand builds the (not yet started) command for one worker:
	// typically a re-exec of the serving binary with a -worker-socket flag.
	// The cluster sets process-group/parent-death attributes and wires
	// stdout/stderr; the command must serve HTTP on "unix:"+socket and exit
	// on SIGTERM.
	WorkerCommand func(shard int, socket string) *exec.Cmd

	// RestartBackoff is the delay before the first restart of a crashed
	// worker, doubling per consecutive crash-loop crash up to
	// MaxRestartBackoff. A crash after an uptime of at least CrashLoopWindow
	// is treated as fresh: backoff returns to RestartBackoff. Defaults:
	// 100ms, 5s, 1s.
	RestartBackoff    time.Duration
	MaxRestartBackoff time.Duration
	CrashLoopWindow   time.Duration
	// CrashLoopThreshold quarantines a worker after this many consecutive
	// crashes with uptime under CrashLoopWindow: the supervisor stops
	// restarting it and the service degrades to the surviving shards.
	// SIGHUP (Revive) lifts the quarantine. Default 5.
	CrashLoopThreshold int

	// HealthInterval and HealthTimeout drive the per-worker /healthz probe
	// that gates router membership. Defaults: 100ms, 500ms.
	HealthInterval time.Duration
	HealthTimeout  time.Duration

	// DrainTimeout bounds one worker's graceful SIGTERM drain during
	// shutdown before it is SIGKILLed. Default 10s.
	DrainTimeout time.Duration

	// MaxBodyBytes caps the request body the router will buffer for
	// re-dispatch; it should match the workers' own cap. <= 0 selects
	// server.DefaultMaxBodyBytes (64 MiB).
	MaxBodyBytes int64
	// RouteWait bounds how long an arrival waits for any routable worker
	// (all shards down or restarting) before 503. Default 2s.
	RouteWait time.Duration
	// AffinitySlack is how many in-flight requests beyond the least-loaded
	// worker the affinity worker may carry and still win the pick. Default 4.
	AffinitySlack int64

	// Version is reported by the router's /version.
	Version string
	// Log receives one-line supervision events (starts, crashes,
	// quarantines); nil discards them.
	Log io.Writer
}

// withDefaults fills unset fields.
func (cfg Config) withDefaults() Config {
	if cfg.RestartBackoff <= 0 {
		cfg.RestartBackoff = 100 * time.Millisecond
	}
	if cfg.MaxRestartBackoff <= 0 {
		cfg.MaxRestartBackoff = 5 * time.Second
	}
	if cfg.CrashLoopWindow <= 0 {
		cfg.CrashLoopWindow = time.Second
	}
	if cfg.CrashLoopThreshold <= 0 {
		cfg.CrashLoopThreshold = 5
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 100 * time.Millisecond
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = 500 * time.Millisecond
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.RouteWait <= 0 {
		cfg.RouteWait = 2 * time.Second
	}
	if cfg.AffinitySlack <= 0 {
		cfg.AffinitySlack = 4
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	return cfg
}

// Cluster is one supervised shard set plus its front router. Create with
// New, bring up with Start, serve with Serve, stop with Shutdown.
type Cluster struct {
	cfg     Config
	shards  []*shard
	ring    *hashRing
	met     clusterMetrics
	http    *http.Server
	lis     net.Listener
	ownDir  bool          // SocketDir was created by us; remove on Close
	stopCh  chan struct{} // closed once, stops supervisors and probers
	stopped sync.Once
	wg      sync.WaitGroup // supervisor + prober goroutines
}

// New validates cfg and builds the cluster; no processes start until Start.
func New(cfg Config) (*Cluster, error) {
	if cfg.Shards <= 0 {
		return nil, errors.New("cluster: Shards must be positive")
	}
	if cfg.WorkerCommand == nil {
		return nil, errors.New("cluster: WorkerCommand required")
	}
	cfg = cfg.withDefaults()
	c := &Cluster{cfg: cfg, stopCh: make(chan struct{})}
	if cfg.SocketDir == "" {
		dir, err := os.MkdirTemp("", "rsonpathd-cluster-*")
		if err != nil {
			return nil, fmt.Errorf("cluster: socket dir: %w", err)
		}
		c.cfg.SocketDir = dir
		c.ownDir = true
	}
	for i := 0; i < cfg.Shards; i++ {
		c.shards = append(c.shards, newShard(c, i, filepath.Join(c.cfg.SocketDir, fmt.Sprintf("worker-%d.sock", i))))
	}
	c.ring = newHashRing(cfg.Shards, ringVnodes)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", c.handleProxy)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /version", c.handleVersion)
	c.http = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	return c, nil
}

// Start spawns the worker processes (each under its supervisor), starts the
// health probers, and opens the router's public listener.
func (c *Cluster) Start() error {
	lis, err := net.Listen("tcp", c.cfg.Addr)
	if err != nil {
		return err
	}
	c.lis = lis
	for _, sh := range c.shards {
		c.wg.Add(2)
		go c.supervise(sh)
		go c.probe(sh)
	}
	return nil
}

// Addr returns the router's bound public address; nil before Start.
func (c *Cluster) Addr() net.Addr {
	if c.lis == nil {
		return nil
	}
	return c.lis.Addr()
}

// Serve accepts router connections until Shutdown. Returns nil on graceful
// shutdown.
func (c *Cluster) Serve() error {
	if c.lis == nil {
		return errors.New("cluster: Serve before Start")
	}
	err := c.http.Serve(c.lis)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown stops the cluster: the router drains client connections under
// ctx, then the workers are drained one at a time — SIGTERM, wait up to
// DrainTimeout, SIGKILL stragglers — so at no point are two workers down at
// once. The socket directory is removed if the cluster created it.
func (c *Cluster) Shutdown(ctx context.Context) error {
	// Stop supervisors first so worker exits below are treated as planned,
	// not as crashes to restart.
	c.stopped.Do(func() { close(c.stopCh) })
	err := c.http.Shutdown(ctx)
	if err != nil {
		c.http.Close()
	}
	for _, sh := range c.shards {
		sh.drain(c.cfg.DrainTimeout)
	}
	c.wg.Wait()
	if c.ownDir {
		os.RemoveAll(c.cfg.SocketDir)
	}
	return err
}

// SignalWorkers forwards sig to every running worker (SIGHUP fan-out) and
// revives quarantined shards: the operator flushing state is also declaring
// a crash-looped shard worth another try.
func (c *Cluster) SignalWorkers(sig os.Signal) {
	for _, sh := range c.shards {
		sh.signal(sig)
		sh.revive()
	}
}

// ShardState is one worker's externally visible state.
type ShardState struct {
	ID       int    `json:"id"`
	PID      int    `json:"pid"` // 0 when not running
	State    string `json:"state"`
	Routable bool   `json:"routable"`
	Inflight int64  `json:"inflight"`
	Restarts int64  `json:"restarts"`
}

// ShardStates snapshots every shard, for /healthz, the chaos harness (which
// needs PIDs to SIGKILL), and the tests.
func (c *Cluster) ShardStates() []ShardState {
	out := make([]ShardState, 0, len(c.shards))
	for _, sh := range c.shards {
		out = append(out, sh.snapshot())
	}
	return out
}

// RoutableShards counts shards currently in the router's rotation.
func (c *Cluster) RoutableShards() int {
	n := 0
	for _, sh := range c.shards {
		if sh.routable.Load() {
			n++
		}
	}
	return n
}

func (c *Cluster) logf(format string, args ...any) {
	fmt.Fprintf(c.cfg.Log, "rsonpathd-cluster: "+format+"\n", args...)
}
