//go:build linux

package cluster

import (
	"os"
	"os/exec"
	"syscall"
)

// decorate sets the platform process attributes on a worker command: on
// Linux, PDEATHSIG ensures a worker is killed by the kernel if the parent
// dies without running its drain — no orphaned listeners squatting on the
// socket dir. Stdout/stderr inherit the parent's unless the caller wired
// its own.
func decorate(cmd *exec.Cmd) {
	if cmd.SysProcAttr == nil {
		cmd.SysProcAttr = &syscall.SysProcAttr{}
	}
	cmd.SysProcAttr.Pdeathsig = syscall.SIGKILL
	if cmd.Stdout == nil {
		cmd.Stdout = os.Stdout
	}
	if cmd.Stderr == nil {
		cmd.Stderr = os.Stderr
	}
}
