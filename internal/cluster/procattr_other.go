//go:build !linux

package cluster

import (
	"os"
	"os/exec"
)

// decorate wires worker stdio on platforms without parent-death signals;
// orphan cleanup then relies on the rolling drain alone.
func decorate(cmd *exec.Cmd) {
	if cmd.Stdout == nil {
		cmd.Stdout = os.Stdout
	}
	if cmd.Stderr == nil {
		cmd.Stderr = os.Stderr
	}
}
