package simd

import (
	"math/rand"
	"testing"
	"unsafe"
)

// withBackend runs f with the named backend forced, restoring the previous
// one afterwards. Skips when the backend is unavailable on this host.
func withBackend(t *testing.T, name string, f func(t *testing.T)) {
	t.Helper()
	prev := Backend()
	if err := SetBackend(name); err != nil {
		t.Skipf("backend %s: %v", name, err)
	}
	defer func() {
		if err := SetBackend(prev); err != nil {
			t.Fatalf("restoring backend %s: %v", prev, err)
		}
	}()
	f(t)
}

func TestBackendsAlwaysIncludeSWAR(t *testing.T) {
	names := Backends()
	if len(names) == 0 || names[0] != "swar" {
		t.Fatalf("Backends() = %v, want swar first as the universal fallback", names)
	}
	if Backend() == "" {
		t.Fatal("no active backend")
	}
}

func TestSetBackendRoundTrip(t *testing.T) {
	prev := Backend()
	defer func() { _ = SetBackend(prev) }()
	for _, name := range Backends() {
		if err := SetBackend(name); err != nil {
			t.Fatalf("SetBackend(%q): %v", name, err)
		}
		if got := Backend(); got != name {
			t.Fatalf("after SetBackend(%q), Backend() = %q", name, got)
		}
	}
	if err := SetBackend("avx512-unobtainium"); err == nil {
		t.Fatal("SetBackend accepted an unknown backend")
	}
	if got := Backend(); got != Backends()[len(Backends())-1] {
		t.Fatalf("failed SetBackend changed the active backend to %q", got)
	}
}

func TestAlignedWords(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 100, 1023} {
		s := AlignedWords(RoundWords(n))
		if n == 0 {
			if s != nil {
				t.Fatalf("AlignedWords(0) = %v, want nil", s)
			}
			continue
		}
		if got, want := len(s), RoundWords(n); got != want {
			t.Fatalf("n=%d: len = %d, want lane-rounded %d", n, got, want)
		}
		if len(s)%VecWords != 0 {
			t.Fatalf("n=%d: length %d not a whole number of lanes", n, len(s))
		}
		if p := uintptr(unsafe.Pointer(&s[0])); p%VecAlign != 0 {
			t.Fatalf("n=%d: base address %#x not %d-byte aligned", n, p, VecAlign)
		}
		for i, w := range s {
			if w != 0 {
				t.Fatalf("n=%d: word %d not zeroed: %#x", n, i, w)
			}
		}
	}
}

func TestRoundWords(t *testing.T) {
	for n, want := range map[int]int{0: 0, 1: 4, 3: 4, 4: 4, 5: 8, 8: 8, 9: 12} {
		if got := RoundWords(n); got != want {
			t.Fatalf("RoundWords(%d) = %d, want %d", n, got, want)
		}
	}
}

// randWords returns deterministic pseudo-random mask words.
func randWords(n int, seed int64) []uint64 {
	r := rand.New(rand.NewSource(seed))
	s := make([]uint64, n)
	for i := range s {
		s[i] = r.Uint64()
	}
	return s
}

func TestAndNotAllBackends(t *testing.T) {
	for _, name := range Backends() {
		withBackend(t, name, func(t *testing.T) {
			for _, n := range []int{0, 1, 3, 4, 5, 8, 31, 64, 257} {
				dst := randWords(n, int64(n))
				m := randWords(n, int64(n)+1)
				want := make([]uint64, n)
				for i := range want {
					want[i] = dst[i] &^ m[i]
				}
				AndNot(dst, m)
				for i := range want {
					if dst[i] != want[i] {
						t.Fatalf("%s n=%d: word %d = %#x, want %#x", name, n, i, dst[i], want[i])
					}
				}
			}
		})
	}
}

func TestPopcountWordsAllBackends(t *testing.T) {
	for _, name := range Backends() {
		withBackend(t, name, func(t *testing.T) {
			for _, n := range []int{0, 1, 3, 4, 5, 8, 31, 64, 257} {
				p := randWords(n, int64(n)*7)
				want := 0
				for _, w := range p {
					want += Popcount(w)
				}
				if got := PopcountWords(p); got != want {
					t.Fatalf("%s n=%d: PopcountWords = %d, want %d", name, n, got, want)
				}
				// All-ones and all-zeros corners.
				for i := range p {
					p[i] = ^uint64(0)
				}
				if got := PopcountWords(p); got != 64*n {
					t.Fatalf("%s n=%d: all-ones PopcountWords = %d, want %d", name, n, got, 64*n)
				}
			}
		})
	}
}

// checkBackendMasks asserts the active backend's RawMasks and BatchRawMasks
// are bit-identical to the SWAR reference over data, including the padded
// partial tail.
func checkBackendMasks(t *testing.T, data []byte) {
	t.Helper()
	n := len(data) / BlockSize
	got := make([][]uint64, 6)
	want := make([][]uint64, 6)
	for i := range got {
		got[i] = make([]uint64, n)
		want[i] = make([]uint64, n)
	}
	if full := BatchRawMasks(data, got[0], got[1], got[2], got[3], got[4], got[5]); full != n {
		t.Fatalf("BatchRawMasks processed %d blocks, want %d", full, n)
	}
	if full := batchRawMasksSWAR(data, want[0], want[1], want[2], want[3], want[4], want[5]); full != n {
		t.Fatalf("reference sweep processed %d blocks, want %d", full, n)
	}
	for p := range got {
		for i := range got[p] {
			if got[p][i] != want[p][i] {
				t.Fatalf("%s: plane %d block %d: %#x, want %#x (swar)",
					Backend(), p, i, got[p][i], want[p][i])
			}
		}
	}
	// The per-block kernel over every block, plus the padded tail.
	for off := 0; off < len(data) || off == 0; off += BlockSize {
		var b Block
		LoadBlock(&b, data[off:], ' ')
		var g, w [6]uint64
		g[0], g[1], g[2], g[3], g[4], g[5] = RawMasks(&b)
		w[0], w[1], w[2], w[3], w[4], w[5] = rawMasksSWAR(&b)
		if g != w {
			t.Fatalf("%s: RawMasks@%d = %x, want %x (swar)", Backend(), off, g, w)
		}
		if len(data) == 0 {
			break
		}
	}
}

func TestBackendMaskEquivalence(t *testing.T) {
	for _, name := range Backends() {
		withBackend(t, name, func(t *testing.T) {
			for _, data := range batchTestInputs() {
				checkBackendMasks(t, data)
			}
			// Every byte value at every lane position within a block.
			all := make([]byte, 256*BlockSize)
			for i := range all {
				all[i] = byte((i + i/BlockSize) % 256)
			}
			checkBackendMasks(t, all)
		})
	}
}

// FuzzBackendEquivalence pins every compiled-in backend to the SWAR
// reference bit-for-bit on arbitrary bytes — the correctness anchor for the
// hand-written assembly, including block-boundary and partial-tail inputs.
func FuzzBackendEquivalence(f *testing.F) {
	for _, data := range batchTestInputs() {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, name := range Backends() {
			withBackend(t, name, func(t *testing.T) {
				checkBackendMasks(t, data)
			})
		}
	})
}
