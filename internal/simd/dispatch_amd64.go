package simd

import "math/bits"

// AVX2 backend: the six-mask kernels from avx2_amd64.s behind Go wrappers
// that own every bounds check (the assembly dereferences raw pointers and
// trusts the lengths handed to it — see the asm invariants in DESIGN.md
// §16). Registered by registerArch when CPUID says the CPU and OS support
// AVX2; SWAR remains selectable via RSONPATH_SIMD=swar.

// cpuAVX2 is the one-time CPUID verdict, exposed for tests and CI gating.
var cpuAVX2 = detectAVX2()

// registerArch appends the AVX2 backend on capable hosts, making it the
// default (backends are in preference order; the last entry wins init).
func registerArch() {
	if cpuAVX2 {
		backends = append(backends, avx2Backend)
	}
}

var avx2Backend = backend{
	name:          "avx2",
	rawMasks:      rawMasksAVX2Call,
	batchRawMasks: batchRawMasksAVX2Call,
	andNot:        andNotAVX2Call,
	popcountWords: popcountWordsAVX2Call,
}

// rawMasksAVX2 classifies one 64-byte block as two YMM loads with six
// VPCMPEQB+VPMOVMSKB pairs sharing them, writing the masks to out in the
// plane order backslash, quote, opens, closes, commas, colons.
//
//go:noescape
func rawMasksAVX2(b *Block, out *[6]uint64)

// batchRawMasksAVX2 is the unrolled multi-block sweep: n full blocks from
// data, one mask word stored per block per plane. Every destination must
// have n writable words; the wrappers enforce that.
//
//go:noescape
func batchRawMasksAVX2(data *byte, n int, backslash, quote, opens, closes, commas, colons *uint64)

// andNotAVX2 computes dst[i] &^= m[i] over lanes*VecWords words.
//
//go:noescape
func andNotAVX2(dst, m *uint64, lanes int)

// popcountAVX2 sums the set bits of lanes*VecWords words of p (Mula's
// VPSHUFB nibble-LUT + VPSADBW algorithm).
//
//go:noescape
func popcountAVX2(p *uint64, lanes int) int64

func rawMasksAVX2Call(b *Block) (backslash, quote, opens, closes, commas, colons uint64) {
	var out [6]uint64
	rawMasksAVX2(b, &out)
	return out[0], out[1], out[2], out[3], out[4], out[5]
}

func batchRawMasksAVX2Call(data []byte, backslash, quote, opens, closes, commas, colons []uint64) int {
	n := len(data) / BlockSize
	if n == 0 {
		return 0
	}
	// One reslice per plane turns the assembly's implicit length contract
	// into a bounds check here, before any raw pointer is formed.
	backslash = backslash[:n]
	quote = quote[:n]
	opens = opens[:n]
	closes = closes[:n]
	commas = commas[:n]
	colons = colons[:n]
	batchRawMasksAVX2(&data[0], n,
		&backslash[0], &quote[0], &opens[0], &closes[0], &commas[0], &colons[0])
	return n
}

func andNotAVX2Call(dst, m []uint64) {
	n := len(dst)
	m = m[:n]
	lanes := n / VecWords
	if lanes > 0 {
		andNotAVX2(&dst[0], &m[0], lanes)
	}
	for i := lanes * VecWords; i < n; i++ {
		dst[i] &^= m[i]
	}
}

func popcountWordsAVX2Call(p []uint64) int {
	n := len(p)
	lanes := n / VecWords
	total := 0
	if lanes > 0 {
		total = int(popcountAVX2(&p[0], lanes))
	}
	for i := lanes * VecWords; i < n; i++ {
		total += bits.OnesCount64(p[i])
	}
	return total
}
