// Package simd provides the word-parallel (SWAR — "SIMD Within A Register")
// primitives that substitute for the x86 vector instructions used by the
// paper "Supporting Descendants in SIMD-Accelerated JSONPath" (ASPLOS 2023).
//
// The unit of work is a 64-byte Block, mirroring an AVX-512 register (or a
// pair of AVX2 registers) in the original. Every classifier in
// internal/classifier consumes Blocks and produces 64-bit bitmasks, exactly
// like the movemask outputs the paper's pipeline operates on. Bit i of a
// mask corresponds to byte i of the block; bit 0 is the first byte
// (little-endian bit order, matching x86 movemask semantics).
//
// The mapping from the paper's instruction vocabulary:
//
//	cmpeq_epi8 + movemask  ->  CmpEq8 (XOR + has-zero trick + multiply gather)
//	shuffle_epi8 lookups   ->  NibbleEq / NibbleOr (byte-wise shuffle semantics)
//	clmul prefix-xor       ->  PrefixXor (shift-XOR cascade)
//	popcnt / tzcnt         ->  math/bits
package simd

import (
	"encoding/binary"
	"math/bits"
)

// BlockSize is the number of bytes classified at a time. Each classified
// block yields one 64-bit mask.
const BlockSize = 64

// Block is one unit of classification input. Inputs shorter than a full
// block are padded; see LoadBlock.
type Block = [BlockSize]byte

// Word-parallel constants for the has-zero-byte trick.
const (
	lowBytes  = 0x0101010101010101 // 0x01 in every byte
	highBits  = 0x8080808080808080 // 0x80 in every byte
	gatherMul = 0x0102040810204080 // gathers per-byte LSBs into the top byte
)

// LoadBlock copies up to BlockSize bytes of src into dst and pads the
// remainder with pad. It returns the number of real bytes loaded. Padding
// with a non-structural, non-quote byte (conventionally ' ') keeps padded
// tails invisible to every classifier.
func LoadBlock(dst *Block, src []byte, pad byte) int {
	n := copy(dst[:], src)
	for i := n; i < BlockSize; i++ {
		dst[i] = pad
	}
	return n
}

// word loads 8 little-endian bytes as a uint64; on little-endian targets
// this compiles to a single load.
func word(b *Block, i int) uint64 {
	return binary.LittleEndian.Uint64(b[i : i+8])
}

// movemaskZero returns a bitmask of the bytes of w that are zero: bit j is
// set iff byte j of w is 0x00. This is the movemask(cmpeq(x, 0)) idiom.
func movemaskZero(w uint64) uint64 {
	// Exact has-zero-byte trick. Setting every high bit before the per-byte
	// subtraction confines borrows within bytes, so unlike the classic
	// (w-lo)&^w&hi form this has no false positives next to zero bytes: the
	// high bit of a byte of t|w is clear iff that byte of w is 0x00.
	t := (w | highBits) - lowBytes
	m := ^(t | w) & highBits
	// Gather the eight 0x80 flags into a contiguous byte. The multiplier
	// places each flag at a distinct bit of the top byte with no carries.
	return ((m >> 7) * gatherMul) >> 56
}

// CmpEq8 returns the bitmask of positions in b whose byte equals c. It is
// the SWAR equivalent of movemask(cmpeq_epi8(b, broadcast(c))).
func CmpEq8(b *Block, c byte) uint64 {
	bc := uint64(c) * lowBytes
	var mask uint64
	for i := 0; i < BlockSize; i += 8 {
		mask |= movemaskZero(word(b, i)^bc) << uint(i)
	}
	return mask
}

// CmpEq8Pair returns CmpEq8 masks for two target bytes in one pass. The
// depth classifier uses this to mark opening and closing characters
// simultaneously (paper §4.4: "two cmpeq instructions").
func CmpEq8Pair(b *Block, c1, c2 byte) (m1, m2 uint64) {
	bc1 := uint64(c1) * lowBytes
	bc2 := uint64(c2) * lowBytes
	for i := 0; i < BlockSize; i += 8 {
		w := word(b, i)
		m1 |= movemaskZero(w^bc1) << uint(i)
		m2 |= movemaskZero(w^bc2) << uint(i)
	}
	return m1, m2
}

// BracketMasks returns the bitmasks of all opening brackets ('{' and '[')
// and all closing brackets ('}' and ']') in one pass: the two characters of
// each kind differ only in bit 5 (0x7B/0x5B and 0x7D/0x5D), so OR-ing 0x20
// into every byte folds them onto a single comparison target, with no other
// byte mapping there.
func BracketMasks(b *Block) (opens, closes uint64) {
	const bit5 = 0x2020202020202020
	openT := uint64('{') * lowBytes
	closeT := uint64('}') * lowBytes
	for i := 0; i < BlockSize; i += 8 {
		w := word(b, i) | bit5
		opens |= movemaskZero(w^openT) << uint(i)
		closes |= movemaskZero(w^closeT) << uint(i)
	}
	return opens, closes
}

// NibbleTable is a 16-entry lookup table, the operand of the paper's
// shuffle_epi8-based classification (§4.1).
type NibbleTable [16]byte

// NibbleEq classifies b with the non-overlapping-groups method of §4.1:
// bit i is set iff utab[b[i]>>4] == ltab[b[i]&0xF]. This emulates
//
//	cmpeq_epi8(shuffle_epi8(utab, srli4(b)), shuffle_epi8(ltab, b))
//
// byte by byte. Construct tables with classifier/raw.go builders; the
// sentinel values 0xFE (upper) and 0xFF (lower) never compare equal.
func NibbleEq(b *Block, utab, ltab *NibbleTable) uint64 {
	var mask uint64
	for i := 0; i < BlockSize; i++ {
		if utab[b[i]>>4] == ltab[b[i]&0x0F] {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// NibbleOr classifies b with the few-groups method of §4.1: bit i is set iff
// utab[b[i]>>4] | ltab[b[i]&0xF] == 0xFF. This emulates
//
//	cmpeq_epi8(or(shuffle_epi8(utab, srli4(b)), shuffle_epi8(ltab, b)), ALL_ONES)
func NibbleOr(b *Block, utab, ltab *NibbleTable) uint64 {
	var mask uint64
	for i := 0; i < BlockSize; i++ {
		if utab[b[i]>>4]|ltab[b[i]&0x0F] == 0xFF {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// NibbleOr2 classifies b with the general-case method of §4.1 (two few-group
// classifications ORed together).
func NibbleOr2(b *Block, utab1, ltab1, utab2, ltab2 *NibbleTable) uint64 {
	var mask uint64
	for i := 0; i < BlockSize; i++ {
		u, l := b[i]>>4, b[i]&0x0F
		if utab1[u]|ltab1[l] == 0xFF || utab2[u]|ltab2[l] == 0xFF {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// ByteTable is a fully-composed classification table: one 0/1 entry per
// byte value. CompileNibbleEq derives one from an utab/ltab pair; it is the
// scalar-practical composition of the two shuffle lookups — Go has no
// 16-lane parallel shuffle, and one table load per byte beats two nibble
// loads plus a compare.
type ByteTable [256]byte

// CompileNibbleEq composes utab/ltab (non-overlapping-groups semantics,
// §4.1) into a ByteTable. Rebuilt whenever a table is toggled; the XOR
// toggling of utab entries (§4.1) therefore still drives classification.
func CompileNibbleEq(utab, ltab *NibbleTable) ByteTable {
	var t ByteTable
	for v := 0; v < 256; v++ {
		if utab[v>>4] == ltab[v&0x0F] {
			t[v] = 1
		}
	}
	return t
}

// ClassifyBytes classifies a block against a composed ByteTable, returning
// the match bitmask. The loop is branchless and unrolled in 8-byte lanes.
func ClassifyBytes(b *Block, t *ByteTable) uint64 {
	var mask uint64
	for i := 0; i < BlockSize; i += 8 {
		m := uint64(t[b[i]]) |
			uint64(t[b[i+1]])<<1 |
			uint64(t[b[i+2]])<<2 |
			uint64(t[b[i+3]])<<3 |
			uint64(t[b[i+4]])<<4 |
			uint64(t[b[i+5]])<<5 |
			uint64(t[b[i+6]])<<6 |
			uint64(t[b[i+7]])<<7
		mask |= m << uint(i)
	}
	return mask
}

// PrefixXor computes, for every bit position i, the XOR of bits 0..i of x.
// It substitutes for the carry-less multiplication by an all-ones vector the
// paper uses to turn unescaped-quote masks into in-string masks (§4.2): the
// result has bit i set iff an odd number of quote bits occur at or below i.
func PrefixXor(x uint64) uint64 {
	x ^= x << 1
	x ^= x << 2
	x ^= x << 4
	x ^= x << 8
	x ^= x << 16
	x ^= x << 32
	return x
}

// Popcount returns the number of set bits. Thin alias so classifier code
// reads like the paper's pseudocode.
func Popcount(x uint64) int { return bits.OnesCount64(x) }

// TrailingZeros returns the index of the lowest set bit (64 if x == 0).
func TrailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

// ClearLowest clears the lowest set bit of x, the iterator's step operation.
func ClearLowest(x uint64) uint64 { return x & (x - 1) }

// BitsBelow returns a mask of all bits strictly below position i (i in
// 0..64). The depth classifier uses it to count openings preceding a
// closing character within a block.
func BitsBelow(i int) uint64 {
	if i >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(i)) - 1
}
