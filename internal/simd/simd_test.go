package simd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refCmpEq8 is the scalar oracle for CmpEq8.
func refCmpEq8(b *Block, c byte) uint64 {
	var m uint64
	for i, v := range b {
		if v == c {
			m |= 1 << uint(i)
		}
	}
	return m
}

// refPrefixXor is the scalar oracle for PrefixXor.
func refPrefixXor(x uint64) uint64 {
	var out uint64
	parity := uint64(0)
	for i := 0; i < 64; i++ {
		parity ^= (x >> uint(i)) & 1
		out |= parity << uint(i)
	}
	return out
}

func randomBlock(r *rand.Rand) Block {
	var b Block
	for i := range b {
		b[i] = byte(r.Intn(256))
	}
	return b
}

func TestLoadBlockPadsAndCounts(t *testing.T) {
	var b Block
	n := LoadBlock(&b, []byte("abc"), ' ')
	if n != 3 {
		t.Fatalf("LoadBlock returned %d, want 3", n)
	}
	if b[0] != 'a' || b[1] != 'b' || b[2] != 'c' {
		t.Fatalf("prefix not copied: %q", b[:3])
	}
	for i := 3; i < BlockSize; i++ {
		if b[i] != ' ' {
			t.Fatalf("byte %d not padded: %q", i, b[i])
		}
	}
}

func TestLoadBlockFull(t *testing.T) {
	src := make([]byte, 100)
	for i := range src {
		src[i] = byte(i)
	}
	var b Block
	n := LoadBlock(&b, src, ' ')
	if n != BlockSize {
		t.Fatalf("LoadBlock returned %d, want %d", n, BlockSize)
	}
	for i := 0; i < BlockSize; i++ {
		if b[i] != byte(i) {
			t.Fatalf("byte %d = %d, want %d", i, b[i], i)
		}
	}
}

func TestCmpEq8KnownPattern(t *testing.T) {
	var b Block
	LoadBlock(&b, []byte(`{"a":1,"b":[2,3]}`), ' ')
	if got := CmpEq8(&b, '{'); got != 1<<0 {
		t.Errorf("mask for '{' = %#x, want %#x", got, 1<<0)
	}
	if got := CmpEq8(&b, ','); got != 1<<6|1<<13 {
		t.Errorf("mask for ',' = %#x, want %#x", got, uint64(1<<6|1<<13))
	}
	if got := CmpEq8(&b, 'z'); got != 0 {
		t.Errorf("mask for 'z' = %#x, want 0", got)
	}
}

func TestCmpEq8MatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		b := randomBlock(r)
		c := byte(r.Intn(256))
		if got, want := CmpEq8(&b, c), refCmpEq8(&b, c); got != want {
			t.Fatalf("trial %d: CmpEq8(%v, %#x) = %#x, want %#x", trial, b, c, got, want)
		}
	}
}

func TestCmpEq8AllSame(t *testing.T) {
	var b Block
	for i := range b {
		b[i] = 0x7B
	}
	if got := CmpEq8(&b, 0x7B); got != ^uint64(0) {
		t.Fatalf("all-equal block mask = %#x, want all ones", got)
	}
	if got := CmpEq8(&b, 0x7C); got != 0 {
		t.Fatalf("no-match block mask = %#x, want 0", got)
	}
}

func TestCmpEq8ZeroByte(t *testing.T) {
	// The has-zero trick is most fragile around 0x00 and 0xFF operands.
	var b Block
	b[0], b[17], b[63] = 0x00, 0x00, 0x00
	for i := range b {
		if b[i] == 0 && i != 0 && i != 17 && i != 63 {
			b[i] = 1
		}
	}
	b[5] = 0xFF
	if got, want := CmpEq8(&b, 0x00), refCmpEq8(&b, 0x00); got != want {
		t.Fatalf("zero-byte mask = %#x, want %#x", got, want)
	}
	if got, want := CmpEq8(&b, 0xFF), refCmpEq8(&b, 0xFF); got != want {
		t.Fatalf("0xFF mask = %#x, want %#x", got, want)
	}
}

func TestCmpEq8PairMatchesSingles(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 1000; trial++ {
		b := randomBlock(r)
		c1, c2 := byte(r.Intn(256)), byte(r.Intn(256))
		m1, m2 := CmpEq8Pair(&b, c1, c2)
		if m1 != CmpEq8(&b, c1) || m2 != CmpEq8(&b, c2) {
			t.Fatalf("trial %d: pair masks diverge from singles", trial)
		}
	}
}

func TestPrefixXorMatchesReference(t *testing.T) {
	cfg := &quick.Config{MaxCount: 5000}
	if err := quick.Check(func(x uint64) bool {
		return PrefixXor(x) == refPrefixXor(x)
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixXorKnown(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{0, 0},
		{1, ^uint64(0)},              // single quote at bit 0: everything after is "inside"
		{0b1001, 0b0111},             // open at 0, close at 3
		{1 << 63, 1 << 63},           // open at the last position
		{0b101, ^uint64(0) &^ 0b011}, // open 0, close 2, reopen onward? 0b101: bits0,2 set
	}
	// Recompute the third case honestly via the reference.
	cases[4].want = refPrefixXor(cases[4].in)
	for _, c := range cases {
		if got := PrefixXor(c.in); got != c.want {
			t.Errorf("PrefixXor(%#b) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestNibbleEqAgainstDirect(t *testing.T) {
	// Table mapping every byte with upper nibble 3 and lower nibble A (that
	// is, only 0x3A) to a matching pair.
	var utab, ltab NibbleTable
	for i := range utab {
		utab[i], ltab[i] = 0xFE, 0xFF
	}
	utab[0x3] = 1
	ltab[0xA] = 1
	var b Block
	LoadBlock(&b, []byte("a:b ::"), ' ')
	want := refCmpEq8(&b, ':')
	if got := NibbleEq(&b, &utab, &ltab); got != want {
		t.Fatalf("NibbleEq = %#x, want %#x", got, want)
	}
}

func TestNibbleOrAgainstDirect(t *testing.T) {
	// Few-groups encoding of the same single-symbol classifier: group 1 is
	// ({3},{A}). utab zeroes bit 0, ltab sets bit 0.
	var utab, ltab NibbleTable
	utab[0x3] = 0xFF &^ 0x01
	ltab[0xA] = 0x01
	var b Block
	LoadBlock(&b, []byte("x:yz: :"), ' ')
	want := refCmpEq8(&b, ':')
	if got := NibbleOr(&b, &utab, &ltab); got != want {
		t.Fatalf("NibbleOr = %#x, want %#x", got, want)
	}
}

func TestBitsBelow(t *testing.T) {
	if BitsBelow(0) != 0 {
		t.Error("BitsBelow(0) != 0")
	}
	if BitsBelow(1) != 1 {
		t.Error("BitsBelow(1) != 1")
	}
	if BitsBelow(64) != ^uint64(0) {
		t.Error("BitsBelow(64) != all ones")
	}
	if BitsBelow(63) != ^uint64(0)>>1 {
		t.Error("BitsBelow(63) wrong")
	}
}

func TestClearLowest(t *testing.T) {
	x := uint64(0b10110)
	x = ClearLowest(x)
	if x != 0b10100 {
		t.Fatalf("ClearLowest = %#b", x)
	}
	if ClearLowest(0) != 0 {
		t.Fatal("ClearLowest(0) != 0")
	}
}

func TestTrailingZerosEmpty(t *testing.T) {
	if TrailingZeros(0) != 64 {
		t.Fatal("TrailingZeros(0) != 64")
	}
	if TrailingZeros(1<<13) != 13 {
		t.Fatal("TrailingZeros(1<<13) != 13")
	}
}

func BenchmarkCmpEq8(b *testing.B) {
	var blk Block
	r := rand.New(rand.NewSource(3))
	blk = randomBlock(r)
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		sink ^= CmpEq8(&blk, ',')
	}
}

func BenchmarkNibbleEq(b *testing.B) {
	var blk Block
	r := rand.New(rand.NewSource(4))
	blk = randomBlock(r)
	var utab, ltab NibbleTable
	for i := range utab {
		utab[i], ltab[i] = 0xFE, 0xFF
	}
	utab[0x3], ltab[0xA] = 1, 1
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		sink ^= NibbleEq(&blk, &utab, &ltab)
	}
}

var sink uint64

func TestCompileNibbleEqComposesTables(t *testing.T) {
	// The composed ByteTable must agree with NibbleEq on every byte, for
	// random nibble tables.
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		var utab, ltab NibbleTable
		for i := range utab {
			utab[i] = byte(r.Intn(256))
			ltab[i] = byte(r.Intn(256))
		}
		bt := CompileNibbleEq(&utab, &ltab)
		var b Block
		for base := 0; base < 256; base += BlockSize {
			for i := 0; i < BlockSize; i++ {
				b[i] = byte(base + i)
			}
			if ClassifyBytes(&b, &bt) != NibbleEq(&b, &utab, &ltab) {
				t.Fatalf("trial %d: composed table diverges from NibbleEq", trial)
			}
		}
	}
}

func TestClassifyBytesKnown(t *testing.T) {
	var bt ByteTable
	bt[','] = 1
	var b Block
	LoadBlock(&b, []byte("a,b,,c"), ' ')
	if got := ClassifyBytes(&b, &bt); got != 0b011010 {
		t.Fatalf("ClassifyBytes = %#b", got)
	}
}

func BenchmarkClassifyBytes(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	blk := randomBlock(r)
	var bt ByteTable
	bt['{'], bt['}'], bt['['], bt[']'] = 1, 1, 1, 1
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		sink ^= ClassifyBytes(&blk, &bt)
	}
}

func TestBracketMasks(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for trial := 0; trial < 1000; trial++ {
		b := randomBlock(r)
		opens, closes := BracketMasks(&b)
		wantOpens := refCmpEq8(&b, '{') | refCmpEq8(&b, '[')
		wantCloses := refCmpEq8(&b, '}') | refCmpEq8(&b, ']')
		if opens != wantOpens || closes != wantCloses {
			t.Fatalf("trial %d: BracketMasks mismatch", trial)
		}
	}
}
