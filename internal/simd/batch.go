package simd

import (
	"encoding/binary"
	"math/bits"
)

// This file holds the batched classification kernels: instead of classifying
// one 64-byte block per call through several single-purpose passes
// (CmpEq8Pair for quotes, BracketMasks, CmpEq8 for commas and colons), a
// batch kernel sweeps a contiguous run of blocks in one tight loop and
// derives every raw mask from a single load of each 8-byte word. The fused
// sweep reads the document bytes exactly once and amortizes the per-call
// dispatch over the whole run, the way simdjson's stage-1 builds its
// structural index in one pass over the input.
//
// The kernels emit *raw* masks only — escape handling and the in-string
// parity are inherently sequential across blocks and are layered on top by
// classifier.BuildPlanes.

// Broadcast comparison targets for the raw sweep.
const (
	batchBackslash = uint64('\\') * lowBytes
	batchQuote     = uint64('"') * lowBytes
	batchOpen      = uint64('{') * lowBytes // after bit-5 folding: '{' and '['
	batchClose     = uint64('}') * lowBytes // after bit-5 folding: '}' and ']'
	batchComma     = uint64(',') * lowBytes
	batchColon     = uint64(':') * lowBytes
	bit5Fold       = 0x2020202020202020 // folds '['/']' onto '{'/'}' (see BracketMasks)
)

// rawMasksSWAR computes the six raw per-block masks of one padded block in a
// single pass over its bytes: backslashes, double quotes (escaped or not),
// opening and closing brackets of both kinds, commas, and colons. It is the
// per-block form of batchRawMasksSWAR, the universal fallback behind the
// dispatched RawMasks, and the bit-identity reference every hardware backend
// is fuzzed against.
func rawMasksSWAR(b *Block) (backslash, quote, opens, closes, commas, colons uint64) {
	for i := 0; i < BlockSize; i += 8 {
		w := word(b, i)
		backslash |= movemaskZero(w^batchBackslash) << uint(i)
		quote |= movemaskZero(w^batchQuote) << uint(i)
		wf := w | bit5Fold
		opens |= movemaskZero(wf^batchOpen) << uint(i)
		closes |= movemaskZero(wf^batchClose) << uint(i)
		commas |= movemaskZero(w^batchComma) << uint(i)
		colons |= movemaskZero(w^batchColon) << uint(i)
	}
	return
}

// batchRawMasksSWAR sweeps every full 64-byte block of data in one loop,
// storing block i's raw masks at index i of each destination plane. It is
// the universal fallback behind the dispatched BatchRawMasks.
//
// The body is unrolled by hand: gc does not unroll loops, and with the
// 8-word loop written out every mask shift is a constant and the eight
// detect chains are independent, which is where the batch layer's advantage
// over per-block calls comes from.
func batchRawMasksSWAR(data []byte, backslash, quote, opens, closes, commas, colons []uint64) int {
	n := len(data) / BlockSize
	if n == 0 {
		return 0
	}
	// Reslice once so the stores below are provably in bounds.
	backslash = backslash[:n]
	quote = quote[:n]
	opens = opens[:n]
	closes = closes[:n]
	commas = commas[:n]
	colons = colons[:n]
	for i := 0; i < n; i++ {
		b := data[i*BlockSize:]
		b = b[:BlockSize:BlockSize]
		w0 := binary.LittleEndian.Uint64(b[0:8])
		w1 := binary.LittleEndian.Uint64(b[8:16])
		w2 := binary.LittleEndian.Uint64(b[16:24])
		w3 := binary.LittleEndian.Uint64(b[24:32])
		w4 := binary.LittleEndian.Uint64(b[32:40])
		w5 := binary.LittleEndian.Uint64(b[40:48])
		w6 := binary.LittleEndian.Uint64(b[48:56])
		w7 := binary.LittleEndian.Uint64(b[56:64])

		backslash[i] = movemaskZero(w0^batchBackslash) |
			movemaskZero(w1^batchBackslash)<<8 |
			movemaskZero(w2^batchBackslash)<<16 |
			movemaskZero(w3^batchBackslash)<<24 |
			movemaskZero(w4^batchBackslash)<<32 |
			movemaskZero(w5^batchBackslash)<<40 |
			movemaskZero(w6^batchBackslash)<<48 |
			movemaskZero(w7^batchBackslash)<<56
		quote[i] = movemaskZero(w0^batchQuote) |
			movemaskZero(w1^batchQuote)<<8 |
			movemaskZero(w2^batchQuote)<<16 |
			movemaskZero(w3^batchQuote)<<24 |
			movemaskZero(w4^batchQuote)<<32 |
			movemaskZero(w5^batchQuote)<<40 |
			movemaskZero(w6^batchQuote)<<48 |
			movemaskZero(w7^batchQuote)<<56
		commas[i] = movemaskZero(w0^batchComma) |
			movemaskZero(w1^batchComma)<<8 |
			movemaskZero(w2^batchComma)<<16 |
			movemaskZero(w3^batchComma)<<24 |
			movemaskZero(w4^batchComma)<<32 |
			movemaskZero(w5^batchComma)<<40 |
			movemaskZero(w6^batchComma)<<48 |
			movemaskZero(w7^batchComma)<<56
		colons[i] = movemaskZero(w0^batchColon) |
			movemaskZero(w1^batchColon)<<8 |
			movemaskZero(w2^batchColon)<<16 |
			movemaskZero(w3^batchColon)<<24 |
			movemaskZero(w4^batchColon)<<32 |
			movemaskZero(w5^batchColon)<<40 |
			movemaskZero(w6^batchColon)<<48 |
			movemaskZero(w7^batchColon)<<56

		// Brackets run on the bit-5-folded words (see BracketMasks).
		w0 |= bit5Fold
		w1 |= bit5Fold
		w2 |= bit5Fold
		w3 |= bit5Fold
		w4 |= bit5Fold
		w5 |= bit5Fold
		w6 |= bit5Fold
		w7 |= bit5Fold
		opens[i] = movemaskZero(w0^batchOpen) |
			movemaskZero(w1^batchOpen)<<8 |
			movemaskZero(w2^batchOpen)<<16 |
			movemaskZero(w3^batchOpen)<<24 |
			movemaskZero(w4^batchOpen)<<32 |
			movemaskZero(w5^batchOpen)<<40 |
			movemaskZero(w6^batchOpen)<<48 |
			movemaskZero(w7^batchOpen)<<56
		closes[i] = movemaskZero(w0^batchClose) |
			movemaskZero(w1^batchClose)<<8 |
			movemaskZero(w2^batchClose)<<16 |
			movemaskZero(w3^batchClose)<<24 |
			movemaskZero(w4^batchClose)<<32 |
			movemaskZero(w5^batchClose)<<40 |
			movemaskZero(w6^batchClose)<<48 |
			movemaskZero(w7^batchClose)<<56
	}
	return n
}

// andNotSWAR clears in dst every bit set in m: dst[i] &^= m[i]. Fallback
// behind the dispatched AndNot; unrolled by four to match the vector
// backends' lane width.
func andNotSWAR(dst, m []uint64) {
	n := len(dst)
	m = m[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] &^= m[i]
		dst[i+1] &^= m[i+1]
		dst[i+2] &^= m[i+2]
		dst[i+3] &^= m[i+3]
	}
	for ; i < n; i++ {
		dst[i] &^= m[i]
	}
}

// popcountWordsSWAR sums the population count of every word of p. Fallback
// behind the dispatched PopcountWords; bits.OnesCount64 compiles to a single
// POPCNT where available, so the fallback is already word-parallel.
func popcountWordsSWAR(p []uint64) int {
	total := 0
	for _, w := range p {
		total += bits.OnesCount64(w)
	}
	return total
}
