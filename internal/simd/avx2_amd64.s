#include "textflag.h"

// AVX2 kernels for the six-mask classifier (DESIGN.md §16).
//
// Invariants shared by every TEXT below:
//   - NOSPLIT with a zero-size frame: no locals, no spills, nothing written
//     into the caller's frame beyond declared results, so the routines are
//     safe at any stack depth without a morestack preamble.
//   - All memory operands use unaligned loads/stores (VMOVDQU): document
//     bytes arrive at arbitrary offsets. Plane words are VecAlign-aligned
//     by simd.AlignedWords, but the kernels do not rely on it.
//   - Every routine ends with VZEROUPPER before RET so mixed AVX/SSE code
//     in the rest of the runtime pays no transition penalty.
//   - Bounds are the Go wrappers' job (dispatch_amd64.go): the assembly
//     trusts n and dereferences raw pointers.
//
// Constant-register layout for the raw-mask kernels:
//   Y8  '\\'   Y9  '"'   Y10 '{'   Y11 '}'   Y12 ','   Y13 ':'
//   Y14 0x20 bit-5 fold ('['/']' onto '{'/'}', see simd.BracketMasks)

// BCASTB broadcasts constant byte c into ymm register y via AX/X7.
#define BCASTB(c, y) \
	MOVQ         c, AX    \
	VMOVQ        AX, X7   \
	VPBROADCASTB X7, y

#define LOADCONSTS \
	BCASTB($0x5C, Y8)  \ // backslash
	BCASTB($0x22, Y9)  \ // quote
	BCASTB($0x7B, Y10) \ // open brace (after fold: also '[')
	BCASTB($0x7D, Y11) \ // close brace (after fold: also ']')
	BCASTB($0x2C, Y12) \ // comma
	BCASTB($0x3A, Y13) \ // colon
	BCASTB($0x20, Y14)   // bit-5 fold

// MASK64 compares the two block halves in Y0/Y1 (or Y2/Y3 for tgt operands
// of the folded bracket compares) against target register tgt and leaves
// the combined 64-bit movemask in AX. Clobbers Y4, BX.
#define MASK64(lo, hi, tgt) \
	VPCMPEQB  tgt, lo, Y4 \
	VPMOVMSKB Y4, AX      \
	VPCMPEQB  tgt, hi, Y4 \
	VPMOVMSKB Y4, BX      \
	SHLQ      $32, BX     \
	ORQ       BX, AX

// func rawMasksAVX2(b *Block, out *[6]uint64)
TEXT ·rawMasksAVX2(SB), NOSPLIT, $0-16
	MOVQ b+0(FP), SI
	MOVQ out+8(FP), DI
	LOADCONSTS

	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1

	MASK64(Y0, Y1, Y8)
	MOVQ   AX, 0(DI)       // backslash
	MASK64(Y0, Y1, Y9)
	MOVQ   AX, 8(DI)       // quote
	MASK64(Y0, Y1, Y12)
	MOVQ   AX, 32(DI)      // commas
	MASK64(Y0, Y1, Y13)
	MOVQ   AX, 40(DI)      // colons

	// Brackets compare the bit-5-folded halves.
	VPOR   Y14, Y0, Y2
	VPOR   Y14, Y1, Y3
	MASK64(Y2, Y3, Y10)
	MOVQ   AX, 16(DI)      // opens
	MASK64(Y2, Y3, Y11)
	MOVQ   AX, 24(DI)      // closes

	VZEROUPPER
	RET

// func batchRawMasksAVX2(data *byte, n int, backslash, quote, opens, closes, commas, colons *uint64)
TEXT ·batchRawMasksAVX2(SB), NOSPLIT, $0-64
	MOVQ data+0(FP), SI
	MOVQ n+8(FP), CX
	MOVQ backslash+16(FP), DI
	MOVQ quote+24(FP), R8
	MOVQ opens+32(FP), R9
	MOVQ closes+40(FP), R10
	MOVQ commas+48(FP), R11
	MOVQ colons+56(FP), R12
	LOADCONSTS

	TESTQ CX, CX
	JZ    done

loop:
	// One 64-byte block: two shared YMM loads feed all six symbol classes.
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1

	MASK64(Y0, Y1, Y8)
	MOVQ   AX, (DI)        // backslash
	MASK64(Y0, Y1, Y9)
	MOVQ   AX, (R8)        // quote
	MASK64(Y0, Y1, Y12)
	MOVQ   AX, (R11)       // commas
	MASK64(Y0, Y1, Y13)
	MOVQ   AX, (R12)       // colons

	VPOR   Y14, Y0, Y2
	VPOR   Y14, Y1, Y3
	MASK64(Y2, Y3, Y10)
	MOVQ   AX, (R9)        // opens
	MASK64(Y2, Y3, Y11)
	MOVQ   AX, (R10)       // closes

	ADDQ $64, SI
	ADDQ $8, DI
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	ADDQ $8, R12
	DECQ CX
	JNZ  loop

done:
	VZEROUPPER
	RET

// func andNotAVX2(dst, m *uint64, lanes int)
// dst[0:4l] &^= m[0:4l], one 256-bit VPANDN per lane.
TEXT ·andNotAVX2(SB), NOSPLIT, $0-24
	MOVQ  dst+0(FP), DI
	MOVQ  m+8(FP), SI
	MOVQ  lanes+16(FP), CX
	TESTQ CX, CX
	JZ    andnotDone

andnotLoop:
	VMOVDQU (DI), Y0
	VMOVDQU (SI), Y1
	VPANDN  Y0, Y1, Y2     // Y2 = ^Y1 & Y0 = dst &^ m
	VMOVDQU Y2, (DI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	DECQ    CX
	JNZ     andnotLoop

andnotDone:
	VZEROUPPER
	RET

// Nibble popcount lookup table for VPSHUFB (both 128-bit halves identical).
DATA popcntLUT<>+0(SB)/8, $0x0302020102010100
DATA popcntLUT<>+8(SB)/8, $0x0403030203020201
DATA popcntLUT<>+16(SB)/8, $0x0302020102010100
DATA popcntLUT<>+24(SB)/8, $0x0403030203020201
GLOBL popcntLUT<>(SB), RODATA|NOPTR, $32

// func popcountAVX2(p *uint64, lanes int) int64
// Positional-popcount-free whole-plane popcount (Mula): per 32-byte lane,
// VPSHUFB the nibble LUT for per-byte counts, VPSADBW against zero to sum
// bytes into the four quadword lanes, accumulate in Y6, reduce at the end.
TEXT ·popcountAVX2(SB), NOSPLIT, $0-24
	MOVQ p+0(FP), SI
	MOVQ lanes+8(FP), CX

	VMOVDQU popcntLUT<>(SB), Y5
	BCASTB  ($0x0F, Y4)     // low-nibble mask
	VPXOR   Y6, Y6, Y6      // accumulator
	VPXOR   Y3, Y3, Y3      // zero operand for VPSADBW

	TESTQ CX, CX
	JZ    popcntDone

popcntLoop:
	VMOVDQU (SI), Y0
	VPAND   Y4, Y0, Y1      // low nibbles
	VPSRLW  $4, Y0, Y2
	VPAND   Y4, Y2, Y2      // high nibbles
	VPSHUFB Y1, Y5, Y1      // per-byte count of low nibble
	VPSHUFB Y2, Y5, Y2      // per-byte count of high nibble
	VPADDB  Y2, Y1, Y1      // per-byte popcount (<= 8, no overflow)
	VPSADBW Y3, Y1, Y1      // sum each 8-byte group into a quadword
	VPADDQ  Y1, Y6, Y6
	ADDQ    $32, SI
	DECQ    CX
	JNZ     popcntLoop

popcntDone:
	// Horizontal reduction of the four quadword sums.
	VEXTRACTI128 $1, Y6, X1
	VPADDQ       X1, X6, X6
	VPSRLDQ      $8, X6, X1
	VPADDQ       X1, X6, X6
	VMOVQ        X6, AX
	VZEROUPPER
	MOVQ         AX, ret+16(FP)
	RET
