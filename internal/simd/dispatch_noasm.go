//go:build !amd64

package simd

// registerArch is a no-op on targets without hardware kernels: SWAR is the
// only backend. A NEON backend would add a dispatch_arm64.go mirroring
// dispatch_amd64.go (see DESIGN.md §16 for the porting checklist).
func registerArch() {}
