package simd

import (
	"math/rand"
	"testing"
)

// refMasks computes the six raw masks of one block through the established
// per-block kernels, as the oracle for the fused forms.
func refMasks(b *Block) [6]uint64 {
	var m [6]uint64
	m[0], m[1] = CmpEq8Pair(b, '\\', '"')
	m[2], m[3] = BracketMasks(b)
	m[4] = CmpEq8(b, ',')
	m[5] = CmpEq8(b, ':')
	return m
}

func batchTestInputs() [][]byte {
	r := rand.New(rand.NewSource(42))
	inputs := [][]byte{
		[]byte(`{"a": [1, 2, {"b\\": "x,y:z"}], "c": null}`),
		[]byte("{}[],::\"\\"),
		nil,
	}
	// All byte values, cycled, across several non-multiple-of-64 lengths.
	all := make([]byte, 1024)
	for i := range all {
		all[i] = byte(i)
	}
	inputs = append(inputs, all)
	for _, n := range []int{1, 63, 64, 65, 127, 128, 256, 1000} {
		doc := make([]byte, n)
		for i := range doc {
			doc[i] = byte(r.Intn(256))
		}
		inputs = append(inputs, doc)
	}
	return inputs
}

func TestRawMasksMatchesPerBlockKernels(t *testing.T) {
	for _, data := range batchTestInputs() {
		for off := 0; off < len(data); off += BlockSize {
			var b Block
			LoadBlock(&b, data[off:], ' ')
			want := refMasks(&b)
			var got [6]uint64
			got[0], got[1], got[2], got[3], got[4], got[5] = RawMasks(&b)
			if got != want {
				t.Fatalf("len=%d block@%d: RawMasks %x, per-block kernels %x", len(data), off, got, want)
			}
		}
	}
}

func TestBatchRawMasksMatchesPerBlockKernels(t *testing.T) {
	for _, data := range batchTestInputs() {
		n := len(data) / BlockSize
		planes := make([][]uint64, 6)
		for i := range planes {
			planes[i] = make([]uint64, n)
		}
		got := BatchRawMasks(data, planes[0], planes[1], planes[2], planes[3], planes[4], planes[5])
		if got != n {
			t.Fatalf("len=%d: BatchRawMasks returned %d blocks, want %d", len(data), got, n)
		}
		for idx := 0; idx < n; idx++ {
			var b Block
			LoadBlock(&b, data[idx*BlockSize:], ' ')
			want := refMasks(&b)
			for p := range planes {
				if planes[p][idx] != want[p] {
					t.Fatalf("len=%d block %d plane %d: %#x, want %#x",
						len(data), idx, p, planes[p][idx], want[p])
				}
			}
		}
	}
}

// The batch sweep must never read past the last full block: the tail is the
// caller's to pad. Proven by handing it a slice whose tail bytes would
// change the masks if touched.
func TestBatchRawMasksIgnoresTail(t *testing.T) {
	data := make([]byte, BlockSize+7)
	for i := range data {
		data[i] = '"' // tail full of quotes; masks must not see them
	}
	planes := make([]uint64, 1)
	zero := make([]uint64, 1)
	if n := BatchRawMasks(data, zero, planes, zero, zero, zero, zero); n != 1 {
		t.Fatalf("blocks %d, want 1", n)
	}
	if planes[0] != ^uint64(0) {
		t.Fatalf("quote mask %#x, want all-ones", planes[0])
	}
}
