package simd

// Hand-rolled CPU feature detection: the module is dependency-free by
// design, so instead of golang.org/x/sys/cpu we ask the hardware directly.
// AVX2 use requires three independent yeses (Intel SDM vol. 1 §14.7.1):
// the CPU advertises AVX2, the CPU advertises OSXSAVE+AVX, and the OS has
// actually enabled XMM+YMM state saving in XCR0 — skipping the last check
// faults on kernels that mask AVX state (some VMs do).

// cpuid executes CPUID with the given leaf/subleaf. Implemented in
// cpu_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register XCR0. Only valid to call when
// CPUID reports OSXSAVE. Implemented in cpu_amd64.s.
func xgetbv0() (eax, edx uint32)

// detectAVX2 reports whether AVX2 kernels can run on this CPU + OS.
func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		osxsaveBit = 1 << 27 // CPUID.1:ECX
		avxBit     = 1 << 28 // CPUID.1:ECX
		avx2Bit    = 1 << 5  // CPUID.7.0:EBX
		xcr0YMM    = 0x6     // XCR0: SSE (bit 1) and AVX (bit 2) state
	)
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	if eax, _ := xgetbv0(); eax&xcr0YMM != xcr0YMM {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&avx2Bit != 0
}
