package simd

import (
	"fmt"
	"os"
	"sort"
	"unsafe"
)

// This file is the runtime backend dispatch layer (DESIGN.md §16). A backend
// is one implementation of the hot kernels — the six-mask raw sweep and the
// plane post-processing primitives — selected once at init: the best
// hardware backend the CPU supports wins, SWAR is the universal fallback
// compiled on every GOARCH, and the RSONPATH_SIMD environment variable (or
// SetBackend, behind the CLI/daemon -simd flags) forces a specific one so
// both paths stay testable on any host.
//
// Every backend must be bit-identical to SWAR on all six masks; the
// differential fuzzers (FuzzBackendEquivalence here, FuzzPlanesEquivalence
// in internal/classifier) and the backend-matrix CI jobs pin that.

// EnvBackend is the environment variable consulted at init (and by the
// -simd flags' default) to force a backend by name.
const EnvBackend = "RSONPATH_SIMD"

// backend bundles one implementation of the dispatched kernels.
type backend struct {
	name string
	// rawMasks is the per-block kernel (padded final block, tests).
	rawMasks func(b *Block) (backslash, quote, opens, closes, commas, colons uint64)
	// batchRawMasks is the multi-block sweep over full blocks of data.
	batchRawMasks func(data []byte, backslash, quote, opens, closes, commas, colons []uint64) int
	// andNot clears dst's bits where m's are set (len(m) >= len(dst)).
	andNot func(dst, m []uint64)
	// popcountWords sums the set bits of a whole plane.
	popcountWords func(p []uint64) int
}

var swarBackend = backend{
	name:          "swar",
	rawMasks:      rawMasksSWAR,
	batchRawMasks: batchRawMasksSWAR,
	andNot:        andNotSWAR,
	popcountWords: popcountWordsSWAR,
}

// backends holds every backend compiled in AND supported by this CPU, in
// preference order: index 0 is the fallback, the last entry the fastest.
var backends = []backend{swarBackend}

// active is the backend behind the exported kernels. It is written during
// package init and by SetBackend (startup flags and tests); the hot paths
// read it without synchronization, so forcing a backend while queries run
// concurrently is not supported.
var active backend

func init() {
	registerArch()
	active = backends[len(backends)-1]
	if name := os.Getenv(EnvBackend); name != "" {
		// A forced backend this binary or CPU lacks degrades to the best
		// available one rather than failing init: the env var is a testing
		// lever, and "swar" must be forceable everywhere while "avx2" simply
		// does not exist on an arm64 build. Backend() reports the truth.
		_ = SetBackend(name)
	}
}

// Backend returns the name of the active kernel backend ("swar", "avx2").
func Backend() string { return active.name }

// Backends returns the names of every backend usable on this host, in
// preference order (fallback first). The result is a fresh slice.
func Backends() []string {
	names := make([]string, len(backends))
	for i, b := range backends {
		names[i] = b.name
	}
	return names
}

// SetBackend forces the named backend. It returns an error naming the
// available choices when the backend is unknown, not compiled into this
// GOARCH, or not supported by the CPU. Not safe to call concurrently with
// running queries: it is meant for process startup (flags, env) and tests.
func SetBackend(name string) error {
	for _, b := range backends {
		if b.name == name {
			active = b
			return nil
		}
	}
	avail := Backends()
	sort.Strings(avail)
	return fmt.Errorf("simd: backend %q not available on this host (have %v)", name, avail)
}

// RawMasks computes the six raw per-block masks of one padded block with the
// active backend: backslashes, double quotes (escaped or not), opening and
// closing brackets of both kinds, commas, and colons. It is the per-block
// form of BatchRawMasks, used for the final partial block.
func RawMasks(b *Block) (backslash, quote, opens, closes, commas, colons uint64) {
	return active.rawMasks(b)
}

// BatchRawMasks sweeps every full 64-byte block of data with the active
// backend, storing block i's raw masks at index i of each destination
// plane. Every destination must hold at least len(data)/BlockSize words;
// the number of full blocks processed is returned (the caller pads and
// classifies the partial tail, if any, with LoadBlock + RawMasks).
func BatchRawMasks(data []byte, backslash, quote, opens, closes, commas, colons []uint64) int {
	return active.batchRawMasks(data, backslash, quote, opens, closes, commas, colons)
}

// AndNot clears in dst every bit set in m: dst[i] &^= m[i] for i < len(dst).
// m must be at least as long as dst. This is the plane post-processing
// primitive behind classifier.BuildPlanes' &^inString masking; vector
// backends process VecWords words per step, so callers that can pass
// lane-rounded lengths (see RoundWords) avoid the scalar tail entirely.
func AndNot(dst, m []uint64) {
	active.andNot(dst, m)
}

// PopcountWords sums the set bits of every word of p, the whole-plane
// popcount behind classifier.(*Planes).BracketBalance.
func PopcountWords(p []uint64) int {
	return active.popcountWords(p)
}

// Vector-lane geometry shared by every hardware backend and by the plane
// allocator: a 256-bit register holds VecWords mask words and wants
// VecAlign-byte alignment.
const (
	// VecWords is the number of 64-bit mask words a vector kernel step
	// consumes; plane capacities are rounded to whole multiples of it.
	VecWords = 4
	// VecAlign is the byte alignment AlignedWords guarantees (one 256-bit
	// register; also what a future NEON/SVE backend would want or better).
	VecAlign = 32
)

// RoundWords rounds a word count up to a whole number of vector lanes.
func RoundWords(n int) int { return (n + VecWords - 1) &^ (VecWords - 1) }

// AlignedWords allocates a zeroed []uint64 of length words whose backing
// array starts VecAlign-byte aligned. Callers that additionally want
// overrun-safe capacity round words up with RoundWords first. Go's heap
// does not move allocations, so the alignment holds for the slice's life.
func AlignedWords(words int) []uint64 {
	if words <= 0 {
		return nil
	}
	raw := make([]uint64, words+VecAlign/8-1)
	off := 0
	for uintptr(unsafe.Pointer(&raw[off]))%VecAlign != 0 {
		off++
	}
	return raw[off : off+words : off+words]
}
