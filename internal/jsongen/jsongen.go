// Package jsongen generates the synthetic benchmark datasets substituting
// for the paper's corpora (§5.3, Table 3). Each profile reproduces the
// structural shape that drives engine performance — nesting depth,
// verbosity (bytes per tree node), key vocabulary, and the selectivity of
// the benchmark queries — at a configurable scale (default ~1/64 of the
// originals; see DESIGN.md). Generation is deterministic in (size, seed).
package jsongen

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"

	"rsonpath/internal/dom"
)

// Profile describes one generatable dataset.
type Profile struct {
	// Name is the dataset's short name, matching the paper's Table 3.
	Name string
	// PaperName is the dataset identifier used in the paper's appendix.
	PaperName string
	// DefaultSize is the default target size in bytes (scaled from the
	// paper's Table 3 by ~1/64).
	DefaultSize int
	// PaperDepth and PaperVerbosity are Table 3's reference values.
	PaperDepth     int
	PaperVerbosity float64
	// Generate produces approximately target bytes of JSON.
	Generate func(target int, seed int64) []byte
}

const mb = 1 << 20

var profiles = []Profile{
	{"ast", "ast", 400 * 1024, 102, 14.3, genAST},
	{"bestbuy", "bestbuy_large_record", 16 * mb, 8, 24.5, genBestBuy},
	{"crossref", "crossref2", 9 * mb, 9, 27.0, genCrossref},
	{"googlemap", "google_map_large_record", 17 * mb, 10, 36.9, genGoogleMap},
	{"nspl", "nspl_large_record", 19 * mb, 10, 13.8, genNSPL},
	{"openfood", "openfood", 10 * mb, 8, 30.0, genOpenFood},
	{"twitter", "twitter_large_record", 13 * mb, 12, 29.0, genTwitter},
	{"twitter_small", "twitter", 700 * 1024, 11, 50.6, genTwitterSmall},
	{"walmart", "walmart_large_record", 15 * mb, 5, 96.9, genWalmart},
	{"wikimedia", "wiki_large_record", 17 * mb, 13, 18.7, genWikimedia},
}

// Profiles lists all datasets in name order.
func Profiles() []Profile {
	out := append([]Profile(nil), profiles...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName finds a profile.
func ByName(name string) (Profile, bool) {
	for _, p := range profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Generate produces the named dataset at the given size (0 means the
// profile default) with the given seed.
func Generate(name string, target int, seed int64) ([]byte, error) {
	p, ok := ByName(name)
	if !ok {
		return nil, fmt.Errorf("jsongen: unknown dataset %q", name)
	}
	if target <= 0 {
		target = p.DefaultSize
	}
	return p.Generate(target, seed), nil
}

// Stats describes a generated document in Table 3's terms.
type Stats struct {
	SizeBytes int
	Depth     int
	Nodes     int
	Verbosity float64 // bytes per tree node
}

// Measure computes Table 3 statistics for a document.
func Measure(data []byte) (Stats, error) {
	root, err := dom.Parse(data)
	if err != nil {
		return Stats{}, err
	}
	depth, nodes := walkStats(root, 1)
	return Stats{
		SizeBytes: len(data),
		Depth:     depth,
		Nodes:     nodes,
		Verbosity: float64(len(data)) / float64(nodes),
	}, nil
}

func walkStats(n *dom.Node, depth int) (maxDepth, nodes int) {
	maxDepth, nodes = depth, 1
	for i := range n.Members {
		d, c := walkStats(n.Members[i].Value, depth+1)
		if d > maxDepth {
			maxDepth = d
		}
		nodes += c
	}
	for _, e := range n.Elems {
		d, c := walkStats(e, depth+1)
		if d > maxDepth {
			maxDepth = d
		}
		nodes += c
	}
	return maxDepth, nodes
}

// ---------------------------------------------------------------------------
// Generation helpers
// ---------------------------------------------------------------------------

type gen struct {
	buf  bytes.Buffer
	r    *rand.Rand
	sep  []bool // per open container: needs a separator before next item
	word []string
}

func newGen(seed int64) *gen {
	return &gen{
		r: rand.New(rand.NewSource(seed)),
		word: []string{
			"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
			"hotel", "india", "juliet", "kilo", "lima", "mike", "november",
			"oscar", "papa", "quebec", "romeo", "sierra", "tango", "uniform",
		},
	}
}

func (g *gen) len() int { return g.buf.Len() }

func (g *gen) sepIf() {
	if n := len(g.sep); n > 0 {
		if g.sep[n-1] {
			g.buf.WriteByte(',')
		}
		g.sep[n-1] = true
	}
}

func (g *gen) open(c byte) {
	g.sepIf()
	g.buf.WriteByte(c)
	g.sep = append(g.sep, false)
}

func (g *gen) close(c byte) {
	g.buf.WriteByte(c)
	g.sep = g.sep[:len(g.sep)-1]
}

func (g *gen) obj(f func()) { g.open('{'); f(); g.close('}') }
func (g *gen) arr(f func()) { g.open('['); f(); g.close(']') }

func (g *gen) key(k string) {
	g.sepIf()
	fmt.Fprintf(&g.buf, "%q:", k)
	g.sep[len(g.sep)-1] = false // the value follows without a comma
}

func (g *gen) str(s string) {
	g.sepIf()
	fmt.Fprintf(&g.buf, "%q", s)
}

func (g *gen) num(n int) {
	g.sepIf()
	fmt.Fprintf(&g.buf, "%d", n)
}

func (g *gen) float(f float64) {
	g.sepIf()
	fmt.Fprintf(&g.buf, "%.2f", f)
}

func (g *gen) boolean(b bool) {
	g.sepIf()
	if b {
		g.buf.WriteString("true")
	} else {
		g.buf.WriteString("false")
	}
}

func (g *gen) null() {
	g.sepIf()
	g.buf.WriteString("null")
}

func (g *gen) field(k string, v func()) { g.key(k); v() }

func (g *gen) fieldStr(k, v string) { g.key(k); g.str(v) }
func (g *gen) fieldNum(k string, v int) {
	g.key(k)
	g.num(v)
}

// words returns n random words joined by spaces.
func (g *gen) words(n int) string {
	var b bytes.Buffer
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(g.word[g.r.Intn(len(g.word))])
	}
	return b.String()
}

// ident returns a short random identifier.
func (g *gen) ident() string {
	return fmt.Sprintf("%s%d", g.word[g.r.Intn(len(g.word))], g.r.Intn(10000))
}
