package jsongen

import "fmt"

// This file holds one generator per benchmark dataset. Structural
// commentary cites the queries each dataset serves (Tables 4-6, Appendix C).

// genBestBuy: {"products": [...]} — B1 $.products.*.categoryPath.*.id,
// B2/B3 videoChapters on ~2% of products.
func genBestBuy(target int, seed int64) []byte {
	g := newGen(seed)
	g.obj(func() {
		g.fieldNum("total", 1<<20)
		g.fieldNum("totalPages", 4096)
		g.key("products")
		g.arr(func() {
			for g.len() < target {
				g.obj(func() {
					g.fieldNum("sku", g.r.Intn(1e8))
					g.fieldStr("name", g.words(4))
					g.fieldStr("type", "HardGood")
					g.key("regularPrice")
					g.float(float64(g.r.Intn(100000)) / 100)
					g.key("onSale")
					g.boolean(g.r.Intn(2) == 0)
					g.fieldStr("url", "https://www.example.com/site/"+g.ident())
					g.key("categoryPath")
					g.arr(func() {
						for i, n := 0, 2+g.r.Intn(4); i < n; i++ {
							g.obj(func() {
								g.fieldStr("id", "cat"+g.ident())
								g.fieldStr("name", g.words(2))
							})
						}
					})
					if g.r.Intn(50) == 0 { // B2/B3: rare videoChapters
						g.key("videoChapters")
						g.arr(func() {
							for i, n := 0, 5+g.r.Intn(10); i < n; i++ {
								g.obj(func() {
									g.key("chapter")
									g.num(i)
									g.fieldStr("title", g.words(3))
								})
							}
						})
					}
					g.fieldStr("manufacturer", g.words(1))
					g.fieldStr("image", "https://img.example.com/"+g.ident()+".jpg")
					g.key("customerReviewAverage")
					g.float(float64(g.r.Intn(500)) / 100)
				})
			}
		})
	})
	return g.buf.Bytes()
}

// genGoogleMap: root array — G1 $.*.routes.*.legs.*.steps.*.distance.text,
// G2 $.*.available_travel_modes on a small fraction of records.
func genGoogleMap(target int, seed int64) []byte {
	g := newGen(seed)
	g.arr(func() {
		for g.len() < target {
			g.obj(func() {
				g.fieldStr("status", "OK")
				if g.r.Intn(150) == 0 { // G2: rare
					g.key("available_travel_modes")
					g.arr(func() {
						g.str("DRIVING")
						g.str("WALKING")
					})
				}
				g.key("geocoded_waypoints")
				g.arr(func() {
					for i := 0; i < 2; i++ {
						g.obj(func() {
							g.fieldStr("geocoder_status", "OK")
							g.fieldStr("place_id", g.ident())
						})
					}
				})
				g.key("routes")
				g.arr(func() {
					for i, n := 0, 1+g.r.Intn(2); i < n; i++ {
						g.obj(func() {
							g.fieldStr("summary", g.words(2))
							g.key("legs")
							g.arr(func() {
								for j, m := 0, 1+g.r.Intn(2); j < m; j++ {
									g.obj(func() {
										g.key("steps")
										g.arr(func() {
											for k, s := 0, 3+g.r.Intn(6); k < s; k++ {
												g.obj(func() {
													g.key("distance")
													g.obj(func() {
														g.fieldStr("text", g.words(1)+" km")
														g.fieldNum("value", g.r.Intn(10000))
													})
													g.key("duration")
													g.obj(func() {
														g.fieldStr("text", g.words(1)+" mins")
														g.fieldNum("value", g.r.Intn(3600))
													})
													g.fieldStr("html_instructions", g.words(6))
													g.fieldStr("travel_mode", "DRIVING")
												})
											}
										})
									})
								}
							})
						})
					}
				})
			})
		}
	})
	return g.buf.Bytes()
}

// genNSPL: {"meta": {"view": {...}}, "data": [[[...]]]} — N1
// $.meta.view.columns.*.name (44 columns), N2 $.data.*.*.* (dense).
func genNSPL(target int, seed int64) []byte {
	g := newGen(seed)
	g.obj(func() {
		g.key("meta")
		g.obj(func() {
			g.key("view")
			g.obj(func() {
				g.fieldStr("id", g.ident())
				g.fieldStr("name", "National Statistics Postcode Lookup")
				g.fieldNum("rowsUpdatedAt", 1500000000+g.r.Intn(1e8))
				g.key("columns")
				g.arr(func() {
					for i := 0; i < 44; i++ {
						g.obj(func() {
							g.fieldNum("id", i)
							g.fieldStr("name", "col_"+g.ident())
							g.fieldStr("dataTypeName", "text")
						})
					}
				})
			})
		})
		g.key("data")
		g.arr(func() {
			for g.len() < target {
				g.arr(func() { // row
					for i, n := 0, 3+g.r.Intn(3); i < n; i++ {
						g.arr(func() { // cell group: N2's third level
							for j, m := 0, 2+g.r.Intn(3); j < m; j++ {
								if g.r.Intn(2) == 0 {
									g.num(g.r.Intn(1e6))
								} else {
									g.str(g.ident())
								}
							}
						})
					}
				})
			}
		})
	})
	return g.buf.Bytes()
}

// genOpenFood: {"products": [...]} — O1 vitamins_tags, O2
// added_countries_tags, O3 specific_ingredients.*.ingredient; all rare.
func genOpenFood(target int, seed int64) []byte {
	g := newGen(seed)
	g.obj(func() {
		g.fieldNum("count", 1000)
		g.key("products")
		g.arr(func() {
			for g.len() < target {
				g.obj(func() {
					g.fieldStr("code", g.ident())
					g.fieldStr("product_name", g.words(3))
					g.fieldStr("brands", g.words(1))
					g.key("categories_tags")
					g.arr(func() {
						for i, n := 0, 1+g.r.Intn(4); i < n; i++ {
							g.str("en:" + g.ident())
						}
					})
					if g.r.Intn(500) == 0 { // O1
						g.key("vitamins_tags")
						g.arr(func() {
							g.str("en:vitamin-c")
							g.str("en:vitamin-d")
						})
					}
					if g.r.Intn(500) == 0 { // O2
						g.key("added_countries_tags")
						g.arr(func() { g.str("en:france") })
					}
					if g.r.Intn(1000) == 0 { // O3
						g.key("specific_ingredients")
						g.arr(func() {
							g.obj(func() {
								g.fieldStr("ingredient", "en:"+g.ident())
								g.fieldStr("text", g.words(4))
							})
						})
					}
					g.key("nutriments")
					g.obj(func() {
						g.fieldNum("energy", g.r.Intn(3000))
						g.key("fat")
						g.float(float64(g.r.Intn(1000)) / 10)
						g.key("sugars")
						g.float(float64(g.r.Intn(1000)) / 10)
					})
					g.fieldStr("ingredients_text", g.words(10))
				})
			}
		})
	})
	return g.buf.Bytes()
}

// genTwitter: root array of tweets — T1 $.*.entities.urls.*.url, T2 $.*.text;
// occasional retweeted_status nesting gives the depth of Table 3.
func genTwitter(target int, seed int64) []byte {
	g := newGen(seed)
	g.arr(func() {
		for g.len() < target {
			tweet(g, 2)
		}
	})
	return g.buf.Bytes()
}

func tweet(g *gen, nestBudget int) {
	g.obj(func() {
		g.fieldNum("id", g.r.Intn(1<<31))
		g.fieldStr("created_at", "Thu Jun 22 21:00:00 +0000 2023")
		g.fieldStr("text", g.words(8))
		g.key("user")
		g.obj(func() {
			g.fieldNum("id", g.r.Intn(1<<31))
			g.fieldStr("screen_name", g.ident())
			g.fieldStr("description", g.words(5))
			g.fieldNum("followers_count", g.r.Intn(1e6))
		})
		g.key("entities")
		g.obj(func() {
			g.key("hashtags")
			g.arr(func() {
				for i, n := 0, g.r.Intn(3); i < n; i++ {
					g.obj(func() {
						g.fieldStr("text", g.words(1))
						g.key("indices")
						g.arr(func() { g.num(0); g.num(7) })
					})
				}
			})
			g.key("urls")
			g.arr(func() {
				for i, n := 0, g.r.Intn(3); i < n; i++ {
					g.obj(func() {
						g.fieldStr("url", "https://t.co/"+g.ident())
						g.fieldStr("expanded_url", "https://example.com/"+g.ident())
						g.key("indices")
						g.arr(func() { g.num(10); g.num(33) })
					})
				}
			})
		})
		if nestBudget > 0 && g.r.Intn(4) == 0 {
			g.key("retweeted_status")
			tweet(g, nestBudget-1)
		}
		g.fieldNum("retweet_count", g.r.Intn(10000))
		g.key("favorited")
		g.boolean(false)
	})
}

// genTwitterSmall: the simdjson quick-start style file — Ts queries need
// "count" to occur exactly once, under search_metadata.
func genTwitterSmall(target int, seed int64) []byte {
	g := newGen(seed)
	g.obj(func() {
		g.key("statuses")
		g.arr(func() {
			for g.len() < target {
				tweet(g, 2)
			}
		})
		g.key("search_metadata")
		g.obj(func() {
			g.key("completed_in")
			g.float(0.087)
			g.fieldNum("max_id", g.r.Intn(1<<31))
			g.fieldStr("query", "%23golang")
			g.fieldNum("count", 100)
		})
	})
	return g.buf.Bytes()
}

// genWalmart: {"items": [...]} — W1 bestMarketplacePrice.price on ~6% of
// items, W2 $.items.*.name on all; long descriptions give the high
// verbosity of Table 3.
func genWalmart(target int, seed int64) []byte {
	g := newGen(seed)
	g.obj(func() {
		g.fieldNum("totalResults", 1<<18)
		g.key("items")
		g.arr(func() {
			for g.len() < target {
				g.obj(func() {
					g.fieldNum("itemId", g.r.Intn(1e8))
					g.fieldStr("name", g.words(5))
					g.key("salePrice")
					g.float(float64(g.r.Intn(100000)) / 100)
					if g.r.Intn(16) == 0 { // W1
						g.key("bestMarketplacePrice")
						g.obj(func() {
							g.key("price")
							g.float(float64(g.r.Intn(100000)) / 100)
							g.fieldStr("sellerInfo", g.words(2))
						})
					}
					g.fieldStr("shortDescription", g.words(25))
					g.fieldStr("longDescription", g.words(60))
					g.fieldStr("thumbnailImage", "https://i.example.com/"+g.ident()+".jpeg")
					g.fieldStr("category", g.words(2))
				})
			}
		})
	})
	return g.buf.Bytes()
}

// genWikimedia: root array of entities — Wi $.*.claims.P150.*.mainsnak.property
// with P150 on a minority of entities.
func genWikimedia(target int, seed int64) []byte {
	g := newGen(seed)
	g.arr(func() {
		for g.len() < target {
			g.obj(func() {
				g.fieldStr("id", "Q"+g.ident())
				g.fieldStr("type", "item")
				g.key("labels")
				g.obj(func() {
					g.key("en")
					g.obj(func() {
						g.fieldStr("language", "en")
						g.fieldStr("value", g.words(2))
					})
				})
				g.key("claims")
				g.obj(func() {
					g.key("P31")
					g.arr(func() {
						claim(g, "P31")
					})
					if g.r.Intn(12) == 0 { // Wi
						g.key("P150")
						g.arr(func() {
							for i, n := 0, 1+g.r.Intn(3); i < n; i++ {
								claim(g, "P150")
							}
						})
					}
				})
				g.key("sitelinks")
				g.obj(func() {
					g.key("enwiki")
					g.obj(func() {
						g.fieldStr("site", "enwiki")
						g.fieldStr("title", g.words(2))
					})
				})
			})
		}
	})
	return g.buf.Bytes()
}

func claim(g *gen, prop string) {
	g.obj(func() {
		g.key("mainsnak")
		g.obj(func() {
			g.fieldStr("snaktype", "value")
			g.fieldStr("property", prop)
			g.key("datavalue")
			g.obj(func() {
				g.key("value")
				g.obj(func() {
					g.fieldStr("entity-type", "item")
					g.fieldNum("numeric-id", g.r.Intn(1e7))
				})
				g.fieldStr("type", "wikibase-entityid")
			})
		})
		g.fieldStr("rank", "normal")
	})
}

// genCrossref: {"items": [...]} — C1 $..DOI (works and their references),
// C2/C2r author affiliations, C3/C3r rare editors, C4 titles, C5 ORCID;
// also the Experiment D scalability base.
func genCrossref(target int, seed int64) []byte {
	g := newGen(seed)
	g.obj(func() {
		g.fieldStr("status", "ok")
		g.key("items")
		g.arr(func() {
			for g.len() < target {
				g.obj(func() {
					g.fieldStr("DOI", "10.1000/"+g.ident())
					g.key("title")
					g.arr(func() { g.str(g.words(6)) })
					g.fieldStr("publisher", g.words(2))
					g.fieldStr("type", "journal-article")
					g.key("author")
					g.arr(func() {
						for i, n := 0, 1+g.r.Intn(4); i < n; i++ {
							g.obj(func() {
								g.fieldStr("given", g.words(1))
								g.fieldStr("family", g.words(1))
								g.fieldStr("sequence", "first")
								if g.r.Intn(5) == 0 { // C5
									g.fieldStr("ORCID", "http://orcid.org/0000-0002-"+g.ident())
								}
								g.key("affiliation")
								g.arr(func() {
									if g.r.Intn(3) == 0 { // C2, S*
										g.obj(func() {
											g.fieldStr("name", g.words(4)+" University")
										})
									}
								})
							})
						}
					})
					if g.r.Intn(1500) == 0 { // C3: rare editors
						g.key("editor")
						g.arr(func() {
							g.obj(func() {
								g.fieldStr("given", g.words(1))
								g.fieldStr("family", g.words(1))
								g.key("affiliation")
								g.arr(func() {
									g.obj(func() {
										g.fieldStr("name", g.words(3)+" Institute")
									})
								})
							})
						})
					}
					g.key("reference")
					g.arr(func() {
						for i, n := 0, 2+g.r.Intn(6); i < n; i++ {
							g.obj(func() {
								g.fieldStr("key", g.ident())
								if g.r.Intn(2) == 0 { // C1's extra DOIs
									g.fieldStr("DOI", "10.1000/"+g.ident())
								}
								g.fieldStr("unstructured", g.words(8))
							})
						}
					})
					g.key("issued")
					g.obj(func() {
						g.key("date-parts")
						g.arr(func() {
							g.arr(func() { g.num(1990 + g.r.Intn(35)) })
						})
					})
				})
			}
		})
	})
	return g.buf.Bytes()
}

// genAST: a clang-style abstract syntax tree — deep (target depth ~100) and
// irregular. A1 $..decl.name (very rare), A2 $..inner..inner..type.qualType,
// A3 $..loc.includedFrom.file (rare).
func genAST(target int, seed int64) []byte {
	g := newGen(seed)
	// depthBudget shapes the recursion: the first child of the spine keeps
	// most of the budget, so one path reaches ~100 levels of "inner" while
	// the bulk of the tree stays shallow — matching clang's output shape.
	var node func(budget int)
	kinds := []string{
		"FunctionDecl", "CompoundStmt", "DeclStmt", "VarDecl", "CallExpr",
		"ImplicitCastExpr", "DeclRefExpr", "BinaryOperator", "IfStmt",
		"ReturnStmt", "IntegerLiteral", "ParmVarDecl",
	}
	node = func(budget int) {
		g.obj(func() {
			g.fieldStr("id", fmt.Sprintf("%#x", g.r.Intn(1<<30)))
			g.fieldStr("kind", kinds[g.r.Intn(len(kinds))])
			g.key("loc")
			g.obj(func() {
				g.fieldNum("offset", g.r.Intn(1e6))
				g.fieldNum("line", g.r.Intn(23000))
				g.fieldNum("col", g.r.Intn(120))
				if g.r.Intn(300) == 0 { // A3
					g.key("includedFrom")
					g.obj(func() {
						g.fieldStr("file", "/usr/include/"+g.ident()+".h")
					})
				}
			})
			if g.r.Intn(3) != 0 { // A2: type.qualType on most nodes
				g.key("type")
				g.obj(func() {
					g.fieldStr("qualType", []string{"int", "char *", "void", "unsigned long", "double"}[g.r.Intn(5)])
				})
			}
			if g.r.Intn(4) == 0 {
				g.fieldStr("name", g.ident())
			}
			if g.r.Intn(800) == 0 { // A1: very rare decl.name
				g.key("decl")
				g.obj(func() {
					g.fieldStr("name", g.ident())
					g.fieldStr("kind", "FunctionDecl")
				})
			}
			if budget > 0 && g.len() < target {
				g.key("inner")
				g.arr(func() {
					// First child inherits the deep budget; siblings are
					// shallow.
					node(budget - 1)
					for i, n := 0, g.r.Intn(3); i < n && g.len() < target; i++ {
						node(min(budget-1, 3+g.r.Intn(4)))
					}
				})
			}
		})
	}
	g.obj(func() {
		g.fieldStr("id", "0x1")
		g.fieldStr("kind", "TranslationUnitDecl")
		g.key("inner")
		g.arr(func() {
			node(96) // one deep spine
			for g.len() < target {
				node(3 + g.r.Intn(8)) // shallow forest filling to size
			}
		})
	})
	return g.buf.Bytes()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
