package jsongen

import (
	"testing"

	"rsonpath/internal/dom"
	"rsonpath/internal/jsonpath"
)

// smallTarget keeps unit tests fast; generators overshoot a little.
const smallTarget = 64 * 1024

func generate(t *testing.T, name string) []byte {
	t.Helper()
	data, err := Generate(name, smallTarget, 1)
	if err != nil {
		t.Fatalf("Generate(%q): %v", name, err)
	}
	return data
}

func TestAllProfilesProduceValidJSON(t *testing.T) {
	for _, p := range Profiles() {
		data := generate(t, p.Name)
		if _, err := dom.Parse(data); err != nil {
			t.Errorf("%s: invalid JSON: %v", p.Name, err)
		}
		if len(data) < smallTarget {
			t.Errorf("%s: produced %d bytes, want >= %d", p.Name, len(data), smallTarget)
		}
		if len(data) > 4*smallTarget {
			t.Errorf("%s: overshoot to %d bytes", p.Name, len(data))
		}
	}
}

func TestGenerationDeterministic(t *testing.T) {
	for _, p := range Profiles() {
		a, _ := Generate(p.Name, smallTarget, 7)
		b, _ := Generate(p.Name, smallTarget, 7)
		if string(a) != string(b) {
			t.Errorf("%s: generation not deterministic", p.Name)
		}
		c, _ := Generate(p.Name, smallTarget, 8)
		if string(a) == string(c) {
			t.Errorf("%s: seed has no effect", p.Name)
		}
	}
}

func TestUnknownProfile(t *testing.T) {
	if _, err := Generate("nope", 0, 1); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName found nonexistent profile")
	}
}

func TestDefaultSizeUsed(t *testing.T) {
	// ast has the smallest default; generating with target 0 must use it.
	data, err := Generate("ast", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := ByName("ast")
	if len(data) < p.DefaultSize {
		t.Fatalf("default-size generation too small: %d < %d", len(data), p.DefaultSize)
	}
}

// queryCounts asserts that the benchmark queries find matches with the
// expected selectivity character on each dataset.
func queryCount(t *testing.T, data []byte, query string) int {
	t.Helper()
	root, err := dom.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	return len(dom.MatchOffsets(root, jsonpath.MustParse(query)))
}

func TestBestBuyQueriesMatch(t *testing.T) {
	data, _ := Generate("bestbuy", 512*1024, 1)
	ids := queryCount(t, data, "$.products.*.categoryPath.*.id")
	if ids == 0 {
		t.Error("B1 finds nothing")
	}
	chapters := queryCount(t, data, "$.products.*.videoChapters.*.chapter")
	if chapters == 0 {
		t.Error("B2 finds nothing (videoChapters too rare for this size)")
	}
	vc := queryCount(t, data, "$.products.*.videoChapters")
	if vc == 0 || vc > chapters {
		t.Errorf("B3=%d vs B2=%d: want 0 < B3 < B2", vc, chapters)
	}
	if r := queryCount(t, data, "$..categoryPath..id"); r != ids {
		t.Errorf("B1 rewriting disagrees: %d vs %d", r, ids)
	}
}

func TestGoogleMapQueriesMatch(t *testing.T) {
	data, _ := Generate("googlemap", 1<<20, 1)
	if queryCount(t, data, "$.*.routes.*.legs.*.steps.*.distance.text") == 0 {
		t.Error("G1 finds nothing")
	}
	if queryCount(t, data, "$..available_travel_modes") == 0 {
		t.Error("G2 finds nothing")
	}
}

func TestNSPLQueriesMatch(t *testing.T) {
	data, _ := Generate("nspl", 256*1024, 1)
	if queryCount(t, data, "$.meta.view.columns.*.name") != 44 {
		t.Error("N1 should find exactly 44 columns")
	}
	if queryCount(t, data, "$.data.*.*.*") == 0 {
		t.Error("N2 finds nothing")
	}
}

func TestTwitterQueriesMatch(t *testing.T) {
	data, _ := Generate("twitter", 256*1024, 1)
	if queryCount(t, data, "$.*.text") == 0 {
		t.Error("T2 finds nothing")
	}
	if queryCount(t, data, "$.*.entities.urls.*.url") == 0 {
		t.Error("T1 finds nothing")
	}
}

func TestTwitterSmallQueriesMatch(t *testing.T) {
	data, _ := Generate("twitter_small", 128*1024, 1)
	if queryCount(t, data, "$.search_metadata.count") != 1 {
		t.Error("Ts should find exactly one count")
	}
	if queryCount(t, data, "$..count") != 1 {
		t.Error("Ts3: count must occur exactly once in the document")
	}
	if queryCount(t, data, "$..hashtags..text") == 0 {
		t.Error("Ts4 finds nothing")
	}
	if queryCount(t, data, "$..retweeted_status..hashtags..text") == 0 {
		t.Error("Ts5 finds nothing")
	}
}

func TestWalmartQueriesMatch(t *testing.T) {
	data, _ := Generate("walmart", 512*1024, 1)
	names := queryCount(t, data, "$.items.*.name")
	prices := queryCount(t, data, "$.items.*.bestMarketplacePrice.price")
	if names == 0 || prices == 0 || prices >= names {
		t.Errorf("W2=%d W1=%d: want 0 < W1 < W2", names, prices)
	}
}

func TestWikimediaQueriesMatch(t *testing.T) {
	data, _ := Generate("wikimedia", 512*1024, 1)
	if queryCount(t, data, "$.*.claims.P150.*.mainsnak.property") == 0 {
		t.Error("Wi finds nothing")
	}
}

func TestCrossrefQueriesMatch(t *testing.T) {
	data, _ := Generate("crossref", 1<<20, 1)
	dois := queryCount(t, data, "$..DOI")
	items := queryCount(t, data, "$.items.*.title")
	if dois == 0 || items == 0 || dois <= items {
		t.Errorf("C1=%d C4=%d: references should multiply DOIs beyond items", dois, items)
	}
	aff := queryCount(t, data, "$.items.*.author.*.affiliation.*.name")
	affR := queryCount(t, data, "$..author..affiliation..name")
	if aff == 0 || aff != affR {
		t.Errorf("C2=%d C2r=%d: rewriting must agree", aff, affR)
	}
	ed := queryCount(t, data, "$.items.*.editor.*.affiliation.*.name")
	if ed >= aff {
		t.Errorf("C3=%d should be much rarer than C2=%d", ed, aff)
	}
}

func TestOpenFoodQueriesMatch(t *testing.T) {
	data, _ := Generate("openfood", 2<<20, 1)
	if queryCount(t, data, "$..vitamins_tags") == 0 {
		t.Error("O1 finds nothing")
	}
	if queryCount(t, data, "$..specific_ingredients..ingredient") == 0 {
		t.Error("O3 finds nothing")
	}
}

func TestASTShape(t *testing.T) {
	data := generate(t, "ast")
	stats, err := Measure(data)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's AST is 102 deep; the generated spine gives ~100 levels
	// of inner arrays (each level adds object+array, so well past 100).
	if stats.Depth < 90 {
		t.Errorf("AST depth %d, want >= 90", stats.Depth)
	}
	if queryCount(t, data, "$..inner..inner..type.qualType") == 0 {
		t.Error("A2 finds nothing")
	}
	if queryCount(t, data, "$..loc.includedFrom.file") == 0 {
		t.Error("A3 finds nothing")
	}
}

func TestMeasureVerbosityRanges(t *testing.T) {
	// Verbosity ordering should echo Table 3: walmart (verbose) well above
	// nspl (dense).
	w, err := Measure(generate(t, "walmart"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := Measure(generate(t, "nspl"))
	if err != nil {
		t.Fatal(err)
	}
	if w.Verbosity <= n.Verbosity {
		t.Errorf("verbosity walmart %.1f <= nspl %.1f", w.Verbosity, n.Verbosity)
	}
	if n.Depth < 4 || w.Depth < 3 {
		t.Errorf("depths suspicious: walmart %d, nspl %d", w.Depth, n.Depth)
	}
}

func TestMeasureRejectsInvalid(t *testing.T) {
	if _, err := Measure([]byte("{")); err == nil {
		t.Fatal("Measure accepted invalid JSON")
	}
}
