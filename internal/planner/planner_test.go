package planner

import "testing"

// Shapes used across the boundary tests.
var (
	chainShape = Shape{Selectors: 2, HasDescendant: true,
		LeadingDescendantLabel: true, DescendantChainOnly: true}
	headSkipShape = Shape{Selectors: 2, HasDescendant: true,
		LeadingDescendantLabel: true}
	childShape    = Shape{Selectors: 2}
	generalShape  = Shape{Selectors: 3, HasDescendant: true, HasWildcard: true}
	wildcardShape = Shape{Selectors: 1, HasWildcard: true}
)

func decide(t *testing.T, sh Shape, d DocStats, c Constraints, wantStrategy Strategy, wantRule string) {
	t.Helper()
	p := Decide(sh, d, c)
	if p.Strategy != wantStrategy || p.Rule != wantRule {
		t.Fatalf("Decide(%+v, %+v, %+v) = {%v %q}, want {%v %q}",
			sh, d, c, p.Strategy, p.Rule, wantStrategy, wantRule)
	}
	if p.Rationale == "" {
		t.Fatalf("rule %q has no rationale", p.Rule)
	}
}

// TestPlannerOff pins the off switch: the configured engine runs, the only
// remaining decision being the plane upgrade for an index in hand.
func TestPlannerOff(t *testing.T) {
	off := Constraints{PlannerOff: true, ForcedStrategy: StrategyHeadSkip}
	decide(t, chainShape, DocStats{}, off, StrategyHeadSkip, "planner-off")
	// Even with stats that would select stackless under auto.
	decide(t, chainShape, DocStats{DenseMatches: true}, off, StrategyHeadSkip, "planner-off")
	// An index in hand still serves the accelerated engine from the planes.
	decide(t, chainShape, DocStats{Indexed: true}, off, StrategyIndexed, "indexed-available")
	// Baseline engines have no plane surface, so no upgrade.
	offDOM := Constraints{PlannerOff: true, ForcedStrategy: StrategyDOM}
	decide(t, chainShape, DocStats{Indexed: true}, offDOM, StrategyDOM, "planner-off")
}

// TestForcedEngine pins WithEngine as a constraint, not a parallel path.
func TestForcedEngine(t *testing.T) {
	forced := Constraints{Forced: true, ForcedStrategy: StrategySurfer}
	decide(t, chainShape, DocStats{}, forced, StrategySurfer, "forced-engine")
	decide(t, chainShape, DocStats{Indexed: true}, forced, StrategySurfer, "forced-engine")
	// A forced accelerated engine upgrades to the planes: the plane-backed
	// run is the same engine fed from precomputed masks.
	acc := Constraints{Forced: true, ForcedStrategy: StrategyHeadSkip}
	decide(t, chainShape, DocStats{Indexed: true}, acc, StrategyIndexed, "indexed-available")
	// ...unless the watchdog needs the streaming path.
	accWD := Constraints{Forced: true, ForcedStrategy: StrategyHeadSkip, WatchdogArmed: true}
	decide(t, chainShape, DocStats{Indexed: true}, accWD, StrategyHeadSkip, "forced-engine")
}

// TestIndexedAvailable pins the warm path: an index in hand wins over every
// scan strategy, except under a watchdog deadline (the plane run is atomic).
func TestIndexedAvailable(t *testing.T) {
	decide(t, headSkipShape, DocStats{Indexed: true}, Constraints{},
		StrategyIndexed, "indexed-available")
	decide(t, chainShape, DocStats{Indexed: true, DenseMatches: true}, Constraints{},
		StrategyIndexed, "indexed-available")
	decide(t, headSkipShape, DocStats{Indexed: true}, Constraints{WatchdogArmed: true},
		StrategyHeadSkip, "watchdog-streams")
}

// TestIndexAmortizes pins the break-even boundary at IndexAmortizeRuns.
func TestIndexAmortizes(t *testing.T) {
	decide(t, childShape, DocStats{ExpectedRuns: IndexAmortizeRuns}, Constraints{},
		StrategyIndexed, "index-amortizes")
	decide(t, childShape, DocStats{ExpectedRuns: IndexAmortizeRuns - 1}, Constraints{},
		StrategySkip, "child-skipping")
	decide(t, generalShape, DocStats{ExpectedRuns: IndexAmortizeRuns}, Constraints{},
		StrategyIndexed, "index-amortizes")
	// A streamed document cannot be indexed: no bytes in memory to classify.
	decide(t, childShape, DocStats{Streaming: true, ExpectedRuns: 100}, Constraints{},
		StrategySkip, "child-skipping")
	// The watchdog blocks the atomic plane run the advice would lead to.
	decide(t, childShape, DocStats{ExpectedRuns: 100}, Constraints{WatchdogArmed: true},
		StrategySkip, "child-skipping")
	// Head-skip shapes never take the advice on sparse labels: memmem reads
	// raw bytes either way, so the build is never repaid (DESIGN.md §11)...
	decide(t, headSkipShape, DocStats{ExpectedRuns: 100}, Constraints{},
		StrategyHeadSkip, "head-skip")
	// ...but dense labels neutralize head-skip and the advice returns.
	decide(t, headSkipShape, DocStats{ExpectedRuns: IndexAmortizeRuns, DenseMatches: true},
		Constraints{}, StrategyIndexed, "index-amortizes")
	// An index already in hand is sunk cost: even head-skip serves from it.
	decide(t, headSkipShape, DocStats{Indexed: true}, Constraints{},
		StrategyIndexed, "indexed-available")
}

// TestStacklessRules pins when the depth-register automaton wins: pure
// descendant label chains with head-skip out of play — disabled by the
// caller, or neutralized by dense labels (EXPERIMENTS.md measurements).
func TestStacklessRules(t *testing.T) {
	decide(t, chainShape, DocStats{}, Constraints{NoHeadSkip: true},
		StrategyStackless, "stackless-registers")
	decide(t, chainShape, DocStats{DenseMatches: true}, Constraints{},
		StrategyStackless, "stackless-dense")
	// Sparse labels with head-skip available: the head-skip scan is measured
	// faster, so the chain stays on the accelerated engine.
	decide(t, chainShape, DocStats{}, Constraints{},
		StrategyHeadSkip, "head-skip")
	// Not a pure chain: the automaton does not support the query.
	decide(t, generalShape, DocStats{DenseMatches: true}, Constraints{},
		StrategyStandard, "depth-stack")
	decide(t, generalShape, DocStats{}, Constraints{NoHeadSkip: true},
		StrategyStandard, "depth-stack")
}

// TestScanFlavors pins the accelerated engine's flavor naming.
func TestScanFlavors(t *testing.T) {
	decide(t, headSkipShape, DocStats{}, Constraints{}, StrategyHeadSkip, "head-skip")
	decide(t, childShape, DocStats{}, Constraints{}, StrategySkip, "child-skipping")
	decide(t, wildcardShape, DocStats{}, Constraints{}, StrategySkip, "child-skipping")
	decide(t, generalShape, DocStats{}, Constraints{}, StrategyStandard, "depth-stack")
}

// TestDecideDeterministic: Decide is pure — the same triple yields the same
// plan, rationale included, which is what keeps Explain output stable.
func TestDecideDeterministic(t *testing.T) {
	d := DocStats{Bytes: 1 << 20, ExpectedRuns: 3}
	for _, sh := range []Shape{chainShape, headSkipShape, childShape, generalShape} {
		a := Decide(sh, d, Constraints{})
		for i := 0; i < 10; i++ {
			if b := Decide(sh, d, Constraints{}); b != a {
				t.Fatalf("Decide not deterministic: %+v vs %+v", a, b)
			}
		}
	}
}

// TestPredictRuns pins the serving layer's sighting→runs prediction and its
// interlock with ShouldIndex: the default promotion point is the second
// sighting, reproducing the daemon's historical seen-≥2 rule.
func TestPredictRuns(t *testing.T) {
	cases := []struct{ seen, want int }{
		{-1, 0}, {0, 0}, {1, IndexAmortizeRuns / 2}, {2, IndexAmortizeRuns}, {3, 12},
	}
	for _, c := range cases {
		if got := PredictRuns(c.seen); got != c.want {
			t.Fatalf("PredictRuns(%d) = %d, want %d", c.seen, got, c.want)
		}
	}
	if ShouldIndex(DocStats{ExpectedRuns: PredictRuns(1)}) {
		t.Fatal("one sighting should not promote")
	}
	if !ShouldIndex(DocStats{ExpectedRuns: PredictRuns(2)}) {
		t.Fatal("two sightings should promote")
	}
	if ShouldIndex(DocStats{ExpectedRuns: 100, Indexed: true}) {
		t.Fatal("already indexed: nothing to build")
	}
	if ShouldIndex(DocStats{ExpectedRuns: 100, Streaming: true}) {
		t.Fatal("streaming documents cannot be indexed")
	}
}

// TestStrategyNames pins the stable strategy vocabulary: metrics series and
// Explain output are built from these exact names.
func TestStrategyNames(t *testing.T) {
	want := map[Strategy]string{
		StrategyStandard: "standard", StrategySkip: "skip",
		StrategyHeadSkip: "head-skip", StrategyIndexed: "indexed",
		StrategyStackless: "stackless", StrategySki: "ski",
		StrategySurfer: "surfer", StrategyDOM: "dom",
	}
	if len(Strategies) != len(want) {
		t.Fatalf("Strategies has %d entries, want %d", len(Strategies), len(want))
	}
	seen := map[string]bool{}
	for _, s := range Strategies {
		name := s.String()
		if want[s] != name {
			t.Fatalf("strategy %d named %q, want %q", int(s), name, want[s])
		}
		if seen[name] {
			t.Fatalf("duplicate strategy name %q", name)
		}
		seen[name] = true
	}
}
