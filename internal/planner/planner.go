// Package planner is the execution-plan layer: it turns the shape of a
// compiled query, the run-time statistics of the document at hand, and the
// caller's resolved options into an ExecutionPlan — which execution
// strategy to run and why. Every public entry point of the library routes
// its dispatch through Decide, so the cold/warm/indexed decision the
// rsonpathd daemon makes for its clients is available to every library
// caller (DESIGN.md §13).
//
// The planner follows simdjson's "pick the cheapest mechanism per stage"
// design (Langdale & Lemire, PAPERS.md): each rule is a measured
// observation about when one mechanism beats another, never a guess. The
// rules and the measurements backing them:
//
//   - indexed: a document mask index serves classification — the dominant
//     cost of a run — from memory; warm runs are 3–5× faster than cold ones
//     and the build repays itself within ~IndexAmortizeRuns repeat queries
//     (BENCH_swar.json). Head-skip queries are excluded from the advice: a
//     sparse leading-label scan is dominated by memmem over raw bytes, which
//     an index cannot serve (DESIGN.md §11).
//   - stackless: for descendant-only label chains the depth-register
//     automaton (§3.2) beats the depth-stack simulation whenever head-skip
//     is not in play — either disabled by the caller (0.65 vs 0.54 GB/s on
//     Crossref, EXPERIMENTS.md) or useless because the sought label is
//     dense (≈1.5× on dense chains at every document size).
//   - head-skip: a leading descendant label on sparse documents is served
//     fastest by skipping straight to each occurrence (0.75 vs 0.65 GB/s
//     against stackless on Crossref).
//   - skip: child+wildcard-only queries use the engine's JSONSki-style
//     fast-forwarding repertoire (skip-children, skip-siblings).
//
// Decide is a pure function: the same (Shape, DocStats, Constraints)
// triple always produces the same Plan, which is what makes Explain output
// stable and the decision boundaries unit-testable.
package planner

import "fmt"

// Strategy is one execution mechanism the planner can select.
type Strategy int

const (
	// StrategyStandard is the accelerated engine's depth-stack simulation
	// with the full skipping repertoire — the paper's default configuration.
	StrategyStandard Strategy = iota
	// StrategySkip is the accelerated engine on a child+wildcard-only
	// query, where the JSONSki-style skip-children/skip-siblings
	// fast-forwards dominate (no descendant selector, so no head-skip).
	StrategySkip
	// StrategyHeadSkip is the accelerated engine on a query with a leading
	// descendant label: the engine skips straight to each occurrence of the
	// sought label instead of walking the document.
	StrategyHeadSkip
	// StrategyIndexed serves per-block classification from a prebuilt
	// document mask index (rsonpath.IndexedDocument) instead of re-running
	// the SWAR kernels.
	StrategyIndexed
	// StrategyStackless is the depth-register automaton of §3.2:
	// allocation-free, stack-free simulation for descendant-only label
	// chains.
	StrategyStackless
	// StrategySki is the JSONSki-analogue baseline engine (restricted
	// wildcard semantics; selected only when forced).
	StrategySki
	// StrategySurfer is the non-accelerated streaming baseline (selected
	// only when forced).
	StrategySurfer
	// StrategyDOM parses the document into a tree and evaluates
	// recursively — the reference oracle, and the only strategy that
	// supports path semantics.
	StrategyDOM
)

// String returns the stable strategy name used in Explain output, the
// daemon's /metrics and the CLI's -explain flag.
func (s Strategy) String() string {
	switch s {
	case StrategyStandard:
		return "standard"
	case StrategySkip:
		return "skip"
	case StrategyHeadSkip:
		return "head-skip"
	case StrategyIndexed:
		return "indexed"
	case StrategyStackless:
		return "stackless"
	case StrategySki:
		return "ski"
	case StrategySurfer:
		return "surfer"
	case StrategyDOM:
		return "dom"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// NumStrategies is the number of distinct strategies, sized for fixed
// per-strategy counter arrays.
const NumStrategies = 8

// Strategies lists every strategy in declaration order, for metrics
// renderers that emit one counter per kind.
var Strategies = [NumStrategies]Strategy{
	StrategyStandard, StrategySkip, StrategyHeadSkip, StrategyIndexed,
	StrategyStackless, StrategySki, StrategySurfer, StrategyDOM,
}

// IndexAmortizeRuns is the number of repeat runs over the same document at
// which building a mask index is predicted to have repaid its build cost.
// BENCH_swar.json: at n=8 repeat queries the indexed path is already ~2.3×
// faster than cold runs with the build included.
const IndexAmortizeRuns = 8

// Shape describes the compiled query in the terms the decision rules need.
// It is derived once at compile time from the parsed selectors.
type Shape struct {
	// Selectors is the number of query steps.
	Selectors int
	// HasDescendant reports any ..-selector.
	HasDescendant bool
	// HasWildcard reports any *-selector.
	HasWildcard bool
	// LeadingDescendantLabel reports that the first selector is a
	// descendant with at least one concrete label — the precondition of the
	// engine's head-skip.
	LeadingDescendantLabel bool
	// DescendantChainOnly reports a pure descendant label chain
	// ($..a..b.....z), the fragment the depth-register automaton supports.
	DescendantChainOnly bool
}

// DocStats carries what is known about the document (and the workload)
// at run time. The zero value means "nothing known" and always yields a
// safe plan.
type DocStats struct {
	// Bytes is the document size, 0 when unknown (streaming input).
	Bytes int
	// Streaming reports that the document arrives through a reader and is
	// never wholly in memory.
	Streaming bool
	// Indexed reports that a prebuilt IndexedDocument for these bytes is in
	// hand.
	Indexed bool
	// ExpectedRuns is the caller's prediction of how many runs this
	// document will serve in total (repeat queries, cache residency); 0
	// when unknown.
	ExpectedRuns int
	// DenseMatches is the caller's hint that the query's sought labels
	// occur densely in this document (most records contain them), which
	// neutralizes head-skip.
	DenseMatches bool
}

// Constraints is the part of the resolved compile options that binds the
// planner.
type Constraints struct {
	// Forced pins the strategy to ForcedStrategy: the caller chose an
	// engine with WithEngine, which the planner honors as a constraint
	// rather than running a parallel dispatch path.
	Forced bool
	// ForcedStrategy is the strategy of the forced engine.
	ForcedStrategy Strategy
	// PlannerOff disables the rules entirely (WithPlanner(PlannerOff)):
	// the plan is the configured engine, exactly as if it were forced.
	PlannerOff bool
	// NoHeadSkip reports the caller disabled head-skip
	// (WithOptimizations), which flips the best simulation strategy for
	// descendant-only chains.
	NoHeadSkip bool
	// WatchdogArmed reports a WithTimeout deadline: the plane-backed
	// indexed path is atomic and has no cancellation points, so it is
	// unavailable.
	WatchdogArmed bool
}

// Plan is the decision: a strategy, the stable identifier of the rule that
// selected it, and a human-readable rationale.
type Plan struct {
	Strategy  Strategy
	Rule      string
	Rationale string
}

// Decide maps (query shape × document stats × constraints) to a plan. It
// is pure and allocation-free apart from the rationale string.
func Decide(sh Shape, d DocStats, c Constraints) Plan {
	if c.PlannerOff {
		return upgradeIndexed(Plan{Strategy: c.ForcedStrategy, Rule: "planner-off",
			Rationale: "planner disabled; running the configured engine"}, d, c)
	}
	if c.Forced {
		return upgradeIndexed(Plan{Strategy: c.ForcedStrategy, Rule: "forced-engine",
			Rationale: "engine forced by WithEngine"}, d, c)
	}
	if d.Indexed {
		if c.WatchdogArmed {
			return Plan{Strategy: autoScan(sh), Rule: "watchdog-streams",
				Rationale: "watchdog deadline needs the streaming path's cancellation points; the atomic plane-backed run is unavailable"}
		}
		return Plan{Strategy: StrategyIndexed, Rule: "indexed-available",
			Rationale: "classification served from the prebuilt document mask index"}
	}
	if !d.Streaming && !c.WatchdogArmed && d.ExpectedRuns >= IndexAmortizeRuns &&
		(autoScan(sh) != StrategyHeadSkip || d.DenseMatches) {
		// Head-skip excluded: memmem reads raw document bytes either way, so
		// prebuilt planes never repay their build for a sparse leading-label
		// query (DESIGN.md §11). Dense labels neutralize head-skip, putting
		// classification back on the critical path where planes do pay.
		return Plan{Strategy: StrategyIndexed, Rule: "index-amortizes",
			Rationale: fmt.Sprintf("%d expected runs over the same document repay the one-time index build (break-even ~%d)",
				d.ExpectedRuns, IndexAmortizeRuns)}
	}
	if sh.DescendantChainOnly && c.NoHeadSkip {
		return Plan{Strategy: StrategyStackless, Rule: "stackless-registers",
			Rationale: "head-skip disabled; the depth-register automaton beats the depth-stack simulation on descendant-only chains"}
	}
	if sh.DescendantChainOnly && d.DenseMatches {
		return Plan{Strategy: StrategyStackless, Rule: "stackless-dense",
			Rationale: "sought labels are dense, so head-skip gains nothing; the allocation-free depth-register automaton is faster"}
	}
	p := Plan{Strategy: autoScan(sh)}
	switch p.Strategy {
	case StrategyHeadSkip:
		p.Rule, p.Rationale = "head-skip",
			"leading descendant label: skip straight to each occurrence of the sought label"
	case StrategySkip:
		p.Rule, p.Rationale = "child-skipping",
			"child/wildcard-only query: ski-style subtree and sibling fast-forwarding"
	default:
		p.Rule, p.Rationale = "depth-stack",
			"general query: depth-stack simulation with the full skipping repertoire"
	}
	return p
}

// autoScan names the accelerated engine's scan flavor for the query shape:
// the executing engine is the same, but the dominant skipping mechanism —
// what the plan reports — differs.
func autoScan(sh Shape) Strategy {
	switch {
	case sh.LeadingDescendantLabel:
		return StrategyHeadSkip
	case !sh.HasDescendant:
		return StrategySkip
	default:
		return StrategyStandard
	}
}

// upgradeIndexed lets a pinned accelerated engine still serve from an
// index in hand: WithEngine(EngineRsonpath) pins the engine, and the
// plane-backed run IS that engine fed from precomputed masks. Baseline
// engines have no plane surface and keep their pinned strategy.
func upgradeIndexed(p Plan, d DocStats, c Constraints) Plan {
	accelerated := p.Strategy == StrategyStandard || p.Strategy == StrategySkip ||
		p.Strategy == StrategyHeadSkip
	if d.Indexed && accelerated && !c.WatchdogArmed {
		return Plan{Strategy: StrategyIndexed, Rule: "indexed-available",
			Rationale: "classification served from the prebuilt document mask index"}
	}
	return p
}

// PredictRuns estimates the total future runs a document will serve from
// the number of times it has already been seen: repeat sightings are the
// strongest predictor of more to come (Zipfian request mixes), and a
// document seen twice is predicted to reach the index break-even point.
// The serving layer feeds this into DocStats.ExpectedRuns.
func PredictRuns(priorRuns int) int {
	if priorRuns <= 0 {
		return 0
	}
	return priorRuns * IndexAmortizeRuns / 2
}

// ShouldIndex reports whether building a mask index for the document is
// predicted to amortize — the library-side form of the promotion decision
// the daemon's document cache used to make with an ad-hoc seen-count rule.
func ShouldIndex(d DocStats) bool {
	return !d.Streaming && !d.Indexed && d.ExpectedRuns >= IndexAmortizeRuns
}
