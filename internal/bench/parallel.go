package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"

	"rsonpath"
)

// ParallelSpec is one JSON Lines worker-pool workload: a descendant-heavy
// query over an NDJSON stream of records, swept across pool widths and
// compared against the sequential RunLines scan of the same stream.
type ParallelSpec struct {
	// ID keys the workload.
	ID string
	// Dataset is the jsongen profile whose top-level items become the
	// NDJSON records.
	Dataset string
	// Query is evaluated against every record.
	Query string
	// Workers are the pool widths to sweep; 0 is replaced by GOMAXPROCS.
	Workers []int
}

// ParallelSpecs is the worker-pool sweep: the paper's Experiment D query
// applied record-wise (the streaming regime of the introduction), where
// each record is an independent document and the pool's only job is to
// overlap their classification passes.
var ParallelSpecs = []ParallelSpec{
	{"PL", "crossref", "$..affiliation..name", []int{1, 2, 4, 0}},
}

// ParallelResult is one parallel-lines measurement, serialisable as a
// BENCH_parallel_lines.json record. Workers 0 is the sequential RunLines
// baseline; every other row is the pool at that width, with Speedup
// relative to the baseline.
type ParallelResult struct {
	ID      string  `json:"id"`
	Dataset string  `json:"dataset"`
	Query   string  `json:"query"`
	Workers int     `json:"workers"`
	Records int     `json:"records"`
	Bytes   int     `json:"bytes"`
	Matches int     `json:"matches"`
	Seconds float64 `json:"seconds"`
	GBps    float64 `json:"gbps"`
	Speedup float64 `json:"speedup"`
}

// linesDataset converts a generated dataset's top-level items into an
// NDJSON stream, one compacted record per line.
func (h *Harness) linesDataset(name string) ([]byte, int, error) {
	data, err := h.Dataset(name)
	if err != nil {
		return nil, 0, err
	}
	q, err := rsonpath.Compile("$.items[*]")
	if err != nil {
		return nil, 0, err
	}
	vals, err := q.MatchValues(data)
	if err != nil {
		return nil, 0, err
	}
	var buf bytes.Buffer
	for _, v := range vals {
		if err := json.Compact(&buf, v); err != nil {
			return nil, 0, err
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes(), len(vals), nil
}

// RunParallelLines measures every workload sequentially and at each pool
// width. All runs must agree on the total match count; a mismatch is an
// error, not a benchmark result.
func (h *Harness) RunParallelLines(specs []ParallelSpec) ([]ParallelResult, error) {
	var out []ParallelResult
	for _, spec := range specs {
		nd, records, err := h.linesDataset(spec.Dataset)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.ID, err)
		}
		q, err := rsonpath.Compile(spec.Query)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.ID, err)
		}
		countLines := func(run func(visit func(m rsonpath.LineMatch) error) error) (int, error) {
			n := 0
			err := run(func(m rsonpath.LineMatch) error {
				if m.Err != nil {
					return m.Err
				}
				n += len(m.Offsets)
				return nil
			})
			return n, err
		}

		seq, err := h.MeasureFunc(len(nd), func() (int, error) {
			return countLines(func(v func(m rsonpath.LineMatch) error) error {
				return q.RunLines(bytes.NewReader(nd), v)
			})
		})
		if err != nil {
			return nil, fmt.Errorf("%s sequential: %w", spec.ID, err)
		}
		row := func(workers int, r Result) ParallelResult {
			p := ParallelResult{
				ID: spec.ID, Dataset: spec.Dataset, Query: spec.Query,
				Workers: workers, Records: records, Bytes: len(nd),
				Matches: r.Matches, Seconds: r.Mean.Seconds(), GBps: r.GBps,
			}
			if p.Seconds > 0 {
				p.Speedup = seq.Mean.Seconds() / p.Seconds
			}
			return p
		}
		out = append(out, row(0, seq))

		seen := map[int]bool{}
		for _, w := range spec.Workers {
			if w <= 0 {
				w = runtime.GOMAXPROCS(0)
			}
			if seen[w] {
				continue
			}
			seen[w] = true
			w := w
			par, err := h.MeasureFunc(len(nd), func() (int, error) {
				return countLines(func(v func(m rsonpath.LineMatch) error) error {
					return q.RunLinesParallel(bytes.NewReader(nd), w, v)
				})
			})
			if err != nil {
				return nil, fmt.Errorf("%s workers=%d: %w", spec.ID, w, err)
			}
			if par.Matches != seq.Matches {
				return nil, fmt.Errorf("%s workers=%d: %d matches, sequential %d",
					spec.ID, w, par.Matches, seq.Matches)
			}
			out = append(out, row(w, par))
		}
	}
	return out, nil
}
