package bench

import (
	"math/rand"
	"time"

	"rsonpath/internal/classifier"
	"rsonpath/internal/simd"
)

// Table2Row reports the cost of classifying one 64-byte block with the
// naive method (one comparison per accepted value) for a given number of
// accepted values, next to the lookup-table method — the reproduction of
// the paper's Table 2 trade-off (there in cycles, here in ns/block).
type Table2Row struct {
	Values         int
	NaiveNsPerBlk  float64
	LookupNsPerBlk float64
	LookupStrategy string
}

// RunTable2 measures naive-vs-lookup classification cost for the paper's
// value counts.
func RunTable2() []Table2Row {
	counts := []int{1, 2, 3, 4, 5, 6, 7, 8, 16}
	blocks := randomBlocks(1 << 12)
	var out []Table2Row
	for _, k := range counts {
		accepted := make(map[byte]bool, k)
		for i := 0; i < k; i++ {
			// Spread values over distinct upper/lower nibbles to exercise
			// realistic group structure.
			accepted[byte(0x20+i*0x11)] = true
		}
		f := func(b byte) bool { return accepted[b] }
		naive := classifier.BuildNaive(f)
		lookup := classifier.BuildRaw(f)
		out = append(out, Table2Row{
			Values:         k,
			NaiveNsPerBlk:  timeClassifier(naive, blocks),
			LookupNsPerBlk: timeClassifier(lookup, blocks),
			LookupStrategy: lookup.Strategy().String(),
		})
	}
	return out
}

func randomBlocks(n int) []simd.Block {
	r := rand.New(rand.NewSource(9))
	blocks := make([]simd.Block, n)
	for i := range blocks {
		for j := range blocks[i] {
			blocks[i][j] = byte(r.Intn(256))
		}
	}
	return blocks
}

// Sink defeats dead-code elimination in the micro benchmarks.
var Sink uint64

func timeClassifier(c *classifier.RawClassifier, blocks []simd.Block) float64 {
	// One warm-up pass, then three timed passes; report the best to reduce
	// scheduler noise, as micro benchmarks conventionally do.
	pass := func() time.Duration {
		start := time.Now()
		for i := range blocks {
			Sink ^= c.Classify(&blocks[i])
		}
		return time.Since(start)
	}
	pass()
	best := pass()
	for i := 0; i < 2; i++ {
		if d := pass(); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / float64(len(blocks))
}
