// Package bench is the measurement harness behind cmd/rsonbench and the
// repository's testing.B benchmarks. It reproduces the paper's methodology
// (§5.1): per-query warm-up followed by several timed samples over an
// in-memory document, reported as mean throughput.
package bench

// Spec is one benchmark query, keyed like the paper's Appendix C.
type Spec struct {
	// ID is the paper's query identifier (B1, C2r, Ts, ...).
	ID string
	// Experiment tags the figure/table the query belongs to:
	// "A" (Table 4 / Figure 4), "B" (Table 5 / Figure 5),
	// "C" (Table 6 / Figure 6), "O" (Appendix C extras).
	Experiment string
	// Dataset is the jsongen profile name.
	Dataset string
	// Query is the JSONPath expression.
	Query string
	// RewritingOf names the original query this one rewrites with
	// descendants ("" for originals).
	RewritingOf string
	// PaperCount is the match count the paper reports (on the full-size
	// original dataset; ours differ by scale and synthesis).
	PaperCount int
}

// Specs lists every query of the evaluation, in Appendix C order.
var Specs = []Spec{
	{"A1", "C", "ast", "$..decl.name", "", 35},
	{"A2", "C", "ast", "$..inner..inner..type.qualType", "", 78129},
	{"A3", "O", "ast", "$..loc.includedFrom.file", "", 482},

	{"B1", "A", "bestbuy", "$.products.*.categoryPath.*.id", "", 697440},
	{"B1r", "B", "bestbuy", "$..categoryPath..id", "B1", 697440},
	{"B2", "A", "bestbuy", "$.products.*.videoChapters.*.chapter", "", 8857},
	{"B2r", "B", "bestbuy", "$..videoChapters..chapter", "B2", 8857},
	{"B3", "A", "bestbuy", "$.products.*.videoChapters", "", 769},
	{"B3r", "B", "bestbuy", "$..videoChapters", "B3", 769},

	{"C1", "C", "crossref", "$..DOI", "", 1073589},
	{"C2", "C", "crossref", "$.items.*.author.*.affiliation.*.name", "", 64495},
	{"C2r", "C", "crossref", "$..author..affiliation..name", "C2", 64495},
	{"C3", "C", "crossref", "$.items.*.editor.*.affiliation.*.name", "", 39},
	{"C3r", "C", "crossref", "$..editor..affiliation..name", "C3", 39},
	{"C4", "O", "crossref", "$.items.*.title", "", 93407},
	{"C4r", "O", "crossref", "$..title", "C4", 93407},
	{"C5", "O", "crossref", "$.items.*.author.*.ORCID", "", 18401},
	{"C5r", "O", "crossref", "$..author..ORCID", "C5", 18401},

	{"G1", "A", "googlemap", "$.*.routes.*.legs.*.steps.*.distance.text", "", 1716752},
	{"G2", "A", "googlemap", "$.*.available_travel_modes", "", 90},
	{"G2r", "B", "googlemap", "$..available_travel_modes", "G2", 90},

	{"N1", "A", "nspl", "$.meta.view.columns.*.name", "", 44},
	{"N2", "A", "nspl", "$.data.*.*.*", "", 8774410},

	{"O1", "O", "openfood", "$.products.*.vitamins_tags", "", 24},
	{"O1r", "O", "openfood", "$..vitamins_tags", "O1", 24},
	{"O2", "O", "openfood", "$.products.*.added_countries_tags", "", 24},
	{"O2r", "O", "openfood", "$..added_countries_tags", "O2", 24},
	{"O3", "O", "openfood", "$.products.*.specific_ingredients.*.ingredient", "", 5},
	{"O3r", "O", "openfood", "$..specific_ingredients..ingredient", "O3", 5},

	{"T1", "A", "twitter", "$.*.entities.urls.*.url", "", 88881},
	{"T2", "A", "twitter", "$.*.text", "", 150135},

	{"Ts", "C", "twitter_small", "$.search_metadata.count", "", 1},
	{"Tsr", "C", "twitter_small", "$..count", "Ts", 1},
	{"Tsp", "C", "twitter_small", "$..search_metadata.count", "Ts", 1},
	{"Ts4", "O", "twitter_small", "$..hashtags..text", "", 1},
	{"Ts5", "O", "twitter_small", "$..retweeted_status..hashtags..text", "", 1},

	{"W1", "A", "walmart", "$.items.*.bestMarketplacePrice.price", "", 15892},
	{"W1r", "B", "walmart", "$..bestMarketplacePrice.price", "W1", 15892},
	{"W2", "A", "walmart", "$.items.*.name", "", 272499},
	{"W2r", "B", "walmart", "$..name", "W2", 272499},

	{"Wi", "A", "wikimedia", "$.*.claims.P150.*.mainsnak.property", "", 15603},
	{"Wir", "B", "wikimedia", "$..P150..mainsnak.property", "Wi", 15603},
}

// SpecByID finds a query spec.
func SpecByID(id string) (Spec, bool) {
	for _, s := range Specs {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// ExperimentSpecs returns the specs tagged with the given experiment.
func ExperimentSpecs(exp string) []Spec {
	var out []Spec
	for _, s := range Specs {
		if s.Experiment == exp {
			out = append(out, s)
		}
	}
	return out
}
