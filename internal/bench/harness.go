package bench

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"rsonpath"
	"rsonpath/internal/jsongen"
)

// Harness generates datasets on demand, caches them, and measures query
// throughput following the paper's methodology (§5.1): warm-up iterations
// to fill caches, then timed samples whose mean yields the reported
// throughput.
type Harness struct {
	// SizeFactor scales every dataset's default size (1.0 = DESIGN.md's
	// defaults, which are ~1/64 of the paper's). Benchmarks in tests use a
	// smaller factor.
	SizeFactor float64
	// Samples is the number of timed runs per measurement.
	Samples int
	// Warmup is the number of untimed runs before measuring.
	Warmup int
	// Seed feeds the dataset generators.
	Seed int64

	mu    sync.Mutex
	cache map[string][]byte
}

// NewHarness returns a harness with the paper-shaped defaults.
func NewHarness() *Harness {
	return &Harness{SizeFactor: 1.0, Samples: 5, Warmup: 1, Seed: 42}
}

// Dataset returns the named dataset at the harness scale, cached.
func (h *Harness) Dataset(name string) ([]byte, error) {
	return h.DatasetScaled(name, 1.0)
}

// DatasetScaled returns the named dataset scaled by an extra factor on top
// of the harness factor (Experiment D uses this).
func (h *Harness) DatasetScaled(name string, extra float64) ([]byte, error) {
	p, ok := jsongen.ByName(name)
	if !ok {
		return nil, fmt.Errorf("bench: unknown dataset %q", name)
	}
	target := int(float64(p.DefaultSize) * h.SizeFactor * extra)
	key := fmt.Sprintf("%s@%d", name, target)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.cache == nil {
		h.cache = make(map[string][]byte)
	}
	if d, ok := h.cache[key]; ok {
		return d, nil
	}
	d, err := jsongen.Generate(name, target, h.Seed)
	if err != nil {
		return nil, err
	}
	h.cache[key] = d
	return d, nil
}

// Result is one measurement.
type Result struct {
	ID      string
	Dataset string
	Query   string
	Engine  string
	Bytes   int
	Matches int
	Mean    time.Duration
	StdDev  time.Duration
	// GBps is mean throughput in gigabytes (1e9) per second, the unit of
	// the paper's figures.
	GBps float64
	// Unsupported marks engine/query combinations outside the engine's
	// fragment (JSONSki with descendants), rendered as missing bars.
	Unsupported bool
}

// ErrUnsupported marks engine/query pairs outside the engine's fragment.
var ErrUnsupported = errors.New("bench: unsupported engine/query combination")

// MeasureFunc times f (which returns a match count) per the harness
// configuration.
func (h *Harness) MeasureFunc(bytes int, f func() (int, error)) (Result, error) {
	var res Result
	res.Bytes = bytes
	for i := 0; i < h.Warmup; i++ {
		if _, err := f(); err != nil {
			return res, err
		}
	}
	samples := make([]float64, h.Samples)
	for i := range samples {
		start := time.Now()
		n, err := f()
		samples[i] = time.Since(start).Seconds()
		if err != nil {
			return res, err
		}
		res.Matches = n
	}
	mean := 0.0
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	variance := 0.0
	for _, s := range samples {
		variance += (s - mean) * (s - mean)
	}
	if len(samples) > 1 {
		variance /= float64(len(samples) - 1)
	}
	res.Mean = time.Duration(mean * float64(time.Second))
	res.StdDev = time.Duration(math.Sqrt(variance) * float64(time.Second))
	if mean > 0 {
		res.GBps = float64(bytes) / mean / 1e9
	}
	return res, nil
}

// RunSpec measures one query on one engine.
func (h *Harness) RunSpec(spec Spec, kind rsonpath.EngineKind) (Result, error) {
	data, err := h.Dataset(spec.Dataset)
	if err != nil {
		return Result{}, err
	}
	q, err := rsonpath.Compile(spec.Query, rsonpath.WithEngine(kind))
	if errors.Is(err, rsonpath.ErrUnsupportedQuery) {
		return Result{ID: spec.ID, Dataset: spec.Dataset, Query: spec.Query,
			Engine: kind.String(), Unsupported: true}, nil
	}
	if err != nil {
		return Result{}, err
	}
	res, err := h.MeasureFunc(len(data), func() (int, error) { return q.Count(data) })
	if err != nil {
		return Result{}, err
	}
	res.ID, res.Dataset, res.Query, res.Engine = spec.ID, spec.Dataset, spec.Query, kind.String()
	return res, nil
}

// RunSpecOptimized measures the accelerated engine with specific
// optimization toggles (the ablation experiment).
func (h *Harness) RunSpecOptimized(spec Spec, opt rsonpath.Optimizations, label string) (Result, error) {
	data, err := h.Dataset(spec.Dataset)
	if err != nil {
		return Result{}, err
	}
	// Planner off: the ablation measures the configured toggles, and the
	// planner would otherwise reroute NoHeadSkip chains to stackless.
	q, err := rsonpath.Compile(spec.Query,
		rsonpath.WithOptimizations(opt), rsonpath.WithPlanner(rsonpath.PlannerOff))
	if err != nil {
		return Result{}, err
	}
	res, err := h.MeasureFunc(len(data), func() (int, error) { return q.Count(data) })
	if err != nil {
		return Result{}, err
	}
	res.ID, res.Dataset, res.Query, res.Engine = spec.ID, spec.Dataset, spec.Query, label
	return res, nil
}

// Engines used across the comparative experiments.
var Engines = []rsonpath.EngineKind{
	rsonpath.EngineRsonpath,
	rsonpath.EngineSki,
	rsonpath.EngineSurfer,
}

// RunGrid measures the given specs on all engines (Appendix C's grid).
func (h *Harness) RunGrid(specs []Spec) ([]Result, error) {
	var out []Result
	for _, spec := range specs {
		for _, kind := range Engines {
			r, err := h.RunSpec(spec, kind)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", spec.ID, kind, err)
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// ScalabilityPoint is one Experiment D measurement.
type ScalabilityPoint struct {
	SizeBytes int
	GBps      float64
	Matches   int
}

// RunScalability reproduces Experiment D (Table 7): the query
// $..affiliation..name over Crossref fragments of increasing size.
func (h *Harness) RunScalability(factors []float64) ([]ScalabilityPoint, error) {
	q, err := rsonpath.Compile("$..affiliation..name")
	if err != nil {
		return nil, err
	}
	var out []ScalabilityPoint
	for _, f := range factors {
		data, err := h.DatasetScaled("crossref", f)
		if err != nil {
			return nil, err
		}
		res, err := h.MeasureFunc(len(data), func() (int, error) { return q.Count(data) })
		if err != nil {
			return nil, err
		}
		out = append(out, ScalabilityPoint{SizeBytes: len(data), GBps: res.GBps, Matches: res.Matches})
	}
	return out, nil
}

// RunStackless compares the §3.2 simulation strategies — full engine,
// depth-stack-only (head-skip off), and depth-register stackless — on a
// descendant-only chain.
func (h *Harness) RunStackless() ([]Result, error) {
	spec := Spec{ID: "S2", Dataset: "crossref", Query: "$..affiliation..name"}
	data, err := h.Dataset(spec.Dataset)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		label string
		q     *rsonpath.Query
		err   error
	}{}
	add := func(label string, q *rsonpath.Query, err error) {
		variants = append(variants, struct {
			label string
			q     *rsonpath.Query
			err   error
		}{label, q, err})
	}
	// Planner off on the first two variants: this experiment compares the
	// simulation strategies directly, and under planner-auto the NoHeadSkip
	// variant would itself be rerouted to the depth-register automaton.
	q1, err1 := rsonpath.Compile(spec.Query, rsonpath.WithPlanner(rsonpath.PlannerOff))
	add("engine", q1, err1)
	q2, err2 := rsonpath.Compile(spec.Query,
		rsonpath.WithOptimizations(rsonpath.Optimizations{NoHeadSkip: true}),
		rsonpath.WithPlanner(rsonpath.PlannerOff))
	add("depth-stack-only", q2, err2)
	q3, err3 := rsonpath.Compile(spec.Query, rsonpath.WithEngine(rsonpath.EngineStackless))
	add("depth-registers", q3, err3)

	var out []Result
	for _, v := range variants {
		if v.err != nil {
			return nil, v.err
		}
		res, err := h.MeasureFunc(len(data), func() (int, error) { return v.q.Count(data) })
		if err != nil {
			return nil, err
		}
		res.ID, res.Dataset, res.Query, res.Engine = spec.ID, spec.Dataset, spec.Query, v.label
		out = append(out, res)
	}
	return out, nil
}

// Table3Row is one dataset-characteristics row.
type Table3Row struct {
	Name  string
	Stats jsongen.Stats
}

// RunTable3 measures the generated datasets' characteristics.
func (h *Harness) RunTable3() ([]Table3Row, error) {
	var out []Table3Row
	for _, p := range jsongen.Profiles() {
		data, err := h.Dataset(p.Name)
		if err != nil {
			return nil, err
		}
		st, err := jsongen.Measure(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		out = append(out, Table3Row{Name: p.Name, Stats: st})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// AblationVariants are the engine configurations of the ablation study.
var AblationVariants = []struct {
	Label string
	Opt   rsonpath.Optimizations
}{
	{"full", rsonpath.Optimizations{}},
	{"no-headskip", rsonpath.Optimizations{NoHeadSkip: true}},
	{"no-skip-children", rsonpath.Optimizations{NoSkipChildren: true}},
	{"no-skip-siblings", rsonpath.Optimizations{NoSkipSiblings: true}},
	{"no-skip-leaves", rsonpath.Optimizations{NoSkipLeaves: true}},
	{"no-skipping", rsonpath.Optimizations{
		NoHeadSkip: true, NoSkipChildren: true, NoSkipSiblings: true, NoSkipLeaves: true,
	}},
	{"+tail-skip", rsonpath.Optimizations{TailSkip: true}},
}

// RunAblation measures the accelerated engine's variants on the given
// specs.
func (h *Harness) RunAblation(specs []Spec) ([]Result, error) {
	var out []Result
	for _, spec := range specs {
		for _, v := range AblationVariants {
			r, err := h.RunSpecOptimized(spec, v.Opt, v.Label)
			if err != nil {
				return nil, fmt.Errorf("%s (%s): %w", spec.ID, v.Label, err)
			}
			out = append(out, r)
		}
	}
	return out, nil
}
