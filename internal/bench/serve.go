package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"text/tabwriter"
	"time"

	"rsonpath"
	"rsonpath/internal/jsongen"
	"rsonpath/internal/loadgen"
	"rsonpath/internal/server"
)

// serveDocBytes is the target document size for the cache scenarios: small
// enough that per-request fixed costs (HTTP, compile) are a visible share
// of the latency, large enough that the engine does real scanning.
const serveDocBytes = 64 << 10

// serveRepeatDocBytes is the target size for the repeated-document
// scenarios: large enough that the classification pass a warm index skips
// stands clear of HTTP round-trip jitter.
const serveRepeatDocBytes = 512 << 10

// serveColdQueries is the pool of distinct query texts used to defeat the
// compiled-query cache in the cold scenario; the hot scenario reuses one of
// them so both scenarios perform the same head-skip scan.
const serveColdQueries = 32

// ServeHTTPStat is one end-to-end request-latency measurement against a
// live daemon.
type ServeHTTPStat struct {
	Name string `json:"name"`
	// Requests is the number of requests timed per sample.
	Requests int `json:"requests"`
	// MeanMicros is the mean end-to-end latency of one request.
	MeanMicros float64 `json:"mean_micros"`
}

// ServeReport is the serving experiment's machine-readable record
// (BENCH_serve.json).
type ServeReport struct {
	// DocBytes sizes the cache-scenario document, RepeatDocBytes the larger
	// one behind the repeated-document scenarios.
	DocBytes       int `json:"doc_bytes"`
	RepeatDocBytes int `json:"repeat_doc_bytes"`
	// ColdCompileMicros is the library-level cost of compiling one query
	// from scratch; CacheHitMicros the cost of fetching the same query from
	// a warm QueryCache. CacheSpeedup is their ratio.
	ColdCompileMicros float64 `json:"cold_compile_micros"`
	CacheHitMicros    float64 `json:"cache_hit_micros"`
	CacheSpeedup      float64 `json:"cache_speedup"`
	// HTTP holds the end-to-end scenarios: cold (every request compiles),
	// hot (every request hits the query cache), and indexed (hot query plus
	// a promoted document index) against its unindexed control.
	HTTP []ServeHTTPStat `json:"http"`
	// Load is a concurrent load-generator run against the hot path.
	Load loadgen.Report `json:"load"`
}

// serveDataset returns a crossref slice of roughly target bytes regardless
// of the harness scale factor.
func (h *Harness) serveDataset(target int) ([]byte, error) {
	p, ok := jsongen.ByName("crossref")
	if !ok {
		return nil, fmt.Errorf("bench: crossref profile missing")
	}
	extra := float64(target) / (float64(p.DefaultSize) * h.SizeFactor)
	return h.DatasetScaled("crossref", extra)
}

// coldQuery returns the i-th member of the distinct-query pool. The head
// label varies only in its numeric suffix, so every pool member performs
// the same never-matching head-skip scan and differs from its siblings only
// in cache identity. The deep descendant tail exists to make compilation
// (NFA determinization) expensive enough to resolve against HTTP round-trip
// noise in the end-to-end scenarios.
func coldQuery(i int) string {
	return fmt.Sprintf("$..affiliation%03d..b..c..d..e..f..g..h", i)
}

// RunServe measures the rsonpathd serving path: compiled-query cache hit
// versus cold compile (library-level and end-to-end over a real listener),
// the promoted document index versus unindexed evaluation, and a concurrent
// load-generator run.
func (h *Harness) RunServe() (ServeReport, error) {
	var rep ServeReport
	doc, err := h.serveDataset(serveDocBytes)
	if err != nil {
		return rep, err
	}
	repeatDoc, err := h.serveDataset(serveRepeatDocBytes)
	if err != nil {
		return rep, err
	}
	rep.DocBytes = len(doc)
	rep.RepeatDocBytes = len(repeatDoc)

	// Library level: compile from scratch vs warm cache fetch, over the same
	// query pool. The pool cycles so neither side benefits from residency in
	// CPU caches more than the other.
	queries := make([]string, serveColdQueries)
	for i := range queries {
		queries[i] = coldQuery(i)
	}
	cold, err := h.MeasureFunc(0, func() (int, error) {
		for _, q := range queries {
			if _, err := rsonpath.Compile(q); err != nil {
				return 0, err
			}
		}
		return len(queries), nil
	})
	if err != nil {
		return rep, err
	}
	cache := rsonpath.NewQueryCache(serveColdQueries * 2)
	for _, q := range queries {
		if _, err := cache.Get(q); err != nil {
			return rep, err
		}
	}
	hit, err := h.MeasureFunc(0, func() (int, error) {
		for _, q := range queries {
			if _, err := cache.Get(q); err != nil {
				return 0, err
			}
		}
		return len(queries), nil
	})
	if err != nil {
		return rep, err
	}
	rep.ColdCompileMicros = cold.Mean.Seconds() * 1e6 / serveColdQueries
	rep.CacheHitMicros = hit.Mean.Seconds() * 1e6 / serveColdQueries
	if rep.CacheHitMicros > 0 {
		rep.CacheSpeedup = rep.ColdCompileMicros / rep.CacheHitMicros
	}

	// End to end: one daemon with the document cache on, one control with it
	// off, both on loopback.
	base, stop, err := startServeDaemon(server.Config{Timeout: 10 * time.Second, DocCacheSize: 64, DocCacheAfter: 2})
	if err != nil {
		return rep, err
	}
	defer stop()
	ctrlBase, ctrlStop, err := startServeDaemon(server.Config{Timeout: 10 * time.Second, DocCacheSize: 0})
	if err != nil {
		return rep, err
	}
	defer ctrlStop()

	client := &http.Client{Timeout: 30 * time.Second}
	defer client.CloseIdleConnections()

	// Cold: a query text the daemon has never seen, every request. The
	// query-cache capacity (256 default) exceeds the pool, so purge pressure
	// comes from rotating a per-sample nonce into the text instead.
	nonce := 0
	coldHTTP, err := h.measureServeHTTP(client, ctrlBase, len(doc), serveColdQueries, func(i int) string {
		nonce++
		return fmt.Sprintf("$..affiliation%03d_%d..b..c..d..e..f..g..h", i, nonce)
	}, doc)
	if err != nil {
		return rep, fmt.Errorf("cold scenario: %w", err)
	}
	coldHTTP.Name = "cold_compile"
	rep.HTTP = append(rep.HTTP, coldHTTP)

	// Hot: one pool member repeated; after the first request every fetch is
	// a query-cache hit. Runs against the control daemon (doc cache off) so
	// it differs from cold only in cache identity.
	hotQuery := coldQuery(0)
	if err := primeServe(client, ctrlBase, hotQuery, doc); err != nil {
		return rep, err
	}
	hotHTTP, err := h.measureServeHTTP(client, ctrlBase, len(doc), serveColdQueries, func(int) string { return hotQuery }, doc)
	if err != nil {
		return rep, fmt.Errorf("hot scenario: %w", err)
	}
	hotHTTP.Name = "query_cache_hit"
	rep.HTTP = append(rep.HTTP, hotHTTP)

	// Indexed: a matching query over the same repeated document; the daemon
	// with the document cache promotes it to a mask index, the control scans
	// from scratch each time. Child-chain/wildcard shape on purpose: that is
	// the classification-dominated regime where a warm index pays (§11); a
	// head-skip descendant query would spend its time in memmem either way.
	matching := "$.items.*.author.*.affiliation.*.name"
	for _, prime := range []string{base, ctrlBase} {
		for i := 0; i < 3; i++ { // past DocCacheAfter on the cached daemon
			if err := primeServe(client, prime, matching, repeatDoc); err != nil {
				return rep, err
			}
		}
	}
	unindexed, err := h.measureServeHTTP(client, ctrlBase, len(repeatDoc), 8, func(int) string { return matching }, repeatDoc)
	if err != nil {
		return rep, fmt.Errorf("unindexed scenario: %w", err)
	}
	unindexed.Name = "repeat_doc_unindexed"
	rep.HTTP = append(rep.HTTP, unindexed)
	indexed, err := h.measureServeHTTP(client, base, len(repeatDoc), 8, func(int) string { return matching }, repeatDoc)
	if err != nil {
		return rep, fmt.Errorf("indexed scenario: %w", err)
	}
	indexed.Name = "repeat_doc_indexed"
	rep.HTTP = append(rep.HTTP, indexed)

	// Concurrent load against the hot path, measured by the same client the
	// CI smoke uses.
	load, err := loadgen.Run(context.Background(), loadgen.Config{
		URL:         base + "/v1/query",
		Query:       matching,
		Mode:        "count",
		Document:    doc,
		Concurrency: 4,
		Requests:    64 * h.Samples,
	})
	if err != nil {
		return rep, fmt.Errorf("load run: %w", err)
	}
	rep.Load = load
	return rep, nil
}

// startServeDaemon boots a loopback daemon and returns its base URL and a
// stop func.
func startServeDaemon(cfg server.Config) (string, func(), error) {
	cfg.Addr = "127.0.0.1:0"
	srv := server.New(cfg)
	if err := srv.Listen(); err != nil {
		return "", nil, err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	}
	return "http://" + srv.Addr().String(), stop, nil
}

// primeServe issues one request and discards the response.
func primeServe(client *http.Client, base, query string, doc []byte) error {
	resp, err := client.Post(base+"/v1/query?query="+url.QueryEscape(query)+"&mode=count", "application/octet-stream", bytes.NewReader(doc))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("prime request: HTTP %d", resp.StatusCode)
	}
	return nil
}

// measureServeHTTP times requestsPerSample sequential requests, each with
// the query produced by queryFor, and reports the mean per-request latency.
// The raw-document form keeps the request body identical across scenarios.
func (h *Harness) measureServeHTTP(client *http.Client, base string, docBytes, requestsPerSample int, queryFor func(i int) string, doc []byte) (ServeHTTPStat, error) {
	res, err := h.MeasureFunc(docBytes*requestsPerSample, func() (int, error) {
		for i := 0; i < requestsPerSample; i++ {
			if err := primeServe(client, base, queryFor(i), doc); err != nil {
				return 0, err
			}
		}
		return requestsPerSample, nil
	})
	if err != nil {
		return ServeHTTPStat{}, err
	}
	return ServeHTTPStat{
		Requests:   requestsPerSample,
		MeanMicros: res.Mean.Seconds() * 1e6 / float64(requestsPerSample),
	}, nil
}

// RenderServe prints the serving experiment.
func RenderServe(w io.Writer, rep ServeReport) {
	fmt.Fprintf(w, "documents: %d bytes (cache scenarios), %d bytes (repeat scenarios)\n",
		rep.DocBytes, rep.RepeatDocBytes)
	fmt.Fprintf(w, "compile cold %.1fµs  cache hit %.3fµs  (%.0fx)\n",
		rep.ColdCompileMicros, rep.CacheHitMicros, rep.CacheSpeedup)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\treq/sample\tmean latency")
	for _, s := range rep.HTTP {
		fmt.Fprintf(tw, "%s\t%d\t%.0fµs\n", s.Name, s.Requests, s.MeanMicros)
	}
	tw.Flush()
	fmt.Fprintf(w, "load: %d requests, c=4: %.0f req/s, p50 %.2fms p99 %.2fms, errors %d, non-200 %d, degraded %d\n",
		rep.Load.Requests, rep.Load.Throughput, rep.Load.LatencyP50MS, rep.Load.LatencyP99MS,
		rep.Load.Errors, rep.Load.NonOK, rep.Load.Degraded)
}
