package bench

import (
	"bytes"
	"strings"
	"testing"

	"rsonpath"
)

// tiny returns a harness small enough for unit tests.
func tiny() *Harness {
	h := NewHarness()
	h.SizeFactor = 0.02
	h.Samples = 1
	h.Warmup = 0
	return h
}

func TestSpecsCompileAndResolve(t *testing.T) {
	for _, s := range Specs {
		if _, err := rsonpath.Compile(s.Query); err != nil {
			t.Errorf("%s: %v", s.ID, err)
		}
		if s.RewritingOf != "" {
			if _, ok := SpecByID(s.RewritingOf); !ok {
				t.Errorf("%s: rewriting of unknown %q", s.ID, s.RewritingOf)
			}
		}
	}
	if _, ok := SpecByID("nope"); ok {
		t.Error("SpecByID found nonexistent id")
	}
}

func TestSpecIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Specs {
		if seen[s.ID] {
			t.Errorf("duplicate spec id %s", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestExperimentTagsCoverFiguresAndTables(t *testing.T) {
	for _, exp := range []string{"A", "B", "C"} {
		if len(ExperimentSpecs(exp)) == 0 {
			t.Errorf("experiment %s has no specs", exp)
		}
	}
}

func TestRewritingsAgreeWithOriginals(t *testing.T) {
	// The match count of every rewriting must equal its original's —
	// the paper's Tables 4/5 invariant — on our datasets too.
	h := tiny()
	for _, s := range Specs {
		if s.RewritingOf == "" {
			continue
		}
		orig, _ := SpecByID(s.RewritingOf)
		if orig.Dataset != s.Dataset {
			t.Fatalf("%s rewrites %s across datasets", s.ID, orig.ID)
		}
		data, err := h.Dataset(s.Dataset)
		if err != nil {
			t.Fatal(err)
		}
		a, err := rsonpath.MustCompile(orig.Query).Count(data)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rsonpath.MustCompile(s.Query).Count(data)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s (%d) disagrees with %s (%d) on %s", s.ID, b, orig.ID, a, s.Dataset)
		}
	}
}

func TestEnginesAgreeOnAllSpecs(t *testing.T) {
	// Cross-engine differential test at benchmark scale: every engine that
	// supports a query must return the same count.
	h := tiny()
	for _, s := range Specs {
		data, err := h.Dataset(s.Dataset)
		if err != nil {
			t.Fatal(err)
		}
		var want int
		base, err := rsonpath.Compile(s.Query, rsonpath.WithEngine(rsonpath.EngineSurfer))
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		want, err = base.Count(data)
		if err != nil {
			t.Fatalf("%s surfer: %v", s.ID, err)
		}
		for _, kind := range []rsonpath.EngineKind{rsonpath.EngineRsonpath, rsonpath.EngineSki} {
			q, err := rsonpath.Compile(s.Query, rsonpath.WithEngine(kind))
			if err == rsonpath.ErrUnsupportedQuery {
				continue
			}
			if err != nil {
				t.Fatalf("%s %v: %v", s.ID, kind, err)
			}
			got, err := q.Count(data)
			if err != nil {
				t.Fatalf("%s %v: %v", s.ID, kind, err)
			}
			if got != want {
				t.Errorf("%s: %v counts %d, surfer counts %d", s.ID, kind, got, want)
			}
		}
	}
}

func TestRunSpecAndGrid(t *testing.T) {
	h := tiny()
	spec, _ := SpecByID("W2")
	r, err := h.RunSpec(spec, rsonpath.EngineRsonpath)
	if err != nil {
		t.Fatal(err)
	}
	if r.Matches == 0 || r.GBps <= 0 || r.Engine != "rsonpath" {
		t.Fatalf("suspicious result %+v", r)
	}
	// JSONSki rejects descendants: Unsupported, not an error.
	rw, _ := SpecByID("W2r")
	r, err = h.RunSpec(rw, rsonpath.EngineSki)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Unsupported {
		t.Fatal("ski should report W2r unsupported")
	}

	results, err := h.RunGrid([]Spec{spec, rw})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2*len(Engines) {
		t.Fatalf("grid size %d", len(results))
	}
}

func TestScalability(t *testing.T) {
	h := tiny()
	points, err := h.RunScalability([]float64{0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].SizeBytes >= points[1].SizeBytes {
		t.Fatalf("points %+v", points)
	}
	if points[1].Matches <= points[0].Matches {
		t.Errorf("larger dataset should have more matches: %+v", points)
	}
}

func TestTable3(t *testing.T) {
	h := tiny()
	rows, err := h.RunTable3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows, want 10 datasets", len(rows))
	}
	var buf bytes.Buffer
	RenderTable3(&buf, rows, h)
	if !strings.Contains(buf.String(), "verbosity") {
		t.Error("render missing header")
	}
}

func TestTable2Micro(t *testing.T) {
	rows := RunTable2()
	if len(rows) != 9 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.NaiveNsPerBlk <= 0 || r.LookupNsPerBlk <= 0 {
			t.Fatalf("degenerate timing %+v", r)
		}
	}
	// The naive method must degrade with the value count (Table 2's whole
	// point); allow generous noise.
	if rows[len(rows)-1].NaiveNsPerBlk < rows[0].NaiveNsPerBlk {
		t.Errorf("naive cost did not grow: %v -> %v",
			rows[0].NaiveNsPerBlk, rows[len(rows)-1].NaiveNsPerBlk)
	}
	var buf bytes.Buffer
	RenderTable2(&buf, rows)
	if !strings.Contains(buf.String(), "naive") {
		t.Error("render missing header")
	}
}

func TestAblation(t *testing.T) {
	h := tiny()
	spec, _ := SpecByID("B1r")
	results, err := h.RunAblation([]Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(AblationVariants) {
		t.Fatalf("%d results", len(results))
	}
	// All variants must agree on the match count.
	for _, r := range results[1:] {
		if r.Matches != results[0].Matches {
			t.Errorf("variant %s count %d != full %d", r.Engine, r.Matches, results[0].Matches)
		}
	}
	var buf bytes.Buffer
	RenderAblation(&buf, results)
	if !strings.Contains(buf.String(), "no-headskip") {
		t.Error("render missing variants")
	}
}

func TestRenderFigureAndGrid(t *testing.T) {
	h := tiny()
	spec, _ := SpecByID("Ts")
	results, err := h.RunGrid([]Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderFigure(&buf, "test", results)
	if !strings.Contains(buf.String(), "GB/s") {
		t.Error("figure missing throughput")
	}
	buf.Reset()
	RenderGrid(&buf, results)
	if !strings.Contains(buf.String(), "Ts") {
		t.Error("grid missing row")
	}
}

func TestSemanticsRender(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderSemantics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `node semantics (this engine): ["A", "B", "C", "D"]`) {
		t.Errorf("node semantics line wrong:\n%s", out)
	}
	// Path semantics yields six results (C and D twice).
	if strings.Count(out, `"C"`) < 3 { // one in node line, two in path line
		t.Errorf("path semantics duplicates missing:\n%s", out)
	}
}

func TestDatasetCacheAndErrors(t *testing.T) {
	h := tiny()
	a, err := h.Dataset("walmart")
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Dataset("walmart")
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("dataset not cached")
	}
	if _, err := h.Dataset("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestStacklessComparison(t *testing.T) {
	h := tiny()
	results, err := h.RunStackless()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	for _, r := range results[1:] {
		if r.Matches != results[0].Matches {
			t.Errorf("%s count %d != engine %d", r.Engine, r.Matches, results[0].Matches)
		}
	}
}
