package bench

import (
	"strings"
	"testing"

	"rsonpath/internal/simd"
)

// TestCheckSimd pins the acceptance gate's verdicts on synthetic reports.
func TestCheckSimd(t *testing.T) {
	row := func(dataset, backend string, batch, planes float64) SWARKernelResult {
		return SWARKernelResult{
			Dataset: dataset, Backend: backend,
			BatchKernelGBps: batch, BuildPlanesGBps: planes,
		}
	}
	cases := []struct {
		name    string
		kernels []SWARKernelResult
		wantErr string
	}{
		{"no hardware backend", []SWARKernelResult{row("a", "swar", 1, 0.6)}, ""},
		{"clears both floors", []SWARKernelResult{
			row("a", "swar", 1, 0.6), row("a", "avx2", 10, 2),
		}, ""},
		{"batch below floor", []SWARKernelResult{
			row("a", "swar", 1, 0.6), row("a", "avx2", 2, 2),
		}, "batch kernel"},
		{"planes below floor", []SWARKernelResult{
			row("a", "swar", 1, 1), row("a", "avx2", 10, 1.2),
		}, "plane build"},
		{"one dataset of two fails", []SWARKernelResult{
			row("a", "swar", 1, 0.6), row("a", "avx2", 10, 2),
			row("b", "swar", 1, 0.6), row("b", "avx2", 2.4, 2),
		}, "batch kernel"},
	}
	for _, tc := range cases {
		err := CheckSimd(SWARReport{Kernels: tc.kernels})
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error = %v, want mention of %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestRunSWARKernelsPerBackendRows asserts the experiment emits one row per
// available backend per dataset and restores the active backend.
func TestRunSWARKernelsPerBackendRows(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a dataset")
	}
	h := NewHarness()
	h.SizeFactor = 0.02
	h.Samples = 1
	before := simd.Backend()
	rows, err := h.RunSWARKernels([]string{"ast"})
	if err != nil {
		t.Fatal(err)
	}
	if got := simd.Backend(); got != before {
		t.Fatalf("RunSWARKernels left backend %q, started with %q", got, before)
	}
	want := simd.Backends()
	if len(rows) != len(want) {
		t.Fatalf("%d rows for %d backends: %+v", len(rows), len(want), rows)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Backend] = true
		if r.BatchKernelGBps <= 0 || r.BuildPlanesGBps <= 0 {
			t.Errorf("backend %s: non-positive throughput: %+v", r.Backend, r)
		}
	}
	for _, name := range want {
		if !seen[name] {
			t.Errorf("no row for backend %s", name)
		}
	}
}
