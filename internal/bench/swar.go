package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"rsonpath"
	"rsonpath/internal/classifier"
	"rsonpath/internal/simd"
)

// SWARKernelResult compares batched against per-block classification over
// one dataset under one kernel backend, at two levels: the raw-mask kernels
// alone (BatchRawMasks vs a loop of the per-block kernels producing the
// same six masks) and the full plane build (BuildPlanes vs a per-block
// Stream walk serving the same information). One row is emitted per
// available backend — on an AVX2 host both the native row and the
// forced-SWAR row, so the hardware kernels' margin is measured on the same
// machine. Serialised into BENCH_swar.json.
type SWARKernelResult struct {
	Dataset string `json:"dataset"`
	// Backend is the simd backend forced for this row's batch kernel and
	// plane build ("swar", "avx2", ...).
	Backend string `json:"backend"`
	Bytes   int    `json:"bytes"`
	// Raw-mask kernels: six masks per block, no quote carry. The per-block
	// baseline always runs the portable word-at-a-time kernels, whatever
	// the forced backend, so it anchors every row to the same yardstick.
	BatchKernelGBps    float64 `json:"batch_kernel_gbps"`
	PerBlockKernelGBps float64 `json:"per_block_kernel_gbps"`
	KernelSpeedup      float64 `json:"kernel_speedup"`
	// Full classification: quote carry and in-string masking included.
	BuildPlanesGBps float64 `json:"build_planes_gbps"`
	StreamWalkGBps  float64 `json:"stream_walk_gbps"`
	PlanesSpeedup   float64 `json:"planes_speedup"`
}

// Acceptance floors for CheckSimd: on a host with hardware kernels, the
// hardware batch sweep must beat forced SWAR by SimdKernelFloor and the
// whole plane build by SimdPlanesFloor (the build amortises the sequential
// quote-carry pass, which no backend can vectorize, hence the lower bar).
const (
	SimdKernelFloor = 2.5
	SimdPlanesFloor = 1.5
)

// IndexedRepeatResult compares N cold Query.Run passes against N warm
// RunIndexed passes over one prebuilt index, the IndexedDocument headline
// number. Serialised into BENCH_swar.json.
type IndexedRepeatResult struct {
	Dataset string `json:"dataset"`
	N       int    `json:"n"`
	Bytes   int    `json:"bytes"`
	Matches int    `json:"matches"`
	// ColdSeconds is N Query.Run passes over the raw bytes.
	ColdSeconds float64 `json:"cold_seconds"`
	// WarmSeconds is N Query.RunIndexed passes over a prebuilt index.
	WarmSeconds float64 `json:"warm_seconds"`
	// IndexSeconds is one Index build (amortised over every later run).
	IndexSeconds float64 `json:"index_seconds"`
	// Speedup is ColdSeconds / WarmSeconds; SpeedupWithBuild charges the
	// index build to the warm side.
	Speedup          float64 `json:"speedup"`
	SpeedupWithBuild float64 `json:"speedup_with_build"`
}

// SWARReport is the BENCH_swar.json payload.
type SWARReport struct {
	// Backend is the backend active outside forced rows — what every other
	// experiment and production run on this host uses.
	Backend string `json:"backend"`
	// Backends lists every backend available on the recording host.
	Backends      []string              `json:"backends"`
	Kernels       []SWARKernelResult    `json:"kernels"`
	IndexedRepeat []IndexedRepeatResult `json:"indexed_repeat"`
}

// IndexedRepeatQueries is the repeated-query workload over the Crossref
// dataset: child-chain and index selectors whose runs are dominated by
// classification and structural skipping, the costs an index amortises.
// (A head-skip query like $..vitamins_tags spends its time in memmem, which
// reads raw bytes either way — indexing cannot help it; see DESIGN.md §11.)
// The N=1/8/32 workloads take prefixes.
var IndexedRepeatQueries = []string{
	"$.items.*.DOI",
	"$.items.*.title",
	"$.items.*.type",
	"$.items.*.publisher",
	"$.items.*.author.*.given",
	"$.items.*.author.*.family",
	"$.items.*.author.*.affiliation.*.name",
	"$.items.*.reference.*.key",
	"$.items.*.author.*.ORCID",
	"$.items.*.author.*.sequence",
	"$.items.*.reference.*.DOI",
	"$.items.*.reference.*.unstructured",
	"$.items.*.editor.*.name",
	"$.items.*.editor.*.affiliation.*.name",
	"$.items.*.issued.date-parts",
	"$.items.*.title[0]",
	"$.items[0].DOI",
	"$.items[1].DOI",
	"$.items[2].title",
	"$.items[3].publisher",
	"$.items[4].author.*.given",
	"$.items[5].author.*.family",
	"$.items[6].reference.*.key",
	"$.items[7].type",
	"$.items[8].DOI",
	"$.items[9].title",
	"$.items[10].author.*.affiliation.*.name",
	"$.items[11].issued.date-parts",
	"$.items[12].publisher",
	"$.items[13].reference.*.DOI",
	"$.items[14].author.*.ORCID",
	"$.items[15].DOI",
}

// timeGBps measures f over best-of-passes wall time, the micro-benchmark
// convention timeClassifier also follows: on a shared machine the minimum,
// not the mean, estimates the undisturbed cost of a pure CPU kernel. One
// extra untimed pass warms the caches.
func timeGBps(bytes, passes int, f func()) float64 {
	one := func() time.Duration {
		start := time.Now()
		f()
		return time.Since(start)
	}
	f()
	best := one()
	for i := 1; i < passes; i++ {
		if d := one(); d < best {
			best = d
		}
	}
	if best <= 0 {
		return 0
	}
	return float64(bytes) / best.Seconds() / 1e9
}

// RunSWARKernels measures batched vs per-block classification throughput
// over the given datasets, once per kernel backend available on this host
// (each backend is forced for its rows and the previous one restored).
func (h *Harness) RunSWARKernels(datasets []string) ([]SWARKernelResult, error) {
	passes := h.Samples
	if passes < 3 {
		passes = 3
	}
	prev := simd.Backend()
	defer func() { _ = simd.SetBackend(prev) }()
	var out []SWARKernelResult
	for _, name := range datasets {
		data, err := h.Dataset(name)
		if err != nil {
			return nil, err
		}
		n := len(data) / simd.BlockSize
		planes := make([][]uint64, 6)
		for i := range planes {
			planes[i] = make([]uint64, n)
		}

		// The per-block baseline and the stream walk run the portable
		// word-at-a-time kernels regardless of the forced backend; measure
		// them once per dataset and anchor every backend row to them.
		perBlock := timeGBps(len(data), passes, func() {
			var b simd.Block
			for i := 0; i < n; i++ {
				simd.LoadBlock(&b, data[i*simd.BlockSize:(i+1)*simd.BlockSize], ' ')
				backslash, quote := simd.CmpEq8Pair(&b, '\\', '"')
				opens, closes := simd.BracketMasks(&b)
				commas := simd.CmpEq8(&b, ',')
				colons := simd.CmpEq8(&b, ':')
				planes[0][i], planes[1][i] = backslash, quote
				planes[2][i], planes[3][i] = opens, closes
				planes[4][i], planes[5][i] = commas, colons
			}
			if n > 0 {
				Sink ^= planes[1][n/2]
			}
		})
		streamWalk := timeGBps(len(data), passes, func() {
			s := classifier.NewStream(data)
			for !s.Exhausted() {
				opens, closes := simd.BracketMasks(s.Block())
				commas := simd.CmpEq8(s.Block(), ',')
				colons := simd.CmpEq8(s.Block(), ':')
				notStr := ^s.InString()
				Sink ^= s.QuoteMask() ^ (opens&notStr | closes&notStr) ^ commas&notStr ^ colons&notStr
				if !s.Advance() {
					break
				}
			}
		})

		for _, backend := range simd.Backends() {
			if err := simd.SetBackend(backend); err != nil {
				return nil, fmt.Errorf("swar: forcing backend %s: %w", backend, err)
			}
			r := SWARKernelResult{
				Dataset:            name,
				Backend:            backend,
				Bytes:              len(data),
				PerBlockKernelGBps: perBlock,
				StreamWalkGBps:     streamWalk,
			}
			r.BatchKernelGBps = timeGBps(len(data), passes, func() {
				blocks := simd.BatchRawMasks(data, planes[0], planes[1], planes[2], planes[3], planes[4], planes[5])
				if blocks > 0 {
					Sink ^= planes[1][blocks/2]
				}
			})
			r.BuildPlanesGBps = timeGBps(len(data), passes, func() {
				p := classifier.BuildPlanes(data)
				if p.Blocks() > 0 {
					Sink ^= p.Quote[p.Blocks()/2]
				}
			})
			if r.PerBlockKernelGBps > 0 {
				r.KernelSpeedup = r.BatchKernelGBps / r.PerBlockKernelGBps
			}
			if r.StreamWalkGBps > 0 {
				r.PlanesSpeedup = r.BuildPlanesGBps / r.StreamWalkGBps
			}
			out = append(out, r)
		}
		if err := simd.SetBackend(prev); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// CheckSimd is the acceptance gate over the kernel rows (run by CI next to
// CheckPlanner and CheckOverload): for every dataset measured under both a
// hardware backend and forced SWAR on the same host, the hardware batch
// kernel must be at least SimdKernelFloor times the SWAR batch kernel and
// the hardware plane build at least SimdPlanesFloor times the SWAR build.
// On hosts with no hardware backend there is nothing to compare and the
// gate passes.
func CheckSimd(rep SWARReport) error {
	type pair struct{ swar, hw *SWARKernelResult }
	byDataset := map[string]*pair{}
	for i := range rep.Kernels {
		r := &rep.Kernels[i]
		p := byDataset[r.Dataset]
		if p == nil {
			p = &pair{}
			byDataset[r.Dataset] = p
		}
		if r.Backend == "swar" {
			p.swar = r
		} else {
			p.hw = r
		}
	}
	var bad []string
	for dataset, p := range byDataset {
		if p.swar == nil || p.hw == nil {
			continue // single-backend host: nothing to gate
		}
		if p.swar.BatchKernelGBps > 0 {
			if ratio := p.hw.BatchKernelGBps / p.swar.BatchKernelGBps; ratio < SimdKernelFloor {
				bad = append(bad, fmt.Sprintf(
					"%s: %s batch kernel is only %.2f× swar (%.2f vs %.2f GB/s), floor %.1f×",
					dataset, p.hw.Backend, ratio, p.hw.BatchKernelGBps, p.swar.BatchKernelGBps, SimdKernelFloor))
			}
		}
		if p.swar.BuildPlanesGBps > 0 {
			if ratio := p.hw.BuildPlanesGBps / p.swar.BuildPlanesGBps; ratio < SimdPlanesFloor {
				bad = append(bad, fmt.Sprintf(
					"%s: %s plane build is only %.2f× swar (%.2f vs %.2f GB/s), floor %.1f×",
					dataset, p.hw.Backend, ratio, p.hw.BuildPlanesGBps, p.swar.BuildPlanesGBps, SimdPlanesFloor))
			}
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("simd acceptance failed:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

// RunIndexedRepeat measures the repeated-query workload at each N: the cold
// side runs each query with Query.Run over the raw bytes, the warm side
// with Query.RunIndexed over one prebuilt IndexedDocument. Both sides must
// agree on the total match count.
func (h *Harness) RunIndexedRepeat(dataset string, ns []int) ([]IndexedRepeatResult, error) {
	data, err := h.Dataset(dataset)
	if err != nil {
		return nil, err
	}
	queries := make([]*rsonpath.Query, len(IndexedRepeatQueries))
	for i, src := range IndexedRepeatQueries {
		if queries[i], err = rsonpath.Compile(src); err != nil {
			return nil, fmt.Errorf("swar: %s: %w", src, err)
		}
	}

	var out []IndexedRepeatResult
	for _, n := range ns {
		if n > len(queries) {
			return nil, fmt.Errorf("swar: N=%d exceeds the %d-query workload", n, len(queries))
		}
		batch := queries[:n]

		indexRes, err := h.MeasureFunc(len(data), func() (int, error) {
			doc, err := rsonpath.Index(data)
			if err != nil {
				return 0, err
			}
			Sink ^= uint64(doc.Len())
			return 0, nil
		})
		if err != nil {
			return nil, err
		}
		doc, err := rsonpath.Index(data)
		if err != nil {
			return nil, err
		}

		cold, err := h.MeasureFunc(n*len(data), func() (int, error) {
			total := 0
			for _, q := range batch {
				c, err := q.Count(data)
				if err != nil {
					return 0, err
				}
				total += c
			}
			return total, nil
		})
		if err != nil {
			return nil, err
		}
		warm, err := h.MeasureFunc(n*len(data), func() (int, error) {
			total := 0
			for _, q := range batch {
				c, err := q.CountIndexed(doc)
				if err != nil {
					return 0, err
				}
				total += c
			}
			return total, nil
		})
		if err != nil {
			return nil, err
		}
		if cold.Matches != warm.Matches {
			return nil, fmt.Errorf("swar N=%d: cold found %d matches, warm %d",
				n, cold.Matches, warm.Matches)
		}

		r := IndexedRepeatResult{
			Dataset:      dataset,
			N:            n,
			Bytes:        len(data),
			Matches:      cold.Matches,
			ColdSeconds:  cold.Mean.Seconds(),
			WarmSeconds:  warm.Mean.Seconds(),
			IndexSeconds: indexRes.Mean.Seconds(),
		}
		if r.WarmSeconds > 0 {
			r.Speedup = r.ColdSeconds / r.WarmSeconds
		}
		if amortised := r.WarmSeconds + r.IndexSeconds; amortised > 0 {
			r.SpeedupWithBuild = r.ColdSeconds / amortised
		}
		out = append(out, r)
	}
	return out, nil
}

// RenderSWAR prints the report as aligned text tables.
func RenderSWAR(w io.Writer, rep SWARReport) {
	fmt.Fprintf(w, "active simd backend: %s (available: %s)\n",
		rep.Backend, strings.Join(rep.Backends, ", "))
	fmt.Fprintf(w, "%-10s %-8s %10s | %12s %12s %8s | %12s %12s %8s\n",
		"dataset", "backend", "MiB", "batch GB/s", "blk GB/s", "speedup", "planes GB/s", "walk GB/s", "speedup")
	for _, r := range rep.Kernels {
		fmt.Fprintf(w, "%-10s %-8s %10.1f | %12.2f %12.2f %7.2fx | %12.2f %12.2f %7.2fx\n",
			r.Dataset, r.Backend, float64(r.Bytes)/(1<<20),
			r.BatchKernelGBps, r.PerBlockKernelGBps, r.KernelSpeedup,
			r.BuildPlanesGBps, r.StreamWalkGBps, r.PlanesSpeedup)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %4s %9s | %10s %10s %10s | %8s %8s\n",
		"dataset", "N", "matches", "cold s", "warm s", "index s", "speedup", "w/build")
	for _, r := range rep.IndexedRepeat {
		fmt.Fprintf(w, "%-10s %4d %9d | %10.4f %10.4f %10.4f | %7.2fx %7.2fx\n",
			r.Dataset, r.N, r.Matches,
			r.ColdSeconds, r.WarmSeconds, r.IndexSeconds,
			r.Speedup, r.SpeedupWithBuild)
	}
}
