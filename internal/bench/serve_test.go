package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunServe smoke-tests the serving experiment at a tiny scale: every
// scenario completes, the report is internally consistent, and the
// concurrent load run sees no failures.
func TestRunServe(t *testing.T) {
	if testing.Short() {
		t.Skip("boots two HTTP daemons")
	}
	h := tiny()
	rep, err := h.RunServe()
	if err != nil {
		t.Fatalf("RunServe: %v", err)
	}
	if rep.DocBytes == 0 {
		t.Error("document was empty")
	}
	if rep.ColdCompileMicros <= rep.CacheHitMicros {
		t.Errorf("cold compile %.3fµs not slower than cache hit %.3fµs",
			rep.ColdCompileMicros, rep.CacheHitMicros)
	}
	if rep.CacheSpeedup <= 1 {
		t.Errorf("cache speedup = %.2f, want > 1", rep.CacheSpeedup)
	}
	names := make(map[string]bool)
	for _, s := range rep.HTTP {
		names[s.Name] = true
		if s.MeanMicros <= 0 {
			t.Errorf("%s: non-positive latency", s.Name)
		}
	}
	for _, want := range []string{"cold_compile", "query_cache_hit", "repeat_doc_unindexed", "repeat_doc_indexed"} {
		if !names[want] {
			t.Errorf("scenario %q missing from report", want)
		}
	}
	if rep.Load.Errors != 0 || rep.Load.NonOK != 0 || rep.Load.Degraded != 0 {
		t.Errorf("load run saw failures: %+v", rep.Load)
	}

	var out bytes.Buffer
	RenderServe(&out, rep)
	for _, want := range []string{"cache hit", "query_cache_hit", "req/s"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("RenderServe output missing %q:\n%s", want, out.String())
		}
	}
}
