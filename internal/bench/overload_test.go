package bench

import (
	"bytes"
	"strings"
	"testing"

	"rsonpath/internal/loadgen"
)

// TestRunOverload smoke-tests the overload experiment at a tiny scale: the
// saturation probe finds a positive rate, the open-loop points complete,
// and the acceptance gate passes — past saturation the daemon sheds
// instead of erroring and goodput does not collapse.
func TestRunOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("boots an HTTP daemon and runs ~4s of load")
	}
	h := tiny()
	rep, err := h.RunOverload()
	if err != nil {
		t.Fatalf("RunOverload: %v", err)
	}
	if rep.SaturationRPS <= 0 {
		t.Fatalf("saturation = %.0f req/s, want > 0", rep.SaturationRPS)
	}
	names := make(map[string]bool)
	for _, p := range rep.Points {
		names[p.Name] = true
	}
	for _, want := range []string{"closed_saturation", "open_1x", "open_4x"} {
		if !names[want] {
			t.Errorf("point %q missing from report", want)
		}
	}
	if err := CheckOverload(rep); err != nil {
		t.Errorf("CheckOverload: %v", err)
	}

	var out bytes.Buffer
	RenderOverload(&out, rep)
	for _, want := range []string{"saturation", "open_4x", "goodput"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("RenderOverload output missing %q:\n%s", want, out.String())
		}
	}
}

// TestCheckOverload pins the gate's failure modes on synthetic reports.
func TestCheckOverload(t *testing.T) {
	good := OverloadReport{Points: []OverloadPoint{
		{Name: "closed_saturation"},
		{Name: "open_1x", Load: mkLoad(100, 0, 0, 0)},
		{Name: "open_4x", Load: mkLoad(90, 40, 0, 0)},
	}}
	if err := CheckOverload(good); err != nil {
		t.Errorf("clean report rejected: %v", err)
	}
	cases := []struct {
		name string
		rep  OverloadReport
	}{
		{"server errors", OverloadReport{Points: []OverloadPoint{
			{Name: "open_1x", Load: mkLoad(100, 0, 0, 0)},
			{Name: "open_4x", Load: mkLoad(90, 40, 0, 3)},
		}}},
		{"no sheds past saturation", OverloadReport{Points: []OverloadPoint{
			{Name: "open_1x", Load: mkLoad(100, 0, 0, 0)},
			{Name: "open_4x", Load: mkLoad(90, 0, 0, 0)},
		}}},
		{"goodput collapse", OverloadReport{Points: []OverloadPoint{
			{Name: "open_1x", Load: mkLoad(100, 0, 0, 0)},
			{Name: "open_4x", Load: mkLoad(10, 40, 0, 0)},
		}}},
		{"missing overload point", OverloadReport{Points: []OverloadPoint{
			{Name: "open_1x", Load: mkLoad(100, 0, 0, 0)},
		}}},
	}
	for _, c := range cases {
		if err := CheckOverload(c.rep); err == nil {
			t.Errorf("%s: gate passed a bad report", c.name)
		}
	}
}

// mkLoad builds the slice of a loadgen report the gate inspects.
func mkLoad(goodput float64, shed, errs, nonOK int) loadgen.Report {
	return loadgen.Report{GoodputRPS: goodput, Shed: shed, Errors: errs, NonOK: nonOK}
}
