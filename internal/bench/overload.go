package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"rsonpath/internal/loadgen"
	"rsonpath/internal/server"
)

// Overload experiment: boot a daemon with a deliberately small admission
// budget, find its closed-loop saturation throughput, then drive open-loop
// arrivals at 1× and 4× that rate. A closed-loop generator cannot overload
// anything — it slows down with the server — so the open-loop points are
// where the admission gate and queue actually earn their keep.
// CheckOverload is the acceptance gate CI runs: past saturation the daemon
// must shed (429) rather than break (5xx/transport errors), and goodput
// must hold up rather than collapse under the extra offered load.
//
// The load is NDJSON bulk on purpose. The generator shares the machine
// with the daemon under test, so a request must cost the server far more
// than it costs the client, or the generator saturates itself first and
// "4× saturation" never overloads anything (a lesson this experiment
// learned empirically: with single-document queries the engine's GB/s scan
// rate means the per-request HTTP cost dominates on both sides equally).
// One bulk request is one cheap ~200 KB upload for the client but
// thousands of per-record evaluations for the server — exactly the
// asymmetry real overload has.
//
// Brownout is off for this daemon: the ladder's duty-cycling of bulk work
// is the right behavior live but makes the goodput measurement oscillate;
// here the deterministic gate+queue shedding is what is under test, and
// the ladder has its own deterministic coverage in the server tests.

// overloadCapacity and overloadQueue size the daemon under test: one slot
// and a short queue, so shedding starts the moment a handful of bulk
// requests pile up.
const (
	overloadCapacity = 1
	overloadQueue    = 4
)

// overloadRecords sizes the NDJSON batch. ~50 bytes per record keeps the
// body near 200 KB — under net/http's 256 KiB post-handler drain limit, so
// a shed request's unread body still fits the server's drain and rejected
// requests keep their connections alive instead of forcing a dial per
// arrival. Shedding must stay cheap or it is not shedding.
const overloadRecords = 4000

// overloadProbe and overloadPoint are the wall-clock lengths of the
// closed-loop saturation probe and of each open-loop point.
const (
	overloadProbe = 1 * time.Second
	overloadPoint = 1500 * time.Millisecond
)

// OverloadPoint is one load run against the constrained daemon.
type OverloadPoint struct {
	Name string `json:"name"`
	// RateRPS is the configured open-loop arrival rate (0 for the
	// closed-loop saturation probe).
	RateRPS float64        `json:"rate_rps,omitempty"`
	Load    loadgen.Report `json:"load"`
}

// OverloadReport is the overload experiment's machine-readable record
// (BENCH_overload.json).
type OverloadReport struct {
	// DocBytes is the NDJSON body size; Records its line count.
	DocBytes int `json:"doc_bytes"`
	Records  int `json:"records"`
	// Capacity and QueueDepth are the daemon's admission settings: weight
	// capacity of the gate and slots in the wait queue.
	Capacity   int `json:"capacity"`
	QueueDepth int `json:"queue_depth"`
	// SaturationRPS is the closed-loop throughput the probe measured; the
	// open-loop points offer 1× and 4× this rate.
	SaturationRPS float64         `json:"saturation_rps"`
	Points        []OverloadPoint `json:"points"`
}

// overloadBody builds the NDJSON batch: overloadRecords small records,
// each matching the query once.
func overloadBody() []byte {
	var body bytes.Buffer
	for i := 0; i < overloadRecords; i++ {
		fmt.Fprintf(&body, `{"a": {"b": %d}, "pad": "%024d"}`+"\n", i, i)
	}
	return body.Bytes()
}

// RunOverload measures the daemon's behavior at and past saturation.
func (h *Harness) RunOverload() (OverloadReport, error) {
	rep := OverloadReport{Capacity: overloadCapacity, QueueDepth: overloadQueue, Records: overloadRecords}
	doc := overloadBody()
	rep.DocBytes = len(doc)

	base, stop, err := startServeDaemon(server.Config{
		Timeout:        10 * time.Second,
		MaxConcurrency: overloadCapacity,
		AdmissionQueue: overloadQueue,
	})
	if err != nil {
		return rep, err
	}
	defer stop()
	url := base + "/v1/query"
	const query = "$.a.b"

	// Closed loop with as many workers as the daemon has admission slots:
	// enough to keep the gate busy, few enough that the queue absorbs them
	// without shedding. The measured throughput is the saturation point.
	sat, err := loadgen.Run(context.Background(), loadgen.Config{
		URL: url, Query: query, Mode: "count", Document: doc,
		RawContentType: "application/x-ndjson",
		Concurrency:    overloadCapacity + overloadQueue,
		Duration:       overloadProbe,
	})
	if err != nil {
		return rep, fmt.Errorf("saturation probe: %w", err)
	}
	rep.SaturationRPS = sat.Throughput
	rep.Points = append(rep.Points, OverloadPoint{Name: "closed_saturation", Load: sat})
	if rep.SaturationRPS <= 0 {
		return rep, fmt.Errorf("saturation probe measured zero throughput: %+v", sat)
	}

	// Open loop at 1× and 4× saturation. The generator's in-flight bound
	// sits well above the daemon's admission slots — every shed decision is
	// the server's, not the client's — but low enough that the generator
	// does not strangle the very slot it is measuring.
	for _, mult := range []float64{1, 4} {
		rate := mult * rep.SaturationRPS
		load, err := loadgen.Run(context.Background(), loadgen.Config{
			URL: url, Query: query, Mode: "count", Document: doc,
			RawContentType: "application/x-ndjson",
			Rate:           rate,
			Concurrency:    32,
			Duration:       overloadPoint,
		})
		if err != nil {
			return rep, fmt.Errorf("open-loop %gx: %w", mult, err)
		}
		rep.Points = append(rep.Points, OverloadPoint{
			Name: fmt.Sprintf("open_%gx", mult), RateRPS: rate, Load: load,
		})
	}
	return rep, nil
}

// CheckOverload is the acceptance gate over an overload run. Three
// invariants: the daemon never breaks (no transport errors, no non-200
// responses other than 429 sheds), the admission layer engages past
// saturation (an overloaded daemon that never sheds is just queueing its
// way to a timeout), and goodput at 4× offered load stays within a factor
// of goodput at 1× (load shedding that collapses throughput is not
// shedding, it is thrashing).
func CheckOverload(rep OverloadReport) error {
	var bad []string
	points := make(map[string]loadgen.Report, len(rep.Points))
	for _, p := range rep.Points {
		points[p.Name] = p.Load
		if p.Load.Errors > 0 || p.Load.NonOK > 0 {
			bad = append(bad, fmt.Sprintf("%s: %d transport errors, %d non-200/non-429 responses (statuses %v)",
				p.Name, p.Load.Errors, p.Load.NonOK, p.Load.StatusCounts))
		}
	}
	over, ok := points["open_4x"]
	if !ok {
		bad = append(bad, "open_4x point missing")
	} else {
		if over.Shed == 0 {
			bad = append(bad, "open_4x: zero sheds at 4x saturation; admission control never engaged")
		}
		if at, ok := points["open_1x"]; ok && over.GoodputRPS < 0.25*at.GoodputRPS {
			bad = append(bad, fmt.Sprintf(
				"open_4x goodput %.0f req/s collapsed below ¼ of open_1x goodput %.0f req/s",
				over.GoodputRPS, at.GoodputRPS))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("overload acceptance failed:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

// RenderOverload prints the experiment as an aligned table.
func RenderOverload(w io.Writer, rep OverloadReport) {
	fmt.Fprintf(w, "daemon: capacity %d, queue %d; NDJSON batch %d records, %d bytes\n",
		rep.Capacity, rep.QueueDepth, rep.Records, rep.DocBytes)
	fmt.Fprintf(w, "closed-loop saturation: %.0f req/s\n", rep.SaturationRPS)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "point\toffered\tthroughput\tgoodput\tshed\tdropped\taccepted p50\taccepted p99")
	for _, p := range rep.Points {
		offered := "-"
		if p.Load.OfferedRPS > 0 {
			offered = fmt.Sprintf("%.0f/s", p.Load.OfferedRPS)
		}
		fmt.Fprintf(tw, "%s\t%s\t%.0f/s\t%.0f/s\t%d\t%d\t%.2fms\t%.2fms\n",
			p.Name, offered, p.Load.Throughput, p.Load.GoodputRPS,
			p.Load.Shed, p.Load.Dropped, p.Load.AcceptedP50MS, p.Load.AcceptedP99MS)
	}
	tw.Flush()
}
