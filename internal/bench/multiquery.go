package bench

import (
	"fmt"

	"rsonpath"
)

// MultiSpec is one multi-query workload: a batch of queries evaluated
// together over a single dataset. The benchmark compares a one-pass
// QuerySet run against N independent Query runs over the same document.
type MultiSpec struct {
	// ID keys the workload (MQ2, MQ8, ...).
	ID string
	// Dataset is the jsongen profile name.
	Dataset string
	// Queries are the batch members.
	Queries []string
}

// MultiSpecs are the multi-query workloads at N ∈ {2, 8, 32}. The sets are
// descendant-heavy and lead with dense labels (author, title, name appear in
// nearly every Crossref item), the regime where every independent run has to
// stream most of the document: that is where sharing the classification pass
// pays. A batch of queries like $..vitamins_tags whose head-skip degenerates
// to a pure substring search would instead favour independent runs — see
// DESIGN.md.
var MultiSpecs = []MultiSpec{
	{"MQ2", "crossref", []string{
		"$..author..affiliation..name",
		"$..editor..affiliation..name",
	}},
	{"MQ8", "crossref", []string{
		"$..author..given",
		"$..author..family",
		"$..author..affiliation..name",
		"$..editor..affiliation..name",
		"$..reference..key",
		"$..issued..date-parts",
		"$..title",
		"$.items.*.DOI",
	}},
	{"MQ8a", "ast", []string{
		"$..inner..type.qualType",
		"$..inner..inner..type.qualType",
		"$..decl.name",
		"$..loc.includedFrom.file",
		"$..inner..name",
		"$..type..qualType",
		"$..name",
		"$..qualType",
	}},
	{"MQ32", "crossref", []string{
		"$..DOI",
		"$..title",
		"$..publisher",
		"$..type",
		"$..ORCID",
		"$..name",
		"$..given",
		"$..family",
		"$..sequence",
		"$..key",
		"$..unstructured",
		"$..date-parts",
		"$..author..given",
		"$..author..family",
		"$..author..ORCID",
		"$..author..name",
		"$..author..affiliation..name",
		"$..editor..name",
		"$..editor..affiliation..name",
		"$..reference..key",
		"$..reference..unstructured",
		"$..reference..DOI",
		"$..issued..date-parts",
		"$..affiliation..name",
		"$.items.*.title",
		"$.items.*.DOI",
		"$.items.*.type",
		"$.items.*.publisher",
		"$.items.*.author.*.given",
		"$.items.*.author.*.family",
		"$.items.*.author.*.affiliation.*.name",
		"$.items.*.reference.*.key",
	}},
}

// MultiSpecByID finds a multi-query workload.
func MultiSpecByID(id string) (MultiSpec, bool) {
	for _, s := range MultiSpecs {
		if s.ID == id {
			return s, true
		}
	}
	return MultiSpec{}, false
}

// MultiResult is one multi-query measurement, serialisable as the
// machine-readable BENCH_multiquery.json record.
type MultiResult struct {
	ID      string `json:"id"`
	Dataset string `json:"dataset"`
	N       int    `json:"n"`
	Bytes   int    `json:"bytes"`
	Matches int    `json:"matches"`
	// SetSeconds/SetGBps measure one QuerySet.Counts pass for the whole
	// batch.
	SetSeconds float64 `json:"set_seconds"`
	SetGBps    float64 `json:"set_gbps"`
	// IndepSeconds/IndepGBps measure N independent Query.Count passes.
	IndepSeconds float64 `json:"indep_seconds"`
	IndepGBps    float64 `json:"indep_gbps"`
	// Speedup is IndepSeconds / SetSeconds (> 1 means the set wins).
	Speedup float64 `json:"speedup"`
}

// RunMultiQuery measures every workload both ways. The two evaluation
// strategies must agree on the total match count; a mismatch is an error,
// not a benchmark result.
func (h *Harness) RunMultiQuery(specs []MultiSpec) ([]MultiResult, error) {
	var out []MultiResult
	for _, spec := range specs {
		data, err := h.Dataset(spec.Dataset)
		if err != nil {
			return nil, err
		}
		set, err := rsonpath.CompileSet(spec.Queries)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.ID, err)
		}
		indep := make([]*rsonpath.Query, len(spec.Queries))
		for i, src := range spec.Queries {
			if indep[i], err = rsonpath.Compile(src); err != nil {
				return nil, fmt.Errorf("%s: %w", spec.ID, err)
			}
		}

		setRes, err := h.MeasureFunc(len(data), func() (int, error) {
			counts, err := set.Counts(data)
			total := 0
			for _, n := range counts {
				total += n
			}
			return total, err
		})
		if err != nil {
			return nil, fmt.Errorf("%s set run: %w", spec.ID, err)
		}
		indepRes, err := h.MeasureFunc(len(data), func() (int, error) {
			total := 0
			for _, q := range indep {
				n, err := q.Count(data)
				if err != nil {
					return 0, err
				}
				total += n
			}
			return total, nil
		})
		if err != nil {
			return nil, fmt.Errorf("%s independent runs: %w", spec.ID, err)
		}
		if setRes.Matches != indepRes.Matches {
			return nil, fmt.Errorf("%s: set found %d matches, independent runs %d",
				spec.ID, setRes.Matches, indepRes.Matches)
		}

		r := MultiResult{
			ID:           spec.ID,
			Dataset:      spec.Dataset,
			N:            len(spec.Queries),
			Bytes:        len(data),
			Matches:      setRes.Matches,
			SetSeconds:   setRes.Mean.Seconds(),
			SetGBps:      setRes.GBps,
			IndepSeconds: indepRes.Mean.Seconds(),
			IndepGBps:    indepRes.GBps,
		}
		if r.SetSeconds > 0 {
			r.Speedup = r.IndepSeconds / r.SetSeconds
		}
		out = append(out, r)
	}
	return out, nil
}
