package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"sync"
	"syscall"
	"text/tabwriter"
	"time"

	"rsonpath/internal/cluster"
	"rsonpath/internal/loadgen"
)

// Chaos experiment: drive open-loop load at a multi-shard rsonpathd cluster
// while SIGKILL-ing a random healthy worker every couple of seconds, and
// check that crash isolation actually isolates. The invariants CheckChaos
// gates on:
//
//   - Zero 5xx and zero transport errors at the client. A worker death
//     costs its in-flight requests nothing visible: the router re-dispatches
//     them to a surviving shard (queries are read-only, so re-dispatch is
//     safe). 429 sheds are allowed — an overloaded shard protecting itself
//     is orthogonal to crash isolation.
//   - Goodput recovers to ≥90% of steady state within one second of every
//     kill. "Steady state" is the run's own sustained goodput level (see
//     ChaosReport.SteadyTroughRPS), so the gate holds on any hardware —
//     including a single-core container, where N CPU-bound workers share
//     one core and steady goodput itself oscillates with the scheduler.
//   - The parent does not leak: goroutine and fd counts, sampled quiesced
//     before and after the 20 kill cycles, stay flat. Supervising a crash
//     20 times must not accrete state 20 times.
//
// The load is NDJSON bulk, smaller than the overload experiment's but for
// the same reason (see overload.go): the generator shares the machine with
// the cluster, so a request must cost the workers far more than the client
// or the generator saturates first and the offered 2× never overloads.

// ChaosOptions sizes one chaos run. The zero value selects the recorded
// experiment: 4 shards, 20 kills 2s apart, 2× single-shard saturation.
type ChaosOptions struct {
	Shards       int
	KillCycles   int
	KillInterval time.Duration
	// RateMultiple scales the open-loop arrival rate relative to the
	// measured single-shard closed-loop saturation.
	RateMultiple float64
	// Log receives the cluster's supervision events; nil discards them.
	Log io.Writer
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.KillCycles <= 0 {
		o.KillCycles = 20
	}
	if o.KillInterval <= 0 {
		o.KillInterval = 2 * time.Second
	}
	if o.RateMultiple <= 0 {
		o.RateMultiple = 2
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
	return o
}

// chaos run phase lengths.
const (
	chaosProbe   = 1 * time.Second        // closed-loop saturation probes
	chaosLeadIn  = 2 * time.Second        // open-loop warmup before the first kill
	chaosTail    = 2 * time.Second        // open-loop cooldown after the last kill
	chaosBucket  = 250 * time.Millisecond // goodput time-series resolution
	chaosRecover = 1 * time.Second        // recovery budget per kill
	chaosWindow  = 500 * time.Millisecond // sliding window for recovery detection
	chaosStep    = 50 * time.Millisecond  // sliding-window step
	chaosRecords = 400                    // NDJSON records per request (~20 KB)
)

// ChaosKill is one SIGKILL cycle and its observed recovery.
type ChaosKill struct {
	Cycle int `json:"cycle"`
	Shard int `json:"shard"`
	PID   int `json:"pid"`
	// OffsetMS is the kill time relative to the open-loop run start.
	OffsetMS float64 `json:"offset_ms"`
	// BaselineRPS is the goodput over the second immediately before this
	// kill, recorded for context alongside the run-wide steady numbers.
	BaselineRPS float64 `json:"baseline_rps"`
	// RecoveredMS is how long after the kill goodput was back at ≥90% of
	// the run's steady trough (see ChaosReport.SteadyTroughRPS): the end
	// of the earliest post-kill sliding window (chaosWindow wide, stepped
	// every chaosStep) whose rate clears the threshold. A 500ms window
	// holds enough completions that Poisson noise on a saturated box
	// cannot fake a dip — a single 250ms bucket cannot say the same. -1
	// when goodput never recovered inside the budget.
	RecoveredMS float64 `json:"recovered_ms"`
}

// ChaosReport is the chaos experiment's machine-readable record
// (BENCH_chaos.json).
type ChaosReport struct {
	Shards         int     `json:"shards"`
	KillCycles     int     `json:"kill_cycles"`
	KillIntervalMS float64 `json:"kill_interval_ms"`
	DocBytes       int     `json:"doc_bytes"`
	Records        int     `json:"records"`
	// SingleSatRPS is one shard's closed-loop saturation throughput;
	// ClusterSatRPS the same probe against the full cluster (the multi-shard
	// serve measurement). OfferedRPS is the open-loop arrival rate of the
	// kill phase: RateMultiple × SingleSatRPS.
	SingleSatRPS  float64 `json:"single_sat_rps"`
	ClusterSatRPS float64 `json:"cluster_sat_rps"`
	OfferedRPS    float64 `json:"offered_rps"`
	// SteadyGoodputRPS is the median goodput bucket of the kill phase.
	// SteadyTroughRPS is the 25th percentile of the sliding recovery
	// windows that do NOT overlap any kill's recovery zone — the goodput
	// level normal operation sustains through its own scheduling troughs.
	// Recovery is measured against 90% of the trough: on hardware with
	// real headroom the steady series is flat and trough ≈ median, so the
	// gate demands ~90% of steady state as specified; on a saturated
	// single core, where steady goodput itself oscillates 2-3× bucket to
	// bucket, the trough keeps the gate about recovery rather than about
	// the scheduler. BucketMS is the bucket width.
	SteadyGoodputRPS float64     `json:"steady_goodput_rps"`
	SteadyTroughRPS  float64     `json:"steady_trough_rps"`
	BucketMS         float64     `json:"bucket_ms"`
	Buckets          []float64   `json:"goodput_buckets_rps"`
	Kills            []ChaosKill `json:"kills"`
	// RestartsObserved is the supervisor's restart total after the run; it
	// should track the kill count.
	RestartsObserved int64 `json:"restarts_observed"`
	// Parent process leak check, sampled quiesced before and after the kill
	// phase. FDs are -1 where /proc is unavailable.
	GoroutinesBefore int `json:"goroutines_before"`
	GoroutinesAfter  int `json:"goroutines_after"`
	FDsBefore        int `json:"fds_before"`
	FDsAfter         int `json:"fds_after"`
	// Load is the kill phase's client-side report.
	Load loadgen.Report `json:"load"`
}

// chaosBody is the per-request NDJSON batch: big enough that the workers,
// not the generator, are the bottleneck.
func chaosBody() []byte {
	var b strings.Builder
	for i := 0; i < chaosRecords; i++ {
		fmt.Fprintf(&b, `{"a": {"b": %d}, "pad": "%024d"}`+"\n", i, i)
	}
	return []byte(b.String())
}

// startChaosCluster boots an in-process router/supervisor over worker
// processes built by workerCmd and waits until every shard is routable.
func startChaosCluster(shards int, workerCmd func(int, string) *exec.Cmd, log io.Writer) (*cluster.Cluster, string, func(), error) {
	cl, err := cluster.New(cluster.Config{
		Shards:        shards,
		Addr:          "127.0.0.1:0",
		WorkerCommand: workerCmd,
		Log:           log,
	})
	if err != nil {
		return nil, "", nil, err
	}
	if err := cl.Start(); err != nil {
		return nil, "", nil, err
	}
	done := make(chan error, 1)
	go func() { done <- cl.Serve() }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		cl.Shutdown(ctx)
		<-done
	}
	deadline := time.Now().Add(10 * time.Second)
	for cl.RoutableShards() < shards {
		if time.Now().After(deadline) {
			stop()
			return nil, "", nil, fmt.Errorf("chaos: only %d/%d shards routable after 10s", cl.RoutableShards(), shards)
		}
		time.Sleep(25 * time.Millisecond)
	}
	return cl, "http://" + cl.Addr().String(), stop, nil
}

// RunChaos runs the experiment. workerCmd builds one (not yet started)
// worker process serving the daemon on the given unix socket — rsonbench
// re-execs itself in a hidden worker mode.
func (h *Harness) RunChaos(workerCmd func(shard int, socket string) *exec.Cmd, opts ChaosOptions) (ChaosReport, error) {
	opts = opts.withDefaults()
	rep := ChaosReport{
		Shards:         opts.Shards,
		KillCycles:     opts.KillCycles,
		KillIntervalMS: float64(opts.KillInterval) / float64(time.Millisecond),
		Records:        chaosRecords,
		BucketMS:       float64(chaosBucket) / float64(time.Millisecond),
		FDsBefore:      -1,
		FDsAfter:       -1,
	}
	doc := chaosBody()
	rep.DocBytes = len(doc)
	const query = "$.a.b"

	// Phase A: single-shard saturation, measured against a real 1-shard
	// cluster so the router's own cost is inside the baseline.
	single, singleURL, singleStop, err := startChaosCluster(1, workerCmd, opts.Log)
	if err != nil {
		return rep, err
	}
	_ = single
	sat, err := loadgen.Run(context.Background(), loadgen.Config{
		URL: singleURL + "/v1/query", Query: query, Mode: "count", Document: doc,
		RawContentType: "application/x-ndjson",
		Concurrency:    8,
		Duration:       chaosProbe,
	})
	singleStop()
	if err != nil {
		return rep, fmt.Errorf("single-shard probe: %w", err)
	}
	rep.SingleSatRPS = sat.Throughput
	if rep.SingleSatRPS <= 0 {
		return rep, fmt.Errorf("single-shard probe measured zero throughput: %+v", sat)
	}

	// Phase B: the full cluster.
	cl, base, stop, err := startChaosCluster(opts.Shards, workerCmd, opts.Log)
	if err != nil {
		return rep, err
	}
	defer stop()

	clusterSat, err := loadgen.Run(context.Background(), loadgen.Config{
		URL: base + "/v1/query", Query: query, Mode: "count", Document: doc,
		RawContentType: "application/x-ndjson",
		Concurrency:    8 * opts.Shards,
		Duration:       chaosProbe,
	})
	if err != nil {
		return rep, fmt.Errorf("cluster probe: %w", err)
	}
	rep.ClusterSatRPS = clusterSat.Throughput

	// Quiesced parent snapshot: drop idle pooled connections, let their
	// goroutines unwind, then count. The same procedure after the kill phase
	// makes the two samples comparable.
	snapshot := func() (int, int) {
		cl.CloseIdleConnections()
		time.Sleep(300 * time.Millisecond)
		return runtime.NumGoroutine(), cluster.CountFDs()
	}
	rep.GoroutinesBefore, rep.FDsBefore = snapshot()

	// Kill phase: open-loop arrivals at RateMultiple × single-shard
	// saturation while the killer SIGKILLs a random routable worker every
	// KillInterval. Accepted completions stream into goodput buckets.
	//
	// The multiple presumes shards scale: on a machine with ≥Shards cores,
	// 2× one shard loads the cluster to ~half capacity, which is exactly
	// what makes the recovery gate meaningful — the survivors have the
	// headroom to absorb a kill. On a degenerate host where the cluster
	// probe shows no scale-out (every worker sharing one core), the same
	// multiple is a sustained 2× overload of the whole cluster and each
	// kill's backlog drains with zero headroom — the gate would measure
	// queueing physics, not crash recovery. Cap the offered rate just
	// below measured cluster saturation; where shards scale, the cap sits
	// far above the multiple and never engages.
	rep.OfferedRPS = opts.RateMultiple * rep.SingleSatRPS
	if cap := 0.9 * rep.ClusterSatRPS; rep.ClusterSatRPS > 0 && rep.OfferedRPS > cap {
		fmt.Fprintf(opts.Log, "chaos: cluster saturation %.0f rps does not scale past one shard (%.0f rps); capping offered load at %.0f rps\n",
			rep.ClusterSatRPS, rep.SingleSatRPS, cap)
		rep.OfferedRPS = cap
	}
	duration := chaosLeadIn + time.Duration(opts.KillCycles)*opts.KillInterval + chaosTail
	nBuckets := int(duration/chaosBucket) + 1
	buckets := make([]int, nBuckets)
	var accepted []time.Duration // completion offsets of every 200, for recovery windows
	var mu sync.Mutex

	start := time.Now()
	rng := rand.New(rand.NewSource(h.Seed))
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		time.Sleep(chaosLeadIn)
		for cycle := 0; cycle < opts.KillCycles; cycle++ {
			var victims []cluster.ShardState
			for _, st := range cl.ShardStates() {
				if st.Routable && st.PID > 0 {
					victims = append(victims, st)
				}
			}
			if len(victims) > 0 {
				v := victims[rng.Intn(len(victims))]
				syscall.Kill(v.PID, syscall.SIGKILL)
				mu.Lock()
				rep.Kills = append(rep.Kills, ChaosKill{
					Cycle: cycle, Shard: v.ID, PID: v.PID,
					OffsetMS:    float64(time.Since(start)) / float64(time.Millisecond),
					RecoveredMS: -1,
				})
				mu.Unlock()
			}
			time.Sleep(opts.KillInterval)
		}
	}()

	load, err := loadgen.Run(context.Background(), loadgen.Config{
		URL: base + "/v1/query", Query: query, Mode: "count", Document: doc,
		RawContentType: "application/x-ndjson",
		Rate:           rep.OfferedRPS,
		Concurrency:    256,
		Duration:       duration,
		OnResult: func(r loadgen.Result) {
			if r.Err != nil || r.Status != 200 {
				return
			}
			off := r.When.Sub(start)
			i := int(off / chaosBucket)
			mu.Lock()
			accepted = append(accepted, off)
			if i >= 0 && i < nBuckets {
				buckets[i]++
			}
			mu.Unlock()
		},
	})
	<-killDone
	if err != nil {
		return rep, fmt.Errorf("kill phase: %w", err)
	}
	rep.Load = load

	rep.GoroutinesAfter, rep.FDsAfter = snapshot()
	for _, st := range cl.ShardStates() {
		rep.RestartsObserved += st.Restarts
	}

	// Goodput time series: drop the last (partial) bucket, convert to rps,
	// and take the median of the kill window as steady state.
	rep.Buckets = make([]float64, 0, nBuckets-1)
	for _, n := range buckets[:nBuckets-1] {
		rep.Buckets = append(rep.Buckets, float64(n)/chaosBucket.Seconds())
	}
	killStart := int(chaosLeadIn / chaosBucket)
	killEnd := len(rep.Buckets) - int(chaosTail/chaosBucket)
	if killEnd <= killStart {
		killStart, killEnd = 0, len(rep.Buckets)
	}
	window := append([]float64(nil), rep.Buckets[killStart:killEnd]...)
	sort.Float64s(window)
	if len(window) > 0 {
		rep.SteadyGoodputRPS = window[len(window)/2]
	}

	// The steady trough: slide a chaosWindow-wide window through the kill
	// phase, keep the windows that don't overlap any kill's recovery zone
	// ([kill, kill+budget]), and take their 25th percentile. That is the
	// goodput level normal operation sustains through its own scheduling
	// troughs — the honest reference for "back to steady state".
	sort.Slice(accepted, func(i, j int) bool { return accepted[i] < accepted[j] })
	countIn := func(lo, hi time.Duration) int {
		a := sort.Search(len(accepted), func(i int) bool { return accepted[i] >= lo })
		b := sort.Search(len(accepted), func(i int) bool { return accepted[i] > hi })
		return b - a
	}
	inRecoveryZone := func(lo, hi time.Duration) bool {
		for _, k := range rep.Kills {
			killAt := time.Duration(k.OffsetMS * float64(time.Millisecond))
			if lo < killAt+chaosRecover && hi > killAt {
				return true
			}
		}
		return false
	}
	var steady []float64
	phaseEnd := chaosLeadIn + time.Duration(opts.KillCycles)*opts.KillInterval
	for t := chaosLeadIn + chaosWindow; t <= phaseEnd; t += chaosStep {
		if !inRecoveryZone(t-chaosWindow, t) {
			steady = append(steady, float64(countIn(t-chaosWindow, t))/chaosWindow.Seconds())
		}
	}
	sort.Float64s(steady)
	if len(steady) > 0 {
		rep.SteadyTroughRPS = steady[len(steady)/4]
	}

	// Recovery per kill: slide the same window through the recovery budget
	// (entirely post-kill, so the dip itself never dilutes the sample) and
	// record the end of the earliest one at ≥90% of the steady trough. The
	// raw completion timestamps give ~an order of magnitude more candidate
	// windows than the display buckets, which keeps the gate from tripping
	// on sampling noise while still demanding real recovery.
	threshold := 0.9 * rep.SteadyTroughRPS
	for i := range rep.Kills {
		k := &rep.Kills[i]
		killAt := time.Duration(k.OffsetMS * float64(time.Millisecond))
		k.BaselineRPS = float64(countIn(killAt-time.Second, killAt-1)) / time.Second.Seconds()
		for t := chaosWindow; t <= chaosRecover; t += chaosStep {
			rate := float64(countIn(killAt+t-chaosWindow, killAt+t)) / chaosWindow.Seconds()
			if rate >= threshold {
				k.RecoveredMS = float64(t) / float64(time.Millisecond)
				break
			}
		}
	}
	return rep, nil
}

// CheckChaos is the acceptance gate over a chaos run.
func CheckChaos(rep ChaosReport) error {
	var bad []string
	if rep.Load.Errors > 0 {
		bad = append(bad, fmt.Sprintf("%d transport errors (%d connect, %d read) reached the client",
			rep.Load.Errors, rep.Load.ConnectErrors, rep.Load.ReadErrors))
	}
	if rep.Load.NonOK > 0 {
		bad = append(bad, fmt.Sprintf("%d non-200/non-429 responses reached the client (statuses %v)",
			rep.Load.NonOK, rep.Load.StatusCounts))
	}
	if len(rep.Kills) < rep.KillCycles {
		bad = append(bad, fmt.Sprintf("only %d of %d kill cycles found a routable victim", len(rep.Kills), rep.KillCycles))
	}
	for _, k := range rep.Kills {
		if k.RecoveredMS < 0 {
			bad = append(bad, fmt.Sprintf("kill %d (shard %d at %.0fms): goodput never recovered to 90%% of the steady trough (%.0f rps) within %s",
				k.Cycle, k.Shard, k.OffsetMS, rep.SteadyTroughRPS, chaosRecover))
		}
	}
	// The last kill's restart can legitimately race the end of the run.
	if want := int64(len(rep.Kills)) - 1; rep.RestartsObserved < want {
		bad = append(bad, fmt.Sprintf("supervisor restarted workers %d times for %d kills", rep.RestartsObserved, len(rep.Kills)))
	}
	const leakSlack = 8
	if rep.GoroutinesAfter > rep.GoroutinesBefore+leakSlack {
		bad = append(bad, fmt.Sprintf("parent goroutines grew %d -> %d across the kill cycles",
			rep.GoroutinesBefore, rep.GoroutinesAfter))
	}
	if rep.FDsBefore >= 0 && rep.FDsAfter >= 0 && rep.FDsAfter > rep.FDsBefore+leakSlack {
		bad = append(bad, fmt.Sprintf("parent fds grew %d -> %d across the kill cycles",
			rep.FDsBefore, rep.FDsAfter))
	}
	if len(bad) > 0 {
		return fmt.Errorf("chaos acceptance failed:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

// RenderChaos prints the experiment.
func RenderChaos(w io.Writer, rep ChaosReport) {
	fmt.Fprintf(w, "cluster: %d shards; NDJSON batch %d records, %d bytes\n",
		rep.Shards, rep.Records, rep.DocBytes)
	fmt.Fprintf(w, "saturation: single shard %.0f req/s, %d shards %.0f req/s\n",
		rep.SingleSatRPS, rep.Shards, rep.ClusterSatRPS)
	fmt.Fprintf(w, "kill phase: offered %.0f req/s open-loop, %d kills %.0fms apart, steady goodput %.0f req/s (trough %.0f)\n",
		rep.OfferedRPS, len(rep.Kills), rep.KillIntervalMS, rep.SteadyGoodputRPS, rep.SteadyTroughRPS)
	fmt.Fprintf(w, "client: %d requests, %d errors, %d non-200/non-429, %d shed, %d dropped\n",
		rep.Load.Requests, rep.Load.Errors, rep.Load.NonOK, rep.Load.Shed, rep.Load.Dropped)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "kill\tshard\tpid\tat\trecovered")
	for _, k := range rep.Kills {
		rec := "never"
		if k.RecoveredMS >= 0 {
			rec = fmt.Sprintf("%.0fms", k.RecoveredMS)
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.1fs\t%s\n", k.Cycle, k.Shard, k.PID, k.OffsetMS/1000, rec)
	}
	tw.Flush()
	fmt.Fprintf(w, "supervisor restarts: %d; parent goroutines %d -> %d, fds %d -> %d\n",
		rep.RestartsObserved, rep.GoroutinesBefore, rep.GoroutinesAfter, rep.FDsBefore, rep.FDsAfter)
}
