package bench

import (
	"fmt"
	"io"
	"strings"

	"rsonpath/internal/dom"
	"rsonpath/internal/jsonpath"
)

// RenderGrid prints results as an Appendix-C-style table: one row per query
// ID, one throughput column per engine.
func RenderGrid(w io.Writer, results []Result) {
	engines := orderedEngines(results)
	byID := map[string]map[string]Result{}
	var order []string
	for _, r := range results {
		if byID[r.ID] == nil {
			byID[r.ID] = map[string]Result{}
			order = append(order, r.ID)
		}
		byID[r.ID][r.Engine] = r
	}
	fmt.Fprintf(w, "%-5s %-14s %-48s %10s", "id", "dataset", "query", "matches")
	for _, e := range engines {
		fmt.Fprintf(w, " %12s", e+" GB/s")
	}
	fmt.Fprintln(w)
	for _, id := range order {
		row := byID[id]
		var any Result
		for _, r := range row {
			if !r.Unsupported {
				any = r
				break
			}
		}
		fmt.Fprintf(w, "%-5s %-14s %-48s %10d", id, any.Dataset, any.Query, any.Matches)
		for _, e := range engines {
			r, ok := row[e]
			if !ok || r.Unsupported {
				fmt.Fprintf(w, " %12s", "-")
			} else {
				fmt.Fprintf(w, " %12.3f", r.GBps)
			}
		}
		fmt.Fprintln(w)
	}
}

// RenderFigure prints an ASCII bar chart of throughputs, the textual twin
// of the paper's Figures 4-6.
func RenderFigure(w io.Writer, title string, results []Result) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	max := 0.0
	for _, r := range results {
		if r.GBps > max {
			max = r.GBps
		}
	}
	if max == 0 {
		max = 1
	}
	const width = 50
	for _, r := range results {
		label := fmt.Sprintf("%-5s %-9s", r.ID, r.Engine)
		if r.Unsupported {
			fmt.Fprintf(w, "%s | (unsupported)\n", label)
			continue
		}
		bar := int(r.GBps / max * width)
		fmt.Fprintf(w, "%s |%-*s %7.3f GB/s  (%d matches)\n",
			label, width, strings.Repeat("#", bar), r.GBps, r.Matches)
	}
	fmt.Fprintln(w)
}

// RenderTable3 prints the dataset characteristics table.
func RenderTable3(w io.Writer, rows []Table3Row, harness *Harness) {
	fmt.Fprintf(w, "%-14s %12s %7s %10s %11s\n", "name", "size [B]", "depth", "nodes", "verbosity")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %12d %7d %10d %11.1f\n",
			r.Name, r.Stats.SizeBytes, r.Stats.Depth, r.Stats.Nodes, r.Stats.Verbosity)
	}
	fmt.Fprintf(w, "(scale factor %.3g of DESIGN.md defaults)\n\n", harness.SizeFactor)
}

// RenderTable2 prints the classification micro-comparison.
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "%-8s %16s %16s %18s\n", "values", "naive ns/block", "lookup ns/block", "lookup strategy")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %16.2f %16.2f %18s\n",
			r.Values, r.NaiveNsPerBlk, r.LookupNsPerBlk, r.LookupStrategy)
	}
	fmt.Fprintln(w)
}

// RenderScalability prints Experiment D's table.
func RenderScalability(w io.Writer, points []ScalabilityPoint) {
	fmt.Fprintf(w, "%-14s %10s %10s\n", "size [B]", "GB/s", "matches")
	for _, p := range points {
		fmt.Fprintf(w, "%-14d %10.3f %10d\n", p.SizeBytes, p.GBps, p.Matches)
	}
	fmt.Fprintln(w)
}

// RenderAblation prints ablation results grouped per query.
func RenderAblation(w io.Writer, results []Result) {
	fmt.Fprintf(w, "%-5s %-18s %10s %12s\n", "id", "variant", "GB/s", "matches")
	for _, r := range results {
		fmt.Fprintf(w, "%-5s %-18s %10.3f %12d\n", r.ID, r.Engine, r.GBps, r.Matches)
	}
	fmt.Fprintln(w)
}

// RenderMultiQuery prints the QuerySet-vs-independent-runs comparison.
func RenderMultiQuery(w io.Writer, results []MultiResult) {
	fmt.Fprintf(w, "%-6s %-10s %4s %10s %12s %12s %9s\n",
		"id", "dataset", "N", "matches", "set GB/s", "indep GB/s", "speedup")
	for _, r := range results {
		fmt.Fprintf(w, "%-6s %-10s %4d %10d %12.3f %12.3f %8.2fx\n",
			r.ID, r.Dataset, r.N, r.Matches, r.SetGBps, r.IndepGBps, r.Speedup)
	}
	fmt.Fprintln(w)
}

// SemanticsDoc is the Appendix D example document (values shortened as in
// the paper).
const SemanticsDoc = `{
  "person": {
    "name": "A",
    "spouse": {"name": "B"},
    "person": {
      "children": [{"name": "C"}, {"name": "D"}]
    }
  }
}`

// RenderSemantics reproduces the Appendix D / Table 9 comparison: the query
// $..person..name under node semantics and path semantics.
func RenderSemantics(w io.Writer) error {
	root, err := dom.Parse([]byte(SemanticsDoc))
	if err != nil {
		return err
	}
	q := jsonpath.MustParse("$..person..name")
	render := func(sem dom.Semantics) []string {
		var vals []string
		for _, n := range dom.Eval(root, q, sem) {
			vals = append(vals, SemanticsDoc[n.Start:n.End])
		}
		return vals
	}
	fmt.Fprintf(w, "query: $..person..name (Appendix D)\n")
	fmt.Fprintf(w, "node semantics (this engine): [%s]\n", strings.Join(render(dom.NodeSemantics), ", "))
	fmt.Fprintf(w, "path semantics (most legacy implementations): [%s]\n\n", strings.Join(render(dom.PathSemantics), ", "))
	return nil
}

func orderedEngines(results []Result) []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range results {
		if !seen[r.Engine] {
			seen[r.Engine] = true
			out = append(out, r.Engine)
		}
	}
	return out
}

// RenderParallelLines prints the parallel-lines sweep; the workers=0 row is
// the sequential RunLines baseline.
func RenderParallelLines(w io.Writer, results []ParallelResult) {
	fmt.Fprintf(w, "%-6s %-10s %8s %8s %10s %10s %9s\n",
		"id", "dataset", "workers", "records", "matches", "GB/s", "speedup")
	for _, r := range results {
		workers := fmt.Sprint(r.Workers)
		if r.Workers == 0 {
			workers = "seq"
		}
		fmt.Fprintf(w, "%-6s %-10s %8s %8d %10d %10.3f %8.2fx\n",
			r.ID, r.Dataset, workers, r.Records, r.Matches, r.GBps, r.Speedup)
	}
	fmt.Fprintln(w)
}
