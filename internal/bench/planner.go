package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"rsonpath"
)

// The planner experiment measures what the adaptive execution planner buys:
// for a matrix of workload classes (document size × match density × repeat
// count) it times the planner-auto configuration against every forced
// strategy and reports how close auto gets to the per-class best and how far
// it stays from the per-class worst. CheckPlanner turns the report into the
// CI acceptance gate: auto must never be more than AutoSlack slower than the
// best forced strategy, and must beat the worst forced strategy by at least
// WorstMargin on at least one class (otherwise the plan layer is dead
// weight). Serialised into BENCH_planner.json.

// AutoSlack is the acceptance ceiling for auto/best-forced wall time.
const AutoSlack = 1.2

// WorstMargin is the worst-forced/auto ratio auto must reach somewhere.
const WorstMargin = 1.5

// PlannerClass is one workload: a query run Repeats times over one dataset.
type PlannerClass struct {
	Name    string  `json:"name"`
	Dataset string  `json:"dataset"`
	Scale   float64 `json:"scale"`
	Query   string  `json:"query"`
	Repeats int     `json:"repeats"`
}

// PlannerClasses is the experiment matrix. Size varies by dataset scale,
// density by the query's match count on it (vitamins_tags hits 24 records,
// DOI hits every item), and the repeat counts straddle the planner's
// IndexAmortizeRuns break-even (8).
var PlannerClasses = []PlannerClass{
	{"small-sparse-r1", "openfood", 0.25, "$..vitamins_tags", 1},
	{"small-sparse-r16", "openfood", 0.25, "$..vitamins_tags", 16},
	{"small-dense-r1", "walmart", 0.25, "$.items.*.name", 1},
	{"small-dense-r16", "walmart", 0.25, "$.items.*.name", 16},
	{"large-sparse-r1", "crossref", 1, "$.items.*.editor.*.affiliation.*.name", 1},
	{"large-sparse-r16", "crossref", 1, "$.items.*.editor.*.affiliation.*.name", 16},
	{"large-dense-r1", "crossref", 1, "$.items.*.DOI", 1},
	{"large-dense-r16", "crossref", 1, "$.items.*.DOI", 16},
}

// PlannerForced is one forced strategy's wall time on a class.
type PlannerForced struct {
	Label       string  `json:"label"`
	Seconds     float64 `json:"seconds"`
	Unsupported bool    `json:"unsupported,omitempty"`
}

// PlannerClassResult is one class's measurements.
type PlannerClassResult struct {
	Class   string `json:"class"`
	Dataset string `json:"dataset"`
	Query   string `json:"query"`
	Bytes   int    `json:"bytes"`
	Repeats int    `json:"repeats"`
	// Strategy and Rule echo the plan auto chose for this class.
	Strategy string `json:"strategy"`
	Rule     string `json:"rule"`
	// AutoSeconds is the full planner-auto workload: Explain on the class
	// stats, an index build iff the plan says indexed, then Repeats runs.
	AutoSeconds float64         `json:"auto_seconds"`
	Forced      []PlannerForced `json:"forced"`
	BestForced  string          `json:"best_forced"`
	WorstForced string          `json:"worst_forced"`
	// AutoVsBest is auto/best (≤ AutoSlack passes); WorstVsAuto is
	// worst/auto (≥ WorstMargin on some class proves the planner earns its
	// keep).
	AutoVsBest  float64 `json:"auto_vs_best"`
	WorstVsAuto float64 `json:"worst_vs_auto"`
}

// PlannerReport is the BENCH_planner.json payload.
type PlannerReport struct {
	Classes []PlannerClassResult `json:"classes"`
	// MaxAutoVsBest is the worst auto/best ratio across classes.
	MaxAutoVsBest float64 `json:"max_auto_vs_best"`
	// BestWorstVsAuto is the largest worst/auto ratio across classes.
	BestWorstVsAuto float64 `json:"best_worst_vs_auto"`
}

// timeWorkload returns best-of-passes wall time of one full workload, after
// one untimed warm-up — the micro-benchmark convention (see timeGBps): on a
// shared machine the minimum estimates the undisturbed cost, which keeps
// the CI smoke run (tiny scale, one sample) out of jitter territory.
func (h *Harness) timeWorkload(f func() error) (float64, error) {
	passes := h.Samples
	if passes < 3 {
		passes = 3
	}
	if err := f(); err != nil {
		return 0, err
	}
	best := math.Inf(1)
	for i := 0; i < passes; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if s := time.Since(start).Seconds(); s < best {
			best = s
		}
	}
	return best, nil
}

// scanWorkload is Repeats cold runs of q over data.
func scanWorkload(q *rsonpath.Query, data []byte, repeats int) func() error {
	return func() error {
		for i := 0; i < repeats; i++ {
			if _, err := q.Count(data); err != nil {
				return err
			}
		}
		return nil
	}
}

// indexWorkload is one index build plus Repeats warm runs — the build is
// charged to every pass, exactly the bet the index-amortizes rule makes.
func indexWorkload(q *rsonpath.Query, data []byte, repeats int) func() error {
	return func() error {
		doc, err := rsonpath.Index(data)
		if err != nil {
			return err
		}
		for i := 0; i < repeats; i++ {
			if _, err := q.CountIndexed(doc); err != nil {
				return err
			}
		}
		return nil
	}
}

// RunPlanner measures the planner matrix.
func (h *Harness) RunPlanner() (PlannerReport, error) {
	var rep PlannerReport
	rep.BestWorstVsAuto = 0
	for _, c := range PlannerClasses {
		data, err := h.DatasetScaled(c.Dataset, c.Scale)
		if err != nil {
			return rep, err
		}
		res := PlannerClassResult{Class: c.Name, Dataset: c.Dataset,
			Query: c.Query, Bytes: len(data), Repeats: c.Repeats}

		// Auto: the library's own dispatch, fed the class's workload stats.
		auto, err := rsonpath.Compile(c.Query)
		if err != nil {
			return rep, fmt.Errorf("planner %s: %w", c.Name, err)
		}
		pl := auto.Explain(rsonpath.DocStats{Bytes: len(data), ExpectedRuns: c.Repeats})
		res.Strategy, res.Rule = pl.Strategy, pl.Rule
		autoRun := scanWorkload(auto, data, c.Repeats)
		if pl.Strategy == "indexed" {
			autoRun = indexWorkload(auto, data, c.Repeats)
		}
		if res.AutoSeconds, err = h.timeWorkload(autoRun); err != nil {
			return rep, fmt.Errorf("planner %s (auto): %w", c.Name, err)
		}

		// Forced alternatives: each strategy pinned for the whole workload.
		type forced struct {
			label string
			run   func() error
		}
		var alts []forced
		for _, kind := range []rsonpath.EngineKind{rsonpath.EngineRsonpath,
			rsonpath.EngineSurfer, rsonpath.EngineStackless} {
			q, err := rsonpath.Compile(c.Query, rsonpath.WithEngine(kind))
			if err == rsonpath.ErrUnsupportedQuery {
				res.Forced = append(res.Forced,
					PlannerForced{Label: "scan-" + kind.String(), Unsupported: true})
				continue
			}
			if err != nil {
				return rep, fmt.Errorf("planner %s (%v): %w", c.Name, kind, err)
			}
			alts = append(alts, forced{"scan-" + kind.String(), scanWorkload(q, data, c.Repeats)})
		}
		alts = append(alts, forced{"index-always", indexWorkload(auto, data, c.Repeats)})

		best, worst := math.Inf(1), 0.0
		for _, a := range alts {
			secs, err := h.timeWorkload(a.run)
			if err != nil {
				return rep, fmt.Errorf("planner %s (%s): %w", c.Name, a.label, err)
			}
			res.Forced = append(res.Forced, PlannerForced{Label: a.label, Seconds: secs})
			if secs < best {
				best, res.BestForced = secs, a.label
			}
			if secs > worst {
				worst, res.WorstForced = secs, a.label
			}
		}
		if best > 0 {
			res.AutoVsBest = res.AutoSeconds / best
		}
		if res.AutoSeconds > 0 {
			res.WorstVsAuto = worst / res.AutoSeconds
		}
		if res.AutoVsBest > rep.MaxAutoVsBest {
			rep.MaxAutoVsBest = res.AutoVsBest
		}
		if res.WorstVsAuto > rep.BestWorstVsAuto {
			rep.BestWorstVsAuto = res.WorstVsAuto
		}
		rep.Classes = append(rep.Classes, res)
	}
	return rep, nil
}

// CheckPlanner is the acceptance gate over a planner report (run by CI).
func CheckPlanner(rep PlannerReport) error {
	var bad []string
	for _, c := range rep.Classes {
		if c.AutoVsBest > AutoSlack {
			bad = append(bad, fmt.Sprintf(
				"%s: auto (%s) is %.2f× the best forced strategy (%s), ceiling %.1f×",
				c.Class, c.Strategy, c.AutoVsBest, c.BestForced, AutoSlack))
		}
	}
	if rep.BestWorstVsAuto < WorstMargin {
		bad = append(bad, fmt.Sprintf(
			"auto never beats the worst forced strategy by ≥%.1f× (best margin %.2f×); the planner is not earning its keep",
			WorstMargin, rep.BestWorstVsAuto))
	}
	if len(bad) > 0 {
		return fmt.Errorf("planner acceptance failed:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

// RenderPlanner prints the report as an aligned table.
func RenderPlanner(w io.Writer, rep PlannerReport) {
	fmt.Fprintf(w, "%-18s %8s %3s | %-10s %16s %10s | %-14s %8s | %-14s %8s\n",
		"class", "MiB", "N", "auto plan", "rule", "auto s", "best forced", "vs best", "worst forced", "vs worst")
	for _, c := range rep.Classes {
		fmt.Fprintf(w, "%-18s %8.1f %3d | %-10s %16s %10.4f | %-14s %7.2fx | %-14s %7.2fx\n",
			c.Class, float64(c.Bytes)/(1<<20), c.Repeats,
			c.Strategy, c.Rule, c.AutoSeconds,
			c.BestForced, c.AutoVsBest, c.WorstForced, c.WorstVsAuto)
	}
	fmt.Fprintf(w, "max auto/best %.2fx (ceiling %.1fx); best worst/auto %.2fx (need ≥%.1fx once)\n",
		rep.MaxAutoVsBest, AutoSlack, rep.BestWorstVsAuto, WorstMargin)
}
