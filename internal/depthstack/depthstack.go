// Package depthstack implements the sparse stack representations of §3.2.
//
// Stack is the depth-stack proper: instead of pushing on every opening
// character (height tied to tree depth), the engine tracks the depth in a
// counter and pushes a frame only when the automaton state changes, popping
// when the depth falls back to the recorded value. For a child-free query
// with n selectors the stack holds at most n frames, mirroring the n
// registers of the stackless algorithm of depth-register automata.
//
// Like the paper's SmallVec, Stack keeps up to InlineFrames frames in a
// fixed array inside the struct (the goroutine stack, when the Stack itself
// lives there) and spills to the heap only beyond that.
//
// KindMap and IntStack are auxiliary per-depth structures: one bit per
// depth for the open element's kind (object or array), and — only for
// queries with index selectors — one integer per open array for the current
// entry index. Both are linear in document depth with small constants, like
// the depth-stack itself (see DESIGN.md, deviation 1).
package depthstack

// InlineFrames is the number of frames stored without heap allocation,
// matching the paper's SmallVec configuration (128 frames, 512 bytes there).
const InlineFrames = 128

// Frame records the automaton state to restore when the document depth
// falls back to Depth.
type Frame struct {
	State int
	Depth int
}

// Stack is a depth-stack. The zero value is ready to use.
type Stack struct {
	frames []Frame
	inline [InlineFrames]Frame
	spill  bool
}

// Reset empties the stack, retaining the inline storage.
func (s *Stack) Reset() {
	s.frames = s.inline[:0]
	s.spill = false
}

// Len returns the number of frames.
func (s *Stack) Len() int { return len(s.frames) }

// Spilled reports whether the stack ever outgrew its inline storage.
func (s *Stack) Spilled() bool { return s.spill }

// Push records a state change that happened at the given depth.
func (s *Stack) Push(state, depth int) {
	if s.frames == nil {
		s.frames = s.inline[:0]
	}
	if len(s.frames) == cap(s.frames) {
		s.spill = true
	}
	s.frames = append(s.frames, Frame{State: state, Depth: depth})
}

// Top returns the most recent frame; ok is false when empty.
func (s *Stack) Top() (Frame, bool) {
	if len(s.frames) == 0 {
		return Frame{}, false
	}
	return s.frames[len(s.frames)-1], true
}

// Pop removes and returns the most recent frame. It must not be called on
// an empty stack.
func (s *Stack) Pop() Frame {
	f := s.frames[len(s.frames)-1]
	s.frames = s.frames[:len(s.frames)-1]
	return f
}

// KindMap records, per document depth, whether the open element at that
// depth is an object (true) or an array (false). It is written on every
// element entry and read by comma/colon toggling; because it is indexed by
// depth rather than kept as a push/pop stack, the engine's tail-skip can
// jump across whole element ranges without unwinding it — stale entries at
// intermediate depths are never read (see engine documentation). Inline
// storage covers depth 256; deeper documents spill to the heap. The zero
// value is ready to use.
type KindMap struct {
	words  []uint64
	inline [4]uint64
}

// Reset forgets all entries.
func (s *KindMap) Reset() {
	s.words = s.inline[:0]
}

// Set records the element kind at the given depth (>= 0).
func (s *KindMap) Set(depth int, isObject bool) {
	if s.words == nil {
		s.words = s.inline[:0]
	}
	word, bit := depth/64, uint(depth%64)
	for word >= len(s.words) {
		s.words = append(s.words, 0)
	}
	if isObject {
		s.words[word] |= 1 << bit
	} else {
		s.words[word] &^= 1 << bit
	}
}

// Get returns the element kind at the given depth. Depths never Set since
// the last Reset read as object; well-formed input always Sets a depth
// before reading it, so this default only shields scans of malformed input.
func (s *KindMap) Get(depth int) bool {
	if w := depth / 64; w < len(s.words) {
		return s.words[w]>>(uint(depth%64))&1 == 1
	}
	return true
}

// IntStack is a stack of ints with inline storage for 64 entries. The zero
// value is ready to use.
type IntStack struct {
	vals   []int
	inline [64]int
}

// Reset empties the stack.
func (s *IntStack) Reset() {
	s.vals = s.inline[:0]
}

// Len returns the number of entries.
func (s *IntStack) Len() int { return len(s.vals) }

// Push appends v.
func (s *IntStack) Push(v int) {
	if s.vals == nil {
		s.vals = s.inline[:0]
	}
	s.vals = append(s.vals, v)
}

// Pop removes the top entry. It must not be called on an empty stack.
func (s *IntStack) Pop() {
	s.vals = s.vals[:len(s.vals)-1]
}

// Top returns the top entry. It must not be called on an empty stack.
func (s *IntStack) Top() int { return s.vals[len(s.vals)-1] }

// Inc increments the top entry. It must not be called on an empty stack.
func (s *IntStack) Inc() { s.vals[len(s.vals)-1]++ }
