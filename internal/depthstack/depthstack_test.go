package depthstack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStackPushPop(t *testing.T) {
	var s Stack
	if s.Len() != 0 {
		t.Fatal("zero value not empty")
	}
	if _, ok := s.Top(); ok {
		t.Fatal("Top on empty returned ok")
	}
	s.Push(3, 1)
	s.Push(5, 2)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	f, ok := s.Top()
	if !ok || f.State != 5 || f.Depth != 2 {
		t.Fatalf("Top = %+v, %v", f, ok)
	}
	f = s.Pop()
	if f.State != 5 || f.Depth != 2 {
		t.Fatalf("Pop = %+v", f)
	}
	f = s.Pop()
	if f.State != 3 || f.Depth != 1 || s.Len() != 0 {
		t.Fatalf("Pop = %+v len=%d", f, s.Len())
	}
}

func TestStackInlineThenSpill(t *testing.T) {
	var s Stack
	for i := 0; i < InlineFrames; i++ {
		s.Push(i, i)
	}
	if s.Spilled() {
		t.Fatal("spilled within inline capacity")
	}
	s.Push(999, 999)
	if !s.Spilled() {
		t.Fatal("did not report spill past inline capacity")
	}
	// LIFO order preserved across the spill boundary.
	if f := s.Pop(); f.State != 999 {
		t.Fatalf("top after spill = %+v", f)
	}
	for i := InlineFrames - 1; i >= 0; i-- {
		if f := s.Pop(); f.State != i {
			t.Fatalf("frame %d = %+v", i, f)
		}
	}
}

func TestStackReset(t *testing.T) {
	var s Stack
	for i := 0; i < 200; i++ {
		s.Push(i, i)
	}
	s.Reset()
	if s.Len() != 0 || s.Spilled() {
		t.Fatal("Reset did not clear state")
	}
	s.Push(1, 1)
	if f, _ := s.Top(); f.State != 1 {
		t.Fatal("push after reset broken")
	}
}

func TestStackMatchesSliceModel(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var s Stack
	var model []Frame
	for op := 0; op < 5000; op++ {
		if len(model) == 0 || r.Intn(2) == 0 {
			f := Frame{State: r.Intn(100), Depth: r.Intn(100)}
			s.Push(f.State, f.Depth)
			model = append(model, f)
		} else {
			got := s.Pop()
			want := model[len(model)-1]
			model = model[:len(model)-1]
			if got != want {
				t.Fatalf("op %d: pop %+v, want %+v", op, got, want)
			}
		}
		if s.Len() != len(model) {
			t.Fatalf("op %d: len %d, want %d", op, s.Len(), len(model))
		}
	}
}

func TestKindMapModel(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	err := quick.Check(func(ops []bool) bool {
		var s KindMap
		model := map[int]bool{}
		for i, v := range ops {
			d := (i * 7) % 300
			s.Set(d, v)
			model[d] = v
			for dd, want := range model {
				if s.Get(dd) != want {
					return false
				}
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestKindMapDeepAndOverwrite(t *testing.T) {
	var s KindMap
	for i := 0; i < 1000; i++ {
		s.Set(i, i%3 == 0)
	}
	for i := 0; i < 1000; i++ {
		if s.Get(i) != (i%3 == 0) {
			t.Fatalf("entry %d wrong", i)
		}
	}
	s.Set(500, true)
	s.Set(500, false)
	if s.Get(500) {
		t.Fatal("overwrite failed")
	}
	s.Reset()
	s.Set(3, true)
	if !s.Get(3) {
		t.Fatal("set after reset failed")
	}
}

func TestIntStack(t *testing.T) {
	var s IntStack
	s.Push(0)
	s.Inc()
	s.Inc()
	if s.Top() != 2 {
		t.Fatalf("Top = %d", s.Top())
	}
	s.Push(7)
	if s.Top() != 7 || s.Len() != 2 {
		t.Fatal("push broken")
	}
	s.Pop()
	if s.Top() != 2 {
		t.Fatal("pop broken")
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("reset broken")
	}
}

func TestIntStackDeep(t *testing.T) {
	var s IntStack
	for i := 0; i < 500; i++ {
		s.Push(i)
	}
	for i := 499; i >= 0; i-- {
		if s.Top() != i {
			t.Fatalf("entry %d wrong", i)
		}
		s.Pop()
	}
}
