package loadgen

import (
	"context"
	"fmt"
	"testing"
	"time"

	"rsonpath/internal/server"
)

// startDaemon brings up a real rsonpathd server on a loopback port and
// returns its query endpoint.
func startDaemon(t *testing.T, cfg server.Config) string {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	srv := server.New(cfg)
	if err := srv.Listen(); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return fmt.Sprintf("http://%s/v1/query", srv.Addr())
}

// TestLoadgenAgainstServer runs a small concurrent load against a live
// daemon and expects every response intact: zero transport errors, zero
// non-200s, zero degraded outcomes.
func TestLoadgenAgainstServer(t *testing.T) {
	url := startDaemon(t, server.Config{Timeout: 5 * time.Second})
	rep, err := Run(context.Background(), Config{
		URL:         url,
		Query:       "$..b",
		Mode:        "count",
		Document:    []byte(`{"a": {"b": 1}, "b": [2, 3]}`),
		Concurrency: 4,
		Requests:    100,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Requests != 100 {
		t.Errorf("requests = %d, want 100", rep.Requests)
	}
	if rep.Errors != 0 || rep.NonOK != 0 || rep.Degraded != 0 {
		t.Errorf("errors=%d nonOK=%d degraded=%d, want all zero", rep.Errors, rep.NonOK, rep.Degraded)
	}
	if rep.StatusCounts["200"] != 100 {
		t.Errorf("status 200 count = %d, want 100", rep.StatusCounts["200"])
	}
	if rep.Throughput <= 0 || rep.LatencyP50MS <= 0 || rep.LatencyMaxMS < rep.LatencyP99MS {
		t.Errorf("implausible report: %+v", rep)
	}
}

// TestLoadgenCountsNonOK verifies rejected requests are tallied as non-OK,
// not dropped or misread as successes.
func TestLoadgenCountsNonOK(t *testing.T) {
	url := startDaemon(t, server.Config{})
	rep, err := Run(context.Background(), Config{
		URL:         url,
		Query:       "$[", // compile error: every request is a 400
		Document:    []byte(`{}`),
		Concurrency: 2,
		Requests:    10,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.NonOK != 10 || rep.StatusCounts["400"] != 10 {
		t.Errorf("nonOK=%d statuses=%v, want 10 rejections", rep.NonOK, rep.StatusCounts)
	}
}

// TestLoadgenDurationMode verifies the wall-clock budget terminates the run.
func TestLoadgenDurationMode(t *testing.T) {
	url := startDaemon(t, server.Config{})
	start := time.Now()
	rep, err := Run(context.Background(), Config{
		URL:         url,
		Query:       "$.a",
		Document:    []byte(`{"a": 1}`),
		Concurrency: 2,
		Duration:    150 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Requests == 0 {
		t.Errorf("no requests completed in the window")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("duration mode ran for %v", elapsed)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d, want 0 (cancellation mid-request must not count)", rep.Errors)
	}
}

// TestLoadgenConfigValidation covers the rejected configurations.
func TestLoadgenConfigValidation(t *testing.T) {
	cases := []Config{
		{},                            // no URL
		{URL: "http://x"},             // no query
		{URL: "http://x", Query: "$"}, // no budget
		{URL: "http://x", Query: "$",
			Requests: 1, Document: []byte(`{bad`)}, // invalid document
	}
	for i, cfg := range cases {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("case %d: Run accepted invalid config %+v", i, cfg)
		}
	}
}
