package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rsonpath/internal/server"
)

// startDaemon brings up a real rsonpathd server on a loopback port and
// returns its query endpoint.
func startDaemon(t *testing.T, cfg server.Config) string {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	srv := server.New(cfg)
	if err := srv.Listen(); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return fmt.Sprintf("http://%s/v1/query", srv.Addr())
}

// TestLoadgenAgainstServer runs a small concurrent load against a live
// daemon and expects every response intact: zero transport errors, zero
// non-200s, zero degraded outcomes.
func TestLoadgenAgainstServer(t *testing.T) {
	url := startDaemon(t, server.Config{Timeout: 5 * time.Second})
	rep, err := Run(context.Background(), Config{
		URL:         url,
		Query:       "$..b",
		Mode:        "count",
		Document:    []byte(`{"a": {"b": 1}, "b": [2, 3]}`),
		Concurrency: 4,
		Requests:    100,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Requests != 100 {
		t.Errorf("requests = %d, want 100", rep.Requests)
	}
	if rep.Errors != 0 || rep.NonOK != 0 || rep.Degraded != 0 {
		t.Errorf("errors=%d nonOK=%d degraded=%d, want all zero", rep.Errors, rep.NonOK, rep.Degraded)
	}
	if rep.StatusCounts["200"] != 100 {
		t.Errorf("status 200 count = %d, want 100", rep.StatusCounts["200"])
	}
	if rep.Throughput <= 0 || rep.LatencyP50MS <= 0 || rep.LatencyMaxMS < rep.LatencyP99MS {
		t.Errorf("implausible report: %+v", rep)
	}
}

// TestLoadgenCountsNonOK verifies rejected requests are tallied as non-OK,
// not dropped or misread as successes.
func TestLoadgenCountsNonOK(t *testing.T) {
	url := startDaemon(t, server.Config{})
	rep, err := Run(context.Background(), Config{
		URL:         url,
		Query:       "$[", // compile error: every request is a 400
		Document:    []byte(`{}`),
		Concurrency: 2,
		Requests:    10,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.NonOK != 10 || rep.StatusCounts["400"] != 10 {
		t.Errorf("nonOK=%d statuses=%v, want 10 rejections", rep.NonOK, rep.StatusCounts)
	}
}

// TestLoadgenDurationMode verifies the wall-clock budget terminates the run.
func TestLoadgenDurationMode(t *testing.T) {
	url := startDaemon(t, server.Config{})
	start := time.Now()
	rep, err := Run(context.Background(), Config{
		URL:         url,
		Query:       "$.a",
		Document:    []byte(`{"a": 1}`),
		Concurrency: 2,
		Duration:    150 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Requests == 0 {
		t.Errorf("no requests completed in the window")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("duration mode ran for %v", elapsed)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d, want 0 (cancellation mid-request must not count)", rep.Errors)
	}
}

// TestLoadgenOpenLoop drives a live daemon with metronome arrivals and
// verifies the offered rate is honored and the goodput accounting holds
// together: every arrival completed as a 200, so goodput equals throughput.
func TestLoadgenOpenLoop(t *testing.T) {
	url := startDaemon(t, server.Config{Timeout: 5 * time.Second})
	rep, err := Run(context.Background(), Config{
		URL:      url,
		Query:    "$.a",
		Mode:     "count",
		Document: []byte(`{"a": 1}`),
		Rate:     200,
		Requests: 60,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Requests != 60 || rep.Errors != 0 || rep.NonOK != 0 || rep.Shed != 0 || rep.Dropped != 0 {
		t.Fatalf("unexpected outcome tallies: %+v", rep)
	}
	// The schedule is 60 arrivals at 200/s = 300ms; allow generous slack for
	// a loaded CI host, but catch a generator that ignores the rate.
	if rep.OfferedRPS < 50 || rep.OfferedRPS > 450 {
		t.Errorf("offered rate %.0f req/s, want ~200", rep.OfferedRPS)
	}
	if rep.GoodputRPS <= 0 || rep.AcceptedP50MS <= 0 {
		t.Errorf("missing accepted-side stats: %+v", rep)
	}
}

// TestLoadgenShedAccounting verifies 429s land in Shed, not NonOK or
// Errors: shedding is the server behaving, and the exit-code logic in
// rsonload depends on the distinction.
func TestLoadgenShedAccounting(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error": {"message": "overload"}}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()
	rep, err := Run(context.Background(), Config{
		URL:      ts.URL,
		Query:    "$",
		Requests: 20,
		Rate:     500,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Shed != 20 || rep.NonOK != 0 || rep.Errors != 0 {
		t.Errorf("shed=%d nonOK=%d errors=%d, want 20/0/0", rep.Shed, rep.NonOK, rep.Errors)
	}
	if rep.StatusCounts["429"] != 20 {
		t.Errorf("status counts = %v, want 20 429s", rep.StatusCounts)
	}
	if rep.GoodputRPS != 0 || rep.AcceptedP50MS != 0 {
		t.Errorf("accepted-side stats nonzero with no 200s: %+v", rep)
	}
}

// TestLoadgenOpenLoopBoundedInflight pins the generator's in-flight bound:
// against a server that never answers, arrivals past the bound are dropped
// rather than accumulating goroutines behind a stalled socket.
func TestLoadgenOpenLoopBoundedInflight(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // hold the request until the run is over
	}))
	defer ts.Close()
	defer close(release)
	rep, err := Run(context.Background(), Config{
		URL:         ts.URL,
		Query:       "$",
		Requests:    10,
		Rate:        2000,
		Concurrency: 1,
		Timeout:     300 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Dropped < 8 {
		t.Errorf("dropped = %d, want >= 8 of 10 arrivals with in-flight bound 1", rep.Dropped)
	}
	if rep.Requests+rep.Dropped != 10 {
		t.Errorf("requests %d + dropped %d != 10 arrivals", rep.Requests, rep.Dropped)
	}
}

// TestLoadgenRawContentType posts the document verbatim as NDJSON with the
// query in URL parameters, the shape the overload benchmark relies on.
func TestLoadgenRawContentType(t *testing.T) {
	url := startDaemon(t, server.Config{Timeout: 5 * time.Second})
	rep, err := Run(context.Background(), Config{
		URL:            url,
		Query:          "$.a",
		Mode:           "count",
		Document:       []byte("{\"a\": 1}\n{\"a\": 2}\n{\"b\": 3}\n"),
		RawContentType: "application/x-ndjson",
		Concurrency:    2,
		Requests:       20,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Requests != 20 || rep.Errors != 0 || rep.NonOK != 0 {
		t.Errorf("unexpected tallies: %+v", rep)
	}
	if rep.StatusCounts["200"] != 20 {
		t.Errorf("status counts = %v, want 20 200s", rep.StatusCounts)
	}
}

// TestLoadgenConfigValidation covers the rejected configurations.
func TestLoadgenConfigValidation(t *testing.T) {
	cases := []Config{
		{},                            // no URL
		{URL: "http://x"},             // no query
		{URL: "http://x", Query: "$"}, // no budget
		{URL: "http://x", Query: "$",
			Requests: 1, Document: []byte(`{bad`)}, // invalid document
	}
	for i, cfg := range cases {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("case %d: Run accepted invalid config %+v", i, cfg)
		}
	}
}
