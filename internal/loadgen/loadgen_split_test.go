package loadgen

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"rsonpath/internal/server"
)

// TestLoadgenConnectErrorSplit points the generator at a port nothing
// listens on: every request dies before an HTTP status exists, so the
// whole error tally must land in ConnectErrors with ReadErrors at zero.
func TestLoadgenConnectErrorSplit(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // free the port; dials now get connection refused

	rep, err := Run(context.Background(), Config{
		URL:         "http://" + addr + "/v1/query",
		Query:       "$.a",
		Mode:        "count",
		Concurrency: 2,
		Requests:    10,
		Timeout:     2 * time.Second,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.ConnectErrors != 10 || rep.ReadErrors != 0 {
		t.Errorf("connect=%d read=%d, want 10/0", rep.ConnectErrors, rep.ReadErrors)
	}
	if rep.Errors != rep.ConnectErrors+rep.ReadErrors {
		t.Errorf("Errors=%d is not the sum of the split (%d+%d)",
			rep.Errors, rep.ConnectErrors, rep.ReadErrors)
	}
}

// TestLoadgenReadErrorSplit serves a 200 whose body is cut short of its
// declared Content-Length — the status arrived, the body read failed — and
// expects the error classified as a ReadError, with the status still
// tallied under its code.
func TestLoadgenReadErrorSplit(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Length", "1000")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"trunc`)) // 7 of 1000 bytes, then the handler returns
	}))
	defer srv.Close()

	rep, err := Run(context.Background(), Config{
		URL:      srv.URL,
		Query:    "$.a",
		Mode:     "count",
		Requests: 5,
		Timeout:  2 * time.Second,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.ReadErrors != 5 || rep.ConnectErrors != 0 {
		t.Errorf("read=%d connect=%d, want 5/0", rep.ReadErrors, rep.ConnectErrors)
	}
	if rep.StatusCounts["200"] != 5 {
		t.Errorf("status counts %v do not record the 200s that preceded the failed reads", rep.StatusCounts)
	}
}

// TestLoadgenOnResult checks the per-request observation hook: one call per
// recorded request, carrying the status and a plausible latency, without
// perturbing the aggregate report.
func TestLoadgenOnResult(t *testing.T) {
	url := startDaemon(t, server.Config{Timeout: 5 * time.Second})
	var mu sync.Mutex
	var results []Result
	rep, err := Run(context.Background(), Config{
		URL:         url,
		Query:       "$..b",
		Mode:        "count",
		Document:    []byte(`{"a": {"b": 1}, "b": 2}`),
		Concurrency: 4,
		Requests:    50,
		OnResult: func(r Result) {
			mu.Lock()
			results = append(results, r)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(results) != rep.Requests {
		t.Fatalf("hook fired %d times for %d recorded requests", len(results), rep.Requests)
	}
	for i, r := range results {
		if r.Status != http.StatusOK || r.Err != nil || r.Latency <= 0 || r.When.IsZero() {
			t.Fatalf("result %d implausible: %+v", i, r)
		}
	}
}

// TestLoadgenTailPercentiles sanity-checks the new tail fields: p99.9 sits
// between p99 and max for both the all-requests and accepted-only series.
func TestLoadgenTailPercentiles(t *testing.T) {
	url := startDaemon(t, server.Config{Timeout: 5 * time.Second})
	rep, err := Run(context.Background(), Config{
		URL:         url,
		Query:       "$..b",
		Mode:        "count",
		Document:    []byte(`{"a": {"b": 1}}`),
		Concurrency: 4,
		Requests:    200,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.LatencyP999MS < rep.LatencyP99MS || rep.LatencyMaxMS < rep.LatencyP999MS {
		t.Errorf("all-requests tail out of order: p99=%.3f p99.9=%.3f max=%.3f",
			rep.LatencyP99MS, rep.LatencyP999MS, rep.LatencyMaxMS)
	}
	if rep.AcceptedP999MS < rep.AcceptedP99MS || rep.AcceptedMaxMS < rep.AcceptedP999MS {
		t.Errorf("accepted tail out of order: p99=%.3f p99.9=%.3f max=%.3f",
			rep.AcceptedP99MS, rep.AcceptedP999MS, rep.AcceptedMaxMS)
	}
	if rep.AcceptedMaxMS <= 0 {
		t.Errorf("AcceptedMaxMS = %.3f, want > 0", rep.AcceptedMaxMS)
	}
}
