// Package loadgen drives an rsonpathd instance with concurrent /v1/query
// requests and reports throughput and latency percentiles. It backs the
// rsonload command and the rsonbench serve and overload experiments.
//
// Two arrival models are supported. The default is closed-loop: Concurrency
// workers each keep exactly one request in flight, so the offered load
// adapts to the server's speed — useful for measuring peak throughput but
// useless for overload, because a slowing server throttles its own load.
// Setting Rate switches to open-loop: requests arrive on a fixed metronome
// regardless of how the server is doing, which is what real traffic does
// and what admission control must be tested against.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes one load run.
type Config struct {
	// URL is the full query endpoint, e.g. "http://127.0.0.1:8077/v1/query".
	URL string
	// Query is the JSONPath query text sent in every request.
	Query string
	// Mode is the requested result mode: "count", "offsets" or "values"
	// (empty = server default).
	Mode string
	// Document is the JSON document sent in every request body.
	Document []byte
	// Concurrency is the number of closed-loop workers (default 1). In
	// open-loop mode it instead bounds the generator's in-flight requests
	// (default 256): arrivals past the bound are dropped and reported, so a
	// stalled server cannot make the generator hoard goroutines.
	Concurrency int
	// Requests is the total request budget; 0 means run until Duration (or
	// ctx) expires. In open-loop mode the budget counts arrivals, including
	// dropped ones.
	Requests int
	// Duration bounds the run in wall-clock time when Requests is 0.
	Duration time.Duration
	// Timeout is the per-request HTTP client timeout (default 10s).
	Timeout time.Duration
	// Rate, when positive, selects open-loop arrivals at this many requests
	// per second. Zero keeps the closed-loop worker model.
	Rate float64
	// RawContentType, when set, posts Document verbatim as the request body
	// with this Content-Type (the daemon's raw and NDJSON request forms)
	// and passes Query and Mode as URL parameters instead of wrapping
	// everything in the JSON envelope.
	RawContentType string
	// OnResult, when set, observes every recorded request as it completes
	// (concurrently, from the request's own goroutine). It lets a harness
	// trace goodput over time — the chaos experiment's recovery windows —
	// without loadgen growing a time-series model. Canceled end-of-run
	// requests are not reported, matching the Report's own accounting.
	OnResult func(Result)
}

// Result is one completed request as seen by Config.OnResult.
type Result struct {
	When     time.Time // completion time
	Status   int       // HTTP status; 0 when the request never got one
	Degraded bool
	Latency  time.Duration
	Err      error
}

// Report aggregates one load run.
//
// A 429 is the admission controller doing its job, so shed responses are
// tallied separately from NonOK (which keeps meaning "the server misbehaved
// or rejected the request itself"). Latency percentiles cover every
// completed request; the Accepted percentiles cover only 200s, because
// under overload the interesting number is what admitted requests
// experienced, not the (fast) rejections averaged in.
// Errors splits into ConnectErrors (the request never yielded an HTTP
// status: dial refused, connection reset before headers, client timeout
// with nothing back — the failures a dying server process causes) and
// ReadErrors (a status arrived but the body read or decode failed —
// truncation and garbling, which implicate the response path instead).
type Report struct {
	Requests       int            `json:"requests"`
	Errors         int            `json:"errors"`
	ConnectErrors  int            `json:"connect_errors"`
	ReadErrors     int            `json:"read_errors"`
	NonOK          int            `json:"non_ok"`
	Shed           int            `json:"shed"`
	Degraded       int            `json:"degraded"`
	Dropped        int            `json:"dropped_arrivals,omitempty"`
	ElapsedSeconds float64        `json:"elapsed_seconds"`
	Throughput     float64        `json:"throughput_rps"`
	OfferedRPS     float64        `json:"offered_rps,omitempty"`
	GoodputRPS     float64        `json:"goodput_rps"`
	LatencyP50MS   float64        `json:"latency_p50_ms"`
	LatencyP90MS   float64        `json:"latency_p90_ms"`
	LatencyP99MS   float64        `json:"latency_p99_ms"`
	LatencyP999MS  float64        `json:"latency_p999_ms"`
	LatencyMaxMS   float64        `json:"latency_max_ms"`
	AcceptedP50MS  float64        `json:"accepted_p50_ms"`
	AcceptedP99MS  float64        `json:"accepted_p99_ms"`
	AcceptedP999MS float64        `json:"accepted_p999_ms"`
	AcceptedMaxMS  float64        `json:"accepted_max_ms"`
	StatusCounts   map[string]int `json:"status_counts"`
}

// responseProbe is the slice of the server's response the generator
// inspects: enough to notice degraded supervision outcomes.
type responseProbe struct {
	Degraded bool `json:"degraded"`
}

// collector accumulates observations from however many goroutines the
// arrival model spawns. One mutex is plenty: the critical section is a few
// integer bumps, and the generator tops out well below contention range.
type collector struct {
	mu            sync.Mutex
	requests      int
	connectErrors int
	readErrors    int
	nonOK         int
	shed          int
	degraded      int
	dropped       int
	all, accepted []time.Duration
	statuses      map[int]int
	onResult      func(Result)
}

// record files one completed request. canceled marks a transport error that
// happened because the run itself ended mid-request — not a server fault,
// so the observation is discarded.
func (c *collector) record(canceled bool, status int, degraded bool, d time.Duration, err error) {
	if err != nil && canceled {
		return
	}
	c.mu.Lock()
	c.requests++
	c.all = append(c.all, d)
	switch {
	case err != nil && status == 0:
		c.connectErrors++
	case err != nil:
		// A status arrived before the body read failed; keep it in the
		// per-code tally so a storm of truncated 200s is visible there too.
		c.statuses[status]++
		c.readErrors++
	case status == http.StatusOK:
		c.statuses[status]++
		c.accepted = append(c.accepted, d)
		if degraded {
			c.degraded++
		}
	case status == http.StatusTooManyRequests:
		c.statuses[status]++
		c.shed++
	default:
		c.statuses[status]++
		c.nonOK++
	}
	c.mu.Unlock()
	if c.onResult != nil {
		c.onResult(Result{When: time.Now(), Status: status, Degraded: degraded, Latency: d, Err: err})
	}
}

func (c *collector) drop() {
	c.mu.Lock()
	c.dropped++
	c.mu.Unlock()
}

// Run executes the configured load against the server and blocks until the
// request budget is spent, the duration elapses, or ctx is canceled. Every
// response body is fully read and decoded, so a garbled response counts as
// an error rather than passing silently.
func Run(ctx context.Context, cfg Config) (Report, error) {
	if cfg.URL == "" {
		return Report{}, errors.New("loadgen: URL required")
	}
	if cfg.Query == "" {
		return Report{}, errors.New("loadgen: query required")
	}
	if cfg.Concurrency <= 0 {
		if cfg.Rate > 0 {
			cfg.Concurrency = 256
		} else {
			cfg.Concurrency = 1
		}
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Requests <= 0 && cfg.Duration <= 0 {
		return Report{}, errors.New("loadgen: need a request budget or a duration")
	}
	doc := cfg.Document
	if len(doc) == 0 {
		doc = []byte(`{}`)
	}
	// The payload is identical for every request; build it once. Raw form:
	// the document IS the body (NDJSON is newline-delimited JSONs, so no
	// whole-body validity check applies) and query/mode ride in the URL.
	// Envelope form: the document is embedded verbatim (json.RawMessage
	// survives Marshal as-is only if already compact, so splice by hand
	// like the server tests do).
	target := cfg.URL
	var payload []byte
	if cfg.RawContentType != "" {
		sep := "?"
		if strings.Contains(target, "?") {
			sep = "&"
		}
		target += sep + "query=" + url.QueryEscape(cfg.Query)
		if cfg.Mode != "" {
			target += "&mode=" + url.QueryEscape(cfg.Mode)
		}
		payload = doc
	} else {
		if !json.Valid(doc) {
			return Report{}, errors.New("loadgen: document is not valid JSON")
		}
		var body bytes.Buffer
		body.WriteString(`{"query": `)
		q, _ := json.Marshal(cfg.Query)
		body.Write(q)
		if cfg.Mode != "" {
			fmt.Fprintf(&body, `, "mode": %q`, cfg.Mode)
		}
		body.WriteString(`, "document": `)
		body.Write(doc)
		body.WriteString(`}`)
		payload = body.Bytes()
	}

	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Concurrency,
			MaxIdleConnsPerHost: cfg.Concurrency,
		},
	}
	defer client.CloseIdleConnections()

	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	ctype := cfg.RawContentType
	if ctype == "" {
		ctype = "application/json"
	}
	col := &collector{statuses: make(map[int]int), onResult: cfg.OnResult}
	start := time.Now()
	var offered int
	var offerWindow time.Duration
	if cfg.Rate > 0 {
		offered, offerWindow = openLoop(ctx, client, cfg, target, ctype, payload, col)
	} else {
		closedLoop(ctx, client, cfg, target, ctype, payload, col)
	}
	elapsed := time.Since(start)

	rep := Report{
		Requests:      col.requests,
		Errors:        col.connectErrors + col.readErrors,
		ConnectErrors: col.connectErrors,
		ReadErrors:    col.readErrors,
		NonOK:         col.nonOK,
		Shed:          col.shed,
		Degraded:      col.degraded,
		Dropped:       col.dropped,
		StatusCounts:  make(map[string]int),
	}
	for code, n := range col.statuses {
		rep.StatusCounts[fmt.Sprint(code)] += n
	}
	rep.ElapsedSeconds = elapsed.Seconds()
	if elapsed > 0 {
		rep.Throughput = float64(rep.Requests) / elapsed.Seconds()
		rep.GoodputRPS = float64(len(col.accepted)) / elapsed.Seconds()
	}
	if offerWindow > 0 {
		rep.OfferedRPS = float64(offered) / offerWindow.Seconds()
	}
	sort.Slice(col.all, func(i, j int) bool { return col.all[i] < col.all[j] })
	sort.Slice(col.accepted, func(i, j int) bool { return col.accepted[i] < col.accepted[j] })
	rep.LatencyP50MS = percentileMS(col.all, 0.50)
	rep.LatencyP90MS = percentileMS(col.all, 0.90)
	rep.LatencyP99MS = percentileMS(col.all, 0.99)
	rep.LatencyP999MS = percentileMS(col.all, 0.999)
	if n := len(col.all); n > 0 {
		rep.LatencyMaxMS = float64(col.all[n-1]) / float64(time.Millisecond)
	}
	rep.AcceptedP50MS = percentileMS(col.accepted, 0.50)
	rep.AcceptedP99MS = percentileMS(col.accepted, 0.99)
	rep.AcceptedP999MS = percentileMS(col.accepted, 0.999)
	if n := len(col.accepted); n > 0 {
		rep.AcceptedMaxMS = float64(col.accepted[n-1]) / float64(time.Millisecond)
	}
	return rep, nil
}

// closedLoop runs Concurrency workers, each with one request in flight.
func closedLoop(ctx context.Context, client *http.Client, cfg Config, target, ctype string, payload []byte, col *collector) {
	var (
		issued atomic.Int64 // tickets taken against cfg.Requests
		wg     sync.WaitGroup
	)
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				if cfg.Requests > 0 && issued.Add(1) > int64(cfg.Requests) {
					return
				}
				t0 := time.Now()
				status, degraded, err := do(ctx, client, target, ctype, payload)
				col.record(ctx.Err() != nil, status, degraded, time.Since(t0), err)
				if err != nil && ctx.Err() != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
}

// openLoop fires arrivals on a fixed schedule: tick k is due at
// start + k/Rate, and a generator that falls behind (scheduler hiccup)
// catches up by firing immediately rather than silently lowering the rate.
// Each arrival gets its own goroutine so a slow response never delays the
// next arrival — unless the in-flight bound is hit, in which case the
// arrival is dropped and counted (the client refusing to model infinite
// patience is itself a datum). Returns the number of arrivals offered and
// the length of the arrival window (the drain time after the last arrival
// is excluded, so OfferedRPS reflects the configured rate).
func openLoop(ctx context.Context, client *http.Client, cfg Config, target, ctype string, payload []byte, col *collector) (offered int, window time.Duration) {
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	var (
		inflight atomic.Int64
		wg       sync.WaitGroup
	)
	start := time.Now()
	next := start
	for {
		if ctx.Err() != nil {
			break
		}
		if cfg.Requests > 0 && offered >= cfg.Requests {
			break
		}
		if d := time.Until(next); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
			case <-t.C:
			}
			if ctx.Err() != nil {
				break
			}
		}
		next = next.Add(interval)
		offered++
		if inflight.Load() >= int64(cfg.Concurrency) {
			col.drop()
			continue
		}
		inflight.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer inflight.Add(-1)
			t0 := time.Now()
			status, degraded, err := do(ctx, client, target, ctype, payload)
			col.record(ctx.Err() != nil, status, degraded, time.Since(t0), err)
		}()
	}
	window = time.Since(start)
	wg.Wait()
	return offered, window
}

// do issues one request and reports the status code and whether the server
// marked the run degraded. The body is read to EOF so the connection is
// reusable and truncated responses surface as errors.
func do(ctx context.Context, client *http.Client, target, ctype string, payload []byte) (status int, degraded bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, bytes.NewReader(payload))
	if err != nil {
		return 0, false, err
	}
	req.Header.Set("Content-Type", ctype)
	resp, err := client.Do(req)
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, false, err
	}
	if resp.StatusCode == http.StatusOK {
		var probe responseProbe
		if err := json.Unmarshal(body, &probe); err != nil {
			return resp.StatusCode, false, fmt.Errorf("garbled response body: %w", err)
		}
		return resp.StatusCode, probe.Degraded, nil
	}
	return resp.StatusCode, false, nil
}

// percentileMS reads the p-th percentile from sorted latencies, in
// milliseconds (nearest-rank).
func percentileMS(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Millisecond)
}
