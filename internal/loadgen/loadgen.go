// Package loadgen drives an rsonpathd instance with concurrent /v1/query
// requests and reports throughput and latency percentiles. It backs the
// rsonload command and the rsonbench serve experiment.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes one load run.
type Config struct {
	// URL is the full query endpoint, e.g. "http://127.0.0.1:8077/v1/query".
	URL string
	// Query is the JSONPath query text sent in every request.
	Query string
	// Mode is the requested result mode: "count", "offsets" or "values"
	// (empty = server default).
	Mode string
	// Document is the JSON document sent in every request body.
	Document []byte
	// Concurrency is the number of worker goroutines (default 1).
	Concurrency int
	// Requests is the total request budget; 0 means run until Duration (or
	// ctx) expires.
	Requests int
	// Duration bounds the run in wall-clock time when Requests is 0.
	Duration time.Duration
	// Timeout is the per-request HTTP client timeout (default 10s).
	Timeout time.Duration
}

// Report aggregates one load run.
type Report struct {
	Requests       int            `json:"requests"`
	Errors         int            `json:"errors"`
	NonOK          int            `json:"non_ok"`
	Degraded       int            `json:"degraded"`
	ElapsedSeconds float64        `json:"elapsed_seconds"`
	Throughput     float64        `json:"throughput_rps"`
	LatencyP50MS   float64        `json:"latency_p50_ms"`
	LatencyP90MS   float64        `json:"latency_p90_ms"`
	LatencyP99MS   float64        `json:"latency_p99_ms"`
	LatencyMaxMS   float64        `json:"latency_max_ms"`
	StatusCounts   map[string]int `json:"status_counts"`
}

// responseProbe is the slice of the server's response the generator
// inspects: enough to notice degraded supervision outcomes.
type responseProbe struct {
	Degraded bool `json:"degraded"`
}

// Run executes the configured load against the server and blocks until the
// request budget is spent, the duration elapses, or ctx is canceled. Every
// response body is fully read and decoded, so a garbled response counts as
// an error rather than passing silently.
func Run(ctx context.Context, cfg Config) (Report, error) {
	if cfg.URL == "" {
		return Report{}, errors.New("loadgen: URL required")
	}
	if cfg.Query == "" {
		return Report{}, errors.New("loadgen: query required")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Requests <= 0 && cfg.Duration <= 0 {
		return Report{}, errors.New("loadgen: need a request budget or a duration")
	}
	doc := cfg.Document
	if len(doc) == 0 {
		doc = []byte(`{}`)
	}
	if !json.Valid(doc) {
		return Report{}, errors.New("loadgen: document is not valid JSON")
	}

	// The envelope is identical for every request; build it once. The
	// document is embedded verbatim (json.RawMessage survives Marshal as-is
	// only if already compact, so splice by hand like the server tests do).
	var body bytes.Buffer
	body.WriteString(`{"query": `)
	q, _ := json.Marshal(cfg.Query)
	body.Write(q)
	if cfg.Mode != "" {
		fmt.Fprintf(&body, `, "mode": %q`, cfg.Mode)
	}
	body.WriteString(`, "document": `)
	body.Write(doc)
	body.WriteString(`}`)
	payload := body.Bytes()

	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Concurrency,
			MaxIdleConnsPerHost: cfg.Concurrency,
		},
	}
	defer client.CloseIdleConnections()

	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	type workerStats struct {
		requests, errors, nonOK, degraded int
		latencies                         []time.Duration
		statuses                          map[int]int
	}
	var (
		issued atomic.Int64 // tickets taken against cfg.Requests
		wg     sync.WaitGroup
		stats  = make([]workerStats, cfg.Concurrency)
	)
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(st *workerStats) {
			defer wg.Done()
			st.statuses = make(map[int]int)
			for {
				if ctx.Err() != nil {
					return
				}
				if cfg.Requests > 0 && issued.Add(1) > int64(cfg.Requests) {
					return
				}
				t0 := time.Now()
				status, degraded, err := do(ctx, client, cfg.URL, payload)
				st.requests++
				st.latencies = append(st.latencies, time.Since(t0))
				switch {
				case err != nil:
					if ctx.Err() != nil {
						// The run ended mid-request; not a server fault.
						st.requests--
						st.latencies = st.latencies[:len(st.latencies)-1]
						return
					}
					st.errors++
				case status != http.StatusOK:
					st.nonOK++
					st.statuses[status]++
				default:
					st.statuses[status]++
					if degraded {
						st.degraded++
					}
				}
			}
		}(&stats[w])
	}
	wg.Wait()
	elapsed := time.Since(start)

	var (
		rep       = Report{StatusCounts: make(map[string]int)}
		latencies []time.Duration
	)
	for i := range stats {
		st := &stats[i]
		rep.Requests += st.requests
		rep.Errors += st.errors
		rep.NonOK += st.nonOK
		rep.Degraded += st.degraded
		latencies = append(latencies, st.latencies...)
		for code, n := range st.statuses {
			rep.StatusCounts[fmt.Sprint(code)] += n
		}
	}
	rep.ElapsedSeconds = elapsed.Seconds()
	if elapsed > 0 {
		rep.Throughput = float64(rep.Requests) / elapsed.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.LatencyP50MS = percentileMS(latencies, 0.50)
	rep.LatencyP90MS = percentileMS(latencies, 0.90)
	rep.LatencyP99MS = percentileMS(latencies, 0.99)
	if n := len(latencies); n > 0 {
		rep.LatencyMaxMS = float64(latencies[n-1]) / float64(time.Millisecond)
	}
	return rep, nil
}

// do issues one request and reports the status code and whether the server
// marked the run degraded. The body is read to EOF so the connection is
// reusable and truncated responses surface as errors.
func do(ctx context.Context, client *http.Client, url string, payload []byte) (status int, degraded bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return 0, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, false, err
	}
	if resp.StatusCode == http.StatusOK {
		var probe responseProbe
		if err := json.Unmarshal(body, &probe); err != nil {
			return resp.StatusCode, false, fmt.Errorf("garbled response body: %w", err)
		}
		return resp.StatusCode, probe.Degraded, nil
	}
	return resp.StatusCode, false, nil
}

// percentileMS reads the p-th percentile from sorted latencies, in
// milliseconds (nearest-rank).
func percentileMS(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Millisecond)
}
