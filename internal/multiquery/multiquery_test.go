package multiquery

import (
	"errors"
	"fmt"
	"testing"

	"rsonpath/internal/automaton"
	"rsonpath/internal/engine"
	"rsonpath/internal/jsongen"
	"rsonpath/internal/jsonpath"
)

func compileSet(t *testing.T, queries []string) *Set {
	t.Helper()
	dfas := make([]*automaton.DFA, len(queries))
	for i, src := range queries {
		q, err := jsonpath.Parse(src)
		if err != nil {
			t.Fatalf("parse %s: %v", src, err)
		}
		dfas[i], err = automaton.Compile(q, automaton.Options{})
		if err != nil {
			t.Fatalf("compile %s: %v", src, err)
		}
	}
	return New(dfas)
}

func runSet(t *testing.T, s *Set, data []byte) [][]int {
	t.Helper()
	out := make([][]int, s.Len())
	if err := s.Run(data, func(q, pos int) { out[q] = append(out[q], pos) }); err != nil {
		t.Fatalf("set run: %v", err)
	}
	return out
}

// TestDifferentialAgainstEngine runs query sets over the synthetic
// benchmark documents and requires byte-identical per-query match offsets
// between the shared pass and N independent engine runs.
func TestDifferentialAgainstEngine(t *testing.T) {
	cases := []struct {
		dataset string
		queries []string
	}{
		{"crossref", []string{
			"$..DOI",
			"$..author..affiliation..name",
			"$..title",
			"$..author..ORCID",
			"$.items.*.reference.*.key",
			"$..издатель", // absent label: stays rejecting everywhere
		}},
		{"ast", []string{
			"$..decl.name",
			"$..inner..inner..type.qualType",
			"$..inner..type.qualType",
		}},
		{"twitter_small", []string{
			"$.search_metadata.count",
			"$..count",
			"$..hashtags..text",
			"$.statuses[0].id",
			"$.statuses[2:5].text",
		}},
		{"bestbuy", []string{
			"$.products.*.categoryPath.*.id",
			"$..videoChapters..chapter",
			"$.products[0].sku",
		}},
	}
	for _, c := range cases {
		t.Run(c.dataset, func(t *testing.T) {
			data, err := jsongen.Generate(c.dataset, 128*1024, 11)
			if err != nil {
				t.Fatal(err)
			}
			set := compileSet(t, c.queries)
			got := runSet(t, set, data)
			for i, src := range c.queries {
				e, err := engine.CompileQuery(src, engine.Options{})
				if err != nil {
					t.Fatalf("engine compile %s: %v", src, err)
				}
				want, err := e.Matches(data)
				if err != nil {
					t.Fatalf("engine run %s: %v", src, err)
				}
				if fmt.Sprint(got[i]) != fmt.Sprint(want) {
					t.Errorf("%s: set %v, engine %v", src, len(got[i]), len(want))
				}
			}
		})
	}
}

func TestEmptyAndAtomicDocuments(t *testing.T) {
	set := compileSet(t, []string{"$.a", "$..b"})
	for _, doc := range []string{"", "   ", "\n\t"} {
		n := 0
		if err := set.Run([]byte(doc), func(int, int) { n++ }); err != nil {
			t.Errorf("doc %q: %v", doc, err)
		}
		if n != 0 {
			t.Errorf("doc %q: %d matches", doc, n)
		}
	}
	// Atomic root: only $ matches.
	rootSet := compileSet(t, []string{"$", "$.a"})
	got := runSet(t, rootSet, []byte(`  42`))
	if fmt.Sprint(got) != "[[2] []]" {
		t.Errorf("atomic root: %v", got)
	}
}

func TestEmptySetRuns(t *testing.T) {
	set := New(nil)
	if err := set.Run([]byte(`{"a": 1}`), func(int, int) {
		t.Fatal("emit on empty set")
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDocumentOrderAcrossQueries(t *testing.T) {
	set := compileSet(t, []string{"$..b", "$..a"})
	doc := []byte(`{"a": 1, "b": {"a": 2}}`)
	var trace []string
	if err := set.Run(doc, func(q, pos int) {
		trace = append(trace, fmt.Sprintf("%d@%d", q, pos))
	}); err != nil {
		t.Fatal(err)
	}
	// "a":1 at 6, "b":{...} at 14, inner "a":2 at 20.
	want := "[1@6 0@14 1@20]"
	if fmt.Sprint(trace) != want {
		t.Errorf("trace %v, want %v", trace, want)
	}
}

func TestMalformedInput(t *testing.T) {
	set := compileSet(t, []string{"$.a.b", "$..c"})
	for _, doc := range []string{`{"a": {`, `{"a": [1, 2`, `[`} {
		err := set.Run([]byte(doc), func(int, int) {})
		if !errors.Is(err, engine.ErrMalformed) {
			t.Errorf("doc %q: error %v, want ErrMalformed", doc, err)
		}
	}
}
