// Package multiquery evaluates a set of compiled query automata over one
// document in a single pass: one shared SWAR classification stream (quote,
// structural, and depth classifiers — the cost that dominates the paper's
// profile) drives N independent automaton simulations, each with its own
// depth-stack and state, emitting (queryIndex, offset) matches in document
// order.
//
// Sharing changes the skipping calculus of §3.3. A fast-forward is sound for
// the set only when it is sound for every member, so every decision is taken
// on the intersection of what the live automata allow:
//
//   - skipping children  — a subtree is fast-forwarded over only when every
//     automaton enters it in a rejecting state;
//   - skipping siblings  — the remaining siblings are skipped only when
//     every automaton just matched a unitary child;
//   - skipping leaves    — commas and colons are toggled on when any
//     automaton wants them (the union: enabling a symbol is always sound,
//     disabling requires unanimity).
//
// Head-skip and tail-skip (seeking labels with memmem) are not shared in
// this version: with several sought labels the seek target is the minimum
// over per-label occurrences, which requires a multi-pattern seeker; the
// driver degrades to the streaming pass instead of risking a missed match.
//
// The document's structural facts — depth, the element kind per depth, the
// entry index per open array — are properties of the input, not of any
// automaton, so they are tracked once and shared by all steppers.
package multiquery

import (
	"rsonpath/internal/automaton"
	"rsonpath/internal/classifier"
	"rsonpath/internal/depthstack"
	"rsonpath/internal/engine"
	"rsonpath/internal/errs"
	"rsonpath/internal/input"
)

// Set is a compiled set of query automata evaluated in one shared pass. It
// is immutable once runs have started and safe for concurrent use: each Run
// gets its own state. Limits may be configured between New and the first
// Run.
type Set struct {
	dfas        []*automaton.DFA
	needsIndex  bool
	maxDepth    int
	maxDocBytes int
}

// Limits configures the shared pass's resource limits: maxDepth caps the
// walked document nesting, maxDocBytes the document size known up front.
// Either 0 or negative disables that check. Call before the first Run.
func (s *Set) Limits(maxDepth, maxDocBytes int) {
	s.maxDepth = maxDepth
	s.maxDocBytes = maxDocBytes
}

// New builds a set over compiled automata. The slice is retained.
func New(dfas []*automaton.DFA) *Set {
	s := &Set{dfas: dfas}
	for _, d := range dfas {
		for i := range d.States {
			if d.States[i].NeedsIndexInArray {
				s.needsIndex = true
			}
		}
	}
	return s
}

// Len returns the number of queries in the set.
func (s *Set) Len() int { return len(s.dfas) }

// Run scans data once, invoking emit with the query index and the byte
// offset of each matched value's first character. Matches are reported in
// document order; matches of different queries at the same offset are
// reported in query order. Empty and whitespace-only documents yield zero
// matches and a nil error (a batch of queries over no document matches
// nothing), unlike the single-query engine, which reports them as malformed.
func (s *Set) Run(data []byte, emit func(query, pos int)) error {
	return s.RunInput(input.NewBytes(data), emit)
}

// RunInput is Run over any input source. Over a window-bounded input the
// shared pass's memory stays bounded by the window; a document feature
// larger than the window surfaces as *input.Error.
func (s *Set) RunInput(in input.Input, emit func(query, pos int)) error {
	return input.Guard(func() error { return s.runInput(in, nil, emit) })
}

// RunPlanes is RunInput over a document whose mask planes were precomputed
// with classifier.BuildPlanes: the one shared classification pass the set
// already amortizes over its members becomes a set of plane lookups, so
// repeated evaluations over the same document re-derive nothing. in must
// present exactly the bytes the planes were built from.
func (s *Set) RunPlanes(in input.Input, planes *classifier.Planes, emit func(query, pos int)) error {
	return input.Guard(func() error { return s.runInput(in, planes, emit) })
}

func (s *Set) runInput(in input.Input, planes *classifier.Planes, emit func(query, pos int)) error {
	if len(s.dfas) == 0 {
		return nil
	}
	if max := s.maxDocBytes; max > 0 {
		if n := in.Len(); n >= 0 && n > max {
			return errs.DocBytesLimit(max, max)
		}
	}
	rootPos := engine.FirstNonWS(in, 0)
	c, ok := in.ByteAt(rootPos)
	if !ok {
		return nil
	}
	r := &run{
		set:      s,
		in:       in,
		emit:     emit,
		steppers: make([]engine.Stepper, len(s.dfas)),
		targets:  make([]automaton.StateID, len(s.dfas)),
	}
	if c != '{' && c != '[' {
		// Atomic root: nothing below it, but the lone scalar must still be
		// a complete value with nothing after it.
		end, bad := input.AtomSpan(in, rootPos)
		if bad != "" {
			return r.errMalformed(end, bad)
		}
		if p, found := input.TrailingContent(in, end); found {
			return r.errMalformed(p, "trailing content")
		}
		for i, d := range s.dfas {
			r.steppers[i].Init(d)
			if r.steppers[i].InitialAccepting() {
				emit(i, rootPos)
			}
		}
		return nil
	}
	for i, d := range s.dfas {
		r.steppers[i].Init(d)
		if r.steppers[i].InitialAccepting() {
			emit(i, rootPos)
		}
	}
	if planes != nil {
		r.stream = classifier.NewStreamPlanes(in, planes)
	} else {
		r.stream = classifier.NewStreamInput(in)
	}
	r.iter = classifier.NewStructural(r.stream, rootPos+1)
	return r.scan(rootPos, c)
}

// run is the per-document execution state: the shared stream plus the
// document-structural trackers, and one stepper per query.
type run struct {
	set    *Set
	in     input.Input
	emit   func(query, pos int)
	stream *classifier.Stream
	iter   *classifier.Structural

	steppers []engine.Stepper
	targets  []automaton.StateID // scratch: per-query target of one event

	depth   int
	kinds   depthstack.KindMap  // element kind per depth: true = object
	indices depthstack.IntStack // entry index per open array (index queries)
}

func (r *run) errMalformed(pos int, why string) error {
	return &errs.Malformed{Sentinel: engine.ErrMalformed, Offset: pos, Kind: why}
}

// toggle adjusts the comma/colon symbols to the union of what the steppers'
// current states want, within the element kind at the current depth.
func (r *run) toggle() {
	isObj := r.kinds.Get(r.depth)
	colons, commas := false, false
	for i := range r.steppers {
		wc, wm := r.steppers[i].Wants()
		colons = colons || wc
		commas = commas || wm
	}
	r.iter.SetColons(isObj && colons)
	r.iter.SetCommas(!isObj && commas)
}

// currentIndex returns the entry index of the array being scanned (0 when
// index tracking is off).
func (r *run) currentIndex() int {
	if !r.set.needsIndex || r.indices.Len() == 0 {
		return 0
	}
	return r.indices.Top()
}

// scan is the shared-stream analogue of the single-query engine's
// run.subtree (§3.4), generalized from one automaton to the set: structural
// facts are maintained once, automaton facts per stepper, and every
// fast-forward fires on the intersection of the steppers' verdicts.
func (r *run) scan(openPos int, openCh byte) error {
	r.depth = 1
	r.kinds.Set(1, openCh == '{')
	if openCh == '[' && r.set.needsIndex {
		r.indices.Push(0)
	}
	r.toggle()
	if openCh == '[' {
		r.tryMatchFirstItem(openPos)
	}

	for {
		pos, ch, ok := r.iter.Next()
		if !ok {
			end := r.in.Len()
			if end < 0 {
				end = 0
			}
			return r.errMalformed(end, "unterminated document")
		}
		switch ch {
		case '{', '[':
			label, hasLabel, lok := engine.LabelBefore(r.in, pos)
			if !lok {
				return r.errMalformed(pos, "cannot locate label")
			}
			idx := r.currentIndex()
			allReject := true
			for i := range r.steppers {
				t := r.steppers[i].EventTarget(label, hasLabel, idx)
				r.targets[i] = t
				if !r.steppers[i].Rejecting(t) {
					allReject = false
				}
			}
			if allReject {
				// Every query rejects the subtree: the shared cursor may
				// fast-forward over it.
				end, ok := classifier.SkipToClose(r.stream, pos+1, ch)
				if !ok {
					return r.errMalformed(pos, "unterminated value")
				}
				r.iter.Reset(end + 1)
				continue
			}
			// Some query keeps the subtree alive: every stepper enters it
			// (rejecting ones walk it in their trash state, exactly like the
			// single engine with child skipping disabled).
			r.kinds.Set(r.depth+1, ch == '{')
			if ch == '[' && r.set.needsIndex {
				r.indices.Push(0)
			}
			for i := range r.steppers {
				if r.steppers[i].EnterOpen(r.targets[i], r.depth) {
					r.emit(i, pos)
				}
			}
			r.depth++
			if max := r.set.maxDepth; max > 0 && r.depth > max {
				return errs.DepthLimit(max, pos)
			}
			r.toggle()
			if ch == '[' {
				r.tryMatchFirstItem(pos)
			}

		case '}', ']':
			if r.kinds.Get(r.depth) != (ch == '}') {
				return r.errMalformed(pos, "mismatched closer")
			}
			r.depth--
			if ch == ']' && r.set.needsIndex && r.indices.Len() > 0 {
				// The guard protects against malformed input closing an
				// array that was never opened.
				r.indices.Pop()
			}
			if r.depth == 0 {
				if p, found := input.TrailingContent(r.in, pos+1); found {
					return r.errMalformed(p, "trailing content")
				}
				return nil
			}
			allUnitary := true
			for i := range r.steppers {
				if !r.steppers[i].CloseRestore(r.depth) {
					allUnitary = false
				}
			}
			if allUnitary {
				// Every query just matched its unitary child: no further
				// sibling can match anywhere, so fast-forward to the
				// parent's closer and let the main loop process it (unless
				// the next event already is a closing character).
				if _, nch, ok := r.iter.Peek(); ok && nch != '}' && nch != ']' {
					end, ok := classifier.SkipToClose(r.stream, pos+1, '{')
					if !ok {
						return r.errMalformed(pos, "unterminated object")
					}
					r.iter.Reset(end)
				}
				continue
			}
			r.toggle()

		case ':':
			if _, nch, ok := r.iter.Peek(); ok && (nch == '{' || nch == '[') {
				continue // composite value: handled by its Opening event
			}
			label, hasLabel, lok := engine.LabelBefore(r.in, pos+1)
			if !lok || !hasLabel {
				return r.errMalformed(pos, "colon without label")
			}
			// Resolve every stepper's transition before touching the input
			// again: the label slice aliases the input's window, and the
			// value scan below may slide it.
			for i := range r.steppers {
				r.targets[i] = r.steppers[i].EventTarget(label, true, 0)
			}
			vs := -1
			allSkip := true
			for i := range r.steppers {
				t := r.targets[i]
				if r.steppers[i].Accepting(t) {
					if vs < 0 {
						vs = engine.FirstNonWS(r.in, pos+1)
						if !engine.PlausibleValueStart(r.in, vs) {
							return r.errMalformed(pos, "missing value")
						}
					}
					r.emit(i, vs)
				}
				if !r.steppers[i].Unitary() || r.steppers[i].Rejecting(t) {
					allSkip = false
				}
			}
			if allSkip {
				// Every query's unitary label matched a leaf: skip the
				// remaining siblings, leaving the parent's closer as the
				// next event (unless it already is).
				if _, nch, ok := r.iter.Peek(); ok && nch != '}' && nch != ']' {
					end, ok := classifier.SkipToClose(r.stream, pos+1, '{')
					if !ok {
						return r.errMalformed(pos, "unterminated object")
					}
					r.iter.Reset(end)
				}
			}

		case ',':
			if r.set.needsIndex && !r.kinds.Get(r.depth) && r.indices.Len() > 0 {
				r.indices.Inc()
			}
			if _, nch, ok := r.iter.Peek(); ok && (nch == '{' || nch == '[') {
				continue // composite entry: handled by its Opening event
			}
			idx := r.currentIndex()
			vs := -1
			for i := range r.steppers {
				t := r.steppers[i].EventTarget(nil, false, idx)
				if !r.steppers[i].Accepting(t) {
					continue
				}
				if vs == -1 {
					vs = engine.FirstNonWS(r.in, pos+1)
					if !engine.PlausibleValueStart(r.in, vs) {
						vs = -2 // trailing comma or truncation: nothing to report
					}
				}
				if vs >= 0 {
					r.emit(i, vs)
				}
			}
		}
	}
}

// tryMatchFirstItem handles the corner case of §3.4 for the set: the first
// entry of an array is preceded by neither comma nor colon, so a leaf first
// entry must be matched for every query whose entry transition accepts.
func (r *run) tryMatchFirstItem(openPos int) {
	vs := -1
	for i := range r.steppers {
		t := r.steppers[i].EventTarget(nil, false, 0)
		if !r.steppers[i].Accepting(t) {
			continue
		}
		if vs == -1 {
			if _, nch, ok := r.iter.Peek(); !ok || nch == '{' || nch == '[' {
				vs = -2 // composite first entry (or malformed): Opening handles it
			} else {
				vs = engine.FirstNonWS(r.in, openPos+1)
				if !engine.PlausibleValueStart(r.in, vs) {
					vs = -2 // empty array or malformed input
				}
			}
		}
		if vs >= 0 {
			r.emit(i, vs)
		}
	}
}
