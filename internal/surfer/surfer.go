// Package surfer is the JsonSurfer-analogue baseline of §5.2: a streaming
// JSONPath engine with no SIMD/SWAR acceleration and no skipping. It
// tokenizes the input byte by byte and simulates the query automaton with
// the classical stack discipline of §3.2 — push the state on every opening
// character, transition on every label, pop on every closing character.
//
// It supports the full query fragment (child, descendant, wildcard, index)
// and, like the original baseline, validates the documents it scans
// reasonably strictly. Differential tests hold it to the same oracle as the
// main engine; in benchmarks it provides the "no acceleration" floor.
//
// Byte access goes through an input.Cursor, so the same code serves both
// in-memory documents (the cursor caches the whole slice, keeping the
// original indexing speed) and window-bounded streaming inputs.
package surfer

import (
	"errors"
	"fmt"

	"rsonpath/internal/automaton"
	"rsonpath/internal/errs"
	"rsonpath/internal/input"
	"rsonpath/internal/jsonpath"
)

// ErrMalformed is returned for inputs the tokenizer cannot parse.
var ErrMalformed = errors.New("surfer: malformed JSON input")

// Engine executes one compiled query. Safe for concurrent use.
type Engine struct {
	dfa        *automaton.DFA
	needsIndex bool
	maxDepth   int
}

// LimitDepth caps the document nesting (and with it the explicit frame
// stack) the baseline will walk; deeper input aborts the run with a typed
// *errs.Limit. 0 or negative disables the check. Call before the first Run.
func (e *Engine) LimitDepth(max int) { e.maxDepth = max }

// New builds a baseline engine for a compiled automaton.
func New(dfa *automaton.DFA) *Engine {
	e := &Engine{dfa: dfa}
	for s := range dfa.States {
		if dfa.States[s].NeedsIndexInArray {
			e.needsIndex = true
		}
	}
	return e
}

// CompileQuery parses and compiles a query into a baseline engine.
func CompileQuery(query string) (*Engine, error) {
	q, err := jsonpath.Parse(query)
	if err != nil {
		return nil, err
	}
	dfa, err := automaton.Compile(q, automaton.Options{})
	if err != nil {
		return nil, err
	}
	return New(dfa), nil
}

// Count runs the query and returns the number of matches.
func (e *Engine) Count(data []byte) (int, error) {
	n := 0
	err := e.Run(data, func(int) { n++ })
	return n, err
}

// Matches runs the query and returns match offsets in document order.
func (e *Engine) Matches(data []byte) ([]int, error) {
	var out []int
	err := e.Run(data, func(pos int) { out = append(out, pos) })
	return out, err
}

// frame is the classical per-depth stack entry.
type frame struct {
	state automaton.StateID // state of the enclosing container
	isObj bool
	idx   int // next array entry index
}

type run struct {
	e             *Engine
	cur           input.Cursor
	pos           int
	emit          func(int)
	trailingComma bool
}

func (r *run) errf(format string, args ...interface{}) error {
	return &errs.Malformed{Sentinel: ErrMalformed, Offset: r.pos, Kind: fmt.Sprintf(format, args...)}
}

// Run streams an in-memory document, invoking emit for every match.
func (e *Engine) Run(data []byte, emit func(pos int)) error {
	return e.RunInput(input.NewBytes(data), emit)
}

// RunInput is Run over any input source; over a window-bounded input the
// baseline's memory stays bounded by the window.
func (e *Engine) RunInput(in input.Input, emit func(pos int)) error {
	return input.Guard(func() error {
		r := &run{e: e, cur: input.NewCursor(in), emit: emit}
		r.ws()
		if _, ok := r.cur.ByteAt(r.pos); !ok {
			return r.errf("empty input")
		}
		init := e.dfa.Initial
		if e.dfa.States[init].Accepting {
			emit(r.pos)
		}
		if err := r.value(init); err != nil {
			return err
		}
		r.ws()
		if _, ok := r.cur.ByteAt(r.pos); ok {
			return r.errf("trailing content")
		}
		return nil
	})
}

// value consumes one JSON value; state is the automaton state valid for the
// container's children (matches were already reported by the caller).
func (r *run) value(state automaton.StateID) error {
	switch c, _ := r.cur.ByteAt(r.pos); {
	case c == '{':
		return r.container(state, true)
	case c == '[':
		return r.container(state, false)
	case c == '"':
		return r.strSkip()
	case c == 't':
		return r.lit("true")
	case c == 'f':
		return r.lit("false")
	case c == 'n':
		return r.lit("null")
	case c == '-' || (c >= '0' && c <= '9'):
		return r.number()
	default:
		return r.errf("unexpected character %q", c)
	}
}

// container walks an object or array iteratively with an explicit stack —
// the classical simulation of §3.2 whose stack height is tied to the
// document depth.
func (r *run) container(state automaton.StateID, isObj bool) error {
	dfa := r.e.dfa
	stack := []frame{{state: state, isObj: isObj}}
	r.pos++ // consume the opening character

	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		r.ws()
		b, ok := r.cur.ByteAt(r.pos)
		if !ok {
			return r.errf("unterminated container")
		}

		// Closing character?
		if top.isObj && b == '}' || !top.isObj && b == ']' {
			if top.idx > 0 && r.trailingComma {
				return r.errf("trailing comma")
			}
			r.pos++
			stack = stack[:len(stack)-1]
			r.trailingComma = false
			// Separator handling in the parent happens on its next turn.
			if len(stack) > 0 {
				if err := r.separator(&stack[len(stack)-1]); err != nil {
					return err
				}
			}
			continue
		}

		// Member or entry.
		var target automaton.StateID
		if top.isObj {
			if b != '"' {
				return r.errf("expected object key")
			}
			key, err := r.str()
			if err != nil {
				return err
			}
			// Take the transition before the cursor moves again: the key
			// slice aliases the input's window.
			target = dfa.Transition(top.state, key)
			r.ws()
			if c, ok := r.cur.ByteAt(r.pos); !ok || c != ':' {
				return r.errf("expected ':'")
			}
			r.pos++
			r.ws()
		} else {
			if r.e.needsIndex {
				target = dfa.TransitionIndex(top.state, top.idx)
			} else {
				target = dfa.TransitionFallback(top.state)
			}
		}
		top.idx++
		r.trailingComma = false

		c, ok := r.cur.ByteAt(r.pos)
		if !ok {
			return r.errf("missing value")
		}
		if dfa.States[target].Accepting {
			r.emit(r.pos)
		}
		switch c {
		case '{', '[':
			if max := r.e.maxDepth; max > 0 && len(stack) >= max {
				return errs.DepthLimit(max, r.pos)
			}
			stack = append(stack, frame{state: target, isObj: c == '{'})
			r.pos++
		default:
			if err := r.value(target); err != nil {
				return err
			}
			if err := r.separator(&stack[len(stack)-1]); err != nil {
				return err
			}
		}
	}
	return nil
}

// separator consumes an optional comma after a finished member/entry.
func (r *run) separator(top *frame) error {
	r.ws()
	if b, ok := r.cur.ByteAt(r.pos); ok && b == ',' {
		r.pos++
		r.trailingComma = true
	}
	return nil
}

func (r *run) ws() {
	for {
		b, ok := r.cur.ByteAt(r.pos)
		if !ok {
			return
		}
		switch b {
		case ' ', '\t', '\n', '\r':
			r.pos++
		default:
			return
		}
	}
}

// str consumes a string literal, returning the raw bytes between quotes.
// The slice aliases the input's window and is valid only until the cursor
// moves; the window bounds the longest key a streaming run can transport.
func (r *run) str() ([]byte, error) {
	r.pos++ // opening quote
	start := r.pos
	for {
		b, ok := r.cur.ByteAt(r.pos)
		if !ok {
			return nil, r.errf("unterminated string")
		}
		switch b {
		case '"':
			raw := r.cur.Slice(start, r.pos)
			r.pos++
			return raw, nil
		case '\\':
			r.pos += 2
		default:
			r.pos++
		}
	}
}

// strSkip consumes a string literal without materializing its contents, so
// value strings longer than a streaming window pass through unhindered.
func (r *run) strSkip() error {
	r.pos++ // opening quote
	for {
		b, ok := r.cur.ByteAt(r.pos)
		if !ok {
			return r.errf("unterminated string")
		}
		switch b {
		case '"':
			r.pos++
			return nil
		case '\\':
			r.pos += 2
		default:
			r.pos++
		}
	}
}

func (r *run) lit(s string) error {
	for k := 0; k < len(s); k++ {
		if b, ok := r.cur.ByteAt(r.pos + k); !ok || b != s[k] {
			return r.errf("invalid literal")
		}
	}
	r.pos += len(s)
	return nil
}

func (r *run) number() error {
	start := r.pos
	for {
		b, ok := r.cur.ByteAt(r.pos)
		if !ok {
			return nil
		}
		switch c := b; {
		case c >= '0' && c <= '9', c == '-', c == '+', c == '.', c == 'e', c == 'E':
			r.pos++
		default:
			if r.pos == start {
				return r.errf("invalid number")
			}
			return nil
		}
	}
}
