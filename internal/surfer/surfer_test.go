package surfer

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"rsonpath/internal/dom"
	"rsonpath/internal/jsonpath"
)

func assertOracle(t *testing.T, query, doc string) {
	t.Helper()
	root, err := dom.Parse([]byte(doc))
	if err != nil {
		t.Fatalf("oracle rejects %q: %v", doc, err)
	}
	want := dom.MatchOffsets(root, jsonpath.MustParse(query))
	e, err := CompileQuery(query)
	if err != nil {
		t.Fatalf("CompileQuery(%q): %v", query, err)
	}
	got, err := e.Matches([]byte(doc))
	if err != nil {
		t.Fatalf("Matches(%q, %q): %v", query, doc, err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s on %s: surfer %v, oracle %v", query, doc, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s on %s: surfer %v, oracle %v", query, doc, got, want)
		}
	}
}

func TestSurferBasics(t *testing.T) {
	doc := `{"a": {"b": 1, "c": [2, {"b": 3}]}, "b": 4}`
	for _, q := range []string{
		"$", "$.a", "$.a.b", "$.b", "$..b", "$.a.*", "$.*", "$..*", "$.a.c.*",
		"$.a.c[0]", "$.a.c[1].b", "$..c[1]", "$.missing",
	} {
		assertOracle(t, q, doc)
	}
}

func TestSurferScalarRoots(t *testing.T) {
	for _, doc := range []string{`42`, `"s"`, `true`, `false`, `null`, `{}`, `[]`} {
		for _, q := range []string{"$", "$.a", "$..a", "$.*"} {
			assertOracle(t, q, doc)
		}
	}
}

func TestSurferStringsAndEscapes(t *testing.T) {
	doc := `{"k\"ey": "va{lue", "a": ["}", "\\", ",\""]}`
	for _, q := range []string{`$['k\"ey']`, "$.a.*", "$..*"} {
		assertOracle(t, q, doc)
	}
}

func TestSurferDeep(t *testing.T) {
	depth := 500
	doc := strings.Repeat(`{"a":`, depth) + `1` + strings.Repeat(`}`, depth)
	assertOracle(t, "$..a", doc)
}

func TestSurferMalformed(t *testing.T) {
	e, err := CompileQuery("$.a")
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range []string{``, `   `, `{`, `{"a"}`, `{"a":1,}`, `[1,]`, `{"a":1} extra`, `{"a":`, `x`} {
		if _, err := e.Matches([]byte(doc)); err == nil {
			t.Errorf("Matches(%q) succeeded, want error", doc)
		}
	}
}

func TestSurferRandomDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	keys := []string{"a", "b", "c"}
	for trial := 0; trial < 400; trial++ {
		doc := randomDoc(r, keys, 4)
		root, err := dom.Parse([]byte(doc))
		if err != nil {
			t.Fatalf("bad generated doc %q: %v", doc, err)
		}
		query := randomQuery(r, keys)
		want := dom.MatchOffsets(root, jsonpath.MustParse(query))
		e, err := CompileQuery(query)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Matches([]byte(doc))
		if err != nil {
			t.Fatalf("trial %d: %s on %s: %v", trial, query, doc, err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d: %s on %s\n  surfer: %v\n  oracle: %v", trial, query, doc, got, want)
		}
	}
}

func randomDoc(r *rand.Rand, keys []string, depth int) string {
	var b strings.Builder
	var gen func(d int)
	gen = func(d int) {
		kind := r.Intn(8)
		if d <= 0 && kind < 4 {
			kind += 4
		}
		switch {
		case kind < 2:
			b.WriteByte('{')
			perm := r.Perm(len(keys))
			n := r.Intn(len(keys) + 1)
			for i := 0; i < n; i++ {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%q:", keys[perm[i]])
				gen(d - 1)
			}
			b.WriteByte('}')
		case kind < 4:
			b.WriteByte('[')
			n := r.Intn(4)
			for i := 0; i < n; i++ {
				if i > 0 {
					b.WriteByte(',')
				}
				gen(d - 1)
			}
			b.WriteByte(']')
		case kind < 6:
			fmt.Fprintf(&b, "%d", r.Intn(200)-100)
		case kind < 7:
			b.WriteString(`"s{r\"i]ng"`)
		default:
			b.WriteString("null")
		}
	}
	gen(depth)
	return b.String()
}

func randomQuery(r *rand.Rand, labels []string) string {
	var sb strings.Builder
	sb.WriteString("$")
	for i, steps := 0, 1+r.Intn(4); i < steps; i++ {
		if r.Intn(3) == 0 {
			sb.WriteString("..")
		} else {
			sb.WriteString(".")
		}
		switch r.Intn(5) {
		case 0:
			sb.WriteString("*")
		default:
			sb.WriteString(labels[r.Intn(len(labels))])
		}
	}
	return sb.String()
}
