//go:build !race

package input

const raceEnabled = false
