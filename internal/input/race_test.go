//go:build race

package input

// raceEnabled reports whether the race detector is compiled in; tests that
// assert sync.Pool identity skip under it (the detector drops random Puts).
const raceEnabled = true
