package input

import "rsonpath/internal/simd"

// BytesInput is the borrowed-bytes implementation of Input: a complete
// in-memory document. Interior blocks are served zero-copy (the block
// pointer aliases the document), the final partial block is padded once at
// construction, and windows are unbounded.
type BytesInput struct {
	data    []byte
	tail    simd.Block // padded storage for the final partial block
	tailIdx int        // block index served from tail, -1 if none
	tailLen int        // real bytes in tail
}

// NewBytes wraps a complete document. The slice is aliased, not copied.
func NewBytes(data []byte) *BytesInput {
	in := &BytesInput{data: data, tailIdx: -1}
	if rem := len(data) % BlockSize; rem != 0 {
		in.tailIdx = len(data) / BlockSize
		in.tailLen = simd.LoadBlock(&in.tail, data[len(data)-rem:], Pad)
	}
	return in
}

// Block returns block idx: zero-copy for interior blocks, the pre-padded
// tail for the final partial block, shared padding past the end.
func (in *BytesInput) Block(idx int) (*simd.Block, int) {
	off := idx * BlockSize
	if off+BlockSize <= len(in.data) {
		return (*simd.Block)(in.data[off:]), BlockSize
	}
	if idx == in.tailIdx {
		return &in.tail, in.tailLen
	}
	return &padBlock, 0
}

// Bytes returns data[lo:hi] clamped at the document end.
func (in *BytesInput) Bytes(lo, hi int) []byte {
	if hi > len(in.data) {
		hi = len(in.data)
	}
	if lo >= hi {
		return nil
	}
	return in.data[lo:hi]
}

// ByteAt returns the byte at offset i.
func (in *BytesInput) ByteAt(i int) (byte, bool) {
	if i >= len(in.data) {
		return 0, false
	}
	return in.data[i], true
}

// Len returns the document length (always known).
func (in *BytesInput) Len() int { return len(in.data) }

// Window returns 0: the whole document is addressable.
func (in *BytesInput) Window() int { return 0 }

// Retained returns 0: nothing is ever discarded.
func (in *BytesInput) Retained() int { return 0 }

// Contiguous returns the whole document as one slice when in holds it in
// memory (a BytesInput), nil otherwise. The scalar helpers around the
// engines use it to keep slice-speed fast paths over in-memory documents
// while sharing one windowed implementation with the streaming case.
func Contiguous(in Input) []byte {
	if b, ok := in.(*BytesInput); ok {
		return b.data
	}
	return nil
}
