package input

// Scalar validation helpers shared by the engines' hostile-input hardening:
// lexical validation of atomic root values and trailing-content detection.
// They live here because they are pure windowed-byte scans over an Input
// with no other dependencies, usable from every engine package (including
// ones that must not import internal/engine).

// AtomSpan lexically validates the atomic JSON value starting at pos and
// returns the offset just past it. badKind is non-empty when the token is
// not a complete, valid scalar ("unterminated string", "invalid literal",
// "invalid number", "unexpected character"); end then points at the
// position the validation failed at.
func AtomSpan(in Input, pos int) (end int, badKind string) {
	c, ok := in.ByteAt(pos)
	if !ok {
		return pos, "unexpected character"
	}
	switch {
	case c == '"':
		i := pos + 1
		esc := false
		for {
			b, ok := in.ByteAt(i)
			if !ok {
				return i, "unterminated string"
			}
			switch {
			case esc:
				esc = false
			case b == '\\':
				esc = true
			case b == '"':
				return i + 1, ""
			}
			i++
		}
	case c == 't':
		return literalSpan(in, pos, "true")
	case c == 'f':
		return literalSpan(in, pos, "false")
	case c == 'n':
		return literalSpan(in, pos, "null")
	case c == '-' || (c >= '0' && c <= '9'):
		return numberSpan(in, pos)
	default:
		return pos, "unexpected character"
	}
}

// literalSpan checks the exact literal lit at pos.
func literalSpan(in Input, pos int, lit string) (end int, badKind string) {
	for k := 0; k < len(lit); k++ {
		if b, ok := in.ByteAt(pos + k); !ok || b != lit[k] {
			return pos + k, "invalid literal"
		}
	}
	return pos + len(lit), ""
}

// numberSpan checks the JSON number grammar at pos.
func numberSpan(in Input, pos int) (end int, badKind string) {
	i := pos
	if b, _ := in.ByteAt(i); b == '-' {
		i++
	}
	digits := func() int {
		n := 0
		for {
			b, ok := in.ByteAt(i)
			if !ok || b < '0' || b > '9' {
				return n
			}
			i++
			n++
		}
	}
	if b, ok := in.ByteAt(i); ok && b == '0' {
		i++
	} else if digits() == 0 {
		return i, "invalid number"
	}
	if b, ok := in.ByteAt(i); ok && b == '.' {
		i++
		if digits() == 0 {
			return i, "invalid number"
		}
	}
	if b, ok := in.ByteAt(i); ok && (b == 'e' || b == 'E') {
		i++
		if b, ok := in.ByteAt(i); ok && (b == '+' || b == '-') {
			i++
		}
		if digits() == 0 {
			return i, "invalid number"
		}
	}
	return i, ""
}

// TrailingContent scans forward from offset from and reports the offset of
// the first non-whitespace byte, with found=false when only whitespace (or
// nothing) remains — the well-formed outcome after a complete root value.
func TrailingContent(in Input, from int) (pos int, found bool) {
	i := from
	for {
		chunk := in.Bytes(i, i+BlockSize)
		if len(chunk) == 0 {
			return i, false
		}
		for j, b := range chunk {
			switch b {
			case ' ', '\t', '\n', '\r':
			default:
				return i + j, true
			}
		}
		i += len(chunk)
	}
}
