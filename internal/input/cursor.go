package input

// Cursor gives the scalar baselines (surfer, ski) slice-speed byte access
// over any Input: a cached contiguous chunk with an inlinable fast path,
// refilled from the Input on a miss. Over a BytesInput the first access
// caches the entire document, so the fast path is the pre-refactor slice
// index; over a BufferedInput each refill advances the window.
type Cursor struct {
	chunk []byte // cached document bytes [base, base+len(chunk))
	base  int
	in    Input
}

// NewCursor returns a cursor over in, positioned before the first byte.
func NewCursor(in Input) Cursor {
	return Cursor{in: in}
}

// ByteAt returns the document byte at absolute offset i; ok is false at or
// past the end of the document.
func (c *Cursor) ByteAt(i int) (byte, bool) {
	if j := i - c.base; j >= 0 && j < len(c.chunk) {
		return c.chunk[j], true
	}
	return c.refill(i)
}

// refill re-centers the cached chunk on offset i.
func (c *Cursor) refill(i int) (byte, bool) {
	if i < 0 {
		return 0, false
	}
	w := c.in.Window()
	if w == 0 {
		c.chunk, c.base = c.in.Bytes(0, c.in.Len()), 0
	} else {
		c.chunk, c.base = c.in.Bytes(i, i+w), i
	}
	if j := i - c.base; j >= 0 && j < len(c.chunk) {
		return c.chunk[j], true
	}
	return 0, false
}

// Slice returns the document bytes [lo, hi) clamped at the document end,
// and re-centers the cache on them (the underlying window may have slid,
// invalidating the previous chunk). The slice is valid until the next
// Cursor or Input call.
func (c *Cursor) Slice(lo, hi int) []byte {
	s := c.in.Bytes(lo, hi)
	c.chunk, c.base = s, lo
	return s
}

// Invalidate drops the cached chunk. Callers must invalidate after any
// other component has accessed the underlying input: a streaming input may
// have slid its window, moving the bytes the cache aliases.
func (c *Cursor) Invalidate() { c.chunk = nil }

// Input returns the underlying Input.
func (c *Cursor) Input() Input { return c.in }
