package input

import (
	"bytes"
	"errors"
	"io"
	"runtime/debug"
	"testing"
)

// chunkReader delivers at most n bytes per Read, forcing many refills.
type chunkReader struct {
	data []byte
	n    int
}

func (r *chunkReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := r.n
	if n > len(p) {
		n = len(p)
	}
	if n > len(r.data) {
		n = len(r.data)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

func mkDoc(n int) []byte {
	doc := make([]byte, n)
	for i := range doc {
		doc[i] = byte('a' + i%26)
	}
	return doc
}

func TestBytesInputBlocks(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 200} {
		doc := mkDoc(n)
		in := NewBytes(doc)
		if in.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, in.Len())
		}
		for idx := 0; idx*BlockSize < n+2*BlockSize; idx++ {
			b, got := in.Block(idx)
			want := n - idx*BlockSize
			if want > BlockSize {
				want = BlockSize
			}
			if want < 0 {
				want = 0
			}
			if got != want {
				t.Fatalf("n=%d block %d: n=%d want %d", n, idx, got, want)
			}
			for i := 0; i < BlockSize; i++ {
				wb := Pad
				if off := idx*BlockSize + i; off < n {
					wb = doc[off]
				}
				if b[i] != wb {
					t.Fatalf("n=%d block %d byte %d: %q want %q", n, idx, i, b[i], wb)
				}
			}
		}
	}
}

func TestBufferedMatchesBytes(t *testing.T) {
	doc := mkDoc(1000)
	for _, window := range []int{1, 64, 128, 1000} {
		for _, chunk := range []int{1, 7, 64, 4096} {
			in := NewBuffered(&chunkReader{data: doc, n: chunk}, window)
			ref := NewBytes(doc)
			nblocks := (len(doc) + BlockSize - 1) / BlockSize
			for idx := 0; idx <= nblocks; idx++ {
				wb, wn := ref.Block(idx)
				want := *wb
				gb, gn := in.Block(idx)
				if gn != wn || *gb != want {
					t.Fatalf("window=%d chunk=%d block %d mismatch (n=%d want %d)", window, chunk, idx, gn, wn)
				}
			}
			if in.Len() != len(doc) {
				t.Fatalf("window=%d: Len=%d after full scan", window, in.Len())
			}
		}
	}
}

func TestBufferedDoubleBufferedBlocks(t *testing.T) {
	doc := mkDoc(300)
	in := NewBuffered(bytes.NewReader(doc), 64)
	b0, _ := in.Block(0)
	keep := *b0
	// Probing the next block must not invalidate the previous one.
	if _, n := in.Block(1); n != BlockSize {
		t.Fatalf("block 1 short: %d", n)
	}
	if *b0 != keep {
		t.Fatal("block 0 invalidated by probing block 1")
	}
}

func TestBufferedWindowViolation(t *testing.T) {
	doc := mkDoc(100 * BlockSize)
	in := NewBuffered(&chunkReader{data: doc, n: 512}, 64)
	// Walk far forward so the window slides past the origin.
	if s := in.Bytes(90*BlockSize, 90*BlockSize+8); !bytes.Equal(s, doc[90*BlockSize:90*BlockSize+8]) {
		t.Fatalf("forward read wrong: %q", s)
	}
	if in.Retained() == 0 {
		t.Fatal("window never slid")
	}
	err := Guard(func() error {
		in.Bytes(0, 8)
		return nil
	})
	if !errors.Is(err, ErrWindow) {
		t.Fatalf("want ErrWindow, got %v", err)
	}
	var ie *Error
	if !errors.As(err, &ie) {
		t.Fatalf("want *Error, got %T", err)
	}
}

func TestBufferedReadError(t *testing.T) {
	boom := errors.New("boom")
	in := NewBuffered(io.MultiReader(bytes.NewReader(mkDoc(10)), &errReader{boom}), 64)
	err := Guard(func() error {
		in.Bytes(0, 200)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want read error, got %v", err)
	}
}

type errReader struct{ err error }

func (r *errReader) Read([]byte) (int, error) { return 0, r.err }

func TestGuardPassesThroughForeignPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != "other" {
			t.Fatalf("foreign panic swallowed: %v", r)
		}
	}()
	_ = Guard(func() error { panic("other") })
}

func TestCursor(t *testing.T) {
	doc := mkDoc(500)
	for _, in := range []Input{NewBytes(doc), NewBuffered(&chunkReader{data: doc, n: 13}, 64)} {
		c := NewCursor(in)
		for i := 0; i < len(doc); i++ {
			b, ok := c.ByteAt(i)
			if !ok || b != doc[i] {
				t.Fatalf("ByteAt(%d) = %q,%v want %q", i, b, ok, doc[i])
			}
		}
		if _, ok := c.ByteAt(len(doc)); ok {
			t.Fatal("ByteAt past end reported ok")
		}
		if s := c.Slice(400, 410); !bytes.Equal(s, doc[400:410]) {
			t.Fatalf("Slice wrong: %q", s)
		}
		if b, ok := c.ByteAt(405); !ok || b != doc[405] {
			t.Fatal("ByteAt after Slice wrong")
		}
	}
}

// TestBufferedRelease proves the window-buffer pool round-trip: a released
// buffer is handed back, with the same backing array, to the next
// BufferedInput of the same geometry — and never to one of a different
// geometry, where reuse would silently change the window-violation contract.
func TestBufferedRelease(t *testing.T) {
	if raceEnabled {
		// The race detector's sync.Pool instrumentation drops a random
		// fraction of Puts, so backing-array identity cannot be asserted.
		t.Skip("pool identity is not deterministic under -race")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1)) // a GC would drain the pool

	doc := mkDoc(4 * BlockSize)
	in := NewBuffered(bytes.NewReader(doc), BlockSize)
	if _, ok := in.ByteAt(0); !ok {
		t.Fatal("ByteAt(0) failed")
	}
	arr := &in.buf[:1][0]
	geom := cap(in.buf)
	in.Release()
	if in.buf != nil {
		t.Fatal("Release left the buffer attached")
	}
	in.Release() // double release must be a no-op, not a double Put

	// Different geometry: must NOT reuse the pooled buffer.
	other := NewBuffered(bytes.NewReader(doc), 4*BlockSize)
	if cap(other.buf) == geom {
		t.Fatalf("geometry mismatch: cap=%d", cap(other.buf))
	}
	if _, ok := other.ByteAt(0); !ok {
		t.Fatal("ByteAt(0) failed")
	}
	if &other.buf[:1][0] == arr {
		t.Fatal("pooled buffer reused at a different geometry")
	}

	// Same geometry: the pooled buffer should come back. The pool entry may
	// have been consumed by the different-geometry probe above (Get-and-
	// discard), so re-seed it.
	seed := NewBuffered(bytes.NewReader(doc), BlockSize)
	seedArr := func() *byte {
		if _, ok := seed.ByteAt(0); !ok {
			t.Fatal("ByteAt(0) failed")
		}
		return &seed.buf[:1][0]
	}()
	seed.Release()
	reused := NewBuffered(bytes.NewReader(doc), BlockSize)
	if _, ok := reused.ByteAt(0); !ok {
		t.Fatal("ByteAt(0) failed")
	}
	if &reused.buf[:1][0] != seedArr {
		t.Fatal("same-geometry BufferedInput did not reuse the released buffer")
	}
	// The recycled window must behave like a fresh one.
	got := reused.Bytes(0, 4*BlockSize)
	if !bytes.Equal(got, doc[:len(got)]) {
		t.Fatalf("recycled buffer served wrong bytes: %q", got[:8])
	}
}
