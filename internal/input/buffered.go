package input

import (
	"io"
	"sync"

	"rsonpath/internal/errs"
	"rsonpath/internal/simd"
)

const (
	// DefaultWindow is the forward window used when none is configured:
	// large enough that realistic keys, whitespace runs and matched values
	// fit comfortably, small enough that a run's footprint is negligible
	// next to gigabyte documents.
	DefaultWindow = 256 << 10

	// minBehind is the minimum look-behind retention, whatever the window:
	// the scalar verifications behind the cursor (label backtracking, quote
	// state reconstruction at a block boundary) must work even under the
	// pathological one-block forward window the tests exercise.
	minBehind = 8 * BlockSize
)

// BufferedInput is the streaming implementation of Input: a fixed-capacity
// contiguous window over an io.Reader, slid forward on demand. Memory is
// bounded by the window regardless of document size. The window is split
// conceptually into a forward span (Window) serving look-ahead requests and
// a look-behind span at least as large as minBehind; a single Bytes request
// may span both.
type BufferedInput struct {
	r       io.Reader
	buf     []byte // buffered document bytes [start, start+len(buf))
	start   int    // absolute offset of buf[0]
	length  int    // total document length; -1 until EOF is observed
	window  int    // forward request guarantee
	behind  int    // look-behind retention guarantee
	maxDoc  int    // document-size limit; 0 = unlimited
	scratch [2]simd.Block
}

// NewBuffered streams the document in r through a window of approximately
// the given size (rounded up to whole blocks; values ≤ 0 select
// DefaultWindow). Total retention is the window plus a look-behind of the
// same order, never less than minBehind.
func NewBuffered(r io.Reader, window int) *BufferedInput {
	if window <= 0 {
		window = DefaultWindow
	}
	if rem := window % BlockSize; rem != 0 {
		window += BlockSize - rem
	}
	behind := window
	if behind < minBehind {
		behind = minBehind
	}
	return &BufferedInput{
		r:      r,
		buf:    getBuf(window + behind),
		length: -1,
		window: window,
		behind: behind,
	}
}

// bufPool recycles window buffers across BufferedInput lifetimes: a service
// evaluating many streams (the lines family, repeated RunReader calls) would
// otherwise allocate a fresh multi-hundred-KiB buffer per record. Entries
// are reused only at the exact requested capacity — a larger pooled buffer
// would silently loosen the window-violation contract, a smaller one
// tighten it.
var bufPool sync.Pool

func getBuf(capacity int) []byte {
	if v, _ := bufPool.Get().(*[]byte); v != nil && cap(*v) == capacity {
		return (*v)[:0]
	}
	return make([]byte, 0, capacity)
}

// Release returns the input's window buffer to the package pool for reuse
// by a future BufferedInput of the same geometry. The input must not be
// used afterwards. Calling Release is optional — an unreleased buffer is
// simply garbage collected — and at most once.
func (in *BufferedInput) Release() {
	if cap(in.buf) == 0 {
		return
	}
	b := in.buf[:0]
	in.buf = nil
	bufPool.Put(&b)
}

// Block returns block idx, copied into one of two alternating scratch
// blocks so that probing block idx+1 never invalidates block idx (the
// stream's end-of-input probe relies on this).
func (in *BufferedInput) Block(idx int) (*simd.Block, int) {
	off := idx * BlockSize
	src := in.Bytes(off, off+BlockSize)
	dst := &in.scratch[idx&1]
	n := simd.LoadBlock(dst, src, Pad)
	return dst, n
}

// Bytes returns the document bytes [lo, hi) clamped at the end of the
// document, reading from the underlying reader and sliding the window
// forward as needed. The slice aliases the window and is valid until the
// next call of any method.
func (in *BufferedInput) Bytes(lo, hi int) []byte {
	in.request(lo, hi)
	in.fill(hi)
	if end := in.start + len(in.buf); hi > end {
		hi = end
	}
	if lo >= hi {
		return nil
	}
	return in.buf[lo-in.start : hi-in.start]
}

// ByteAt returns the byte at offset i.
func (in *BufferedInput) ByteAt(i int) (byte, bool) {
	s := in.Bytes(i, i+1)
	if len(s) == 0 {
		return 0, false
	}
	return s[0], true
}

// Len returns the document length once the end has been observed, -1 before.
func (in *BufferedInput) Len() int { return in.length }

// Window returns the forward request guarantee in bytes.
func (in *BufferedInput) Window() int { return in.window }

// Retained returns the lowest still-addressable offset.
func (in *BufferedInput) Retained() int { return in.start }

// request validates [lo, hi) against the window contract and slides the
// buffer forward until the span fits, preserving reader continuity (only
// bytes already read may be discarded).
func (in *BufferedInput) request(lo, hi int) {
	if lo < in.start {
		Exceeded("bytes", lo)
	}
	c := cap(in.buf)
	if hi-lo > c {
		Exceeded("bytes", hi)
	}
	for hi > in.start+c && in.length < 0 {
		in.fill(in.start + c)
		if in.length >= 0 {
			break
		}
		// Slide a whole window's worth at a time — retaining exactly the
		// look-behind guarantee behind lo — so the memmove amortizes to
		// O(1) per document byte instead of running once per block.
		newStart := lo - in.behind
		if newStart < hi-c {
			newStart = hi - c // spans wider than the window retain less
		}
		if m := in.start + len(in.buf); newStart > m {
			newStart = m
		}
		if newStart <= in.start {
			break
		}
		in.slide(newStart)
	}
}

// slide discards the buffered bytes below newStart.
func (in *BufferedInput) slide(newStart int) {
	drop := newStart - in.start
	if drop <= 0 {
		return
	}
	if drop >= len(in.buf) {
		in.buf = in.buf[:0]
	} else {
		n := copy(in.buf, in.buf[drop:])
		in.buf = in.buf[:n]
	}
	in.start = newStart
}

// LimitDocBytes caps the total number of document bytes the input will
// read; a document growing past max aborts the run with a typed
// *errs.Limit delivered through the input error channel. Checked at refill
// granularity, so the hot path carries no per-byte test. 0 disables the
// limit.
func (in *BufferedInput) LimitDocBytes(max int) { in.maxDoc = max }

// fill reads until the buffer covers hi or the document ends. Read errors
// are delivered by panic; Guard converts them at the run boundary.
func (in *BufferedInput) fill(hi int) {
	stalls := 0
	for in.length < 0 && in.start+len(in.buf) < hi {
		free := in.buf[len(in.buf):cap(in.buf)]
		if len(free) == 0 {
			// request guarantees room for hi; defensive only.
			Exceeded("fill", hi)
		}
		n, err := in.r.Read(free)
		in.buf = in.buf[:len(in.buf)+n]
		if in.maxDoc > 0 && in.start+len(in.buf) > in.maxDoc {
			panic(&Error{Op: "read", Off: in.maxDoc,
				Err: errs.DocBytesLimit(in.maxDoc, in.maxDoc)})
		}
		if err == io.EOF {
			in.length = in.start + len(in.buf)
			return
		}
		if err != nil {
			panic(&Error{Op: "read", Off: in.start + len(in.buf), Err: err})
		}
		if n == 0 {
			if stalls++; stalls >= 100 {
				panic(&Error{Op: "read", Off: in.start + len(in.buf), Err: io.ErrNoProgress})
			}
		} else {
			stalls = 0
		}
	}
}
