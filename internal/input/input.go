// Package input is the substrate contract between documents and the
// classification pipeline: a JSON document presented as a sequence of padded
// 64-byte blocks (the unit every SWAR classifier consumes, mirroring
// simdjson's padded_string requirement) plus windowed access to contiguous
// byte ranges for the few scalar verifications the paper performs outside
// the SIMD pipeline (label backtracking, key verification, memmem seeking).
//
// Two implementations cover the two regimes of the original system:
//
//   - BytesInput borrows a complete in-memory document (the mmap/borrowed
//     regime): zero-copy block access, unbounded windows.
//   - BufferedInput streams from an io.Reader through a fixed-size sliding
//     window (the buffered regime): memory is bounded by the window however
//     large the document, at the price of one copy per block and a bounded
//     look-behind.
//
// # The padded-block contract
//
// Block(idx) returns the 64 bytes at [idx*64, idx*64+64), padded with
// spaces past the end of the document, together with the number of real
// (non-padding) bytes. Space padding is invisible to every classifier: it
// is neither structural, nor a quote, nor a backslash. Blocks must be
// requested in non-decreasing index order (JumpTo-style forward jumps are
// fine); the returned pointer stays valid until Block is called with an
// index ≥ idx+2 (implementations double-buffer so that probing the block
// after the current one never invalidates it), and is unaffected by Bytes
// and ByteAt calls.
//
// # Windows
//
// Bytes(lo, hi) returns the document bytes [lo, hi) clamped at the end of
// the document. The slice aliases internal storage and is valid only until
// the next call of any method on the Input. A streaming implementation
// retains a bounded span: requests reaching further back than Retained()
// cannot be served. Callers keep their look-behind small (a label, a block,
// a whitespace run); a document that defeats this — a single key or
// backslash run longer than the window — is reported as *Error rather than
// silently mis-scanned.
//
// # Error channel
//
// Block, Bytes and ByteAt cannot fail on in-memory inputs, and threading an
// error return through every mask computation would put a branch in the
// hottest loops of the engine for the benefit of the rare streaming-only
// failure. Implementations therefore panic with *Error on read failures and
// window violations; Guard converts the panic back into an ordinary error
// at the Run boundary. The panic never crosses a public API: every
// streaming entry point wraps its run in Guard.
package input

import (
	"errors"
	"fmt"

	"rsonpath/internal/simd"
)

// BlockSize is the number of bytes per classification block.
const BlockSize = simd.BlockSize

// Pad is the padding byte appended past the end of the document: plain
// space, invisible to every classifier.
const Pad byte = ' '

// Input presents a document as padded 64-byte blocks plus windowed byte
// ranges. Implementations are single-goroutine; engines allocate one Input
// per run.
type Input interface {
	// Block returns the padded block idx (document bytes [idx*64,
	// idx*64+64)) and the number of real bytes in it: 64 for interior
	// blocks, 1..63 for the final partial block, 0 at or past the end of
	// the document. The block is always fully initialized; bytes past the
	// real count hold Pad.
	Block(idx int) (b *simd.Block, n int)

	// Bytes returns the document bytes [lo, hi), clamped at the end of the
	// document (the result is shorter than hi-lo only when the document
	// ends before hi). The slice is valid until the next call of any
	// method. lo must be ≥ Retained().
	Bytes(lo, hi int) []byte

	// ByteAt returns the byte at absolute offset i; ok is false at or past
	// the end of the document. i must be ≥ Retained().
	ByteAt(i int) (b byte, ok bool)

	// Len returns the total document length, or -1 while it is unknown (a
	// streaming input that has not reached the end yet).
	Len() int

	// Window returns the forward span, in bytes, that Bytes is guaranteed
	// to serve in one request; 0 means unbounded (the whole document is
	// addressable). Scanners size their chunks by it.
	Window() int

	// Retained returns the lowest absolute offset still addressable.
	// Always 0 for in-memory inputs; a streaming input discards bytes far
	// enough behind the highest offset requested so far.
	Retained() int
}

// Error is the failure of an Input access: an underlying read error, or a
// request outside the retained window (a document feature — key, backslash
// run, matched value — larger than the configured window). It is delivered
// by panic and converted back to an ordinary error by Guard.
type Error struct {
	Op  string // the failing access, for diagnostics
	Off int    // the absolute offset of the failing access
	Err error  // ErrWindow, or the underlying read error
}

// ErrWindow marks accesses outside the buffered window.
var ErrWindow = errors.New("access outside the buffered window")

func (e *Error) Error() string {
	return fmt.Sprintf("input: %s at offset %d: %v", e.Op, e.Off, e.Err)
}

// Unwrap exposes the cause for errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Exceeded panics with a window-violation *Error. Scanners that track their
// own window budget (backward label scans) use it to fail identically to a
// direct out-of-window access.
func Exceeded(op string, off int) {
	panic(&Error{Op: op, Off: off, Err: ErrWindow})
}

// Guard runs f, converting an input-layer panic into a returned error.
// Every streaming entry point wraps its run in Guard; non-input panics are
// re-raised untouched.
func Guard(f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			e, ok := r.(*Error)
			if !ok {
				panic(r)
			}
			err = e
		}
	}()
	return f()
}

// padBlock is the shared all-padding block returned for reads past the end
// of an in-memory document. Read-only by contract.
var padBlock = func() simd.Block {
	var b simd.Block
	for i := range b {
		b[i] = Pad
	}
	return b
}()
