package dom

import (
	"sort"

	"rsonpath/internal/jsonpath"
)

// Semantics selects between the two JSONPath result semantics of §2.
type Semantics int

const (
	// NodeSemantics returns the set of matched nodes in document order —
	// the semantics the paper adopts and all engines here implement.
	NodeSemantics Semantics = iota
	// PathSemantics returns one result per way a node can be matched
	// (a multiset), as most legacy implementations do (Appendix D).
	PathSemantics
)

// Eval evaluates q over the parsed document in the requested semantics.
// Under NodeSemantics the result is deduplicated and sorted in document
// order; under PathSemantics duplicates are kept in match-generation order.
func Eval(root *Node, q *jsonpath.Query, sem Semantics) []*Node {
	current := []*Node{root}
	for i := range q.Selectors {
		sel := &q.Selectors[i]
		var next []*Node
		for _, n := range current {
			next = applySelector(sel, n, next)
		}
		if sem == NodeSemantics {
			next = dedupe(next)
		}
		current = next
	}
	if sem == NodeSemantics {
		sort.Slice(current, func(i, j int) bool { return current[i].Start < current[j].Start })
	}
	return current
}

// MatchOffsets returns the Start offsets of the node-semantics result set,
// sorted — the canonical form differential tests compare.
func MatchOffsets(root *Node, q *jsonpath.Query) []int {
	nodes := Eval(root, q, NodeSemantics)
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = n.Start
	}
	return out
}

func applySelector(sel *jsonpath.Selector, n *Node, out []*Node) []*Node {
	if sel.Descendant {
		return applyDescendant(sel, n, out)
	}
	return applyDirect(sel, n, out)
}

// applyDirect appends .l / .* / [i] / union matches within n, in document
// order.
func applyDirect(sel *jsonpath.Selector, n *Node, out []*Node) []*Node {
	if sel.Wildcard {
		for i := range n.Members {
			out = append(out, n.Members[i].Value)
		}
		return append(out, n.Elems...)
	}
	if len(sel.Labels) > 0 {
		for i := range n.Members {
			if sel.MatchesLabel(n.Members[i].Key) {
				out = append(out, n.Members[i].Value)
			}
		}
	}
	if sel.SelectsIndices() {
		for i := range n.Elems {
			if sel.MatchesIndex(i) {
				out = append(out, n.Elems[i])
			}
		}
	}
	return out
}

// applyDescendant appends ..l / ..* / ..[i] matches: the direct matches of
// n and, recursively, of every subdocument of n, in document order
// (pre-order traversal matches offset order).
func applyDescendant(sel *jsonpath.Selector, n *Node, out []*Node) []*Node {
	out = applyDirect(sel, n, out)
	for i := range n.Members {
		out = applyDescendant(sel, n.Members[i].Value, out)
	}
	for _, e := range n.Elems {
		out = applyDescendant(sel, e, out)
	}
	return out
}

func dedupe(nodes []*Node) []*Node {
	seen := make(map[*Node]bool, len(nodes))
	out := nodes[:0]
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
