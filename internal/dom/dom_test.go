package dom

import (
	"strings"
	"testing"

	"rsonpath/internal/jsonpath"
)

func values(t *testing.T, data string, nodes []*Node) []string {
	t.Helper()
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = data[n.Start:n.End]
	}
	return out
}

func assertEval(t *testing.T, doc, query string, sem Semantics, want ...string) {
	t.Helper()
	root, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse(%q): %v", doc, err)
	}
	got := values(t, doc, Eval(root, jsonpath.MustParse(query), sem))
	if len(got) != len(want) {
		t.Fatalf("%s on %s (%v): got %q, want %q", query, doc, sem, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s on %s (%v): got %q, want %q", query, doc, sem, got, want)
		}
	}
}

func TestParseOffsets(t *testing.T) {
	doc := `{"a": [1, "two", {"b": true}], "c": null}`
	root := MustParse([]byte(doc))
	if root.Kind != KindObject || root.Start != 0 || root.End != len(doc) {
		t.Fatalf("root: %+v", root)
	}
	a := root.Members[0]
	if string(a.Key) != "a" || a.KeyStart != 1 {
		t.Fatalf("member a: %+v", a)
	}
	arr := a.Value
	if arr.Kind != KindArray || doc[arr.Start:arr.End] != `[1, "two", {"b": true}]` {
		t.Fatalf("array: %q", doc[arr.Start:arr.End])
	}
	if doc[arr.Elems[0].Start:arr.Elems[0].End] != "1" {
		t.Fatal("number offsets")
	}
	if doc[arr.Elems[1].Start:arr.Elems[1].End] != `"two"` {
		t.Fatal("string offsets")
	}
	if root.Members[1].Value.Kind != KindNull {
		t.Fatal("null kind")
	}
}

func TestParseScalars(t *testing.T) {
	for _, doc := range []string{`1`, `-1.5e+10`, `0`, `"s"`, `true`, `false`, `null`, `""`, `0.5`, `1E2`} {
		if _, err := Parse([]byte(doc)); err != nil {
			t.Errorf("Parse(%q): %v", doc, err)
		}
	}
}

func TestParseWhitespace(t *testing.T) {
	MustParse([]byte(" \t\r\n { \"a\" : [ 1 , 2 ] } \n"))
}

func TestParseEscapes(t *testing.T) {
	root := MustParse([]byte(`{"a\"b": "A\\\n"}`))
	if string(root.Members[0].Key) != `a\"b` {
		t.Fatalf("raw key = %q", root.Members[0].Key)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``, `{`, `}`, `{"a"}`, `{"a":}`, `{"a":1,}`, `[1,]`, `[1 2]`,
		`"unterminated`, `tru`, `nul`, `01`, `1.`, `1e`, `+1`, `--1`,
		`{"a":1} extra`, `{'a':1}`, `{"a":1,"b"}`, "\"ctrl\x01\"", `"\x"`,
		`"\u00G0"`, `[`, `{"a":[}]`,
	}
	for _, doc := range bad {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", doc)
		} else if _, ok := err.(*SyntaxError); !ok {
			t.Errorf("Parse(%q) error type %T", doc, err)
		}
	}
}

func TestParseDeepNesting(t *testing.T) {
	depth := 10000
	doc := strings.Repeat("[", depth) + "1" + strings.Repeat("]", depth)
	root := MustParse([]byte(doc))
	if root.Kind != KindArray {
		t.Fatal("not an array")
	}
}

func TestEvalPaperSection2Example(t *testing.T) {
	// §2: in {a:[{b:{c:1}}, {b:[2]}]}, the query $.a..b.* returns 1 and 2.
	assertEval(t, `{"a":[{"b":{"c":1}}, {"b":[2]}]}`, "$.a..b.*", NodeSemantics, "1", "2")
}

func TestEvalPaperSemanticsExample(t *testing.T) {
	// §2: {a:{a:{a:{b:"Yay!"}}}} and $..a..b — one node, three paths.
	doc := `{"a":{"a":{"a":{"b":"Yay!"}}}}`
	assertEval(t, doc, "$..a..b", NodeSemantics, `"Yay!"`)
	assertEval(t, doc, "$..a..b", PathSemantics, `"Yay!"`, `"Yay!"`, `"Yay!"`)
}

func TestEvalAppendixDExample(t *testing.T) {
	// Appendix D's document (values shortened as in the paper): the query
	// $..person..name yields A B C D under node semantics and
	// A B C D C D under path semantics.
	doc := `{
	  "person": {
	    "name": "A",
	    "spouse": {"name": "B"},
	    "person": {
	      "children": [{"name": "C"}, {"name": "D"}]
	    }
	  }
	}`
	assertEval(t, doc, "$..person..name", NodeSemantics, `"A"`, `"B"`, `"C"`, `"D"`)
	got := values(t, doc, Eval(MustParse([]byte(doc)), jsonpath.MustParse("$..person..name"), PathSemantics))
	// Path semantics: 6 results, with C and D matched twice.
	if len(got) != 6 {
		t.Fatalf("path semantics returned %d results: %q", len(got), got)
	}
	counts := map[string]int{}
	for _, v := range got {
		counts[v]++
	}
	if counts[`"A"`] != 1 || counts[`"B"`] != 1 || counts[`"C"`] != 2 || counts[`"D"`] != 2 {
		t.Fatalf("path semantics multiset wrong: %q", got)
	}
}

func TestEvalChildSelectors(t *testing.T) {
	doc := `{"a": {"b": 1, "c": 2}, "d": [3, 4]}`
	assertEval(t, doc, "$.a.b", NodeSemantics, "1")
	assertEval(t, doc, "$.a.*", NodeSemantics, "1", "2")
	assertEval(t, doc, "$.d.*", NodeSemantics, "3", "4")
	assertEval(t, doc, "$.*.*", NodeSemantics, "1", "2", "3", "4")
	assertEval(t, doc, "$.missing", NodeSemantics)
	assertEval(t, doc, "$.d.b", NodeSemantics) // label into array: nothing
	assertEval(t, doc, "$", NodeSemantics, doc)
}

func TestEvalWildcardOnObjectAndArray(t *testing.T) {
	// Idiomatic wildcard (§1.1): object fields AND array entries.
	doc := `{"o": {"x": 1}, "a": [2]}`
	assertEval(t, doc, "$.*.*", NodeSemantics, "1", "2")
}

func TestEvalDescendants(t *testing.T) {
	doc := `{"a": {"a": {"b": 1}, "b": 2}, "b": [{"b": 3}]}`
	assertEval(t, doc, "$..b", NodeSemantics, "1", "2", `[{"b": 3}]`, "3")
	assertEval(t, doc, "$..a..b", NodeSemantics, "1", "2")
	assertEval(t, doc, "$..a.b", NodeSemantics, "1", "2")
}

func TestEvalDescendantWildcard(t *testing.T) {
	doc := `{"a": [1, {"b": 2}]}`
	// ..* selects every subdocument below the root.
	assertEval(t, doc, "$..*", NodeSemantics,
		`[1, {"b": 2}]`, "1", `{"b": 2}`, "2")
}

func TestEvalIndexes(t *testing.T) {
	doc := `{"a": [10, 20, 30], "b": [[1], [2, 3]]}`
	assertEval(t, doc, "$.a[0]", NodeSemantics, "10")
	assertEval(t, doc, "$.a[2]", NodeSemantics, "30")
	assertEval(t, doc, "$.a[3]", NodeSemantics)
	assertEval(t, doc, "$.b.*[0]", NodeSemantics, "1", "2")
	assertEval(t, doc, "$..[1]", NodeSemantics, "20", `[2, 3]`, "3")
}

func TestEvalDuplicateKeys(t *testing.T) {
	doc := `{"a": 1, "a": 2}`
	assertEval(t, doc, "$.a", NodeSemantics, "1", "2")
}

func TestEvalNestedSameLabelGreedyCase(t *testing.T) {
	// The A2-style ambiguous query from §5.6.
	doc := `{"inner": {"inner": {"type": {"qualType": "int"}}}}`
	assertEval(t, doc, "$..inner..inner..type.qualType", NodeSemantics, `"int"`)
}

func TestEvalAtomicRoot(t *testing.T) {
	assertEval(t, `42`, "$", NodeSemantics, "42")
	assertEval(t, `42`, "$.a", NodeSemantics)
	assertEval(t, `42`, "$..a", NodeSemantics)
}

func TestEvalRawKeyMatching(t *testing.T) {
	// Keys are compared byte-verbatim: an escaped key in the document does
	// not match its decoded form, and vice versa.
	doc := `{"a\nb": 1}`
	assertEval(t, doc, `$['a\nb']`, NodeSemantics, "1")
}

func TestMatchOffsetsSorted(t *testing.T) {
	doc := `{"x": {"a": 1}, "a": 2}`
	root := MustParse([]byte(doc))
	offs := MatchOffsets(root, jsonpath.MustParse("$..a"))
	if len(offs) != 2 || offs[0] >= offs[1] {
		t.Fatalf("offsets %v", offs)
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindObject, KindArray, KindString, KindNumber, KindBool, KindNull}
	want := []string{"object", "array", "string", "number", "bool", "null"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("Kind(%d).String() = %q", int(k), k.String())
		}
	}
}

func TestEvalUnions(t *testing.T) {
	doc := `{"a": 1, "b": [10, 20, 30], "c": {"a": 2, "d": 3}}`
	assertEval(t, doc, "$['a','c']", NodeSemantics, "1", `{"a": 2, "d": 3}`)
	assertEval(t, doc, "$.b[0,2]", NodeSemantics, "10", "30")
	assertEval(t, doc, "$.b[2,0]", NodeSemantics, "10", "30") // node semantics: document order
	assertEval(t, doc, "$..['a','d']", NodeSemantics, "1", "2", "3")
	assertEval(t, doc, "$['b',0].*", NodeSemantics, "10", "20", "30")
}

func TestEvalSlices(t *testing.T) {
	doc := `{"a": [10, 20, 30, 40], "b": {"c": [1, 2]}}`
	assertEval(t, doc, "$.a[1:3]", NodeSemantics, "20", "30")
	assertEval(t, doc, "$.a[2:]", NodeSemantics, "30", "40")
	assertEval(t, doc, "$.a[:2]", NodeSemantics, "10", "20")
	assertEval(t, doc, "$.a[:]", NodeSemantics, "10", "20", "30", "40")
	assertEval(t, doc, "$.a[3:17]", NodeSemantics, "40")
	assertEval(t, doc, "$..[1:2]", NodeSemantics, "20", "2")
	assertEval(t, doc, "$.a[0,2:4]", NodeSemantics, "10", "30", "40")
}
