// Package dom provides the reference implementation used as the oracle for
// every streaming engine in this repository: a strict JSON parser producing
// a document tree with byte offsets, and a recursive JSONPath evaluator
// supporting both node semantics and path semantics (§2, Appendix D).
//
// It is deliberately simple and obviously correct rather than fast; all
// differential tests compare the streaming engines' match offsets against
// Eval's.
package dom

import (
	"fmt"

	"rsonpath/internal/errs"
)

// DefaultMaxDepth is the nesting bound Parse applies when none is given:
// deep enough for any real document, shallow enough that the recursive
// parser cannot overflow the goroutine stack on pathological input
// (e.g. a megabyte of '[').
const DefaultMaxDepth = 10000

// Kind classifies a JSON value.
type Kind int

const (
	// KindObject is a {...} value.
	KindObject Kind = iota
	// KindArray is a [...] value.
	KindArray
	// KindString is a "..." value.
	KindString
	// KindNumber is a numeric value.
	KindNumber
	// KindBool is true or false.
	KindBool
	// KindNull is null.
	KindNull
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindObject:
		return "object"
	case KindArray:
		return "array"
	case KindString:
		return "string"
	case KindNumber:
		return "number"
	case KindBool:
		return "bool"
	default:
		return "null"
	}
}

// Node is one JSON value. Start is the offset of its first byte, End the
// offset just past its last byte.
type Node struct {
	Kind    Kind
	Start   int
	End     int
	Members []Member // objects, in document order (duplicate keys kept)
	Elems   []*Node  // arrays
}

// Member is an object property. Key holds the raw bytes between the key's
// quotes — escape sequences are not decoded, matching the byte-verbatim
// label comparison performed by the streaming engines.
type Member struct {
	Key      []byte
	KeyStart int // offset of the opening quote of the key
	Value    *Node
}

// SyntaxError reports invalid JSON with a byte offset.
type SyntaxError struct {
	Offset int
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("dom: %s at offset %d", e.Msg, e.Offset)
}

type parser struct {
	data     []byte
	pos      int
	depth    int
	maxDepth int
}

// Parse parses a complete JSON document, requiring that nothing but
// whitespace follows the value. Nesting is bounded by DefaultMaxDepth;
// use ParseLimit to choose the bound.
func Parse(data []byte) (*Node, error) {
	return ParseLimit(data, DefaultMaxDepth)
}

// ParseLimit is Parse with an explicit nesting bound; documents nesting
// deeper than maxDepth fail with a typed *errs.Limit instead of exhausting
// the stack. maxDepth ≤ 0 selects DefaultMaxDepth (the recursive parser
// cannot run unbounded).
func ParseLimit(data []byte, maxDepth int) (*Node, error) {
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	p := &parser{data: data, maxDepth: maxDepth}
	p.ws()
	n, err := p.value()
	if err != nil {
		return nil, err
	}
	p.ws()
	if p.pos != len(p.data) {
		return nil, p.errf("trailing content")
	}
	return n, nil
}

// MustParse is Parse that panics on error, for tests and fixtures.
func MustParse(data []byte) *Node {
	n, err := Parse(data)
	if err != nil {
		panic(err)
	}
	return n
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &SyntaxError{Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) ws() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) value() (*Node, error) {
	if p.pos >= len(p.data) {
		return nil, p.errf("unexpected end of input")
	}
	switch c := p.data[p.pos]; {
	case c == '{':
		return p.object()
	case c == '[':
		return p.array()
	case c == '"':
		return p.string_()
	case c == 't':
		return p.literal("true", KindBool)
	case c == 'f':
		return p.literal("false", KindBool)
	case c == 'n':
		return p.literal("null", KindNull)
	case c == '-' || (c >= '0' && c <= '9'):
		return p.number()
	default:
		return nil, p.errf("unexpected character %q", c)
	}
}

// enter counts one level of nesting, failing when the bound is exceeded.
func (p *parser) enter() error {
	p.depth++
	if p.depth > p.maxDepth {
		return errs.DepthLimit(p.maxDepth, p.pos)
	}
	return nil
}

func (p *parser) object() (*Node, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer func() { p.depth-- }()
	n := &Node{Kind: KindObject, Start: p.pos}
	p.pos++ // '{'
	p.ws()
	if p.pos < len(p.data) && p.data[p.pos] == '}' {
		p.pos++
		n.End = p.pos
		return n, nil
	}
	for {
		p.ws()
		if p.pos >= len(p.data) || p.data[p.pos] != '"' {
			return nil, p.errf("expected object key")
		}
		keyStart := p.pos
		key, err := p.rawString()
		if err != nil {
			return nil, err
		}
		p.ws()
		if p.pos >= len(p.data) || p.data[p.pos] != ':' {
			return nil, p.errf("expected ':' after object key")
		}
		p.pos++
		p.ws()
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		n.Members = append(n.Members, Member{Key: key, KeyStart: keyStart, Value: v})
		p.ws()
		if p.pos >= len(p.data) {
			return nil, p.errf("unterminated object")
		}
		switch p.data[p.pos] {
		case ',':
			p.pos++
		case '}':
			p.pos++
			n.End = p.pos
			return n, nil
		default:
			return nil, p.errf("expected ',' or '}' in object")
		}
	}
}

func (p *parser) array() (*Node, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer func() { p.depth-- }()
	n := &Node{Kind: KindArray, Start: p.pos}
	p.pos++ // '['
	p.ws()
	if p.pos < len(p.data) && p.data[p.pos] == ']' {
		p.pos++
		n.End = p.pos
		return n, nil
	}
	for {
		p.ws()
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		n.Elems = append(n.Elems, v)
		p.ws()
		if p.pos >= len(p.data) {
			return nil, p.errf("unterminated array")
		}
		switch p.data[p.pos] {
		case ',':
			p.pos++
		case ']':
			p.pos++
			n.End = p.pos
			return n, nil
		default:
			return nil, p.errf("expected ',' or ']' in array")
		}
	}
}

func (p *parser) string_() (*Node, error) {
	n := &Node{Kind: KindString, Start: p.pos}
	if _, err := p.rawString(); err != nil {
		return nil, err
	}
	n.End = p.pos
	return n, nil
}

// rawString consumes a string literal and returns the raw bytes between the
// quotes (escapes validated but not decoded).
func (p *parser) rawString() ([]byte, error) {
	p.pos++ // opening quote
	start := p.pos
	for p.pos < len(p.data) {
		switch c := p.data[p.pos]; {
		case c == '"':
			raw := p.data[start:p.pos]
			p.pos++
			return raw, nil
		case c == '\\':
			if p.pos+1 >= len(p.data) {
				return nil, p.errf("unterminated escape")
			}
			switch e := p.data[p.pos+1]; e {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				p.pos += 2
			case 'u':
				if p.pos+5 >= len(p.data) {
					return nil, p.errf("truncated \\u escape")
				}
				for i := 2; i < 6; i++ {
					if !isHex(p.data[p.pos+i]) {
						return nil, p.errf("invalid \\u escape")
					}
				}
				p.pos += 6
			default:
				return nil, p.errf("invalid escape %q", e)
			}
		case c < 0x20:
			return nil, p.errf("control character in string")
		default:
			p.pos++
		}
	}
	return nil, p.errf("unterminated string")
}

func isHex(b byte) bool {
	return b >= '0' && b <= '9' || b >= 'a' && b <= 'f' || b >= 'A' && b <= 'F'
}

func (p *parser) literal(lit string, kind Kind) (*Node, error) {
	if p.pos+len(lit) > len(p.data) || string(p.data[p.pos:p.pos+len(lit)]) != lit {
		return nil, p.errf("invalid literal")
	}
	n := &Node{Kind: kind, Start: p.pos, End: p.pos + len(lit)}
	p.pos += len(lit)
	return n, nil
}

func (p *parser) number() (*Node, error) {
	n := &Node{Kind: KindNumber, Start: p.pos}
	if p.data[p.pos] == '-' {
		p.pos++
	}
	digits := func() int {
		c := 0
		for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
			p.pos++
			c++
		}
		return c
	}
	if p.pos < len(p.data) && p.data[p.pos] == '0' {
		p.pos++
	} else if digits() == 0 {
		return nil, p.errf("invalid number")
	}
	if p.pos < len(p.data) && p.data[p.pos] == '.' {
		p.pos++
		if digits() == 0 {
			return nil, p.errf("digits required after decimal point")
		}
	}
	if p.pos < len(p.data) && (p.data[p.pos] == 'e' || p.data[p.pos] == 'E') {
		p.pos++
		if p.pos < len(p.data) && (p.data[p.pos] == '+' || p.data[p.pos] == '-') {
			p.pos++
		}
		if digits() == 0 {
			return nil, p.errf("digits required in exponent")
		}
	}
	n.End = p.pos
	return n, nil
}
