package rsonpath

import (
	"fmt"

	"rsonpath/internal/jsonpath"
	"rsonpath/internal/planner"
)

// This file is the public face of the execution-plan layer (DESIGN.md
// §13): every entry point of Query and QuerySet routes its dispatch
// through plan(), which turns the compiled query's shape, the run-time
// document stats, and the resolved options into an ExecutionPlan. The
// decision rules live in internal/planner; here they are bound to the
// compiled artifacts and exposed through Explain.

// PlannerMode selects how a Query picks its execution strategy per run.
type PlannerMode int

const (
	// PlannerAuto (the default) lets the planner choose the cheapest
	// correct strategy per run from the query shape and document stats:
	// plane-backed runs when an index is in hand, the depth-register
	// automaton where it is measured faster, head-skip streaming for
	// sparse leading descendants, and so on (DESIGN.md §13 lists the
	// rules). WithEngine still pins the engine — a forced engine is a
	// planner constraint, not a separate dispatch path.
	PlannerAuto PlannerMode = iota
	// PlannerOff disables the rules: the configured engine runs every
	// time, exactly as if it had been forced with WithEngine. Use it to
	// pin measurements (ablations) or to freeze today's behavior.
	PlannerOff
)

// WithPlanner selects the planner mode; the default is PlannerAuto.
func WithPlanner(m PlannerMode) Option {
	return func(c *config) { c.planner = m }
}

// IndexAmortizeRuns is the repeat-run count at which building a document
// mask index is predicted to have repaid its build (BENCH_swar.json); the
// planner advises StrategyIndexed at or above it.
const IndexAmortizeRuns = planner.IndexAmortizeRuns

// DocStats carries what the caller knows about the document (and the
// workload) at run time; the planner turns it into a strategy choice. The
// zero value means "nothing known" and always yields a safe plan.
type DocStats struct {
	// Bytes is the document size, 0 when unknown.
	Bytes int
	// Streaming reports the document arrives through a reader and is never
	// wholly in memory.
	Streaming bool
	// Indexed reports a prebuilt IndexedDocument for these bytes is in
	// hand (RunIndexed is available).
	Indexed bool
	// ExpectedRuns is the predicted total number of runs this document
	// will serve — repeat queries against the same bytes; 0 when unknown.
	// At IndexAmortizeRuns and above the planner advises building an
	// index.
	ExpectedRuns int
	// DenseMatches hints that the query's sought labels occur densely in
	// this document (most records contain them), which neutralizes
	// head-skip; known from prior runs or workload history.
	DenseMatches bool
}

// Plan is one planning decision: the chosen strategy, the engine that
// executes it, the stable identifier of the rule that selected it, and a
// human-readable rationale. Strategy and Rule values are stable across
// releases; Rationale wording is documentation, not API.
type Plan struct {
	// Strategy is the stable strategy name: "standard", "skip",
	// "head-skip", "indexed", "stackless", "ski", "surfer", or "dom".
	Strategy string
	// Engine is the engine kind that executes the strategy.
	Engine EngineKind
	// Rule identifies the decision rule that fired, e.g. "forced-engine",
	// "indexed-available", "index-amortizes", "stackless-registers".
	Rule string
	// Rationale explains the decision in one sentence.
	Rationale string
}

// String renders the plan in the form the CLI's -explain flag prints.
func (p Plan) String() string {
	return fmt.Sprintf("strategy=%s engine=%s rule=%s: %s", p.Strategy, p.Engine, p.Rule, p.Rationale)
}

// Explain returns the execution plan the query would follow for a run over
// a document with the given stats — the decision RunPlanned and the other
// entry points make, exposed for observability and for callers that
// orchestrate their own amortization (building an IndexedDocument when the
// plan says "indexed" but none exists yet). The output is deterministic:
// the same query and stats always produce the same plan.
func (q *Query) Explain(stats DocStats) Plan {
	return publicPlan(q.plan(stats.internal()))
}

// internal converts the public stats to the planner's.
func (d DocStats) internal() planner.DocStats {
	return planner.DocStats{
		Bytes:        d.Bytes,
		Streaming:    d.Streaming,
		Indexed:      d.Indexed,
		ExpectedRuns: d.ExpectedRuns,
		DenseMatches: d.DenseMatches,
	}
}

// publicPlan converts a planner decision to the public Plan.
func publicPlan(p planner.Plan) Plan {
	return Plan{
		Strategy:  p.Strategy.String(),
		Engine:    strategyEngine(p.Strategy),
		Rule:      p.Rule,
		Rationale: p.Rationale,
	}
}

// strategyEngine maps a strategy to the engine kind that executes it.
func strategyEngine(s planner.Strategy) EngineKind {
	switch s {
	case planner.StrategyStackless:
		return EngineStackless
	case planner.StrategySki:
		return EngineSki
	case planner.StrategySurfer:
		return EngineSurfer
	case planner.StrategyDOM:
		return EngineDOM
	default:
		// standard, skip, head-skip and indexed are all the accelerated
		// engine; indexed is the same automaton fed from precomputed masks.
		return EngineRsonpath
	}
}

// shapeOf derives the planner's query-shape facts from the parsed query.
func shapeOf(parsed *jsonpath.Query) planner.Shape {
	sh := planner.Shape{
		Selectors:           len(parsed.Selectors),
		HasDescendant:       parsed.HasDescendant(),
		DescendantChainOnly: len(parsed.Selectors) > 0,
	}
	for i := range parsed.Selectors {
		sel := &parsed.Selectors[i]
		if sel.Wildcard {
			sh.HasWildcard = true
		}
		if !sel.Descendant || sel.Wildcard || len(sel.Labels) != 1 || sel.SelectsIndices() {
			sh.DescendantChainOnly = false
		}
	}
	if len(parsed.Selectors) > 0 {
		first := &parsed.Selectors[0]
		sh.LeadingDescendantLabel = first.Descendant && len(first.Labels) > 0
	}
	return sh
}

// strategyForKind maps a configured engine kind to its pinned strategy;
// the accelerated engine reports its scan flavor for the query shape.
func strategyForKind(kind EngineKind, sh planner.Shape) planner.Strategy {
	switch kind {
	case EngineSurfer:
		return planner.StrategySurfer
	case EngineSki:
		return planner.StrategySki
	case EngineDOM:
		return planner.StrategyDOM
	case EngineStackless:
		return planner.StrategyStackless
	default:
		switch {
		case sh.LeadingDescendantLabel:
			return planner.StrategyHeadSkip
		case !sh.HasDescendant:
			return planner.StrategySkip
		default:
			return planner.StrategyStandard
		}
	}
}

// plan runs the decision rules for this query over the given stats.
func (q *Query) plan(stats planner.DocStats) planner.Plan {
	return planner.Decide(q.shape, stats, planner.Constraints{
		Forced:         q.forced,
		ForcedStrategy: strategyForKind(q.kind, q.shape),
		PlannerOff:     q.mode == PlannerOff,
		NoHeadSkip:     q.noHeadSkip,
		WatchdogArmed:  q.sup.timeout > 0,
	})
}

// runnerFor resolves a plan to the runner that executes it and the engine
// label reported in errors and Outcomes. StrategyIndexed resolves to the
// primary engine: the plane-backed path is entered through RunIndexed,
// which holds the planes; a plan that merely advises indexing (rule
// "index-amortizes") scans normally until the caller builds the index.
func (q *Query) runnerFor(p planner.Plan) (runner, string) {
	if p.Strategy == planner.StrategyStackless && q.stackless != nil {
		return q.stackless, EngineStackless.String()
	}
	return q.run, q.kind.String()
}

// planRunner plans a run over stats and resolves the executing runner in
// one step — the dispatch core shared by the public entry points.
func (q *Query) planRunner(stats planner.DocStats) (runner, string) {
	return q.runnerFor(q.plan(stats))
}

// planInputRunner is planRunner for the streaming entry points: it plans
// with the streaming fact set and resolves the chosen runner's streaming
// surface. ok is false when the planned engine cannot stream (EngineDOM).
func (q *Query) planInputRunner(stats planner.DocStats) (inputRunner, string, bool) {
	stats.Streaming = true
	run, label := q.planRunner(stats)
	sr, ok := run.(inputRunner)
	return sr, label, ok
}

// RunPlanned is Run with the caller's document stats in the planner's
// hands: the strategy is chosen from the query shape, the stats, and the
// compiled options, the run executes it, and the decision is returned
// alongside the result. Run(data, emit) is exactly RunPlanned(data,
// DocStats{}, emit) with the plan discarded.
//
// A returned plan with Strategy "indexed" and stats.Indexed false is
// advice: the run scanned this time, but building an IndexedDocument
// (Index) and switching to RunIndexed is predicted to amortize over
// stats.ExpectedRuns runs.
func (q *Query) RunPlanned(data []byte, stats DocStats, emit func(pos int)) (Plan, error) {
	st := stats.internal()
	st.Bytes = len(data)
	st.Streaming = false
	pl := q.plan(st)
	if q.sup.timeout > 0 {
		return publicPlan(pl), q.Run(data, emit)
	}
	if err := q.limits.checkDocBytes(len(data)); err != nil {
		return publicPlan(pl), err
	}
	run, label := q.runnerFor(pl)
	return publicPlan(pl), guardRun(label, func() error {
		return run.Run(data, q.limits.limitEmit(emit))
	})
}
