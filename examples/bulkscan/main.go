// Bulk scanning: compare the three engines on a Crossref-style metadata
// dump, reproducing in miniature the shape of the paper's Experiments A
// and B — the accelerated engine wins on child-only queries, and rewriting
// with descendants both simplifies the query and speeds it up.
package main

import (
	"fmt"
	"log"
	"time"

	"rsonpath"
	"rsonpath/internal/jsongen"
)

func main() {
	data, err := jsongen.Generate("crossref", 8<<20, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Crossref-style dump: %d bytes\n\n", len(data))

	type row struct {
		query  string
		engine rsonpath.EngineKind
	}
	rows := []row{
		{"$.items.*.author.*.affiliation.*.name", rsonpath.EngineSurfer},
		{"$.items.*.author.*.affiliation.*.name", rsonpath.EngineSki},
		{"$.items.*.author.*.affiliation.*.name", rsonpath.EngineRsonpath},
		{"$..author..affiliation..name", rsonpath.EngineRsonpath},
		{"$..DOI", rsonpath.EngineRsonpath},
	}
	fmt.Printf("%-40s %-9s %9s %12s %9s\n", "query", "engine", "matches", "time", "GB/s")
	for _, r := range rows {
		q, err := rsonpath.Compile(r.query, rsonpath.WithEngine(r.engine))
		if err != nil {
			log.Fatal(err)
		}
		// Warm-up, then a timed run (§5.1 methodology in miniature).
		if _, err := q.Count(data); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		n, err := q.Count(data)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("%-40s %-9s %9d %12v %9.2f\n",
			r.query, r.engine, n, elapsed.Round(time.Microsecond),
			float64(len(data))/elapsed.Seconds()/1e9)
	}
}
