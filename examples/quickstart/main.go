// Quickstart: compile a descendant query and extract every match from a
// document, without building a DOM.
package main

import (
	"fmt"
	"log"

	"rsonpath"
)

const doc = `{
  "firstName": "John",
  "address": {"city": "Nara", "links": [{"url": "https://example.org/a"}]},
  "phoneNumbers": [
    {"type": "iPhone", "meta": {"url": "https://example.org/b"}},
    {"type": "home",   "url": "https://example.org/c"}
  ]
}`

func main() {
	// "$..url": every value of a property named url, anywhere in the
	// document — the motivating example of the paper's introduction.
	q, err := rsonpath.Compile("$..url")
	if err != nil {
		log.Fatal(err)
	}

	values, err := q.MatchValues([]byte(doc))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %s found %d matches:\n", q, len(values))
	for _, v := range values {
		fmt.Printf("  %s\n", v)
	}

	// Counting without extracting is cheaper still.
	n, err := q.Count([]byte(doc))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("count: %d\n", n)
}
