// Web-API responses: pull fields out of a Twitter-style search result —
// the "small but irregular" workload of §5.3 — and show how loosening the
// path with descendants simplifies queries without changing the results
// (the Ts / Tsp / Tsr family of Experiment C).
package main

import (
	"fmt"
	"log"

	"rsonpath"
	"rsonpath/internal/jsongen"
)

func main() {
	data, err := jsongen.Generate("twitter_small", 256<<10, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("document: %d bytes\n\n", len(data))

	// Three spellings of the same question (they return the same value):
	// fully specified, partially loosened, and fully loosened.
	for _, src := range []string{
		"$.search_metadata.count",  // Ts
		"$..search_metadata.count", // Tsp
		"$..count",                 // Tsr
	} {
		q := rsonpath.MustCompile(src)
		vals, err := q.MatchValues(data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s -> %s\n", src, vals[0])
	}

	// Harvest every hashtag, including those inside retweets, with one
	// descendant query.
	hashtags := rsonpath.MustCompile("$..hashtags..text")
	vals, err := hashtags.MatchValues(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d hashtags; first few:\n", len(vals))
	for i, v := range vals {
		if i == 5 {
			break
		}
		fmt.Printf("  %s\n", v)
	}
}
