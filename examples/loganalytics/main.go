// Log analytics over newline-delimited JSON: the bounded-memory streaming
// regime the paper's introduction motivates ("when faced with terabytes of
// data to query, the only feasible solution is a streaming algorithm with
// minimal memory footprint"), applied record-wise to a synthetic service
// log.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"rsonpath"
)

func main() {
	// Synthesize a JSONL log: one record per line, occasionally nested.
	var buf bytes.Buffer
	r := rand.New(rand.NewSource(1))
	services := []string{"api", "auth", "billing", "search"}
	for i := 0; i < 5000; i++ {
		level := "info"
		if r.Intn(20) == 0 {
			level = "error"
		}
		fmt.Fprintf(&buf, `{"ts": %d, "level": %q, "service": %q`,
			1700000000+i, level, services[r.Intn(len(services))])
		if level == "error" {
			fmt.Fprintf(&buf, `, "error": {"code": %d, "context": {"trace": {"id": %q}}}`,
				500+r.Intn(5), fmt.Sprintf("t-%06x", r.Int31()))
		}
		buf.WriteString("}\n")
	}
	fmt.Printf("log: %d bytes, 5000 records\n\n", buf.Len())

	// Count errors with one descendant query per record stream.
	errs, _, err := rsonpath.MustCompile("$..error.code").CountLines(bytes.NewReader(buf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("error records:   %d\n", errs)

	// Harvest trace ids without knowing where they nest.
	traces := rsonpath.MustCompile("$..trace.id")
	shown := 0
	err = traces.RunLines(bytes.NewReader(buf.Bytes()), func(m rsonpath.LineMatch) error {
		for _, o := range m.Offsets {
			if shown < 5 {
				v, err := rsonpath.ValueAt(m.Record, o)
				if err != nil {
					return err
				}
				id, err := rsonpath.DecodeString(v)
				if err != nil {
					return err
				}
				fmt.Printf("line %5d trace %s\n", m.Line, id)
				shown++
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Composition: error objects, then their codes.
	pipe := rsonpath.NewPipeline(
		rsonpath.MustCompile("$..error"),
		rsonpath.MustCompile("$.code"),
	)
	record := []byte(`{"batch": [{"error": {"code": 503}}, {"ok": true}, {"error": {"code": 500}}]}`)
	vals, err := pipe.MatchValues(record)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npipeline $..error | $.code on a batch record: %s\n", bytes.Join(vals, []byte(", ")))
}
