// Code-as-data: query a clang-style abstract syntax tree — the deep,
// highly irregular workload motivating descendant support in the paper's
// introduction (§1.2). Exploring such documents without wildcard and
// descendant selectors is infeasible: relevant labels appear at dozens of
// different depths.
package main

import (
	"fmt"
	"log"
	"time"

	"rsonpath"
	"rsonpath/internal/jsongen"
)

func main() {
	// Generate a synthetic AST (~depth 100, like clang's real output).
	data, err := jsongen.Generate("ast", 2<<20, 7)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := jsongen.Measure(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AST document: %d bytes, depth %d, %d nodes\n\n",
		stats.SizeBytes, stats.Depth, stats.Nodes)

	// The paper's A1-A3 query family: none is expressible without
	// descendants, because the labels occur at many depths.
	queries := []string{
		"$..decl.name",                   // A1: find declarations
		"$..inner..inner..type.qualType", // A2: types of nested nodes
		"$..loc.includedFrom.file",       // A3: headers pulled in
		"$..kind",                        // every node kind
	}
	for _, src := range queries {
		q, err := rsonpath.Compile(src)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		n, err := q.Count(data)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("%-34s %8d matches  %10v  (%.2f GB/s)\n",
			src, n, elapsed, float64(len(data))/elapsed.Seconds()/1e9)
	}
}
