// Semantics: demonstrate node semantics vs path semantics (§2 and
// Appendix D of the paper). The engine implements node semantics — the
// result is a *set* of nodes — while most legacy JSONPath implementations
// return one result per access path, duplicating values.
package main

import (
	"fmt"
	"log"
	"strings"

	"rsonpath"
	"rsonpath/internal/dom"
	"rsonpath/internal/jsonpath"
)

const doc = `{
  "person": {
    "name": "A",
    "spouse": {"name": "B"},
    "person": {
      "children": [{"name": "C"}, {"name": "D"}]
    }
  }
}`

func main() {
	const query = "$..person..name"
	fmt.Printf("document (Appendix D):\n%s\n\nquery: %s\n\n", doc, query)

	// Reference evaluation in both semantics.
	root, err := dom.Parse([]byte(doc))
	if err != nil {
		log.Fatal(err)
	}
	q := jsonpath.MustParse(query)
	show := func(name string, sem dom.Semantics) {
		var vals []string
		for _, n := range dom.Eval(root, q, sem) {
			vals = append(vals, doc[n.Start:n.End])
		}
		fmt.Printf("%-15s [%s]\n", name+":", strings.Join(vals, ", "))
	}
	show("node semantics", dom.NodeSemantics)
	show("path semantics", dom.PathSemantics)

	// The streaming engine agrees with node semantics.
	eng := rsonpath.MustCompile(query)
	vals, err := eng.MatchValues([]byte(doc))
	if err != nil {
		log.Fatal(err)
	}
	var rendered []string
	for _, v := range vals {
		rendered = append(rendered, string(v))
	}
	fmt.Printf("%-15s [%s]\n", "engine:", strings.Join(rendered, ", "))
	fmt.Println("\nPath semantics duplicates C and D (reachable through two " +
		"person matches) and can blow up exponentially; node semantics is " +
		"what a single streaming pass naturally produces.")
}
