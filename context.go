package rsonpath

import (
	"context"
	"io"

	"rsonpath/internal/input"
	"rsonpath/internal/planner"
)

// Context-aware streaming: RunReaderContext and QuerySet.RunReaderContext
// observe ctx at every window refill — the natural cancellation points of a
// window-bounded run — and return within one refill of cancellation, with
// the error wrapping both ErrCanceled and the context's own error.
//
// The underlying reader is driven from a helper goroutine so that a Read
// blocked on a stalled source cannot outlive the caller's patience: on
// cancellation the run returns immediately and the goroutine winds down as
// soon as its in-flight Read completes (bytes read after abandonment are
// discarded; the run is over).

// readResult is one completed Read of the pump goroutine.
type readResult struct {
	data []byte
	err  error
}

// ctxReader adapts an io.Reader to a context: Read returns ctx.Err() as
// soon as the context is done, even while the underlying reader blocks.
type ctxReader struct {
	ctx context.Context
	req chan int        // capacity requests to the pump
	res chan readResult // completed reads, buffered so the pump never leaks
	err error           // sticky error after cancellation
	// pumpDone is closed when the pump goroutine exits; the goroutine-leak
	// regression tests wait on it to prove the pump winds down within one
	// read of stop().
	pumpDone chan struct{}
}

func newCtxReader(ctx context.Context, r io.Reader) *ctxReader {
	c := &ctxReader{
		ctx:      ctx,
		req:      make(chan int),
		res:      make(chan readResult, 1),
		pumpDone: make(chan struct{}),
	}
	go c.pump(r)
	return c
}

// pump owns the underlying reader and a private buffer. The consumer copies
// a result out before issuing the next request, so the buffer is never
// written while read — the request/response channels provide the
// happens-before edges.
func (c *ctxReader) pump(r io.Reader) {
	defer close(c.pumpDone)
	var buf []byte
	for size := range c.req {
		if cap(buf) < size {
			buf = make([]byte, size)
		}
		n, err := r.Read(buf[:size])
		c.res <- readResult{data: buf[:n], err: err}
	}
}

// stop releases the pump goroutine once no further Reads will be issued.
func (c *ctxReader) stop() { close(c.req) }

func (c *ctxReader) Read(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	select {
	case <-c.ctx.Done():
		c.err = c.ctx.Err()
		return 0, c.err
	case c.req <- len(p):
	}
	select {
	case <-c.ctx.Done():
		c.err = c.ctx.Err()
		return 0, c.err
	case r := <-c.res:
		n := copy(p, r.data)
		return n, r.err
	}
}

// RunContext is Run with cancellation: matches are emitted incrementally,
// during the scan, and the run observes ctx — at entry for documents within
// one stream window (whose whole run is "within one refill"), at every
// window boundary for larger ones. Unlike RunSupervised, which buffers
// matches until the degradation ladder settles, RunContext delivers each
// match the moment the engine finds it; that makes it the entry point for
// streamed serving, where output leaves the process before the run ends and
// a transparent re-run is impossible by construction. A configured
// WithTimeout applies on top of ctx.
func (q *Query) RunContext(ctx context.Context, data []byte, emit func(pos int)) error {
	if q.sup.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, q.sup.timeout)
		defer cancel()
	}
	return q.runCtx(ctx, data, emit)
}

// RunReaderContext is RunReader with cancellation: the run observes ctx at
// every window refill and aborts with an error wrapping ErrCanceled (and
// the context's own error) when ctx is done — even if the underlying reader
// is blocked. Matches emitted before the cancellation have been delivered.
func (q *Query) RunReaderContext(ctx context.Context, r io.Reader, emit func(pos int)) error {
	sr, label, ok := q.planInputRunner(planner.DocStats{})
	if !ok {
		return ErrStreamingUnsupported
	}
	if q.sup.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, q.sup.timeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return convertErr(err)
	}
	cr := newCtxReader(ctx, r)
	defer cr.stop()
	in := input.NewBuffered(cr, q.window)
	defer in.Release()
	if q.limits.maxDocBytes > 0 {
		in.LimitDocBytes(q.limits.maxDocBytes)
	}
	return guardRun(label, func() error {
		return sr.RunInput(in, q.limits.limitEmit(emit))
	})
}

// RunReaderContext is QuerySet.RunReader with cancellation, with the same
// contract as Query.RunReaderContext.
func (s *QuerySet) RunReaderContext(ctx context.Context, r io.Reader, emit func(query, pos int)) error {
	if s.sup.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.sup.timeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return convertErr(err)
	}
	cr := newCtxReader(ctx, r)
	defer cr.stop()
	in := input.NewBuffered(cr, s.window)
	defer in.Release()
	if s.limits.maxDocBytes > 0 {
		in.LimitDocBytes(s.limits.maxDocBytes)
	}
	return guardRun("queryset", func() error {
		return s.set.RunInput(in, s.limits.limitEmit2(emit))
	})
}
