package rsonpath

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

func TestDecodeStringBasics(t *testing.T) {
	cases := []struct{ in, want string }{
		{`""`, ""},
		{`"plain"`, "plain"},
		{`"a\"b"`, `a"b`},
		{`"a\\b"`, `a\b`},
		{`"a\/b"`, "a/b"},
		{`"\b\f\n\r\t"`, "\b\f\n\r\t"},
		{`"A"`, "A"},
		{`"é"`, "é"},
		{`"日本"`, "日本"},
		{`"🎉"`, "🎉"}, // surrogate pair
		{`"mixed A\n🎂"`, "mixed A\n🎂"},
	}
	for _, c := range cases {
		got, err := DecodeString([]byte(c.in))
		if err != nil {
			t.Errorf("DecodeString(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("DecodeString(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDecodeStringAgainstEncodingJSON(t *testing.T) {
	// Differential against the stdlib decoder on random encodable strings.
	r := rand.New(rand.NewSource(71))
	runes := []rune{'a', 'Z', '"', '\\', '\n', '\t', 'é', '日', '🎉', 0x01, '/'}
	for trial := 0; trial < 500; trial++ {
		var sb strings.Builder
		for i, n := 0, r.Intn(20); i < n; i++ {
			sb.WriteRune(runes[r.Intn(len(runes))])
		}
		want := sb.String()
		enc, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeString(enc)
		if err != nil {
			t.Fatalf("DecodeString(%q): %v", enc, err)
		}
		if got != want {
			t.Fatalf("DecodeString(%q) = %q, want %q", enc, got, want)
		}
	}
}

func TestDecodeStringUnpairedSurrogate(t *testing.T) {
	// encoding/json substitutes U+FFFD for unpaired surrogates; so do we.
	got, err := DecodeString([]byte(`"\ud800x"`))
	if err != nil {
		t.Fatal(err)
	}
	var want string
	if err := json.Unmarshal([]byte(`"\ud800x"`), &want); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("unpaired surrogate: got %q, want %q", got, want)
	}
}

func TestDecodeStringErrors(t *testing.T) {
	for _, in := range []string{``, `"`, `x`, `"a`, `a"`, `42`, `"\x"`, `"\u12"`, `"\u12G4"`, `"trailing\"`} {
		if got, err := DecodeString([]byte(in)); err == nil {
			t.Errorf("DecodeString(%q) = %q, want error", in, got)
		}
	}
}

func TestDecodeStringEndToEnd(t *testing.T) {
	doc := []byte(`{"msg": "café \"quoted\"\nnew line"}`)
	q := MustCompile("$.msg")
	vals, err := q.MatchValues(doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeString(vals[0])
	if err != nil {
		t.Fatal(err)
	}
	if got != "café \"quoted\"\nnew line" {
		t.Fatalf("decoded %q", got)
	}
}
