package rsonpath

import (
	"sync"
	"testing"
)

// TestQueryCacheHitMiss verifies the counters and that a hit returns the
// identical compiled object.
func TestQueryCacheHitMiss(t *testing.T) {
	c := NewQueryCache(8)
	q1, err := c.Get("$..a")
	if err != nil {
		t.Fatalf("first Get: %v", err)
	}
	q2, err := c.Get("$..a")
	if err != nil {
		t.Fatalf("second Get: %v", err)
	}
	if q1 != q2 {
		t.Fatalf("hit returned a different *Query")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Len != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / len 1", st)
	}
	n, err := q2.Count([]byte(`{"a": 1, "b": {"a": 2}}`))
	if err != nil || n != 2 {
		t.Fatalf("cached query Count = %d, %v; want 2, nil", n, err)
	}
}

// TestQueryCacheOptionsKeyed verifies that the same query text under
// different options compiles separately: options are part of the key.
func TestQueryCacheOptionsKeyed(t *testing.T) {
	c := NewQueryCache(8)
	qa, err := c.Get("$.a")
	if err != nil {
		t.Fatal(err)
	}
	qb, err := c.Get("$.a", WithEngine(EngineDOM))
	if err != nil {
		t.Fatal(err)
	}
	if qa == qb {
		t.Fatalf("different options returned the same entry")
	}
	if qa.Engine() != EngineRsonpath || qb.Engine() != EngineDOM {
		t.Fatalf("engines = %v, %v", qa.Engine(), qb.Engine())
	}
	qc, err := c.Get("$.a", WithMaxMatches(3))
	if err != nil {
		t.Fatal(err)
	}
	if qc == qa {
		t.Fatalf("limit option did not split the key")
	}
	if st := c.Stats(); st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 3 misses", st)
	}
}

// TestQueryCacheEviction fills a capacity-2 cache with three entries and
// verifies the least recently used one is recompiled on the next Get.
func TestQueryCacheEviction(t *testing.T) {
	c := NewQueryCache(2)
	for _, src := range []string{"$.a", "$.b"} {
		if _, err := c.Get(src); err != nil {
			t.Fatal(err)
		}
	}
	// Touch $.a so $.b is the LRU victim.
	if _, err := c.Get("$.a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("$.c"); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Len != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / len 2", st)
	}
	// $.a survived; $.b was evicted and must recompile.
	if _, err := c.Get("$.a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("$.b"); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.Hits != 2 || st.Misses != 4 {
		t.Fatalf("stats = %+v, want 2 hits / 4 misses", st)
	}
	if st.Evictions != 2 { // $.b's re-insert pushed out $.c's LRU victim
		t.Fatalf("stats = %+v, want 2 evictions", st)
	}
}

// TestQueryCacheErrorNotCached verifies a compile failure is returned but
// not retained: the key stays absent and the counters treat every attempt
// as a miss.
func TestQueryCacheErrorNotCached(t *testing.T) {
	c := NewQueryCache(8)
	for i := 0; i < 2; i++ {
		if _, err := c.Get("$["); err == nil {
			t.Fatalf("attempt %d: bad query compiled", i)
		}
	}
	st := c.Stats()
	if st.Len != 0 {
		t.Fatalf("failed compile was cached: %+v", st)
	}
	if st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 misses", st)
	}
}

// TestQueryCacheGetSet exercises the QuerySet side: hits return the shared
// set, member order is part of the key, and query/set entries with related
// texts do not collide.
func TestQueryCacheGetSet(t *testing.T) {
	c := NewQueryCache(8)
	s1, err := c.GetSet([]string{"$.a", "$..b"})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.GetSet([]string{"$.a", "$..b"})
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("set hit returned a different *QuerySet")
	}
	s3, err := c.GetSet([]string{"$..b", "$.a"})
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Fatalf("member order was not part of the key")
	}
	counts, err := s1.Counts([]byte(`{"a": {"b": 1}, "b": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 1 || counts[1] != 2 {
		t.Fatalf("counts = %v, want [1 2]", counts)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses", st)
	}
}

// TestQueryCacheConcurrent hammers one key from many goroutines and
// verifies singleflight behavior: exactly one compile, everyone gets the
// same object. Run under -race this is also the data-race check.
func TestQueryCacheConcurrent(t *testing.T) {
	c := NewQueryCache(8)
	const goroutines = 32
	var wg sync.WaitGroup
	got := make([]*Query, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q, err := c.Get("$..deep.label", WithMaxDepth(100))
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			got[i] = q
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if got[i] != got[0] {
			t.Fatalf("goroutine %d got a different compile", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("compiled %d times, want 1 (singleflight)", st.Misses)
	}
	if st.Hits != goroutines-1 {
		t.Fatalf("stats = %+v, want %d hits", st, goroutines-1)
	}
}

// TestQueryCachePurge verifies Purge empties the cache but keeps counters.
func TestQueryCachePurge(t *testing.T) {
	c := NewQueryCache(8)
	if _, err := c.Get("$.a"); err != nil {
		t.Fatal(err)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after Purge = %d", c.Len())
	}
	if _, err := c.Get("$.a"); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 misses (purged entry recompiles)", st)
	}
}
