package rsonpath

import (
	"context"
	"errors"
	"io"
	"runtime"
	"sync"
)

// This file is the concurrency half of the execution supervisor (DESIGN.md
// §10): a bounded worker pool over JSON Lines with per-record fault
// isolation, in-order delivery, and leak-free cancellation.

// lineJob carries one record through the worker pool. done (capacity 1)
// receives exactly one send when the job settles, whether a worker
// evaluated it or the dispatcher abandoned it during wind-down, so the
// consumer can always wait on it without blocking forever.
type lineJob[R any] struct {
	line   int
	record []byte
	res    R
	oc     Outcome
	err    error
	done   chan struct{}
}

// runLinesParallel is the shared worker pool behind the RunLinesParallel
// entry points. A dispatcher goroutine reads records in input order and
// publishes each job twice: to ordered (the delivery queue, whose capacity
// of 2×workers bounds the records in flight — when the consumer lags, the
// dispatcher stalls rather than buffer the stream) and to work (the pool's
// feed). Workers evaluate jobs concurrently; the caller's goroutine drains
// ordered, waits for each job to settle, and delivers — so results arrive
// in input order no matter which worker finished first. A delivery error
// cancels the pool: the dispatcher stops reading, in-flight evaluations
// observe the cancellation, and every goroutine is joined before return.
func runLinesParallel[R any](r io.Reader, workers int,
	eval func(ctx context.Context, record []byte) (R, Outcome, error),
	deliver func(job *lineJob[R]) error) error {

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	work := make(chan *lineJob[R])
	ordered := make(chan *lineJob[R], 2*workers)
	readErr := make(chan error, 1)

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range work {
				job.res, job.oc, job.err = eval(ctx, job.record)
				job.done <- struct{}{}
			}
		}()
	}

	go func() {
		defer close(ordered)
		defer close(work)
		err := forEachLine(r, func(line int, record []byte) error {
			job := &lineJob[R]{
				line: line,
				// The workers outlive the reader's buffer reuse; each job
				// owns its record.
				record: append([]byte(nil), record...),
				done:   make(chan struct{}, 1),
			}
			select {
			case ordered <- job:
			case <-ctx.Done():
				return ctx.Err()
			}
			select {
			case work <- job:
			case <-ctx.Done():
				// The job is already queued for delivery but no worker will
				// take it; settle it here so the consumer never blocks on it.
				job.err = convertErr(ctx.Err())
				job.done <- struct{}{}
				return ctx.Err()
			}
			return nil
		})
		if errors.Is(err, context.Canceled) {
			// Our own wind-down, not the reader's failure: the consumer's
			// verdict is the one that matters.
			err = nil
		}
		readErr <- err
	}()

	var verr error
	for job := range ordered {
		<-job.done
		if verr != nil {
			continue // drain so the dispatcher and workers can wind down
		}
		if derr := deliver(job); derr != nil {
			verr = derr
			cancel()
		}
	}
	wg.Wait()
	rerr := <-readErr
	if verr != nil {
		return verr
	}
	return rerr
}

// offsetsPool and setMatchPool recycle the per-record scratch buffers of the
// lines families: without them every record allocates a fresh offsets slice
// (and, for sets, a fresh match slice), which at JSON Lines rates dominates
// the allocation profile. A buffer's lifecycle is Get at evaluation, travel
// with the job, Put after delivery; jobs abandoned during wind-down leak
// their buffer to the garbage collector, which is fine — wind-down is not a
// steady state. Safe because supervisor.Run is synchronous: no attempt
// goroutine outlives the evaluation that borrowed the buffer.
var (
	offsetsPool  = sync.Pool{New: func() any { return new([]int) }}
	setMatchPool = sync.Pool{New: func() any { return new([]setMatch) }}
)

// RunLinesParallel is RunLines evaluated by a pool of workers: records are
// read in input order, evaluated concurrently, and delivered to visit in
// input order with the same per-record supervision as RunLines (deadline
// per record, degradation ladder per record, a bad record skipped without
// disturbing its neighbours). The number of records in flight is bounded by
// a small multiple of workers, so an unbounded stream never accumulates in
// memory even when visit is slow. visit returning a non-nil error stops the
// scan — remaining in-flight records are abandoned, every worker is joined
// before return, and the error is returned verbatim. workers ≤ 0 selects
// GOMAXPROCS. Unlike RunLines, visit runs on the calling goroutine while
// evaluation happens elsewhere; LineMatch.Record and friends remain valid
// only during the visit call.
func (q *Query) RunLinesParallel(r io.Reader, workers int, visit func(m LineMatch) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return runLinesParallel(r, workers,
		func(ctx context.Context, record []byte) (*[]int, Outcome, error) {
			sp := offsetsPool.Get().(*[]int)
			offs, oc, err := q.runSupervisedOffsets(ctx, record, *sp)
			*sp = offs
			return sp, oc, err
		},
		func(job *lineJob[*[]int]) error {
			var offs []int
			if job.res != nil { // nil only for jobs settled during wind-down
				defer offsetsPool.Put(job.res)
				offs = *job.res
			}
			if job.err == nil && len(offs) == 0 && !job.oc.Degraded() {
				return nil
			}
			m := LineMatch{Line: job.line, Record: job.record, Outcome: &job.oc}
			if job.err != nil {
				m.Err = job.err
			} else {
				m.Offsets = offs
			}
			return visit(m)
		})
}

// SetLineMatch describes the outcome of one newline-delimited record of a
// QuerySet lines scan.
type SetLineMatch struct {
	// Line is the 1-based record number (empty lines are skipped but
	// counted).
	Line int
	// Record is the raw record bytes; valid only during the visit call.
	Record []byte
	// Offsets are the match offsets within Record, indexed by query (as
	// passed to CompileSet); nil when the record failed. Valid only during
	// the visit call.
	Offsets [][]int
	// Err is non-nil when the record could not be evaluated; the scan skips
	// the record and continues.
	Err error
	// Outcome reports how the record's supervised evaluation settled. Valid
	// only during the visit call.
	Outcome *Outcome
}

// setLineEval evaluates one record for the set lines family, converting the
// supervised (query, offset) pairs into per-query offset lists.
func (s *QuerySet) setLineEval(ctx context.Context, record []byte) ([][]int, Outcome, error) {
	mp := setMatchPool.Get().(*[]setMatch)
	matches, oc, err := s.runSupervisedMatches(ctx, record, *mp)
	var out [][]int
	if err == nil && len(matches) > 0 {
		out = make([][]int, s.Len())
		for _, m := range matches {
			out[m.query] = append(out[m.query], m.pos)
		}
	}
	// The (query, offset) pairs have been transcribed; the scratch can go
	// straight back, whatever the outcome.
	*mp = matches[:0]
	setMatchPool.Put(mp)
	return out, oc, err
}

// RunLines streams newline-delimited JSON from r through the set's shared
// classification pass, one record at a time, with the same per-record
// supervision and visit contract as Query.RunLines: visit sees each record
// with at least one match, each failed record, and each degraded record.
func (s *QuerySet) RunLines(r io.Reader, visit func(m SetLineMatch) error) error {
	return forEachLine(r, func(line int, record []byte) error {
		offs, oc, err := s.setLineEval(context.Background(), record)
		if err == nil && offs == nil && !oc.Degraded() {
			return nil
		}
		m := SetLineMatch{Line: line, Record: record, Outcome: &oc}
		if err != nil {
			m.Err = err
		} else {
			m.Offsets = offs
		}
		return visit(m)
	})
}

// RunLinesParallel is QuerySet.RunLines evaluated by a pool of workers,
// with the same ordering, backpressure, and cancellation contract as
// Query.RunLinesParallel. workers ≤ 0 selects GOMAXPROCS.
func (s *QuerySet) RunLinesParallel(r io.Reader, workers int, visit func(m SetLineMatch) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return runLinesParallel(r, workers, s.setLineEval,
		func(job *lineJob[[][]int]) error {
			if job.err == nil && job.res == nil && !job.oc.Degraded() {
				return nil
			}
			m := SetLineMatch{Line: job.line, Record: job.record, Outcome: &job.oc}
			if job.err != nil {
				m.Err = job.err
			} else {
				m.Offsets = job.res
			}
			return visit(m)
		})
}
