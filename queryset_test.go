package rsonpath

import (
	"fmt"
	"testing"

	"rsonpath/internal/classifier"
)

// corpusQueriesAndDocs collects the distinct queries and documents of the
// full compliance corpus (base and slice cases).
func corpusQueriesAndDocs() (queries []string, docs []string) {
	seenQ := map[string]bool{}
	seenD := map[string]bool{}
	for _, cases := range [][]complianceCase{complianceCases, sliceComplianceCases} {
		for _, c := range cases {
			if !seenQ[c.query] {
				seenQ[c.query] = true
				queries = append(queries, c.query)
			}
			if !seenD[c.doc] {
				seenD[c.doc] = true
				docs = append(docs, c.doc)
			}
		}
	}
	return queries, docs
}

// TestQuerySetDifferentialCompliance runs the whole compliance corpus's
// query set in one pass over every corpus document and requires
// byte-identical per-query match offsets against individual runs on both
// the accelerated engine and the DOM oracle.
func TestQuerySetDifferentialCompliance(t *testing.T) {
	queries, docs := corpusQueriesAndDocs()
	set, err := CompileSet(queries)
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range docs {
		data := []byte(doc)
		got, err := set.MatchOffsets(data)
		if err != nil {
			t.Fatalf("set run on %s: %v", doc, err)
		}
		for i, src := range queries {
			for _, kind := range []EngineKind{EngineRsonpath, EngineDOM} {
				q, err := Compile(src, WithEngine(kind))
				if err != nil {
					t.Fatalf("[%v] compile %s: %v", kind, src, err)
				}
				want, err := q.MatchOffsets(data)
				if err != nil {
					t.Fatalf("[%v] %s on %s: %v", kind, src, doc, err)
				}
				if fmt.Sprint(got[i]) != fmt.Sprint(want) {
					t.Errorf("[%v] %s on %s:\n  set        %v\n  individual %v",
						kind, src, doc, got[i], want)
				}
			}
		}
	}
}

// TestQuerySetOneClassificationPass asserts the core property of the
// subsystem: however many queries the set holds, Run classifies the
// document exactly once, where N independent runs classify it N times.
func TestQuerySetOneClassificationPass(t *testing.T) {
	queries := []string{"$..a", "$.b.*", "$..c..d", "$.b[0]"}
	doc := []byte(`{"a": [1, {"c": {"d": 2}}], "b": [3, {"a": 4}], "c": {"d": 5}}`)

	set := MustCompileSet(queries)
	before := classifier.Passes()
	if _, err := set.Counts(doc); err != nil {
		t.Fatal(err)
	}
	if got := classifier.Passes() - before; got != 1 {
		t.Errorf("QuerySet.Run: %d classification passes, want 1", got)
	}

	before = classifier.Passes()
	for _, src := range queries {
		if _, err := MustCompile(src).Count(doc); err != nil {
			t.Fatal(err)
		}
	}
	if got := classifier.Passes() - before; got != int64(len(queries)) {
		t.Errorf("independent runs: %d classification passes, want %d", got, len(queries))
	}
}

func TestQuerySetAPI(t *testing.T) {
	doc := []byte(`{"a": 1, "b": {"a": 2}}`)
	set := MustCompileSet([]string{"$..a", "$.b"})
	if set.Len() != 2 {
		t.Fatalf("Len = %d", set.Len())
	}
	if set.Source(0) != "$..a" || set.Source(1) != "$.b" {
		t.Fatalf("sources %q %q", set.Source(0), set.Source(1))
	}
	counts, err := set.Counts(doc)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(counts) != "[2 1]" {
		t.Fatalf("counts %v", counts)
	}

	// Duplicate queries are independent set members.
	dup := MustCompileSet([]string{"$..a", "$..a"})
	offs, err := dup.MatchOffsets(doc)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(offs[0]) != fmt.Sprint(offs[1]) {
		t.Fatalf("duplicate queries disagree: %v", offs)
	}

	// Empty and whitespace-only documents: zero matches, nil error.
	for _, empty := range []string{"", "   ", "\n\t"} {
		counts, err := set.Counts([]byte(empty))
		if err != nil {
			t.Errorf("doc %q: %v", empty, err)
		}
		if fmt.Sprint(counts) != "[0 0]" {
			t.Errorf("doc %q: counts %v", empty, counts)
		}
	}

	// Empty set.
	none := MustCompileSet(nil)
	if counts, err := none.Counts(doc); err != nil || len(counts) != 0 {
		t.Fatalf("empty set: %v %v", counts, err)
	}
}

func TestQuerySetCompileErrors(t *testing.T) {
	if _, err := CompileSet([]string{"$..a", "not a query"}); err == nil {
		t.Error("bad query accepted")
	}
	if _, err := CompileSet([]string{"$.a"}, WithEngine(EngineDOM)); err == nil {
		t.Error("non-default engine accepted")
	}
	if _, err := CompileSet([]string{"$.a"}, WithSemantics(PathSemantics)); err == nil {
		t.Error("path semantics accepted")
	}
}
