package rsonpath

import (
	"container/list"
	"reflect"
	"strings"
	"sync"
)

// This file is the compiled-query cache (DESIGN.md §12): a concurrency-safe
// LRU of compiled Query and QuerySet objects keyed by query text plus the
// resolved compile options. Compile re-parses and re-determinizes on every
// call; for a serving process answering the same handful of queries over
// and over, the cache turns that per-request cost into a map lookup. The
// daemon (internal/server) keeps one QueryCache for its whole lifetime;
// library callers with a stable query population can do the same.

// DefaultQueryCacheSize is the capacity used when NewQueryCache is given a
// non-positive one: enough for any realistic hot query population, small
// enough that even worst-case automata stay in the megabytes.
const DefaultQueryCacheSize = 256

// CacheStats is a point-in-time snapshot of a QueryCache's counters.
type CacheStats struct {
	// Hits counts Get/GetSet calls answered from the cache (including calls
	// that waited for a concurrent compile of the same key).
	Hits int64
	// Misses counts calls that had to compile.
	Misses int64
	// Evictions counts entries discarded to make room.
	Evictions int64
	// Len is the current number of cached entries; Capacity the maximum.
	Len, Capacity int
}

// cacheKey identifies one compiled artifact: the query text (for sets, the
// member texts joined with an unescapable separator), whether it is a set,
// and every option that changes what Compile produces. The retryable
// predicate is a func and cannot be compared by value, so its code pointer
// stands in for it: two closures created by the same expression at the same
// site compare equal, distinct functions never collide with nil.
type cacheKey struct {
	query string
	set   bool
	kind  EngineKind
	// kindSet and planner are part of the key: under the plan layer the
	// same (query, kind) pair compiles differently depending on whether the
	// engine was forced (WithEngine is a planner constraint) and on the
	// planner mode, so a cached query must not carry its plan behavior
	// across differing option sets.
	kindSet   bool
	planner   PlannerMode
	opt       Optimizations
	semantics Semantics
	window    int
	limits    limits
	sup       supervisionKey
}

// supervisionKey is supervision with the func field reduced to a pointer.
type supervisionKey struct {
	timeout      int64
	fallback     FallbackMode
	retryMax     int
	retryBackoff int64
	retryable    uintptr
}

// keyFor resolves opts exactly the way Compile does and folds them into a
// comparable key.
func keyFor(query string, set bool, opts []Option) cacheKey {
	var c config
	for _, o := range opts {
		o(&c)
	}
	var retryPtr uintptr
	if c.retryable != nil {
		retryPtr = reflect.ValueOf(c.retryable).Pointer()
	}
	return cacheKey{
		query:     query,
		set:       set,
		kind:      c.kind,
		kindSet:   c.kindSet,
		planner:   c.planner,
		opt:       c.opt,
		semantics: c.semantics,
		window:    c.window,
		limits:    c.resolveLimits(),
		sup: supervisionKey{
			timeout:      int64(c.timeout),
			fallback:     c.fallback,
			retryMax:     c.retryMax,
			retryBackoff: int64(c.retryBackoff),
			retryable:    retryPtr,
		},
	}
}

// setKeySep joins member queries of a set key. A query containing a newline
// or NUL fails to parse, so the pair cannot occur inside a legal query text
// and distinct query lists never collide.
const setKeySep = "\x00\n"

// cacheEntry is one cached compile, possibly still in flight: ready is
// closed once val/err are final, so concurrent requests for the same key
// wait for one compile instead of racing N of them (the singleflight
// pattern). val is *Query or *QuerySet depending on the key.
type cacheEntry struct {
	key   cacheKey
	ready chan struct{}
	val   any
	err   error
}

// QueryCache is a concurrency-safe LRU of compiled queries. The zero value
// is not usable; create one with NewQueryCache. All methods may be called
// from any number of goroutines.
//
// Cached *Query and *QuerySet values are shared between callers — safe,
// because compiled queries are immutable and concurrent-use-safe by
// contract. Compile errors are returned but never cached: a failing query
// re-compiles (and re-fails, cheaply, in the parser) on every Get.
type QueryCache struct {
	mu        sync.Mutex
	capacity  int
	entries   map[cacheKey]*list.Element // value: *cacheEntry
	lru       *list.List                 // front = most recently used
	hits      int64
	misses    int64
	evictions int64
}

// NewQueryCache returns an empty cache holding at most capacity compiled
// artifacts (queries and sets count alike); capacity <= 0 selects
// DefaultQueryCacheSize.
func NewQueryCache(capacity int) *QueryCache {
	if capacity <= 0 {
		capacity = DefaultQueryCacheSize
	}
	return &QueryCache{
		capacity: capacity,
		entries:  make(map[cacheKey]*list.Element, capacity),
		lru:      list.New(),
	}
}

// lookup returns the settled-or-in-flight entry for key, creating and
// claiming it when absent. The boolean reports whether the caller must
// perform the compile (it was the first requester).
func (c *QueryCache) lookup(key cacheKey) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry), false
	}
	c.misses++
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = c.lru.PushFront(e)
	if c.lru.Len() > c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	return e, true
}

// drop removes a failed entry so the error is not served from cache. The
// entry may already have been evicted; only remove it if it is still the
// one in the map.
func (c *QueryCache) drop(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[e.key]; ok && el.Value.(*cacheEntry) == e {
		c.lru.Remove(el)
		delete(c.entries, e.key)
	}
}

// get is the shared core of Get and GetSet.
func (c *QueryCache) get(key cacheKey, compile func() (any, error)) (any, error) {
	e, mine := c.lookup(key)
	if mine {
		e.val, e.err = compile()
		if e.err != nil {
			c.drop(e)
		}
		close(e.ready)
	} else {
		<-e.ready
	}
	return e.val, e.err
}

// Get returns the compiled form of query under opts, compiling at most once
// per (query, options) key no matter how many goroutines ask concurrently.
// The returned *Query is shared; it is immutable and safe for concurrent
// use.
func (c *QueryCache) Get(query string, opts ...Option) (*Query, error) {
	v, err := c.get(keyFor(query, false, opts), func() (any, error) {
		q, err := Compile(query, opts...)
		if err != nil {
			return nil, err
		}
		return q, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Query), nil
}

// GetSet is Get for QuerySet: the key is the ordered list of member query
// texts plus the options, so the same queries in a different order compile
// (and cache) separately — member order is part of CompileSet's contract.
func (c *QueryCache) GetSet(queries []string, opts ...Option) (*QuerySet, error) {
	v, err := c.get(keyFor(strings.Join(queries, setKeySep), true, opts), func() (any, error) {
		s, err := CompileSet(queries, opts...)
		if err != nil {
			return nil, err
		}
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*QuerySet), nil
}

// Stats returns a snapshot of the cache's counters.
func (c *QueryCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Len:       c.lru.Len(),
		Capacity:  c.capacity,
	}
}

// Len returns the current number of cached entries.
func (c *QueryCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Purge empties the cache, keeping the hit/miss/eviction counters.
func (c *QueryCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[cacheKey]*list.Element, c.capacity)
	c.lru.Init()
}
