package rsonpath

import (
	"rsonpath/internal/dom"
	"rsonpath/internal/jsonpath"
)

// Semantics selects the JSONPath result semantics for EngineDOM (§2 of the
// paper and its Appendix D).
type Semantics int

const (
	// NodeSemantics returns the set of matched nodes in document order —
	// the paper's choice, implemented by every engine here.
	NodeSemantics Semantics = iota
	// PathSemantics returns one result per access path (a multiset), the
	// behaviour of most legacy JSONPath implementations. Only EngineDOM
	// supports it; the streaming engines reject it.
	PathSemantics
)

// WithSemantics selects the result semantics. The default, NodeSemantics,
// works on every engine; PathSemantics requires WithEngine(EngineDOM).
func WithSemantics(s Semantics) Option {
	return func(c *config) { c.semantics = s }
}

// domRunner adapts the reference DOM evaluator to the runner interface. It
// parses the document into a tree first — the memory-hungry approach the
// streaming engines exist to avoid — and is offered for small documents,
// for path semantics, and as a user-accessible oracle.
type domRunner struct {
	query     *jsonpath.Query
	semantics dom.Semantics
	maxDepth  int // nesting bound for the recursive parser; 0 = dom default
}

func (d *domRunner) Run(data []byte, emit func(pos int)) error {
	root, err := dom.ParseLimit(data, d.maxDepth)
	if err != nil {
		return err
	}
	for _, n := range dom.Eval(root, d.query, d.semantics) {
		emit(n.Start)
	}
	return nil
}
