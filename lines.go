package rsonpath

import (
	"bufio"
	"bytes"
	"io"
)

// LineMatch describes the outcome of one newline-delimited record: either
// its matches, or the typed error that made the record unusable.
type LineMatch struct {
	// Line is the 1-based record number (empty lines are skipped but
	// counted).
	Line int
	// Record is the raw record bytes; valid only during the visit call.
	Record []byte
	// Offsets are the match offsets within Record, in document order. Like
	// Record, the slice is reused between records and is valid only during
	// the visit call; copy it to retain it.
	Offsets []int
	// Err is non-nil when the record could not be evaluated — typically a
	// *MalformedError (with offsets relative to the record) or a
	// *LimitError. The scan skips the bad record and continues with the
	// next one; matches emitted before the failure are not reported.
	Err error
}

// RunLines streams newline-delimited JSON (JSON Lines) from r, evaluating
// the query against every record with memory bounded by the largest single
// record — the streaming regime the paper's introduction motivates, applied
// record-wise. visit is called for each record with at least one match and
// for each record that fails to evaluate (LineMatch.Err non-nil, offsets
// relative to the record); a bad record is skipped and the scan continues
// with the next line. visit returning a non-nil error stops the scan and is
// returned verbatim. Only a read error on r itself aborts the scan.
func (q *Query) RunLines(r io.Reader, visit func(m LineMatch) error) error {
	br := bufio.NewReaderSize(r, 1<<16)
	line := 0
	var offs []int
	for {
		record, err := br.ReadBytes('\n')
		if len(record) == 0 && err == io.EOF {
			return nil
		}
		line++
		trimmed := bytes.TrimSpace(record)
		if len(trimmed) > 0 {
			offs = offs[:0]
			runErr := q.Run(trimmed, func(pos int) { offs = append(offs, pos) })
			if runErr != nil {
				if verr := visit(LineMatch{Line: line, Record: trimmed, Err: runErr}); verr != nil {
					return verr
				}
			} else if len(offs) > 0 {
				if verr := visit(LineMatch{Line: line, Record: trimmed, Offsets: offs}); verr != nil {
					return verr
				}
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// CountLines streams newline-delimited JSON from r and returns the total
// number of matches across well-formed records, together with the number of
// records that failed to evaluate (and were skipped).
func (q *Query) CountLines(r io.Reader) (total, badLines int, err error) {
	err = q.RunLines(r, func(m LineMatch) error {
		if m.Err != nil {
			badLines++
			return nil
		}
		total += len(m.Offsets)
		return nil
	})
	return total, badLines, err
}
