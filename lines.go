package rsonpath

import (
	"bufio"
	"bytes"
	"context"
	"io"
)

// LineMatch describes the outcome of one newline-delimited record: either
// its matches, or the typed error that made the record unusable.
type LineMatch struct {
	// Line is the 1-based record number (empty lines are skipped but
	// counted).
	Line int
	// Record is the raw record bytes; valid only during the visit call.
	Record []byte
	// Offsets are the match offsets within Record, in document order. Like
	// Record, the slice is reused between records and is valid only during
	// the visit call; copy it to retain it.
	Offsets []int
	// Err is non-nil when the record could not be evaluated — typically a
	// *MalformedError (with offsets relative to the record) or a
	// *LimitError. The scan skips the bad record and continues with the
	// next one; matches emitted before the failure are not reported.
	Err error
	// Outcome reports how the record's supervised evaluation settled:
	// attempts taken, the engine that produced the result, and — when the
	// degradation ladder ran — the primary engine's fault. Valid only during
	// the visit call; copy the struct to retain it.
	Outcome *Outcome
}

// forEachLine drives the shared record loop of the lines family: fn is
// called with the 1-based line number and the whitespace-trimmed bytes of
// every non-empty record (empty lines are counted but skipped). A non-nil
// error from fn stops the scan and is returned verbatim; otherwise only a
// read error on r itself aborts the scan.
func forEachLine(r io.Reader, fn func(line int, record []byte) error) error {
	br := bufio.NewReaderSize(r, 1<<16)
	line := 0
	for {
		record, err := br.ReadBytes('\n')
		if len(record) == 0 && err == io.EOF {
			return nil
		}
		line++
		trimmed := bytes.TrimSpace(record)
		if len(trimmed) > 0 {
			if ferr := fn(line, trimmed); ferr != nil {
				return ferr
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// RunLines streams newline-delimited JSON (JSON Lines) from r, evaluating
// the query against every record with memory bounded by the largest single
// record — the streaming regime the paper's introduction motivates, applied
// record-wise. Each record runs under the execution supervisor: the
// configured deadline (WithTimeout) applies per record, and an internal
// fault in the primary engine degrades that one record to the DOM oracle
// (WithFallback to opt out) without disturbing its neighbours. visit is
// called for each record with at least one match, for each record that
// fails to evaluate (LineMatch.Err non-nil, offsets relative to the
// record), and for each record whose evaluation settled only after
// degradation; a bad record is skipped and the scan continues with the next
// line. visit returning a non-nil error stops the scan and is returned
// verbatim. Only a read error on r itself aborts the scan.
func (q *Query) RunLines(r io.Reader, visit func(m LineMatch) error) error {
	var scratch []int
	return forEachLine(r, func(line int, record []byte) error {
		offs, oc, err := q.runSupervisedOffsets(context.Background(), record, scratch)
		scratch = offs
		if err == nil && len(offs) == 0 && !oc.Degraded() {
			return nil
		}
		m := LineMatch{Line: line, Record: record, Outcome: &oc}
		if err != nil {
			m.Err = err
		} else {
			m.Offsets = offs
		}
		return visit(m)
	})
}

// LineFailure describes one record of a CountLines scan that deserves
// attention: either the record failed outright (Err non-nil) or it was
// answered only by the degradation ladder (Err nil, Outcome.Degraded true —
// the matches counted, but the primary engine's fault is on record).
type LineFailure struct {
	// Line is the 1-based record number.
	Line int
	// Err is the record's terminal error; nil when the degradation ladder
	// rescued the record.
	Err error
	// Outcome reports how the record's supervised evaluation settled.
	Outcome Outcome
}

// CountLines streams newline-delimited JSON from r and returns the total
// number of matches across records that evaluated successfully, together
// with a report of every record that failed or settled only after
// degradation (see LineFailure). A failed record is skipped; a degraded
// record's matches are included in total.
func (q *Query) CountLines(r io.Reader) (total int, failures []LineFailure, err error) {
	err = q.RunLines(r, func(m LineMatch) error {
		if m.Err != nil || m.Outcome.Degraded() {
			failures = append(failures, LineFailure{Line: m.Line, Err: m.Err, Outcome: *m.Outcome})
		}
		if m.Err == nil {
			total += len(m.Offsets)
		}
		return nil
	})
	return total, failures, err
}
