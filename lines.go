package rsonpath

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// LineMatch describes the matches of one newline-delimited record.
type LineMatch struct {
	// Line is the 1-based record number (empty lines are skipped but
	// counted).
	Line int
	// Record is the raw record bytes; valid only during the visit call.
	Record []byte
	// Offsets are the match offsets within Record, in document order. Like
	// Record, the slice is reused between records and is valid only during
	// the visit call; copy it to retain it.
	Offsets []int
}

// RunLines streams newline-delimited JSON (JSON Lines) from r, evaluating
// the query against every record with memory bounded by the largest single
// record — the streaming regime the paper's introduction motivates, applied
// record-wise. visit is called for each record with at least one match;
// returning a non-nil error stops the scan and is returned verbatim.
//
// Records that are not valid JSON abort the scan with an error naming the
// line; use visit-side recovery if a dirty feed must be tolerated.
func (q *Query) RunLines(r io.Reader, visit func(m LineMatch) error) error {
	br := bufio.NewReaderSize(r, 1<<16)
	line := 0
	var offs []int
	for {
		record, err := br.ReadBytes('\n')
		if len(record) == 0 && err == io.EOF {
			return nil
		}
		line++
		trimmed := bytes.TrimSpace(record)
		if len(trimmed) > 0 {
			offs = offs[:0]
			runErr := q.Run(trimmed, func(pos int) { offs = append(offs, pos) })
			if runErr != nil {
				return fmt.Errorf("rsonpath: line %d: %w", line, runErr)
			}
			if len(offs) > 0 {
				if err := visit(LineMatch{Line: line, Record: trimmed, Offsets: offs}); err != nil {
					return err
				}
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// CountLines streams newline-delimited JSON from r and returns the total
// number of matches across all records.
func (q *Query) CountLines(r io.Reader) (int, error) {
	total := 0
	err := q.RunLines(r, func(m LineMatch) error {
		total += len(m.Offsets)
		return nil
	})
	return total, err
}
