module rsonpath

go 1.22
