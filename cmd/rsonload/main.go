// Command rsonload drives an rsonpathd instance with concurrent queries and
// prints throughput and latency percentiles. It is the measurement half of
// the serving experiment (EXPERIMENTS.md) and the CI serve smoke.
//
// Usage:
//
//	rsonload -url http://127.0.0.1:8077/v1/query -query '$..a' -doc doc.json -n 1000 -c 8
//
// Exit codes mirror the CLI's conventions:
//
//	0  run completed, all responses OK and fully supervised
//	1  transport errors or non-200 responses (or bad invocation)
//	6  run completed but the server reported degraded outcomes
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rsonpath/internal/loadgen"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rsonload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url      = fs.String("url", "http://127.0.0.1:8077/v1/query", "rsonpathd query endpoint")
		query    = fs.String("query", "", "JSONPath query to send (required)")
		mode     = fs.String("mode", "count", "result mode: count, offsets or values")
		docPath  = fs.String("doc", "", "JSON document file to send ({} if empty)")
		conc     = fs.Int("c", 4, "concurrent connections")
		requests = fs.Int("n", 0, "total request budget (0 = run for -duration)")
		duration = fs.Duration("duration", 10*time.Second, "run length when -n is 0")
		timeout  = fs.Duration("timeout", 10*time.Second, "per-request client timeout")
		jsonOut  = fs.Bool("json", false, "emit the report as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *query == "" {
		fmt.Fprintln(stderr, "rsonload: -query is required")
		return 1
	}
	var doc []byte
	if *docPath != "" {
		b, err := os.ReadFile(*docPath)
		if err != nil {
			fmt.Fprintln(stderr, "rsonload:", err)
			return 1
		}
		doc = b
	}

	rep, err := loadgen.Run(ctx, loadgen.Config{
		URL:         *url,
		Query:       *query,
		Mode:        *mode,
		Document:    doc,
		Concurrency: *conc,
		Requests:    *requests,
		Duration:    *duration,
		Timeout:     *timeout,
	})
	if err != nil {
		fmt.Fprintln(stderr, "rsonload:", err)
		return 1
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	} else {
		fmt.Fprintf(stdout, "requests   %d (errors %d, non-200 %d, degraded %d)\n",
			rep.Requests, rep.Errors, rep.NonOK, rep.Degraded)
		fmt.Fprintf(stdout, "elapsed    %.2fs  (%.0f req/s)\n", rep.ElapsedSeconds, rep.Throughput)
		fmt.Fprintf(stdout, "latency    p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms\n",
			rep.LatencyP50MS, rep.LatencyP90MS, rep.LatencyP99MS, rep.LatencyMaxMS)
		for code, n := range rep.StatusCounts {
			fmt.Fprintf(stdout, "status %s %d\n", code, n)
		}
	}

	switch {
	case rep.Errors > 0 || rep.NonOK > 0:
		return 1
	case rep.Degraded > 0:
		return 6
	default:
		return 0
	}
}
