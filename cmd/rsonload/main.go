// Command rsonload drives an rsonpathd instance with concurrent queries and
// prints throughput and latency percentiles. It is the measurement half of
// the serving experiment (EXPERIMENTS.md) and the CI serve smoke.
//
// Usage:
//
//	rsonload -url http://127.0.0.1:8077/v1/query -query '$..a' -doc doc.json -n 1000 -c 8
//
// By default the load is closed-loop: -c workers each keep one request in
// flight. With -rate the generator switches to open-loop arrivals at a
// fixed rate, which is the mode that exercises the daemon's admission
// control: the load does not politely slow down when the server does, and
// 429 sheds are an expected, separately-reported outcome rather than a
// failure.
//
// Exit codes mirror the CLI's conventions:
//
//	0  run completed; every non-shed response was OK and fully supervised
//	1  transport errors or non-200/non-429 responses (or bad invocation);
//	   also a run the server shed in its entirety
//	6  run completed but the server reported degraded outcomes
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rsonpath/internal/loadgen"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rsonload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url      = fs.String("url", "http://127.0.0.1:8077/v1/query", "rsonpathd query endpoint")
		query    = fs.String("query", "", "JSONPath query to send (required)")
		mode     = fs.String("mode", "count", "result mode: count, offsets or values")
		docPath  = fs.String("doc", "", "JSON document file to send ({} if empty)")
		conc     = fs.Int("c", 4, "closed-loop workers; open-loop in-flight bound")
		requests = fs.Int("n", 0, "total request budget (0 = run for -duration)")
		duration = fs.Duration("duration", 10*time.Second, "run length when -n is 0")
		timeout  = fs.Duration("timeout", 10*time.Second, "per-request client timeout")
		rate     = fs.Float64("rate", 0, "open-loop arrival rate in req/s (0 = closed-loop)")
		ctype    = fs.String("content-type", "", "post -doc verbatim with this Content-Type (e.g. application/x-ndjson), query in URL params")
		jsonOut  = fs.Bool("json", false, "emit the report as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *query == "" {
		fmt.Fprintln(stderr, "rsonload: -query is required")
		return 1
	}
	var doc []byte
	if *docPath != "" {
		b, err := os.ReadFile(*docPath)
		if err != nil {
			fmt.Fprintln(stderr, "rsonload:", err)
			return 1
		}
		doc = b
	}

	rep, err := loadgen.Run(ctx, loadgen.Config{
		URL:            *url,
		Query:          *query,
		Mode:           *mode,
		Document:       doc,
		Concurrency:    *conc,
		Requests:       *requests,
		Duration:       *duration,
		Timeout:        *timeout,
		Rate:           *rate,
		RawContentType: *ctype,
	})
	if err != nil {
		fmt.Fprintln(stderr, "rsonload:", err)
		return 1
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	} else {
		fmt.Fprintf(stdout, "requests   %d (errors %d, non-200 %d, shed %d, degraded %d)\n",
			rep.Requests, rep.Errors, rep.NonOK, rep.Shed, rep.Degraded)
		if rep.Errors > 0 {
			fmt.Fprintf(stdout, "errors     %d connect/transport, %d response read\n",
				rep.ConnectErrors, rep.ReadErrors)
		}
		if rep.Dropped > 0 {
			fmt.Fprintf(stdout, "dropped    %d arrivals past the in-flight bound\n", rep.Dropped)
		}
		fmt.Fprintf(stdout, "elapsed    %.2fs  (%.0f req/s", rep.ElapsedSeconds, rep.Throughput)
		if rep.OfferedRPS > 0 {
			fmt.Fprintf(stdout, ", offered %.0f, goodput %.0f", rep.OfferedRPS, rep.GoodputRPS)
		}
		fmt.Fprintln(stdout, ")")
		fmt.Fprintf(stdout, "latency    p50 %.2fms  p90 %.2fms  p99 %.2fms  p99.9 %.2fms  max %.2fms\n",
			rep.LatencyP50MS, rep.LatencyP90MS, rep.LatencyP99MS, rep.LatencyP999MS, rep.LatencyMaxMS)
		if rep.Shed > 0 {
			fmt.Fprintf(stdout, "accepted   p50 %.2fms  p99 %.2fms  p99.9 %.2fms  max %.2fms\n",
				rep.AcceptedP50MS, rep.AcceptedP99MS, rep.AcceptedP999MS, rep.AcceptedMaxMS)
		}
		for code, n := range rep.StatusCounts {
			fmt.Fprintf(stdout, "status %s %d\n", code, n)
		}
	}

	// Sheds are the server protecting itself and never a failure on their
	// own — but a run where nothing at all was accepted means the service
	// was effectively down for this client, which is.
	allShed := rep.Shed > 0 && rep.StatusCounts["200"] == 0
	switch {
	case rep.Errors > 0 || rep.NonOK > 0 || allShed:
		return 1
	case rep.Degraded > 0:
		return 6
	default:
		return 0
	}
}
